open Scion_addr

let test_ia_parse_print () =
  let cases = [ "71-2:0:3b"; "64-559"; "71-88"; "71-2:0:5c"; "1-4294967295"; "2-ffff:ffff:ffff" ] in
  List.iter (fun s -> Alcotest.(check string) s s (Ia.to_string (Ia.of_string s))) cases

let test_ia_bgp_vs_hex_boundary () =
  (* Values below 2^32 print as decimal; above as hex groups. *)
  Alcotest.(check string) "decimal" "1-4294967295" (Ia.to_string (Ia.make 1 0xFFFFFFFF));
  Alcotest.(check string) "hex" "1-1:0:0" (Ia.to_string (Ia.make 1 (1 lsl 32)))

let test_ia_invalid () =
  let rejects s = try ignore (Ia.of_string s); false with Invalid_argument _ -> true in
  List.iter
    (fun s -> Alcotest.(check bool) s true (rejects s))
    [ ""; "71"; "-"; "71-"; "x-1"; "71-1:2"; "71-1:2:3:4"; "70000-1"; "71-fffff:0:0"; "71-x" ]

let test_ia_wire_roundtrip () =
  let w = Scion_util.Rw.Writer.create () in
  let ia = Ia.of_string "71-2:0:3b" in
  Ia.encode w ia;
  Alcotest.(check int) "8 bytes" 8 (Scion_util.Rw.Writer.length w);
  let ia' = Ia.decode (Scion_util.Rw.Reader.of_string (Scion_util.Rw.Writer.contents w)) in
  Alcotest.(check bool) "equal" true (Ia.equal ia ia')

let test_ia_ordering () =
  let a = Ia.of_string "64-559" and b = Ia.of_string "71-1" in
  Alcotest.(check bool) "isd dominates" true (Ia.compare a b < 0);
  Alcotest.(check bool) "wildcard" true (Ia.is_wildcard Ia.wildcard);
  Alcotest.(check bool) "non-wildcard" false (Ia.is_wildcard a)

let qcheck_ia_roundtrip =
  QCheck.Test.make ~name:"ia string roundtrip" ~count:500
    QCheck.(pair (int_bound 0xFFFF) (int_bound ((1 lsl 48) - 1)))
    (fun (isd, asn) ->
      let ia = Ia.make isd asn in
      Ia.equal ia (Ia.of_string (Ia.to_string ia)))

let qcheck_ia_wire_roundtrip =
  QCheck.Test.make ~name:"ia wire roundtrip" ~count:500
    QCheck.(pair (int_bound 0xFFFF) (int_bound ((1 lsl 48) - 1)))
    (fun (isd, asn) ->
      let ia = Ia.make isd asn in
      let w = Scion_util.Rw.Writer.create () in
      Ia.encode w ia;
      Ia.equal ia (Ia.decode (Scion_util.Rw.Reader.of_string (Scion_util.Rw.Writer.contents w))))

let test_ipv4 () =
  Alcotest.(check string) "roundtrip" "192.168.1.254" (Ipv4.to_string (Ipv4.of_string "192.168.1.254"));
  Alcotest.(check string) "zeros" "0.0.0.0" (Ipv4.to_string (Ipv4.of_string "0.0.0.0"));
  Alcotest.(check string) "broadcast" "255.255.255.255"
    (Ipv4.to_string (Ipv4.of_string "255.255.255.255"));
  let rejects s = try ignore (Ipv4.of_string s); false with Invalid_argument _ -> true in
  List.iter
    (fun s -> Alcotest.(check bool) s true (rejects s))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "-1.0.0.0" ]

let test_ipv4_subnet () =
  let p = Ipv4.of_string "10.1.0.0" in
  Alcotest.(check bool) "inside /16" true (Ipv4.in_subnet (Ipv4.of_string "10.1.200.3") ~prefix:p ~bits:16);
  Alcotest.(check bool) "outside /16" false (Ipv4.in_subnet (Ipv4.of_string "10.2.0.1") ~prefix:p ~bits:16);
  Alcotest.(check bool) "/0 matches all" true (Ipv4.in_subnet (Ipv4.of_string "8.8.8.8") ~prefix:p ~bits:0);
  Alcotest.(check bool) "/32 exact" false (Ipv4.in_subnet (Ipv4.of_string "10.1.0.1") ~prefix:p ~bits:32)

let test_endpoint () =
  let e = Ipv4.endpoint_of_string "10.0.0.1:30041" in
  Alcotest.(check string) "roundtrip" "10.0.0.1:30041" (Ipv4.endpoint_to_string e);
  let rejects s = try ignore (Ipv4.endpoint_of_string s); false with Invalid_argument _ -> true in
  List.iter
    (fun s -> Alcotest.(check bool) s true (rejects s))
    [ "10.0.0.1"; "10.0.0.1:x"; "10.0.0.1:70000"; ":80" ]

(* --- hop predicates --- *)

let hop ia_s ingress egress = { Hop_pred.ia = Ia.of_string ia_s; ingress; egress }

let pred s = match Hop_pred.parse s with Ok p -> p | Error e -> Alcotest.fail e

let test_hop_pred_parse_print () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Hop_pred.to_string (pred s)))
    [ "0-0"; "71-0"; "71-2:0:3b#1"; "71-559#1,2"; "0-0#0,5" ];
  (match Hop_pred.parse "71-x" with Ok _ -> Alcotest.fail "accepted" | Error _ -> ());
  match Hop_pred.parse "71-1#a" with Ok _ -> Alcotest.fail "accepted" | Error _ -> ()

let test_hop_pred_matching () =
  let h = hop "71-2:0:3b" 1 2 in
  Alcotest.(check bool) "any" true (Hop_pred.matches Hop_pred.any h);
  Alcotest.(check bool) "exact ia" true (Hop_pred.matches (pred "71-2:0:3b") h);
  Alcotest.(check bool) "wrong ia" false (Hop_pred.matches (pred "71-559") h);
  Alcotest.(check bool) "isd only" true (Hop_pred.matches (pred "71-0") h);
  Alcotest.(check bool) "wrong isd" false (Hop_pred.matches (pred "64-0") h);
  Alcotest.(check bool) "if pair" true (Hop_pred.matches (pred "71-2:0:3b#1,2") h);
  Alcotest.(check bool) "if pair wrong order" false (Hop_pred.matches (pred "71-2:0:3b#2,1") h);
  Alcotest.(check bool) "single if matches either" true (Hop_pred.matches (pred "71-2:0:3b#2") h);
  Alcotest.(check bool) "single if no match" false (Hop_pred.matches (pred "71-2:0:3b#9") h);
  Alcotest.(check bool) "zero wildcard in pair" true (Hop_pred.matches (pred "71-2:0:3b#0,2") h)

let seq s = match Hop_pred.parse_sequence s with Ok q -> q | Error e -> Alcotest.fail e

let test_sequence_matching () =
  let hops = [ hop "71-13" 0 1; hop "71-10" 2 3; hop "71-2:0:1" 4 0 ] in
  Alcotest.(check bool) "empty matches" true (Hop_pred.sequence_matches (seq "") hops);
  Alcotest.(check bool) "star matches" true (Hop_pred.sequence_matches (seq "*") hops);
  Alcotest.(check bool) "exact" true
    (Hop_pred.sequence_matches (seq "71-13 71-10 71-2:0:1") hops);
  Alcotest.(check bool) "prefix star" true (Hop_pred.sequence_matches (seq "71-13 *") hops);
  Alcotest.(check bool) "infix star" true
    (Hop_pred.sequence_matches (seq "71-13 * 71-2:0:1") hops);
  Alcotest.(check bool) "wrong order" false
    (Hop_pred.sequence_matches (seq "71-10 * 71-13") hops);
  Alcotest.(check bool) "too many" false
    (Hop_pred.sequence_matches (seq "71-13 71-10 71-2:0:1 71-99") hops);
  Alcotest.(check bool) "middle only fails without stars" false
    (Hop_pred.sequence_matches (seq "71-10") hops);
  Alcotest.(check bool) "star middle star" true
    (Hop_pred.sequence_matches (seq "* 71-10 *") hops)

let test_sequence_print () =
  Alcotest.(check string) "roundtrip" "71-13 * 71-2:0:1"
    (Hop_pred.sequence_to_string (seq "71-13   *  71-2:0:1"))

let test_deny_transit () =
  let commercial = Ia.Set.of_list [ Ia.of_string "64-559" ] in
  let transit = [ hop "71-13" 0 1; hop "64-559" 2 3; hop "71-10" 4 0 ] in
  let terminate = [ hop "71-13" 0 1; hop "71-10" 2 3; hop "64-559" 4 0 ] in
  let avoid = [ hop "71-13" 0 1; hop "71-10" 2 0 ] in
  Alcotest.(check bool) "transit denied" false
    (Hop_pred.deny_transit ~through:commercial ~endpoints_ok:true transit);
  Alcotest.(check bool) "termination allowed" true
    (Hop_pred.deny_transit ~through:commercial ~endpoints_ok:true terminate);
  Alcotest.(check bool) "termination denied when endpoints_ok=false" false
    (Hop_pred.deny_transit ~through:commercial ~endpoints_ok:false terminate);
  Alcotest.(check bool) "uninvolved path fine" true
    (Hop_pred.deny_transit ~through:commercial ~endpoints_ok:false avoid)

let qcheck_sequence_self_match =
  (* A path always matches the exact sequence spelled from its own hops. *)
  let gen =
    QCheck.Gen.(
      let* n = 1 -- 6 in
      list_repeat n
        (let* isd = 1 -- 3 in
         let* asn = 1 -- 500 in
         let* ing = 0 -- 9 in
         let* egr = 0 -- 9 in
         return (isd, asn, ing, egr)))
  in
  QCheck.Test.make ~name:"sequence matches its own path" ~count:200 (QCheck.make gen)
    (fun spec ->
      let hops =
        List.map (fun (isd, asn, ing, egr) -> { Hop_pred.ia = Ia.make isd asn; ingress = ing; egress = egr }) spec
      in
      let exact =
        String.concat " " (List.map (fun h -> Ia.to_string h.Hop_pred.ia) hops)
      in
      match Hop_pred.parse_sequence exact with
      | Ok s ->
          Hop_pred.sequence_matches s hops
          && Hop_pred.sequence_matches (Result.get_ok (Hop_pred.parse_sequence "*")) hops
      | Error _ -> false)

let qcheck_pred_roundtrip =
  let gen =
    QCheck.Gen.(
      let* isd = 0 -- 99 in
      let* asn = 0 -- 10_000 in
      let* ifs = 0 -- 2 in
      let* i1 = 0 -- 50 in
      let* i2 = 0 -- 50 in
      return (isd, asn, ifs, i1, i2))
  in
  QCheck.Test.make ~name:"hop predicate parse/print roundtrip" ~count:300 (QCheck.make gen)
    (fun (isd, asn, ifs, i1, i2) ->
      let s =
        let base = Ia.to_string (Ia.make isd asn) in
        match ifs with
        | 0 -> base
        | 1 -> Printf.sprintf "%s#%d" base i1
        | _ -> Printf.sprintf "%s#%d,%d" base i1 i2
      in
      match Hop_pred.parse s with
      | Ok p -> (
          match Hop_pred.parse (Hop_pred.to_string p) with
          | Ok p2 -> Hop_pred.to_string p = Hop_pred.to_string p2
          | Error _ -> false)
      | Error _ -> false)

let () =
  Alcotest.run "scion_addr"
    [
      ( "ia",
        [
          Alcotest.test_case "parse/print" `Quick test_ia_parse_print;
          Alcotest.test_case "bgp/hex boundary" `Quick test_ia_bgp_vs_hex_boundary;
          Alcotest.test_case "invalid" `Quick test_ia_invalid;
          Alcotest.test_case "wire roundtrip" `Quick test_ia_wire_roundtrip;
          Alcotest.test_case "ordering" `Quick test_ia_ordering;
          QCheck_alcotest.to_alcotest qcheck_ia_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_ia_wire_roundtrip;
        ] );
      ( "ipv4",
        [
          Alcotest.test_case "parse/print" `Quick test_ipv4;
          Alcotest.test_case "subnet" `Quick test_ipv4_subnet;
          Alcotest.test_case "endpoint" `Quick test_endpoint;
        ] );
      ( "hop_pred",
        [
          Alcotest.test_case "parse/print" `Quick test_hop_pred_parse_print;
          Alcotest.test_case "matching" `Quick test_hop_pred_matching;
          Alcotest.test_case "sequences" `Quick test_sequence_matching;
          Alcotest.test_case "sequence print" `Quick test_sequence_print;
          Alcotest.test_case "deny transit" `Quick test_deny_transit;
          QCheck_alcotest.to_alcotest qcheck_sequence_self_match;
          QCheck_alcotest.to_alcotest qcheck_pred_roundtrip;
        ] );
    ]
