test/test_controlplane.mli:
