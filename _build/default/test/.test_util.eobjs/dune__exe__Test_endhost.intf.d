test/test_endhost.mli:
