test/test_addr.ml: Alcotest Hop_pred Ia Ipv4 List Printf QCheck QCheck_alcotest Result Scion_addr Scion_util String
