test/test_sciera.ml: Alcotest Array Lazy List Printf Sciera Scion_addr Scion_controlplane Scion_endhost Scion_util
