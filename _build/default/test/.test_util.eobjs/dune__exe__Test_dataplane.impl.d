test/test_dataplane.ml: Alcotest Fwkey Int32 List Packet Path QCheck QCheck_alcotest Router Scion_addr Scion_dataplane Scmp String
