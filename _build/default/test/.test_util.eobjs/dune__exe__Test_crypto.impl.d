test/test_crypto.ml: Aes128 Alcotest Bignum Char Cmac Hmac List Modp Printf QCheck QCheck_alcotest Schnorr Scion_crypto Scion_util Sha256 String
