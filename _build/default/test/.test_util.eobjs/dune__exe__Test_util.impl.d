test/test_util.ml: Alcotest Array Fun Gen Hex List QCheck QCheck_alcotest Rng Rw Scion_util Stats String Table
