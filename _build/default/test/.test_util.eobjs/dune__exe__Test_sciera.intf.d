test/test_sciera.mli:
