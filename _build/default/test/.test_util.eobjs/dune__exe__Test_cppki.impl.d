test/test_cppki.ml: Alcotest Ca Cert List Printf Scion_addr Scion_cppki Scion_crypto Trc Verify
