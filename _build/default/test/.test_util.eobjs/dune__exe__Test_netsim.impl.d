test/test_netsim.ml: Alcotest Array Engine Fun Int64 List Net Netsim QCheck QCheck_alcotest Scion_util
