test/test_cppki.mli:
