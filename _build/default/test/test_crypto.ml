open Scion_crypto
module Hex = Scion_util.Hex

(* --- SHA-256: NIST FIPS 180-4 vectors --- *)

let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ]
  in
  List.iter
    (fun (msg, expect) -> Alcotest.(check string) msg expect (Sha256.hexdigest msg))
    cases

let test_sha256_million_a () =
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.update ctx chunk
  done;
  Alcotest.(check string) "1M a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Hex.encode (Sha256.finalize ctx))

let test_sha256_streaming_split () =
  let whole = Sha256.digest "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  Sha256.update ctx "the quick brown fox ";
  Sha256.update ctx "jumps over ";
  Sha256.update ctx "the lazy dog";
  Alcotest.(check string) "split = whole" (Hex.encode whole) (Hex.encode (Sha256.finalize ctx))

let qcheck_sha256_streaming =
  QCheck.Test.make ~name:"sha256 streaming equals one-shot" ~count:100
    QCheck.(pair string string)
    (fun (a, b) ->
      let ctx = Sha256.init () in
      Sha256.update ctx a;
      Sha256.update ctx b;
      Sha256.finalize ctx = Sha256.digest (a ^ b))

(* --- HMAC: RFC 4231 vectors --- *)

let test_hmac_rfc4231 () =
  let tag1 = Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There" in
  Alcotest.(check string) "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" (Hex.encode tag1);
  let tag2 = Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?" in
  Alcotest.(check string) "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" (Hex.encode tag2);
  (* tc3: 20 x 0xaa key, 50 x 0xdd data *)
  let tag3 = Hmac.sha256 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd') in
  Alcotest.(check string) "tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" (Hex.encode tag3);
  (* tc6: 131-byte key (forces key hashing) *)
  let tag6 =
    Hmac.sha256 ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First"
  in
  Alcotest.(check string) "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" (Hex.encode tag6)

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Hmac.sha256 ~key msg in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key ~msg ~tag);
  let bad = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) tag in
  Alcotest.(check bool) "rejects tampered" false (Hmac.verify ~key ~msg ~tag:bad);
  Alcotest.(check bool) "rejects short" false (Hmac.verify ~key ~msg ~tag:(String.sub tag 0 16))

let test_kdf_properties () =
  let a = Hmac.kdf ~secret:"s" ~info:"x" 48 in
  let b = Hmac.kdf ~secret:"s" ~info:"x" 48 in
  let c = Hmac.kdf ~secret:"s" ~info:"y" 48 in
  Alcotest.(check int) "length" 48 (String.length a);
  Alcotest.(check string) "deterministic" a b;
  Alcotest.(check bool) "info matters" true (a <> c);
  Alcotest.(check string) "prefix stable" (String.sub a 0 16) (Hmac.kdf ~secret:"s" ~info:"x" 16)

(* --- AES-128: FIPS 197 appendix C.1 --- *)

let test_aes128_fips197 () =
  let key = Aes128.expand_key (Hex.decode "000102030405060708090a0b0c0d0e0f") in
  let ct = Aes128.encrypt_block key (Hex.decode "00112233445566778899aabbccddeeff") in
  Alcotest.(check string) "fips197" "69c4e0d86a7b0430d8cdb78070b4c55a" (Hex.encode ct)

let test_aes128_sp800_38a () =
  (* SP 800-38A F.1.1 ECB-AES128 block #1 *)
  let key = Aes128.expand_key (Hex.decode "2b7e151628aed2a6abf7158809cf4f3c") in
  let ct = Aes128.encrypt_block key (Hex.decode "6bc1bee22e409f96e93d7e117393172a") in
  Alcotest.(check string) "sp800-38a" "3ad77bb40d7a3660a89ecaf32466ef97" (Hex.encode ct)

let test_aes128_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes128.expand_key: key must be 16 bytes")
    (fun () -> ignore (Aes128.expand_key "short"));
  let key = Aes128.expand_key (String.make 16 'k') in
  Alcotest.check_raises "short block"
    (Invalid_argument "Aes128.encrypt_block: block must be 16 bytes") (fun () ->
      ignore (Aes128.encrypt_block key "tiny"))

(* --- CMAC: RFC 4493 vectors --- *)

let rfc4493_key = "2b7e151628aed2a6abf7158809cf4f3c"

let rfc4493_msg64 =
  "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
  ^ "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"

let test_cmac_rfc4493 () =
  let key = Cmac.of_string (Hex.decode rfc4493_key) in
  let check name msg expect =
    Alcotest.(check string) name expect (Hex.encode (Cmac.mac key (Hex.decode msg)))
  in
  check "empty" "" "bb1d6929e95937287fa37d129b756746";
  check "16 bytes" "6bc1bee22e409f96e93d7e117393172a" "070a16b46b4d4144f79bdd9dd04a287c";
  check "40 bytes" (String.sub rfc4493_msg64 0 80) "dfa66747de9ae63030ca32611497c827";
  check "64 bytes" rfc4493_msg64 "51f0bebf7e3b9d92fc49741779363cfe"

let test_cmac_truncated_verify () =
  let key = Cmac.of_string (String.make 16 '\x42') in
  let msg = "hop field bytes" in
  let tag6 = Cmac.mac_truncated key msg 6 in
  Alcotest.(check int) "6 bytes" 6 (String.length tag6);
  Alcotest.(check bool) "verifies" true (Cmac.verify key ~msg ~tag:tag6);
  Alcotest.(check bool) "rejects other msg" false (Cmac.verify key ~msg:"hop field bytez" ~tag:tag6);
  Alcotest.(check bool) "rejects empty tag" false (Cmac.verify key ~msg ~tag:"");
  let bad = String.mapi (fun i c -> if i = 5 then Char.chr (Char.code c lxor 0x80) else c) tag6 in
  Alcotest.(check bool) "rejects tampered" false (Cmac.verify key ~msg ~tag:bad)

(* --- Bignum --- *)

let bn = Bignum.of_int

let test_bignum_basic () =
  Alcotest.(check bool) "zero" true (Bignum.is_zero Bignum.zero);
  Alcotest.(check int) "roundtrip" 123456789 (Bignum.to_int (bn 123456789));
  Alcotest.(check int) "add" 579 (Bignum.to_int (Bignum.add (bn 123) (bn 456)));
  Alcotest.(check int) "sub" 333 (Bignum.to_int (Bignum.sub (bn 456) (bn 123)));
  Alcotest.(check int) "mul" 56088 (Bignum.to_int (Bignum.mul (bn 123) (bn 456)));
  Alcotest.(check int) "bitlen" 7 (Bignum.bit_length (bn 100));
  Alcotest.(check bool) "odd" true (Bignum.is_odd (bn 7));
  Alcotest.(check bool) "even" false (Bignum.is_odd (bn 8))

let test_bignum_sub_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Bignum.sub: negative result") (fun () ->
      ignore (Bignum.sub (bn 1) (bn 2)))

let test_bignum_divmod () =
  let q, r = Bignum.divmod (bn 1000003) (bn 997) in
  Alcotest.(check int) "q" 1003 (Bignum.to_int q);
  Alcotest.(check int) "r" 12 (Bignum.to_int r);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod (bn 1) Bignum.zero))

let test_bignum_hex () =
  let v = Bignum.of_hex "deadbeef0123456789" in
  Alcotest.(check string) "hex roundtrip" "deadbeef0123456789" (Bignum.to_hex v);
  Alcotest.(check string) "padded bytes" "\x00\x00\x01" (Bignum.to_bytes_be ~width:3 (bn 1))

let test_bignum_modpow_fermat () =
  (* Fermat: a^(p-1) === 1 mod p for prime p = 1_000_000_007. *)
  let p = bn 1_000_000_007 in
  let a = bn 123456789 in
  Alcotest.(check int) "fermat" 1 (Bignum.to_int (Bignum.modpow a (Bignum.sub p Bignum.one) p))

let bounded_int = QCheck.int_bound 1_000_000

let qcheck_bignum_add_matches_int =
  QCheck.Test.make ~name:"bignum add matches int" ~count:500 QCheck.(pair bounded_int bounded_int)
    (fun (a, b) -> Bignum.to_int (Bignum.add (bn a) (bn b)) = a + b)

let qcheck_bignum_mul_matches_int =
  QCheck.Test.make ~name:"bignum mul matches int" ~count:500 QCheck.(pair bounded_int bounded_int)
    (fun (a, b) -> Bignum.to_int (Bignum.mul (bn a) (bn b)) = a * b)

let qcheck_bignum_divmod_identity =
  QCheck.Test.make ~name:"divmod identity a = q*b + r" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 24)) (string_of_size (QCheck.Gen.int_range 1 12)))
    (fun (abytes, bbytes) ->
      let a = Bignum.of_bytes_be abytes and b = Bignum.of_bytes_be bbytes in
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let qcheck_bignum_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes_be roundtrip" ~count:300
    (QCheck.string_of_size (QCheck.Gen.int_range 0 40))
    (fun s ->
      let v = Bignum.of_bytes_be s in
      Bignum.equal v (Bignum.of_bytes_be (Bignum.to_bytes_be ~width:48 v)))

let qcheck_bignum_shift_inverse =
  QCheck.Test.make ~name:"shift left/right inverse" ~count:300
    QCheck.(pair bounded_int (int_bound 60))
    (fun (a, n) -> Bignum.equal (bn a) (Bignum.shift_right (Bignum.shift_left (bn a) n) n))

(* --- Modp --- *)

let random_felem_gen =
  QCheck.map (fun s -> Modp.of_bignum (Bignum.of_bytes_be s)) (QCheck.string_of_size (QCheck.Gen.return 32))

let qcheck_modp_mul_matches_generic =
  QCheck.Test.make ~name:"modp mul matches generic" ~count:100
    QCheck.(pair random_felem_gen random_felem_gen)
    (fun (a, b) ->
      let expect =
        Bignum.modulo (Bignum.mul (Modp.to_bignum a) (Modp.to_bignum b)) Modp.p
      in
      Bignum.equal (Modp.to_bignum (Modp.mul a b)) expect)

let qcheck_modp_add_sub =
  QCheck.Test.make ~name:"modp add/sub inverse" ~count:200
    QCheck.(pair random_felem_gen random_felem_gen)
    (fun (a, b) -> Modp.equal a (Modp.sub (Modp.add a b) b))

let test_modp_prime_miller_rabin () =
  (* Miller-Rabin with fixed bases; enough to catch an incorrectly encoded
     modulus, which is what this test defends against. *)
  let p = Modp.p in
  let pm1 = Bignum.sub p Bignum.one in
  let rec split d s = if Bignum.is_odd d then (d, s) else split (Bignum.shift_right d 1) (s + 1) in
  let d, s = split pm1 0 in
  let witness a =
    let x = ref (Bignum.modpow (bn a) d p) in
    if Bignum.equal !x Bignum.one || Bignum.equal !x pm1 then false
    else begin
      let composite = ref true in
      for _ = 1 to s - 1 do
        if !composite then begin
          x := Bignum.modulo (Bignum.mul !x !x) p;
          if Bignum.equal !x pm1 then composite := false
        end
      done;
      !composite
    end
  in
  List.iter
    (fun a -> Alcotest.(check bool) (Printf.sprintf "base %d" a) false (witness a))
    [ 2; 3; 5; 7; 11; 13 ]

let test_modp_pow_small () =
  let three = Modp.of_int 3 in
  Alcotest.(check bool) "3^4 = 81" true (Modp.equal (Modp.pow three (bn 4)) (Modp.of_int 81));
  Alcotest.(check bool) "x^0 = 1" true (Modp.equal (Modp.pow three Bignum.zero) Modp.one)

let test_modp_bytes () =
  let x = Modp.of_int 258 in
  let b = Modp.to_bytes x in
  Alcotest.(check int) "32 bytes" 32 (String.length b);
  (match Modp.of_bytes b with
  | Some y -> Alcotest.(check bool) "roundtrip" true (Modp.equal x y)
  | None -> Alcotest.fail "of_bytes failed");
  Alcotest.(check bool) "rejects >= p" true (Modp.of_bytes (String.make 32 '\xff') = None)

(* --- Schnorr --- *)

let test_schnorr_sign_verify () =
  let priv, pub = Schnorr.derive ~seed:"as64-559" in
  let msg = "path segment payload" in
  let signature = Schnorr.sign priv msg in
  Alcotest.(check int) "size" Schnorr.signature_size (String.length signature);
  Alcotest.(check bool) "verifies" true (Schnorr.verify pub ~msg ~signature);
  Alcotest.(check bool) "wrong msg" false (Schnorr.verify pub ~msg:"other" ~signature);
  let _, pub2 = Schnorr.derive ~seed:"as71-88" in
  Alcotest.(check bool) "wrong key" false (Schnorr.verify pub2 ~msg ~signature)

let test_schnorr_deterministic () =
  let priv, _ = Schnorr.derive ~seed:"seed" in
  Alcotest.(check string) "same sig" (Schnorr.sign priv "m") (Schnorr.sign priv "m");
  Alcotest.(check bool) "different msgs differ" true (Schnorr.sign priv "m1" <> Schnorr.sign priv "m2")

let test_schnorr_tamper_rejected () =
  let priv, pub = Schnorr.derive ~seed:"x" in
  let signature = Schnorr.sign priv "msg" in
  for i = 0 to Schnorr.signature_size - 1 do
    let bad =
      String.mapi (fun j c -> if i = j then Char.chr (Char.code c lxor 0x01) else c) signature
    in
    if Schnorr.verify pub ~msg:"msg" ~signature:bad then
      Alcotest.fail (Printf.sprintf "tampered byte %d accepted" i)
  done

let test_schnorr_garbage_rejected () =
  let _, pub = Schnorr.derive ~seed:"x" in
  Alcotest.(check bool) "empty" false (Schnorr.verify pub ~msg:"m" ~signature:"");
  Alcotest.(check bool) "short" false (Schnorr.verify pub ~msg:"m" ~signature:(String.make 10 'a'));
  Alcotest.(check bool) "all ff" false
    (Schnorr.verify pub ~msg:"m" ~signature:(String.make 64 '\xff'));
  Alcotest.(check bool) "zero R" false
    (Schnorr.verify pub ~msg:"m" ~signature:(String.make 64 '\x00'))

let test_schnorr_pub_roundtrip () =
  let _, pub = Schnorr.derive ~seed:"roundtrip" in
  (match Schnorr.public_of_string (Schnorr.public_to_string pub) with
  | Some pub' ->
      let priv, _ = Schnorr.derive ~seed:"roundtrip" in
      let signature = Schnorr.sign priv "m" in
      Alcotest.(check bool) "restored key verifies" true (Schnorr.verify pub' ~msg:"m" ~signature)
  | None -> Alcotest.fail "roundtrip failed");
  Alcotest.(check int) "fingerprint len" 12 (String.length (Schnorr.fingerprint pub))

let test_schnorr_generate_distinct () =
  let rng = Scion_util.Rng.create 99L in
  let _, pub1 = Schnorr.generate rng in
  let _, pub2 = Schnorr.generate rng in
  Alcotest.(check bool) "distinct" false
    (Schnorr.public_to_string pub1 = Schnorr.public_to_string pub2)

let qcheck_schnorr_roundtrip =
  QCheck.Test.make ~name:"schnorr sign/verify roundtrip" ~count:20 QCheck.(pair string string)
    (fun (seed, msg) ->
      let priv, pub = Schnorr.derive ~seed in
      Schnorr.verify pub ~msg ~signature:(Schnorr.sign priv msg))

let () =
  Alcotest.run "scion_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "nist vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "streaming split" `Quick test_sha256_streaming_split;
          QCheck_alcotest.to_alcotest qcheck_sha256_streaming;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          Alcotest.test_case "kdf" `Quick test_kdf_properties;
        ] );
      ( "aes128",
        [
          Alcotest.test_case "fips197" `Quick test_aes128_fips197;
          Alcotest.test_case "sp800-38a" `Quick test_aes128_sp800_38a;
          Alcotest.test_case "bad sizes" `Quick test_aes128_bad_sizes;
        ] );
      ( "cmac",
        [
          Alcotest.test_case "rfc4493 vectors" `Quick test_cmac_rfc4493;
          Alcotest.test_case "truncated verify" `Quick test_cmac_truncated_verify;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "basic" `Quick test_bignum_basic;
          Alcotest.test_case "sub negative" `Quick test_bignum_sub_negative;
          Alcotest.test_case "divmod" `Quick test_bignum_divmod;
          Alcotest.test_case "hex" `Quick test_bignum_hex;
          Alcotest.test_case "modpow fermat" `Quick test_bignum_modpow_fermat;
          QCheck_alcotest.to_alcotest qcheck_bignum_add_matches_int;
          QCheck_alcotest.to_alcotest qcheck_bignum_mul_matches_int;
          QCheck_alcotest.to_alcotest qcheck_bignum_divmod_identity;
          QCheck_alcotest.to_alcotest qcheck_bignum_bytes_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_bignum_shift_inverse;
        ] );
      ( "modp",
        [
          Alcotest.test_case "prime (miller-rabin)" `Slow test_modp_prime_miller_rabin;
          Alcotest.test_case "pow small" `Quick test_modp_pow_small;
          Alcotest.test_case "bytes" `Quick test_modp_bytes;
          QCheck_alcotest.to_alcotest qcheck_modp_mul_matches_generic;
          QCheck_alcotest.to_alcotest qcheck_modp_add_sub;
        ] );
      ( "schnorr",
        [
          Alcotest.test_case "sign/verify" `Quick test_schnorr_sign_verify;
          Alcotest.test_case "deterministic" `Quick test_schnorr_deterministic;
          Alcotest.test_case "tamper rejected" `Quick test_schnorr_tamper_rejected;
          Alcotest.test_case "garbage rejected" `Quick test_schnorr_garbage_rejected;
          Alcotest.test_case "pub roundtrip" `Quick test_schnorr_pub_roundtrip;
          Alcotest.test_case "generate distinct" `Quick test_schnorr_generate_distinct;
          QCheck_alcotest.to_alcotest qcheck_schnorr_roundtrip;
        ] );
    ]
