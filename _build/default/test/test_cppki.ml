open Scion_cppki
module Schnorr = Scion_crypto.Schnorr
module Ia = Scion_addr.Ia

let now = 1_700_000_000.0
let day = 86400.0
let year = 365.0 *. day
let ia = Ia.of_string

let roots n = List.init n (fun i ->
    let name = Printf.sprintf "root-%d" i in
    let priv, pub = Schnorr.derive ~seed:("trc-" ^ name) in
    (name, priv, pub))

let base_trc ?(quorum = 2) ?(n_roots = 3) () =
  Trc.sign_base ~isd:71
    ~validity:(now, now +. year)
    ~core_ases:[ ia "71-2:0:1"; ia "71-2:0:2" ]
    ~ca_ases:[ ia "71-2:0:1" ] ~quorum ~roots:(roots n_roots)

let test_base_trc_verifies () =
  let trc = base_trc () in
  Alcotest.(check bool) "base verifies" true (Trc.verify_base trc);
  Alcotest.(check bool) "within validity" true (Trc.in_validity trc (now +. day));
  Alcotest.(check bool) "before validity" false (Trc.in_validity trc (now -. 1.0));
  Alcotest.(check bool) "root lookup" true (Trc.find_root trc "root-0" <> None);
  Alcotest.(check bool) "unknown root" true (Trc.find_root trc "nope" = None)

let test_base_trc_tamper_detected () =
  let trc = base_trc () in
  let tampered = { trc with Trc.quorum = 1 } in
  Alcotest.(check bool) "tampered base rejected" false (Trc.verify_base tampered)

let test_trc_update_quorum () =
  let trc = base_trc () in
  let all = roots 3 in
  let votes2 = List.filteri (fun i _ -> i < 2) (List.map (fun (n, p, _) -> (n, p)) all) in
  (match Trc.update ~prev:trc ~validity:(now, now +. (2.0 *. year)) ~votes:votes2 () with
  | Ok next -> (
      Alcotest.(check int) "serial bumped" 2 next.Trc.serial;
      match Trc.verify_update ~prev:trc next with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  let votes1 = [ List.hd (List.map (fun (n, p, _) -> (n, p)) all) ] in
  match Trc.update ~prev:trc ~validity:(now, now +. year) ~votes:votes1 () with
  | Ok _ -> Alcotest.fail "accepted sub-quorum update"
  | Error _ -> ()

let test_trc_update_unknown_voter () =
  let trc = base_trc () in
  let stranger, _ = Schnorr.derive ~seed:"stranger" in
  let root0_priv = match roots 3 with (_, p, _) :: _ -> p | [] -> assert false in
  match
    Trc.update ~prev:trc ~validity:(now, now +. year)
      ~votes:[ ("mallory", stranger); ("root-0", root0_priv) ]
      ()
  with
  | Ok _ -> Alcotest.fail "accepted unknown voter"
  | Error _ -> ()

let test_trc_chain () =
  let trc = base_trc () in
  let votes = List.map (fun (n, p, _) -> (n, p)) (roots 3) in
  let next1 =
    match Trc.update ~prev:trc ~validity:(now, now +. year) ~votes () with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let next2 =
    match Trc.update ~prev:next1 ~validity:(now, now +. year) ~votes () with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  (match Trc.verify_chain ~base:trc [ next1; next2 ] with
  | Ok latest -> Alcotest.(check int) "latest serial" 3 latest.Trc.serial
  | Error e -> Alcotest.fail e);
  (* Skipping a link breaks the chain. *)
  match Trc.verify_chain ~base:trc [ next2 ] with
  | Ok _ -> Alcotest.fail "accepted gap in chain"
  | Error _ -> ()

let test_trc_root_rotation () =
  let trc = base_trc () in
  let votes = List.map (fun (n, p, _) -> (n, p)) (roots 3) in
  let new_roots =
    List.map
      (fun i ->
        let name = Printf.sprintf "newroot-%d" i in
        let _, pub = Schnorr.derive ~seed:name in
        { Trc.name; key = pub })
      [ 0; 1; 2 ]
  in
  match Trc.update ~prev:trc ~rotate_roots:new_roots ~validity:(now, now +. year) ~votes () with
  | Ok next -> (
      match Trc.verify_update ~prev:trc next with
      | Ok () -> Alcotest.(check bool) "rotated" true (Trc.find_root next "newroot-0" <> None)
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

(* --- Certificates and CA --- *)

let setup_ca ?(profile = Cert.Open_source) () =
  let root_priv, root_pub = Schnorr.derive ~seed:"ca-root" in
  ignore root_pub;
  let ca_ia = ia "71-2:0:1" in
  let ca_priv, ca_pub = Schnorr.derive ~seed:"ca-key" in
  let ca_cert =
    Cert.sign ~kind:Cert.Ca ~profile ~serial:1 ~subject:ca_ia ~pubkey:ca_pub
      ~validity:(now, now +. (5.0 *. year))
      ~issuer:ca_ia ~issuer_key_name:"root-0" ~issuer_priv:root_priv
  in
  let trc =
    Trc.sign_base ~isd:71
      ~validity:(now, now +. (10.0 *. year))
      ~core_ases:[ ca_ia ] ~ca_ases:[ ca_ia ] ~quorum:1
      ~roots:[ ("root-0", root_priv, root_pub) ]
  in
  (Ca.create ~ia:ca_ia ~priv:ca_priv ~cert:ca_cert (), trc)

let subject_keys = Schnorr.derive ~seed:"subject-71-559"

let test_issue_and_chain () =
  let ca, trc = setup_ca () in
  let _, pub = subject_keys in
  let cert = Ca.issue ca ~subject:(ia "71-559") ~pubkey:pub ~profile:Cert.Open_source ~now in
  Alcotest.(check bool) "short-lived" true (cert.Cert.not_after -. cert.Cert.not_before <= 3.0 *. day +. 1.0);
  (match Verify.chain ~trc ~ca_cert:(Ca.ca_cert ca) ~as_cert:cert ~now:(now +. day) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Verify.error_to_string e));
  (* Expired AS cert fails. *)
  (match Verify.chain ~trc ~ca_cert:(Ca.ca_cert ca) ~as_cert:cert ~now:(now +. (10.0 *. day)) with
  | Ok () -> Alcotest.fail "accepted expired cert"
  | Error (Verify.As_cert_invalid _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Verify.error_to_string e));
  (* Forged cert (wrong issuer key) fails. *)
  let mallory, _ = Schnorr.derive ~seed:"mallory" in
  let forged =
    Cert.sign ~kind:Cert.As_signing ~profile:Cert.Open_source ~serial:99 ~subject:(ia "71-559")
      ~pubkey:pub ~validity:(now, now +. day) ~issuer:(Ca.ia ca) ~issuer_key_name:"ca"
      ~issuer_priv:mallory
  in
  match Verify.chain ~trc ~ca_cert:(Ca.ca_cert ca) ~as_cert:forged ~now with
  | Ok () -> Alcotest.fail "accepted forged cert"
  | Error (Verify.As_cert_invalid _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Verify.error_to_string e)

let test_profiles_interop () =
  let ca, trc = setup_ca ~profile:Cert.Proprietary () in
  let _, pub = subject_keys in
  (* Proprietary CA issuing an open-source-profile AS cert and vice versa
     must both verify (the Section 4.5 interop lesson). *)
  List.iter
    (fun profile ->
      let cert = Ca.issue ca ~subject:(ia "71-559") ~pubkey:pub ~profile ~now in
      match Verify.chain ~trc ~ca_cert:(Ca.ca_cert ca) ~as_cert:cert ~now with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Verify.error_to_string e))
    [ Cert.Open_source; Cert.Proprietary ];
  (* The two profiles produce different canonical bytes. *)
  let c1 = Ca.issue ca ~subject:(ia "71-559") ~pubkey:pub ~profile:Cert.Open_source ~now in
  let c2 = { c1 with Cert.profile = Cert.Proprietary } in
  Alcotest.(check bool) "encodings differ" true (Cert.signed_bytes c1 <> Cert.signed_bytes c2)

let test_renewal_flow () =
  let ca, trc = setup_ca () in
  let _, pub = subject_keys in
  let cert = Ca.issue ca ~subject:(ia "71-559") ~pubkey:pub ~profile:Cert.Open_source ~now in
  Alcotest.(check bool) "fresh cert needs no renewal" false (Ca.needs_renewal cert ~now);
  let later = now +. (2.5 *. day) in
  Alcotest.(check bool) "old cert needs renewal" true (Ca.needs_renewal cert ~now:later);
  (match Ca.renew ca ~current:cert ~pubkey:pub ~now:later with
  | Ok fresh -> (
      Alcotest.(check bool) "new serial" true (fresh.Cert.serial > cert.Cert.serial);
      match Verify.chain ~trc ~ca_cert:(Ca.ca_cert ca) ~as_cert:fresh ~now:(later +. day) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Verify.error_to_string e))
  | Error e -> Alcotest.fail e);
  (* Renewal after expiry requires re-enrollment. *)
  (match Ca.renew ca ~current:cert ~pubkey:pub ~now:(now +. (30.0 *. day)) with
  | Ok _ -> Alcotest.fail "renewed expired cert"
  | Error _ -> ());
  (* Revoked certificates cannot renew. *)
  Ca.revoke ca ~serial:cert.Cert.serial;
  Alcotest.(check bool) "revoked" true (Ca.is_revoked ca ~serial:cert.Cert.serial);
  match Ca.renew ca ~current:cert ~pubkey:pub ~now:later with
  | Ok _ -> Alcotest.fail "renewed revoked cert"
  | Error _ -> ()

let test_ca_rejects_non_ca_cert () =
  let ca, _ = setup_ca () in
  let _, pub = subject_keys in
  let as_cert = Ca.issue ca ~subject:(ia "71-559") ~pubkey:pub ~profile:Cert.Open_source ~now in
  let priv, _ = Schnorr.derive ~seed:"x" in
  try
    ignore (Ca.create ~ia:(ia "71-559") ~priv ~cert:as_cert ());
    Alcotest.fail "accepted AS cert as CA cert"
  with Invalid_argument _ -> ()

let test_unauthorized_ca_rejected () =
  let ca, trc = setup_ca () in
  let _, pub = subject_keys in
  let cert = Ca.issue ca ~subject:(ia "71-559") ~pubkey:pub ~profile:Cert.Open_source ~now in
  (* A TRC that does not list the CA AS. *)
  let root_priv, root_pub = Schnorr.derive ~seed:"ca-root" in
  let other_trc =
    Trc.sign_base ~isd:71
      ~validity:(now, now +. (10.0 *. year))
      ~core_ases:[ ia "71-2:0:1" ] ~ca_ases:[ ia "71-2:0:99" ] ~quorum:1
      ~roots:[ ("root-0", root_priv, root_pub) ]
  in
  match Verify.chain ~trc:other_trc ~ca_cert:(Ca.ca_cert ca) ~as_cert:cert ~now with
  | Ok () -> Alcotest.fail "accepted unauthorized CA"
  | Error (Verify.Ca_cert_invalid _) -> ignore trc
  | Error e -> Alcotest.fail ("wrong error: " ^ Verify.error_to_string e)

let test_cert_remaining_fraction () =
  let _, pub = subject_keys in
  let priv, _ = Schnorr.derive ~seed:"issuer" in
  let cert =
    Cert.sign ~kind:Cert.As_signing ~profile:Cert.Open_source ~serial:1 ~subject:(ia "71-1")
      ~pubkey:pub ~validity:(0.0, 100.0) ~issuer:(ia "71-2") ~issuer_key_name:"ca" ~issuer_priv:priv
  in
  Alcotest.(check (float 1e-9)) "start" 1.0 (Cert.remaining_fraction cert 0.0);
  Alcotest.(check (float 1e-9)) "middle" 0.5 (Cert.remaining_fraction cert 50.0);
  Alcotest.(check (float 1e-9)) "end" 0.0 (Cert.remaining_fraction cert 100.0);
  Alcotest.(check (float 1e-9)) "past" 0.0 (Cert.remaining_fraction cert 200.0)

let () =
  Alcotest.run "scion_cppki"
    [
      ( "trc",
        [
          Alcotest.test_case "base verifies" `Quick test_base_trc_verifies;
          Alcotest.test_case "tamper detected" `Quick test_base_trc_tamper_detected;
          Alcotest.test_case "update quorum" `Quick test_trc_update_quorum;
          Alcotest.test_case "unknown voter" `Quick test_trc_update_unknown_voter;
          Alcotest.test_case "chain" `Quick test_trc_chain;
          Alcotest.test_case "root rotation" `Quick test_trc_root_rotation;
        ] );
      ( "cert/ca",
        [
          Alcotest.test_case "issue and chain" `Quick test_issue_and_chain;
          Alcotest.test_case "profiles interop" `Quick test_profiles_interop;
          Alcotest.test_case "renewal flow" `Quick test_renewal_flow;
          Alcotest.test_case "CA rejects non-CA cert" `Quick test_ca_rejects_non_ca_cert;
          Alcotest.test_case "unauthorized CA" `Quick test_unauthorized_ca_rejected;
          Alcotest.test_case "remaining fraction" `Quick test_cert_remaining_fraction;
        ] );
    ]
