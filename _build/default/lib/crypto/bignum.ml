(* Little-endian base-2^16 limbs with no trailing (most-significant) zeros;
   the empty array represents zero. *)

type t = int array

let base_bits = 16
let base = 1 lsl base_bits
let base_mask = base - 1

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero = [||]
let one = [| 1 |]

let of_int v =
  assert (v >= 0);
  let rec limbs v = if v = 0 then [] else (v land base_mask) :: limbs (v lsr base_bits) in
  Array.of_list (limbs v)

let to_int a =
  let v = ref 0 in
  for i = Array.length a - 1 downto 0 do
    if !v > (max_int - a.(i)) lsr base_bits then invalid_arg "Bignum.to_int: overflow";
    v := (!v lsl base_bits) lor a.(i)
  done;
  !v

let is_zero a = Array.length a = 0
let is_odd a = Array.length a > 0 && a.(0) land 1 = 1

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let bit_length a =
  if is_zero a then 0
  else begin
    let top = a.(Array.length a - 1) in
    let rec msb v acc = if v = 0 then acc else msb (v lsr 1) (acc + 1) in
    ((Array.length a - 1) * base_bits) + msb top 0
  end

let bit a i =
  let limb = i / base_bits in
  if limb >= Array.length a then false else a.(limb) land (1 lsl (i mod base_bits)) <> 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- v land base_mask;
        carry := v lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land base_mask;
        carry := v lsr base_bits;
        incr k
      done
    done;
    normalize out
  end

let shift_left a n =
  if is_zero a || n = 0 then a
  else begin
    let limb_shift = n / base_bits and bit_shift = n mod base_bits in
    let la = Array.length a in
    let out = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land base_mask);
      out.(i + limb_shift + 1) <- out.(i + limb_shift + 1) lor (v lsr base_bits)
    done;
    normalize out
  end

let shift_right a n =
  if is_zero a || n = 0 then a
  else begin
    let limb_shift = n / base_bits and bit_shift = n mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let out = Array.make (la - limb_shift) 0 in
      for i = 0 to la - limb_shift - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land base_mask
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

(* Binary long division: adequate because divisions are rare (exponent-field
   reductions and serial-number bookkeeping), while the hot group arithmetic
   uses Modp's special-form reduction. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let n = bit_length a in
    let q = Array.make (Array.length a) 0 in
    let r = ref zero in
    for i = n - 1 downto 0 do
      r := shift_left !r 1;
      if bit a i then r := add !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (normalize q, !r)
  end

let modulo a b = snd (divmod a b)

let modpow base_v exp m =
  if equal m one then zero
  else begin
    let result = ref one in
    let acc = ref (modulo base_v m) in
    let n = bit_length exp in
    for i = 0 to n - 1 do
      if bit exp i then result := modulo (mul !result !acc) m;
      if i < n - 1 then acc := modulo (mul !acc !acc) m
    done;
    !result
  end

let of_bytes_be s =
  let len = String.length s in
  let nlimbs = (len + 1) / 2 in
  let out = Array.make nlimbs 0 in
  for i = 0 to len - 1 do
    (* byte i (big-endian) contributes to bit position 8*(len-1-i) *)
    let bitpos = 8 * (len - 1 - i) in
    out.(bitpos / base_bits) <-
      out.(bitpos / base_bits) lor (Char.code s.[i] lsl (bitpos mod base_bits))
  done;
  normalize out

let to_bytes_be ?width a =
  let nbytes = (bit_length a + 7) / 8 in
  let w = match width with None -> max nbytes 1 | Some w -> w in
  if nbytes > w then invalid_arg "Bignum.to_bytes_be: value too large for width";
  String.init w (fun i ->
      let bitpos = 8 * (w - 1 - i) in
      let limb = bitpos / base_bits in
      if limb >= Array.length a then '\x00'
      else Char.chr ((a.(limb) lsr (bitpos mod base_bits)) land 0xFF))

let of_hex s =
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  of_bytes_be (Scion_util.Hex.decode s)

let to_hex a = Scion_util.Hex.encode (to_bytes_be a)
let limbs a = Array.copy a
let of_limbs a = normalize (Array.copy a)
let pp fmt a = Format.pp_print_string fmt (to_hex a)
