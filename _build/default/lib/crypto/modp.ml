(* p = 2^256 - c with c = 2^32 + 977, so 2^256 === c (mod p): reduction of a
   512-bit product is two cheap "fold the high half times c" steps plus a
   conditional subtract, instead of a generic long division. *)

type felem = Bignum.t

let c = Bignum.add (Bignum.shift_left Bignum.one 32) (Bignum.of_int 977)
let p = Bignum.sub (Bignum.shift_left Bignum.one 256) c
let zero = Bignum.zero
let one = Bignum.one

let low_256 x =
  let l = Bignum.limbs x in
  if Array.length l <= 16 then x else Bignum.of_limbs (Array.sub l 0 16)

let rec fold x =
  let hi = Bignum.shift_right x 256 in
  if Bignum.is_zero hi then x else fold (Bignum.add (low_256 x) (Bignum.mul hi c))

let reduce x =
  let x = fold x in
  let x = if Bignum.compare x p >= 0 then Bignum.sub x p else x in
  if Bignum.compare x p >= 0 then Bignum.sub x p else x

let of_bignum = reduce
let to_bignum x = x
let of_int v = reduce (Bignum.of_int v)
let equal = Bignum.equal
let add a b = reduce (Bignum.add a b)
let sub a b = if Bignum.compare a b >= 0 then Bignum.sub a b else Bignum.sub (Bignum.add a p) b
let mul a b = reduce (Bignum.mul a b)

let pow b e =
  let result = ref one in
  let acc = ref b in
  let n = Bignum.bit_length e in
  for i = 0 to n - 1 do
    if Bignum.bit e i then result := mul !result !acc;
    if i < n - 1 then acc := mul !acc !acc
  done;
  !result

let to_bytes x = Bignum.to_bytes_be ~width:32 x

let of_bytes s =
  if String.length s <> 32 then None
  else begin
    let v = Bignum.of_bytes_be s in
    if Bignum.compare v p >= 0 then None else Some v
  end
