(** AES-128 block encryption (FIPS 197), encrypt-only — all SCION data-plane
    uses (hop-field CMACs, DRKey-style derivation) need only the forward
    permutation. Validated against the FIPS 197 appendix vectors. *)

type key
(** An expanded 128-bit key schedule. *)

val expand_key : string -> key
(** [expand_key k] expands a 16-byte key. Raises [Invalid_argument] on any
    other length. *)

val encrypt_block : key -> string -> string
(** [encrypt_block key block] encrypts a single 16-byte block. Raises
    [Invalid_argument] on any other length. *)
