(** Pure-OCaml SHA-256 (FIPS 180-4). No third-party crypto library is
    available in this environment, so the hash is implemented here and
    validated against the NIST test vectors in the test suite. *)

val digest_size : int
(** 32 bytes. *)

val digest : string -> string
(** [digest msg] returns the 32-byte binary digest of [msg]. *)

val hexdigest : string -> string
(** Lower-case hex of [digest]. *)

type ctx
(** Streaming interface for incremental hashing. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** [finalize ctx] returns the digest; the context must not be reused. *)
