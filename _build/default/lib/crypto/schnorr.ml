type private_key = { x : Bignum.t; x_bytes : string; pub_bytes : string Lazy.t }
type public_key = Modp.felem

let g = Modp.of_int 3
let exponent_modulus = Bignum.sub Modp.p Bignum.one
let signature_size = 64

(* Fixed-base exponentiation: g is constant, so precompute g^(2^i) once and
   turn every g^e into ~|e|/2 multiplications with no squarings. Signing
   happens for every PCB entry during beaconing, so this matters. *)
let g_powers =
  lazy
    (let table = Array.make 257 Modp.one in
     table.(0) <- g;
     for i = 1 to 256 do
       table.(i) <- Modp.mul table.(i - 1) table.(i - 1)
     done;
     table)

let pow_g e =
  let table = Lazy.force g_powers in
  let acc = ref Modp.one in
  for i = 0 to Bignum.bit_length e - 1 do
    if Bignum.bit e i then acc := Modp.mul !acc table.(i)
  done;
  !acc

(* Map 32 uniform bytes into [1, p-2]: reduce mod (p-3) then add 1. The bias
   is negligible (p is within 2^-190 of 2^256). *)
let scalar_of_bytes b =
  let v = Bignum.modulo (Bignum.of_bytes_be b) (Bignum.sub Modp.p (Bignum.of_int 3)) in
  Bignum.add v Bignum.one

let private_of_scalar x =
  let rec priv = { x; x_bytes = Bignum.to_bytes_be ~width:32 x; pub_bytes } 
  and pub_bytes = lazy (Modp.to_bytes (pow_g x)) in
  priv

let public_of_private priv = pow_g priv.x

let generate rng =
  let priv = private_of_scalar (scalar_of_bytes (Bytes.to_string (Scion_util.Rng.bytes rng 32))) in
  (priv, public_of_private priv)

let derive ~seed =
  let priv = private_of_scalar (scalar_of_bytes (Hmac.kdf ~secret:seed ~info:"schnorr-key" 32)) in
  (priv, public_of_private priv)

let challenge ~r_bytes ~pub_bytes ~msg =
  Bignum.modulo
    (Bignum.of_bytes_be (Sha256.digest (r_bytes ^ pub_bytes ^ msg)))
    exponent_modulus

let sign priv msg =
  let pub_bytes = Lazy.force priv.pub_bytes in
  let k =
    let raw = Hmac.sha256 ~key:priv.x_bytes ("nonce" ^ msg) in
    let k = Bignum.modulo (Bignum.of_bytes_be raw) exponent_modulus in
    if Bignum.is_zero k then Bignum.one else k
  in
  let r = pow_g k in
  let r_bytes = Modp.to_bytes r in
  let e = challenge ~r_bytes ~pub_bytes ~msg in
  let s = Bignum.modulo (Bignum.add k (Bignum.mul e priv.x)) exponent_modulus in
  r_bytes ^ Bignum.to_bytes_be ~width:32 s

let verify pub ~msg ~signature =
  if String.length signature <> signature_size then false
  else begin
    match Modp.of_bytes (String.sub signature 0 32) with
    | None -> false
    | Some r ->
        if Modp.equal r Modp.zero then false
        else begin
          let s = Bignum.of_bytes_be (String.sub signature 32 32) in
          if Bignum.compare s exponent_modulus >= 0 then false
          else begin
            let e = challenge ~r_bytes:(Modp.to_bytes r) ~pub_bytes:(Modp.to_bytes pub) ~msg in
            Modp.equal (pow_g s) (Modp.mul r (Modp.pow pub e))
          end
        end
  end

let public_to_string = Modp.to_bytes
let public_of_string = Modp.of_bytes
let fingerprint pub = Scion_util.Hex.short ~n:12 (Sha256.digest (Modp.to_bytes pub))
