type key = { aes : Aes128.key; k1 : string; k2 : string }

let xor_strings a b = String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(* Left shift of a 16-byte string by one bit, with conditional reduction by
   the CMAC constant 0x87 (RFC 4493 subkey generation). *)
let double s =
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let v = (Char.code s.[i] lsl 1) lor !carry in
    carry := (v lsr 8) land 1;
    Bytes.set out i (Char.chr (v land 0xFF))
  done;
  if Char.code s.[0] land 0x80 <> 0 then
    Bytes.set out 15 (Char.chr (Char.code (Bytes.get out 15) lxor 0x87));
  Bytes.to_string out

let of_string k =
  let aes = Aes128.expand_key k in
  let l = Aes128.encrypt_block aes (String.make 16 '\x00') in
  let k1 = double l in
  let k2 = double k1 in
  { aes; k1; k2 }

let mac key msg =
  let len = String.length msg in
  let nblocks = if len = 0 then 1 else (len + 15) / 16 in
  let complete = len > 0 && len mod 16 = 0 in
  let last =
    if complete then xor_strings (String.sub msg ((nblocks - 1) * 16) 16) key.k1
    else begin
      let tail_len = len - ((nblocks - 1) * 16) in
      let padded = Bytes.make 16 '\x00' in
      Bytes.blit_string msg ((nblocks - 1) * 16) padded 0 tail_len;
      Bytes.set padded tail_len '\x80';
      xor_strings (Bytes.to_string padded) key.k2
    end
  in
  let state = ref (String.make 16 '\x00') in
  for i = 0 to nblocks - 2 do
    state := Aes128.encrypt_block key.aes (xor_strings !state (String.sub msg (i * 16) 16))
  done;
  Aes128.encrypt_block key.aes (xor_strings !state last)

let mac_truncated key msg n = String.sub (mac key msg) 0 n

let verify key ~msg ~tag =
  let full = mac key msg in
  if String.length tag > 16 || String.length tag = 0 then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code full.[i])) tag;
    !diff = 0
  end
