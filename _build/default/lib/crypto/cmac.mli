(** AES-CMAC (RFC 4493). SCION hop-field MACs are computed with AES-CMAC
    over the hop's forwarding metadata; border routers verify a truncated
    6-byte tag at line rate. Validated against the RFC 4493 vectors. *)

type key

val of_string : string -> key
(** [of_string k] prepares a CMAC key from a 16-byte AES key (subkey
    derivation included). Raises [Invalid_argument] on other lengths. *)

val mac : key -> string -> string
(** [mac key msg] returns the full 16-byte tag. *)

val mac_truncated : key -> string -> int -> string
(** [mac_truncated key msg n] returns the first [n] bytes of the tag. *)

val verify : key -> msg:string -> tag:string -> bool
(** Constant-time check of a (possibly truncated) tag. *)
