(** HMAC-SHA256 (RFC 2104), validated against the RFC 4231 vectors. Used for
    symmetric message authentication and as the PRF in key derivation and
    deterministic Schnorr nonces. *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] returns the 32-byte HMAC tag. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time tag comparison. *)

val kdf : secret:string -> info:string -> int -> string
(** [kdf ~secret ~info n] expands [secret] into [n] bytes of keying material
    using HKDF-style counter expansion with [info] as the context label. *)
