let block_size = 64

let sha256 ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let pad fill =
    String.init block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor fill))
  in
  let inner = Sha256.digest (pad 0x36 ^ msg) in
  Sha256.digest (pad 0x5C ^ inner)

let verify ~key ~msg ~tag =
  let expected = sha256 ~key msg in
  if String.length expected <> String.length tag then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
    !diff = 0
  end

let kdf ~secret ~info n =
  let out = Buffer.create n in
  let counter = ref 1 in
  while Buffer.length out < n do
    let block = sha256 ~key:secret (info ^ String.make 1 (Char.chr !counter)) in
    Buffer.add_string out block;
    incr counter
  done;
  String.sub (Buffer.contents out) 0 n
