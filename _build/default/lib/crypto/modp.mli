(** Fast arithmetic modulo the fixed 256-bit prime
    [p = 2^256 - 2^32 - 977] (the secp256k1 field prime, chosen because its
    pseudo-Mersenne form allows multiplication-free reduction). This is the
    group in which {!Schnorr} signatures live; signing and verification are
    frequent (every PCB AS entry is signed and re-verified at each hop), so
    the generic {!Bignum.modpow} would be too slow. *)

type felem
(** A field element, always fully reduced (< p). *)

val p : Bignum.t
val zero : felem
val one : felem
val of_bignum : Bignum.t -> felem
(** Reduces modulo p. *)

val to_bignum : felem -> Bignum.t
val of_int : int -> felem
val equal : felem -> felem -> bool
val add : felem -> felem -> felem
val sub : felem -> felem -> felem
val mul : felem -> felem -> felem

val pow : felem -> Bignum.t -> felem
(** [pow b e] computes [b ^ e] in the field via square-and-multiply over the
    fast reduction. *)

val to_bytes : felem -> string
(** Fixed 32-byte big-endian encoding. *)

val of_bytes : string -> felem option
(** Decodes a 32-byte string; [None] if the value is >= p. *)
