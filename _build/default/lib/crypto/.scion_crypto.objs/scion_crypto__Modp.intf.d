lib/crypto/modp.mli: Bignum
