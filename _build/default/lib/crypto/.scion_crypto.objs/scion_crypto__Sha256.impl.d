lib/crypto/sha256.ml: Array Bytes Char Int64 Scion_util String
