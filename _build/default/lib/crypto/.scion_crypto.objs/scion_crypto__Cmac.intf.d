lib/crypto/cmac.mli:
