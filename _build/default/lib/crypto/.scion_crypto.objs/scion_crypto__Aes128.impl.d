lib/crypto/aes128.ml: Array Bytes Char List Scion_util String
