lib/crypto/schnorr.ml: Array Bignum Bytes Hmac Lazy Modp Scion_util Sha256 String
