lib/crypto/schnorr.mli: Scion_util
