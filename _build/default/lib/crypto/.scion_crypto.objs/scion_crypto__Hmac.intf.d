lib/crypto/hmac.mli:
