lib/crypto/hmac.ml: Buffer Char Sha256 String
