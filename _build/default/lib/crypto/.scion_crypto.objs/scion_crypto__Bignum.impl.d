lib/crypto/bignum.ml: Array Char Format Scion_util Stdlib String
