lib/crypto/modp.ml: Array Bignum String
