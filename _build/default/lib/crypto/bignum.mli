(** Arbitrary-precision unsigned integers (no bignum library is installed).

    Values are immutable arrays of base-2^16 limbs. Sizes in this repository
    stay small (≤ 512 bits), so schoolbook algorithms are used throughout;
    the hot path (Schnorr group arithmetic) lives in the specialised
    {!Modp} module instead. *)

type t

val zero : t
val one : t
val of_int : int -> t
(** Requires a non-negative argument. *)

val to_int : t -> int
(** Raises [Invalid_argument] when the value exceeds [max_int]. *)

val is_zero : t -> bool
val is_odd : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val bit_length : t -> int
val bit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] requires [a >= b]. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b] returns (quotient, remainder). Raises [Division_by_zero]
    when [b] is zero. *)

val modulo : t -> t -> t
val modpow : t -> t -> t -> t
(** [modpow base exp m] computes [base ^ exp mod m] with generic square-and-
    multiply; adequate for occasional use (exponent-field arithmetic). *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val of_bytes_be : string -> t
val to_bytes_be : ?width:int -> t -> string
(** [to_bytes_be ~width t] zero-pads to [width] bytes; raises
    [Invalid_argument] when the value does not fit. *)

val of_hex : string -> t
val to_hex : t -> string

val limbs : t -> int array
(** Little-endian base-2^16 limbs (exposed for {!Modp}); the returned array
    is fresh. *)

val of_limbs : int array -> t
(** Inverse of [limbs]; normalises leading zeros. *)

val pp : Format.formatter -> t -> unit
