lib/controlplane/mesh.mli: Combinator Pcb Scion_addr Scion_cppki Scion_dataplane
