lib/controlplane/beacon_store.mli: Pcb Scion_addr
