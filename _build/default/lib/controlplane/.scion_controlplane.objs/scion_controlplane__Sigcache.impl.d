lib/controlplane/sigcache.ml: Hashtbl Scion_crypto
