lib/controlplane/pcb.mli: Format Scion_addr Scion_cppki Scion_crypto Scion_dataplane Scion_util Sigcache
