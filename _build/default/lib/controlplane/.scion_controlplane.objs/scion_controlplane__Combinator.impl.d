lib/controlplane/combinator.ml: Array Float Hashtbl List Pcb Scion_addr Scion_crypto Scion_dataplane Scion_util Set Stdlib
