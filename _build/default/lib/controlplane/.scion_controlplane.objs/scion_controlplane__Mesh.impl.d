lib/controlplane/mesh.ml: Array Beacon_store Combinator Hashtbl Int64 List Option Pcb Printf Scion_addr Scion_cppki Scion_crypto Scion_dataplane Scion_util Sigcache Stdlib
