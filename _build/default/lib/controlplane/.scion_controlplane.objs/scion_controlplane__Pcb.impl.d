lib/controlplane/pcb.ml: Float Format Int32 List Printf Scion_addr Scion_cppki Scion_crypto Scion_dataplane Scion_util Sigcache String
