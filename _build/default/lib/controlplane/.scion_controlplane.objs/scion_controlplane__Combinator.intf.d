lib/controlplane/combinator.mli: Pcb Scion_addr Scion_dataplane
