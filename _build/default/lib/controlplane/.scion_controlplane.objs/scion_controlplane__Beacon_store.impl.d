lib/controlplane/beacon_store.ml: List Pcb Scion_addr
