lib/controlplane/sigcache.mli: Scion_crypto
