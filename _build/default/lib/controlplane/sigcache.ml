type t = {
  table : (string, bool) Hashtbl.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create () = { table = Hashtbl.create 1024; hit_count = 0; miss_count = 0 }
let global = create ()

let verify t pub ~msg ~signature =
  let key =
    Scion_crypto.Sha256.digest
      (Scion_crypto.Schnorr.public_to_string pub ^ signature ^ Scion_crypto.Sha256.digest msg)
  in
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hit_count <- t.hit_count + 1;
      v
  | None ->
      t.miss_count <- t.miss_count + 1;
      let v = Scion_crypto.Schnorr.verify pub ~msg ~signature in
      Hashtbl.replace t.table key v;
      v

let hits t = t.hit_count
let misses t = t.miss_count

let clear t =
  Hashtbl.reset t.table;
  t.hit_count <- 0;
  t.miss_count <- 0
