(** SCION addressing: isolation domains (ISD), AS numbers, and their
    combination (IA).

    AS numbers follow the SCION convention: values below 2^32 print as plain
    decimal (BGP-compatible range, e.g. ["559"]), larger values print as
    three colon-separated 16-bit hex groups (e.g. ["2:0:3b"]). An IA prints
    as ["<isd>-<as>"], e.g. ["71-2:0:3b"] or ["64-559"]. *)

type isd = int
(** 16-bit isolation-domain identifier. 0 is the wildcard. *)

type asn
(** 48-bit AS number. *)

type t = { isd : isd; asn : asn }
(** An ISD-AS pair. *)

val asn_of_int : int -> asn
(** Raises [Invalid_argument] outside \[0, 2^48). *)

val asn_to_int : asn -> int
val asn_of_string : string -> asn
(** Parses both decimal ("559") and hex-group ("2:0:3b") forms. Raises
    [Invalid_argument] on malformed input. *)

val asn_to_string : asn -> string

val make : int -> int -> t
(** [make isd asn_int] builds an IA from raw integers. *)

val of_string : string -> t
(** Parses ["71-2:0:3b"]. Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val wildcard : t
(** ["0-0"], matching any IA in predicates. *)

val is_wildcard : t -> bool

val encode : Scion_util.Rw.Writer.t -> t -> unit
(** 8-byte wire form: 16-bit ISD then 48-bit AS, big-endian. *)

val decode : Scion_util.Rw.Reader.t -> t

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
