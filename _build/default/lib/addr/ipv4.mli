(** IPv4 addresses and UDP endpoints for the intra-AS "Layer 2.5" underlay.
    SCION packets travel between end hosts and border routers inside an AS
    encapsulated in IP-UDP; the simulator models those local networks with
    real dotted-quad addressing so bootstrapping hints and topology files
    look like their production counterparts. *)

type t
(** An IPv4 address. *)

val of_string : string -> t
(** Parses dotted-quad notation. Raises [Invalid_argument] on malformed
    input. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val in_subnet : t -> prefix:t -> bits:int -> bool
(** [in_subnet a ~prefix ~bits] tests membership of [a] in [prefix/bits]. *)

val pp : Format.formatter -> t -> unit

type endpoint = { host : t; port : int }
(** A UDP endpoint. *)

val endpoint : t -> int -> endpoint
val endpoint_of_string : string -> endpoint
(** Parses ["10.0.0.1:30041"]. Raises [Invalid_argument] on malformed
    input. *)

val endpoint_to_string : endpoint -> string
val endpoint_equal : endpoint -> endpoint -> bool
val pp_endpoint : Format.formatter -> endpoint -> unit
