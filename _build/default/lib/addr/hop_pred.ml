type hop = { ia : Ia.t; ingress : int; egress : int }
type t = { pred_ia : Ia.t; if1 : int; if2 : int option }

let any = { pred_ia = Ia.wildcard; if1 = 0; if2 = None }

let parse s =
  let ia_part, if_part =
    match String.index_opt s '#' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match Ia.of_string ia_part with
  | exception Invalid_argument m -> Error m
  | pred_ia -> (
      let ifid str =
        match int_of_string_opt str with
        | Some v when v >= 0 -> Ok v
        | Some _ | None -> Error (Printf.sprintf "bad interface id %S" str)
      in
      match String.split_on_char ',' if_part with
      | [ "" ] -> Ok { pred_ia; if1 = 0; if2 = None }
      | [ one ] -> (
          match ifid one with Ok v -> Ok { pred_ia; if1 = v; if2 = None } | Error e -> Error e)
      | [ a; b ] -> (
          match (ifid a, ifid b) with
          | Ok v1, Ok v2 -> Ok { pred_ia; if1 = v1; if2 = Some v2 }
          | Error e, _ | _, Error e -> Error e)
      | _ -> Error (Printf.sprintf "malformed interface list %S" if_part))

let to_string p =
  let base = Ia.to_string p.pred_ia in
  match p.if2 with
  | None -> if p.if1 = 0 then base else Printf.sprintf "%s#%d" base p.if1
  | Some i2 -> Printf.sprintf "%s#%d,%d" base p.if1 i2

let ia_matches pred ia =
  (pred.Ia.isd = 0 || pred.Ia.isd = ia.Ia.isd)
  && (Ia.asn_to_int pred.Ia.asn = 0 || Ia.asn_to_int pred.Ia.asn = Ia.asn_to_int ia.Ia.asn)

let matches p hop =
  ia_matches p.pred_ia hop.ia
  &&
  match p.if2 with
  | Some i2 ->
      (p.if1 = 0 || p.if1 = hop.ingress) && (i2 = 0 || i2 = hop.egress)
  | None -> p.if1 = 0 || p.if1 = hop.ingress || p.if1 = hop.egress

type token = Pred of t | Star
type sequence = token list

let parse_sequence s =
  let parts = String.split_on_char ' ' s |> List.filter (fun p -> p <> "") in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "*" :: rest -> go (Star :: acc) rest
    | p :: rest -> (
        match parse p with Ok pred -> go (Pred pred :: acc) rest | Error e -> Error e)
  in
  go [] parts

let sequence_to_string seq =
  String.concat " " (List.map (function Star -> "*" | Pred p -> to_string p) seq)

let sequence_matches seq hops =
  (* Backtracking match: [Star] consumes zero or more hops. *)
  let rec go tokens hops =
    match (tokens, hops) with
    | [], [] -> true
    | [], _ :: _ -> false
    | Star :: rest, [] -> go rest []
    | Star :: rest, _ :: tail -> go rest hops || go tokens tail
    | Pred _ :: _, [] -> false
    | Pred p :: rest, h :: tail -> matches p h && go rest tail
  in
  match seq with [] -> true | _ -> go seq hops

let deny_transit ~through ~endpoints_ok hops =
  let n = List.length hops in
  List.for_all2
    (fun idx hop ->
      if not (Ia.Set.mem hop.ia through) then true
      else endpoints_ok && (idx = 0 || idx = n - 1))
    (List.init n Fun.id) hops
