(** Hop predicates and sequences — the path-policy language exposed to
    applications (the [--sequence] flag the paper's SCIONabled [bat] tool
    gained, Appendix E).

    A hop predicate has the form ["ISD-AS#IF1,IF2"], where each component
    may be 0 (wildcard): ["0-0#0"] matches any hop, ["71-0"] matches any AS
    in ISD 71, ["71-2:0:3b#1,2"] matches that AS traversed from interface 1
    to interface 2, and ["71-559#5"] matches if either interface is 5.

    A sequence is a whitespace-separated list of hop predicates, each
    matching exactly one hop, with ["*"] matching any number of arbitrary
    hops (e.g. ["71-559 * 71-88"]). *)

type hop = { ia : Ia.t; ingress : int; egress : int }
(** One traversed AS with its entry/exit interface ids (0 when the AS is an
    endpoint of the path). *)

type t
(** A single hop predicate. *)

val parse : string -> (t, string) result
val to_string : t -> string
val any : t
(** ["0-0#0"]. *)

val matches : t -> hop -> bool

type sequence

val parse_sequence : string -> (sequence, string) result
(** Parses a full sequence; the empty string yields a sequence matching
    every path. *)

val sequence_to_string : sequence -> string
val sequence_matches : sequence -> hop list -> bool

val deny_transit : through:Ia.Set.t -> endpoints_ok:bool -> hop list -> bool
(** [deny_transit ~through ~endpoints_ok hops] returns [true] when the path
    is acceptable under a policy that forbids *transiting* the given ASes:
    a hop in [through] is allowed only as first or last hop (and only when
    [endpoints_ok]). This implements the paper's Section 4.9 rule that
    commercial ASes may originate/terminate but never transit SCIERA. *)
