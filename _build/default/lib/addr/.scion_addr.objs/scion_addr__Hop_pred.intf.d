lib/addr/hop_pred.mli: Ia
