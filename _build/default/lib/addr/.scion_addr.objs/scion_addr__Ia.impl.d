lib/addr/ia.ml: Format Hashtbl Map Printf Scion_util Set Stdlib String
