lib/addr/hop_pred.ml: Fun Ia List Printf String
