lib/addr/ipv4.ml: Format Int32 Printf String
