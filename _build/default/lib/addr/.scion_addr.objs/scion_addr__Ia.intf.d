lib/addr/ia.mli: Format Map Scion_util Set
