type t = int32

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let octet o =
        match int_of_string_opt o with
        | Some v when v >= 0 && v <= 255 -> v
        | Some _ | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: bad octet %S in %S" o s)
      in
      Int32.of_int ((octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d)
  | _ -> invalid_arg (Printf.sprintf "Ipv4.of_string: malformed address %S" s)

let of_int32 v = v
let to_int32 v = v

let to_string v =
  let u = Int32.to_int v land 0xFFFFFFFF in
  Printf.sprintf "%d.%d.%d.%d" ((u lsr 24) land 0xFF) ((u lsr 16) land 0xFF) ((u lsr 8) land 0xFF)
    (u land 0xFF)

let equal = Int32.equal
let compare = Int32.compare

let in_subnet a ~prefix ~bits =
  if bits < 0 || bits > 32 then invalid_arg "Ipv4.in_subnet: bad prefix length";
  if bits = 0 then true
  else begin
    let mask = Int32.shift_left (-1l) (32 - bits) in
    Int32.equal (Int32.logand a mask) (Int32.logand prefix mask)
  end

let pp fmt v = Format.pp_print_string fmt (to_string v)

type endpoint = { host : t; port : int }

let endpoint host port =
  if port < 0 || port > 0xFFFF then invalid_arg (Printf.sprintf "Ipv4.endpoint: bad port %d" port);
  { host; port }

let endpoint_of_string s =
  match String.index_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "Ipv4.endpoint_of_string: missing port in %S" s)
  | Some i -> (
      let host = of_string (String.sub s 0 i) in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some p -> endpoint host p
      | None -> invalid_arg (Printf.sprintf "Ipv4.endpoint_of_string: bad port in %S" s))

let endpoint_to_string e = Printf.sprintf "%s:%d" (to_string e.host) e.port
let endpoint_equal a b = equal a.host b.host && a.port = b.port
let pp_endpoint fmt e = Format.pp_print_string fmt (endpoint_to_string e)
