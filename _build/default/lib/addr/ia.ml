type isd = int
type asn = int

let max_asn = (1 lsl 48) - 1
let bgp_asn_limit = 1 lsl 32

type t = { isd : isd; asn : asn }

let asn_of_int v =
  if v < 0 || v > max_asn then invalid_arg (Printf.sprintf "Ia.asn_of_int: %d out of range" v);
  v

let asn_to_int v = v

let asn_of_string s =
  match String.split_on_char ':' s with
  | [ dec ] -> (
      match int_of_string_opt dec with
      | Some v when v >= 0 && v < bgp_asn_limit -> v
      | Some _ | None -> invalid_arg (Printf.sprintf "Ia.asn_of_string: bad decimal AS %S" s))
  | [ a; b; c ] ->
      let group g =
        match int_of_string_opt ("0x" ^ g) with
        | Some v when v >= 0 && v <= 0xFFFF -> v
        | Some _ | None -> invalid_arg (Printf.sprintf "Ia.asn_of_string: bad hex group %S" g)
      in
      (group a lsl 32) lor (group b lsl 16) lor group c
  | _ -> invalid_arg (Printf.sprintf "Ia.asn_of_string: malformed AS %S" s)

let asn_to_string v =
  if v < bgp_asn_limit then string_of_int v
  else Printf.sprintf "%x:%x:%x" ((v lsr 32) land 0xFFFF) ((v lsr 16) land 0xFFFF) (v land 0xFFFF)

let make isd asn =
  if isd < 0 || isd > 0xFFFF then invalid_arg (Printf.sprintf "Ia.make: ISD %d out of range" isd);
  { isd; asn = asn_of_int asn }

let of_string s =
  match String.index_opt s '-' with
  | None -> invalid_arg (Printf.sprintf "Ia.of_string: missing '-' in %S" s)
  | Some i ->
      let isd_str = String.sub s 0 i in
      let asn_str = String.sub s (i + 1) (String.length s - i - 1) in
      let isd =
        match int_of_string_opt isd_str with
        | Some v when v >= 0 && v <= 0xFFFF -> v
        | Some _ | None -> invalid_arg (Printf.sprintf "Ia.of_string: bad ISD %S" isd_str)
      in
      { isd; asn = asn_of_string asn_str }

let to_string t = Printf.sprintf "%d-%s" t.isd (asn_to_string t.asn)
let equal a b = a.isd = b.isd && a.asn = b.asn
let compare a b = if a.isd <> b.isd then Stdlib.compare a.isd b.isd else Stdlib.compare a.asn b.asn
let hash t = Hashtbl.hash (t.isd, t.asn)
let wildcard = { isd = 0; asn = 0 }
let is_wildcard t = t.isd = 0 && t.asn = 0

let encode w t =
  Scion_util.Rw.Writer.u16 w t.isd;
  Scion_util.Rw.Writer.u16 w ((t.asn lsr 32) land 0xFFFF);
  Scion_util.Rw.Writer.u32_of_int w (t.asn land 0xFFFFFFFF)

let decode r =
  let isd = Scion_util.Rw.Reader.u16 r in
  let hi = Scion_util.Rw.Reader.u16 r in
  let lo = Scion_util.Rw.Reader.u32_to_int r in
  { isd; asn = (hi lsl 32) lor lo }

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
