lib/netsim/net.ml: Array Engine Float Hashtbl List Option Printf Scion_util
