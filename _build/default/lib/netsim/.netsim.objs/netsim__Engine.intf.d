lib/netsim/engine.mli:
