lib/netsim/net.mli: Engine Scion_util
