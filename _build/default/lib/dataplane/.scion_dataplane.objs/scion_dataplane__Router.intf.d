lib/dataplane/router.mli: Fwkey Packet Scion_addr
