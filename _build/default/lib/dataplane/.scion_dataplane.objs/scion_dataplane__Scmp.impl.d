lib/dataplane/scmp.ml: Printf Scion_addr Scion_util
