lib/dataplane/router.ml: Fwkey Hashtbl List Packet Path Printf Scion_addr Scion_crypto String
