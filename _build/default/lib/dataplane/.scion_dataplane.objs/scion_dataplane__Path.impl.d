lib/dataplane/path.ml: Array Char Format Int32 List Printf Scion_crypto Scion_util String
