lib/dataplane/packet.ml: Path Printf Scion_addr Scion_util String
