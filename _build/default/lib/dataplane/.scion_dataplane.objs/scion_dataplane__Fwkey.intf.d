lib/dataplane/fwkey.mli: Scion_addr Scion_crypto
