lib/dataplane/fwkey.ml: Scion_addr Scion_crypto
