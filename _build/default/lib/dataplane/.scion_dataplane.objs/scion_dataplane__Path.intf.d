lib/dataplane/path.mli: Format Scion_crypto
