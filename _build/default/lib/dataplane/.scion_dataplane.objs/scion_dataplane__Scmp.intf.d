lib/dataplane/scmp.mli: Scion_addr
