lib/dataplane/packet.mli: Path Scion_addr
