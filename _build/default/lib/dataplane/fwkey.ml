type t = { cmac : Scion_crypto.Cmac.key }

let of_master_secret secret =
  let raw = Scion_crypto.Hmac.kdf ~secret ~info:"scion-forwarding-key" 16 in
  { cmac = Scion_crypto.Cmac.of_string raw }

let of_seed ~ia ~seed = of_master_secret (Scion_addr.Ia.to_string ia ^ "|" ^ seed)
let cmac_key t = t.cmac
