module Rw = Scion_util.Rw

type host = Ipv4 of Scion_addr.Ipv4.t | Service of int

let svc_cs = 0x0002
let svc_ds = 0x0001

let host_equal a b =
  match (a, b) with
  | Ipv4 x, Ipv4 y -> Scion_addr.Ipv4.equal x y
  | Service x, Service y -> x = y
  | Ipv4 _, Service _ | Service _, Ipv4 _ -> false

let host_to_string = function
  | Ipv4 a -> Scion_addr.Ipv4.to_string a
  | Service s when s = svc_cs -> "CS"
  | Service s when s = svc_ds -> "DS"
  | Service s -> Printf.sprintf "SVC:%d" s

type proto = Udp | Scmp | Bfd

let proto_to_int = function Udp -> 17 | Scmp -> 202 | Bfd -> 203

let proto_of_int = function
  | 17 -> Some Udp
  | 202 -> Some Scmp
  | 203 -> Some Bfd
  | _ -> None

type path = Empty | Standard of Path.t

type t = {
  traffic_class : int;
  flow_id : int;
  proto : proto;
  dst_ia : Scion_addr.Ia.t;
  src_ia : Scion_addr.Ia.t;
  dst_host : host;
  src_host : host;
  path : path;
  payload : string;
}

let make ?(traffic_class = 0) ?(flow_id = 0) ~proto ~src ~dst ~path payload =
  let src_ia, src_host = src and dst_ia, dst_host = dst in
  { traffic_class; flow_id; proto; dst_ia; src_ia; dst_host; src_host; path; payload }

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt
let version = 0
let path_type = function Empty -> 0 | Standard _ -> 1

let host_type = function Ipv4 _ -> 0 | Service _ -> 1

let encode_host w = function
  | Ipv4 a -> Rw.Writer.u32 w (Scion_addr.Ipv4.to_int32 a)
  | Service s -> Rw.Writer.u32_of_int w s

let decode_host r ty =
  match ty with
  | 0 -> Ipv4 (Scion_addr.Ipv4.of_int32 (Rw.Reader.u32 r))
  | 1 -> Service (Rw.Reader.u32_to_int r)
  | _ -> malformed "unknown host address type %d" ty

let encode t =
  let w = Rw.Writer.create () in
  (* Word 0: version(4) traffic_class(8) flow_id(20) *)
  Rw.Writer.u32_of_int w
    ((version lsl 28) lor ((t.traffic_class land 0xFF) lsl 20) lor (t.flow_id land 0xFFFFF));
  let path_bytes = match t.path with Empty -> "" | Standard p -> Path.encode p in
  (* Word 1: next_hdr(8) path_type(8) DT(4)DL(4) ST(4)SL(4) *)
  Rw.Writer.u8 w (proto_to_int t.proto);
  Rw.Writer.u8 w (path_type t.path);
  Rw.Writer.u8 w ((host_type t.dst_host lsl 4) lor 4);
  Rw.Writer.u8 w ((host_type t.src_host lsl 4) lor 4);
  (* Word 2: payload length, path length *)
  Rw.Writer.u16 w (String.length t.payload);
  Rw.Writer.u16 w (String.length path_bytes);
  Scion_addr.Ia.encode w t.dst_ia;
  Scion_addr.Ia.encode w t.src_ia;
  encode_host w t.dst_host;
  encode_host w t.src_host;
  Rw.Writer.raw w path_bytes;
  Rw.Writer.raw w t.payload;
  Rw.Writer.contents w

let decode s =
  let r = Rw.Reader.of_string s in
  try
    let word0 = Rw.Reader.u32_to_int r in
    let ver = (word0 lsr 28) land 0xF in
    if ver <> version then malformed "unsupported version %d" ver;
    let traffic_class = (word0 lsr 20) land 0xFF in
    let flow_id = word0 land 0xFFFFF in
    let proto =
      let v = Rw.Reader.u8 r in
      match proto_of_int v with Some p -> p | None -> malformed "unknown protocol %d" v
    in
    let ptype = Rw.Reader.u8 r in
    let dt = Rw.Reader.u8 r in
    let st = Rw.Reader.u8 r in
    let payload_len = Rw.Reader.u16 r in
    let path_len = Rw.Reader.u16 r in
    let dst_ia = Scion_addr.Ia.decode r in
    let src_ia = Scion_addr.Ia.decode r in
    let dst_host = decode_host r (dt lsr 4) in
    let src_host = decode_host r (st lsr 4) in
    let path_bytes = Rw.Reader.raw r path_len in
    let path =
      match ptype with
      | 0 -> if path_len <> 0 then malformed "empty path with %d path bytes" path_len else Empty
      | 1 -> (
          match Path.decode path_bytes with
          | p -> Standard p
          | exception Path.Malformed m -> malformed "bad path: %s" m)
      | _ -> malformed "unknown path type %d" ptype
    in
    let payload = Rw.Reader.raw r payload_len in
    Rw.Reader.expect_end r;
    { traffic_class; flow_id; proto; dst_ia; src_ia; dst_host; src_host; path; payload }
  with Rw.Truncated -> malformed "truncated packet"

let reply_skeleton t ~payload =
  {
    t with
    dst_ia = t.src_ia;
    src_ia = t.dst_ia;
    dst_host = t.src_host;
    src_host = t.dst_host;
    path = (match t.path with Empty -> Empty | Standard p -> Standard (Path.reverse p));
    payload;
  }

module Udp = struct
  type datagram = { src_port : int; dst_port : int; data : string }

  let encode d =
    let w = Rw.Writer.create () in
    Rw.Writer.u16 w d.src_port;
    Rw.Writer.u16 w d.dst_port;
    Rw.Writer.u16 w (String.length d.data);
    Rw.Writer.raw w d.data;
    Rw.Writer.contents w

  let decode s =
    let r = Rw.Reader.of_string s in
    try
      let src_port = Rw.Reader.u16 r in
      let dst_port = Rw.Reader.u16 r in
      let len = Rw.Reader.u16 r in
      let data = Rw.Reader.raw r len in
      Rw.Reader.expect_end r;
      { src_port; dst_port; data }
    with Rw.Truncated -> malformed "truncated UDP datagram"
end
