(** SCION packet: common header, address header, path, payload.

    The layout follows the SCION header specification (version 0 standard
    header): a fixed common header with flow id and path type, an address
    header carrying destination/source IA and host addresses, the path
    (empty for intra-AS, standard otherwise), then the L4 payload. *)

type host = Ipv4 of Scion_addr.Ipv4.t | Service of int
(** End-host address within an AS: a concrete IPv4 address or a well-known
    anycast service (see {!svc_cs}, {!svc_ds}). *)

val svc_cs : int
(** Control-service anycast address. *)

val svc_ds : int
(** Discovery-service anycast address. *)

val host_equal : host -> host -> bool
val host_to_string : host -> string

type proto = Udp | Scmp | Bfd
(** L4 protocols carried in this reproduction. *)

val proto_to_int : proto -> int

type path = Empty | Standard of Path.t
(** [Empty] is used for intra-AS communication (no inter-AS forwarding). *)

type t = {
  traffic_class : int;
  flow_id : int;  (** 20-bit flow label. *)
  proto : proto;
  dst_ia : Scion_addr.Ia.t;
  src_ia : Scion_addr.Ia.t;
  dst_host : host;
  src_host : host;
  path : path;
  payload : string;
}

val make :
  ?traffic_class:int ->
  ?flow_id:int ->
  proto:proto ->
  src:Scion_addr.Ia.t * host ->
  dst:Scion_addr.Ia.t * host ->
  path:path ->
  string ->
  t

exception Malformed of string

val encode : t -> string
val decode : string -> t
(** Raises [Malformed]. *)

val reply_skeleton : t -> payload:string -> t
(** Swap source and destination and reverse the path — what an end host
    does to answer (e.g. an SCMP echo reply). Raises [Path.Malformed] when
    the path cannot be reversed. *)

module Udp : sig
  type datagram = { src_port : int; dst_port : int; data : string }

  val encode : datagram -> string
  val decode : string -> datagram
  (** Raises [Malformed]. *)
end
