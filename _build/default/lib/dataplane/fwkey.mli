(** Per-AS data-plane forwarding keys.

    Each AS holds a secret from which its hop-field MAC key is derived; the
    border routers of the AS share this key. Derivation is deterministic so
    a simulated AS can be rebuilt from its seed. *)

type t
(** The AS forwarding secret (with the expanded CMAC key cached). *)

val of_master_secret : string -> t
(** Derive the forwarding key from an AS master secret. *)

val of_seed : ia:Scion_addr.Ia.t -> seed:string -> t
(** Convenience derivation binding the key to the AS identity. *)

val cmac_key : t -> Scion_crypto.Cmac.key
