(** Certificate-chain verification: AS certificate → CA certificate → TRC
    root key, with validity-window and authorization checks. This is what a
    control service runs before trusting a PCB signature. *)

type error =
  | As_cert_invalid of string
  | Ca_cert_invalid of string
  | Trc_invalid of string

val error_to_string : error -> string

val chain :
  trc:Trc.t -> ca_cert:Cert.t -> as_cert:Cert.t -> now:float -> (unit, error) result
(** Full chain check: the TRC is within validity; the CA certificate's
    subject is an authorized CA AS of the TRC and its signature verifies
    under the named TRC root key; the AS certificate verifies under the CA
    key and is within validity; issuers line up. *)

val pcb_signature :
  trc:Trc.t ->
  ca_cert:Cert.t ->
  as_cert:Cert.t ->
  now:float ->
  msg:string ->
  signature:string ->
  (unit, error) result
(** [chain] plus verification of [signature] over [msg] under the AS
    certificate's public key. *)
