module Rw = Scion_util.Rw
module Schnorr = Scion_crypto.Schnorr

type profile = Open_source | Proprietary
type kind = Ca | As_signing

type t = {
  kind : kind;
  profile : profile;
  serial : int;
  subject : Scion_addr.Ia.t;
  pubkey : Schnorr.public_key;
  not_before : float;
  not_after : float;
  issuer : Scion_addr.Ia.t;
  issuer_key_name : string;
  signature : string;
}

(* The two profiles serialise the same fields in a different order (and with
   a different magic), standing in for the format divergence between the
   proprietary and open-source stacks that Section 4.5 describes. A verifier
   handles both because [signed_bytes] dispatches on the embedded profile. *)
let signed_bytes t =
  let w = Rw.Writer.create () in
  let kind_byte = match t.kind with Ca -> 1 | As_signing -> 2 in
  let subject () = Scion_addr.Ia.encode w t.subject in
  let issuer () =
    Scion_addr.Ia.encode w t.issuer;
    Rw.Writer.u16 w (String.length t.issuer_key_name);
    Rw.Writer.raw w t.issuer_key_name
  in
  let validity () =
    Rw.Writer.u64 w (Int64.of_float t.not_before);
    Rw.Writer.u64 w (Int64.of_float t.not_after)
  in
  let key () = Rw.Writer.raw w (Schnorr.public_to_string t.pubkey) in
  let serial () = Rw.Writer.u32_of_int w t.serial in
  (match t.profile with
  | Open_source ->
      Rw.Writer.raw w "OSCERT1";
      Rw.Writer.u8 w kind_byte;
      serial ();
      subject ();
      validity ();
      key ();
      issuer ()
  | Proprietary ->
      Rw.Writer.raw w "APCORE1";
      Rw.Writer.u8 w kind_byte;
      issuer ();
      subject ();
      key ();
      validity ();
      serial ());
  Rw.Writer.contents w

let sign ~kind ~profile ~serial ~subject ~pubkey ~validity:(not_before, not_after) ~issuer
    ~issuer_key_name ~issuer_priv =
  let unsigned =
    {
      kind;
      profile;
      serial;
      subject;
      pubkey;
      not_before;
      not_after;
      issuer;
      issuer_key_name;
      signature = "";
    }
  in
  { unsigned with signature = Schnorr.sign issuer_priv (signed_bytes unsigned) }

let verify_with issuer_pub t =
  Schnorr.verify issuer_pub ~msg:(signed_bytes { t with signature = "" }) ~signature:t.signature

let in_validity t now = now >= t.not_before && now <= t.not_after

let remaining_fraction t now =
  let span = t.not_after -. t.not_before in
  if span <= 0.0 then 0.0 else Float.max 0.0 (Float.min 1.0 ((t.not_after -. now) /. span))

let fingerprint t = Scion_util.Hex.short ~n:12 (Scion_crypto.Sha256.digest (signed_bytes { t with signature = "" }))

let pp fmt t =
  Format.fprintf fmt "%s cert #%d for %s (by %s, %s)"
    (match t.kind with Ca -> "CA" | As_signing -> "AS")
    t.serial
    (Scion_addr.Ia.to_string t.subject)
    (Scion_addr.Ia.to_string t.issuer)
    (match t.profile with Open_source -> "open-source" | Proprietary -> "proprietary")
