type error =
  | As_cert_invalid of string
  | Ca_cert_invalid of string
  | Trc_invalid of string

let error_to_string = function
  | As_cert_invalid m -> "AS certificate invalid: " ^ m
  | Ca_cert_invalid m -> "CA certificate invalid: " ^ m
  | Trc_invalid m -> "TRC invalid: " ^ m

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let chain ~trc ~ca_cert ~as_cert ~now =
  let* () = if Trc.in_validity trc now then Ok () else Error (Trc_invalid "outside validity window") in
  let* () =
    if ca_cert.Cert.kind = Cert.Ca then Ok () else Error (Ca_cert_invalid "not a CA certificate")
  in
  let* () =
    if List.exists (Scion_addr.Ia.equal ca_cert.Cert.subject) trc.Trc.ca_ases then Ok ()
    else Error (Ca_cert_invalid "subject is not an authorized CA AS in the TRC")
  in
  let* root =
    match Trc.find_root trc ca_cert.Cert.issuer_key_name with
    | Some r -> Ok r
    | None -> Error (Ca_cert_invalid ("unknown TRC root key " ^ ca_cert.Cert.issuer_key_name))
  in
  let* () =
    if Cert.verify_with root.Trc.key ca_cert then Ok ()
    else Error (Ca_cert_invalid "signature does not verify under the TRC root key")
  in
  let* () =
    if Cert.in_validity ca_cert now then Ok () else Error (Ca_cert_invalid "outside validity window")
  in
  let* () =
    if as_cert.Cert.kind = Cert.As_signing then Ok ()
    else Error (As_cert_invalid "not an AS certificate")
  in
  let* () =
    if Scion_addr.Ia.equal as_cert.Cert.issuer ca_cert.Cert.subject then Ok ()
    else Error (As_cert_invalid "issuer does not match the CA certificate subject")
  in
  let* () =
    if Cert.verify_with ca_cert.Cert.pubkey as_cert then Ok ()
    else Error (As_cert_invalid "signature does not verify under the CA key")
  in
  if Cert.in_validity as_cert now then Ok ()
  else Error (As_cert_invalid "outside validity window")

let pcb_signature ~trc ~ca_cert ~as_cert ~now ~msg ~signature =
  let* () = chain ~trc ~ca_cert ~as_cert ~now in
  if Scion_crypto.Schnorr.verify as_cert.Cert.pubkey ~msg ~signature then Ok ()
  else Error (As_cert_invalid "PCB signature does not verify")
