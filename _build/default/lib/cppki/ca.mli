(** The ISD certificate authority — the open-source smallstep-based CA the
    paper built for SCIERA (Section 4.5). Issues short-lived AS
    certificates, renews them automatically, and serves both encoding
    profiles so that proprietary and open-source ASes interoperate. *)

type t

val create :
  ia:Scion_addr.Ia.t ->
  priv:Scion_crypto.Schnorr.private_key ->
  cert:Cert.t ->
  ?default_validity:float ->
  unit ->
  t
(** [cert] must be a CA certificate whose subject is [ia]. Default validity
    of issued AS certificates is 3 days (the paper: "typically just a few
    days"). Raises [Invalid_argument] on a non-CA certificate. *)

val ia : t -> Scion_addr.Ia.t
val ca_cert : t -> Cert.t

val issue :
  t ->
  subject:Scion_addr.Ia.t ->
  pubkey:Scion_crypto.Schnorr.public_key ->
  profile:Cert.profile ->
  now:float ->
  Cert.t
(** Enrollment: issue a fresh AS certificate starting at [now]. *)

val renew : t -> current:Cert.t -> pubkey:Scion_crypto.Schnorr.public_key -> now:float -> (Cert.t, string) result
(** Automated renewal: accepts only if [current] was issued by this CA, is
    still within validity, and names the same subject. The new certificate
    keeps the subject's profile. *)

val revoke : t -> serial:int -> unit
val is_revoked : t -> serial:int -> bool
val issued_count : t -> int

val needs_renewal : Cert.t -> now:float -> bool
(** Renewal policy used by the orchestrator: renew when less than one third
    of the validity period remains. *)
