(** Control-plane certificates: CA certificates (signed by a TRC root key)
    and AS certificates (signed by a CA).

    AS certificates are deliberately short-lived — a few days — which is why
    the paper insists on fully automated issuance and renewal (Section 4.5).
    Two encoding profiles exist, mirroring the paper's interoperability
    lesson: the proprietary stack and the open-source stack serialise the
    same fields in different orders, and verifiers must accept both. *)

type profile = Open_source | Proprietary

type kind = Ca | As_signing

type t = {
  kind : kind;
  profile : profile;
  serial : int;
  subject : Scion_addr.Ia.t;
  pubkey : Scion_crypto.Schnorr.public_key;
  not_before : float;
  not_after : float;
  issuer : Scion_addr.Ia.t;
  issuer_key_name : string;
      (** For CA certs: the TRC root key name. For AS certs: "ca". *)
  signature : string;
}

val signed_bytes : t -> string
(** Canonical bytes covered by the signature; depends on [profile]. *)

val sign :
  kind:kind ->
  profile:profile ->
  serial:int ->
  subject:Scion_addr.Ia.t ->
  pubkey:Scion_crypto.Schnorr.public_key ->
  validity:float * float ->
  issuer:Scion_addr.Ia.t ->
  issuer_key_name:string ->
  issuer_priv:Scion_crypto.Schnorr.private_key ->
  t

val verify_with : Scion_crypto.Schnorr.public_key -> t -> bool
val in_validity : t -> float -> bool
val remaining_fraction : t -> float -> float
(** Fraction of the validity period still ahead at the given time (clamped
    to \[0, 1\]); renewal policies trigger below a threshold. *)

val fingerprint : t -> string
val pp : Format.formatter -> t -> unit
