(** Trust Root Configurations — the per-ISD trust anchors of the SCION
    control-plane PKI (Section 2 of the paper).

    A TRC names the ISD's core ASes, its authorized CA ASes, and a set of
    root public keys. The *base* TRC of an ISD is self-signed by its root
    keys (distributed out of band, e.g. by the bootstrapper); every
    subsequent update must carry signatures from a quorum of the previous
    TRC's root keys ("TRC chaining", Section 4.1.2). *)

type root = { name : string; key : Scion_crypto.Schnorr.public_key }

type t = {
  isd : int;
  base_number : int;  (** Increments only on trust re-establishment. *)
  serial : int;  (** Increments on every update. *)
  not_before : float;
  not_after : float;
  core_ases : Scion_addr.Ia.t list;
  ca_ases : Scion_addr.Ia.t list;  (** ASes allowed to operate a CA. *)
  roots : root list;
  quorum : int;  (** Votes required for an update. *)
  signatures : (string * string) list;  (** (root name, signature). *)
}

val signed_bytes : t -> string
(** Canonical encoding of everything except the signatures. *)

val sign_base :
  isd:int ->
  validity:float * float ->
  core_ases:Scion_addr.Ia.t list ->
  ca_ases:Scion_addr.Ia.t list ->
  quorum:int ->
  roots:(string * Scion_crypto.Schnorr.private_key * Scion_crypto.Schnorr.public_key) list ->
  t
(** Create and self-sign a base TRC (serial 1, base 1) with all roots. *)

val update :
  prev:t ->
  ?rotate_roots:root list ->
  ?core_ases:Scion_addr.Ia.t list ->
  ?ca_ases:Scion_addr.Ia.t list ->
  validity:float * float ->
  votes:(string * Scion_crypto.Schnorr.private_key) list ->
  unit ->
  (t, string) result
(** Produce the successor TRC (serial + 1) signed by the given voters,
    which must be roots of [prev] and reach [prev.quorum]. *)

val verify_base : t -> bool
(** A base TRC must be signed by all of its own roots. *)

val verify_update : prev:t -> t -> (unit, string) result
(** Check serial continuity, ISD match and a quorum of valid signatures by
    [prev]'s roots. *)

val verify_chain : base:t -> t list -> (t, string) result
(** Walk [base -> updates...] and return the latest TRC if every link
    verifies. *)

val in_validity : t -> float -> bool
val find_root : t -> string -> root option
