lib/cppki/ca.mli: Cert Scion_addr Scion_crypto
