lib/cppki/trc.mli: Scion_addr Scion_crypto
