lib/cppki/verify.ml: Cert List Scion_addr Scion_crypto Trc
