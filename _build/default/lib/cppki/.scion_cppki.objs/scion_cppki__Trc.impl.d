lib/cppki/trc.ml: Int64 List Printf Scion_addr Scion_crypto Scion_util String
