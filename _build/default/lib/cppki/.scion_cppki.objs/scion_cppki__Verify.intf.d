lib/cppki/verify.mli: Cert Trc
