lib/cppki/cert.mli: Format Scion_addr Scion_crypto
