lib/cppki/ca.ml: Cert Hashtbl Scion_addr Scion_crypto
