lib/cppki/cert.ml: Float Format Int64 Scion_addr Scion_crypto Scion_util String
