type t = {
  ia : Scion_addr.Ia.t;
  priv : Scion_crypto.Schnorr.private_key;
  cert : Cert.t;
  default_validity : float;
  mutable next_serial : int;
  mutable issued : int;
  revoked : (int, unit) Hashtbl.t;
}

let create ~ia ~priv ~cert ?(default_validity = 3.0 *. 24.0 *. 3600.0) () =
  if cert.Cert.kind <> Cert.Ca then invalid_arg "Ca.create: certificate is not a CA certificate";
  if not (Scion_addr.Ia.equal cert.Cert.subject ia) then
    invalid_arg "Ca.create: certificate subject does not match CA identity";
  { ia; priv; cert; default_validity; next_serial = 1; issued = 0; revoked = Hashtbl.create 8 }

let ia t = t.ia
let ca_cert t = t.cert

let issue t ~subject ~pubkey ~profile ~now =
  let serial = t.next_serial in
  t.next_serial <- serial + 1;
  t.issued <- t.issued + 1;
  Cert.sign ~kind:Cert.As_signing ~profile ~serial ~subject ~pubkey
    ~validity:(now, now +. t.default_validity)
    ~issuer:t.ia ~issuer_key_name:"ca" ~issuer_priv:t.priv

let renew t ~current ~pubkey ~now =
  if current.Cert.kind <> Cert.As_signing then Error "not an AS certificate"
  else if not (Scion_addr.Ia.equal current.Cert.issuer t.ia) then Error "issued by a different CA"
  else if Hashtbl.mem t.revoked current.Cert.serial then Error "certificate was revoked"
  else if not (Cert.in_validity current now) then Error "certificate already expired; re-enrollment required"
  else Ok (issue t ~subject:current.Cert.subject ~pubkey ~profile:current.Cert.profile ~now)

let revoke t ~serial = Hashtbl.replace t.revoked serial ()
let is_revoked t ~serial = Hashtbl.mem t.revoked serial
let issued_count t = t.issued
let needs_renewal cert ~now = Cert.remaining_fraction cert now < 1.0 /. 3.0
