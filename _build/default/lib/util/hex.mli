(** Hexadecimal encoding helpers for debugging, test vectors and
    fingerprints. *)

val encode : string -> string
(** Lower-case hex of every byte. *)

val decode : string -> string
(** Inverse of [encode]; ignores ASCII whitespace. Raises [Invalid_argument]
    on non-hex characters or odd digit count. *)

val short : ?n:int -> string -> string
(** [short s] is the first [n] (default 8) hex digits of [s], for compact
    fingerprint display. *)
