lib/util/table.mli:
