lib/util/rw.mli:
