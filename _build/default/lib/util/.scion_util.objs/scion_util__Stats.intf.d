lib/util/stats.mli:
