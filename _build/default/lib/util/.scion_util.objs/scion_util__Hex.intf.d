lib/util/hex.mli:
