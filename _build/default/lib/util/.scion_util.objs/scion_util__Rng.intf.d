lib/util/rng.mli:
