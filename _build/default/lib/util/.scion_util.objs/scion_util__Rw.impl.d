lib/util/rw.ml: Buffer Char Int32 Int64 String
