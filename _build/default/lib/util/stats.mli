(** Descriptive statistics used by the measurement analytics and the
    experiment harness: percentiles, CDFs and boxplot summaries. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val stddev : float array -> float
(** Population standard deviation. Requires a non-empty array. *)

val min_max : float array -> float * float
(** Smallest and largest element. Requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] returns the [p]-th percentile ([0. <= p <= 100.]) using
    linear interpolation between closest ranks. The input need not be
    sorted. Requires a non-empty array. *)

val median : float array -> float

type boxplot = {
  low_whisker : float;
  q1 : float;
  med : float;
  q3 : float;
  high_whisker : float;
}

val boxplot : float array -> boxplot
(** Five-number summary with whiskers at the 5th/95th percentile, matching
    how Figure 4 of the paper is drawn. *)

type cdf = (float * float) list
(** Sorted [(value, cumulative_fraction)] points; fractions end at 1. *)

val cdf : float array -> cdf
(** Empirical CDF of the samples. *)

val cdf_at : cdf -> float -> float
(** [cdf_at c v] returns the empirical P(X <= v). *)

val cdf_inverse : cdf -> float -> float
(** [cdf_inverse c f] returns the smallest value with cumulative fraction at
    least [f]. Requires a non-empty CDF and [0. < f <= 1.]. *)

val resample_cdf : cdf -> int -> cdf
(** [resample_cdf c n] reduces a CDF to at most [n] evenly spaced points,
    keeping the first and last; used to print compact figure series. *)

val histogram : float array -> bins:int -> (float * int) array
(** [histogram xs ~bins] returns [(bin_left_edge, count)] pairs covering
    the data range. Requires a non-empty array and [bins > 0]. *)
