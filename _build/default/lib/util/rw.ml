exception Truncated

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    let v = Int32.to_int v land 0xFFFFFFFF in
    u8 t (v lsr 24);
    u8 t (v lsr 16);
    u8 t (v lsr 8);
    u8 t v

  let u32_of_int t v = u32 t (Int32.of_int v)

  let u64 t v =
    u32 t (Int64.to_int32 (Int64.shift_right_logical v 32));
    u32 t (Int64.to_int32 v)

  let raw t s = Buffer.add_string t s
  let raw_bytes t b = Buffer.add_bytes t b
  let contents = Buffer.contents
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string s = { src = s; pos = 0 }
  let pos t = t.pos
  let remaining t = String.length t.src - t.pos

  let u8 t =
    if t.pos >= String.length t.src then raise Truncated;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let a = u8 t in
    let b = u8 t in
    (a lsl 8) lor b

  let u32 t =
    let a = u16 t in
    let b = u16 t in
    Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b)

  let u32_to_int t =
    let a = u16 t in
    let b = u16 t in
    (a lsl 16) lor b

  let u64 t =
    let a = u32_to_int t in
    let b = u32_to_int t in
    Int64.logor (Int64.shift_left (Int64.of_int a) 32) (Int64.of_int b)

  let raw t n =
    if n < 0 || remaining t < n then raise Truncated;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let skip t n = ignore (raw t n)
  let expect_end t = if remaining t <> 0 then raise Truncated
end
