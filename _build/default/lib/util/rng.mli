(** Deterministic pseudo-random number generation.

    All simulations in this repository must be reproducible, so every
    stochastic component draws from an explicitly-seeded [Rng.t] based on
    splitmix64. The generator is splittable: [split] derives an independent
    stream, which lets concurrent simulation entities own private streams
    without coordinating. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator for [seed]. *)

val of_label : int64 -> string -> t
(** [of_label seed label] derives a generator for [seed] specialised by
    [label]; distinct labels give independent streams. *)

val split : t -> t
(** [split t] returns a new generator statistically independent of the
    future output of [t]. [t] itself advances. *)

val next : t -> int64
(** [next t] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in \[0, bound). Requires
    [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in \[0, bound). *)

val bool : t -> bool

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal sample. *)

val exponential : t -> rate:float -> float
(** Exponential sample with the given rate (mean [1. /. rate]). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal sample: [exp (gaussian mu sigma)]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] returns a uniformly-chosen element. Requires a non-empty
    array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] returns [n] random bytes. *)
