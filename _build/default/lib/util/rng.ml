type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let of_label seed label =
  let h = ref seed in
  String.iter
    (fun c -> h := mix64 (Int64.add (Int64.mul !h 31L) (Int64.of_int (Char.code c))))
    label;
  create (mix64 !h)

let split t = create (next t)

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's native non-negative int range. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let exponential t ~rate =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else -.log u /. rate
  in
  draw ()

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (next t) 0xFFL)))
  done;
  b
