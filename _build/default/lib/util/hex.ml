let encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Hex.decode: invalid character %C" c)

let decode s =
  let cleaned = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c <> ' ' && c <> '\n' && c <> '\t' && c <> '\r' then Buffer.add_char cleaned c)
    s;
  let s = Buffer.contents cleaned in
  if String.length s mod 2 <> 0 then invalid_arg "Hex.decode: odd digit count";
  String.init (String.length s / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let short ?(n = 8) s =
  let h = encode s in
  if String.length h <= n then h else String.sub h 0 n
