(** Plain-text table rendering for the experiment harness output. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] returns an aligned ASCII table. Every row must
    have the same arity as the header. *)

val print : header:string list -> rows:string list list -> unit

val fmt_ms : float -> string
(** Milliseconds with one decimal, e.g. ["149.8"]. *)

val fmt_pct : float -> string
(** Fraction rendered as a percentage with one decimal, e.g. ["23.7%"]. *)

val fmt_ratio : float -> string
(** Ratio with three decimals, e.g. ["0.931"]. *)
