(** Big-endian binary readers and writers used by all wire encodings
    (SCION headers, PCBs, certificates). Readers raise [Truncated] on
    out-of-bounds access, which decoders translate into parse errors. *)

exception Truncated

module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u32_of_int : t -> int -> unit
  val u64 : t -> int64 -> unit
  val raw : t -> string -> unit
  val raw_bytes : t -> bytes -> unit

  val contents : t -> string
  (** Snapshot of everything written so far. *)
end

module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val u32_to_int : t -> int
  val u64 : t -> int64
  val raw : t -> int -> string
  val skip : t -> int -> unit
  val expect_end : t -> unit
  (** Raises [Truncated] if any bytes remain. *)
end
