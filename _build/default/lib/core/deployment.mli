(** Section 5.3, Figure 3 and Appendix C — the SCIERA deployment timeline
    with a per-AS effort model: Wright learning curve per deployment kind
    plus a flat reduction once the SCION Orchestrator is available. *)

type kind = Core_backbone | Nren_attach | Campus_vlan | Reused_circuit

val kind_to_string : kind -> string

type event = {
  who : string;
  as_str : string;
  date : string;
  kind : kind;
  note : string;
}

val timeline : event list
(** The 22 deployments of Figure 3 in chronological order. *)

val base_effort : kind -> float
val learning_rate : float
val orchestrator_available : string -> bool

type scored = { event : event; effort : float }

val scored_timeline : scored list
val print_fig3 : unit -> unit
