lib/core/incidents.ml: List Scion_addr
