lib/core/exp_multipath.ml: Array Incidents List Network Printf Scion_addr Scion_controlplane Scion_util Topology
