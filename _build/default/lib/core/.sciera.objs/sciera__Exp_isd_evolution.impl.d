lib/core/exp_isd_evolution.ml: List Network Printf Scion_addr Scion_controlplane Scion_util Topology
