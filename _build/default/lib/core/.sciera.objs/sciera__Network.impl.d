lib/core/network.ml: Float Hashtbl Incidents List Netsim Printf Scion_addr Scion_controlplane Scion_cppki Scion_util Topology
