lib/core/exp_bootstrap.mli: Scion_endhost Scion_util
