lib/core/incidents.mli: Scion_addr
