lib/core/topology.mli: Scion_addr Scion_controlplane Scion_cppki
