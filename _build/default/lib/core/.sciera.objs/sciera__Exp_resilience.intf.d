lib/core/exp_resilience.mli:
