lib/core/deployment.ml: Float Hashtbl List Printf Scion_util
