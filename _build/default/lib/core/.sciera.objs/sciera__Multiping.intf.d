lib/core/multiping.mli: Network Scion_addr Scion_controlplane
