lib/core/multiping.ml: Float Hashtbl Incidents List Network Option Scion_addr Scion_controlplane Scion_util Set Stdlib Topology
