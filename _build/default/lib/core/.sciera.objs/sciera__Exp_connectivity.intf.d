lib/core/exp_connectivity.mli: Multiping Scion_addr
