lib/core/topology.ml: List Scion_addr Scion_controlplane Scion_cppki Seq String
