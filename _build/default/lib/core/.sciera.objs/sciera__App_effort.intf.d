lib/core/app_effort.mli:
