lib/core/host.mli: Network Scion_addr Scion_controlplane Scion_endhost
