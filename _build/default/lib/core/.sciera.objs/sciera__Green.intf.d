lib/core/green.mli: Scion_controlplane Topology
