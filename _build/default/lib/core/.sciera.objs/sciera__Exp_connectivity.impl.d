lib/core/exp_connectivity.ml: Array Float Hashtbl Incidents List Multiping Network Printf Scion_addr Scion_util String Topology
