lib/core/network.mli: Netsim Scion_addr Scion_controlplane Scion_util
