lib/core/exp_multipath.mli: Scion_addr Scion_util
