lib/core/app_effort.ml: List Printf Scion_util
