lib/core/green.ml: List Scion_addr Scion_controlplane Topology
