lib/core/science_dmz.ml: Float Hashtbl List Scion_addr Scion_crypto
