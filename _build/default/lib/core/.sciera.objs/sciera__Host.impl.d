lib/core/host.ml: Network Printf Scion_addr Scion_controlplane Scion_cppki Scion_crypto Scion_dataplane Scion_endhost Scion_util Topology
