lib/core/survey.mli:
