lib/core/survey.ml: List Printf Scion_util
