lib/core/exp_isd_evolution.mli: Scion_addr
