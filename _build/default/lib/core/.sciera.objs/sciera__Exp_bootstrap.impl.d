lib/core/exp_bootstrap.ml: Array Float List Printf Scion_addr Scion_cppki Scion_crypto Scion_endhost Scion_util
