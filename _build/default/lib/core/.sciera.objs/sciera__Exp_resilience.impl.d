lib/core/exp_resilience.ml: Array Fun Hashtbl List Netsim Printf Scion_addr Scion_util Topology
