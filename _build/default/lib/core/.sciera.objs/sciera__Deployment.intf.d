lib/core/deployment.mli:
