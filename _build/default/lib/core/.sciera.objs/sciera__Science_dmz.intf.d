lib/core/science_dmz.mli: Scion_addr
