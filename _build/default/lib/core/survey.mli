(** Section 5.6 — the operator survey: 8 respondents, with the aggregation
    pipeline computing every percentage the paper reports from the raw
    answers. *)

type role = Network_engineer | Researcher
type setup_duration = Within_one_month | Up_to_six_months | Longer
type opex_assessment = Lower | Comparable | Slightly_higher

type respondent = {
  id : int;
  role : role;
  decade_plus_experience : bool;
  setup : setup_duration;
  delay_cause : string;
  vendor_support_needed : bool;
  hardware_usd : int;
  licensing_usd : int;
  extra_hiring : bool;
  personnel_usd : int;
  opex : opex_assessment;
  cost_drivers : string list;
  workload_fraction : float;
  vendor_contacts_per_year : int;
}

val respondents : respondent list

type aggregates = {
  n : int;
  decade_plus : float;
  engineers : float;
  setup_within_month : float;
  setup_within_six_months : float;
  deployed_without_vendor : float;
  hardware_under_20k : float;
  no_licensing : float;
  no_hiring : float;
  opex_comparable_or_lower : float;
  maintenance_driver : float;
  staff_driver : float;
  monitoring_driver : float;
  power_driver : float;
  workload_under_10 : float;
  vendor_under_3_per_year : float;
}

val aggregates : aggregates
val print_survey : unit -> unit
