(** The SCION-based Science-DMZ (Section 4.7.1): LightningFilter-style
    line-rate traffic filtering and Hercules-style multipath bulk transfer.

    LightningFilter authenticates SCION traffic with per-source-AS
    symmetric keys (DRKey-style derivation) and enforces per-AS rate
    limits, replacing the stateful campus firewall that would otherwise
    bottleneck a data-transfer node. Hercules schedules a bulk transfer
    across several SCION paths at once, which is where the path
    disjointness of Figure 10b turns into aggregated bandwidth. *)

module Filter : sig
  type t

  type verdict = Accepted | Bad_mac | Rate_limited | Unknown_source

  val create :
    local_secret:string ->
    allowed:(Scion_addr.Ia.t * float) list ->
    unit ->
    t
  (** [allowed] maps each authorised peer AS to its rate limit in
      packets/second (token bucket with a 1-second burst). *)

  val host_key : t -> peer:Scion_addr.Ia.t -> string
  (** The DRKey-style key a sender in [peer] uses to authenticate packets
      to this DMZ (derivable on both sides without per-flow state). *)

  val authenticate : key:string -> payload:string -> string
  (** Sender side: the 16-byte tag for a payload. *)

  val check :
    t -> now:float -> src:Scion_addr.Ia.t -> payload:string -> tag:string -> verdict

  val accepted : t -> int
  val rejected : t -> int
end

module Hercules : sig
  type path_capacity = { rtt_ms : float; bandwidth_mbps : float }

  type plan = {
    total_mbps : float;
    completion_s : float;
    per_path_share : float list;  (** Fraction of bytes per path. *)
  }

  val plan_transfer : size_gb : float -> paths:path_capacity list -> plan
  (** Bandwidth-proportional striping across paths; completion includes a
      slow-start ramp of a few RTTs on each path. Raises
      [Invalid_argument] on an empty path list. *)

  val single_path_completion : size_gb:float -> path_capacity -> float
end
