module Combinator = Scion_controlplane.Combinator

(* Representative grid carbon intensities (gCO2-eq/kWh): hydro-heavy South
   America low, coal-heavy Asian grids high — the gradient that makes green
   routing a real choice on a global topology. *)
let grid_intensity = function
  | Topology.Europe -> 230.0
  | Topology.North_america -> 370.0
  | Topology.Asia -> 540.0
  | Topology.South_america -> 130.0
  | Topology.Africa -> 480.0
  | Topology.Middle_east -> 560.0

(* Transport energy per AS hop, kWh per GB — router + transponder energy
   attributed to the traffic crossing the hop. *)
let hop_energy_kwh_per_gb = 0.02

let hop_carbon (h : Scion_addr.Hop_pred.hop) =
  match Topology.find h.Scion_addr.Hop_pred.ia with
  | info -> hop_energy_kwh_per_gb *. grid_intensity info.Topology.region
  | exception Not_found -> hop_energy_kwh_per_gb *. 400.0

let path_carbon (p : Combinator.fullpath) =
  List.fold_left (fun acc h -> acc +. hop_carbon h) 0.0 p.Combinator.interfaces

let sort_by_carbon paths =
  List.sort
    (fun a b ->
      let c = compare (path_carbon a) (path_carbon b) in
      if c <> 0 then c else compare a.Combinator.fingerprint b.Combinator.fingerprint)
    paths

let greenest paths = match sort_by_carbon paths with [] -> None | p :: _ -> Some p

type tradeoff = {
  green_carbon : float;
  shortest_carbon : float;
  carbon_saving : float;
  green_extra_hops : int;
}

let tradeoff paths =
  match (greenest paths, paths) with
  | Some green, shortest :: _ ->
      let gc = path_carbon green and sc = path_carbon shortest in
      Some
        {
          green_carbon = gc;
          shortest_carbon = sc;
          carbon_saving = (if sc > 0.0 then (sc -. gc) /. sc else 0.0);
          green_extra_hops = Combinator.num_hops green - Combinator.num_hops shortest;
        }
  | _ -> None
