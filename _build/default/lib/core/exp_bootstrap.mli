(** Section 5.1, Figure 4 — end-host bootstrapping performance across
    Windows/Linux/macOS and all hinting mechanisms, plus Table 2
    (Appendix A), the mechanism-availability matrix. *)

type os_summary = {
  os : Scion_endhost.Bootstrap.os;
  hint : Scion_util.Stats.boxplot;
  config : Scion_util.Stats.boxplot;
  total : Scion_util.Stats.boxplot;
}

type result = {
  per_os : os_summary list;
  runs_per_mechanism : int;
  all_medians_under_ms : float;
}

val run : ?runs:int -> ?seed:int64 -> unit -> result
val print_fig4 : result -> unit
val print_table2 : unit -> unit
