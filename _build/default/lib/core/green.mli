(** Carbon-aware ("green") path selection — the sustainability use case of
    Section 4.7: SCION lets users pick paths by energy/carbon metrics,
    which the paper argues incentivises ISPs to reduce emissions.

    Each AS hop is scored by the carbon intensity of its PoP's grid region;
    a path's footprint is the sum over its hops (per-packet transport
    energy times grid intensity). *)

val grid_intensity : Topology.region -> float
(** Grams CO2-eq per kWh for the region's electricity mix. *)

val path_carbon : Scion_controlplane.Combinator.fullpath -> float
(** Relative footprint score (gCO2-eq per GB transported). *)

val greenest : Scion_controlplane.Combinator.fullpath list -> Scion_controlplane.Combinator.fullpath option
(** The lowest-footprint path. *)

val sort_by_carbon :
  Scion_controlplane.Combinator.fullpath list -> Scion_controlplane.Combinator.fullpath list

type tradeoff = {
  green_carbon : float;
  shortest_carbon : float;
  carbon_saving : float;  (** Fraction saved by going green. *)
  green_extra_hops : int;  (** Detour cost in AS hops. *)
}

val tradeoff : Scion_controlplane.Combinator.fullpath list -> tradeoff option
(** Compare the greenest path with the hop-shortest one; [None] on an
    empty path set. *)
