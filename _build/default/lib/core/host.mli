(** An end host attached to a SCIERA AS — the complete Section 4.1/4.2
    stack wired to the simulated network: bootstrapping (with automatic
    mode fallback), a daemon (or its in-process equivalent), the PAN-style
    policy library, and a transport that pushes real packets through the
    border routers and samples latency from the link model. *)

type t

val attach :
  Network.t ->
  ia:Scion_addr.Ia.t ->
  ?daemon_available:bool ->
  ?bootstrapper_available:bool ->
  unit ->
  (t, string) result
(** Join the network at the given AS: discover the bootstrapping server,
    fetch and verify the signed topology and the TRC, and set up path
    lookup. The operating mode follows {!Scion_endhost.Pan.choose_mode}. *)

val ia : t -> Scion_addr.Ia.t
val mode : t -> Scion_endhost.Pan.mode
val bootstrap_timing : t -> Scion_endhost.Bootstrap.timing
val daemon : t -> Scion_endhost.Daemon.t

val paths : t -> dst:Scion_addr.Ia.t -> Scion_controlplane.Combinator.fullpath list
(** Daemon-cached path lookup. *)

val latency_estimate : t -> Scion_controlplane.Combinator.fullpath -> float
(** Deterministic RTT estimate used for preference sorting. *)

val transport : t -> Scion_endhost.Pan.Conn.transport
(** Sends a UDP payload through the border routers along the path; outcome
    carries a sampled RTT. Failures (down links, expired hops) surface as
    [Send_failed], which {!Scion_endhost.Pan.Conn} turns into failover. *)

val dial :
  t ->
  dst:Scion_addr.Ia.t ->
  ?policy:Scion_endhost.Pan.policy ->
  unit ->
  (Scion_endhost.Pan.Conn.t, string) result

val ping :
  t -> dst:Scion_addr.Ia.t -> [ `Rtt of float | `Unreachable ]
(** SCMP echo over the current best path. *)

val request :
  t ->
  dst:Scion_addr.Ia.t ->
  ?policy:Scion_endhost.Pan.policy ->
  payload:string ->
  handler:(string -> string) ->
  unit ->
  ([ `Reply of string * float ], string) result
(** One request/response exchange: the payload travels to [dst] over a
    policy-selected path, [handler] computes the peer's answer, and the
    reply returns over the reversed path — both directions walked through
    the actual border routers. *)
