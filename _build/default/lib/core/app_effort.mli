(** Section 5.2 — application enablement effort: the three SCIONabled
    example applications of this repository and their integration deltas,
    mirroring the paper's bat / Caddy / Java-netcat case study. *)

type case = {
  app : string;
  upstream_equivalent : string;
  loc_delta : int;
  integration_points : string list;
}

val cases : case list
val print_app_effort : unit -> unit
