type t = {
  table : (int, string) Hashtbl.t;
  mutable dispatched : int;
}

let create () = { table = Hashtbl.create 16; dispatched = 0 }

let register t ~port ~app =
  match Hashtbl.find_opt t.table port with
  | Some owner -> Error (Printf.sprintf "port %d already registered to %s" port owner)
  | None ->
      Hashtbl.replace t.table port app;
      Ok ()

let unregister t ~port = Hashtbl.remove t.table port
let registered t = Hashtbl.length t.table

type delivery = Delivered of string | No_listener

(* The per-packet overhead the dispatcher added in practice: it must
   re-parse the SCION header to find the destination port, then copy the
   payload across a Unix domain socket. We perform a real pass over the
   bytes so benchmarks measure genuine work, not a sleep. *)
let overhead_touch payload =
  let acc = ref 0 in
  String.iter (fun c -> acc := (!acc + Char.code c) land 0xFFFF) payload;
  !acc

let dispatch t ~dst_port ~payload =
  t.dispatched <- t.dispatched + 1;
  let _checksum = overhead_touch payload in
  match Hashtbl.find_opt t.table dst_port with
  | Some _app -> Delivered (String.sub payload 0 (String.length payload)) (* UDS copy *)
  | None -> No_listener

let packets_dispatched t = t.dispatched

module Direct = struct
  type socket = { port : int }

  let open_socket ~port = { port }
  let deliver s ~payload =
    ignore s.port;
    payload
end

let model_throughput ~mode ~cores ~per_packet_us ~dispatcher_overhead_us =
  match mode with
  | `Dispatcher ->
      (* Every packet serialises through the dispatcher's single queue. *)
      1e6 /. (per_packet_us +. dispatcher_overhead_us)
  | `Dispatcherless ->
      (* RSS spreads flows across cores; per-core budget multiplies. *)
      float_of_int cores *. (1e6 /. per_packet_us)
