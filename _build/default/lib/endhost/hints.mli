(** Bootstrapping hint discovery (Section 4.1 and Appendix A).

    A client joining a SCIERA AS must find the local bootstrapping server
    without manual configuration. Hints ride on zero-conf protocols already
    present in the network: DHCP options, IPv6 NDP router advertisements,
    and several DNS-based records. Which mechanisms apply depends on what
    the network deploys — Table 2 of the paper; {!available} reproduces
    that matrix. *)

type mechanism =
  | Dhcp_vivo  (** DHCPv4 Vendor-Identifying Vendor Option (RFC 3925). *)
  | Dhcp_option72  (** DHCPv4 default WWW-server option. *)
  | Dhcpv6_vsio  (** DHCPv6 Vendor-specific Information Option (RFC 3315). *)
  | Ipv6_ndp_ra  (** NDP router advertisements carrying DNS config (RFC 6106). *)
  | Dns_srv  (** DNS SRV record [_sciondiscovery._tcp] (RFC 2782). *)
  | Dns_sd  (** DNS service discovery PTR + SRV (RFC 6763). *)
  | Mdns  (** Multicast DNS (RFC 6762). *)
  | Dns_naptr  (** DNS NAPTR [x-sciondiscovery:TCP] (RFC 2915). *)

val all : mechanism list
val name : mechanism -> string

(** What zero-conf technology the client's network segment offers —
    the columns of Table 2. *)
type network_env = {
  static_ips_only : bool;
  dhcp : bool;  (** Dynamic DHCPv4 leases. *)
  dhcpv6 : bool;
  ipv6_ras : bool;
  dns_search_domain : bool;  (** Local search domain with resolver access. *)
}

type availability = Available | Combined | Not_applicable
(** [Combined] means usable only in combination with another mechanism
    (marked "M" in Table 2). *)

val available : mechanism -> network_env -> availability

val preferred_order : network_env -> mechanism list
(** Mechanisms worth probing in this environment (Available first, then
    Combined), in the bootstrapper's probe order. *)

type hint = { server : Scion_addr.Ipv4.endpoint; via : mechanism }

val env_to_string : network_env -> string
