type mechanism =
  | Dhcp_vivo
  | Dhcp_option72
  | Dhcpv6_vsio
  | Ipv6_ndp_ra
  | Dns_srv
  | Dns_sd
  | Mdns
  | Dns_naptr

let all = [ Dhcp_vivo; Dhcp_option72; Dhcpv6_vsio; Ipv6_ndp_ra; Dns_srv; Dns_sd; Mdns; Dns_naptr ]

let name = function
  | Dhcp_vivo -> "DHCP VIVO"
  | Dhcp_option72 -> "DHCP option 72"
  | Dhcpv6_vsio -> "DHCPv6 VSIO"
  | Ipv6_ndp_ra -> "IPv6 NDP"
  | Dns_srv -> "DNS SRV"
  | Dns_sd -> "DNS-SD"
  | Mdns -> "mDNS"
  | Dns_naptr -> "DNS-NAPTR"

type network_env = {
  static_ips_only : bool;
  dhcp : bool;
  dhcpv6 : bool;
  ipv6_ras : bool;
  dns_search_domain : bool;
}

type availability = Available | Combined | Not_applicable

(* Table 2 of the paper, row by row. *)
let available m env =
  match m with
  | Dhcp_vivo | Dhcp_option72 -> if env.dhcp then Available else Not_applicable
  | Dhcpv6_vsio -> if env.dhcpv6 then Available else Not_applicable
  | Ipv6_ndp_ra ->
      if env.ipv6_ras then Available
      else if env.static_ips_only then Available (* "Y if IPv6" — static v6 config *)
      else if env.dhcpv6 then Combined
      else if env.dns_search_domain then Available
      else Not_applicable
  | Dns_srv | Dns_sd | Dns_naptr ->
      if env.dns_search_domain || env.ipv6_ras then Available
      else if env.dhcp || env.dhcpv6 then Combined
      else Not_applicable
  | Mdns ->
      if env.static_ips_only || env.dns_search_domain || env.ipv6_ras then Available
      else if env.dhcp || env.dhcpv6 then Combined
      else Not_applicable

let preferred_order env =
  let avail = List.filter (fun m -> available m env = Available) all in
  let combined = List.filter (fun m -> available m env = Combined) all in
  avail @ combined

type hint = { server : Scion_addr.Ipv4.endpoint; via : mechanism }

let env_to_string env =
  let flags =
    [
      (env.static_ips_only, "static");
      (env.dhcp, "dhcp");
      (env.dhcpv6, "dhcpv6");
      (env.ipv6_ras, "ra");
      (env.dns_search_domain, "dns");
    ]
  in
  String.concat "+" (List.filter_map (fun (b, s) -> if b then Some s else None) flags)
