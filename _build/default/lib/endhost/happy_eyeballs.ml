type family = Scion | Ipv6 | Ipv4

let family_to_string = function Scion -> "SCION" | Ipv6 -> "IPv6" | Ipv4 -> "IPv4"

type candidate = { family : family; available : bool; connect_ms : float }

type outcome = {
  winner : family option;
  established_ms : float;
  attempts : family list;
}

let race ?(preference = [ Scion; Ipv6; Ipv4 ]) ?(stagger_ms = 250.0) candidates =
  (* Order candidates by preference; unlisted families go last. *)
  let rank f =
    let rec idx i = function
      | [] -> max_int
      | x :: rest -> if x = f then i else idx (i + 1) rest
    in
    idx 0 preference
  in
  let ordered =
    List.stable_sort (fun a b -> Stdlib.compare (rank a.family) (rank b.family)) candidates
  in
  let attempts = List.map (fun c -> c.family) ordered in
  (* Attempt i starts at i * stagger; completion = start + connect time. *)
  let completions =
    List.filteri (fun _ c -> c.available) ordered
    |> List.map (fun c ->
           let start =
             stagger_ms
             *. float_of_int
                  (match
                     List.find_index (fun x -> x.family = c.family) ordered
                   with
                  | Some i -> i
                  | None -> 0)
           in
           (c.family, start +. c.connect_ms))
  in
  match completions with
  | [] -> { winner = None; established_ms = Float.infinity; attempts }
  | first :: rest ->
      let family, best =
        List.fold_left
          (fun (bf, bt) (f, t) -> if t < bt then (f, t) else (bf, bt))
          first rest
      in
      { winner = Some family; established_ms = best; attempts }
