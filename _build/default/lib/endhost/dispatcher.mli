(** The dispatcher — and its retirement (Section 4.8).

    The historical SCION end-host stack ran a shared background process
    listening on one fixed UDP port, demultiplexing inbound SCION traffic
    to applications over Unix domain sockets: "a faithful recreation of
    what a kernel socket might do, just in user space". It became a
    bottleneck (single queue, no RSS across cores) and was removed in
    favour of per-application sockets.

    This module implements both data paths so the ablation benchmark can
    quantify the difference the paper describes:
    - {!t}: the dispatcher's demux table and per-packet bookkeeping;
    - {!Direct}: the dispatcherless path (per-app socket, a table lookup
      the kernel does, modelled as a no-overhead delivery);
    - {!model_throughput}: the RSS scaling model — dispatcherd traffic is
      confined to one core, dispatcherless traffic spreads over [cores]. *)

type t

val create : unit -> t

val register : t -> port:int -> app:string -> (unit, string) result
(** Claim a UDP port for an application (errors on conflicts). *)

val unregister : t -> port:int -> unit
val registered : t -> int

type delivery = Delivered of string | No_listener

val dispatch : t -> dst_port:int -> payload:string -> delivery
(** The dispatcher data path: demux-table lookup plus per-packet overhead
    (header re-parse + UDS copy, modelled as real work on the payload). *)

val packets_dispatched : t -> int

module Direct : sig
  type socket

  val open_socket : port:int -> socket
  val deliver : socket -> payload:string -> string
  (** The dispatcherless path: the payload goes straight to the socket. *)
end

val model_throughput :
  mode:[ `Dispatcher | `Dispatcherless ] ->
  cores:int ->
  per_packet_us:float ->
  dispatcher_overhead_us:float ->
  float
(** Achievable packets/s: one core's budget for the dispatcher (shared
    port, no RSS), [cores] budgets without it. *)
