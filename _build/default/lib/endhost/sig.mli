(** The SCION-IP Gateway (SIG).

    The paper's opening observation is that {e all} productive SCION use
    cases before SCIERA ran through SIGs: gateways that tunnel IP traffic
    over SCION so applications stay unaware of the NGN ("IP-to-SCION-to-IP
    translation", Section 1). The Edge deployment model of Appendix B also
    rests on a SIG. This module implements that translation layer:

    - a {b routing table} mapping IPv4 prefixes to remote SCION ASes
      (longest-prefix match);
    - {b encapsulation} of raw IP packets into SCION frames (and back),
      with a sequence-numbered session header per remote AS;
    - {b session failover}: each remote gets a path set, and send failures
      rotate to the next path without disturbing the IP flow. *)

type t

val create : local_ia:Scion_addr.Ia.t -> t

val add_route :
  t -> prefix:Scion_addr.Ipv4.t -> bits:int -> remote:Scion_addr.Ia.t -> unit
(** Announce that [prefix/bits] lives behind the SIG of [remote]. *)

val route : t -> Scion_addr.Ipv4.t -> Scion_addr.Ia.t option
(** Longest-prefix match. *)

val routes : t -> (Scion_addr.Ipv4.t * int * Scion_addr.Ia.t) list

val set_paths :
  t -> remote:Scion_addr.Ia.t -> Scion_controlplane.Combinator.fullpath list -> unit
(** Install (policy-ordered) paths towards a remote SIG. *)

type encapsulated = {
  session : int;  (** Session id (one per remote AS). *)
  seq : int;  (** Per-session sequence number. *)
  inner : string;  (** The original IP packet bytes. *)
}

val encode_frame : encapsulated -> string
val decode_frame : string -> (encapsulated, string) result

type send_result =
  | Tunnelled of {
      remote : Scion_addr.Ia.t;
      path : Scion_controlplane.Combinator.fullpath;
      frame : string;
      failovers : int;
    }
  | No_route
  | No_path

val send_ip :
  t ->
  dst_ip:Scion_addr.Ipv4.t ->
  packet:string ->
  try_path:(Scion_controlplane.Combinator.fullpath -> bool) ->
  send_result
(** Tunnel one IP packet: route lookup, encapsulation, then transmission
    over the first live path ([try_path] reports per-path success, e.g.
    a border-router walk). Dead paths are rotated out for the session. *)

val receive_frame : t -> string -> (string, string) result
(** Gateway egress: decapsulate a frame back into the raw IP packet,
    enforcing per-session sequence monotonicity (late duplicates are
    rejected). *)

val sessions : t -> (Scion_addr.Ia.t * int * int) list
(** (remote, session id, packets sent) for observability. *)
