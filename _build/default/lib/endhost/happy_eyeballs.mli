(** Happy Eyeballs with SCION as a third address family (Section 4.2.2).

    RFC 8305 races IPv6 against IPv4 with a head start for the preferred
    family; the paper proposes adding SCION as a further candidate so every
    application using the OS connect-by-name library becomes SCION-capable.
    This module implements the staggered race and reports which family wins
    under given per-family availability and connection latency. *)

type family = Scion | Ipv6 | Ipv4

val family_to_string : family -> string

type candidate = {
  family : family;
  available : bool;  (** Destination reachable over this family. *)
  connect_ms : float;  (** Connection setup latency when available. *)
}

type outcome = {
  winner : family option;
  established_ms : float;  (** Wall-clock until the winning connect. *)
  attempts : family list;  (** Families actually tried, in start order. *)
}

val race :
  ?preference:family list ->
  ?stagger_ms:float ->
  candidate list ->
  outcome
(** [race candidates] starts the most-preferred family first and each next
    family after [stagger_ms] (default 250 ms, RFC 8305's connection
    attempt delay); the first completed connect wins. [winner = None] when
    every family fails. *)
