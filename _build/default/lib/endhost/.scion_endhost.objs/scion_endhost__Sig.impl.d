lib/endhost/sig.ml: Hashtbl List Option Scion_addr Scion_controlplane Scion_util String
