lib/endhost/happy_eyeballs.mli:
