lib/endhost/pan.ml: List Printf Result Scion_addr Scion_controlplane Stdlib String
