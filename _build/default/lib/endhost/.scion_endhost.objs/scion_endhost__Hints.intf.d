lib/endhost/hints.mli: Scion_addr
