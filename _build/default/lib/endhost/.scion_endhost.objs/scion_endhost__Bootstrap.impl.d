lib/endhost/bootstrap.ml: Hints List Scion_addr Scion_cppki Scion_crypto Scion_util
