lib/endhost/sig.mli: Scion_addr Scion_controlplane
