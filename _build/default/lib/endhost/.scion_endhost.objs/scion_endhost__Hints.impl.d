lib/endhost/hints.ml: List Scion_addr String
