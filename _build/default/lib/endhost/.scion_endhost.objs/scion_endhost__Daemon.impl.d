lib/endhost/daemon.ml: Hashtbl List Scion_addr Scion_controlplane Scion_cppki
