lib/endhost/daemon.mli: Scion_addr Scion_controlplane Scion_cppki
