lib/endhost/dispatcher.ml: Char Hashtbl Printf String
