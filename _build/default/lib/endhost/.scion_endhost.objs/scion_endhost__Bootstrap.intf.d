lib/endhost/bootstrap.mli: Hints Scion_addr Scion_cppki Scion_crypto Scion_util
