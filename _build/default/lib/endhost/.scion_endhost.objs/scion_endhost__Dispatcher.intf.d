lib/endhost/dispatcher.mli:
