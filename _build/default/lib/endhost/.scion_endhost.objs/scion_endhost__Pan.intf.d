lib/endhost/pan.mli: Scion_addr Scion_controlplane
