lib/endhost/happy_eyeballs.ml: Float List Stdlib
