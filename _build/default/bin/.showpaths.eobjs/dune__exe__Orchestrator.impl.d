bin/orchestrator.ml: Arg Cmd Cmdliner List Printf Sciera Scion_addr Scion_controlplane Scion_cppki Scion_dataplane Scion_util Term
