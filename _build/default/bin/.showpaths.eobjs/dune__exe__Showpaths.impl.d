bin/showpaths.ml: Arg Cmd Cmdliner List Printf Sciera Scion_addr Scion_controlplane String Term
