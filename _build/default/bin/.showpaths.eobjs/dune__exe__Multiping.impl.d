bin/multiping.ml: Arg Array Cmd Cmdliner List Printf Sciera Scion_util Term
