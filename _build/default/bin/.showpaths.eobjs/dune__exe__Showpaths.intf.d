bin/showpaths.mli:
