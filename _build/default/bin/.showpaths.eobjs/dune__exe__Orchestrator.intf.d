bin/orchestrator.mli:
