bin/multiping.mli:
