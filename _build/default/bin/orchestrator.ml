(* orchestrator — the Section 4.4 SCION Orchestrator's status dashboard for
   the simulated deployment: per-AS service status, certificate lifetimes
   with automated renewal, link/interface health and router counters — the
   observability story ("aggregated service status dashboard with easy
   access to relevant logs").

   dune exec bin/orchestrator.exe -- --day 8 --renew *)

open Cmdliner

let run day renew =
  let net = Sciera.Network.create ~verify_pcbs:false () in
  Sciera.Network.set_day net day;
  let mesh = Sciera.Network.mesh net in
  let now = Sciera.Network.now_unix net in
  Printf.printf "SCIERA orchestrator — window day %.1f\n\n" day;
  (* Incident board. *)
  let active = Sciera.Incidents.active_at day in
  Printf.printf "active incidents (%d):\n" (List.length active);
  List.iter (fun i -> Printf.printf "  - %s\n" i.Sciera.Incidents.title) active;
  if renew then begin
    let n = Scion_controlplane.Mesh.renew_certificates mesh ~now in
    Printf.printf "\nautomated certificate renewal sweep: %d certificates renewed\n" n
  end;
  print_newline ();
  (* Per-AS status. *)
  Scion_util.Table.print
    ~header:[ "AS"; "name"; "stack"; "cert expires (h)"; "ifaces"; "down"; "beacons ok" ]
    ~rows:
      (List.map
         (fun (info : Sciera.Topology.as_info) ->
           let ia = info.Sciera.Topology.ia in
           let cert = Scion_controlplane.Mesh.cert_of mesh ia in
           let router = Scion_controlplane.Mesh.router mesh ia in
           let ifaces = Scion_dataplane.Router.interfaces router in
           let down =
             List.length
               (List.filter
                  (fun i ->
                    not (Scion_dataplane.Router.interface_up router i.Scion_dataplane.Router.ifid))
                  ifaces)
           in
           let has_segments =
             if info.Sciera.Topology.core then
               Scion_controlplane.Mesh.core_segments_at mesh ia <> []
             else Scion_controlplane.Mesh.up_segments mesh ia <> []
           in
           [
             Scion_addr.Ia.to_string ia;
             info.Sciera.Topology.name;
             (match info.Sciera.Topology.profile with
             | Scion_cppki.Cert.Open_source -> "open-source"
             | Scion_cppki.Cert.Proprietary -> "anapaya");
             Printf.sprintf "%.0f" ((cert.Scion_cppki.Cert.not_after -. now) /. 3600.0);
             string_of_int (List.length ifaces);
             string_of_int down;
             (if has_segments then "yes" else "NO");
           ])
         Sciera.Topology.ases);
  Printf.printf "\ncontrol plane: %d convergences, %d PCB verification failures\n"
    (Sciera.Network.rebeacon_count net)
    (Scion_controlplane.Mesh.verification_failures mesh);
  0

let day = Arg.(value & opt float 3.2 & info [ "day" ] ~doc:"Measurement-window day (0-20).")
let renew = Arg.(value & flag & info [ "renew" ] ~doc:"Run the certificate renewal sweep.")

let cmd =
  Cmd.v
    (Cmd.info "orchestrator" ~doc:"SCION Orchestrator status dashboard for simulated SCIERA")
    Term.(const run $ day $ renew)

let () = exit (Cmd.eval' cmd)
