(* showpaths — the `scion showpaths` equivalent over the simulated SCIERA
   deployment: list the available paths between two ASes, with hop traces,
   latency estimates, expiry and data-plane liveness.

   dune exec bin/showpaths.exe -- --src 71-225 --dst 71-2:0:5c --day 8 *)

open Cmdliner

let run src dst day max_paths verify =
  let net = Sciera.Network.create ~verify_pcbs:verify () in
  Sciera.Network.set_day net day;
  let src = Scion_addr.Ia.of_string src and dst = Scion_addr.Ia.of_string dst in
  let paths = Sciera.Network.paths net ~src ~dst in
  Printf.printf "Available paths %s (%s) -> %s (%s) on window day %.1f:\n"
    (Scion_addr.Ia.to_string src) (Sciera.Topology.name_of src)
    (Scion_addr.Ia.to_string dst) (Sciera.Topology.name_of dst) day;
  let shown = ref 0 in
  List.iter
    (fun p ->
      if !shown < max_paths then begin
        incr shown;
        let alive =
          Scion_controlplane.Mesh.path_alive (Sciera.Network.mesh net)
            ~now:(Sciera.Network.now_unix net) p
        in
        Printf.printf "[%2d] hops: %s\n" !shown
          (String.concat " "
             (List.map
                (fun h ->
                  Printf.sprintf "%s#%d,%d"
                    (Scion_addr.Ia.to_string h.Scion_addr.Hop_pred.ia)
                    h.Scion_addr.Hop_pred.ingress h.Scion_addr.Hop_pred.egress)
                p.Scion_controlplane.Combinator.interfaces));
        Printf.printf "     mtu: %d, est rtt: %.1f ms, expires in %.1f h, status: %s\n"
          p.Scion_controlplane.Combinator.mtu
          (Sciera.Network.scion_rtt_base net p)
          ((p.Scion_controlplane.Combinator.expiry -. Sciera.Network.now_unix net) /. 3600.0)
          (if alive then "alive" else "dead (data plane)")
      end)
    paths;
  Printf.printf "%d paths total, %d shown\n" (List.length paths) !shown;
  0

let src_arg =
  Arg.(value & opt string "71-2:0:42" & info [ "src" ] ~docv:"IA" ~doc:"Source ISD-AS.")

let dst_arg =
  Arg.(value & opt string "71-2:0:4d" & info [ "dst" ] ~docv:"IA" ~doc:"Destination ISD-AS.")

let day_arg =
  Arg.(value & opt float 8.0 & info [ "day" ] ~docv:"DAY" ~doc:"Measurement-window day (0-20).")

let max_arg = Arg.(value & opt int 10 & info [ "max" ] ~doc:"Maximum paths to print.")

let verify_arg =
  Arg.(value & flag & info [ "verify-pcbs" ] ~doc:"Cryptographically verify beacons (slower).")

let cmd =
  Cmd.v
    (Cmd.info "showpaths" ~doc:"List SCION paths in the simulated SCIERA deployment")
    Term.(const run $ src_arg $ dst_arg $ day_arg $ max_arg $ verify_arg)

let () = exit (Cmd.eval' cmd)
