(* multiping — run the Section 5.4 measurement campaign from the command
   line and print the summary statistics.

   dune exec bin/multiping.exe -- --days 2 --interval 600 *)

open Cmdliner

let run days interval pings =
  let net = Sciera.Network.create ~verify_pcbs:false () in
  let config =
    { Sciera.Multiping.default_config with Sciera.Multiping.interval_s = interval; pings_per_interval = pings }
  in
  Printf.printf "running multiping for %.1f simulated days (interval %.0f s, %d pings/interval)...\n%!"
    days interval pings;
  let raw = Sciera.Multiping.run net ~config ~days () in
  let ds = Sciera.Multiping.excluded_ip_majority raw in
  Printf.printf "raw pings: %d SCION, %d IP; kept after exclusion: %d / %d (%d intervals)\n"
    raw.Sciera.Multiping.scion_pings raw.Sciera.Multiping.ip_pings
    ds.Sciera.Multiping.scion_pings ds.Sciera.Multiping.ip_pings raw.Sciera.Multiping.intervals;
  let sc = List.filter_map (fun s -> s.Sciera.Multiping.scion_rtt) ds.Sciera.Multiping.samples in
  let ip = List.filter_map (fun s -> s.Sciera.Multiping.ip_rtt) ds.Sciera.Multiping.samples in
  let stats name l =
    let a = Array.of_list l in
    Printf.printf "%-6s median %.1f ms  p90 %.1f ms  p99 %.1f ms (%d samples)\n" name
      (Scion_util.Stats.median a)
      (Scion_util.Stats.percentile a 90.0)
      (Scion_util.Stats.percentile a 99.0)
      (Array.length a)
  in
  stats "SCION" sc;
  stats "IP" ip;
  0

let days = Arg.(value & opt float 2.0 & info [ "days" ] ~doc:"Simulated days to run.")
let interval = Arg.(value & opt float 600.0 & info [ "interval" ] ~doc:"Aggregation interval (s).")
let pings = Arg.(value & opt int 3 & info [ "pings" ] ~doc:"Ping slots per interval.")

let cmd =
  Cmd.v
    (Cmd.info "multiping" ~doc:"Run the scion-go-multiping campaign over simulated SCIERA")
    Term.(const run $ days $ interval $ pings)

let () = exit (Cmd.eval' cmd)
