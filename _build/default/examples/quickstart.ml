(* Quickstart: join SCIERA as an end host and talk to the other side of the
   world. Mirrors the paper's onboarding story (Section 4.1): bootstrapping
   is automatic, the daemon resolves paths, and the application only deals
   with a socket-like API.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "building the SCIERA network (Figure 1 topology, full control plane)...";
  let network = Sciera.Network.create ~verify_pcbs:true () in
  (* Join at OVGU Magdeburg, like a student machine on the campus network. *)
  let ovgu = Scion_addr.Ia.of_string "71-2:0:42" in
  let host =
    match Sciera.Host.attach network ~ia:ovgu () with
    | Ok h -> h
    | Error e -> failwith e
  in
  let timing = Sciera.Host.bootstrap_timing host in
  Printf.printf "bootstrapped at %s via %s in %.1f ms (hint %.1f + config %.1f) — mode: %s\n"
    (Sciera.Topology.name_of ovgu)
    (Scion_endhost.Hints.name timing.Scion_endhost.Bootstrap.mechanism)
    timing.Scion_endhost.Bootstrap.total_ms timing.Scion_endhost.Bootstrap.hint_ms
    timing.Scion_endhost.Bootstrap.config_ms
    (Scion_endhost.Pan.mode_to_string (Sciera.Host.mode host));
  (* Where can we go? Path lookup to Korea University via the daemon. *)
  let korea = Scion_addr.Ia.of_string "71-2:0:4d" in
  let paths = Sciera.Host.paths host ~dst:korea in
  Printf.printf "\n%d paths to %s; the three best by latency:\n" (List.length paths)
    (Sciera.Topology.name_of korea);
  let by_latency =
    List.sort
      (fun a b ->
        compare (Sciera.Host.latency_estimate host a) (Sciera.Host.latency_estimate host b))
      paths
  in
  List.iteri
    (fun i p ->
      if i < 3 then
        Printf.printf "  %.1f ms est: %s\n"
          (Sciera.Host.latency_estimate host p)
          (String.concat " -> "
             (List.map
                (fun h -> Sciera.Topology.name_of h.Scion_addr.Hop_pred.ia)
                p.Scion_controlplane.Combinator.interfaces)))
    by_latency;
  (* Ping: SCMP echo through the actual border routers. *)
  (match Sciera.Host.ping host ~dst:korea with
  | `Rtt ms -> Printf.printf "\nping %s: %.1f ms\n" (Sciera.Topology.name_of korea) ms
  | `Unreachable -> print_endline "unreachable");
  (* A request/response exchange, like a tiny RPC. *)
  match
    Sciera.Host.request host ~dst:korea ~payload:"hello from Magdeburg"
      ~handler:(fun req -> "annyeong! got: " ^ req)
      ()
  with
  | Ok (`Reply (answer, rtt)) -> Printf.printf "reply in %.1f ms: %s\n" rtt answer
  | Error e -> print_endline ("request failed: " ^ e)
