(* netcat — the paper's Java-netcat case study (Section 5.2, Appendix G):
   a datagram send/receive utility where SCION support is a drop-in socket
   replacement. The four changed lines versus a plain-UDP variant are
   marked. Everything else (argument handling, the send/receive loop) is
   unchanged application code.

   Run with:
     dune exec examples/netcat.exe -- 71-2:0:4d 4747        # send to Korea University
     dune exec examples/netcat.exe -- --from 71-225 71-2:0:5c 4747 *)

let () =
  let from = ref "71-2:0:42" in
  let rest = ref [] in
  Arg.parse
    [ ("--from", Arg.Set_string from, "source AS (default OVGU)") ]
    (fun a -> rest := a :: !rest)
    "netcat [--from IA] DEST_IA PORT";
  let dst_str, port =
    match List.rev !rest with
    | [ d; p ] -> (d, int_of_string p)
    | _ ->
        prerr_endline "usage: netcat [--from IA] DEST_IA PORT";
        exit 1
  in
  let network = Sciera.Network.create ~verify_pcbs:false () in
  (* SCION enablement, line 1 of 4: attach the SCION stack instead of
     opening an AF_INET socket. *)
  let host =
    match Sciera.Host.attach network ~ia:(Scion_addr.Ia.of_string !from) () with
    | Ok h -> h
    | Error e -> failwith e
  in
  (* line 2 of 4: the destination is an ISD-AS instead of an IP. *)
  let dst = Scion_addr.Ia.of_string dst_str in
  (* line 3 of 4: dial returns a path-aware connection. *)
  let conn = match Sciera.Host.dial host ~dst () with Ok c -> c | Error e -> failwith e in
  Printf.printf "connected to %s:%d over SCION (%d candidate paths)\n" dst_str port
    (Scion_endhost.Pan.Conn.candidates conn);
  (* The unchanged application loop: read lines, send datagrams. *)
  let lines = [ "hello"; "over"; "scion" ] in
  List.iter
    (fun line ->
      (* line 4 of 4: send over the SCION connection. *)
      match Scion_endhost.Pan.Conn.send conn ~payload:line with
      | Scion_endhost.Pan.Conn.Sent { rtt_ms } ->
          Printf.printf "> %s (acked in %.1f ms)\n" line rtt_ms
      | Scion_endhost.Pan.Conn.Send_failed -> Printf.printf "> %s (send failed)\n" line)
    lines
