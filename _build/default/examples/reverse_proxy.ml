(* reverse_proxy — the paper's Caddy case study (Section 5.2, Appendix F):
   a web server that accepts requests arriving over SCION and annotates
   them with X-SCION headers before handing them to the unchanged backend,
   exactly what the scion-caddy plugin does.

   Run with: dune exec examples/reverse_proxy.exe *)

module Pan = Scion_endhost.Pan

(* The unchanged backend application: routes and renders responses. *)
let backend ~headers ~path =
  let body =
    match path with
    | "/" -> "welcome to the SCIERA demo site"
    | "/status" -> "all systems operational"
    | p -> "no such page: " ^ p
  in
  let via = try List.assoc "X-SCION" headers with Not_found -> "off" in
  Printf.sprintf "HTTP/1.1 200 OK\r\nX-Served-Via-SCION: %s\r\n\r\n%s" via body

(* --- SCION enablement: the proxy layer (the "caddy plugin") ------------ *)

(* Parse the request line and tag the request with SCION metadata derived
   from the packet's source address, as headers.go does with
   snet.ParseUDPAddr + X-SCION / X-SCION-Remote-Addr. *)
let scion_middleware ~remote_ia request =
  let path =
    match String.split_on_char ' ' request with
    | "GET" :: p :: _ -> p
    | _ -> "/"
  in
  let headers =
    [
      ("X-SCION", "on");
      ("X-SCION-Remote-Addr", Scion_addr.Ia.to_string remote_ia ^ ",10.0.0.1:40001");
    ]
  in
  backend ~headers ~path

let () =
  let network = Sciera.Network.create ~verify_pcbs:false () in
  let server_ia = Scion_addr.Ia.of_string "71-1140" (* SIDN Labs hosts the site *) in
  Printf.printf "reverse proxy listening at %s (scion, scion+quic)\n"
    (Sciera.Topology.name_of server_ia);
  (* Three clients from three continents fetch pages through the proxy. *)
  List.iter
    (fun (client_str, path) ->
      let client_ia = Scion_addr.Ia.of_string client_str in
      let client =
        match Sciera.Network.paths network ~src:client_ia ~dst:server_ia with
        | [] -> Error "no path"
        | _ -> (
            match Sciera.Host.attach network ~ia:client_ia () with
            | Ok h -> Ok h
            | Error e -> Error e)
      in
      match client with
      | Error e -> Printf.printf "%s: %s\n" client_str e
      | Ok host -> (
          match
            Sciera.Host.request host ~dst:server_ia
              ~payload:(Printf.sprintf "GET %s HTTP/1.1" path)
              ~handler:(scion_middleware ~remote_ia:client_ia)
              ()
          with
          | Ok (`Reply (response, rtt)) ->
              Printf.printf "\n%s GET %s (%.1f ms):\n%s\n" (Sciera.Topology.name_of client_ia)
                path rtt response
          | Error e -> Printf.printf "%s: request failed: %s\n" client_str e))
    [ ("71-225", "/"); ("71-2:0:5c", "/status"); ("71-2:0:4d", "/missing") ]
