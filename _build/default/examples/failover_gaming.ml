(* failover_gaming — the Section 4.7 pitch: low-latency path selection with
   instant failover. A "game client" at CityU HK talks to a "game server"
   at Korea University, always over the lowest-latency path; mid-session a
   submarine cable fails and the connection keeps going over the next-best
   path without the application noticing more than one lost tick.

   Run with: dune exec examples/failover_gaming.exe *)

module Pan = Scion_endhost.Pan

let () =
  let network = Sciera.Network.create ~verify_pcbs:false () in
  let cityu = Scion_addr.Ia.of_string "71-4158" in
  let korea = Scion_addr.Ia.of_string "71-2:0:4d" in
  let client =
    match Sciera.Host.attach network ~ia:cityu () with Ok h -> h | Error e -> failwith e
  in
  let policy = { Pan.default_policy with Pan.preferences = [ Pan.Latency; Pan.Hops ] } in
  let conn =
    match Sciera.Host.dial client ~dst:korea ~policy () with
    | Ok c -> c
    | Error e -> failwith e
  in
  Printf.printf "game session %s -> %s, %d candidate paths, playing on:\n"
    (Sciera.Topology.name_of cityu) (Sciera.Topology.name_of korea)
    (Pan.Conn.candidates conn);
  let show_current () =
    let p = Pan.Conn.current_path conn in
    Printf.printf "  %s (%.1f ms est)\n"
      (String.concat " -> "
         (List.map
            (fun h -> Sciera.Topology.name_of h.Scion_addr.Hop_pred.ia)
            p.Scion_controlplane.Combinator.interfaces))
      (Sciera.Host.latency_estimate client p)
  in
  show_current ();
  let tick n =
    match Pan.Conn.send conn ~payload:(Printf.sprintf "tick %d" n) with
    | Pan.Conn.Sent { rtt_ms } -> Printf.printf "tick %2d: %.1f ms\n" n rtt_ms
    | Pan.Conn.Send_failed -> Printf.printf "tick %2d: LOST\n" n
  in
  for n = 1 to 5 do
    tick n
  done;
  (* Mid-game disaster: the Hong Kong-Daejeon ring segment goes down. *)
  print_endline "!! cable failure on the KREONET DJ-HK ring segment !!";
  let mesh = Sciera.Network.mesh network in
  List.iter
    (fun id -> Scion_controlplane.Mesh.set_link_state mesh id ~up:false)
    (Scion_controlplane.Mesh.find_links mesh
       (Scion_addr.Ia.of_string "71-2:0:3b")
       (Scion_addr.Ia.of_string "71-2:0:3c"));
  for n = 6 to 10 do
    tick n
  done;
  Printf.printf "failovers performed by the connection: %d; now playing on:\n"
    (Pan.Conn.failovers conn);
  show_current ()
