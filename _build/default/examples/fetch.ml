(* fetch — the paper's `bat` case study (Section 5.2, Appendix E): a small
   HTTP-like client that gains SCION support with a handful of lines.

   The application logic (request formatting, response handling, CLI) is
   SCION-agnostic. The SCION enablement is confined to the marked block
   below — the same shape as the bat diff: add --sequence / --preference /
   --interactive flags and swap the transport. The block is 14 lines, the
   figure reported by the Section 5.2 experiment.

   Run with:
     dune exec examples/fetch.exe -- http://sidnlabs/page
     dune exec examples/fetch.exe -- --preference latency http://kaust/data
     dune exec examples/fetch.exe -- --sequence "71-2:0:42 71-20965 *" http://sidnlabs/x
     dune exec examples/fetch.exe -- --interactive http://uva/index *)

let usage = "fetch [--sequence SEQ] [--preference PREFS] [--interactive] URL"

(* --- plain application logic ------------------------------------------- *)

let parse_url url =
  match String.index_opt (String.sub url 7 (String.length url - 7)) '/' with
  | _ when not (String.length url > 7 && String.sub url 0 7 = "http://") ->
      failwith "only http:// URLs"
  | None -> (String.sub url 7 (String.length url - 7), "/")
  | Some i ->
      let hostpart = String.sub url 7 i in
      (hostpart, String.sub url (7 + i) (String.length url - 7 - i))

let build_request host path = Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\n\r\n" path host

let serve_response req =
  (* The far end of this demo: a minimal origin server. *)
  let body = "<html>hello from the SCIERA origin</html>" in
  if String.length req >= 3 && String.sub req 0 3 = "GET" then
    Printf.sprintf "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s" (String.length body) body
  else "HTTP/1.1 400 Bad Request\r\n\r\n"

let resolve_host network host =
  (* Stands in for the DNS TXT lookup of the destination ISD-AS. *)
  ignore network;
  match Sciera.Topology.find_by_name host with
  | Some info -> info.Sciera.Topology.ia
  | None -> (
      match Scion_addr.Ia.of_string host with
      | ia -> ia
      | exception Invalid_argument _ -> failwith ("unknown host " ^ host))

let () =
  let sequence = ref "" and preference = ref "" and interactive = ref false in
  let url = ref "" in
  let spec =
    [
      ("--sequence", Arg.Set_string sequence, "hop-predicate sequence for the path policy");
      ("--preference", Arg.Set_string preference, "comma-separated sorting: latency,hops,mtu,expiry");
      ("--interactive", Arg.Set interactive, "prompt for interactive path selection");
    ]
  in
  Arg.parse spec (fun u -> url := u) usage;
  if !url = "" then begin
    prerr_endline usage;
    exit 1
  end;
  let network = Sciera.Network.create ~verify_pcbs:false () in
  let host_name, path = parse_url !url in
  let dst = resolve_host network host_name in
  let src = Scion_addr.Ia.of_string "71-2:0:42" in
  let client =
    match Sciera.Host.attach network ~ia:src () with Ok h -> h | Error e -> failwith e
  in
  (* --- SCION enablement (the "bat diff", 14 lines) --------------------- *)
  let policy =
    match
      Scion_endhost.Pan.policy_of_options ~sequence:!sequence ~preference:!preference ()
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let policy =
    if not !interactive then policy
    else begin
      let paths = Sciera.Host.paths client ~dst in
      List.iteri
        (fun i p ->
          Printf.printf "[%d] %d hops, %.1f ms est\n" i
            (Scion_controlplane.Combinator.num_hops p)
            (Sciera.Host.latency_estimate client p))
        paths;
      print_string "path> ";
      ignore (read_line ());
      policy
    end
  in
  (* ---------------------------------------------------------------------- *)
  match
    Sciera.Host.request client ~dst ~policy ~payload:(build_request host_name path)
      ~handler:serve_response ()
  with
  | Ok (`Reply (response, rtt)) ->
      Printf.printf "%s\n-- fetched from %s (%s) in %.1f ms over SCION\n" response host_name
        (Scion_addr.Ia.to_string dst) rtt
  | Error e ->
      prerr_endline ("fetch failed: " ^ e);
      exit 1
