examples/reverse_proxy.mli:
