examples/reverse_proxy.ml: List Printf Sciera Scion_addr Scion_endhost String
