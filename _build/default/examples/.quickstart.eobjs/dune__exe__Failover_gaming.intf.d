examples/failover_gaming.mli:
