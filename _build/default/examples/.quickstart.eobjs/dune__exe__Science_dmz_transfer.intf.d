examples/science_dmz_transfer.mli:
