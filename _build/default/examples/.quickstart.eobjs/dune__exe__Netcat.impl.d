examples/netcat.ml: Arg List Printf Sciera Scion_addr Scion_endhost
