examples/fetch.mli:
