examples/failover_gaming.ml: List Printf Sciera Scion_addr Scion_controlplane Scion_endhost String
