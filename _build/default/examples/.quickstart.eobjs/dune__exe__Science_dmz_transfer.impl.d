examples/science_dmz_transfer.ml: List Printf Sciera Scion_addr
