examples/quickstart.mli:
