examples/netcat.mli:
