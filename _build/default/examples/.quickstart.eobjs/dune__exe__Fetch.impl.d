examples/fetch.ml: Arg List Printf Sciera Scion_addr Scion_controlplane Scion_endhost String
