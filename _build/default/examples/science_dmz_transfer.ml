(* science_dmz_transfer — the Section 4.7.1 Science-DMZ: a bulk research
   data set moves from KAUST to OVGU through LightningFilter-protected
   transfer nodes, striped across several SCION paths Hercules-style; the
   single-path (and firewall-bottlenecked) alternatives are shown for
   comparison.

   Run with: dune exec examples/science_dmz_transfer.exe *)

module Dmz = Sciera.Science_dmz

let () =
  let network = Sciera.Network.create ~verify_pcbs:false () in
  let kaust = Scion_addr.Ia.of_string "71-50999" in
  let ovgu = Scion_addr.Ia.of_string "71-2:0:42" in
  (* The DMZ's LightningFilter authenticates the sender's AS with a DRKey-
     derived symmetric key before any packet reaches the transfer node. *)
  let filter =
    Dmz.Filter.create ~local_secret:"ovgu-dmz-secret" ~allowed:[ (kaust, 1_000_000.0) ] ()
  in
  let key = Dmz.Filter.host_key filter ~peer:kaust in
  let sample = "chunk 0 of the climate simulation ensemble" in
  let tag = Dmz.Filter.authenticate ~key ~payload:sample in
  (match Dmz.Filter.check filter ~now:0.0 ~src:kaust ~payload:sample ~tag with
  | Dmz.Filter.Accepted -> print_endline "LightningFilter: sender authenticated at line rate"
  | _ -> failwith "filter rejected the legitimate sender");
  (match
     Dmz.Filter.check filter ~now:0.0 ~src:(Scion_addr.Ia.of_string "71-88") ~payload:sample ~tag
   with
  | Dmz.Filter.Unknown_source -> print_endline "LightningFilter: unauthorized AS dropped"
  | _ -> failwith "filter accepted an unauthorized source");
  (* Hercules: stripe the transfer over the most disjoint path set. *)
  let paths = Sciera.Network.paths network ~src:kaust ~dst:ovgu in
  Printf.printf "\n%d SCION paths KAUST -> OVGU; using up to 4 for the transfer\n"
    (List.length paths);
  let selected = List.filteri (fun i _ -> i < 4) paths in
  let capacities =
    List.map
      (fun p ->
        {
          Dmz.Hercules.rtt_ms = Sciera.Network.scion_rtt_base network p;
          bandwidth_mbps = 9_500.0 (* 10G circuits minus headers *);
        })
      selected
  in
  let size_gb = 500.0 in
  let plan = Dmz.Hercules.plan_transfer ~size_gb ~paths:capacities in
  Printf.printf "Hercules multipath: %.0f GB at %.1f Gbit/s aggregate -> %.0f s\n" size_gb
    (plan.Dmz.Hercules.total_mbps /. 1000.0)
    plan.Dmz.Hercules.completion_s;
  (match capacities with
  | first :: _ ->
      Printf.printf "single SCION path:  %.0f s\n"
        (Dmz.Hercules.single_path_completion ~size_gb first);
      (* The traditional alternative: a stateful campus firewall capping
         throughput around 1 Gbit/s (the bottleneck the paper calls out). *)
      let firewall = { first with Dmz.Hercules.bandwidth_mbps = 1_000.0 } in
      Printf.printf "via campus firewall: %.0f s\n"
        (Dmz.Hercules.single_path_completion ~size_gb firewall)
  | [] -> ());
  Printf.printf "filter counters: %d accepted, %d rejected\n" (Dmz.Filter.accepted filter)
    (Dmz.Filter.rejected filter)
