(* showpaths — the `scion showpaths` equivalent over the simulated SCIERA
   deployment: list the available paths between two ASes, with hop traces,
   latency estimates, expiry, data-plane liveness and live path quality
   (from a short SCMP-echo probing campaign feeding the daemon's shared
   quality cache, exactly as an adaptive endhost's prober would).

   dune exec bin/showpaths.exe -- --src 71-225 --dst 71-2:0:5c --day 8
   dune exec bin/showpaths.exe -- --score   # sort by live quality score *)

open Cmdliner
module Combinator = Scion_controlplane.Combinator

(* Probes fired per path before rendering: enough to clear the selector's
   [min_probes] warmup and fill most of the loss window. *)
let probe_rounds = 12

let probe_quality net ~quality ~dst_key paths =
  let probe_rng = Scion_util.Rng.of_label 0x5109_4F4AL "showpaths.probe" in
  let sample_rng = Scion_util.Rng.split probe_rng in
  let by_fp = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace by_fp p.Combinator.fingerprint p) paths;
  let prober =
    Pathmon.Prober.create ~rng:probe_rng
      ~probe:(fun ~fingerprint ->
        match Hashtbl.find_opt by_fp fingerprint with
        | Some p -> Sciera.Network.scmp_probe net ~rng:sample_rng p
        | None -> `Lost)
      ()
  in
  List.iter
    (fun p ->
      Pathmon.Prober.watch prober ~fingerprint:p.Combinator.fingerprint
        ~estimator:
          (Pathmon.Cache.find quality ~dst:dst_key
             ~fingerprint:p.Combinator.fingerprint))
    paths;
  for round = 1 to probe_rounds do
    ignore (Pathmon.Prober.probe_all prober ~now_s:(float_of_int round))
  done

let run src dst day max_paths verify by_score =
  let net = Sciera.Network.create ~verify_pcbs:verify () in
  Sciera.Network.set_day net day;
  let src = Scion_addr.Ia.of_string src and dst = Scion_addr.Ia.of_string dst in
  let paths = Sciera.Network.paths net ~src ~dst in
  let daemon =
    Scion_endhost.Daemon.create ~ia:src
      ~fetch:(fun ~dst -> Sciera.Network.paths net ~src ~dst)
      ()
  in
  let quality = Scion_endhost.Daemon.quality daemon in
  let dst_key = Scion_addr.Ia.to_string dst in
  probe_quality net ~quality ~dst_key paths;
  let config = Pathmon.Selector.default_config in
  let candidate p =
    {
      Pathmon.Selector.fingerprint = p.Combinator.fingerprint;
      static_ms = Sciera.Network.scion_rtt_base net p;
      estimator =
        Pathmon.Cache.peek quality ~dst:dst_key
          ~fingerprint:p.Combinator.fingerprint;
    }
  in
  let score p = Pathmon.Selector.score config (candidate p) in
  (* The path a converged adaptive connection would hold: best live score,
     ties towards the static ranking (list order). *)
  let active_fp =
    match paths with
    | [] -> ""
    | first :: rest ->
        (List.fold_left
           (fun best p -> if score p < score best then p else best)
           first rest)
          .Combinator.fingerprint
  in
  let paths =
    if by_score then
      List.stable_sort (fun a b -> Float.compare (score a) (score b)) paths
    else paths
  in
  Printf.printf "Available paths %s (%s) -> %s (%s) on window day %.1f%s:\n"
    (Scion_addr.Ia.to_string src) (Sciera.Topology.name_of src)
    (Scion_addr.Ia.to_string dst) (Sciera.Topology.name_of dst) day
    (if by_score then ", sorted by live score" else "");
  let shown = ref 0 in
  List.iter
    (fun p ->
      if !shown < max_paths then begin
        incr shown;
        let alive =
          Scion_controlplane.Mesh.path_alive (Sciera.Network.mesh net)
            ~now:(Sciera.Network.now_unix net) p
        in
        Printf.printf "[%2d] hops: %s\n" !shown
          (String.concat " "
             (List.map
                (fun h ->
                  Printf.sprintf "%s#%d,%d"
                    (Scion_addr.Ia.to_string h.Scion_addr.Hop_pred.ia)
                    h.Scion_addr.Hop_pred.ingress h.Scion_addr.Hop_pred.egress)
                p.Combinator.interfaces));
        Printf.printf "     mtu: %d, est rtt: %.1f ms, expires in %.1f h, status: %s\n"
          p.Combinator.mtu
          (Sciera.Network.scion_rtt_base net p)
          ((p.Combinator.expiry -. Sciera.Network.now_unix net) /. 3600.0)
          (if alive then "alive" else "dead (data plane)");
        let live_rtt =
          match Pathmon.Cache.peek quality ~dst:dst_key ~fingerprint:p.Combinator.fingerprint with
          | Some est -> (
              match Pathmon.Estimator.rtt_ewma_ms est with
              | Some ms ->
                  Printf.sprintf "%.1f ms (+/- %.1f)" ms
                    (Pathmon.Estimator.rtt_deviation_ms est)
              | None -> "no replies")
          | None -> "unprobed"
        in
        let loss =
          match Pathmon.Cache.peek quality ~dst:dst_key ~fingerprint:p.Combinator.fingerprint with
          | Some est -> Pathmon.Estimator.loss_rate est *. 100.0
          | None -> 0.0
        in
        Printf.printf "     live rtt: %s, loss: %.0f%%, score: %.1f, %s\n"
          live_rtt loss (score p)
          (if String.equal p.Combinator.fingerprint active_fp then "active"
           else "parked")
      end)
    paths;
  Printf.printf "%d paths total, %d shown\n" (List.length paths) !shown;
  0

let src_arg =
  Arg.(value & opt string "71-2:0:42" & info [ "src" ] ~docv:"IA" ~doc:"Source ISD-AS.")

let dst_arg =
  Arg.(value & opt string "71-2:0:4d" & info [ "dst" ] ~docv:"IA" ~doc:"Destination ISD-AS.")

let day_arg =
  Arg.(value & opt float 8.0 & info [ "day" ] ~docv:"DAY" ~doc:"Measurement-window day (0-20).")

let max_arg = Arg.(value & opt int 10 & info [ "max" ] ~doc:"Maximum paths to print.")

let verify_arg =
  Arg.(value & flag & info [ "verify-pcbs" ] ~doc:"Cryptographically verify beacons (slower).")

let score_arg =
  Arg.(value & flag & info [ "score" ] ~doc:"Sort paths by live quality score (best first).")

let cmd =
  Cmd.v
    (Cmd.info "showpaths" ~doc:"List SCION paths in the simulated SCIERA deployment")
    Term.(const run $ src_arg $ dst_arg $ day_arg $ max_arg $ verify_arg $ score_arg)

let () = exit (Cmd.eval' cmd)
