(* scion-top — drive a seeded SCIERA simulation and print the telemetry
   registry as an aligned table, the way scion-top tails a live deployment.

   dune exec bin/scion_top.exe -- --days 3 --pings 5
   dune exec bin/scion_top.exe -- --json snapshot.json   # canonical JSONL
   dune exec bin/scion_top.exe -- --trace trace.jsonl    # span/event trace
   dune exec bin/scion_top.exe -- --diff a.jsonl b.jsonl # what changed

   The simulation is deterministic: the same arguments always produce the
   same table and a byte-identical --json snapshot. *)

open Cmdliner

let src_ia = Scion_addr.Ia.of_string "71-225"
let dst_ia = Scion_addr.Ia.of_string "71-2:0:5c"

(* --diff: no simulation at all — parse two canonical JSONL snapshots
   (from --json, or checked-in golden metrics) and print every series
   that was added, removed or changed between them. *)
let diff_snapshots path_a path_b =
  let load path =
    match Telemetry.Export.of_json (In_channel.with_open_bin path In_channel.input_all) with
    | Ok samples -> samples
    | Error e ->
        Printf.eprintf "cannot parse %s: %s\n" path e;
        exit 1
  in
  let before = load path_a in
  let after = load path_b in
  let changes = Telemetry.Export.diff_samples before after in
  Printf.printf "scion-top --diff: %s -> %s (%d changed series)\n\n" path_a path_b
    (List.length changes);
  print_string (Telemetry.Export.render_diff changes);
  0

let simulate days pings json_path trace_path =
  let obs = Sciera.Obs.create () in
  let trace = Sciera.Obs.trace obs in
  let net = Sciera.Network.create ~telemetry:obs () in
  let host =
    match Sciera.Host.attach net ~ia:src_ia () with
    | Ok h -> h
    | Error e ->
        Printf.eprintf "cannot attach host at %s: %s\n" (Scion_addr.Ia.to_string src_ia) e;
        exit 1
  in
  (* Walk the incident calendar half a day at a time, pinging across the
     backbone at each step so the daemon/PAN/router series move. *)
  let steps = max 1 (int_of_float (ceil (days *. 2.0))) in
  for step = 0 to steps do
    let day = min days (float_of_int step *. 0.5) in
    Sciera.Network.set_day net day;
    let sp =
      Telemetry.Trace.span trace ~now:(Sciera.Network.now_unix net)
        (Printf.sprintf "day-%.1f" day)
    in
    let delivered = ref 0 in
    for _ = 1 to pings do
      match Sciera.Host.ping host ~dst:dst_ia with
      | `Rtt _ -> incr delivered
      | `Unreachable -> ()
    done;
    Telemetry.Trace.finish sp ~now:(Sciera.Network.now_unix net)
      ~fields:[ ("delivered", Telemetry.Trace.Int !delivered) ]
      ()
  done;
  Printf.printf "scion-top — SCIERA after %.1f simulated days (%d series)\n\n" days
    (Telemetry.Metrics.size (Sciera.Obs.registry obs));
  print_string (Sciera.Obs.render obs);
  (match json_path with
  | Some path ->
      Telemetry.Export.write_file path (Sciera.Obs.snapshot_json obs);
      Printf.printf "\nwrote metrics snapshot to %s\n" path
  | None -> ());
  (match trace_path with
  | Some path ->
      Telemetry.Export.write_file path (Telemetry.Trace.to_jsonl trace);
      Printf.printf "wrote trace to %s\n" path
  | None -> ());
  0

let days = Arg.(value & opt float 2.0 & info [ "days" ] ~doc:"Simulated days to walk.")
let pings = Arg.(value & opt int 3 & info [ "pings" ] ~doc:"Pings per half-day step.")

let json_path =
  Arg.(value & opt (some string) None & info [ "json" ] ~doc:"Write the canonical JSONL metrics snapshot to $(docv)." ~docv:"FILE")

let trace_path =
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Write the span/event trace (JSONL) to $(docv)." ~docv:"FILE")

let diff_mode =
  Arg.(
    value & flag
    & info [ "diff" ]
        ~doc:"Compare two JSONL metrics snapshots and print every changed series; skips the simulation.")

let snapshot_files = Arg.(value & pos_all file [] & info [] ~docv:"SNAPSHOT")

let run days pings json_path trace_path diff files =
  match (diff, files) with
  | true, [ a; b ] -> diff_snapshots a b
  | true, _ ->
      Printf.eprintf "--diff needs exactly two snapshot files (before after)\n";
      1
  | false, _ :: _ ->
      Printf.eprintf "positional arguments only make sense with --diff\n";
      1
  | false, [] -> simulate days pings json_path trace_path

let cmd =
  Cmd.v
    (Cmd.info "scion-top" ~doc:"Render the telemetry registry of a seeded SCIERA run")
    Term.(const run $ days $ pings $ json_path $ trace_path $ diff_mode $ snapshot_files)

let () = exit (Cmd.eval' cmd)
