module Table = Scion_util.Table

type t = {
  metrics : Telemetry.Metrics.registry option;
  config : Estimator.config;
  by_dst : (string, (string, Estimator.t) Hashtbl.t) Hashtbl.t;
}

let create ?metrics ?(config = Estimator.default_config) () =
  { metrics; config; by_dst = Hashtbl.create 8 }

(* Telemetry label for a path: enough fingerprint to disambiguate, short
   enough to keep series names readable. *)
let path_label fingerprint =
  if String.length fingerprint <= 12 then fingerprint else String.sub fingerprint 0 12

let find t ~dst ~fingerprint =
  let dst_table =
    match Hashtbl.find_opt t.by_dst dst with
    | Some table -> table
    | None ->
        let table = Hashtbl.create 8 in
        Hashtbl.replace t.by_dst dst table;
        table
  in
  match Hashtbl.find_opt dst_table fingerprint with
  | Some est -> est
  | None ->
      let est =
        Estimator.create ?metrics:t.metrics
          ~labels:[ ("dst", dst); ("path", path_label fingerprint) ]
          ~config:t.config ()
      in
      Hashtbl.replace dst_table fingerprint est;
      est

let peek t ~dst ~fingerprint =
  Option.bind (Hashtbl.find_opt t.by_dst dst) (fun table -> Hashtbl.find_opt table fingerprint)

let destinations t = Table.sorted_keys t.by_dst

let paths t ~dst =
  match Hashtbl.find_opt t.by_dst dst with
  | None -> []
  | Some table -> Table.sorted_keys table

let size t = Table.fold_sorted (fun _ table acc -> acc + Hashtbl.length table) t.by_dst 0
