(** Shared per-destination path-quality cache.

    One {!Estimator} per (destination, path fingerprint), created on first
    touch and shared between every consumer: the {!Prober} feeding it, any
    [Pan.Conn] whose {!Selector} reads it, and operator tooling
    ([bin/showpaths]) rendering it. The daemon owns one cache per host so
    connections to the same destination pool their quality knowledge
    instead of each warming a private view — the "shared per-destination
    quality cache" of the paper's adaptive-selection story.

    Keys are plain strings (the destination is whatever label the creator
    scopes by, conventionally the IA string; the path key is the
    [Combinator.fullpath] fingerprint), and all listing functions return
    ascending order, so anything rendered from a cache walk is
    byte-stable. *)

type t

val create :
  ?metrics:Telemetry.Metrics.registry -> ?config:Estimator.config -> unit -> t
(** With [?metrics], each estimator created by {!find} exports its
    [pathmon.*] series labelled [{dst; path}] (where [path] is a short
    fingerprint prefix) in that registry. [?config] applies to every
    estimator the cache creates. *)

val find : t -> dst:string -> fingerprint:string -> Estimator.t
(** Get-or-create the estimator for one (destination, path) pair. *)

val peek : t -> dst:string -> fingerprint:string -> Estimator.t option
(** Like {!find} but never creates. *)

val destinations : t -> string list
(** Destinations with at least one estimator, ascending. *)

val paths : t -> dst:string -> string list
(** Fingerprints cached for [dst], ascending; [[]] for unknown [dst]. *)

val size : t -> int
(** Total estimators held across all destinations. *)
