module M = Telemetry.Metrics

type config = {
  rtt_alpha : float;
  dev_beta : float;
  loss_window : int;
}

let default_config = { rtt_alpha = 0.25; dev_beta = 0.125; loss_window = 16 }

let make_config ?(rtt_alpha = default_config.rtt_alpha) ?(dev_beta = default_config.dev_beta)
    ?(loss_window = default_config.loss_window) () =
  let gain name v =
    if Float.is_nan v || v <= 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Estimator.make_config: %s must be in (0, 1] (got %g)" name v)
  in
  gain "rtt_alpha" rtt_alpha;
  gain "dev_beta" dev_beta;
  if loss_window < 1 then
    invalid_arg (Printf.sprintf "Estimator.make_config: loss_window must be >= 1 (got %d)" loss_window);
  { rtt_alpha; dev_beta; loss_window }

type obs = {
  o_rtt : M.gauge;
  o_dev : M.gauge;
  o_loss : M.gauge;
  o_ok : M.counter;
  o_lost : M.counter;
  (* Bandwidth-signal gauges exist only once the first sample arrives:
     estimators never fed a bandwidth signal keep their historic snapshot
     byte-identical (the pathmon golden). *)
  o_util : M.gauge Lazy.t;
  o_queue : M.gauge Lazy.t;
}

type t = {
  config : config;
  mutable srtt_ms : float option;
  mutable dev_ms : float;
  window : bool array;  (** true = lost; ring buffer of the last outcomes. *)
  mutable window_next : int;
  mutable window_filled : int;
  mutable probe_count : int;
  mutable loss_count : int;
  (* Optional bandwidth signal (queue/utilisation along the path), EWMA
     smoothed with the same gain as the RTT — absent until the first
     [observe_bandwidth]. *)
  mutable util : float;
  mutable queue_ms : float;
  mutable bw_count : int;
  obs : obs option;
}

let make_obs registry ~labels =
  {
    o_rtt = M.gauge registry ~labels "pathmon.rtt_ewma_ms";
    o_dev = M.gauge registry ~labels "pathmon.rtt_deviation_ms";
    o_loss = M.gauge registry ~labels "pathmon.loss_rate";
    o_ok = M.counter registry ~labels:(("outcome", "ok") :: labels) "pathmon.probes";
    o_lost = M.counter registry ~labels:(("outcome", "lost") :: labels) "pathmon.probes";
    o_util = lazy (M.gauge registry ~labels "pathmon.utilisation");
    o_queue = lazy (M.gauge registry ~labels "pathmon.queue_delay_ms");
  }

let create ?metrics ?(labels = []) ?(config = default_config) () =
  (* Re-validate: a record literal can bypass make_config. *)
  let config =
    make_config ~rtt_alpha:config.rtt_alpha ~dev_beta:config.dev_beta
      ~loss_window:config.loss_window ()
  in
  {
    config;
    srtt_ms = None;
    dev_ms = 0.0;
    window = Array.make config.loss_window false;
    window_next = 0;
    window_filled = 0;
    probe_count = 0;
    loss_count = 0;
    util = 0.0;
    queue_ms = 0.0;
    bw_count = 0;
    obs = Option.map (fun registry -> make_obs registry ~labels) metrics;
  }

let loss_rate t =
  if t.window_filled = 0 then 0.0
  else begin
    let lost = ref 0 in
    for i = 0 to t.window_filled - 1 do
      if t.window.(i) then incr lost
    done;
    float_of_int !lost /. float_of_int t.window_filled
  end

let push_window t lost =
  t.window.(t.window_next) <- lost;
  t.window_next <- (t.window_next + 1) mod t.config.loss_window;
  if t.window_filled < t.config.loss_window then t.window_filled <- t.window_filled + 1

let observe t outcome =
  t.probe_count <- t.probe_count + 1;
  (match outcome with
  | `Lost ->
      t.loss_count <- t.loss_count + 1;
      push_window t true;
      (match t.obs with None -> () | Some o -> M.inc o.o_lost)
  | `Rtt ms ->
      if not (Float.is_finite ms) || ms < 0.0 then
        invalid_arg (Printf.sprintf "Estimator.observe: RTT must be finite and >= 0 (got %g)" ms);
      push_window t false;
      (match t.srtt_ms with
      | None ->
          t.srtt_ms <- Some ms;
          t.dev_ms <- 0.0
      | Some srtt ->
          let err = Float.abs (srtt -. ms) in
          t.dev_ms <- ((1.0 -. t.config.dev_beta) *. t.dev_ms) +. (t.config.dev_beta *. err);
          t.srtt_ms <- Some (((1.0 -. t.config.rtt_alpha) *. srtt) +. (t.config.rtt_alpha *. ms)));
      (match t.obs with None -> () | Some o -> M.inc o.o_ok));
  match t.obs with
  | None -> ()
  | Some o ->
      (match t.srtt_ms with None -> () | Some srtt -> M.set o.o_rtt srtt);
      M.set o.o_dev t.dev_ms;
      M.set o.o_loss (loss_rate t)

let observe_bandwidth t ~utilisation ~queue_delay_ms =
  if Float.is_nan utilisation || utilisation < 0.0 || utilisation > 1.0 then
    invalid_arg
      (Printf.sprintf "Estimator.observe_bandwidth: utilisation must be in [0, 1] (got %g)"
         utilisation);
  if not (Float.is_finite queue_delay_ms) || queue_delay_ms < 0.0 then
    invalid_arg
      (Printf.sprintf "Estimator.observe_bandwidth: queue_delay_ms must be finite and >= 0 (got %g)"
         queue_delay_ms);
  if t.bw_count = 0 then begin
    t.util <- utilisation;
    t.queue_ms <- queue_delay_ms
  end
  else begin
    let a = t.config.rtt_alpha in
    t.util <- ((1.0 -. a) *. t.util) +. (a *. utilisation);
    t.queue_ms <- ((1.0 -. a) *. t.queue_ms) +. (a *. queue_delay_ms)
  end;
  t.bw_count <- t.bw_count + 1;
  match t.obs with
  | None -> ()
  | Some o ->
      M.set (Lazy.force o.o_util) t.util;
      M.set (Lazy.force o.o_queue) t.queue_ms

let utilisation t = t.util
let queue_delay_ms t = t.queue_ms
let bandwidth_samples t = t.bw_count
let rtt_ewma_ms t = t.srtt_ms
let rtt_deviation_ms t = t.dev_ms
let probes t = t.probe_count
let losses t = t.loss_count
