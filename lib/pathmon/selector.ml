module M = Telemetry.Metrics

type config = {
  loss_penalty_ms : float;
  dev_weight : float;
  switch_margin : float;
  hold_ticks : int;
  min_probes : int;
  bandwidth_aware : bool;
  bw_penalty_ms : float;
}

let default_config =
  {
    loss_penalty_ms = 250.0;
    dev_weight = 2.0;
    switch_margin = 0.10;
    hold_ticks = 2;
    min_probes = 3;
    bandwidth_aware = false;
    bw_penalty_ms = 150.0;
  }

let make_config ?(loss_penalty_ms = default_config.loss_penalty_ms)
    ?(dev_weight = default_config.dev_weight)
    ?(switch_margin = default_config.switch_margin)
    ?(hold_ticks = default_config.hold_ticks)
    ?(min_probes = default_config.min_probes)
    ?(bandwidth_aware = default_config.bandwidth_aware)
    ?(bw_penalty_ms = default_config.bw_penalty_ms) () =
  let non_negative name v =
    if Float.is_nan v || v < 0.0 then
      invalid_arg (Printf.sprintf "Selector.make_config: %s must be >= 0 (got %g)" name v)
  in
  non_negative "loss_penalty_ms" loss_penalty_ms;
  non_negative "dev_weight" dev_weight;
  non_negative "switch_margin" switch_margin;
  if hold_ticks < 1 then
    invalid_arg (Printf.sprintf "Selector.make_config: hold_ticks must be >= 1 (got %d)" hold_ticks);
  if min_probes < 0 then
    invalid_arg (Printf.sprintf "Selector.make_config: min_probes must be >= 0 (got %d)" min_probes);
  non_negative "bw_penalty_ms" bw_penalty_ms;
  { loss_penalty_ms; dev_weight; switch_margin; hold_ticks; min_probes; bandwidth_aware; bw_penalty_ms }

type candidate = {
  fingerprint : string;
  static_ms : float;
  estimator : Estimator.t option;
}

let score config c =
  match c.estimator with
  | Some est when Estimator.probes est >= config.min_probes ->
      let base =
        match Estimator.rtt_ewma_ms est with
        | Some srtt -> srtt +. (config.dev_weight *. Estimator.rtt_deviation_ms est)
        | None ->
            (* Every windowed probe was lost: the static estimate is all we
               have, and the loss penalty below does the real work. *)
            c.static_ms
      in
      let congestion =
        (* Off (and therefore score-neutral) unless the selector was
           explicitly armed: the pathmon golden and every existing
           consumer see the historic scoring. *)
        if config.bandwidth_aware then
          (config.bw_penalty_ms *. Estimator.utilisation est) +. Estimator.queue_delay_ms est
        else 0.0
      in
      base +. (config.loss_penalty_ms *. Estimator.loss_rate est) +. congestion
  | _ -> c.static_ms

type obs = {
  o_switches : M.counter;
  o_returns : M.counter;
  o_active_score : M.gauge;
}

type t = {
  config : config;
  mutable challenger : string option;  (** Candidate currently winning the hold count. *)
  mutable streak : int;
  mutable switches : int;
  mutable returns : int;
  obs : obs option;
}

let create ?metrics ?(labels = []) ?(config = default_config) () =
  let config =
    make_config ~loss_penalty_ms:config.loss_penalty_ms ~dev_weight:config.dev_weight
      ~switch_margin:config.switch_margin ~hold_ticks:config.hold_ticks
      ~min_probes:config.min_probes ~bandwidth_aware:config.bandwidth_aware
      ~bw_penalty_ms:config.bw_penalty_ms ()
  in
  let obs =
    Option.map
      (fun registry ->
        {
          o_switches = M.counter registry ~labels "pathmon.selector.switches";
          o_returns = M.counter registry ~labels "pathmon.selector.returns";
          o_active_score = M.gauge registry ~labels "pathmon.selector.active_score";
        })
      metrics
  in
  { config; challenger = None; streak = 0; switches = 0; returns = 0; obs }

(* The deterministic "best" candidate: lowest score, ties towards the lower
   static latency then the lexicographically smaller fingerprint. *)
let best config candidates =
  match candidates with
  | [] -> invalid_arg "Selector.choose: empty candidate list"
  | first :: rest ->
      List.fold_left
        (fun ((acc, acc_score) as kept) c ->
          let s = score config c in
          if
            s < acc_score
            || (Float.equal s acc_score
               && (c.static_ms < acc.static_ms
                  || (Float.equal c.static_ms acc.static_ms
                     && String.compare c.fingerprint acc.fingerprint < 0)))
          then (c, s)
          else kept)
        (first, score config first) rest

let preferred_static candidates =
  match candidates with
  | [] -> invalid_arg "Selector.choose: empty candidate list"
  | first :: rest ->
      List.fold_left
        (fun acc c ->
          if
            c.static_ms < acc.static_ms
            || (Float.equal c.static_ms acc.static_ms
               && String.compare c.fingerprint acc.fingerprint < 0)
          then c
          else acc)
        first rest

let record_switch t ~to_fp ~candidates =
  t.switches <- t.switches + 1;
  let is_return = String.equal (preferred_static candidates).fingerprint to_fp in
  if is_return then t.returns <- t.returns + 1;
  match t.obs with
  | None -> ()
  | Some o ->
      M.inc o.o_switches;
      if is_return then M.inc o.o_returns

let choose t ~candidates ~active =
  let config = t.config in
  let active_c = List.find_opt (fun c -> String.equal c.fingerprint active) candidates in
  let best_c, best_score = best config candidates in
  let decided =
    match active_c with
    | None ->
        (* The active path left the candidate set (expired, revoked, hard
           down): switch immediately — there is nothing to hold onto. *)
        t.challenger <- None;
        t.streak <- 0;
        if not (String.equal best_c.fingerprint active) then
          record_switch t ~to_fp:best_c.fingerprint ~candidates;
        best_c
    | Some active_c ->
        let active_score = score config active_c in
        (* Asymmetric hysteresis: abandoning the current path needs the
           full margin, but moving back onto the statically-preferred
           candidate only needs a sustained advantage — otherwise a
           preferred path whose static edge is smaller than the margin
           could never be returned to after it recovers. *)
        let margin_factor =
          if String.equal best_c.fingerprint (preferred_static candidates).fingerprint then 1.0
          else 1.0 -. config.switch_margin
        in
        let beats_margin =
          (not (String.equal best_c.fingerprint active))
          && best_score < active_score *. margin_factor
        in
        if not beats_margin then begin
          t.challenger <- None;
          t.streak <- 0;
          active_c
        end
        else begin
          (match t.challenger with
          | Some fp when String.equal fp best_c.fingerprint -> t.streak <- t.streak + 1
          | _ ->
              t.challenger <- Some best_c.fingerprint;
              t.streak <- 1);
          if t.streak >= config.hold_ticks then begin
            t.challenger <- None;
            t.streak <- 0;
            record_switch t ~to_fp:best_c.fingerprint ~candidates;
            best_c
          end
          else active_c
        end
  in
  (match t.obs with
  | None -> ()
  | Some o -> M.set o.o_active_score (score config decided));
  decided.fingerprint

let switches t = t.switches
let returns t = t.returns
