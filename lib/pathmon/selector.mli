(** The adaptive path-selection engine: scores each candidate path by
    blending its static policy rank (the deterministic latency the
    {!Scion_endhost.Pan} policy sorted by) with the live {!Estimator}
    state, and decides — with hysteresis — whether the active path should
    be kept or softly abandoned.

    Soft failover is the gap left by hard-down handling: a path under a
    maintenance latency window or a loss burst still {e delivers}, so no
    SCMP error fires and no failover triggers, yet the paper's Section 5
    path-quality data (and the SCIONlab dynamics studies) show such
    degradation is the common case. The selector moves traffic off a
    degraded path once its blended score exceeds the best alternative's by
    the hysteresis margin for [hold_ticks] consecutive decisions, and moves
    it back the same way once the path recovers — both transitions damped
    so jitter never causes flapping.

    Decisions are pure in the inputs (no clock, no randomness): a seeded
    simulation replays its switch schedule exactly. *)

type config = {
  loss_penalty_ms : float;
      (** Score penalty at 100% loss; scales linearly with the loss rate. *)
  dev_weight : float;
      (** Weight of the RTT mean deviation in the score (RTO-style). *)
  switch_margin : float;
      (** Relative score advantage a challenger needs before a switch is
          even considered (e.g. [0.1] = 10% better). *)
  hold_ticks : int;
      (** Consecutive decisions the advantage must persist ([>= 1]). *)
  min_probes : int;
      (** Below this many probe outcomes an estimator is not trusted and
          the static latency is used instead. *)
  bandwidth_aware : bool;
      (** When set, the score also penalises the estimator's bandwidth
          signal (path utilisation and queueing delay). Off by default:
          scoring is byte-identical to the pre-bandwidth selector unless a
          consumer opts in. *)
  bw_penalty_ms : float;
      (** Score penalty at 100% utilisation (scales linearly); the
          smoothed queueing delay is added as-is. Only read when
          [bandwidth_aware]. *)
}

val default_config : config
(** 250 ms loss penalty, deviation weight 2.0, 10% margin, 2-tick hold,
    3-probe warmup. *)

val make_config :
  ?loss_penalty_ms:float ->
  ?dev_weight:float ->
  ?switch_margin:float ->
  ?hold_ticks:int ->
  ?min_probes:int ->
  ?bandwidth_aware:bool ->
  ?bw_penalty_ms:float ->
  unit ->
  config
(** {!default_config} with overrides; raises [Invalid_argument] on
    negative weights/margins/penalties or non-positive [hold_ticks]. *)

type candidate = {
  fingerprint : string;  (** {!Scion_controlplane.Combinator.fullpath} id. *)
  static_ms : float;  (** The policy's deterministic RTT estimate. *)
  estimator : Estimator.t option;  (** Live state, when monitored. *)
}

val score : config -> candidate -> float
(** The blended score (lower is better): the estimator's EWMA RTT (static
    RTT until [min_probes] outcomes) plus [dev_weight] times the RTT
    deviation plus [loss_penalty_ms] times the windowed loss rate; with
    [bandwidth_aware], plus [bw_penalty_ms] times the smoothed path
    utilisation plus the smoothed queueing delay. *)

type t

val create :
  ?metrics:Telemetry.Metrics.registry ->
  ?labels:Telemetry.Metrics.labels ->
  ?config:config ->
  unit ->
  t
(** With [?metrics], the selector counts [pathmon.selector.switches] and
    [pathmon.selector.returns] and gauges [pathmon.selector.active_score]
    under [?labels]. *)

val choose : t -> candidates:candidate list -> active:string -> string
(** [choose t ~candidates ~active] is the fingerprint the connection
    should use next. Returns [active] unless a challenger has beaten it by
    [switch_margin] for [hold_ticks] consecutive calls (or [active] is no
    longer a candidate, which switches immediately — that is the hard
    failover case arriving through the soft path). The hysteresis is
    asymmetric: a challenger that is the statically-preferred candidate
    needs only a sustained advantage, not the full margin — primary-path
    affinity, so recovery always leads back even when the preferred
    path's static edge is smaller than the margin. Ties break towards the
    smaller static latency, then the smaller fingerprint, so the decision
    is deterministic. Raises [Invalid_argument] on an empty candidate
    list. *)

val switches : t -> int
(** Soft switches decided so far (including returns). *)

val returns : t -> int
(** The subset of switches that moved back onto the statically-preferred
    candidate — the "recovered" direction of the hysteresis loop. *)
