(** Simulated-clock SCMP-echo probing loop over a set of watched paths.

    The prober owns no network knowledge: the creator injects a [probe]
    callback (in this repository, an SCMP echo walked over the simulated
    fabric via [Sciera.Network.scmp_probe]) and the prober supplies the
    schedule — a periodic tick on a {!Netsim.Engine} timer that probes
    every watched path whose due time has arrived and feeds the outcome to
    that path's {!Estimator}.

    Pacing follows the {!Scion_util.Backoff} discipline: a healthy path is
    probed every [interval_ms] (jittered so concurrent probers
    de-synchronise), while a path with consecutive losses backs off
    geometrically up to the policy cap, so dead paths stop burning probe
    budget. All jitter draws come from the prober's {b own} [rng] — derive
    it with [Rng.of_label seed "pathmon.probe"] or similar — so attaching
    a prober to a running simulation never perturbs workload draws
    (pinned byte-for-byte by [test_golden]). *)

type t

(* scion-lint: rng-stream pathmon.probe -- the prober's private stream; isolation is pinned by test_golden *)
val create :
  ?metrics:Telemetry.Metrics.registry ->
  ?labels:Telemetry.Metrics.labels ->
  ?interval_ms:float ->
  ?jitter:float ->
  ?backoff:Scion_util.Backoff.policy ->
  rng:Scion_util.Rng.t ->
  probe:(fingerprint:string -> [ `Rtt of float | `Lost ]) ->
  unit ->
  t
(** [interval_ms] (default [50.]) is the healthy-path probe period;
    [jitter] (default [0.1], in [\[0, 1\]]) scales each period uniformly in
    [\[1 - jitter, 1 + jitter\]]. [backoff] (default
    [Backoff.make ~base_ms:interval_ms ~cap_ms:(16 *. interval_ms) ()])
    paces paths with consecutive losses. With [?metrics], the prober
    counts [pathmon.prober.probes] and [pathmon.prober.ticks] under
    [?labels]. Raises [Invalid_argument] on a non-positive interval or
    out-of-range jitter. *)

val watch : t -> fingerprint:string -> estimator:Estimator.t -> unit
(** Add a path to the probe rotation (first probe on the next tick).
    Re-watching an already-watched fingerprint swaps in the new estimator
    and resets its pacing. *)

val unwatch : t -> fingerprint:string -> unit
(** Remove a path from the rotation; unknown fingerprints are ignored. *)

val watched : t -> string list
(** Watched fingerprints in ascending order. *)

val estimator : t -> fingerprint:string -> Estimator.t option

val tick : t -> now_s:float -> int
(** Probe every watched path due at or before [now_s] (simulated seconds)
    and reschedule each; returns how many paths were probed. Exposed so
    tests and benchmarks can drive the loop without an engine. *)

val probe_all : t -> now_s:float -> int
(** Force-probe every watched path regardless of due times (and reset
    their pacing from the outcomes) — the warm-up used by
    [bin/showpaths] before rendering quality columns. *)

val attach : t -> engine:Netsim.Engine.t -> until_s:float -> unit
(** Schedule a self-rescheduling tick every (jittered) [interval_ms] on
    [engine], starting one interval from [Netsim.Engine.now engine] and
    stopping once the next tick would land after [until_s]. Without the
    bound the engine's queue would never drain. *)

val ticks : t -> int
(** Ticks executed so far (via {!tick} or the attached timer). *)

val probes_sent : t -> int
(** Total probes issued across all watched paths. *)
