(** Per-path quality estimator: EWMA round-trip time with mean-deviation
    tracking (RFC 6298-style smoothing) plus a windowed loss rate over the
    last [loss_window] probe outcomes.

    Estimators are fed by a {!Prober} (or any other probe source) and read
    by the {!Selector} and by operator tooling ([bin/showpaths]). They hold
    no clock and draw no randomness: every input is an explicit probe
    outcome, so a seeded probing schedule replays to byte-identical
    estimator state — the property the [pathmon] golden figure pins.

    With [?metrics], each estimator exports its live state as [pathmon.*]
    series ([pathmon.rtt_ewma_ms], [pathmon.rtt_deviation_ms],
    [pathmon.loss_rate] gauges and the [pathmon.probes{outcome}] counters),
    labelled by whatever [?labels] the creator scopes it with — snapshots
    come out in the registry's canonical sorted order, byte-stable across
    runs. *)

type config = {
  rtt_alpha : float;  (** EWMA gain for the smoothed RTT, in (0, 1]. *)
  dev_beta : float;  (** Gain for the mean absolute deviation, in (0, 1]. *)
  loss_window : int;  (** Probe outcomes kept for the loss rate ([>= 1]). *)
}

val default_config : config
(** alpha 1/4, beta 1/8 (the TCP SRTT constants), 16-probe loss window. *)

val make_config :
  ?rtt_alpha:float -> ?dev_beta:float -> ?loss_window:int -> unit -> config
(** {!default_config} with overrides. Raises [Invalid_argument] on gains
    outside (0, 1] or a non-positive window. *)

type t

val create :
  ?metrics:Telemetry.Metrics.registry ->
  ?labels:Telemetry.Metrics.labels ->
  ?config:config ->
  unit ->
  t

val observe : t -> [ `Rtt of float | `Lost ] -> unit
(** Feed one probe outcome. [`Rtt ms] must be finite and non-negative
    ([Invalid_argument] otherwise); [`Lost] only moves the loss window. *)

val rtt_ewma_ms : t -> float option
(** Smoothed RTT; [None] until the first successful probe. *)

val rtt_deviation_ms : t -> float
(** Mean absolute deviation of the RTT samples around the EWMA ([0.] until
    two successful probes). *)

val loss_rate : t -> float
(** Lost fraction of the last [loss_window] probes ([0.] before any). *)

val probes : t -> int
(** Total outcomes observed (successes and losses). *)

val losses : t -> int
(** Total [`Lost] outcomes observed (not windowed). *)
