(** Per-path quality estimator: EWMA round-trip time with mean-deviation
    tracking (RFC 6298-style smoothing) plus a windowed loss rate over the
    last [loss_window] probe outcomes.

    Estimators are fed by a {!Prober} (or any other probe source) and read
    by the {!Selector} and by operator tooling ([bin/showpaths]). They hold
    no clock and draw no randomness: every input is an explicit probe
    outcome, so a seeded probing schedule replays to byte-identical
    estimator state — the property the [pathmon] golden figure pins.

    With [?metrics], each estimator exports its live state as [pathmon.*]
    series ([pathmon.rtt_ewma_ms], [pathmon.rtt_deviation_ms],
    [pathmon.loss_rate] gauges and the [pathmon.probes{outcome}] counters),
    labelled by whatever [?labels] the creator scopes it with — snapshots
    come out in the registry's canonical sorted order, byte-stable across
    runs. *)

type config = {
  rtt_alpha : float;  (** EWMA gain for the smoothed RTT, in (0, 1]. *)
  dev_beta : float;  (** Gain for the mean absolute deviation, in (0, 1]. *)
  loss_window : int;  (** Probe outcomes kept for the loss rate ([>= 1]). *)
}

val default_config : config
(** alpha 1/4, beta 1/8 (the TCP SRTT constants), 16-probe loss window. *)

val make_config :
  ?rtt_alpha:float -> ?dev_beta:float -> ?loss_window:int -> unit -> config
(** {!default_config} with overrides. Raises [Invalid_argument] on gains
    outside (0, 1] or a non-positive window. *)

type t

val create :
  ?metrics:Telemetry.Metrics.registry ->
  ?labels:Telemetry.Metrics.labels ->
  ?config:config ->
  unit ->
  t

val observe : t -> [ `Rtt of float | `Lost ] -> unit
(** Feed one probe outcome. [`Rtt ms] must be finite and non-negative
    ([Invalid_argument] otherwise); [`Lost] only moves the loss window. *)

val rtt_ewma_ms : t -> float option
(** Smoothed RTT; [None] until the first successful probe. *)

val rtt_deviation_ms : t -> float
(** Mean absolute deviation of the RTT samples around the EWMA ([0.] until
    two successful probes). *)

val loss_rate : t -> float
(** Lost fraction of the last [loss_window] probes ([0.] before any). *)

val observe_bandwidth : t -> utilisation:float -> queue_delay_ms:float -> unit
(** Feed one bandwidth signal sample — typically the worst per-hop
    {!Netsim.Net.utilisation} / {!Netsim.Net.queueing_delay_ms} along the
    monitored path. Both are EWMA-smoothed with [rtt_alpha]; with
    [?metrics] the smoothed values export as the [pathmon.utilisation] and
    [pathmon.queue_delay_ms] gauges (created on the first sample, so
    estimators never fed a signal keep their historic snapshot). Raises
    [Invalid_argument] on a utilisation outside [\[0, 1\]] or a
    NaN/negative/infinite delay. *)

val utilisation : t -> float
(** Smoothed path utilisation in [\[0, 1\]]; [0.] before any bandwidth
    sample. *)

val queue_delay_ms : t -> float
(** Smoothed path queueing delay; [0.] before any bandwidth sample. *)

val bandwidth_samples : t -> int
(** Bandwidth signal samples observed so far. *)

val probes : t -> int
(** Total outcomes observed (successes and losses). *)

val losses : t -> int
(** Total [`Lost] outcomes observed (not windowed). *)
