module M = Telemetry.Metrics
module Rng = Scion_util.Rng
module Backoff = Scion_util.Backoff
module Table = Scion_util.Table

type target = {
  estimator : Estimator.t;
  mutable consecutive_losses : int;
  mutable due_s : float;  (** Next probe time; 0. = due immediately. *)
}

type obs = { o_probes : M.counter; o_ticks : M.counter }

type t = {
  interval_ms : float;
  jitter : float;
  backoff : Backoff.policy;
  rng : Rng.t;
  probe : fingerprint:string -> [ `Rtt of float | `Lost ];
  targets : (string, target) Hashtbl.t;
  mutable tick_count : int;
  mutable probe_count : int;
  obs : obs option;
}

let create ?metrics ?(labels = []) ?(interval_ms = 50.0) ?(jitter = 0.1) ?backoff ~rng ~probe () =
  if Float.is_nan interval_ms || interval_ms <= 0.0 then
    invalid_arg (Printf.sprintf "Prober.create: interval_ms must be > 0 (got %g)" interval_ms);
  if Float.is_nan jitter || jitter < 0.0 || jitter > 1.0 then
    invalid_arg (Printf.sprintf "Prober.create: jitter must be in [0, 1] (got %g)" jitter);
  let backoff =
    match backoff with
    | Some p -> p
    | None ->
        Backoff.make ~base_ms:interval_ms ~multiplier:2.0 ~cap_ms:(16.0 *. interval_ms)
          ~jitter ~max_attempts:max_int ()
  in
  let obs =
    Option.map
      (fun registry ->
        {
          o_probes = M.counter registry ~labels "pathmon.prober.probes";
          o_ticks = M.counter registry ~labels "pathmon.prober.ticks";
        })
      metrics
  in
  {
    interval_ms;
    jitter;
    backoff;
    rng;
    probe;
    targets = Hashtbl.create 16;
    tick_count = 0;
    probe_count = 0;
    obs;
  }

let watch t ~fingerprint ~estimator =
  Hashtbl.replace t.targets fingerprint { estimator; consecutive_losses = 0; due_s = 0.0 }

let unwatch t ~fingerprint = Hashtbl.remove t.targets fingerprint
let watched t = Table.sorted_keys t.targets

let estimator t ~fingerprint =
  Option.map (fun tgt -> tgt.estimator) (Hashtbl.find_opt t.targets fingerprint)

(* One jittered healthy-path interval, in simulated seconds. *)
let healthy_gap_s t =
  let factor =
    if t.jitter > 0.0 then 1.0 -. t.jitter +. Rng.float t.rng (2.0 *. t.jitter) else 1.0
  in
  t.interval_ms *. factor /. 1000.0

let probe_target t fingerprint tgt ~now_s =
  let outcome = t.probe ~fingerprint in
  Estimator.observe tgt.estimator outcome;
  t.probe_count <- t.probe_count + 1;
  (match t.obs with None -> () | Some o -> M.inc o.o_probes);
  (match outcome with
  | `Rtt _ -> tgt.consecutive_losses <- 0
  | `Lost -> tgt.consecutive_losses <- tgt.consecutive_losses + 1);
  let gap_s =
    if tgt.consecutive_losses = 0 then healthy_gap_s t
    else
      (* Lossy path: geometric backoff paced by the policy, never faster
         than the healthy cadence. *)
      let d = Backoff.delay_ms t.backoff ~rng:t.rng ~attempt:tgt.consecutive_losses /. 1000.0 in
      Float.max d (t.interval_ms /. 1000.0)
  in
  tgt.due_s <- now_s +. gap_s

let tick t ~now_s =
  t.tick_count <- t.tick_count + 1;
  (match t.obs with None -> () | Some o -> M.inc o.o_ticks);
  Table.fold_sorted
    (fun fingerprint tgt probed ->
      if tgt.due_s <= now_s then begin
        probe_target t fingerprint tgt ~now_s;
        probed + 1
      end
      else probed)
    t.targets 0

let probe_all t ~now_s =
  Table.fold_sorted
    (fun fingerprint tgt probed ->
      probe_target t fingerprint tgt ~now_s;
      probed + 1)
    t.targets 0

let attach t ~engine ~until_s =
  let module Engine = Netsim.Engine in
  let rec arm () =
    let next = Engine.now engine +. healthy_gap_s t in
    if next <= until_s then
      Engine.schedule_at engine ~time:next (fun () ->
          ignore (tick t ~now_s:(Engine.now engine) : int);
          arm ())
  in
  arm ()

let ticks t = t.tick_count
let probes_sent t = t.probe_count
