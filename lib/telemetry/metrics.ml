(* Deterministic metrics registry. All state is plain mutable OCaml; the
   only iteration over the backing table goes through
   Scion_util.Table.fold_sorted, so snapshots come out in ascending
   (name, labels) order no matter what the hash seed or insertion history
   was — the property the byte-identical-snapshot guarantee rests on. *)

module Table = Scion_util.Table
module Stats = Scion_util.Stats

type labels = (string * string) list

let normalize_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then invalid_arg (Printf.sprintf "Metrics: duplicate label key %S" a)
        else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

type counter = { mutable count : int }
type gauge = { mutable gauge_value : float }

type histogram = {
  upper : float array;  (* strictly increasing bucket upper bounds *)
  bucket_counts : int array;
  mutable overflow : int;
  mutable h_count : int;
  mutable h_sum : float;
}

type summary = {
  mutable samples : float array;
  mutable n : int;
  mutable s_sum : float;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram
  | M_summary of summary

let kind_of = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"
  | M_summary _ -> "summary"

type registry = { table : (string * labels, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }
let size t = Hashtbl.length t.table

let register t ~name ~labels ~make ~cast =
  if String.length name = 0 then invalid_arg "Metrics: empty metric name";
  let key = (name, normalize_labels labels) in
  match Hashtbl.find_opt t.table key with
  | Some m -> (
      match cast m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a %s" name (kind_of m)))
  | None ->
      let m, v = make () in
      Hashtbl.replace t.table key m;
      v

let counter t ?(labels = []) name =
  register t ~name ~labels
    ~make:(fun () ->
      let c = { count = 0 } in
      (M_counter c, c))
    ~cast:(function M_counter c -> Some c | M_gauge _ | M_histogram _ | M_summary _ -> None)

let inc c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  c.count <- c.count + n

let counter_value c = c.count

let gauge t ?(labels = []) name =
  register t ~name ~labels
    ~make:(fun () ->
      let g = { gauge_value = 0.0 } in
      (M_gauge g, g))
    ~cast:(function M_gauge g -> Some g | M_counter _ | M_histogram _ | M_summary _ -> None)

let set g v = g.gauge_value <- v
let gauge_value g = g.gauge_value

let histogram t ?(labels = []) ~buckets name =
  (match buckets with [] -> invalid_arg "Metrics.histogram: no buckets" | _ :: _ -> ());
  let rec increasing = function
    | a :: (b :: _ as rest) ->
        if Float.compare a b >= 0 then
          invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
        else increasing rest
    | [ _ ] | [] -> ()
  in
  increasing buckets;
  register t ~name ~labels
    ~make:(fun () ->
      let h =
        {
          upper = Array.of_list buckets;
          bucket_counts = Array.make (List.length buckets) 0;
          overflow = 0;
          h_count = 0;
          h_sum = 0.0;
        }
      in
      (M_histogram h, h))
    ~cast:(function M_histogram h -> Some h | M_counter _ | M_gauge _ | M_summary _ -> None)

let observe h v =
  let n = Array.length h.upper in
  let rec place i =
    if i >= n then h.overflow <- h.overflow + 1
    else if Float.compare v h.upper.(i) <= 0 then h.bucket_counts.(i) <- h.bucket_counts.(i) + 1
    else place (i + 1)
  in
  place 0;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

let summary t ?(labels = []) name =
  register t ~name ~labels
    ~make:(fun () ->
      let s = { samples = Array.make 16 0.0; n = 0; s_sum = 0.0 } in
      (M_summary s, s))
    ~cast:(function M_summary s -> Some s | M_counter _ | M_gauge _ | M_histogram _ -> None)

let record s v =
  if s.n = Array.length s.samples then begin
    let bigger = Array.make (2 * s.n) 0.0 in
    Array.blit s.samples 0 bigger 0 s.n;
    s.samples <- bigger
  end;
  s.samples.(s.n) <- v;
  s.n <- s.n + 1;
  s.s_sum <- s.s_sum +. v

let summary_count s = s.n
let summary_sum s = s.s_sum

let quantile s p =
  if s.n = 0 then None else Some (Stats.percentile (Array.sub s.samples 0 s.n) p)

(* --- Snapshots --- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { upper : float array; counts : int array; overflow : int; count : int; sum : float }
  | Summary of { count : int; sum : float; quantiles : (float * float) array }

type sample = { sample_name : string; sample_labels : labels; value : value }

(* The quantiles every summary exports; aligned with the percentile
   summaries the experiment harness prints. *)
let export_quantiles = [| 50.0; 90.0; 99.0 |]

let read = function
  | M_counter c -> Counter c.count
  | M_gauge g -> Gauge g.gauge_value
  | M_histogram h ->
      Histogram
        {
          upper = Array.copy h.upper;
          counts = Array.copy h.bucket_counts;
          overflow = h.overflow;
          count = h.h_count;
          sum = h.h_sum;
        }
  | M_summary s ->
      let quantiles =
        if s.n = 0 then [||]
        else
          let data = Array.sub s.samples 0 s.n in
          Array.map (fun p -> (p, Stats.percentile data p)) export_quantiles
      in
      Summary { count = s.n; sum = s.s_sum; quantiles }

let compare_label_lists a b =
  Stdlib.compare (a : (string * string) list) b

let compare_keys (na, la) (nb, lb) =
  let c = String.compare na nb in
  if c <> 0 then c else compare_label_lists la lb

let snapshot t =
  List.rev
    (Table.fold_sorted ~cmp:compare_keys
       (fun (name, labels) m acc -> { sample_name = name; sample_labels = labels; value = read m } :: acc)
       t.table [])

let find t ?(labels = []) name =
  Option.map read (Hashtbl.find_opt t.table (name, normalize_labels labels))
