(* Minimal JSON support for the telemetry exporters: canonical writers
   (stable float representation, escaped strings) and a recursive-descent
   parser for the subset the exporters emit. Having our own round-trip
   keeps the snapshot format testable without external dependencies. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal representation that round-trips through
   [float_of_string]; deterministic for a given float, so snapshots of
   identical runs are byte-identical. *)
let float_repr f =
  let exact p =
    let s = Printf.sprintf "%.*g" p f in
    if Float.equal (float_of_string s) f then Some s else None
  in
  match exact 12 with
  | Some s -> s
  | None -> ( match exact 15 with Some s -> s | None -> Printf.sprintf "%.17g" f)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string * int

type cursor = { src : string; mutable pos : int }

let error cur msg = raise (Malformed (msg, cur.pos))
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | Some _ | None -> ()

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> error cur (Printf.sprintf "expected %c, found %c" c got)
  | None -> error cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some '"' -> advance cur; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance cur; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance cur; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.src then error cur "truncated \\u escape";
            let hex = String.sub cur.src cur.pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> error cur (Printf.sprintf "bad \\u escape %S" hex)
            in
            cur.pos <- cur.pos + 4;
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else error cur "non-ASCII \\u escape unsupported";
            go ()
        | Some c -> error cur (Printf.sprintf "bad escape \\%c" c)
        | None -> error cur "unterminated escape")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek cur with
    | Some c when number_char c ->
        advance cur;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let s = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error cur (Printf.sprintf "bad number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws cur;
          let key = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              members ((key, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((key, v) :: acc)
          | Some c -> error cur (Printf.sprintf "expected , or } in object, found %c" c)
          | None -> error cur "unterminated object"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              elements (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | Some c -> error cur (Printf.sprintf "expected , or ] in array, found %c" c)
          | None -> error cur "unterminated array"
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('0' .. '9' | '-') -> Num (parse_number cur)
  | Some c -> error cur (Printf.sprintf "unexpected character %c" c)
  | None -> error cur "empty input"

let parse src =
  let cur = { src; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos = String.length src then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
  | exception Malformed (msg, pos) -> Error (Printf.sprintf "%s at offset %d" msg pos)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_num_opt = function Num f -> Some f | _ -> None
