(** Trace spans and structured events over the simulated clock.

    Callers pass [~now] explicitly (typically [Netsim.Engine.now]); the
    tracer never reads a wall clock. Each record gets a sequence number at
    creation, so ordering is total and deterministic even when many records
    share a simulated instant. [to_jsonl] renders one canonical JSON object
    per line, with fields in sorted key order — byte-stable across seeded
    runs. *)

type t

type value = Str of string | Int of int | Float of float | Bool of bool

type record = {
  seq : int;
  name : string;
  start_time : float;
  end_time : float option;  (** [None] for point events *)
  fields : (string * value) list;  (** sorted by key *)
}

val create : unit -> t
val count : t -> int
val clear : t -> unit

val event : t -> now:float -> ?fields:(string * value) list -> string -> unit
(** Record a point event at simulated time [now]. *)

(** {1 Spans} *)

type span

val span : t -> now:float -> string -> span
(** Open a span; nothing is recorded until {!finish}. *)

val finish : span -> now:float -> ?fields:(string * value) list -> unit -> unit
(** Close the span, recording start/end/duration. Raises [Invalid_argument]
    if the span was already finished. *)

val open_spans : t -> int

(** {1 Serialisation} *)

val to_jsonl : t -> string
(** One JSON object per line, chronological (sequence) order. *)

val records : t -> record list
(** Chronological order. *)
