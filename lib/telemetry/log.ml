(* Leveled, sink-redirectable logging plus the sanctioned report-output
   channel. This module is the one place in lib/ allowed to touch stdout /
   stderr directly (scion-lint's naked-printf rule exempts lib/telemetry/):
   everything else routes diagnostics through the level functions and
   experiment/report output through [out]. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | s -> Result.Error (Printf.sprintf "unknown log level %S" s)

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let threshold = ref Warn
let set_level l = threshold := l
let level () = !threshold
let enabled l = rank l >= rank !threshold

(* Diagnostics default to stderr so they interleave with, but do not
   corrupt, report output on stdout. *)
let diag_sink = ref (fun line -> prerr_string line)
let report_sink = ref (fun s -> print_string s)

let set_sink f = diag_sink := f
let set_report_sink f = report_sink := f

(* Table.print is report output too: route it through the report sink so
   [capture_report] (and any redirected sink) sees the table bodies the
   experiments emit, not just their Log.out lines. Scion_util cannot
   depend on telemetry, hence the indirection lives there and is pointed
   here once at link time. *)
let () = Scion_util.Table.set_printer (fun s -> !report_sink s)

let logf lvl fmt =
  Printf.ksprintf
    (fun msg -> if enabled lvl then !diag_sink (Printf.sprintf "[%s] %s\n" (level_to_string lvl) msg))
    fmt

let debug fmt = logf Debug fmt
let info fmt = logf Info fmt
let warn fmt = logf Warn fmt
let error fmt = logf Error fmt

let out fmt = Printf.ksprintf (fun s -> !report_sink s) fmt

let capture_report f =
  let buf = Buffer.create 256 in
  let saved = !report_sink in
  report_sink := Buffer.add_string buf;
  Fun.protect
    ~finally:(fun () -> report_sink := saved)
    (fun () ->
      let v = f () in
      (Buffer.contents buf, v))

let capture_diagnostics f =
  let buf = Buffer.create 256 in
  let saved = !diag_sink in
  diag_sink := Buffer.add_string buf;
  Fun.protect
    ~finally:(fun () -> diag_sink := saved)
    (fun () ->
      let v = f () in
      (Buffer.contents buf, v))
