(* Snapshot exporters: a canonical JSONL encoding (one header line plus one
   metric object per line, everything in sorted order with round-tripping
   float representation, so equal runs serialise byte-identically), a
   parser for it, and an aligned-text renderer for interactive tools. *)

module Table = Scion_util.Table

let schema = "sciera.telemetry/1"

let labels_to_json labels =
  let fields =
    List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v)) labels
  in
  "{" ^ String.concat "," fields ^ "}"

let float_arr_to_json a =
  "[" ^ String.concat "," (Array.to_list (Array.map Json.float_repr a)) ^ "]"

let int_arr_to_json a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

let quantile_key p =
  (* 50.0 -> "p50", 99.9 -> "p99.9": trim a trailing ".0" for whole
     percentiles so keys stay the conventional p50/p90/p99. *)
  let s = Json.float_repr p in
  "p" ^ s

let sample_to_json (s : Metrics.sample) =
  let head =
    Printf.sprintf "{\"name\":\"%s\",\"labels\":%s" (Json.escape s.Metrics.sample_name)
      (labels_to_json s.Metrics.sample_labels)
  in
  let body =
    match s.Metrics.value with
    | Metrics.Counter n -> Printf.sprintf ",\"type\":\"counter\",\"value\":%d" n
    | Metrics.Gauge v -> Printf.sprintf ",\"type\":\"gauge\",\"value\":%s" (Json.float_repr v)
    | Metrics.Histogram { upper; counts; overflow; count; sum } ->
        Printf.sprintf ",\"type\":\"histogram\",\"le\":%s,\"counts\":%s,\"overflow\":%d,\"count\":%d,\"sum\":%s"
          (float_arr_to_json upper) (int_arr_to_json counts) overflow count (Json.float_repr sum)
    | Metrics.Summary { count; sum; quantiles } ->
        let qs =
          Array.to_list
            (Array.map
               (fun (p, v) -> Printf.sprintf "\"%s\":%s" (quantile_key p) (Json.float_repr v))
               quantiles)
        in
        Printf.sprintf ",\"type\":\"summary\",\"count\":%d,\"sum\":%s,\"quantiles\":{%s}" count
          (Json.float_repr sum) (String.concat "," qs)
  in
  head ^ body ^ "}"

let samples_to_json samples =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"schema\":\"%s\"}\n" schema);
  List.iter
    (fun s ->
      Buffer.add_string buf (sample_to_json s);
      Buffer.add_char buf '\n')
    samples;
  Buffer.contents buf

let to_json registry = samples_to_json (Metrics.snapshot registry)

(* --- Parsing back --- *)

let ( let* ) r f = Result.bind r f

let require what = function Some v -> Ok v | None -> Error (Printf.sprintf "missing %s" what)

let labels_of_json = function
  | Some (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, Json.Str v) :: rest ->
            if List.mem_assoc k acc then Error (Printf.sprintf "duplicate label key %S" k)
            else go ((k, v) :: acc) rest
        | (k, _) :: _ -> Error (Printf.sprintf "label %S is not a string" k)
      in
      go [] fields
  | Some _ -> Error "labels is not an object"
  | None -> Ok []

let num_field key v =
  let* n = require key (Option.bind (Json.member key v) Json.to_num_opt) in
  Ok n

let int_field key v =
  let* n = num_field key v in
  Ok (int_of_float n)

let num_array_field key v =
  match Json.member key v with
  | Some (Json.Arr items) ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Json.Num n :: rest -> go (n :: acc) rest
        | _ :: _ -> Error (Printf.sprintf "%s contains a non-number" key)
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "%s is not an array" key)
  | None -> Error (Printf.sprintf "missing %s" key)

let quantiles_of_json v =
  match Json.member "quantiles" v with
  | Some (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | (k, Json.Num q) :: rest ->
            if String.length k >= 2 && k.[0] = 'p' then
              let digits = String.sub k 1 (String.length k - 1) in
              (match float_of_string_opt digits with
              | Some p -> go ((p, q) :: acc) rest
              | None -> Error (Printf.sprintf "bad quantile key %S" k))
            else Error (Printf.sprintf "bad quantile key %S" k)
        | (k, _) :: _ -> Error (Printf.sprintf "quantile %S is not a number" k)
      in
      go [] fields
  | Some _ -> Error "quantiles is not an object"
  | None -> Error "missing quantiles"

let sample_of_json v =
  let* name = require "name" (Option.bind (Json.member "name" v) Json.to_string_opt) in
  let* labels = labels_of_json (Json.member "labels" v) in
  let* kind = require "type" (Option.bind (Json.member "type" v) Json.to_string_opt) in
  let* value =
    match kind with
    | "counter" ->
        let* n = int_field "value" v in
        Ok (Metrics.Counter n)
    | "gauge" ->
        let* g = num_field "value" v in
        Ok (Metrics.Gauge g)
    | "histogram" ->
        let* upper = num_array_field "le" v in
        let* counts_f = num_array_field "counts" v in
        let* overflow = int_field "overflow" v in
        let* count = int_field "count" v in
        let* sum = num_field "sum" v in
        Ok
          (Metrics.Histogram
             { upper; counts = Array.map int_of_float counts_f; overflow; count; sum })
    | "summary" ->
        let* count = int_field "count" v in
        let* sum = num_field "sum" v in
        let* quantiles = quantiles_of_json v in
        Ok (Metrics.Summary { count; sum; quantiles })
    | other -> Error (Printf.sprintf "unknown metric type %S" other)
  in
  Ok { Metrics.sample_name = name; sample_labels = labels; value }

let sample_key (s : Metrics.sample) = (s.Metrics.sample_name, s.Metrics.sample_labels)

let of_json text =
  let lines =
    List.filter (fun l -> String.length (String.trim l) > 0) (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Error "empty snapshot"
  | header :: rest ->
      let* hv = Json.parse header in
      let* s = require "schema" (Option.bind (Json.member "schema" hv) Json.to_string_opt) in
      if not (String.equal s schema) then Error (Printf.sprintf "unsupported schema %S" s)
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest ->
              let* v = Json.parse line in
              let* sample = sample_of_json v in
              go (sample :: acc) rest
        in
        let* samples = go [] rest in
        (* A series may appear once: duplicates mean a corrupted snapshot
           (or a hand-edited one) and would make diffs ambiguous. *)
        let rec first_dup seen = function
          | [] -> None
          | s :: rest ->
              let key = sample_key s in
              if List.mem key seen then Some s else first_dup (key :: seen) rest
        in
        (match first_dup [] samples with
        | Some s ->
            Error
              (Printf.sprintf "duplicate series %S (%s)" s.Metrics.sample_name
                 (String.concat ","
                    (List.map (fun (k, v) -> k ^ "=" ^ v) s.Metrics.sample_labels)))
        | None -> Ok samples)

(* --- Human-readable rendering --- *)

let labels_to_text = function
  | [] -> "-"
  | labels -> String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let value_summary = function
  | Metrics.Counter n -> ("counter", string_of_int n)
  | Metrics.Gauge v -> ("gauge", Json.float_repr v)
  | Metrics.Histogram { count; overflow; sum; _ } ->
      ("histogram", Printf.sprintf "count=%d overflow=%d sum=%s" count overflow (Json.float_repr sum))
  | Metrics.Summary { count; sum; quantiles } ->
      let qs =
        Array.to_list
          (Array.map (fun (p, v) -> Printf.sprintf "%s=%s" (quantile_key p) (Json.float_repr v)) quantiles)
      in
      ("summary", Printf.sprintf "count=%d sum=%s %s" count (Json.float_repr sum) (String.concat " " qs))

let render registry =
  let rows =
    List.map
      (fun (s : Metrics.sample) ->
        let kind, v = value_summary s.Metrics.value in
        [ s.Metrics.sample_name; labels_to_text s.Metrics.sample_labels; kind; v ])
      (Metrics.snapshot registry)
  in
  Table.render ~header:[ "metric"; "labels"; "type"; "value" ] ~rows

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* --- Snapshot diffing (the scion-top --diff / --watch view) --- *)

type change =
  | Added of Metrics.sample
  | Removed of Metrics.sample
  | Changed of Metrics.sample * Metrics.sample

let diff_samples before after =
  let cmp a b = compare (sample_key a) (sample_key b) in
  let before = List.sort cmp before and after = List.sort cmp after in
  let rec go acc before after =
    match (before, after) with
    | [], [] -> List.rev acc
    | [], b :: rb -> go (Added b :: acc) [] rb
    | a :: ra, [] -> go (Removed a :: acc) ra []
    | a :: ra, b :: rb ->
        let c = compare (sample_key a) (sample_key b) in
        if c < 0 then go (Removed a :: acc) ra after
        else if c > 0 then go (Added b :: acc) before rb
        else if compare a.Metrics.value b.Metrics.value = 0 then go acc ra rb
        else go (Changed (a, b) :: acc) ra rb
  in
  go [] before after

let signed_int n = if n >= 0 then Printf.sprintf "+%d" n else string_of_int n

let signed_float v =
  if v >= 0.0 then "+" ^ Json.float_repr v else Json.float_repr v

let value_delta before after =
  match (before, after) with
  | Metrics.Counter a, Metrics.Counter b -> signed_int (b - a)
  | Metrics.Gauge a, Metrics.Gauge b -> signed_float (b -. a)
  | Metrics.Histogram h1, Metrics.Histogram h2 ->
      Printf.sprintf "count%s sum%s" (signed_int (h2.count - h1.count))
        (signed_float (h2.sum -. h1.sum))
  | Metrics.Summary s1, Metrics.Summary s2 ->
      Printf.sprintf "count%s sum%s" (signed_int (s2.count - s1.count))
        (signed_float (s2.sum -. s1.sum))
  | _, _ -> "kind changed"

let change_row = function
  | Added s ->
      let kind, v = value_summary s.Metrics.value in
      [ "added"; s.Metrics.sample_name; labels_to_text s.Metrics.sample_labels; kind; "-"; v; "-" ]
  | Removed s ->
      let kind, v = value_summary s.Metrics.value in
      [ "removed"; s.Metrics.sample_name; labels_to_text s.Metrics.sample_labels; kind; v; "-"; "-" ]
  | Changed (a, b) ->
      let kind, va = value_summary a.Metrics.value in
      let _, vb = value_summary b.Metrics.value in
      [
        "changed"; a.Metrics.sample_name; labels_to_text a.Metrics.sample_labels; kind; va; vb;
        value_delta a.Metrics.value b.Metrics.value;
      ]

let render_diff changes =
  match changes with
  | [] -> "no changes\n"
  | changes ->
      Table.render
        ~header:[ "change"; "metric"; "labels"; "type"; "before"; "after"; "delta" ]
        ~rows:(List.map change_row changes)
