(* Trace spans and structured events, timestamped by the caller (simulated
   clock), serialised as JSONL. Records carry a monotonically increasing
   sequence number assigned at creation so the chronological order of a run
   is reconstructible even when many records share one simulated instant. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type record = {
  seq : int;
  name : string;
  start_time : float;
  end_time : float option;  (* None for point events *)
  fields : (string * value) list;
}

type t = {
  mutable records : record list;  (* newest first *)
  mutable next_seq : int;
  mutable open_spans : int;
}

type span = { tr : t; span_seq : int; span_name : string; started : float; mutable closed : bool }

let create () = { records = []; next_seq = 0; open_spans = 0 }

let count t = List.length t.records
let clear t =
  t.records <- [];
  t.next_seq <- 0;
  t.open_spans <- 0

let norm_fields fields =
  List.sort (fun (a, _) (b, _) -> String.compare a b) fields

let event t ~now ?(fields = []) name =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.records <-
    { seq; name; start_time = now; end_time = None; fields = norm_fields fields } :: t.records

let span t ~now name =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.open_spans <- t.open_spans + 1;
  { tr = t; span_seq = seq; span_name = name; started = now; closed = false }

let finish sp ~now ?(fields = []) () =
  if sp.closed then invalid_arg "Trace.finish: span already finished";
  sp.closed <- true;
  let t = sp.tr in
  t.open_spans <- t.open_spans - 1;
  t.records <-
    {
      seq = sp.span_seq;
      name = sp.span_name;
      start_time = sp.started;
      end_time = Some now;
      fields = norm_fields fields;
    }
    :: t.records

let open_spans t = t.open_spans

let value_to_json = function
  | Str s -> "\"" ^ Json.escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> Json.float_repr f
  | Bool b -> if b then "true" else "false"

let record_to_json r =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Printf.sprintf "{\"seq\":%d,\"name\":\"%s\",\"t\":%s" r.seq (Json.escape r.name) (Json.float_repr r.start_time));
  (match r.end_time with
  | None -> ()
  | Some te ->
      Buffer.add_string buf (Printf.sprintf ",\"end\":%s,\"dur\":%s" (Json.float_repr te) (Json.float_repr (te -. r.start_time))));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" (Json.escape k) (value_to_json v)))
    r.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf (record_to_json r);
      Buffer.add_char buf '\n')
    (List.rev t.records);
  Buffer.contents buf

let records t = List.rev t.records
