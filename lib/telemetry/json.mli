(** Minimal JSON reading and writing for the telemetry exporters.

    The writers produce canonical output (sorted keys are the caller's
    responsibility; floats use the shortest round-tripping representation)
    so that two identical runs serialise byte-identically. The parser
    accepts the subset of JSON the exporters emit and is used to round-trip
    snapshots in tests and tooling. *)

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON. *)

val float_repr : float -> string
(** Shortest decimal representation that parses back ([float_of_string])
    to exactly the same float. Deterministic per input. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. Only
    ASCII [\u] escapes are supported (all the exporters emit). *)

val member : string -> t -> t option
(** [member key v] is the field [key] of object [v], if any. *)

val to_string_opt : t -> string option
val to_num_opt : t -> float option
