(** Leveled structured-ish logging and the sanctioned report channel.

    [lib/] code must not print directly (scion-lint's [naked-printf] rule):
    diagnostics go through {!debug}/{!info}/{!warn}/{!error} (stderr by
    default, level-filtered, redirectable), and experiment/report output —
    the tables and figures the harness emits — goes through {!out} (stdout
    by default, redirectable, never filtered). Keeping the two streams
    separate means diagnostics can be enabled without corrupting checked-in
    report output. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> (level, string) result

val set_level : level -> unit
(** Default threshold is [Warn]. *)

val level : unit -> level
val enabled : level -> bool

val set_sink : (string -> unit) -> unit
(** Redirect diagnostic lines (each already newline-terminated). *)

val set_report_sink : (string -> unit) -> unit
(** Redirect report output (raw chunks, exactly as formatted). *)

val debug : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
val error : ('a, unit, string, unit) format4 -> 'a

val out : ('a, unit, string, unit) format4 -> 'a
(** Report output: the replacement for [Printf.printf] in [lib/]. *)

val capture_report : (unit -> 'a) -> string * 'a
(** Run [f] with report output captured into a buffer; restores the
    previous sink afterwards (also on exceptions). *)

val capture_diagnostics : (unit -> 'a) -> string * 'a
