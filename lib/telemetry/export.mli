(** Snapshot exporters.

    The JSON format is line-oriented: a header line
    [{"schema":"sciera.telemetry/1"}] followed by one canonical JSON object
    per metric, in the sorted order of {!Metrics.snapshot}. Identical
    registries serialise byte-identically, so experiment telemetry can be
    diffed and checked in. *)

val schema : string

val to_json : Metrics.registry -> string
(** Serialise a snapshot of the registry. *)

val samples_to_json : Metrics.sample list -> string
(** Serialise an explicit sample list (e.g. a filtered snapshot). *)

val of_json : string -> (Metrics.sample list, string) result
(** Parse a snapshot produced by {!to_json}; rejects unknown schemas. *)

val render : Metrics.registry -> string
(** Aligned plain-text table of every series — the [scion-top] view. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes (truncating) [contents] to [path]. *)

(** {1 Snapshot diffing}

    The [scion-top --diff] view: compare two parsed snapshots series by
    series — what changed between two days of a simulated deployment, or
    between a golden snapshot and a regenerated one. *)

type change =
  | Added of Metrics.sample  (** Series only present in the second snapshot. *)
  | Removed of Metrics.sample  (** Series only present in the first. *)
  | Changed of Metrics.sample * Metrics.sample  (** (before, after) values differ. *)

val diff_samples : Metrics.sample list -> Metrics.sample list -> change list
(** [diff_samples before after] joins the two sample lists on
    (name, labels) and reports every difference, in ascending series
    order. Unchanged series are omitted. *)

val render_diff : change list -> string
(** Aligned table of the changes (counter deltas rendered as [+n]);
    ["no changes\n"] when the list is empty. *)
