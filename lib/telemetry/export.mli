(** Snapshot exporters.

    The JSON format is line-oriented: a header line
    [{"schema":"sciera.telemetry/1"}] followed by one canonical JSON object
    per metric, in the sorted order of {!Metrics.snapshot}. Identical
    registries serialise byte-identically, so experiment telemetry can be
    diffed and checked in. *)

val schema : string

val to_json : Metrics.registry -> string
(** Serialise a snapshot of the registry. *)

val samples_to_json : Metrics.sample list -> string
(** Serialise an explicit sample list (e.g. a filtered snapshot). *)

val of_json : string -> (Metrics.sample list, string) result
(** Parse a snapshot produced by {!to_json}; rejects unknown schemas. *)

val render : Metrics.registry -> string
(** Aligned plain-text table of every series — the [scion-top] view. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes (truncating) [contents] to [path]. *)
