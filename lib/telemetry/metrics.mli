(** Deterministic, simulated-clock-friendly metrics registry.

    The registry holds labelled counters, gauges, fixed-bucket histograms
    and quantile summaries. Handles are cheap mutable cells; registering
    the same (name, labels) pair twice returns the same handle, so
    instrumentation sites do not need to coordinate. Snapshots iterate in
    ascending (name, sorted-labels) order — never in hash order — so a
    snapshot of a seeded simulation is byte-stable across runs, which is
    what lets experiments check in their telemetry output.

    Nothing here reads a clock: time-derived metrics take their values from
    the caller (simulated time from [Netsim.Engine.now]). *)

type registry

type labels = (string * string) list
(** Label pairs. Stored sorted by key; duplicate keys are rejected with
    [Invalid_argument]. *)

val create : unit -> registry
val size : registry -> int
(** Number of registered (name, labels) series. *)

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : registry -> ?labels:labels -> string -> counter
(** Get or create. Raises [Invalid_argument] if the series exists with a
    different metric kind, or on an empty name / duplicate label keys. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val counter_value : counter -> int

(** {1 Gauges} — last-written float values. *)

type gauge

val gauge : registry -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Fixed-bucket histograms} *)

type histogram

val histogram : registry -> ?labels:labels -> buckets:float list -> string -> histogram
(** [buckets] are upper bounds, strictly increasing and non-empty
    ([Invalid_argument] otherwise). An observation lands in the first
    bucket whose bound is >= the value, or in the overflow bucket. *)

val observe : histogram -> float -> unit

(** {1 Quantile summaries} — keep every sample, answer percentiles. *)

type summary

val summary : registry -> ?labels:labels -> string -> summary
val record : summary -> float -> unit
val summary_count : summary -> int
val summary_sum : summary -> float

val quantile : summary -> float -> float option
(** [quantile s p] is the [p]-th percentile ([0..100]) of everything
    recorded so far, computed exactly as {!Scion_util.Stats.percentile};
    [None] when nothing has been recorded. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      upper : float array;  (** bucket upper bounds *)
      counts : int array;  (** per-bucket observation counts *)
      overflow : int;
      count : int;
      sum : float;
    }
  | Summary of {
      count : int;
      sum : float;
      quantiles : (float * float) array;  (** (percentile, value); see {!export_quantiles} *)
    }

type sample = { sample_name : string; sample_labels : labels; value : value }

val export_quantiles : float array
(** The percentiles every summary exports: 50, 90, 99. *)

val snapshot : registry -> sample list
(** Point-in-time copy of every series, in ascending (name, labels) order.
    Deterministic for deterministic instrumentation. *)

val find : registry -> ?labels:labels -> string -> value option
(** Read one series without registering it. *)
