(* T-table AES-128 encryption: each round is 16 table lookups and xors over
   32-bit words (kept in OCaml's native int, masked). The tables combine
   SubBytes, ShiftRows and MixColumns; the last round uses the plain S-box. *)

let sbox =
  (* hex rows inlined by hand (not via Scion_util.Hex) so that this constant
     keeps the lint's hot-path reachability chain — Filter.check / the border
     router reach [encrypt_into] and therefore this binding — free of the
     allocating hex helpers *)
  let s = Bytes.create 256 in
  let hexrows =
    [|
      "637c777bf26b6fc53001672bfed7ab76"; "ca82c97dfa5947f0add4a2af9ca472c0";
      "b7fd9326363ff7cc34a5e5f171d83115"; "04c723c31896059a071280e2eb27b275";
      "09832c1a1b6e5aa0523bd6b329e32f84"; "53d100ed20fcb15b6acbbe394a4c58cf";
      "d0efaafb434d338545f9027f503c9fa8"; "51a3408f929d38f5bcb6da2110fff3d2";
      "cd0c13ec5f974417c4a77e3d645d1973"; "60814fdc222a908846eeb814de5e0bdb";
      "e0323a0a4906245cc2d3ac629195e479"; "e7c8376d8dd54ea96c56f4ea657aae08";
      "ba78252e1ca6b4c6e8dd741f4bbd8b8a"; "703eb5664803f60e613557b986c11d9e";
      "e1f8981169d98e949b1e87e9ce5528df"; "8ca1890dbfe6426841992d0fb054bb16";
    |]
  in
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> invalid_arg "Aes128.sbox"
  in
  Array.iteri
    (fun row hex ->
      for col = 0 to 15 do
        Bytes.set s ((row * 16) + col)
          (Char.chr ((nibble hex.[2 * col] lsl 4) lor nibble hex.[(2 * col) + 1]))
      done)
    hexrows;
  Bytes.to_string s

let sub b = Char.code sbox.[b]

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1B) land 0xFF else b2

let mask32 = 0xFFFFFFFF
let ror8 w = ((w lsr 8) lor (w lsl 24)) land mask32

(* Te0[x] = (2*S | S | S | 3*S) as a big-endian word; Te1..Te3 are byte
   rotations of Te0. *)
let te0 =
  Array.init 256 (fun x ->
      let s = sub x in
      let s2 = xtime s in
      let s3 = s2 lxor s in
      (s2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor s3)

let te1 = Array.map ror8 te0
let te2 = Array.map ror8 te1
let te3 = Array.map ror8 te2

type key = int array
(* 44 round-key words. *)

let expand_key k =
  if String.length k <> 16 then invalid_arg "Aes128.expand_key: key must be 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code k.[4 * i] lsl 24)
      lor (Char.code k.[(4 * i) + 1] lsl 16)
      lor (Char.code k.[(4 * i) + 2] lsl 8)
      lor Char.code k.[(4 * i) + 3]
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let t = w.(i - 1) in
    let t =
      if i mod 4 = 0 then begin
        let rotated = ((t lsl 8) lor (t lsr 24)) land mask32 in
        let subbed =
          (sub ((rotated lsr 24) land 0xFF) lsl 24)
          lor (sub ((rotated lsr 16) land 0xFF) lsl 16)
          lor (sub ((rotated lsr 8) land 0xFF) lsl 8)
          lor sub (rotated land 0xFF)
        in
        let v = subbed lxor (!rcon lsl 24) in
        rcon := xtime !rcon;
        v
      end
      else t
    in
    w.(i) <- w.(i - 4) lxor t land mask32;
    w.(i) <- w.(i) land mask32
  done;
  w

(* Allocation-free single-block encryption: reads 16 bytes of [src], writes
   16 bytes into [dst] (the two may be the same buffer). This is the border
   router's per-hop primitive — one AES call per hop-field MAC — so the word
   load/store helpers are spelled out rather than closed over. *)
let encrypt_into key ~(src : Bytes.t) ~(dst : Bytes.t) =
  if Bytes.length src < 16 then invalid_arg "Aes128.encrypt_into: src must hold 16 bytes";
  if Bytes.length dst < 16 then invalid_arg "Aes128.encrypt_into: dst must hold 16 bytes";
  let s0 =
    ref
      ((Char.code (Bytes.get src 0) lsl 24)
       lor (Char.code (Bytes.get src 1) lsl 16)
       lor (Char.code (Bytes.get src 2) lsl 8)
       lor Char.code (Bytes.get src 3)
      lxor key.(0))
  and s1 =
    ref
      ((Char.code (Bytes.get src 4) lsl 24)
       lor (Char.code (Bytes.get src 5) lsl 16)
       lor (Char.code (Bytes.get src 6) lsl 8)
       lor Char.code (Bytes.get src 7)
      lxor key.(1))
  and s2 =
    ref
      ((Char.code (Bytes.get src 8) lsl 24)
       lor (Char.code (Bytes.get src 9) lsl 16)
       lor (Char.code (Bytes.get src 10) lsl 8)
       lor Char.code (Bytes.get src 11)
      lxor key.(2))
  and s3 =
    ref
      ((Char.code (Bytes.get src 12) lsl 24)
       lor (Char.code (Bytes.get src 13) lsl 16)
       lor (Char.code (Bytes.get src 14) lsl 8)
       lor Char.code (Bytes.get src 15)
      lxor key.(3))
  in
  for round = 1 to 9 do
    let t0 =
      te0.((!s0 lsr 24) land 0xFF) lxor te1.((!s1 lsr 16) land 0xFF)
      lxor te2.((!s2 lsr 8) land 0xFF) lxor te3.(!s3 land 0xFF) lxor key.(4 * round)
    in
    let t1 =
      te0.((!s1 lsr 24) land 0xFF) lxor te1.((!s2 lsr 16) land 0xFF)
      lxor te2.((!s3 lsr 8) land 0xFF) lxor te3.(!s0 land 0xFF) lxor key.((4 * round) + 1)
    in
    let t2 =
      te0.((!s2 lsr 24) land 0xFF) lxor te1.((!s3 lsr 16) land 0xFF)
      lxor te2.((!s0 lsr 8) land 0xFF) lxor te3.(!s1 land 0xFF) lxor key.((4 * round) + 2)
    in
    let t3 =
      te0.((!s3 lsr 24) land 0xFF) lxor te1.((!s0 lsr 16) land 0xFF)
      lxor te2.((!s1 lsr 8) land 0xFF) lxor te3.(!s2 land 0xFF) lxor key.((4 * round) + 3)
    in
    s0 := t0;
    s1 := t1;
    s2 := t2;
    s3 := t3
  done;
  (* Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns. *)
  let o0 =
    (sub ((!s0 lsr 24) land 0xFF) lsl 24)
    lor (sub ((!s1 lsr 16) land 0xFF) lsl 16)
    lor (sub ((!s2 lsr 8) land 0xFF) lsl 8)
    lor sub (!s3 land 0xFF)
    lxor key.(40)
  and o1 =
    (sub ((!s1 lsr 24) land 0xFF) lsl 24)
    lor (sub ((!s2 lsr 16) land 0xFF) lsl 16)
    lor (sub ((!s3 lsr 8) land 0xFF) lsl 8)
    lor sub (!s0 land 0xFF)
    lxor key.(41)
  and o2 =
    (sub ((!s2 lsr 24) land 0xFF) lsl 24)
    lor (sub ((!s3 lsr 16) land 0xFF) lsl 16)
    lor (sub ((!s0 lsr 8) land 0xFF) lsl 8)
    lor sub (!s1 land 0xFF)
    lxor key.(42)
  and o3 =
    (sub ((!s3 lsr 24) land 0xFF) lsl 24)
    lor (sub ((!s0 lsr 16) land 0xFF) lsl 16)
    lor (sub ((!s1 lsr 8) land 0xFF) lsl 8)
    lor sub (!s2 land 0xFF)
    lxor key.(43)
  in
  Bytes.set dst 0 (Char.chr ((o0 lsr 24) land 0xFF));
  Bytes.set dst 1 (Char.chr ((o0 lsr 16) land 0xFF));
  Bytes.set dst 2 (Char.chr ((o0 lsr 8) land 0xFF));
  Bytes.set dst 3 (Char.chr (o0 land 0xFF));
  Bytes.set dst 4 (Char.chr ((o1 lsr 24) land 0xFF));
  Bytes.set dst 5 (Char.chr ((o1 lsr 16) land 0xFF));
  Bytes.set dst 6 (Char.chr ((o1 lsr 8) land 0xFF));
  Bytes.set dst 7 (Char.chr (o1 land 0xFF));
  Bytes.set dst 8 (Char.chr ((o2 lsr 24) land 0xFF));
  Bytes.set dst 9 (Char.chr ((o2 lsr 16) land 0xFF));
  Bytes.set dst 10 (Char.chr ((o2 lsr 8) land 0xFF));
  Bytes.set dst 11 (Char.chr (o2 land 0xFF));
  Bytes.set dst 12 (Char.chr ((o3 lsr 24) land 0xFF));
  Bytes.set dst 13 (Char.chr ((o3 lsr 16) land 0xFF));
  Bytes.set dst 14 (Char.chr ((o3 lsr 8) land 0xFF));
  Bytes.set dst 15 (Char.chr (o3 land 0xFF))

let encrypt_block key block =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block: block must be 16 bytes";
  let buf = Bytes.of_string block in
  encrypt_into key ~src:buf ~dst:buf;
  Bytes.to_string buf
