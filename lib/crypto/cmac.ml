(* AES-CMAC (RFC 4493) with an allocation-free verification path: the key
   carries two 16-byte scratch buffers (CBC state and staging block), so a
   border router verifying hop MACs at line rate never allocates. The
   scratch makes a key single-threaded — exactly the simulator's usage —
   and [mac]/[mac_truncated] stay as thin allocating wrappers for cold
   callers. *)

type key = {
  aes : Aes128.key;
  k1 : string;
  k2 : string;
  state : Bytes.t; (* CBC chaining value / final tag *)
  block : Bytes.t; (* staged input block, see [stage] *)
}

(* Left shift of a 16-byte string by one bit, with conditional reduction by
   the CMAC constant 0x87 (RFC 4493 subkey generation). *)
let double s =
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let v = (Char.code s.[i] lsl 1) lor !carry in
    carry := (v lsr 8) land 1;
    Bytes.set out i (Char.chr (v land 0xFF))
  done;
  if Char.code s.[0] land 0x80 <> 0 then
    Bytes.set out 15 (Char.chr (Char.code (Bytes.get out 15) lxor 0x87));
  Bytes.to_string out

let of_string k =
  let aes = Aes128.expand_key k in
  let l = Aes128.encrypt_block aes (String.make 16 '\x00') in
  let k1 = double l in
  let k2 = double k1 in
  { aes; k1; k2; state = Bytes.create 16; block = Bytes.create 16 }

(* Compute the full CMAC of [msg] into [key.state] without allocating. *)
let mac_into key msg =
  let len = String.length msg in
  let nblocks = if len = 0 then 1 else (len + 15) / 16 in
  Bytes.fill key.state 0 16 '\x00';
  for i = 0 to nblocks - 2 do
    for j = 0 to 15 do
      Bytes.unsafe_set key.block j
        (Char.unsafe_chr
           (Char.code (String.unsafe_get msg ((i * 16) + j))
           lxor Char.code (Bytes.unsafe_get key.state j)))
    done;
    Aes128.encrypt_into key.aes ~src:key.block ~dst:key.state
  done;
  let off = (nblocks - 1) * 16 in
  let tail = len - off in
  if len > 0 && tail = 16 then
    for j = 0 to 15 do
      Bytes.unsafe_set key.block j
        (Char.unsafe_chr
           (Char.code (String.unsafe_get msg (off + j))
           lxor Char.code (String.unsafe_get key.k1 j)
           lxor Char.code (Bytes.unsafe_get key.state j)))
    done
  else begin
    Bytes.fill key.block 0 16 '\x00';
    Bytes.blit_string msg off key.block 0 tail;
    Bytes.set key.block tail '\x80';
    for j = 0 to 15 do
      Bytes.unsafe_set key.block j
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get key.block j)
           lxor Char.code (String.unsafe_get key.k2 j)
           lxor Char.code (Bytes.unsafe_get key.state j)))
    done
  end;
  Aes128.encrypt_into key.aes ~src:key.block ~dst:key.state

let mac key msg =
  mac_into key msg;
  Bytes.to_string key.state

let mac_truncated key msg n =
  mac_into key msg;
  Bytes.sub_string key.state 0 n

let verify key ~msg ~tag =
  let n = String.length tag in
  if n > 16 || n = 0 then false
  else begin
    mac_into key msg;
    let diff = ref 0 in
    for i = 0 to n - 1 do
      diff := !diff lor (Char.code (String.unsafe_get tag i) lxor Char.code (Bytes.unsafe_get key.state i))
    done;
    !diff = 0
  end

(* --- single-complete-block fast path ----------------------------------- *)

(* A message of exactly 16 bytes has CMAC AES(k, msg xor k1): no CBC chain
   at all. SCION hop-field MAC inputs are exactly one block, so the router
   fast path stages the input via [stage] and checks the tag in place with
   [verify_staged_*] — zero allocation, one AES call. *)

let stage key = key.block

let encrypt_staged key =
  for j = 0 to 15 do
    Bytes.unsafe_set key.block j
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get key.block j) lxor Char.code (String.unsafe_get key.k1 j)))
  done;
  Aes128.encrypt_into key.aes ~src:key.block ~dst:key.state

let verify_staged_string key ~tag =
  let n = String.length tag in
  if n > 16 || n = 0 then false
  else begin
    encrypt_staged key;
    let diff = ref 0 in
    for i = 0 to n - 1 do
      diff := !diff lor (Char.code (String.unsafe_get tag i) lxor Char.code (Bytes.unsafe_get key.state i))
    done;
    !diff = 0
  end

let verify_staged_bytes key ~buf ~off ~len =
  if len > 16 || len = 0 || off < 0 || off + len > Bytes.length buf then false
  else begin
    encrypt_staged key;
    let diff = ref 0 in
    for i = 0 to len - 1 do
      diff :=
        !diff lor (Char.code (Bytes.unsafe_get buf (off + i)) lxor Char.code (Bytes.unsafe_get key.state i))
    done;
    !diff = 0
  end

let mac_staged_into key ~dst ~off ~len =
  encrypt_staged key;
  Bytes.blit key.state 0 dst off len
