(** AES-CMAC (RFC 4493). SCION hop-field MACs are computed with AES-CMAC
    over the hop's forwarding metadata; border routers verify a truncated
    6-byte tag at line rate. Validated against the RFC 4493 vectors. *)

type key

val of_string : string -> key
(** [of_string k] prepares a CMAC key from a 16-byte AES key (subkey
    derivation included). Raises [Invalid_argument] on other lengths. *)

val mac : key -> string -> string
(** [mac key msg] returns the full 16-byte tag. *)

val mac_truncated : key -> string -> int -> string
(** [mac_truncated key msg n] returns the first [n] bytes of the tag. *)

val verify : key -> msg:string -> tag:string -> bool
(** Constant-time check of a (possibly truncated) tag. Allocation-free: the
    CBC state lives in scratch buffers inside [key], which therefore must
    not be shared across concurrent verifications (the simulator is
    single-threaded). *)

(** {2 Single-complete-block fast path}

    A 16-byte message has CMAC [AES(k, msg xor k1)] — no CBC chain. SCION
    hop-field MAC inputs are exactly one block, so the border router stages
    the input directly into the key's scratch block and verifies (or emits)
    the tag in place: zero allocation, one AES call per hop. *)

val stage : key -> Bytes.t
(** The key's 16-byte staging buffer. Write the one-block message here, then
    call one of the staged operations below. Contents are clobbered by every
    CMAC operation on this key. *)

val verify_staged_string : key -> tag:string -> bool
(** Constant-time tag check of the staged block against a string tag of
    1-16 bytes. *)

val verify_staged_bytes : key -> buf:Bytes.t -> off:int -> len:int -> bool
(** Same, against [len] tag bytes at [off] in [buf] (e.g. the MAC field of
    an encoded packet). *)

val mac_staged_into : key -> dst:Bytes.t -> off:int -> len:int -> unit
(** CMAC the staged block and write the first [len] tag bytes at [off] in
    [dst]. *)
