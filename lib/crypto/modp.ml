(* p = 2^256 - c with c = 2^32 + 977, so 2^256 === c (mod p): reduction of a
   512-bit product is a couple of cheap "fold the high part times c" passes
   plus a conditional subtract, instead of a generic long division.

   Field elements are flat 11-limb radix-2^24 int arrays, always fully
   reduced below p. The radix is chosen so that (a) an 11x11 schoolbook
   product needs only 121 limb multiplications whose column sums stay far
   inside OCaml's 63-bit native int, and (b) limbs align exactly with bytes
   (3 bytes per limb), keeping the 32-byte codec branch-free. This is the
   inner loop of every Schnorr signature in the repo, so the hot helpers use
   unsafe array accesses over fixed-size scratch buffers whose indices are
   all statically in range. *)

let dlimbs = 11
let dbits = 24
let dmask = 0xFFFFFF

(* Exponent-side constants stay in Bignum's radix 2^16: the secp256k1 field
   prime p = FFFF...FFFE FFFFFC2F ... *)
let p_limbs16 =
  [| 0xFC2F; 0xFFFF; 0xFFFE; 0xFFFF; 0xFFFF; 0xFFFF; 0xFFFF; 0xFFFF;
     0xFFFF; 0xFFFF; 0xFFFF; 0xFFFF; 0xFFFF; 0xFFFF; 0xFFFF; 0xFFFF |]

(* ... and p - 1 = 2^256 - (c + 1), the Schnorr exponent modulus. *)
let p1_limbs16 = Array.mapi (fun i v -> if i = 0 then v - 1 else v) p_limbs16

let p = Bignum.of_limbs p_limbs16

type felem = int array (* length 11, radix 2^24, < p *)

(* p in radix 2^24, repacked from the base-2^16 limbs so the two encodings
   can never disagree; limb 10 only carries bits 240..255, so a canonical
   felem always has its top limb below 2^16. *)
let p24 =
  let out = Array.make dlimbs 0 in
  Array.iteri
    (fun i l ->
      let bit = 16 * i in
      let limb = bit / dbits and sh = bit mod dbits in
      out.(limb) <- out.(limb) lor ((l lsl sh) land dmask);
      if sh > dbits - 16 && limb + 1 < dlimbs then
        out.(limb + 1) <- out.(limb + 1) lor (l lsr (dbits - sh)))
    p_limbs16;
  out

let zero = Array.make dlimbs 0
let one = Array.init dlimbs (fun i -> if i = 0 then 1 else 0)

let equal (a : felem) (b : felem) =
  let rec go i = i >= dlimbs || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let cmp24 a m =
  let rec go i = if i < 0 then 0 else if a.(i) <> m.(i) then compare a.(i) m.(i) else go (i - 1) in
  go (dlimbs - 1)

(* a <- a - m; caller guarantees a >= m *)
let sub24_in_place a m =
  let borrow = ref 0 in
  for i = 0 to dlimbs - 1 do
    let d = a.(i) - m.(i) - !borrow in
    if d < 0 then begin
      a.(i) <- d + (1 lsl dbits);
      borrow := 1
    end
    else begin
      a.(i) <- d;
      borrow := 0
    end
  done

(* Reduce a scratch accumulator [w] (length [len] >= 13, column values below
   ~2^55) to a fresh canonical felem. One carry pass turns columns into
   limbs, then high limbs fold down through 2^264 === 2^8*c (limb h at
   position 11+j contributes h*250112 at limb j and h*2^16 at limb j+1),
   the bit-256 overhang of limb 10 folds through 2^256 === c, and at most
   two conditional subtracts finish the job. *)
let reduce_scratch w len =
  let carry = ref 0 in
  for k = 0 to len - 1 do
    let t = Array.unsafe_get w k + !carry in
    Array.unsafe_set w k (t land dmask);
    carry := t asr dbits
  done;
  (* columns < 2^55 so the final carry is below 2^31 < one limb's worth
     beyond the last column; callers size w with two spare limbs. *)
  let active = ref (len - 1) in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    for j = dlimbs to !active do
      let h = w.(j) in
      if h <> 0 then begin
        w.(j) <- 0;
        w.(j - dlimbs) <- w.(j - dlimbs) + (h * 250112);
        w.(j - dlimbs + 1) <- w.(j - dlimbs + 1) + (h lsl 16)
      end
    done;
    (* fold the bits of limb 10 above position 255: 2^256 === 2^32 + 977 *)
    let h = w.(10) asr 16 in
    if h <> 0 then begin
      w.(10) <- w.(10) land 0xFFFF;
      w.(0) <- w.(0) + (h * 977);
      w.(1) <- w.(1) + (h lsl 8)
    end;
    let carry = ref 0 in
    for k = 0 to min (dlimbs + 2) !active do
      let t = w.(k) + !carry in
      w.(k) <- t land dmask;
      carry := t asr dbits;
      if k >= dlimbs && w.(k) <> 0 then continue_ := true
    done;
    if !carry <> 0 then begin
      w.(dlimbs + 3) <- w.(dlimbs + 3) + !carry;
      continue_ := true
    end;
    if w.(10) asr 16 <> 0 then continue_ := true;
    active := dlimbs + 3
  done;
  let out = Array.sub w 0 dlimbs in
  if cmp24 out p24 >= 0 then sub24_in_place out p24;
  if cmp24 out p24 >= 0 then sub24_in_place out p24;
  out

let scratch_len = 24 (* 21 product columns + carry spill + fold headroom *)

let mul (a : felem) (b : felem) : felem =
  let w = Array.make scratch_len 0 in
  for i = 0 to dlimbs - 1 do
    let ai = Array.unsafe_get a i in
    if ai <> 0 then
      for j = 0 to dlimbs - 1 do
        let k = i + j in
        Array.unsafe_set w k (Array.unsafe_get w k + (ai * Array.unsafe_get b j))
      done
  done;
  reduce_scratch w scratch_len

(* Dedicated squaring: the 55 off-diagonal products are shared (doubled), so
   a square costs ~half a general multiply. The 4-bit exponentiation ladders
   are ~80% squarings, making this the single hottest function in signing
   and verification. *)
let sqr (a : felem) : felem =
  let w = Array.make scratch_len 0 in
  for i = 0 to dlimbs - 1 do
    let ai = Array.unsafe_get a i in
    if ai <> 0 then begin
      let k = 2 * i in
      Array.unsafe_set w k (Array.unsafe_get w k + (ai * ai));
      let ai2 = 2 * ai in
      for j = i + 1 to dlimbs - 1 do
        let k = i + j in
        Array.unsafe_set w k (Array.unsafe_get w k + (ai2 * Array.unsafe_get a j))
      done
    end
  done;
  reduce_scratch w scratch_len

let add (a : felem) (b : felem) : felem =
  (* a + b < 2p < 2^257 never carries out of limb 10's 24 bits *)
  let out = Array.make dlimbs 0 in
  let carry = ref 0 in
  for i = 0 to dlimbs - 1 do
    let s = a.(i) + b.(i) + !carry in
    out.(i) <- s land dmask;
    carry := s asr dbits
  done;
  if out.(10) asr 16 <> 0 then begin
    (* fold bit 256 before the compare so the subtract is single-shot *)
    let h = out.(10) asr 16 in
    out.(10) <- out.(10) land 0xFFFF;
    let t0 = out.(0) + (h * 977) in
    out.(0) <- t0 land dmask;
    let t1 = out.(1) + (h lsl 8) + (t0 asr dbits) in
    out.(1) <- t1 land dmask;
    let c = ref (t1 asr dbits) in
    let i = ref 2 in
    while !c <> 0 && !i < dlimbs do
      let t = out.(!i) + !c in
      out.(!i) <- t land dmask;
      c := t asr dbits;
      incr i
    done
  end;
  if cmp24 out p24 >= 0 then sub24_in_place out p24;
  out

let sub (a : felem) (b : felem) : felem =
  let out = Array.copy a in
  if cmp24 out b < 0 then begin
    let carry = ref 0 in
    for i = 0 to dlimbs - 1 do
      let s = out.(i) + p24.(i) + !carry in
      out.(i) <- s land dmask;
      carry := s asr dbits
    done;
    let borrow = ref 0 in
    for i = 0 to dlimbs - 1 do
      let d = out.(i) - b.(i) - !borrow in
      if d < 0 then begin
        out.(i) <- d + (1 lsl dbits);
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done;
    assert (!borrow = !carry)
  end
  else sub24_in_place out b;
  out

(* --- Bignum interop (cold: key setup, codec, tests) -------------------- *)

let of_limbs16_any l =
  (* repack little-endian base-2^16 limbs of any length into a radix-24
     scratch, then reduce *)
  let n = Array.length l in
  let len = max scratch_len (((n * 16) / dbits) + 3) in
  let w = Array.make len 0 in
  for i = 0 to n - 1 do
    let bit = 16 * i in
    let limb = bit / dbits and sh = bit mod dbits in
    w.(limb) <- w.(limb) + ((l.(i) lsl sh) land dmask);
    if sh > dbits - 16 then w.(limb + 1) <- w.(limb + 1) + (l.(i) lsr (dbits - sh))
  done;
  reduce_scratch w len

let of_bignum x = of_limbs16_any (Bignum.limbs x)

let to_bignum (x : felem) =
  (* inverse repacking: radix 24 -> radix 16 *)
  let l = Array.make 16 0 in
  for i = 0 to 15 do
    let bit = 16 * i in
    let limb = bit / dbits and sh = bit mod dbits in
    let v = x.(limb) lsr sh in
    let v = if sh > dbits - 16 && limb + 1 < dlimbs then v lor (x.(limb + 1) lsl (dbits - sh)) else v in
    l.(i) <- v land 0xFFFF
  done;
  Bignum.of_limbs l

let of_int v =
  assert (v >= 0);
  of_bignum (Bignum.of_int v)

(* --- exponent-field reduction ------------------------------------------ *)

(* Fold the base-2^16 limbs of [t] above position 16 back into the low half
   using 2^256 === c + 1 (mod p - 1), repeating until the top clears, then
   conditionally subtract. Replaces the bit-by-bit Bignum.divmod on the
   Schnorr signing/verification path, where every challenge and every
   s-component needs an exponent-field reduction. A wide (e.g. 32-limb)
   tail folds limb-wise — limb h at position 16 + i contributes h*978 at
   limb i and h at limb i + 2 — so no intermediate leaves the 63-bit int
   range; once the tail fits in a single int one more pass clears it. *)
let fold16_tail t len0 =
  let size = max (len0 + 2) 20 in
  let t' = Array.make size 0 in
  Array.blit t 0 t' 0 len0;
  let t = t' in
  let len = ref len0 in
  while !len > 16 do
    if !len > 19 then begin
      let hi_len = !len - 16 in
      for i = 0 to hi_len - 1 do
        let h = t.(16 + i) in
        t.(16 + i) <- 0;
        t.(i) <- t.(i) + (h * 978);
        t.(i + 2) <- t.(i + 2) + h
      done
    end
    else begin
      let v = ref 0 in
      for i = !len - 1 downto 16 do
        v := (!v lsl 16) + t.(i);
        t.(i) <- 0
      done;
      let vk = !v * 978 in
      t.(0) <- t.(0) + (vk land 0xFFFF);
      t.(1) <- t.(1) + ((vk lsr 16) land 0xFFFF);
      t.(2) <- t.(2) + (vk lsr 32) + (!v land 0xFFFF);
      t.(3) <- t.(3) + ((!v lsr 16) land 0xFFFF);
      t.(4) <- t.(4) + (!v lsr 32)
    end;
    let carry = ref 0 in
    let high = ref 0 in
    for i = 0 to size - 1 do
      let s = t.(i) + !carry in
      t.(i) <- s land 0xFFFF;
      carry := s lsr 16;
      if t.(i) <> 0 then high := i
    done;
    assert (!carry = 0);
    len := max (!high + 1) 16
  done;
  let cmp16 a m =
    let rec go i = if i < 0 then 0 else if a.(i) <> m.(i) then compare a.(i) m.(i) else go (i - 1) in
    go 15
  in
  let sub16 a m =
    let borrow = ref 0 in
    for i = 0 to 15 do
      let d = a.(i) - m.(i) - !borrow in
      if d < 0 then begin
        a.(i) <- d + 0x10000;
        borrow := 1
      end
      else begin
        a.(i) <- d;
        borrow := 0
      end
    done
  in
  let out = Array.sub t 0 16 in
  if cmp16 out p1_limbs16 >= 0 then sub16 out p1_limbs16;
  if cmp16 out p1_limbs16 >= 0 then sub16 out p1_limbs16;
  out

let reduce_exponent x =
  let l = Bignum.limbs x in
  Bignum.of_limbs (fold16_tail l (Array.length l))

(* --- exponentiation ----------------------------------------------------- *)

(* 4-bit windowed exponentiation: precompute b^0..b^15, then one pass over
   the exponent nibbles with four squarings per nibble. Quarter the
   multiplies of plain square-and-multiply for 256-bit exponents. *)
let pow (b : felem) (e : Bignum.t) : felem =
  let el = Bignum.limbs e in
  let n = Array.length el in
  if n = 0 then Array.copy one
  else begin
    let table = Array.make 16 one in
    table.(1) <- b;
    for i = 2 to 15 do
      table.(i) <- mul table.(i - 1) b
    done;
    let nib_count = n * 4 in
    let nibble j = (el.(j / 4) lsr ((j mod 4) * 4)) land 0xF in
    let top = ref (nib_count - 1) in
    while !top > 0 && nibble !top = 0 do
      decr top
    done;
    let acc = ref table.(nibble !top) in
    for j = !top - 1 downto 0 do
      acc := sqr !acc;
      acc := sqr !acc;
      acc := sqr !acc;
      acc := sqr !acc;
      let d = nibble j in
      if d <> 0 then acc := mul !acc table.(d)
    done;
    !acc
  end

(* --- codec -------------------------------------------------------------- *)

let to_bytes (x : felem) =
  (* 3 bytes per limb: byte i (big-endian) is bits 8*(31-i).. which sit
     wholly inside limb (31-i)/3 *)
  String.init 32 (fun i ->
      let bitpos = 8 * (31 - i) in
      (x.(bitpos / dbits) lsr (bitpos mod dbits)) land 0xFF |> Char.chr)

let of_bytes s =
  if String.length s <> 32 then None
  else begin
    let out = Array.make dlimbs 0 in
    for i = 0 to 31 do
      let bitpos = 8 * (31 - i) in
      out.(bitpos / dbits) <-
        out.(bitpos / dbits) lor (Char.code s.[i] lsl (bitpos mod dbits))
    done;
    if cmp24 out p24 >= 0 then None else Some out
  end
