(** AES-128 block encryption (FIPS 197), encrypt-only — all SCION data-plane
    uses (hop-field CMACs, DRKey-style derivation) need only the forward
    permutation. Validated against the FIPS 197 appendix vectors. *)

type key
(** An expanded 128-bit key schedule. *)

val expand_key : string -> key
(** [expand_key k] expands a 16-byte key. Raises [Invalid_argument] on any
    other length. *)

val encrypt_block : key -> string -> string
(** [encrypt_block key block] encrypts a single 16-byte block. Raises
    [Invalid_argument] on any other length. *)

val encrypt_into : key -> src:Bytes.t -> dst:Bytes.t -> unit
(** [encrypt_into key ~src ~dst] encrypts the first 16 bytes of [src] into
    the first 16 bytes of [dst] without allocating; [src] and [dst] may be
    the same buffer. This is the border router's per-hop-MAC primitive.
    Raises [Invalid_argument] when either buffer is shorter than 16
    bytes. *)
