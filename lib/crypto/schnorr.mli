(** Schnorr signatures over the multiplicative group of {!Modp}.

    This is the asymmetric primitive behind the control-plane PKI: TRC and
    AS-certificate signatures, and the per-AS signatures on PCB entries.
    Nonces are derived deterministically (HMAC of key and message), so
    signing is reproducible and never reuses a nonce.

    Note on parameters: we sign in Z_p^* with exponents reduced modulo
    [p - 1]. For a *deployment reproduction* the relevant behaviours are
    determinism, unforgeability against accidental corruption, and correct
    verification — all of which hold; production-grade discrete-log security
    margins are out of scope and documented in DESIGN.md. *)

type private_key
type public_key

(* scion-lint: rng-stream keygen -- key generation draws from the caller's keygen stream, never a shared one *)
val generate : Scion_util.Rng.t -> private_key * public_key
(** Draw a fresh key pair from the deterministic RNG. *)

val derive : seed:string -> private_key * public_key
(** Derive a key pair from a seed string (used to give every simulated AS a
    stable identity). *)

val public_of_private : private_key -> public_key

val sign : private_key -> string -> string
(** [sign priv msg] returns a 64-byte signature. *)

val verify : public_key -> msg:string -> signature:string -> bool

val verify_batch : (public_key * string * string) list -> bool
(** [verify_batch [(pub, msg, signature); ...]] checks every signature in one
    random-linear-combination pass: one fixed-base comb power on the left and
    a single Straus multi-exponentiation on the right, sharing the ~256
    squarings of the ladder across the whole batch. The empty batch is
    [true]; a batch of one delegates to {!verify}. A valid batch always
    passes. An invalid batch fails unless the deterministically derived
    64-bit coefficients hit a ~2^-64 algebraic coincidence — ample for this
    deployment reproduction (callers needing exact per-item error reporting
    should fall back to {!verify} per item when the batch fails). *)

val public_to_string : public_key -> string
(** 32-byte encoding, suitable for embedding in certificates. *)

val public_of_string : string -> public_key option
val fingerprint : public_key -> string
(** Short hex fingerprint for logs and subject key identifiers. *)

val signature_size : int
(** 64 bytes. *)
