type private_key = { x : Bignum.t; x_bytes : string; pub_bytes : string Lazy.t }
type public_key = Modp.felem

let g = Modp.of_int 3
let exponent_modulus = Bignum.sub Modp.p Bignum.one
let signature_size = 64

(* Fixed-base exponentiation: g is constant, so precompute a comb table
   g^(d * 16^i) for every nibble position i in [0, 64) and digit d in
   [1, 15]. Any 256-bit g^e then costs at most 64 multiplications and zero
   squarings. Signing happens for every PCB entry during beaconing and a
   fixed-base power anchors every verification, so this matters. *)
let g_comb =
  lazy
    (let table = Array.make_matrix 64 15 Modp.one in
     let base = ref g in
     for i = 0 to 63 do
       table.(i).(0) <- !base;
       for d = 1 to 14 do
         table.(i).(d) <- Modp.mul table.(i).(d - 1) !base
       done;
       if i < 63 then base := Modp.mul table.(i).(14) !base (* g^(16^(i+1)) *)
     done;
     table)

let pow_g e =
  let table = Lazy.force g_comb in
  let limbs = Bignum.limbs e in
  let n = Array.length limbs in
  let acc = ref Modp.one in
  for j = 0 to (n * 4) - 1 do
    let d = (limbs.(j / 4) lsr ((j mod 4) * 4)) land 0xF in
    if d <> 0 && j < 64 then acc := Modp.mul !acc table.(j).(d - 1)
  done;
  !acc

(* Map 32 uniform bytes into [1, p-2]: reduce mod (p-3) then add 1. The bias
   is negligible (p is within 2^-190 of 2^256). *)
let scalar_of_bytes b =
  let v = Bignum.modulo (Bignum.of_bytes_be b) (Bignum.sub Modp.p (Bignum.of_int 3)) in
  Bignum.add v Bignum.one

let private_of_scalar x =
  let rec priv = { x; x_bytes = Bignum.to_bytes_be ~width:32 x; pub_bytes }
  and pub_bytes = lazy (Modp.to_bytes (pow_g x)) in
  priv

let public_of_private priv = pow_g priv.x

let generate rng =
  let priv = private_of_scalar (scalar_of_bytes (Bytes.to_string (Scion_util.Rng.bytes rng 32))) in
  (priv, public_of_private priv)

let derive ~seed =
  let priv = private_of_scalar (scalar_of_bytes (Hmac.kdf ~secret:seed ~info:"schnorr-key" 32)) in
  (priv, public_of_private priv)

let challenge ~r_bytes ~pub_bytes ~msg =
  Modp.reduce_exponent (Bignum.of_bytes_be (Sha256.digest (r_bytes ^ pub_bytes ^ msg)))

let sign priv msg =
  let pub_bytes = Lazy.force priv.pub_bytes in
  let k =
    let raw = Hmac.sha256 ~key:priv.x_bytes ("nonce" ^ msg) in
    let k = Modp.reduce_exponent (Bignum.of_bytes_be raw) in
    if Bignum.is_zero k then Bignum.one else k
  in
  let r = pow_g k in
  let r_bytes = Modp.to_bytes r in
  let e = challenge ~r_bytes ~pub_bytes ~msg in
  let s = Modp.reduce_exponent (Bignum.add k (Bignum.mul e priv.x)) in
  r_bytes ^ Bignum.to_bytes_be ~width:32 s

(* Parse and range-check a signature into (r, s); shared by the single and
   batch verifiers so both reject exactly the same malformed inputs. *)
let parse_signature signature =
  if String.length signature <> signature_size then None
  else begin
    match Modp.of_bytes (String.sub signature 0 32) with
    | None -> None
    | Some r ->
        if Modp.equal r Modp.zero then None
        else begin
          let s = Bignum.of_bytes_be (String.sub signature 32 32) in
          if Bignum.compare s exponent_modulus >= 0 then None else Some (r, s)
        end
  end

let verify pub ~msg ~signature =
  match parse_signature signature with
  | None -> false
  | Some (r, s) ->
      let e = challenge ~r_bytes:(Modp.to_bytes r) ~pub_bytes:(Modp.to_bytes pub) ~msg in
      Modp.equal (pow_g s) (Modp.mul r (Modp.pow pub e))

(* Batch verification by random linear combination: each equation
   g^(s_i) = r_i * pub_i^(e_i) is raised to a per-item 64-bit coefficient
   z_i and the products compared:

     g^(sum z_i * s_i)  =?=  prod r_i^(z_i) * pub_i^(z_i * e_i)

   The left side is one comb-table fixed-base power; the right side is a
   single Straus interleaved multi-exponentiation, so the ~256 squarings of
   a 256-bit ladder are paid once for the whole batch instead of once per
   signature. Coefficients are derived deterministically from a hash of the
   whole batch transcript (this code base is a deployment reproduction, not
   an adversarial setting; see the .mli note). A valid batch always passes;
   an invalid one passes only if the coefficients hit a ~2^-64 relation. *)
let verify_batch items =
  match items with
  | [] -> true
  | [ (pub, msg, signature) ] -> verify pub ~msg ~signature
  | _ ->
      let parsed =
        List.map
          (fun (pub, msg, signature) ->
            match parse_signature signature with
            | None -> None
            | Some (r, s) ->
                let e =
                  challenge ~r_bytes:(Modp.to_bytes r) ~pub_bytes:(Modp.to_bytes pub) ~msg
                in
                Some (pub, r, s, e))
          items
      in
      if List.exists (fun x -> x = None) parsed then false
      else begin
        let parsed = List.filter_map Fun.id parsed in
        let transcript =
          String.concat ""
            (List.map
               (fun (pub, msg, signature) ->
                 Modp.to_bytes pub ^ Sha256.digest msg ^ signature)
               items)
        in
        let coeff i =
          let h = Sha256.digest (transcript ^ string_of_int i) in
          let z = ref 0 in
          for j = 0 to 7 do
            z := (!z lsl 8) lor Char.code h.[j]
          done;
          let z = !z land max_int in
          if z = 0 then 1 else z
        in
        let n = List.length parsed in
        let zs = Array.init n coeff in
        let parsed = Array.of_list parsed in
        (* left: g^(sum z_i s_i mod (p-1)) *)
        let lhs_exp =
          ref Bignum.zero
        in
        for i = 0 to n - 1 do
          let (_, _, s, _) = parsed.(i) in
          lhs_exp :=
            Modp.reduce_exponent (Bignum.add !lhs_exp (Bignum.mul (Bignum.of_int zs.(i)) s))
        done;
        let lhs = pow_g !lhs_exp in
        (* right: Straus over 2n bases — r_i with 64-bit exponent z_i, pub_i
           with 256-bit exponent z_i * e_i mod (p - 1). 4-bit windows; the
           squarings are shared across every base. *)
        let bases = Array.make (2 * n) Modp.one in
        let exps = Array.make (2 * n) [||] in
        let max_nibbles = ref 1 in
        for i = 0 to n - 1 do
          let pub, r, _, e = parsed.(i) in
          bases.(2 * i) <- r;
          exps.(2 * i) <- Bignum.limbs (Bignum.of_int zs.(i));
          bases.((2 * i) + 1) <- pub;
          exps.((2 * i) + 1) <-
            Bignum.limbs (Modp.reduce_exponent (Bignum.mul (Bignum.of_int zs.(i)) e));
          Array.iter
            (fun l -> max_nibbles := max !max_nibbles (Array.length l * 4))
            [| exps.(2 * i); exps.((2 * i) + 1) |]
        done;
        let tables =
          Array.map
            (fun b ->
              let t = Array.make 15 b in
              for d = 1 to 14 do
                t.(d) <- Modp.mul t.(d - 1) b
              done;
              t)
            bases
        in
        let nibble l j =
          let limb = j / 4 in
          if limb >= Array.length l then 0 else (l.(limb) lsr ((j mod 4) * 4)) land 0xF
        in
        let acc = ref Modp.one in
        for j = !max_nibbles - 1 downto 0 do
          if not (Modp.equal !acc Modp.one) then begin
            acc := Modp.sqr !acc;
            acc := Modp.sqr !acc;
            acc := Modp.sqr !acc;
            acc := Modp.sqr !acc
          end;
          for b = 0 to (2 * n) - 1 do
            let d = nibble exps.(b) j in
            if d <> 0 then acc := Modp.mul !acc tables.(b).(d - 1)
          done
        done;
        Modp.equal lhs !acc
      end

let public_to_string = Modp.to_bytes
let public_of_string = Modp.of_bytes
let fingerprint pub = Scion_util.Hex.short ~n:12 (Sha256.digest (Modp.to_bytes pub))
