(** Fast arithmetic modulo the fixed 256-bit prime
    [p = 2^256 - 2^32 - 977] (the secp256k1 field prime, chosen because its
    pseudo-Mersenne form allows multiplication-free reduction). This is the
    group in which {!Schnorr} signatures live; signing and verification are
    frequent (every PCB AS entry is signed and re-verified at each hop), so
    the generic {!Bignum.modpow} would be too slow. *)

type felem
(** A field element, always fully reduced (< p). *)

val p : Bignum.t
val zero : felem
val one : felem
val of_bignum : Bignum.t -> felem
(** Reduces modulo p. *)

val to_bignum : felem -> Bignum.t
val of_int : int -> felem
val equal : felem -> felem -> bool
val add : felem -> felem -> felem
val sub : felem -> felem -> felem
val mul : felem -> felem -> felem

val sqr : felem -> felem
(** [sqr x = mul x x], sharing the off-diagonal limb products — roughly half
    the cost of a general multiply. Exponentiation ladders are ~80%
    squarings, so they call this instead of {!mul}. *)

val pow : felem -> Bignum.t -> felem
(** [pow b e] computes [b ^ e] in the field with a 4-bit windowed ladder over
    the fast reduction (quarter the multiplies of plain square-and-multiply
    for 256-bit exponents). *)

val reduce_exponent : Bignum.t -> Bignum.t
(** Reduces an arbitrary value modulo [p - 1] (the {!Schnorr} exponent
    modulus) using the pseudo-Mersenne fold [2^256 === c + 1 (mod p - 1)]
    instead of generic binary long division. *)

val to_bytes : felem -> string
(** Fixed 32-byte big-endian encoding. *)

val of_bytes : string -> felem option
(** Decodes a 32-byte string; [None] if the value is >= p. *)
