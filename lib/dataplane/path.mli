(** The SCION standard path header: info fields, hop fields, and the
    cryptographic hop-field chaining that border routers verify.

    A path carries up to three segments (up, core, down). Every segment has
    one 8-byte info field and up to 63 12-byte hop fields. Hop-field MACs
    form a chain: with [beta_0] the segment's random initial value and
    [mac_i] the MAC of hop [i], [beta_{i+1} = beta_i xor mac_i[0..1]]. A
    router traversing in construction direction verifies against the
    current [seg_id] and then folds its own MAC into it; against
    construction direction it first unfolds. This is what makes SCION paths
    unforgeable without per-router state. *)

type info = {
  cons_dir : bool;  (** [true] when traversed in construction direction. *)
  peer : bool;  (** Peering-shortcut segment flag. *)
  mutable seg_id : int;  (** Current beta (16 bits), mutated in place during forwarding. *)
  timestamp : int32;  (** Segment origination time (unix seconds). *)
}

type hop = {
  exp_time : int;  (** Relative expiry (8 bits); see {!hop_expiry}. *)
  cons_ingress : int;  (** Interface id in construction direction (16 bit). *)
  cons_egress : int;
  mac : string;  (** 6-byte truncated CMAC. *)
}

type t = {
  mutable curr_inf : int;
  mutable curr_hf : int;
  infos : info array;
  hops : hop array;
  lens : int array;
}
(** Decoded standard path. [infos] has 1-3 entries; [lens] gives the number
    of hop fields per segment. The [hops] array is flat: segment 0 first. *)

val seg_lens : t -> int array
(** Number of hop fields per segment — encoded in the path meta header. *)

exception Malformed of string

val create : (info * hop list) list -> t
(** [create segments] builds a path positioned at its first hop. Raises
    [Malformed] when the segment structure is invalid (0 or > 3 segments,
    empty or oversized segment). *)

val hop_expiry : info -> hop -> float
(** Absolute expiry time in unix seconds: the spec's relative encoding
    [ (exp_time + 1) * 24h / 256 ] added to the segment timestamp. *)

val hop_expiry_ts : timestamp:int -> exp_time:int -> float
(** Scalar variant of {!hop_expiry} for callers holding the raw wire fields
    ([timestamp] as an unsigned 32-bit int). *)

val max_exp_time : int

val mac_len : int
(** Length of the truncated hop MAC on the wire (6 bytes). *)

val mac_input : seg_id:int -> timestamp:int32 -> hop -> string
(** The canonical 16-byte MAC input block for a hop field. *)

val compute_mac : Scion_crypto.Cmac.key -> seg_id:int -> timestamp:int32 -> hop -> string
(** 6-byte truncated hop MAC. *)

val stage_mac_fields :
  Scion_crypto.Cmac.key ->
  seg_id:int ->
  timestamp:int ->
  exp_time:int ->
  cons_ingress:int ->
  cons_egress:int ->
  unit
(** Write the canonical 16-byte MAC input straight into the CMAC key's
    staging block ({!Scion_crypto.Cmac.stage}) without allocating; follow
    with a staged CMAC operation. The fields are scalars (the timestamp an
    unsigned 32-bit int) so the packet-view fast path can verify hops read
    directly out of a wire buffer. *)

val verify_mac : Scion_crypto.Cmac.key -> seg_id:int -> timestamp:int32 -> hop -> bool
(** Allocation-free check of [hop.mac]: stages the input block and compares
    the truncated tag in place (one AES call, no intermediate strings). *)

val chain_seg_id : seg_id:int -> mac:string -> int
(** [beta xor mac[0..1]]. *)

val encode : t -> string
val decode : string -> t
(** Raises [Malformed]. *)

val encoded_length : t -> int
val current_info : t -> info
val current_hop : t -> hop
val set_seg_id : t -> int -> unit
val advance : t -> unit
(** Move to the next hop field, incrementing [curr_inf] across a segment
    boundary. Raises [Malformed] when already at the last hop. *)

val at_last_hop : t -> bool
val num_hops : t -> int

val curr_is_seg_first : t -> bool
(** Whether the current hop is the first hop field of its segment. *)

val curr_is_seg_last : t -> bool
(** Whether the current hop is the last hop field of its segment. *)

val traversal_interfaces : t -> int * int
(** [(ingress, egress)] of the current hop in traversal direction: for a
    segment traversed against construction direction the constructed
    ingress/egress roles are swapped. *)

val traversal_ingress : t -> int
val traversal_egress : t -> int
(** Scalar variants of {!traversal_interfaces} — the forwarding fast path
    reads each side separately to avoid a per-packet tuple. *)

val reverse : t -> t
(** The path as seen by the replying end host: segments and hops in reverse
    order, construction-direction flags flipped, positioned at the first
    hop. [seg_id] values are preserved per segment as left by forwarding,
    which is exactly the state a reply needs. *)

val pp : Format.formatter -> t -> unit
