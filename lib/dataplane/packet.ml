module Rw = Scion_util.Rw

type host = Ipv4 of Scion_addr.Ipv4.t | Service of int

let svc_cs = 0x0002
let svc_ds = 0x0001

let host_equal a b =
  match (a, b) with
  | Ipv4 x, Ipv4 y -> Scion_addr.Ipv4.equal x y
  | Service x, Service y -> x = y
  | Ipv4 _, Service _ | Service _, Ipv4 _ -> false

let host_to_string = function
  | Ipv4 a -> Scion_addr.Ipv4.to_string a
  | Service s when s = svc_cs -> "CS"
  | Service s when s = svc_ds -> "DS"
  | Service s -> Printf.sprintf "SVC:%d" s

type proto = Udp | Scmp | Bfd

let proto_to_int = function Udp -> 17 | Scmp -> 202 | Bfd -> 203

let proto_of_int = function
  | 17 -> Some Udp
  | 202 -> Some Scmp
  | 203 -> Some Bfd
  | _ -> None

type path = Empty | Standard of Path.t

type t = {
  traffic_class : int;
  flow_id : int;
  proto : proto;
  dst_ia : Scion_addr.Ia.t;
  src_ia : Scion_addr.Ia.t;
  dst_host : host;
  src_host : host;
  path : path;
  payload : string;
}

let make ?(traffic_class = 0) ?(flow_id = 0) ~proto ~src ~dst ~path payload =
  let src_ia, src_host = src and dst_ia, dst_host = dst in
  { traffic_class; flow_id; proto; dst_ia; src_ia; dst_host; src_host; path; payload }

exception Malformed of string

(* scion-lint: allow hotpath-allocation -- cold error exit, allocates only for packets being rejected *)
let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt
let version = 0
let path_type = function Empty -> 0 | Standard _ -> 1

let host_type = function Ipv4 _ -> 0 | Service _ -> 1

let encode_host w = function
  | Ipv4 a -> Rw.Writer.u32 w (Scion_addr.Ipv4.to_int32 a)
  | Service s -> Rw.Writer.u32_of_int w s

let decode_host r ty =
  match ty with
  | 0 -> Ipv4 (Scion_addr.Ipv4.of_int32 (Rw.Reader.u32 r))
  | 1 -> Service (Rw.Reader.u32_to_int r)
  | _ -> malformed "unknown host address type %d" ty

let encode t =
  let w = Rw.Writer.create () in
  (* Word 0: version(4) traffic_class(8) flow_id(20) *)
  Rw.Writer.u32_of_int w
    ((version lsl 28) lor ((t.traffic_class land 0xFF) lsl 20) lor (t.flow_id land 0xFFFFF));
  let path_bytes = match t.path with Empty -> "" | Standard p -> Path.encode p in
  (* Word 1: next_hdr(8) path_type(8) DT(4)DL(4) ST(4)SL(4) *)
  Rw.Writer.u8 w (proto_to_int t.proto);
  Rw.Writer.u8 w (path_type t.path);
  Rw.Writer.u8 w ((host_type t.dst_host lsl 4) lor 4);
  Rw.Writer.u8 w ((host_type t.src_host lsl 4) lor 4);
  (* Word 2: payload length, path length *)
  Rw.Writer.u16 w (String.length t.payload);
  Rw.Writer.u16 w (String.length path_bytes);
  Scion_addr.Ia.encode w t.dst_ia;
  Scion_addr.Ia.encode w t.src_ia;
  encode_host w t.dst_host;
  encode_host w t.src_host;
  Rw.Writer.raw w path_bytes;
  Rw.Writer.raw w t.payload;
  Rw.Writer.contents w

let decode s =
  let r = Rw.Reader.of_string s in
  try
    let word0 = Rw.Reader.u32_to_int r in
    let ver = (word0 lsr 28) land 0xF in
    if ver <> version then malformed "unsupported version %d" ver;
    let traffic_class = (word0 lsr 20) land 0xFF in
    let flow_id = word0 land 0xFFFFF in
    let proto =
      let v = Rw.Reader.u8 r in
      match proto_of_int v with Some p -> p | None -> malformed "unknown protocol %d" v
    in
    let ptype = Rw.Reader.u8 r in
    let dt = Rw.Reader.u8 r in
    let st = Rw.Reader.u8 r in
    let payload_len = Rw.Reader.u16 r in
    let path_len = Rw.Reader.u16 r in
    let dst_ia = Scion_addr.Ia.decode r in
    let src_ia = Scion_addr.Ia.decode r in
    let dst_host = decode_host r (dt lsr 4) in
    let src_host = decode_host r (st lsr 4) in
    let path_bytes = Rw.Reader.raw r path_len in
    let path =
      match ptype with
      | 0 -> if path_len <> 0 then malformed "empty path with %d path bytes" path_len else Empty
      | 1 -> (
          match Path.decode path_bytes with
          | p -> Standard p
          | exception Path.Malformed m -> malformed "bad path: %s" m)
      | _ -> malformed "unknown path type %d" ptype
    in
    let payload = Rw.Reader.raw r payload_len in
    Rw.Reader.expect_end r;
    { traffic_class; flow_id; proto; dst_ia; src_ia; dst_host; src_host; path; payload }
  with Rw.Truncated -> malformed "truncated packet"

(* Zero-copy wire view. A border router forwarding a packet only mutates
   three header fields (path meta position byte and the current segment
   identifier), so the fast path keeps the packet as the encoded buffer and
   patches it in place instead of decode / mutate / re-encode. The view
   record itself is built once per packet walk; per-hop processing then
   touches only the buffer. *)
module View = struct
  type view = {
    buf : Bytes.t;
    len0 : int;
    len1 : int;
    len2 : int;
    nsegs : int;  (* 0 for an empty (intra-AS) path *)
    total_hops : int;
    hops_off : int;
    payload_off : int;
  }

  (* The address header has fixed-size hosts in this reproduction (DL = SL
     = 4), so every field before the path sits at a constant offset. *)
  let path_off = 36

  let u8 v off = Char.code (Bytes.unsafe_get v.buf off)
  let u16 v off = (u8 v off lsl 8) lor u8 v (off + 1)
  let u32 v off = (u16 v off lsl 16) lor u16 v (off + 2)

  let of_bytes buf =
    let len = Bytes.length buf in
    if len < path_off then malformed "truncated packet";
    let byte off = Char.code (Bytes.get buf off) in
    let ver = byte 0 lsr 4 in
    if ver <> version then malformed "unsupported version %d" ver;
    (match proto_of_int (byte 4) with
    | Some _ -> ()
    | None -> malformed "unknown protocol %d" (byte 4));
    let ptype = byte 5 in
    if byte 6 lsr 4 > 1 then malformed "unknown host address type %d" (byte 6 lsr 4);
    if byte 7 lsr 4 > 1 then malformed "unknown host address type %d" (byte 7 lsr 4);
    let payload_len = (byte 8 lsl 8) lor byte 9 in
    let path_len = (byte 10 lsl 8) lor byte 11 in
    if path_off + path_len + payload_len <> len then malformed "truncated packet";
    let len0, len1, len2, nsegs, total_hops =
      match ptype with
      | 0 ->
          if path_len <> 0 then malformed "empty path with %d path bytes" path_len;
          (0, 0, 0, 0, 0)
      | 1 ->
          if path_len < 4 then malformed "bad path: truncated path";
          let meta =
            (byte path_off lsl 24)
            lor (byte (path_off + 1) lsl 16)
            lor (byte (path_off + 2) lsl 8)
            lor byte (path_off + 3)
          in
          let curr_inf = (meta lsr 30) land 0x3 in
          let curr_hf = (meta lsr 24) land 0x3F in
          let len0 = (meta lsr 12) land 0x3F in
          let len1 = (meta lsr 6) land 0x3F in
          let len2 = meta land 0x3F in
          let nsegs =
            if len0 = 0 then malformed "bad path: segment 0 empty"
            else if len1 = 0 then (if len2 <> 0 then malformed "bad path: segment gap" else 1)
            else if len2 = 0 then 2
            else 3
          in
          let total = len0 + len1 + len2 in
          if path_len <> 4 + (8 * nsegs) + (12 * total) then malformed "bad path: truncated path";
          if curr_inf >= nsegs then malformed "bad path: curr_inf %d out of range" curr_inf;
          if curr_hf >= total then malformed "bad path: curr_hf %d out of range" curr_hf;
          (len0, len1, len2, nsegs, total)
      | _ -> malformed "unknown path type %d" ptype
    in
    {
      buf;
      len0;
      len1;
      len2;
      nsegs;
      total_hops;
      hops_off = path_off + 4 + (8 * nsegs);
      payload_off = path_off + path_len;
    }

  (* [encode] returns a fresh, uniquely-owned string, so viewing it without
     a defensive copy is safe: nothing else can observe the mutation. *)
  let of_packet p = of_bytes (Bytes.unsafe_of_string (encode p))
  let of_string s = of_bytes (Bytes.of_string s)

  (* Total hardening wrapper for untrusted wire bytes: every structural
     rejection comes back as a verdict, never an exception, so a router
     front-end can drop malformed frames without an exception handler on
     its receive loop. *)
  let validate s =
    match of_string s with
    | v -> Ok v
    | exception Malformed reason -> Error reason
  let contents v = Bytes.to_string v.buf
  let to_packet v = decode (Bytes.to_string v.buf)
  let has_path v = v.nsegs > 0

  let dst_isd v = u16 v 12
  let dst_asn v = (u16 v 14 lsl 32) lor u32 v 16

  (* Path position, read live from the meta byte so the buffer stays the
     single source of truth. *)
  let curr_inf v = u8 v path_off lsr 6
  let curr_hf v = u8 v path_off land 0x3F

  let info_off v = path_off + 4 + (8 * curr_inf v)
  let curr_cons_dir v = u8 v (info_off v) land 1 <> 0
  let curr_peer v = u8 v (info_off v) land 2 <> 0
  let curr_seg_id v = u16 v (info_off v + 2)
  let curr_timestamp v = u32 v (info_off v + 4)

  let set_curr_seg_id v x =
    let off = info_off v + 2 in
    Bytes.unsafe_set v.buf off (Char.unsafe_chr ((x lsr 8) land 0xFF));
    Bytes.unsafe_set v.buf (off + 1) (Char.unsafe_chr (x land 0xFF))

  let hop_off v = v.hops_off + (12 * curr_hf v)
  let curr_exp_time v = u8 v (hop_off v + 1)
  let curr_cons_ingress v = u16 v (hop_off v + 2)
  let curr_cons_egress v = u16 v (hop_off v + 4)

  let curr_mac_off v = hop_off v + 6
  let buffer v = v.buf

  let chain_curr_seg_id v =
    let m = curr_mac_off v in
    curr_seg_id v lxor ((u8 v m lsl 8) lor u8 v (m + 1))

  let seg_start v inf = (if inf > 0 then v.len0 else 0) + if inf > 1 then v.len1 else 0
  let seg_len v inf = if inf = 0 then v.len0 else if inf = 1 then v.len1 else v.len2
  let curr_is_seg_first v = curr_hf v = seg_start v (curr_inf v)

  let curr_is_seg_last v =
    let inf = curr_inf v in
    curr_hf v = seg_start v inf + seg_len v inf - 1

  let at_last_hop v = curr_hf v = v.total_hops - 1

  let advance v =
    if at_last_hop v then malformed "advance past last hop";
    let inf = if curr_is_seg_last v then curr_inf v + 1 else curr_inf v in
    let hf = curr_hf v + 1 in
    Bytes.unsafe_set v.buf path_off (Char.unsafe_chr ((inf lsl 6) lor hf))

  let traversal_ingress v = if curr_cons_dir v then curr_cons_ingress v else curr_cons_egress v
  let traversal_egress v = if curr_cons_dir v then curr_cons_egress v else curr_cons_ingress v
end

let reply_skeleton t ~payload =
  {
    t with
    dst_ia = t.src_ia;
    src_ia = t.dst_ia;
    dst_host = t.src_host;
    src_host = t.dst_host;
    path = (match t.path with Empty -> Empty | Standard p -> Standard (Path.reverse p));
    payload;
  }

module Udp = struct
  type datagram = { src_port : int; dst_port : int; data : string }

  let encode d =
    let w = Rw.Writer.create () in
    Rw.Writer.u16 w d.src_port;
    Rw.Writer.u16 w d.dst_port;
    Rw.Writer.u16 w (String.length d.data);
    Rw.Writer.raw w d.data;
    Rw.Writer.contents w

  let decode s =
    let r = Rw.Reader.of_string s in
    try
      let src_port = Rw.Reader.u16 r in
      let dst_port = Rw.Reader.u16 r in
      let len = Rw.Reader.u16 r in
      let data = Rw.Reader.raw r len in
      Rw.Reader.expect_end r;
      { src_port; dst_port; data }
    with Rw.Truncated -> malformed "truncated UDP datagram"
end
