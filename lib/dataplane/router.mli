(** The SCION border router forwarding engine.

    A router belongs to one AS, shares the AS forwarding key, and owns a set
    of external interfaces (each leading to a neighbouring AS). Processing a
    packet is a pure decision: verify the current hop field (expiry, MAC,
    ingress-interface consistency), update the segment identifier, handle
    segment crossovers, and either forward out of an egress interface,
    deliver locally, or drop with a precise reason.

    MAC verification implements the chained-[seg_id] scheme of {!Path},
    including the peering rule: a peer hop field (first hop of a
    construction-direction peering segment, or last hop of a reversed one)
    is verified against the current [seg_id] directly, with no fold. *)

type iface = { ifid : int; remote_ia : Scion_addr.Ia.t; remote_ifid : int }

type t

val create :
  ?metrics:Telemetry.Metrics.registry ->
  ia:Scion_addr.Ia.t ->
  key:Fwkey.t ->
  ifaces:iface list ->
  unit ->
  t
(** Raises [Invalid_argument] on duplicate interface ids or interface id
    0 (reserved for "local").

    With [?metrics], the router registers (eagerly, so snapshots have a
    stable shape) and maintains: [router.forwarded], [router.delivered],
    [router.dropped{reason}], [router.mac_failures],
    [router.scmp_errors{type}] (the SCMP error that each drop would emit),
    and per-interface [router.iface_rx_packets{ifid}] /
    [router.iface_tx_packets{ifid}] — all labelled with the router's
    [ia]. *)

val ia : t -> Scion_addr.Ia.t
val interfaces : t -> iface list
val interface : t -> int -> iface option
val set_interface_state : t -> int -> up:bool -> unit
(** Administrative/link state; packets to a down interface are dropped with
    [Interface_down] (and observability hooks count them). *)

val interface_up : t -> int -> bool

type drop_reason =
  | Not_for_us  (** Empty-path packet whose destination is another AS. *)
  | Invalid_mac
  | Expired_hop of { expired_at : float }
  | Ingress_mismatch of { expected : int; actual : int }
  | Unknown_interface of int
  | Interface_down of int
  | Path_malformed of string

val drop_reason_to_string : drop_reason -> string

type verdict =
  | Deliver of Packet.t  (** Hand to the local end-host (dst host). *)
  | Forward of { egress : int; packet : Packet.t }
  | Drop of drop_reason

val process : t -> now:float -> ingress:int -> Packet.t -> verdict
(** [process t ~now ~ingress pkt] forwards one packet. [ingress] is the
    interface the packet arrived on, 0 meaning "from inside the AS" (an
    end host or gateway). The returned packet shares the (mutated) path. *)

val process_view : t -> now:float -> ingress:int -> Packet.View.view -> int
(** Allocation-free twin of {!process} over a zero-copy wire view: the hop
    field is read and verified in place and the path position / segment id
    are patched back into the buffer, so forwarding a packet allocates
    nothing. The verdict is int-coded to stay flat: [0] delivers to the
    local AS, a positive value forwards out of that egress interface, and a
    negative value drops — the reason is retrieved with {!last_drop}.
    Decision-for-decision identical to {!process} (same checks, same
    counters and telemetry), which the conformance suite pins. *)

val last_drop : t -> drop_reason
(** The reason behind the most recent drop verdict from {!process_view}
    (or {!process}). Only meaningful immediately after a drop. *)

val scmp_answer : t -> drop_reason -> Scmp.t option
(** The SCMP error message this router sends back to the source for a
    drop — the answer a dead-interface traversal gets instead of silence.
    [Interface_down]/[Unknown_interface] yield
    {!Scmp.External_interface_down} carrying this router's IA and the
    interface id, which is exactly what a daemon needs to revoke every
    cached path crossing that interface. [Ingress_mismatch] and
    [Path_malformed] get no reply ([None]): answering an unverifiable
    packet would make the router an amplifier. *)

val configure_scmp_limiter :
  t -> ?metrics:Telemetry.Metrics.registry -> budget_bytes_per_s:float -> unit -> unit
(** Arm the SCMP emission throttle: at most [budget_bytes_per_s] bytes of
    error/echo traffic per one-second window, counted against the
    simulated clock passed to {!scmp_allow}. Without it (the default)
    emission is unlimited, the historic behaviour. With [?metrics] the
    suppressions are published as [scmp.rate_limited{ia}] /
    [scmp.rate_limited_bytes{ia}]. Raises [Invalid_argument] on a
    non-positive budget. *)

val scmp_allow : t -> now:float -> bytes:int -> bool
(** Account [bytes] of would-be SCMP emission against the budget window
    containing [now]; [false] means the message must be suppressed (and
    was counted). Always [true] when no limiter is configured. *)

val scmp_answer_limited : t -> now:float -> drop_reason -> Scmp.t option
(** {!scmp_answer} gated by the throttle: the encoded reply's bytes are
    charged via {!scmp_allow}, and a budget miss turns the answer into
    silence. *)

val scmp_rate_limited : t -> int * int
(** (messages, bytes) suppressed by the throttle so far ([0, 0] when none
    is configured). *)

type counters = {
  mutable forwarded : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable mac_failures : int;
}

val counters : t -> counters
(** Live counters, exposed for the observability story of Section 4.4. *)
