module M = Telemetry.Metrics

type iface = { ifid : int; remote_ia : Scion_addr.Ia.t; remote_ifid : int }

type counters = {
  mutable forwarded : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable mac_failures : int;
}

type drop_reason =
  | Not_for_us
  | Invalid_mac
  | Expired_hop of { expired_at : float }
  | Ingress_mismatch of { expected : int; actual : int }
  | Unknown_interface of int
  | Interface_down of int
  | Path_malformed of string

let drop_reason_to_string = function
  | Not_for_us -> "empty-path packet for another AS"
  | Invalid_mac -> "invalid hop field MAC"
  | Expired_hop { expired_at } -> Printf.sprintf "hop field expired at %.0f" expired_at
  | Ingress_mismatch { expected; actual } ->
      Printf.sprintf "ingress mismatch: hop field says %d, packet arrived on %d" expected actual
  | Unknown_interface i -> Printf.sprintf "no such interface %d" i
  | Interface_down i -> Printf.sprintf "interface %d is down" i
  | Path_malformed m -> Printf.sprintf "malformed path: %s" m

let drop_slug reason =
  match reason with
  | Not_for_us -> "not_for_us"
  | Invalid_mac -> "invalid_mac"
  | Expired_hop _ -> "expired_hop"
  | Ingress_mismatch _ -> "ingress_mismatch"
  | Unknown_interface _ -> "unknown_interface"
  | Interface_down _ -> "interface_down"
  | Path_malformed _ -> "path_malformed"

let drop_slugs =
  [
    "expired_hop";
    "ingress_mismatch";
    "interface_down";
    "invalid_mac";
    "not_for_us";
    "path_malformed";
    "unknown_interface";
  ]

(* The SCMP error a border router would emit for each drop; used as the
   [type] label of [router.scmp_errors]. *)
let scmp_type reason =
  match reason with
  | Invalid_mac -> "invalid_hop_field_mac"
  | Expired_hop _ -> "expired_hop_field"
  | Interface_down _ | Unknown_interface _ -> "external_interface_down"
  | Not_for_us -> "destination_unreachable"
  | Ingress_mismatch _ | Path_malformed _ -> "invalid_path"

let scmp_types =
  [
    "destination_unreachable";
    "expired_hop_field";
    "external_interface_down";
    "invalid_hop_field_mac";
    "invalid_path";
  ]

(* Telemetry handles, created eagerly at [create] so a snapshot of an idle
   router already lists every series (deterministic snapshot shape). *)
type obs = {
  o_forwarded : M.counter;
  o_delivered : M.counter;
  o_dropped : (string * M.counter) list;  (* keyed by drop slug *)
  o_mac_failures : M.counter;
  o_scmp : (string * M.counter) list;  (* keyed by SCMP error type *)
  o_rx : (int * M.counter) list;  (* keyed by interface id *)
  o_tx : (int * M.counter) list;
}

(* SCMP emission throttle: a per-second byte budget, so error traffic — an
   amplification vector when sources are spoofed — is bounded no matter the
   inbound rate. Sits outside the forwarding hotpath. *)
type scmp_limiter = {
  sl_budget : float;  (* bytes per one-second window *)
  mutable sl_window : float;  (* start of the current window *)
  mutable sl_spent : int;
  mutable sl_limited : int;  (* messages suppressed *)
  mutable sl_limited_bytes : int;
  sl_obs : (M.counter * M.counter) option;
}

type t = {
  ia : Scion_addr.Ia.t;
  ia_isd : int;  (* ia, pre-split into ints for allocation-free comparison *)
  ia_asn : int;
  key : Scion_crypto.Cmac.key;
  ifaces : (int, iface) Hashtbl.t;
  iface_state : (int, bool) Hashtbl.t;
  stats : counters;
  obs : obs option;
  mutable last_drop : drop_reason;  (* reason behind the last [drop_v] verdict *)
  mutable scmp_limiter : scmp_limiter option;
}

let make_obs registry ~ia ~ifids =
  let base = [ ("ia", Scion_addr.Ia.to_string ia) ] in
  let counter ?(extra = []) name = M.counter registry ~labels:(base @ extra) name in
  {
    o_forwarded = counter "router.forwarded";
    o_delivered = counter "router.delivered";
    o_dropped =
      List.map (fun slug -> (slug, counter ~extra:[ ("reason", slug) ] "router.dropped")) drop_slugs;
    o_mac_failures = counter "router.mac_failures";
    o_scmp =
      List.map (fun ty -> (ty, counter ~extra:[ ("type", ty) ] "router.scmp_errors")) scmp_types;
    o_rx =
      List.map
        (fun ifid -> (ifid, counter ~extra:[ ("ifid", string_of_int ifid) ] "router.iface_rx_packets"))
        ifids;
    o_tx =
      List.map
        (fun ifid -> (ifid, counter ~extra:[ ("ifid", string_of_int ifid) ] "router.iface_tx_packets"))
        ifids;
  }

let obs_inc entries key =
  match List.assoc_opt key entries with Some c -> M.inc c | None -> ()

let create ?metrics ~ia ~key ~ifaces () =
  let table = Hashtbl.create 8 in
  List.iter
    (fun i ->
      if i.ifid = 0 then invalid_arg "Router.create: interface id 0 is reserved";
      if Hashtbl.mem table i.ifid then
        invalid_arg (Printf.sprintf "Router.create: duplicate interface %d" i.ifid);
      Hashtbl.add table i.ifid i)
    ifaces;
  let ifids = List.sort Int.compare (List.map (fun i -> i.ifid) ifaces) in
  {
    ia;
    ia_isd = ia.Scion_addr.Ia.isd;
    ia_asn = Scion_addr.Ia.asn_to_int ia.Scion_addr.Ia.asn;
    key = Fwkey.cmac_key key;
    ifaces = table;
    iface_state = Hashtbl.create 8;
    stats = { forwarded = 0; delivered = 0; dropped = 0; mac_failures = 0 };
    obs = Option.map (fun registry -> make_obs registry ~ia ~ifids) metrics;
    last_drop = Not_for_us;
    scmp_limiter = None;
  }

let ia t = t.ia
let interfaces t =
  List.rev (Scion_util.Table.fold_sorted (fun _ i acc -> i :: acc) t.ifaces [])
let interface t ifid = Hashtbl.find_opt t.ifaces ifid
let set_interface_state t ifid ~up = Hashtbl.replace t.iface_state ifid up

let interface_up t ifid = Scion_util.Table.find_or ~default:true t.iface_state ifid

type verdict =
  | Deliver of Packet.t
  | Forward of { egress : int; packet : Packet.t }
  | Drop of drop_reason

(* Verify the current hop field and fold/unfold the segment identifier.
   Returns [true] on success; on failure stashes the drop reason in
   [t.last_drop] and returns [false]. The MAC check is fully staged
   ({!Path.verify_mac}): one AES call, no intermediate strings, so a valid
   hop verifies without allocating. *)
(* scion-lint: hotpath -- per-packet hop-MAC verification; the ROADMAP allocation-free fast path lands against this ratchet *)
let verify_current t ~now path =
  let info = Path.current_info path in
  let hop = Path.current_hop path in
  let expiry = Path.hop_expiry info hop in
  if now > expiry then begin
    (* scion-lint: allow hotpath-allocation -- cold drop path: payload-carrying reason built only for rejected packets *)
    t.last_drop <- Expired_hop { expired_at = expiry };
    false
  end
  else begin
    let is_peer_hop =
      info.Path.peer
      &&
      if info.Path.cons_dir then Path.curr_is_seg_first path else Path.curr_is_seg_last path
    in
    if is_peer_hop then
      Path.verify_mac t.key ~seg_id:info.Path.seg_id ~timestamp:info.Path.timestamp hop
      || begin
           t.last_drop <- Invalid_mac;
           false
         end
    else if info.Path.cons_dir then begin
      if Path.verify_mac t.key ~seg_id:info.Path.seg_id ~timestamp:info.Path.timestamp hop then begin
        Path.set_seg_id path (Path.chain_seg_id ~seg_id:info.Path.seg_id ~mac:hop.Path.mac);
        true
      end
      else begin
        t.last_drop <- Invalid_mac;
        false
      end
    end
    else begin
      let beta = Path.chain_seg_id ~seg_id:info.Path.seg_id ~mac:hop.Path.mac in
      if Path.verify_mac t.key ~seg_id:beta ~timestamp:info.Path.timestamp hop then begin
        Path.set_seg_id path beta;
        true
      end
      else begin
        t.last_drop <- Invalid_mac;
        false
      end
    end
  end

(* Count a drop and stash the reason. Shared by the structured and the
   view-based entry points; only the former then wraps the reason in a
   [Drop] verdict. *)
let record_drop t reason =
  t.last_drop <- reason;
  t.stats.dropped <- t.stats.dropped + 1;
  (match reason with Invalid_mac -> t.stats.mac_failures <- t.stats.mac_failures + 1 | _ -> ());
  match t.obs with
  | None -> ()
  | Some o ->
      obs_inc o.o_dropped (drop_slug reason);
      obs_inc o.o_scmp (scmp_type reason);
      (match reason with Invalid_mac -> M.inc o.o_mac_failures | _ -> ())

let drop t reason =
  record_drop t reason;
  Drop reason

let record_deliver t =
  t.stats.delivered <- t.stats.delivered + 1;
  match t.obs with None -> () | Some o -> M.inc o.o_delivered

let deliver t pkt =
  record_deliver t;
  Deliver pkt

let count_forwarded t egress =
  t.stats.forwarded <- t.stats.forwarded + 1;
  match t.obs with
  | None -> ()
  | Some o ->
      M.inc o.o_forwarded;
      obs_inc o.o_tx egress

let forward_out t pkt path egress =
  if egress = 0 then drop t (Path_malformed "no egress interface on a transit hop")
  else if not (interface_up t egress) then drop t (Interface_down egress)
  else if not (Hashtbl.mem t.ifaces egress) then drop t (Unknown_interface egress)
  else begin
    if not (Path.at_last_hop path) then Path.advance path;
    count_forwarded t egress;
    Forward { egress; packet = pkt }
  end

let scmp_answer t = function
  | Interface_down ifid | Unknown_interface ifid ->
      Some (Scmp.External_interface_down { ia = t.ia; ifid })
  | Expired_hop _ -> Some Scmp.Expired_hop_field
  | Invalid_mac -> Some Scmp.Invalid_hop_field_mac
  | Not_for_us -> Some Scmp.Destination_unreachable
  | Ingress_mismatch _ | Path_malformed _ -> None

let configure_scmp_limiter t ?metrics ~budget_bytes_per_s () =
  if not (Float.is_finite budget_bytes_per_s) || budget_bytes_per_s <= 0.0 then
    invalid_arg
      (Printf.sprintf "Router.configure_scmp_limiter: budget must be > 0 (got %g)"
         budget_bytes_per_s);
  let labels = [ ("ia", Scion_addr.Ia.to_string t.ia) ] in
  t.scmp_limiter <-
    Some
      {
        sl_budget = budget_bytes_per_s;
        sl_window = neg_infinity;
        sl_spent = 0;
        sl_limited = 0;
        sl_limited_bytes = 0;
        sl_obs =
          Option.map
            (fun registry ->
              ( M.counter registry ~labels "scmp.rate_limited",
                M.counter registry ~labels "scmp.rate_limited_bytes" ))
            metrics;
      }

let scmp_allow t ~now ~bytes =
  match t.scmp_limiter with
  | None -> true
  | Some sl ->
      if now >= sl.sl_window +. 1.0 then begin
        sl.sl_window <- Float.of_int (int_of_float now);
        sl.sl_spent <- 0
      end;
      if float_of_int (sl.sl_spent + bytes) <= sl.sl_budget then begin
        sl.sl_spent <- sl.sl_spent + bytes;
        true
      end
      else begin
        sl.sl_limited <- sl.sl_limited + 1;
        sl.sl_limited_bytes <- sl.sl_limited_bytes + bytes;
        (match sl.sl_obs with
        | Some (c_msgs, c_bytes) ->
            M.inc c_msgs;
            M.add c_bytes bytes
        | None -> ());
        false
      end

let scmp_answer_limited t ~now reason =
  match scmp_answer t reason with
  | None -> None
  | Some msg ->
      let bytes = String.length (Scmp.encode msg) in
      if scmp_allow t ~now ~bytes then Some msg else None

let scmp_rate_limited t =
  match t.scmp_limiter with
  | None -> (0, 0)
  | Some sl -> (sl.sl_limited, sl.sl_limited_bytes)

(* scion-lint: hotpath -- the per-packet forwarding entry point *)
let process t ~now ~ingress pkt =
  (match t.obs with
  | Some o when ingress <> 0 -> obs_inc o.o_rx ingress
  | Some _ | None -> ());
  match pkt.Packet.path with
  | Packet.Empty ->
      if Scion_addr.Ia.equal pkt.Packet.dst_ia t.ia then deliver t pkt else drop t Not_for_us
  | Packet.Standard path ->
      let hop_ingress = Path.traversal_ingress path in
      (* The ingress interface is checked only for packets arriving from
         outside; locally originated traffic (ingress 0) may start anywhere
         on its first hop field. *)
      if ingress <> 0 && hop_ingress <> ingress then
        (* scion-lint: allow hotpath-allocation -- cold drop path: payload-carrying reason built only for rejected packets *)
        drop t (Ingress_mismatch { expected = hop_ingress; actual = ingress })
      else if not (verify_current t ~now path) then drop t t.last_drop
      else if Path.at_last_hop path then
        (* Terminal hop: delivery is positional, which also covers
           on-path destinations whose cut segment ends mid-tree. *)
        if Scion_addr.Ia.equal pkt.Packet.dst_ia t.ia then deliver t pkt
        else drop t Not_for_us
      else if Path.curr_is_seg_last path && not (Path.current_info path).Path.peer then begin
        (* Segment crossover: this AS joins two segments. Verify the
           next segment's first hop (same AS) and leave through its
           egress; the current hop's own egress is not used. Peering
           segments are excluded — there the segment switch happens on
           the wire, across the peering link. *)
        Path.advance path;
        if not (verify_current t ~now path) then drop t t.last_drop
        else if Path.at_last_hop path then
          (* The joint AS is itself the destination (degenerate
             segment cut): positional delivery applies. *)
          if Scion_addr.Ia.equal pkt.Packet.dst_ia t.ia then deliver t pkt
          else drop t Not_for_us
        else forward_out t pkt path (Path.traversal_egress path)
      end
      else forward_out t pkt path (Path.traversal_egress path)

(* --- zero-copy view fast path ------------------------------------------ *)

module V = Packet.View

let deliver_verdict = 0
let drop_verdict = -1
let last_drop t = t.last_drop

(* Mirror of [verify_current] over the wire buffer: hop fields are read
   straight out of the encoded packet and the MAC is checked in place
   against the staged CMAC block — zero allocation for accepted hops. *)
(* scion-lint: hotpath -- view-based hop-MAC verification, the allocation-free twin of verify_current *)
let verify_current_view t ~now v =
  let timestamp = V.curr_timestamp v in
  let exp_time = V.curr_exp_time v in
  let expiry = Path.hop_expiry_ts ~timestamp ~exp_time in
  if now > expiry then begin
    (* scion-lint: allow hotpath-allocation -- cold drop path: payload-carrying reason built only for rejected packets *)
    t.last_drop <- Expired_hop { expired_at = expiry };
    false
  end
  else begin
    let cons_dir = V.curr_cons_dir v in
    let is_peer_hop =
      V.curr_peer v && if cons_dir then V.curr_is_seg_first v else V.curr_is_seg_last v
    in
    let seg_id = if not is_peer_hop && not cons_dir then V.chain_curr_seg_id v else V.curr_seg_id v in
    Path.stage_mac_fields t.key ~seg_id ~timestamp ~exp_time
      ~cons_ingress:(V.curr_cons_ingress v) ~cons_egress:(V.curr_cons_egress v);
    if
      Scion_crypto.Cmac.verify_staged_bytes t.key ~buf:(V.buffer v) ~off:(V.curr_mac_off v)
        ~len:Path.mac_len
    then begin
      if not is_peer_hop then
        if cons_dir then V.set_curr_seg_id v (V.chain_curr_seg_id v) else V.set_curr_seg_id v seg_id;
      true
    end
    else begin
      t.last_drop <- Invalid_mac;
      false
    end
  end

let forward_out_view t v egress =
  if egress = 0 then begin
    (* scion-lint: allow hotpath-allocation -- cold drop path: payload-carrying reason built only for rejected packets *)
    record_drop t (Path_malformed "no egress interface on a transit hop");
    drop_verdict
  end
  else if not (interface_up t egress) then begin
    (* scion-lint: allow hotpath-allocation -- cold drop path: payload-carrying reason built only for rejected packets *)
    record_drop t (Interface_down egress);
    drop_verdict
  end
  else if not (Hashtbl.mem t.ifaces egress) then begin
    (* scion-lint: allow hotpath-allocation -- cold drop path: payload-carrying reason built only for rejected packets *)
    record_drop t (Unknown_interface egress);
    drop_verdict
  end
  else begin
    if not (V.at_last_hop v) then V.advance v;
    count_forwarded t egress;
    egress
  end

let deliver_view t = record_deliver t; deliver_verdict

let drop_view t reason =
  record_drop t reason;
  drop_verdict

let view_for_us t v = V.dst_isd v = t.ia_isd && V.dst_asn v = t.ia_asn

(* scion-lint: hotpath -- allocation-free forwarding over the wire buffer; decision-for-decision twin of [process] *)
let process_view t ~now ~ingress v =
  (match t.obs with
  | Some o when ingress <> 0 -> obs_inc o.o_rx ingress
  | Some _ | None -> ());
  if not (V.has_path v) then
    if view_for_us t v then deliver_view t else drop_view t Not_for_us
  else begin
    let hop_ingress = V.traversal_ingress v in
    if ingress <> 0 && hop_ingress <> ingress then begin
      (* scion-lint: allow hotpath-allocation -- cold drop path: payload-carrying reason built only for rejected packets *)
      record_drop t (Ingress_mismatch { expected = hop_ingress; actual = ingress });
      drop_verdict
    end
    else if not (verify_current_view t ~now v) then drop_view t t.last_drop
    else if V.at_last_hop v then
      if view_for_us t v then deliver_view t else drop_view t Not_for_us
    else if V.curr_is_seg_last v && not (V.curr_peer v) then begin
      V.advance v;
      if not (verify_current_view t ~now v) then drop_view t t.last_drop
      else if V.at_last_hop v then
        if view_for_us t v then deliver_view t else drop_view t Not_for_us
      else forward_out_view t v (V.traversal_egress v)
    end
    else forward_out_view t v (V.traversal_egress v)
  end

let counters t = t.stats
