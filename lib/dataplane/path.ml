module Rw = Scion_util.Rw

type info = { cons_dir : bool; peer : bool; mutable seg_id : int; timestamp : int32 }
type hop = { exp_time : int; cons_ingress : int; cons_egress : int; mac : string }

type t = {
  mutable curr_inf : int;
  mutable curr_hf : int;
  infos : info array;
  hops : hop array;
  lens : int array;
}

exception Malformed of string

(* Cold error exit: only reached by packets that are already being rejected,
   so its formatting allocations are deliberate. *)
(* scion-lint: allow hotpath-allocation -- cold error exit, allocates only for packets being rejected *)
let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt
let max_exp_time = 255
let mac_len = 6
let max_seg_hops = 63

let seg_lens t = Array.copy t.lens

let create segments =
  let n = List.length segments in
  if n = 0 || n > 3 then malformed "path must have 1-3 segments, got %d" n;
  List.iter
    (fun (_, hops) ->
      let l = List.length hops in
      if l = 0 || l > max_seg_hops then malformed "segment must have 1-%d hops, got %d" max_seg_hops l)
    segments;
  List.iter
    (fun (_, hops) ->
      List.iter
        (fun h ->
          if String.length h.mac <> mac_len then malformed "hop MAC must be %d bytes" mac_len;
          if h.exp_time < 0 || h.exp_time > max_exp_time then malformed "bad exp_time %d" h.exp_time)
        hops)
    segments;
  {
    curr_inf = 0;
    curr_hf = 0;
    infos = Array.of_list (List.map fst segments);
    hops = Array.of_list (List.concat_map snd segments);
    lens = Array.of_list (List.map (fun (_, hops) -> List.length hops) segments);
  }

(* Relative expiry: (exp_time + 1) periods of 24h/256 after the segment
   timestamp, as in the SCION header spec. *)
let expiry_period = 24.0 *. 3600.0 /. 256.0

(* Scalar variant for the packet-view fast path, which reads the timestamp
   as an unsigned int straight off the wire. *)
let hop_expiry_ts ~timestamp ~exp_time =
  (* scion-lint: allow hotpath-allocation -- expiry is float math by design; two boxed floats per packet, pinned by the bench guard *)
  float_of_int timestamp +. (float_of_int (exp_time + 1) *. expiry_period)

let hop_expiry info hop =
  hop_expiry_ts ~timestamp:(Int32.to_int info.timestamp land 0xFFFFFFFF) ~exp_time:hop.exp_time

let mac_input ~seg_id ~timestamp hop =
  let w = Rw.Writer.create () in
  Rw.Writer.u16 w 0;
  Rw.Writer.u16 w seg_id;
  Rw.Writer.u32 w timestamp;
  Rw.Writer.u8 w 0;
  Rw.Writer.u8 w hop.exp_time;
  Rw.Writer.u16 w hop.cons_ingress;
  Rw.Writer.u16 w hop.cons_egress;
  Rw.Writer.u16 w 0;
  Rw.Writer.contents w

(* The MAC input is exactly one AES block, so the hot path stages the 16
   bytes straight into the CMAC key's scratch block and verifies in place:
   no Writer, no intermediate strings, one AES call. *)
let stage_mac_fields key ~seg_id ~timestamp ~exp_time ~cons_ingress ~cons_egress =
  let b = Scion_crypto.Cmac.stage key in
  Bytes.unsafe_set b 0 '\x00';
  Bytes.unsafe_set b 1 '\x00';
  Bytes.unsafe_set b 2 (Char.unsafe_chr ((seg_id lsr 8) land 0xFF));
  Bytes.unsafe_set b 3 (Char.unsafe_chr (seg_id land 0xFF));
  let ts = timestamp land 0xFFFFFFFF in
  Bytes.unsafe_set b 4 (Char.unsafe_chr ((ts lsr 24) land 0xFF));
  Bytes.unsafe_set b 5 (Char.unsafe_chr ((ts lsr 16) land 0xFF));
  Bytes.unsafe_set b 6 (Char.unsafe_chr ((ts lsr 8) land 0xFF));
  Bytes.unsafe_set b 7 (Char.unsafe_chr (ts land 0xFF));
  Bytes.unsafe_set b 8 '\x00';
  Bytes.unsafe_set b 9 (Char.unsafe_chr (exp_time land 0xFF));
  Bytes.unsafe_set b 10 (Char.unsafe_chr ((cons_ingress lsr 8) land 0xFF));
  Bytes.unsafe_set b 11 (Char.unsafe_chr (cons_ingress land 0xFF));
  Bytes.unsafe_set b 12 (Char.unsafe_chr ((cons_egress lsr 8) land 0xFF));
  Bytes.unsafe_set b 13 (Char.unsafe_chr (cons_egress land 0xFF));
  Bytes.unsafe_set b 14 '\x00';
  Bytes.unsafe_set b 15 '\x00'

let verify_mac key ~seg_id ~timestamp hop =
  stage_mac_fields key ~seg_id ~timestamp:(Int32.to_int timestamp) ~exp_time:hop.exp_time
    ~cons_ingress:hop.cons_ingress ~cons_egress:hop.cons_egress;
  Scion_crypto.Cmac.verify_staged_string key ~tag:hop.mac

let compute_mac key ~seg_id ~timestamp hop =
  stage_mac_fields key ~seg_id ~timestamp:(Int32.to_int timestamp) ~exp_time:hop.exp_time
    ~cons_ingress:hop.cons_ingress ~cons_egress:hop.cons_egress;
  let out = Bytes.create mac_len in
  Scion_crypto.Cmac.mac_staged_into key ~dst:out ~off:0 ~len:mac_len;
  Bytes.to_string out

let chain_seg_id ~seg_id ~mac =
  seg_id lxor ((Char.code mac.[0] lsl 8) lor Char.code mac.[1])

let encode t =
  let w = Rw.Writer.create () in
  (* PathMeta: CurrINF(2) CurrHF(6) RSV(6) Seg0Len(6) Seg1Len(6) Seg2Len(6) *)
  let len i = if i < Array.length t.lens then t.lens.(i) else 0 in
  let meta =
    (t.curr_inf lsl 30) lor (t.curr_hf lsl 24) lor (len 0 lsl 12) lor (len 1 lsl 6) lor len 2
  in
  Rw.Writer.u32_of_int w meta;
  Array.iter
    (fun info ->
      let flags = (if info.cons_dir then 1 else 0) lor if info.peer then 2 else 0 in
      Rw.Writer.u8 w flags;
      Rw.Writer.u8 w 0;
      Rw.Writer.u16 w info.seg_id;
      Rw.Writer.u32 w info.timestamp)
    t.infos;
  Array.iter
    (fun hop ->
      Rw.Writer.u8 w 0;
      Rw.Writer.u8 w hop.exp_time;
      Rw.Writer.u16 w hop.cons_ingress;
      Rw.Writer.u16 w hop.cons_egress;
      Rw.Writer.raw w hop.mac)
    t.hops;
  Rw.Writer.contents w

let decode s =
  let r = Rw.Reader.of_string s in
  try
    let meta = Rw.Reader.u32_to_int r in
    let curr_inf = (meta lsr 30) land 0x3 in
    let curr_hf = (meta lsr 24) land 0x3F in
    let lens = [| (meta lsr 12) land 0x3F; (meta lsr 6) land 0x3F; meta land 0x3F |] in
    let nsegs =
      if lens.(0) = 0 then malformed "segment 0 empty"
      else if lens.(1) = 0 then (if lens.(2) <> 0 then malformed "segment gap" else 1)
      else if lens.(2) = 0 then 2
      else 3
    in
    let infos =
      Array.init nsegs (fun _ ->
          let flags = Rw.Reader.u8 r in
          let _rsv = Rw.Reader.u8 r in
          let seg_id = Rw.Reader.u16 r in
          let timestamp = Rw.Reader.u32 r in
          { cons_dir = flags land 1 <> 0; peer = flags land 2 <> 0; seg_id; timestamp })
    in
    let total = lens.(0) + lens.(1) + lens.(2) in
    let hops =
      Array.init total (fun _ ->
          let _flags = Rw.Reader.u8 r in
          let exp_time = Rw.Reader.u8 r in
          let cons_ingress = Rw.Reader.u16 r in
          let cons_egress = Rw.Reader.u16 r in
          let mac = Rw.Reader.raw r mac_len in
          { exp_time; cons_ingress; cons_egress; mac })
    in
    Rw.Reader.expect_end r;
    if curr_inf >= nsegs then malformed "curr_inf %d out of range" curr_inf;
    if curr_hf >= total then malformed "curr_hf %d out of range" curr_hf;
    { curr_inf; curr_hf; infos; hops; lens = Array.sub lens 0 nsegs }
  with Rw.Truncated -> malformed "truncated path"

let encoded_length t = 4 + (8 * Array.length t.infos) + (12 * Array.length t.hops)
let current_info t = t.infos.(t.curr_inf)
let current_hop t = t.hops.(t.curr_hf)

let set_seg_id t v = t.infos.(t.curr_inf).seg_id <- v land 0xFFFF

let seg_start t inf =
  let start = ref 0 in
  for i = 0 to inf - 1 do
    start := !start + t.lens.(i)
  done;
  !start

let num_hops t = Array.length t.hops
let at_last_hop t = t.curr_hf = num_hops t - 1
let curr_is_seg_first t = t.curr_hf = seg_start t t.curr_inf
let curr_is_seg_last t = t.curr_hf = seg_start t t.curr_inf + t.lens.(t.curr_inf) - 1

let advance t =
  if at_last_hop t then malformed "advance past last hop";
  if curr_is_seg_last t then t.curr_inf <- t.curr_inf + 1;
  t.curr_hf <- t.curr_hf + 1

let traversal_interfaces t =
  let hop = current_hop t in
  if (current_info t).cons_dir then (hop.cons_ingress, hop.cons_egress)
  else (hop.cons_egress, hop.cons_ingress)

(* Scalar variants of [traversal_interfaces] for the forwarding fast path:
   no tuple allocation per packet. *)
let traversal_ingress t =
  let hop = current_hop t in
  if (current_info t).cons_dir then hop.cons_ingress else hop.cons_egress

let traversal_egress t =
  let hop = current_hop t in
  if (current_info t).cons_dir then hop.cons_egress else hop.cons_ingress

let reverse t =
  let nsegs = Array.length t.infos in
  let segments =
    List.init nsegs (fun i ->
        let inf = t.infos.(nsegs - 1 - i) in
        let start = seg_start t (nsegs - 1 - i) in
        let hops =
          List.init t.lens.(nsegs - 1 - i) (fun j ->
              t.hops.(start + t.lens.(nsegs - 1 - i) - 1 - j))
        in
        ({ inf with cons_dir = not inf.cons_dir }, hops))
  in
  create segments

let pp fmt t =
  Format.fprintf fmt "path[inf=%d hf=%d segs=%s]" t.curr_inf t.curr_hf
    (String.concat "," (Array.to_list (Array.map string_of_int t.lens)))
