module Rw = Scion_util.Rw

type t =
  | Echo_request of { id : int; seq : int; data : string }
  | Echo_reply of { id : int; seq : int; data : string }
  | Destination_unreachable
  | External_interface_down of { ia : Scion_addr.Ia.t; ifid : int }
  | Expired_hop_field
  | Invalid_hop_field_mac

let type_code = function
  | Echo_request _ -> (128, 0)
  | Echo_reply _ -> (129, 0)
  | Destination_unreachable -> (1, 0)
  | External_interface_down _ -> (5, 0)
  | Expired_hop_field -> (4, 1)
  | Invalid_hop_field_mac -> (4, 2)

let encode t =
  let w = Rw.Writer.create () in
  let ty, code = type_code t in
  Rw.Writer.u8 w ty;
  Rw.Writer.u8 w code;
  Rw.Writer.u16 w 0 (* checksum slot; integrity comes from hop MACs in-sim *);
  (match t with
  | Echo_request { id; seq; data } | Echo_reply { id; seq; data } ->
      Rw.Writer.u16 w id;
      Rw.Writer.u16 w seq;
      Rw.Writer.raw w data
  | External_interface_down { ia; ifid } ->
      Scion_addr.Ia.encode w ia;
      Rw.Writer.u16 w ifid
  | Destination_unreachable | Expired_hop_field | Invalid_hop_field_mac -> ());
  Rw.Writer.contents w

let echo_reply_for s =
  let r = Rw.Reader.of_string s in
  try
    let ty = Rw.Reader.u8 r in
    let code = Rw.Reader.u8 r in
    let _checksum = Rw.Reader.u16 r in
    match (ty, code) with
    | 128, 0 ->
        let id = Rw.Reader.u16 r in
        let seq = Rw.Reader.u16 r in
        let data = Rw.Reader.raw r (Rw.Reader.remaining r) in
        Some (encode (Echo_reply { id; seq; data }))
    | _ -> None
  with Rw.Truncated -> None

let decode s =
  let r = Rw.Reader.of_string s in
  try
    let ty = Rw.Reader.u8 r in
    let code = Rw.Reader.u8 r in
    let _checksum = Rw.Reader.u16 r in
    match (ty, code) with
    | 128, 0 | 129, 0 ->
        let id = Rw.Reader.u16 r in
        let seq = Rw.Reader.u16 r in
        let data = Rw.Reader.raw r (Rw.Reader.remaining r) in
        if ty = 128 then Ok (Echo_request { id; seq; data }) else Ok (Echo_reply { id; seq; data })
    | 1, 0 -> Ok Destination_unreachable
    | 5, 0 ->
        let ia = Scion_addr.Ia.decode r in
        let ifid = Rw.Reader.u16 r in
        Ok (External_interface_down { ia; ifid })
    | 4, 1 -> Ok Expired_hop_field
    | 4, 2 -> Ok Invalid_hop_field_mac
    | _ -> Error (Printf.sprintf "unknown SCMP type/code %d/%d" ty code)
  with Rw.Truncated -> Error "truncated SCMP message"
