(** SCION packet: common header, address header, path, payload.

    The layout follows the SCION header specification (version 0 standard
    header): a fixed common header with flow id and path type, an address
    header carrying destination/source IA and host addresses, the path
    (empty for intra-AS, standard otherwise), then the L4 payload. *)

type host = Ipv4 of Scion_addr.Ipv4.t | Service of int
(** End-host address within an AS: a concrete IPv4 address or a well-known
    anycast service (see {!svc_cs}, {!svc_ds}). *)

val svc_cs : int
(** Control-service anycast address. *)

val svc_ds : int
(** Discovery-service anycast address. *)

val host_equal : host -> host -> bool
val host_to_string : host -> string

type proto = Udp | Scmp | Bfd
(** L4 protocols carried in this reproduction. *)

val proto_to_int : proto -> int

type path = Empty | Standard of Path.t
(** [Empty] is used for intra-AS communication (no inter-AS forwarding). *)

type t = {
  traffic_class : int;
  flow_id : int;  (** 20-bit flow label. *)
  proto : proto;
  dst_ia : Scion_addr.Ia.t;
  src_ia : Scion_addr.Ia.t;
  dst_host : host;
  src_host : host;
  path : path;
  payload : string;
}

val make :
  ?traffic_class:int ->
  ?flow_id:int ->
  proto:proto ->
  src:Scion_addr.Ia.t * host ->
  dst:Scion_addr.Ia.t * host ->
  path:path ->
  string ->
  t

exception Malformed of string

val encode : t -> string
val decode : string -> t
(** Raises [Malformed]. *)

val reply_skeleton : t -> payload:string -> t
(** Swap source and destination and reverse the path — what an end host
    does to answer (e.g. an SCMP echo reply). Raises [Path.Malformed] when
    the path cannot be reversed. *)

(** Zero-copy wire view for the forwarding fast path.

    Forwarding only mutates the path-meta position byte and the current
    segment identifier, so a border router can process the encoded buffer
    in place instead of decode / mutate / re-encode. All accessors are
    allocation-free; validation happens once in [of_bytes]. The buffer is
    the single source of truth: [to_packet]/[contents] at any point yield
    exactly what an on-wire observer would see. *)
module View : sig
  type view

  val of_packet : t -> view
  (** Encode once and view the result (no defensive copy; the encoded
      string is fresh). *)

  val of_bytes : Bytes.t -> view
  (** Validate and view [buf], taking ownership (forwarding mutates it).
      Raises [Malformed] on anything {!decode} would reject structurally. *)

  val of_string : string -> view
  (** Copying variant of {!of_bytes}. *)

  val validate : string -> (view, string) result
  (** Exception-free acceptance of untrusted wire bytes: [Ok] is a view
      over a private copy, [Error] carries the structural rejection
      reason. Exactly the inputs {!decode} accepts validate — truncations,
      bad meta, out-of-range positions and length mismatches all come
      back as [Error], never as a raise. *)

  val to_packet : view -> t
  (** Full decode of the current buffer state (delivery path). *)

  val contents : view -> string
  (** The current wire bytes. *)

  val has_path : view -> bool
  (** [false] for an empty (intra-AS) path. All path accessors below must
      only be called when this is [true]. *)

  val dst_isd : view -> int
  val dst_asn : view -> int

  val curr_inf : view -> int
  val curr_hf : view -> int
  val curr_cons_dir : view -> bool
  val curr_peer : view -> bool
  val curr_seg_id : view -> int
  val curr_timestamp : view -> int
  (** Unsigned 32-bit segment origination time. *)

  val set_curr_seg_id : view -> int -> unit
  val curr_exp_time : view -> int
  val curr_cons_ingress : view -> int
  val curr_cons_egress : view -> int

  val curr_mac_off : view -> int
  (** Byte offset of the current hop's 6-byte MAC in {!buffer}, for staged
      in-place verification. *)

  val buffer : view -> Bytes.t

  val chain_curr_seg_id : view -> int
  (** [Path.chain_seg_id] over the current info/hop, read off the wire. *)

  val curr_is_seg_first : view -> bool
  val curr_is_seg_last : view -> bool
  val at_last_hop : view -> bool

  val advance : view -> unit
  (** In-place {!Path.advance}: patches the path-meta position byte.
      Raises [Malformed] when already at the last hop. *)

  val traversal_ingress : view -> int
  val traversal_egress : view -> int
end

module Udp : sig
  type datagram = { src_port : int; dst_port : int; data : string }

  val encode : datagram -> string
  val decode : string -> datagram
  (** Raises [Malformed]. *)
end
