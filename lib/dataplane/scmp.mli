(** SCMP — the SCION Control Message Protocol, SCION's ICMP analogue.
    The measurement tool of Section 5.4 sends SCMP echo requests; border
    routers emit error messages for unreachable interfaces or expired hop
    fields. Messages are carried as the payload of a packet whose protocol
    is [Scmp]. *)

type t =
  | Echo_request of { id : int; seq : int; data : string }
  | Echo_reply of { id : int; seq : int; data : string }
  | Destination_unreachable
  | External_interface_down of { ia : Scion_addr.Ia.t; ifid : int }
  | Expired_hop_field
  | Invalid_hop_field_mac

val encode : t -> string
val decode : string -> (t, string) result

val echo_reply_for : string -> string option
(** [echo_reply_for payload] is the encoded echo reply answering [payload]
    when it decodes as an echo request (same id/seq/data), and [None] for
    anything else — what an end host's SCMP responder sends back without
    caring about the rest of the message zoo. *)

val type_code : t -> int * int
(** (type, code) pair, mirroring the SCMP numbering: echo request 128,
    echo reply 129, errors in the 1-100 range. *)
