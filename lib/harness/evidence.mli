(** Golden evidence: one uniform [run] over every figure and table of
    EXPERIMENTS.md.

    Each run produces the figure's result table in canonical text (the
    same report output [bench/main.exe] prints, captured through
    {!Telemetry.Log.capture_report}, plus a headline footer rendered
    with {!Scion_util.Table.fmt_float}) and a telemetry snapshot scoped
    to that run ({!Telemetry.Export} JSONL: the instrumented network's
    stack-level series merged with one [exp.<figure>.<key>] gauge per
    headline). Both are byte-stable for the fixed seeds, which is what
    lets {!Golden} check them in and diff them on every test run.

    Figures sharing a dataset (Figures 5-7; Figures 8-10b) share one
    memoised experiment run per process. Evidence scale is reduced
    relative to the full EXPERIMENTS.md run — see {!connectivity_days}
    and {!resilience_runs} — so the tier-1 suite stays fast; the paper's
    shape claims hold at this scale. *)

type t = {
  id : string;  (** Figure id, e.g. ["fig5"]. *)
  title : string;
  table : string;  (** Canonical result table ([test/golden/<id>/table.txt]). *)
  metrics : string;  (** JSONL snapshot ([test/golden/<id>/metrics.jsonl]). *)
}

val figures : (string * string) list
(** [(id, title)] for every artefact, in EXPERIMENTS.md summary-table
    order. *)

val ids : string list

val connectivity_days : float ref
(** Simulated multiping days behind Figures 5-7 (full run: 20). *)

val resilience_runs : int ref
(** Link-failure trials behind Figure 10c (full run: 100). *)

val recovery_trials : int ref
(** Fault-injection trials behind the recovery figure (full run: 40). *)

val pathmon_trials : int ref
(** Soft-degradation trials behind the pathmon figure (full run: 30). *)

val scaling_sizes : int list ref
(** Topogen AS counts swept by the scaling figure (full run adds 3000). *)

val adversary_topogen : int ref
(** Topogen mesh size for the containment figure's second scale (full
    run: 600). *)

val load_loads : float list ref
(** Offered-load multipliers swept by the load figure (full run adds
    2.0). *)

val load_duration : float ref
(** Per-cell simulated seconds for the load figure (full run: 45). *)

val load_topogen : int ref
(** Topogen mesh size for the load figure's second scale (full run:
    600). *)

val use_full_scale : unit -> unit
(** Switch every scale knob to the full EXPERIMENTS.md campaign (20 days,
    100 failure runs, 40 recovery trials, 30 pathmon trials, scaling up
    to 3000 ASes) — the [@golden-full] tier.
    Raises [Invalid_argument] if a scale-dependent dataset has already
    been memoised in this process, since that would mix scales. *)

val run : string -> t
(** [run id] regenerates the evidence for one figure. Dataset runs are
    memoised per process, so regenerating all of Figures 5-7 costs one
    connectivity campaign. Raises [Invalid_argument] on an unknown id. *)
