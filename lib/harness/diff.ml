(* Line-based unified diff, for readable golden-test failure messages.
   Classic LCS dynamic programme over the middle section left after
   stripping the common prefix and suffix; a size guard degrades
   pathological inputs to a single replace hunk so the DP table stays
   bounded. *)

type op = Keep of string | Del of string | Add of string

(* Splitting "a\nb\n" yields ["a"; "b"]. A missing final newline is made
   visible as an extra pseudo-line, the way diff(1) annotates it, so
   "a\nb" and "a\nb\n" never compare equal line-wise. *)
let lines_of s =
  if String.length s = 0 then []
  else
    let raw = String.split_on_char '\n' s in
    let rec drop_last_empty = function
      | [ "" ] -> []
      | x :: rest -> x :: drop_last_empty rest
      | [] -> []
    in
    if s.[String.length s - 1] = '\n' then drop_last_empty raw
    else raw @ [ "\\ No newline at end of file" ]

let common_prefix a b =
  let n = min (Array.length a) (Array.length b) in
  let i = ref 0 in
  while !i < n && String.equal a.(!i) b.(!i) do
    incr i
  done;
  !i

(* Longest common suffix of a and b that does not overlap the first
   [prefix] lines of either. *)
let common_suffix ~prefix a b =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb - prefix in
  let i = ref 0 in
  while !i < n && String.equal a.(la - 1 - !i) b.(lb - 1 - !i) do
    incr i
  done;
  !i

(* Above this many DP cells, fall back to delete-all/add-all for the
   middle section. Goldens are a few thousand lines at most, so the
   guard only fires on degenerate inputs. *)
let max_dp_cells = 4_000_000

let lcs_ops a b =
  let m = Array.length a and n = Array.length b in
  if m * n > max_dp_cells then
    Array.to_list (Array.map (fun l -> Del l) a) @ Array.to_list (Array.map (fun l -> Add l) b)
  else begin
    (* dp.(i).(j) = LCS length of a[i..] and b[j..]. *)
    let dp = Array.make_matrix (m + 1) (n + 1) 0 in
    for i = m - 1 downto 0 do
      for j = n - 1 downto 0 do
        dp.(i).(j) <-
          (if String.equal a.(i) b.(j) then dp.(i + 1).(j + 1) + 1
           else max dp.(i + 1).(j) dp.(i).(j + 1))
      done
    done;
    let ops = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < m || !j < n do
      if !i < m && !j < n && String.equal a.(!i) b.(!j) then begin
        ops := Keep a.(!i) :: !ops;
        incr i;
        incr j
      end
      else if !i < m && (!j = n || dp.(!i + 1).(!j) >= dp.(!i).(!j + 1)) then begin
        (* On ties prefer the deletion, so hunks read -old then +new. *)
        ops := Del a.(!i) :: !ops;
        incr i
      end
      else begin
        ops := Add b.(!j) :: !ops;
        incr j
      end
    done;
    List.rev !ops
  end

let unified ?(context = 3) ?(label_a = "expected") ?(label_b = "actual") sa sb =
  if String.equal sa sb then None
  else begin
    let a = Array.of_list (lines_of sa) and b = Array.of_list (lines_of sb) in
    let p = common_prefix a b in
    let s = common_suffix ~prefix:p a b in
    let keeps arr lo len = Array.to_list (Array.map (fun l -> Keep l) (Array.sub arr lo len)) in
    let ops =
      Array.of_list
        (keeps a 0 p
        @ lcs_ops (Array.sub a p (Array.length a - p - s)) (Array.sub b p (Array.length b - p - s))
        @ keeps a (Array.length a - s) s)
    in
    let n = Array.length ops in
    (* A line belongs to a hunk if it is a change, or a kept line within
       [context] of one. *)
    let in_hunk = Array.make n false in
    Array.iteri
      (fun i op ->
        match op with
        | Keep _ -> ()
        | Del _ | Add _ ->
            for j = max 0 (i - context) to min (n - 1) (i + context) do
              in_hunk.(j) <- true
            done)
      ops;
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "--- %s\n+++ %s\n" label_a label_b);
    let old_line = ref 1 and new_line = ref 1 in
    let i = ref 0 in
    while !i < n do
      if not in_hunk.(!i) then begin
        (* Outside hunks only kept lines occur. *)
        incr old_line;
        incr new_line;
        incr i
      end
      else begin
        let hunk_end = ref !i in
        while !hunk_end < n && in_hunk.(!hunk_end) do
          incr hunk_end
        done;
        let old_start = !old_line and new_start = !new_line in
        let body = Buffer.create 128 in
        for k = !i to !hunk_end - 1 do
          match ops.(k) with
          | Keep l ->
              Buffer.add_string body (" " ^ l ^ "\n");
              incr old_line;
              incr new_line
          | Del l ->
              Buffer.add_string body ("-" ^ l ^ "\n");
              incr old_line
          | Add l ->
              Buffer.add_string body ("+" ^ l ^ "\n");
              incr new_line
        done;
        Buffer.add_string buf
          (Printf.sprintf "@@ -%d,%d +%d,%d @@\n" old_start (!old_line - old_start) new_start
             (!new_line - new_start));
        Buffer.add_buffer buf body;
        i := !hunk_end
      end
    done;
    Some (Buffer.contents buf)
  end
