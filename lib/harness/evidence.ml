(* Golden evidence for every figure and table of EXPERIMENTS.md: the
   rendered result table in canonical text plus a telemetry snapshot
   scoped to that figure's run, both byte-stable for the fixed seeds.

   Figures that share a dataset (the connectivity campaign behind
   Figures 5-7, the epoch sweep behind Figures 8-10b) share one memoised
   run per process — the stack-level samples are identical across those
   figures by construction, and each figure adds its own
   [exp.<figure>.<key>] headline gauges on top.

   Evidence scale is deliberately smaller than the full EXPERIMENTS.md
   run so the tier-1 golden suite stays fast: 4 simulated days of
   multiping instead of 20 (the shape claims survive, the wall-clock
   drops ~5x) and 25 link-failure runs instead of 100. The multipath
   sweep keeps its full per_origin = 16: fewer origins would drop the
   best pair below the paper's ">100 paths" claim. *)

module M = Telemetry.Metrics
module Export = Telemetry.Export
module Log = Telemetry.Log
module Table = Scion_util.Table

type t = { id : string; title : string; table : string; metrics : string }

let figures =
  [
    ("table1", "Table 1: SCIERA PoPs and collaborating networks");
    ("fig3", "Figure 3: deployment timeline and per-AS effort");
    ("fig4", "Figure 4: end-host bootstrapping latency per platform");
    ("table2", "Table 2: hinting mechanisms vs network environment");
    ("app_effort", "Section 5.2: application enablement effort");
    ("fig5", "Figure 5: SCION vs IP RTT distributions");
    ("fig6", "Figure 6: per-pair RTT ratio CDF");
    ("fig7", "Figure 7: RTT ratio over time");
    ("fig8", "Figure 8: maximum active paths per AS pair");
    ("fig9", "Figure 9: median deviation from maximum paths");
    ("fig10a", "Figure 10a: latency inflation CDF");
    ("fig10b", "Figure 10b: path disjointness CDF");
    ("fig10c", "Figure 10c: connectivity under link failure");
    ("survey", "Section 5.6: operator survey");
    ("isd_evolution", "Section 3.3: ISD evolution blast radius");
    ("recovery", "Self-healing: time to recover from link failure");
    ("pathmon", "Pathmon: adaptive vs static selection under soft degradation");
    ("scaling", "Scaling: synthetic Topogen meshes vs the 29-AS deployment");
    ("load", "Load: goodput and FCT vs offered load — multipath vs single-path endpoints");
    ("containment", "Containment: adversarial chaos — blast radius and time to containment");
  ]

let ids = List.map fst figures

let title_of id =
  match List.assoc_opt id figures with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Evidence.run: unknown figure %S" id)

(* --- Evidence scale (documented in EXPERIMENTS.md, "Recording") ------- *)

let connectivity_days = ref 4.0
let resilience_runs = ref 25
let recovery_trials = ref 12
let pathmon_trials = ref 10
let scaling_sizes = ref [ 100; 300; 1000 ]
let adversary_topogen = ref 300
let load_loads = ref [ 0.3; 0.6; 1.0; 1.5 ]
let load_duration = ref 20.0
let load_topogen = ref 300

(* --- Memoised datasets ------------------------------------------------ *)

let connectivity =
  lazy
    (let obs = Sciera.Obs.create () in
     let r = Sciera.Exp_connectivity.run ~days:!connectivity_days ~telemetry:obs () in
     (r, Sciera.Obs.samples obs))

let multipath =
  lazy
    (let obs = Sciera.Obs.create () in
     let r = Sciera.Exp_multipath.run ~telemetry:obs () in
     (r, Sciera.Obs.samples obs))

let resilience =
  lazy
    (let obs = Sciera.Obs.create () in
     let r = Sciera.Exp_resilience.run ~runs:!resilience_runs ~telemetry:obs () in
     (r, Sciera.Obs.samples obs))

let recovery_data =
  lazy
    (let obs = Sciera.Obs.create () in
     let r = Sciera.Exp_recovery.run ~trials:!recovery_trials ~telemetry:obs () in
     (r, Sciera.Obs.samples obs))

let pathmon_data =
  lazy
    (let obs = Sciera.Obs.create () in
     let r = Sciera.Exp_pathmon.run ~trials:!pathmon_trials ~telemetry:obs () in
     (r, Sciera.Obs.samples obs))

(* No stack telemetry: the mesh registers per-AS labelled series (beacon
   stores, border routers), which at N=1000 would explode the metrics
   snapshot. Scale observability flows through Mesh accessors into the
   rows and headline gauges instead. *)
let scaling_data = lazy (Sciera.Exp_scaling.run ~sizes:!scaling_sizes ())

(* Stack telemetry only for the 29-AS mesh (the topogen-scale mesh inside
   the experiment stays telemetry-less — per-AS series, as for scaling). *)
let load_data =
  lazy
    (let obs = Sciera.Obs.create () in
     let r =
       Sciera.Exp_load.run ~loads:!load_loads ~duration_s:!load_duration
         ~topogen_ases:!load_topogen ~telemetry:obs ()
     in
     (r, Sciera.Obs.samples obs))

(* Runs LAST in figure order and keeps its meshes telemetry-less for the
   same per-AS-series reason as scaling; the [exp.adversary.*] aggregate
   counters flow through a private Obs bundle instead. Running last also
   means its (adversarial) use of the process-wide signature cache cannot
   reorder any earlier figure's hit/miss sequence. *)
let adversary_data =
  lazy
    (let obs = Sciera.Obs.create () in
     let r = Sciera.Exp_adversary.run ~topogen_ases:!adversary_topogen ~telemetry:obs () in
     (r, Sciera.Obs.samples obs))

let bootstrap =
  lazy
    (let obs = Sciera.Obs.create () in
     let r = Sciera.Exp_bootstrap.run ~telemetry:obs () in
     (r, Sciera.Obs.samples obs))

let isd_evolution =
  lazy
    (let obs = Sciera.Obs.create () in
     let r = Sciera.Exp_isd_evolution.run ~telemetry:obs () in
     (r, Sciera.Obs.samples obs))

(* Opting into full scale after a dataset has been memoised would silently
   mix scales within one process, so it is a programming error. *)
let use_full_scale () =
  if
    Lazy.is_val connectivity || Lazy.is_val resilience || Lazy.is_val recovery_data
    || Lazy.is_val pathmon_data || Lazy.is_val scaling_data || Lazy.is_val adversary_data
    || Lazy.is_val load_data
  then invalid_arg "Evidence.use_full_scale: a dataset is already memoised at evidence scale";
  connectivity_days := 20.0;
  resilience_runs := 100;
  recovery_trials := 40;
  pathmon_trials := 30;
  scaling_sizes := [ 100; 300; 1000; 3000 ];
  adversary_topogen := 600;
  load_loads := [ 0.3; 0.6; 1.0; 1.5; 2.0 ];
  load_duration := 45.0;
  load_topogen := 600

(* --- Assembly --------------------------------------------------------- *)

let sample_key (s : M.sample) = (s.M.sample_name, s.M.sample_labels)

let headline_table headline =
  Table.render ~header:[ "headline"; "value" ]
    ~rows:(List.map (fun (k, v) -> [ k; Table.fmt_float v ]) headline)

(* [headline] becomes both the table footer (rendered with the canonical
   %.6g of Table.fmt_float) and one exp.<id>.<key> gauge per entry in the
   metrics snapshot, merged with the dataset's stack-level samples. *)
let make ~id ~samples:stack_samples ~headline print =
  let title = title_of id in
  let reg = M.create () in
  (* scion-lint: allow telemetry-registry -- exp.<id>.<key> gauges are scoped to one figure's private registry and pinned by the checked-in goldens, not the tree-wide registry *)
  List.iter (fun (k, v) -> M.set (M.gauge reg (Printf.sprintf "exp.%s.%s" id k)) v) headline;
  let all = List.sort (fun a b -> compare (sample_key a) (sample_key b)) (stack_samples @ M.snapshot reg) in
  let body, () = Log.capture_report print in
  let table =
    Printf.sprintf "== %s ==\n%s-- headline (canonical %%.6g floats) --\n%s" title body
      (headline_table headline)
  in
  { id; title; table; metrics = Export.samples_to_json all }

(* --- Per-figure runners ----------------------------------------------- *)

let print_table1 () =
  Table.print ~header:[ "Location"; "Peering NRENs"; "Partner Networks" ]
    ~rows:(List.map (fun (a, b, c) -> [ a; b; c ]) Sciera.Topology.pops);
  Log.out "%d ASes in the modelled deployment, %d Layer-2 links\n"
    (List.length Sciera.Topology.ases)
    (List.length Sciera.Topology.links)

let table1 () =
  make ~id:"table1" ~samples:[]
    ~headline:
      [
        ("pops", float_of_int (List.length Sciera.Topology.pops));
        ("ases", float_of_int (List.length Sciera.Topology.ases));
        ("links", float_of_int (List.length Sciera.Topology.links));
      ]
    print_table1

let fig3 () =
  let open Sciera.Deployment in
  (* Learning-curve headline: relative effort drop from the first to the
     last deployment of each kind with at least two instances. *)
  let drop k =
    let efforts =
      List.filter_map (fun s -> if s.event.kind = k then Some s.effort else None) scored_timeline
    in
    match efforts with
    | first :: (_ :: _ as rest) -> (
        match List.rev rest with last :: _ -> Some (1.0 -. (last /. first)) | [] -> None)
    | _ -> None
  in
  let kinds =
    [
      (Core_backbone, "core_backbone_effort_drop");
      (Nren_attach, "nren_attach_effort_drop");
      (Campus_vlan, "campus_vlan_effort_drop");
      (Reused_circuit, "reused_circuit_effort_drop");
    ]
  in
  let drops = List.filter_map (fun (k, key) -> Option.map (fun d -> (key, d)) (drop k)) kinds in
  make ~id:"fig3" ~samples:[]
    ~headline:(("deployments", float_of_int (List.length timeline)) :: drops)
    print_fig3

let fig4 () =
  let r, samples = Lazy.force bootstrap in
  let per_os =
    List.map
      (fun (s : Sciera.Exp_bootstrap.os_summary) ->
        ( String.lowercase_ascii (Scion_endhost.Bootstrap.os_name s.os) ^ "_total_median_ms",
          s.total.Scion_util.Stats.med ))
      r.Sciera.Exp_bootstrap.per_os
  in
  make ~id:"fig4" ~samples
    ~headline:
      (("runs_per_mechanism", float_of_int r.Sciera.Exp_bootstrap.runs_per_mechanism)
      :: ("all_medians_under_ms", r.Sciera.Exp_bootstrap.all_medians_under_ms)
      :: per_os)
    (fun () -> Sciera.Exp_bootstrap.print_fig4 r)

let table2 () =
  make ~id:"table2" ~samples:[]
    ~headline:[ ("mechanisms", float_of_int (List.length Scion_endhost.Hints.all)) ]
    Sciera.Exp_bootstrap.print_table2

let app_effort () =
  let total =
    List.fold_left (fun acc c -> acc + c.Sciera.App_effort.loc_delta) 0 Sciera.App_effort.cases
  in
  make ~id:"app_effort" ~samples:[]
    ~headline:
      [
        ("cases", float_of_int (List.length Sciera.App_effort.cases));
        ("total_loc_delta", float_of_int total);
      ]
    Sciera.App_effort.print_app_effort

let fig5 () =
  let r, samples = Lazy.force connectivity in
  let open Sciera.Exp_connectivity in
  make ~id:"fig5" ~samples
    ~headline:
      [
        ("scion_median_ms", r.scion_median);
        ("ip_median_ms", r.ip_median);
        ("scion_p90_ms", r.scion_p90);
        ("ip_p90_ms", r.ip_p90);
        ("kept_scion_pings", float_of_int (Array.length r.scion_rtts));
        ("kept_ip_pings", float_of_int (Array.length r.ip_rtts));
      ]
    (fun () -> print_fig5 r)

let fig6 () =
  let r, samples = Lazy.force connectivity in
  let open Sciera.Exp_connectivity in
  make ~id:"fig6" ~samples
    ~headline:
      [
        ("pairs", float_of_int (List.length r.pair_ratios));
        ("frac_pairs_faster_on_scion", r.frac_pairs_faster_on_scion);
        ("frac_pairs_inflation_le_25pct", r.frac_pairs_inflation_le_25pct);
      ]
    (fun () -> print_fig6 r)

let fig7 () =
  let r, samples = Lazy.force connectivity in
  let open Sciera.Exp_connectivity in
  let ratios = List.map snd r.timeseries in
  let rmin = List.fold_left min infinity ratios in
  let rmax = List.fold_left max neg_infinity ratios in
  make ~id:"fig7" ~samples
    ~headline:
      [
        ("buckets", float_of_int (List.length r.timeseries));
        ("ratio_min", rmin);
        ("ratio_max", rmax);
      ]
    (fun () -> print_fig7 r)

let fig8 () =
  let r, samples = Lazy.force multipath in
  let open Sciera.Exp_multipath in
  let _, _, best = r.best_pair in
  make ~id:"fig8" ~samples
    ~headline:
      [ ("min_paths", float_of_int r.min_paths); ("best_pair_paths", float_of_int best) ]
    (fun () -> print_fig8 r)

let fig9 () =
  let r, samples = Lazy.force multipath in
  let open Sciera.Exp_multipath in
  let maxdev =
    Array.fold_left (fun acc row -> Array.fold_left max acc row) 0 r.median_deviation
  in
  make ~id:"fig9" ~samples
    ~headline:[ ("max_median_deviation", float_of_int maxdev) ]
    (fun () -> print_fig9 r)

let fig10a () =
  let r, samples = Lazy.force multipath in
  let open Sciera.Exp_multipath in
  make ~id:"fig10a" ~samples
    ~headline:
      [
        ("frac_inflation_close_to_1", r.frac_inflation_close_to_1);
        ("frac_inflation_le_1_2", r.frac_inflation_le_1_2);
      ]
    (fun () -> print_fig10a r)

let fig10b () =
  let r, samples = Lazy.force multipath in
  let open Sciera.Exp_multipath in
  make ~id:"fig10b" ~samples
    ~headline:
      [
        ("frac_fully_disjoint", r.frac_fully_disjoint);
        ("frac_disjointness_ge_0_7", r.frac_disjointness_ge_0_7);
      ]
    (fun () -> print_fig10b r)

let fig10c () =
  let r, samples = Lazy.force resilience in
  let open Sciera.Exp_resilience in
  let m20, s20 = connectivity_at r 0.2 in
  make ~id:"fig10c" ~samples
    ~headline:
      [
        ("runs", float_of_int r.runs);
        ("multipath_at_20pct", m20);
        ("singlepath_at_20pct", s20);
      ]
    (fun () -> print_fig10c r)

let survey () =
  let a = Sciera.Survey.aggregates in
  make ~id:"survey" ~samples:[]
    ~headline:
      [
        ("respondents", float_of_int a.Sciera.Survey.n);
        ("setup_within_month_pct", a.Sciera.Survey.setup_within_month);
        ("opex_comparable_or_lower_pct", a.Sciera.Survey.opex_comparable_or_lower);
        ("workload_under_10_pct", a.Sciera.Survey.workload_under_10);
      ]
    Sciera.Survey.print_survey

let isd () =
  let r, samples = Lazy.force isd_evolution in
  let open Sciera.Exp_isd_evolution in
  make ~id:"isd_evolution" ~samples
    ~headline:
      [
        ("single_avg_blast", r.single_avg_blast);
        ("regional_avg_blast", r.regional_avg_blast);
        ("regional_domains", float_of_int (List.length r.regional_domains));
      ]
    (fun () -> print_report r)

let recovery () =
  let r, samples = Lazy.force recovery_data in
  let open Sciera.Exp_recovery in
  make ~id:"recovery" ~samples
    ~headline:
      [
        ("trials", float_of_int r.trials);
        ("healed_median_s", r.healed.median_s);
        ("baseline_median_s", r.baseline.median_s);
        ("healed_p90_s", r.healed.p90_s);
        ("healed_back_on_preferred", r.healed.returned_to_preferred);
        ("baseline_back_on_preferred", r.baseline.returned_to_preferred);
        ("revocations", float_of_int r.revocations);
        ("evicted_paths", float_of_int r.evicted_paths);
        ("reprobes", float_of_int r.reprobes);
      ]
    (fun () -> print_recovery r)

let pathmon () =
  let r, samples = Lazy.force pathmon_data in
  let open Sciera.Exp_pathmon in
  make ~id:"pathmon" ~samples
    ~headline:
      [
        ("trials", float_of_int r.trials);
        ("adaptive_median_degraded_s", r.adaptive.median_degraded_s);
        ("static_median_degraded_s", r.static_.median_degraded_s);
        ("adaptive_p90_degraded_s", r.adaptive.p90_degraded_s);
        ("adaptive_median_inflation", r.adaptive.median_inflation);
        ("static_median_inflation", r.static_.median_inflation);
        ("adaptive_back_on_preferred", r.adaptive.returned_to_preferred);
        ("soft_switches", float_of_int r.adaptive.soft_switches);
        ("probes", float_of_int r.adaptive.probes);
      ]
    (fun () -> print_pathmon r)

let scaling () =
  let r = Lazy.force scaling_data in
  let open Sciera.Exp_scaling in
  let slug label = String.map (fun c -> if c = '-' then '_' else c) label in
  let per_row =
    List.concat_map
      (fun w ->
        let key k = Printf.sprintf "%s_%s" (slug w.label) k in
        [
          (key "ases", float_of_int w.ases);
          (key "reachable_pct", w.reachable_pct);
          (key "delivered_pct", w.delivered_pct);
          (key "mean_paths", w.mean_paths);
          (key "mean_stretch", w.mean_stretch);
          (key "events", float_of_int w.events);
          (key "peak_state_bytes", float_of_int w.peak_state_bytes);
          (key "beacon_sends", float_of_int w.beacon_sends);
        ])
      r.rows
  in
  make ~id:"scaling" ~samples:[]
    ~headline:
      (("sizes", float_of_int (List.length r.sizes))
      :: ("pairs_per_size", float_of_int r.pairs_per_size)
      :: per_row)
    (fun () -> print_scaling r)

let load () =
  let r, samples = Lazy.force load_data in
  let open Sciera.Exp_load in
  let slug s = String.map (fun ch -> if ch = '-' then '_' else ch) s in
  let per_cell =
    List.concat_map
      (fun c ->
        let key k =
          Printf.sprintf "%s_%s_%s_%s" (slug c.c_scale)
            (slug (arm_name c.c_arm))
            (slug (Table.fmt_float c.c_load))
            k
        in
        [
          (key "goodput_mbps", c.c_goodput_mbps);
          (key "p99_fct_s", c.c_p99_fct_s);
          (key "reject_pct", c.c_reject_pct);
          (key "fg_drop_pct", c.c_fg_drop_pct);
        ])
      r.cells
  in
  make ~id:"load" ~samples
    ~headline:
      (("loads", float_of_int (List.length r.loads))
      :: ("cell_duration_s", r.duration_s)
      :: ("mp_goodput_gain", r.mp_goodput_gain)
      :: ("mp_p99_fct_ratio", r.mp_p99_fct_ratio)
      :: per_cell)
    (fun () -> print_load r)

let containment () =
  let r, samples = Lazy.force adversary_data in
  let open Sciera.Exp_adversary in
  let slug s = String.map (fun ch -> if ch = '-' then '_' else ch) s in
  let per_cell =
    List.concat_map
      (fun c ->
        let key k =
          Printf.sprintf "%s_%s_%s_%s" (slug (attack_name c.c_attack)) (slug c.c_scale)
            (if c.c_defended then "on" else "off")
            k
        in
        [ (key "blast", blast_scalar c); (key "contain_s", c.c_contain_s) ])
      r.cells
  in
  make ~id:"containment" ~samples
    ~headline:
      (("classes_contained", float_of_int r.classes_contained)
      :: ("quarantine_events", float_of_int r.quarantine_events)
      :: ("quarantine_drops", float_of_int r.quarantine_drops)
      :: ("scmp_suppressed", float_of_int r.scmp_suppressed)
      :: ("poisoned_revocations", float_of_int r.poisoned_revocations)
      :: ("rotations", float_of_int r.rotations)
      :: per_cell)
    (fun () -> print_containment r)

let run id =
  match id with
  | "table1" -> table1 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "table2" -> table2 ()
  | "app_effort" -> app_effort ()
  | "fig5" -> fig5 ()
  | "fig6" -> fig6 ()
  | "fig7" -> fig7 ()
  | "fig8" -> fig8 ()
  | "fig9" -> fig9 ()
  | "fig10a" -> fig10a ()
  | "fig10b" -> fig10b ()
  | "fig10c" -> fig10c ()
  | "survey" -> survey ()
  | "isd_evolution" -> isd ()
  | "recovery" -> recovery ()
  | "pathmon" -> pathmon ()
  | "scaling" -> scaling ()
  | "load" -> load ()
  | "containment" -> containment ()
  | other -> invalid_arg (Printf.sprintf "Evidence.run: unknown figure %S" other)
