(** Minimal line-based unified diff.

    Powers the golden-evidence regression messages: when a regenerated
    table or metrics snapshot stops matching its checked-in golden, the
    failure shows [-expected]/[+actual] hunks instead of two opaque
    blobs. Missing trailing newlines are made visible the way diff(1)
    annotates them, so byte equality and line equality coincide. *)

val unified :
  ?context:int -> ?label_a:string -> ?label_b:string -> string -> string -> string option
(** [unified a b] is [None] when the strings are byte-identical, and
    [Some diff] otherwise — a unified diff with [context] kept lines
    (default 3) around each change and a [--- label_a] / [+++ label_b]
    header. Worst-case inputs degrade to a single replace hunk rather
    than an unbounded LCS table. *)
