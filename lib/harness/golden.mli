(** Checked-in golden evidence under [test/golden/<figure>/].

    Each figure owns two files: [table.txt] (canonical result table) and
    [metrics.jsonl] (telemetry snapshot). {!check} byte-compares them
    against freshly regenerated {!Evidence}; {!promote} rewrites them —
    the only sanctioned way to update goldens
    ([dune exec bench/main.exe -- golden --promote]). *)

type file = {
  figure : string;
  path : string;
  diff : string option;  (** [None] when the golden matches byte-for-byte. *)
}

val paths : dir:string -> string -> string * string
(** [(table_path, metrics_path)] for a figure id under [dir]. *)

val check_figure : dir:string -> string -> file list
(** Regenerate one figure's evidence and diff it against its two golden
    files. A missing golden reports a diff pointing at the promote
    command. Dataset memoisation in {!Evidence} makes checking several
    figures of one dataset cost a single experiment run. *)

val check : dir:string -> unit -> file list
(** {!check_figure} over every figure, in EXPERIMENTS.md order. *)

val stale : file list -> file list
(** The files whose diff is non-empty. *)

type status = Created | Updated | Unchanged

val status_to_string : status -> string

val promote : dir:string -> unit -> (string * status) list
(** Regenerate everything and (re)write the golden files, creating
    directories as needed; files already matching are left untouched. *)
