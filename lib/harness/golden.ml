(* Checked-in golden evidence: compare or promote test/golden/<figure>/
   {table.txt,metrics.jsonl} against freshly regenerated Evidence. *)

module Export = Telemetry.Export

type file = { figure : string; path : string; diff : string option }

let table_basename = "table.txt"
let metrics_basename = "metrics.jsonl"
let promote_hint = "dune exec bench/main.exe -- golden --promote"

let paths ~dir id =
  let d = Filename.concat dir id in
  (Filename.concat d table_basename, Filename.concat d metrics_basename)

let read_file path =
  if Sys.file_exists path then Some (In_channel.with_open_bin path In_channel.input_all)
  else None

let check_figure ~dir id =
  let e = Evidence.run id in
  let against path fresh =
    match read_file path with
    | None ->
        {
          figure = id;
          path;
          diff = Some (Printf.sprintf "missing golden file %s (run `%s`)\n" path promote_hint);
        }
    | Some golden ->
        {
          figure = id;
          path;
          diff = Diff.unified ~label_a:(path ^ " (golden)") ~label_b:"regenerated" golden fresh;
        }
  in
  let table_path, metrics_path = paths ~dir id in
  [ against table_path e.Evidence.table; against metrics_path e.Evidence.metrics ]

let check ~dir () = List.concat_map (fun (id, _) -> check_figure ~dir id) Evidence.figures
let stale files = List.filter (fun f -> Option.is_some f.diff) files

type status = Created | Updated | Unchanged

let status_to_string = function
  | Created -> "created"
  | Updated -> "updated"
  | Unchanged -> "unchanged"

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if not (String.equal parent path) then mkdir_p parent;
    Sys.mkdir path 0o755
  end

let promote ~dir () =
  List.concat_map
    (fun (id, _) ->
      let e = Evidence.run id in
      mkdir_p (Filename.concat dir id);
      let write path contents =
        let status =
          match read_file path with
          | Some old when String.equal old contents -> Unchanged
          | Some _ -> Updated
          | None -> Created
        in
        (match status with
        | Unchanged -> ()
        | Created | Updated -> Export.write_file path contents);
        (path, status)
      in
      let table_path, metrics_path = paths ~dir id in
      [ write table_path e.Evidence.table; write metrics_path e.Evidence.metrics ])
    Evidence.figures
