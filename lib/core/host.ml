module Ia = Scion_addr.Ia
module Pan = Scion_endhost.Pan
module Daemon = Scion_endhost.Daemon
module Boot = Scion_endhost.Bootstrap
module Hints = Scion_endhost.Hints
module Combinator = Scion_controlplane.Combinator
module Mesh = Scion_controlplane.Mesh
module Packet = Scion_dataplane.Packet

type t = {
  network : Network.t;
  host_ia : Ia.t;
  host_mode : Pan.mode;
  timing : Boot.timing;
  host_daemon : Daemon.t;
}

(* The AS's bootstrapping infrastructure, as the paper's Figure 2: a local
   web server carrying the signed topology and the ISD's TRCs. *)
let local_server network ia =
  let mesh = Network.mesh network in
  let cert = Mesh.cert_of mesh ia in
  (* The topology file is signed by the AS; the simulated AS signing key is
     reachable through the mesh's deterministic derivation. *)
  let signer, _ =
    Scion_crypto.Schnorr.derive
      ~seed:
        (Printf.sprintf "%Ld/as/%s" (Mesh.config mesh).Mesh.seed (Ia.to_string ia))
  in
  let topology =
    Boot.sign_topology ~ia
      ~border_routers:[ Scion_addr.Ipv4.endpoint_of_string "10.0.0.2:30042" ]
      ~control_service:(Scion_addr.Ipv4.endpoint_of_string "10.0.0.3:30252")
      ~signer
  in
  let trc = Mesh.trc mesh ia.Ia.isd in
  ( { Boot.endpoint = Scion_addr.Ipv4.endpoint_of_string "10.0.0.1:8041"; topology; trcs = [ trc ] },
    cert.Scion_cppki.Cert.pubkey )

let campus_env =
  {
    Hints.static_ips_only = false;
    dhcp = true;
    dhcpv6 = false;
    ipv6_ras = true;
    dns_search_domain = true;
  }

let attach network ~ia ?(daemon_available = true) ?(bootstrapper_available = true) () =
  match Topology.find ia with
  | exception Not_found -> Error (Printf.sprintf "AS %s is not part of SCIERA" (Ia.to_string ia))
  | _info -> (
      let server, as_key = local_server network ia in
      let rng = Scion_util.Rng.of_label 0xB001L (Ia.to_string ia) in
      match
        Boot.run ~rng ~os:Boot.Linux ~env:campus_env ~server:(Some server) ~as_cert_key:as_key ()
      with
      | Error e -> Error (Boot.error_to_string e)
      | Ok (_topo, trc, timing) ->
          let fetch ~dst = Network.paths network ~src:ia ~dst in
          let metrics = Option.map Obs.registry (Network.telemetry network) in
          let host_daemon = Daemon.create ~ia ~fetch ?metrics () in
          Daemon.store_trc host_daemon trc;
          Ok
            {
              network;
              host_ia = ia;
              host_mode = Pan.choose_mode ~daemon_available ~bootstrapper_available;
              timing;
              host_daemon;
            })

let ia t = t.host_ia
let mode t = t.host_mode
let bootstrap_timing t = t.timing
let daemon t = t.host_daemon

let paths t ~dst = fst (Daemon.lookup t.host_daemon ~now:(Network.now_unix t.network) ~dst)
let latency_estimate t fp = Network.scion_rtt_base t.network fp

let transport t fp ~payload =
  match
    Scion_controlplane.Mesh.walk (Network.mesh t.network) ~now:(Network.now_unix t.network)
      ~payload fp
  with
  | Scion_controlplane.Mesh.Walk_delivered _ -> (
      match Network.scion_rtt_sample t.network fp with
      | `Rtt rtt_ms -> Pan.Conn.Sent { rtt_ms }
      | `Lost -> Pan.Conn.Send_failed)
  | Scion_controlplane.Mesh.Walk_dropped _ -> Pan.Conn.Send_failed

let dial t ~dst ?(policy = Pan.default_policy) () =
  let metrics = Option.map Obs.registry (Network.telemetry t.network) in
  Pan.Conn.dial ?metrics ~peer:(Ia.to_string dst) ~policy ~latency_of:(latency_estimate t)
    ~transport:(transport t) ~paths:(paths t ~dst) ()

let ping t ~dst =
  match dial t ~dst () with
  | Error _ -> `Unreachable
  | Ok conn -> (
      match Pan.Conn.send conn ~payload:(Scion_dataplane.Scmp.encode (Scion_dataplane.Scmp.Echo_request { id = 1; seq = 1; data = "ping" })) with
      | Pan.Conn.Sent { rtt_ms } -> `Rtt rtt_ms
      | Pan.Conn.Send_failed -> `Unreachable)

let request t ~dst ?(policy = Pan.default_policy) ~payload ~handler () =
  let mesh = Network.mesh t.network in
  let now = Network.now_unix t.network in
  let sorted =
    Pan.sort_paths policy ~latency_of:(latency_estimate t)
      (Pan.filter_paths policy (paths t ~dst))
  in
  match sorted with
  | [] -> Error "no path satisfies the policy"
  | fp :: _ -> (
      match Mesh.walk mesh ~now ~payload fp with
      | Mesh.Walk_dropped { at; reason } ->
          Error
            (Printf.sprintf "request dropped at %s: %s" (Ia.to_string at)
               (Scion_dataplane.Router.drop_reason_to_string reason))
      | Mesh.Walk_delivered { packet; _ } -> (
          let answer = handler packet.Packet.payload in
          let reply = Packet.reply_skeleton packet ~payload:answer in
          match Mesh.walk_packet mesh ~now ~from:dst reply with
          | Mesh.Walk_dropped { at; reason } ->
              Error
                (Printf.sprintf "reply dropped at %s: %s" (Ia.to_string at)
                   (Scion_dataplane.Router.drop_reason_to_string reason))
          | Mesh.Walk_delivered _ -> (
              match Network.scion_rtt_sample t.network fp with
              | `Rtt rtt -> Ok (`Reply (answer, rtt))
              | `Lost -> Error "reply lost")))
