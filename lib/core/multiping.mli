(** The scion-go-multiping measurement tool of Section 5.4, re-implemented
    over the simulated SCIERA network.

    From every vantage AS the tool pings every other SCIERA AS once per
    second over three SCION paths — the {e shortest} (fewest AS hops,
    lowest path identifier), the {e fastest} (lowest RTT in the last full
    path probe) and the {e most disjoint} (fewest shared interface ids
    with the other two) — and over the IP Internet with ICMP, aggregating
    per 60-second interval (minimum RTT, chosen path, success ratio). A
    full path probe re-enumerates paths every minute and whenever two or
    more pings failed in the previous interval.

    The paper's dataset also contains ICMP measurement-tool stalls (no
    ICMP sent from some sources for parts of each hour); the tool
    reproduces the stalls and the analysis-side exclusion rule, because
    Figure 5's ping counts (89 M SCION vs 82 M IP) depend on it. *)

type sample = {
  day : float;  (** Window day offset of the interval. *)
  src : Scion_addr.Ia.t;
  dst : Scion_addr.Ia.t;
  scion_rtt : float option;  (** Min RTT over the three paths; None = all lost. *)
  scion_sent : int;
  scion_ok : int;
  ip_rtt : float option;
  ip_sent : int;  (** 0 during a tool stall. *)
  ip_ok : int;
  path_fingerprint : string option;  (** Path of the min RTT. *)
}

type dataset = {
  samples : sample list;  (** Chronological. *)
  scion_pings : int;  (** Total sent (before exclusion). *)
  ip_pings : int;
  intervals : int;
}

type config = {
  interval_s : float;  (** Aggregation interval (paper: 60 s). *)
  pings_per_interval : int;
      (** Pings sampled per interval; the paper sends one per second and
          keeps the minimum — sampling k of 60 preserves that statistic at
          1/12 of the cost. *)
  stall_fraction : float;  (** Fraction of each hour stalled for ICMP. *)
  stall_sources : Scion_addr.Ia.t list;  (** Sources affected by stalls. *)
}

val default_config : config

val probe_paths :
  Network.t ->
  src:Scion_addr.Ia.t ->
  dst:Scion_addr.Ia.t ->
  Scion_controlplane.Combinator.fullpath list
(** The full path probe: up to three paths (shortest, fastest, most
    disjoint), deduplicated — the selection logic of the tool. *)

val run :
  Network.t ->
  ?config:config ->
  ?days:float ->
  ?sources:Scion_addr.Ia.t list ->
  ?destinations:Scion_addr.Ia.t list ->
  unit ->
  dataset
(** Run the campaign over the window ([days] defaults to the full 20),
    pinging from each vantage point and advancing the incident calendar as
    simulated time passes. [?sources] defaults to the Figure-1 vantage
    ASes and [?destinations] to all SCIERA ASes — generated topologies
    must pass both, since their IAs are not in the hand-built table. *)

val excluded_ip_majority : dataset -> dataset
(** The paper's fairness rule: drop intervals where the majority of ICMP
    pings were missing (tool stall), for both SCION and IP; keep intervals
    with only a few failures. *)
