(** The operational calendar of the 20-day measurement window (Section 5.4
    and the annotations of Figures 6, 7 and 9).

    The paper's measurement campaign (mid-January to early February 2025)
    overlapped several real incidents, which this module encodes so the
    connectivity study can reproduce the figures' features:

    - the {b KREONET Daejeon–Singapore direct link} was unavailable for a
      long stretch (submarine-cable trouble), detouring that pair around
      the globe (Fig. 6 outlier, Fig. 9's median deviation of 16);
    - {b BRIDGES} experienced routing instabilities, inflating RTTs for
      UVa/Princeton/Equinix (Fig. 6 outliers, Fig. 9 deviation for
      UVa-Equinix);
    - {b UFMS–Equinix} traffic detoured through GEANT because the
      RNP–BRIDGES circuit was not yet carrying SCION (Fig. 6 outlier);
    - {b Jan 21} maintenance affected several links (Fig. 7 spike),
      followed by days of fluctuation;
    - {b Jan 25}: new EU–US links came up, stabilising the RTT ratio;
    - {b Feb 6}: node upgrades and link maintenance caused a second spike. *)

type effect =
  | Link_down of { a : Scion_addr.Ia.t; b : Scion_addr.Ia.t; label : string option }
      (** Take down the link(s) between two ASes; [label] selects one of
          several parallel circuits, [None] means all of them. *)
  | Link_degraded of {
      a : Scion_addr.Ia.t;
      b : Scion_addr.Ia.t;
      label : string option;
      extra_ms : float;
    }

type incident = {
  title : string;
  from_day : float;  (** Day offset within the window (fractional). *)
  to_day : float;
  effect : effect;
}

val window_days : float
(** 20 days. *)

val window_start_unix : float
(** 2025-01-18T00:00Z — day 0 of the window. *)

val calendar : incident list
val active_at : float -> incident list
(** Incidents in effect at the given day offset. *)

val change_points : float list
(** Sorted distinct day offsets at which the set of active incidents
    changes (including 0 and [window_days]) — the epochs at which the
    control plane re-converges. *)

(** {1 Canned fault-injection replays}

    The calendar compiled into {!Fault.Scenario.t} recipes, for driving a
    {!Fault.Injector} over the SCION fabric (link ids are positions in
    [Topology.links], which is also the order the fabric adds them). Times
    are seconds from the scenario's origin day. *)

val links_between :
  ?label:string -> Scion_addr.Ia.t -> Scion_addr.Ia.t -> Netsim.Net.link_id list
(** Fabric link ids between two ASes, optionally narrowed to one labelled
    parallel circuit ([None] means all of them) — empty when no such link
    exists. *)

val scenario_of_window : from_day:float -> to_day:float -> Fault.Scenario.t
(** Every calendar incident overlapping [\[from_day, to_day)] as a
    scenario whose clock starts at [from_day] (events before it are
    clamped to time 0). *)

val jan21 : Fault.Scenario.t
(** The Jan 21 maintenance replay (day 3): the transatlantic GEANT link,
    the GEANT Singapore link and the KREONET SG–AMS ring segment go down
    and come back over the maintenance window, scenario time 0 = day 3. *)

val feb6 : Fault.Scenario.t
(** The Feb 6 node-upgrade replay (day 19): the KREONET AMS–CHG ring
    segment outage plus the transatlantic and GEANT@AMS latency
    degradations, scenario time 0 = day 19. *)
