module Log = Telemetry.Log
module Ia = Scion_addr.Ia
module Stats = Scion_util.Stats
module Combinator = Scion_controlplane.Combinator

type result = {
  ases : Ia.t list;
  max_paths : int array array;
  median_deviation : int array array;
  inflation_cdf : Stats.cdf;
  frac_inflation_close_to_1 : float;
  frac_inflation_le_1_2 : float;
  disjointness_cdf : Stats.cdf;
  frac_fully_disjoint : float;
  frac_disjointness_ge_0_7 : float;
  min_paths : int;
  best_pair : Ia.t * Ia.t * int;
}

(* Duration-weighted median of (value, weight) observations. *)
let weighted_median obs =
  let sorted = List.sort compare obs in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 sorted in
  let rec go acc = function
    | [] -> 0
    | (v, w) :: rest -> if acc +. w >= total /. 2.0 then v else go (acc +. w) rest
  in
  go 0.0 sorted

let run ?seed ?(per_origin = 16) ?(verify_pcbs = false) ?telemetry () =
  let net = Network.create ?seed ~per_origin ~verify_pcbs ?telemetry () in
  let ases = Topology.fig8_ases in
  let n = List.length ases in
  let arr = Array.of_list ases in
  (* Epochs: segments between incident change points. *)
  let points = Incidents.change_points in
  let segments =
    let rec pair = function
      | a :: (b :: _ as rest) -> (a, b) :: pair rest
      | [ _ ] | [] -> []
    in
    pair points
  in
  let counts = Array.init n (fun _ -> Array.make n []) in
  let inflations = ref [] in
  let disjointness_samples = ref [] in
  let longest =
    List.fold_left (fun best (a, b) ->
        match best with
        | Some (x, y) when y -. x >= b -. a -> best
        | _ -> Some (a, b))
      None segments
  in
  List.iter
    (fun (d0, d1) ->
      let mid = (d0 +. d1) /. 2.0 in
      Network.set_day net mid;
      let duration = d1 -. d0 in
      let is_longest = match longest with Some (a, b) -> a = d0 && b = d1 | None -> false in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            let live = Network.live_paths net ~src:arr.(i) ~dst:arr.(j) in
            counts.(i).(j) <- (List.length live, duration) :: counts.(i).(j);
            (* Latency inflation d2/d1 among live paths. *)
            (match
               List.sort_uniq compare (List.map (fun p -> Network.scion_rtt_base net p) live)
             with
            | d1 :: d2 :: _ when d1 > 0.0 -> inflations := (d2 /. d1) :: !inflations
            | _ -> ());
            (* Disjointness over all path pairs, on the longest epoch. *)
            if is_longest then begin
              let a = Array.of_list live in
              let m = Array.length a in
              (* Cap the quadratic pass for very path-rich pairs. *)
              let step = if m > 40 then m / 40 else 1 in
              let k = ref 0 in
              while !k < m do
                let l = ref (!k + step) in
                while !l < m do
                  disjointness_samples := Combinator.disjointness a.(!k) a.(!l) :: !disjointness_samples;
                  l := !l + step
                done;
                k := !k + step
              done
            end
          end
        done
      done)
    segments;
  let max_paths = Array.init n (fun _ -> Array.make n 0) in
  let median_deviation = Array.init n (fun _ -> Array.make n 0) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let obs = counts.(i).(j) in
        let mx = List.fold_left (fun a (c, _) -> max a c) 0 obs in
        max_paths.(i).(j) <- mx;
        median_deviation.(i).(j) <- weighted_median (List.map (fun (c, w) -> (mx - c, w)) obs)
      end
    done
  done;
  let inflations = Array.of_list !inflations in
  let disjointness = Array.of_list !disjointness_samples in
  let frac arr p =
    if Array.length arr = 0 then 0.0
    else
      float_of_int (Array.length (Array.of_list (List.filter p (Array.to_list arr))))
      /. float_of_int (Array.length arr)
  in
  let min_paths = ref max_int and best = ref (arr.(0), arr.(0), 0) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        if max_paths.(i).(j) < !min_paths then min_paths := max_paths.(i).(j);
        let _, _, b = !best in
        if max_paths.(i).(j) > b then best := (arr.(i), arr.(j), max_paths.(i).(j))
      end
    done
  done;
  {
    ases;
    max_paths;
    median_deviation;
    inflation_cdf = Stats.cdf inflations;
    frac_inflation_close_to_1 = frac inflations (fun x -> x <= 1.05);
    frac_inflation_le_1_2 = frac inflations (fun x -> x <= 1.2);
    disjointness_cdf = Stats.cdf disjointness;
    frac_fully_disjoint = frac disjointness (fun x -> x >= 0.999);
    frac_disjointness_ge_0_7 = frac disjointness (fun x -> x >= 0.7);
    min_paths = !min_paths;
    best_pair = !best;
  }

let matrix_rows r m =
  let labels = List.map Ia.to_string r.ases in
  List.mapi
    (fun i src -> src :: List.mapi (fun j _ -> if i = j then "-" else string_of_int m.(i).(j)) labels)
    labels

let print_matrix r title m =
  Log.out "%s\n" title;
  Scion_util.Table.print
    ~header:("src\\dst" :: List.map Ia.to_string r.ases)
    ~rows:(matrix_rows r m)

let print_fig8 r =
  Log.out "== Figure 8: maximum number of active paths between AS pairs ==\n";
  print_matrix r "" r.max_paths;
  let a, b, c = r.best_pair in
  Log.out "every pair has >= %d paths (paper: >= 2); richest pair %s -> %s with %d (paper: UVa->UFMS 113)\n\n"
    r.min_paths (Topology.name_of a) (Topology.name_of b) c

let print_fig9 r =
  Log.out "== Figure 9: median deviation from the maximum number of active paths ==\n";
  print_matrix r "" r.median_deviation;
  Log.out
    "most entries are 0 (paper: same); elevated deviations where the incidents bite: the Equinix row/column (flapping Ashburn cross-connect, the paper's UVa-Equinix/BRIDGES finding) and the Singapore-Amsterdam entries (submarine-cable cut, the paper's DJ-SG finding)\n\n"

let print_fig10a r =
  Log.out "== Figure 10a: CDF of path latency inflation (d2/d1) ==\n";
  Scion_util.Table.print ~header:[ "inflation"; "P(X<=x)" ]
    ~rows:
      (List.map
         (fun (v, f) -> [ Scion_util.Table.fmt_ratio v; Scion_util.Table.fmt_pct f ])
         (Stats.resample_cdf r.inflation_cdf 12));
  Log.out "pairs with a near-equal alternative (<=1.05): %s (paper: ~40%% at ~1.0)\n"
    (Scion_util.Table.fmt_pct r.frac_inflation_close_to_1);
  Log.out "pairs with <= 20%% inflation:                  %s (paper: ~80%%)\n\n"
    (Scion_util.Table.fmt_pct r.frac_inflation_le_1_2)

let print_fig10b r =
  Log.out "== Figure 10b: CDF of path disjointness ==\n";
  Scion_util.Table.print ~header:[ "disjointness"; "P(X<=x)" ]
    ~rows:
      (List.map
         (fun (v, f) -> [ Scion_util.Table.fmt_ratio v; Scion_util.Table.fmt_pct f ])
         (Stats.resample_cdf r.disjointness_cdf 12));
  Log.out "fully disjoint combinations: %s (paper: ~30%%)\n"
    (Scion_util.Table.fmt_pct r.frac_fully_disjoint);
  Log.out "combinations >= 0.7 disjoint: %s (paper: ~80%%)\n\n"
    (Scion_util.Table.fmt_pct r.frac_disjointness_ge_0_7)
