module Mesh = Scion_controlplane.Mesh
module Combinator = Scion_controlplane.Combinator
module Ia = Scion_addr.Ia
module Net = Netsim.Net
module Rng = Scion_util.Rng

let day_seconds = 86400.0

type t = {
  topo : Topology.spec;  (** The instantiated description (Figure 1 or generated). *)
  mesh : Mesh.t;
  net : Net.t;  (** SCION Layer-2 fabric; link ids match topology order. *)
  ip : Net.t;  (** Commodity-Internet overlay. *)
  ip_rng : Rng.t;
  node : (Ia.t, Net.node) Hashtbl.t;
  ipnode : (Ia.t, Net.node) Hashtbl.t;
  iface_link : (Ia.t * int, int) Hashtbl.t;  (** (ia, ifid) -> shared link index *)
  mutable day : float;
  mutable last_beacon_day : float;
  path_cache : (string, Combinator.fullpath list) Hashtbl.t;
  links_cache : (string, Net.link_id list) Hashtbl.t;
      (** fullpath fingerprint -> fabric links; safe across epochs because
          the interface-id assignment is fixed at construction. *)
  mutable rebeacons : int;
  mutable probe_seq : int;
  obs : Obs.t option;
}

let mesh t = t.mesh
let topology t = t.topo
let current_day t = t.day
let now_unix t = Incidents.window_start_unix +. (t.day *. day_seconds)
let scion_fabric t = t.net
let rng t = t.ip_rng
let rebeacon_count t = t.rebeacons
let telemetry t = t.obs

(* Total lookups into the graph-node tables. All keys come from
   Topology.ases / Topology.ip_hubs, which also populate the tables, so a
   miss is a topology bug and gets a clear error. *)
let lookup what to_string tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Network: unknown %s %s" what (to_string key))

(* Which incident effects apply to a given topology link. *)
let effects_for (link : Topology.link_info) day =
  List.filter_map
    (fun (i : Incidents.incident) ->
      let matches a b label =
        ((Ia.equal a link.Topology.a && Ia.equal b link.Topology.b)
        || (Ia.equal a link.Topology.b && Ia.equal b link.Topology.a))
        && match label with None -> true | Some l -> l = link.Topology.label
      in
      match i.Incidents.effect with
      | Incidents.Link_down { a; b; label } when matches a b label -> Some `Down
      | Incidents.Link_degraded { a; b; label; extra_ms } when matches a b label ->
          Some (`Degraded extra_ms)
      | Incidents.Link_down _ | Incidents.Link_degraded _ -> None)
    (Incidents.active_at day)

let apply_day t day =
  let changed_up = ref false in
  List.iteri
    (fun idx link ->
      let effects = effects_for link day in
      let want_up = not (List.mem `Down effects) in
      let extra =
        List.fold_left (fun acc e -> match e with `Degraded ms -> acc +. ms | `Down -> acc) 0.0 effects
      in
      if Net.link_up t.net idx <> want_up then begin
        changed_up := true;
        Net.set_link_up t.net idx want_up;
        Mesh.set_link_state t.mesh idx ~up:want_up
      end;
      if Net.extra_latency t.net idx <> extra then Net.set_extra_latency t.net idx extra)
    t.topo.Topology.spec_links;
  !changed_up

let rebeacon t =
  Mesh.run_beaconing t.mesh ~now:(now_unix t);
  Hashtbl.reset t.path_cache;
  t.last_beacon_day <- t.day;
  t.rebeacons <- t.rebeacons + 1

let set_day t day =
  t.day <- day;
  let changed = apply_day t day in
  if changed || day -. t.last_beacon_day > 0.8 || day < t.last_beacon_day then rebeacon t

let create ?(seed = 0x5C1E_7A5EL) ?(per_origin = 20) ?(verify_pcbs = true)
    ?(topology = Topology.sciera) ?(rounds = 10) ?propagate_k ?fanout_cap
    ?(scale_obs = false) ?quarantine ?telemetry () =
  let config =
    {
      Mesh.default_config with
      Mesh.seed;
      per_origin;
      propagate_k = (match propagate_k with Some k -> k | None -> per_origin);
      rounds;
      verify_pcbs;
      fanout_cap;
      scale_obs;
      quarantine;
    }
  in
  let ases =
    List.map
      (fun (a : Topology.as_info) ->
        {
          Mesh.spec_ia = a.Topology.ia;
          core = a.Topology.core;
          ca = a.Topology.ca;
          profile = a.Topology.profile;
          note =
            (match a.Topology.profile with
            | Scion_cppki.Cert.Open_source -> "open-source"
            | Scion_cppki.Cert.Proprietary -> "anapaya");
        })
      topology.Topology.spec_ases
  in
  let mesh_links =
    List.map
      (fun (l : Topology.link_info) -> { Mesh.l_a = l.Topology.a; l_b = l.Topology.b; cls = l.Topology.cls })
      topology.Topology.spec_links
  in
  let metrics = Option.map Obs.registry telemetry in
  let mesh =
    Mesh.create ~config ?metrics ~now:Incidents.window_start_unix ~ases ~links:mesh_links ()
  in
  let rng_root = Rng.create seed in
  let net = Net.create ~rng:(Rng.split rng_root) in
  let ip = Net.create ~rng:(Rng.split rng_root) in
  (match telemetry with
  | None -> ()
  | Some obs ->
      Obs.wire_fabric obs ~name:"scion" net;
      Obs.wire_fabric obs ~name:"ip" ip);
  let node = Hashtbl.create 64 and ipnode = Hashtbl.create 64 in
  List.iter
    (fun (a : Topology.as_info) ->
      Hashtbl.replace node a.Topology.ia (Net.add_node net (Ia.to_string a.Topology.ia));
      Hashtbl.replace ipnode a.Topology.ia (Net.add_node ip (Ia.to_string a.Topology.ia)))
    topology.Topology.spec_ases;
  List.iter
    (fun (l : Topology.link_info) ->
      ignore
        (Net.add_link net
           (lookup "AS" Ia.to_string node l.Topology.a)
           (lookup "AS" Ia.to_string node l.Topology.b)
           {
             (* Software border routers on commodity servers add per-hop
                forwarding latency, and R&E circuits are not perfectly
                geodesic: +5.5% and +0.5 ms per link vs raw propagation. *)
             Net.latency_ms = (l.Topology.latency_ms *. 1.055) +. 0.5;
             jitter_ms = l.Topology.jitter_ms;
             loss = 0.0005;
             bandwidth_mbps = 10_000.0;
           }))
    topology.Topology.spec_links;
  (* Internet overlay: hubs plus per-AS access links. *)
  let iphub = Hashtbl.create 16 in
  List.iter
    (fun (h : Topology.ip_hub) ->
      Hashtbl.replace iphub h.Topology.hub_name (Net.add_node ip ("hub:" ^ h.Topology.hub_name)))
    Topology.ip_hubs;
  List.iter
    (fun (ha, hb, ms) ->
      ignore
        (Net.add_link ip (lookup "hub" Fun.id iphub ha) (lookup "hub" Fun.id iphub hb)
           { Net.latency_ms = ms; jitter_ms = ms *. 0.16; loss = 0.0008; bandwidth_mbps = 100_000.0 }))
    Topology.ip_hub_links;
  List.iter
    (fun (a : Topology.as_info) ->
      let hub, ms = Topology.ip_access_for a in
      ignore
        (Net.add_link ip
           (lookup "AS" Ia.to_string ipnode a.Topology.ia)
           (lookup "hub" Fun.id iphub hub)
           { Net.latency_ms = ms; jitter_ms = Float.max 0.3 (ms *. 0.12); loss = 0.0003; bandwidth_mbps = 10_000.0 }))
    topology.Topology.spec_ases;
  let iface_link = Hashtbl.create 128 in
  List.iter
    (fun (id, (spec : Mesh.link_spec)) ->
      let a_if, b_if = Mesh.link_interfaces mesh id in
      Hashtbl.replace iface_link (spec.Mesh.l_a, a_if) id;
      Hashtbl.replace iface_link (spec.Mesh.l_b, b_if) id)
    (Mesh.links mesh);
  let t =
    {
      topo = topology;
      mesh;
      net;
      ip;
      ip_rng = Rng.split rng_root;
      node;
      ipnode;
      iface_link;
      day = 0.0;
      last_beacon_day = -1.0;
      path_cache = Hashtbl.create 256;
      links_cache = Hashtbl.create 256;
      rebeacons = 0;
      probe_seq = 0;
      obs = telemetry;
    }
  in
  ignore (apply_day t 0.0);
  rebeacon t;
  t

(* Apply one fault-injector op to the network: both the link fabric and
   the control plane see it. A repaired link immediately re-originates
   beacons (Mesh.restore_link), so recovery does not wait for the next
   scheduled convergence. *)
let apply_fault t op =
  match op with
  | Fault.Scenario.Link_down id ->
      Net.set_link_up t.net id false;
      Mesh.set_link_state t.mesh id ~up:false
  | Fault.Scenario.Link_up id ->
      Net.set_link_up t.net id true;
      if Mesh.restore_link t.mesh id ~now:(now_unix t) then begin
        Hashtbl.reset t.path_cache;
        t.last_beacon_day <- t.day;
        t.rebeacons <- t.rebeacons + 1
      end
  | Fault.Scenario.Extra_latency { link; ms } -> Net.set_extra_latency t.net link ms
  | Fault.Scenario.Loss_burst { link; loss } -> Net.set_extra_loss t.net link loss
  | Fault.Scenario.Node_down n ->
      List.iter
        (fun id ->
          Net.set_link_up t.net id false;
          Mesh.set_link_state t.mesh id ~up:false)
        (Net.links_of t.net n)
  | Fault.Scenario.Node_up n ->
      let restored =
        List.fold_left
          (fun acc id ->
            Net.set_link_up t.net id true;
            Mesh.restore_link t.mesh id ~now:(now_unix t) || acc)
          false (Net.links_of t.net n)
      in
      if restored then begin
        Hashtbl.reset t.path_cache;
        t.last_beacon_day <- t.day;
        t.rebeacons <- t.rebeacons + 1
      end
  | Fault.Scenario.Control_down | Fault.Scenario.Control_up -> ()

let inject t ~engine ~rng scenario =
  Fault.Injector.attach ~engine ~rng ~apply:(apply_fault t) scenario

(* --- Adversary interpretation ---------------------------------------- *)

type adversary_stats = {
  mutable adv_injected : int;
  mutable adv_accepted : int;
  mutable adv_last_accept_s : float;
  mutable adv_rogue : int;
  mutable adv_forged_sent : int;
  mutable adv_forged_delivered : int;
  mutable adv_reflect_requests : int;
  mutable adv_reflect_answered : int;
  mutable adv_amp_bytes : int;
  mutable adv_flood_frames : int;
  mutable adv_flood_passed : int;
  mutable adv_wormholes : (Ia.t * Ia.t) list;
  mutable adv_seized : Ia.t list;
}

let wormhole_active stats ~a ~b =
  List.exists
    (fun (x, y) ->
      (Ia.equal x a && Ia.equal y b) || (Ia.equal x b && Ia.equal y a))
    stats.adv_wormholes

(* The reflected echo an SCMP amplifier bounces at its victim: maximum
   padding, the attacker's whole point. *)
let reflect_reply_bytes =
  let module Scmp = Scion_dataplane.Scmp in
  lazy
    (String.length
       (Scmp.encode (Scmp.Echo_reply { id = 0xDD05; seq = 0; data = String.make 1024 'R' })))

(* Interpret one adversary op against the live network. [defended] arms
   the data-plane half of the containment story: a LightningFilter in
   front of flood targets and the SCMP emission throttle on reflectors
   (the control-plane half — verification, quarantine, rotation — is
   configured at {!create} time via [verify_pcbs]/[?quarantine]). *)
let attach_adversary t ~engine ~rng ?(defended = false) adversary =
  let stats =
    {
      adv_injected = 0;
      adv_accepted = 0;
      adv_last_accept_s = Float.neg_infinity;
      adv_rogue = 0;
      adv_forged_sent = 0;
      adv_forged_delivered = 0;
      adv_reflect_requests = 0;
      adv_reflect_answered = 0;
      adv_amp_bytes = 0;
      adv_flood_frames = 0;
      adv_flood_passed = 0;
      adv_wormholes = [];
      adv_seized = [];
    }
  in
  let now () = now_unix t +. Netsim.Engine.now engine in
  let sim_now () = Netsim.Engine.now engine in
  (* Per-target LightningFilter (defended mode): allows the target's real
     neighbors, so the flood must spoof one of them. *)
  let filters : (Ia.t, Science_dmz.Filter.t) Hashtbl.t = Hashtbl.create 4 in
  let filter_for target =
    match Hashtbl.find_opt filters target with
    | Some f -> f
    | None ->
        let allowed =
          List.map (fun (_, nbr, _) -> (nbr, 100_000.0)) (Mesh.neighbors t.mesh target)
        in
        let f =
          Science_dmz.Filter.create
            ~local_secret:("dmz/" ^ Ia.to_string target ^ "/" ^ Int64.to_string (Mesh.config t.mesh).Mesh.seed)
            ~allowed ()
        in
        Hashtbl.replace filters target f;
        f
  in
  let limited : (Ia.t, unit) Hashtbl.t = Hashtbl.create 4 in
  let arm_limiter reflector =
    if defended && not (Hashtbl.mem limited reflector) then begin
      Hashtbl.replace limited reflector ();
      Scion_dataplane.Router.configure_scmp_limiter (Mesh.router t.mesh reflector)
        ~budget_bytes_per_s:2048.0 ()
    end
  in
  let module Packet = Scion_dataplane.Packet in
  let accepted_bogus n =
    if n > 0 then begin
      stats.adv_accepted <- stats.adv_accepted + n;
      stats.adv_last_accept_s <- sim_now ()
    end
  in
  let apply (op : Fault.Adversary.op) =
    match op with
    | Fault.Adversary.Corrupt_beacons { compromised; count } ->
        stats.adv_injected <- stats.adv_injected + count;
        accepted_bogus (Mesh.inject_corrupt_beacons t.mesh ~compromised ~rng ~now:(now ()) ~count)
    | Fault.Adversary.Replay_beacons { compromised; age_s; count } ->
        stats.adv_injected <- stats.adv_injected + count;
        accepted_bogus
          (Mesh.inject_replayed_beacons t.mesh ~compromised ~rng ~now:(now ()) ~age_s ~count)
    | Fault.Adversary.Forge_hop_macs { compromised; count } ->
        let others =
          List.filter (fun ia -> not (Ia.equal ia compromised)) (Mesh.ases t.mesh)
        in
        if others <> [] then
          for _i = 1 to count do
            let dst = List.nth others (Rng.int rng (List.length others)) in
            match Mesh.paths t.mesh ~src:compromised ~dst with
            | [] -> ()
            | fp :: _ -> (
                stats.adv_forged_sent <- stats.adv_forged_sent + 1;
                (* A real path with one attacker-chosen hop field: flip a
                   MAC byte in place through the wire view. *)
                let pkt =
                  Packet.make ~proto:Packet.Udp
                    ~src:(compromised, Packet.Ipv4 (Scion_addr.Ipv4.of_string "10.66.0.1"))
                    ~dst:(dst, Packet.Ipv4 (Scion_addr.Ipv4.of_string "10.0.0.2"))
                    ~path:(Packet.Standard (Combinator.fresh_raw fp))
                    "forged-hop-field"
                in
                let v = Packet.View.of_string (Packet.encode pkt) in
                let off = Packet.View.curr_mac_off v in
                let buf = Packet.View.buffer v in
                Bytes.set buf off (Char.chr (Char.code (Bytes.get buf off) lxor 0xff));
                match Mesh.walk_packet t.mesh ~now:(now ()) ~from:compromised (Packet.View.to_packet v) with
                | Mesh.Walk_delivered _ ->
                    stats.adv_forged_delivered <- stats.adv_forged_delivered + 1
                | Mesh.Walk_dropped _ -> ())
          done
    | Fault.Adversary.Rogue_segments { compromised; victim; count } ->
        let n =
          Mesh.register_rogue_segments t.mesh ~compromised ~victim ~rng ~now:(now ()) ~count
        in
        stats.adv_rogue <- stats.adv_rogue + n;
        (* The mesh memo was invalidated; this cache sits above it. *)
        Hashtbl.reset t.path_cache
    | Fault.Adversary.Wormhole_up { a; b } ->
        if not (wormhole_active stats ~a ~b) then
          stats.adv_wormholes <- (a, b) :: stats.adv_wormholes
    | Fault.Adversary.Wormhole_down { a; b } ->
        stats.adv_wormholes <-
          List.filter
            (fun (x, y) ->
              not ((Ia.equal x a && Ia.equal y b) || (Ia.equal x b && Ia.equal y a)))
            stats.adv_wormholes
    | Fault.Adversary.Scmp_reflect { reflector; victim = _; count } ->
        arm_limiter reflector;
        let r = Mesh.router t.mesh reflector in
        let bytes = Lazy.force reflect_reply_bytes in
        for _i = 1 to count do
          stats.adv_reflect_requests <- stats.adv_reflect_requests + 1;
          if Scion_dataplane.Router.scmp_allow r ~now:(sim_now ()) ~bytes then begin
            stats.adv_reflect_answered <- stats.adv_reflect_answered + 1;
            stats.adv_amp_bytes <- stats.adv_amp_bytes + bytes
          end
        done
    | Fault.Adversary.Volumetric_flood { attacker = _; target; packets; duplicate_pct } ->
        stats.adv_flood_frames <- stats.adv_flood_frames + packets;
        if not defended then stats.adv_flood_passed <- stats.adv_flood_passed + packets
        else begin
          let f = filter_for target in
          let spoofed =
            match Mesh.neighbors t.mesh target with
            | (_, nbr, _) :: _ -> nbr
            | [] -> target
          in
          let dups = packets * duplicate_pct / 100 in
          let captured_payload = "captured-genuine-frame" in
          let captured_tag =
            Science_dmz.Filter.authenticate
              ~key:(Science_dmz.Filter.host_key f ~peer:spoofed)
              ~payload:captured_payload
          in
          let frames =
            List.init packets (fun i ->
                if i < dups then (spoofed, captured_payload, captured_tag)
                else
                  (* Spoofed source, garbage MAC: the attacker has no
                     DRKey, only random bytes. *)
                  (spoofed, Printf.sprintf "junk-%d" i, Printf.sprintf "%016x" (Rng.int rng 0x3FFFFFFF)))
          in
          List.iter
            (fun verdict ->
              if verdict = Science_dmz.Filter.Accepted then
                stats.adv_flood_passed <- stats.adv_flood_passed + 1)
            (Science_dmz.Filter.check_batch f ~now:(sim_now ()) frames)
        end
    | Fault.Adversary.Trc_compromise { isd } -> (
        match
          List.find_opt
            (fun (ia : Ia.t) -> ia.Ia.isd = isd && Mesh.is_core t.mesh ia)
            (Mesh.ases t.mesh)
        with
        | None -> invalid_arg (Printf.sprintf "Network adversary: no core AS in ISD %d" isd)
        | Some victim ->
            Mesh.seize_as t.mesh ~ia:victim ~now:(now ());
            stats.adv_seized <- victim :: stats.adv_seized)
    | Fault.Adversary.Trc_rotate { isd } -> Mesh.rotate_trc t.mesh ~isd ~now:(now ())
  in
  let inj = Fault.Injector.attach_adversary ~engine ~rng ~apply adversary in
  (inj, stats)

let paths t ~src ~dst =
  let key = Ia.to_string src ^ ">" ^ Ia.to_string dst in
  match Hashtbl.find_opt t.path_cache key with
  | Some ps -> ps
  | None ->
      let ps = Mesh.paths t.mesh ~src ~dst in
      Hashtbl.replace t.path_cache key ps;
      ps

let live_paths t ~src ~dst =
  List.filter (fun p -> Mesh.path_alive t.mesh ~now:(now_unix t) p) (paths t ~src ~dst)

let path_links t (fp : Combinator.fullpath) =
  match Hashtbl.find_opt t.links_cache fp.Combinator.fingerprint with
  | Some ids -> ids
  | None ->
      let rec go = function
        | [] | [ _ ] -> []
        | (h : Scion_addr.Hop_pred.hop) :: rest ->
            let id =
              match
                Hashtbl.find_opt t.iface_link
                  (h.Scion_addr.Hop_pred.ia, h.Scion_addr.Hop_pred.egress)
              with
              | Some id -> id
              | None ->
                  invalid_arg
                    (Printf.sprintf "Network.path_links: unknown interface %s#%d"
                       (Ia.to_string h.Scion_addr.Hop_pred.ia)
                       h.Scion_addr.Hop_pred.egress)
            in
            id :: go rest
      in
      let ids = go fp.Combinator.interfaces in
      Hashtbl.replace t.links_cache fp.Combinator.fingerprint ids;
      ids

(* Directed traversal of a path's fabric links for the traffic engine:
   walk from the source endpoint of the first link, flipping to the far
   endpoint across each. [path_links] is undirected and cached; only the
   walk direction depends on [src]. *)
let path_hops t ~src (fp : Combinator.fullpath) =
  let start = lookup "AS" Ia.to_string t.node src in
  let rec go at = function
    | [] -> []
    | id :: rest ->
        let a, b = Net.endpoints t.net id in
        let next =
          if at = a then b
          else if at = b then a
          else
            invalid_arg
              (Printf.sprintf "Network.path_hops: link %d is not incident to the walk" id)
        in
        { Traffic.Flow.link = id; from = at } :: go next rest
  in
  go start (path_links t fp)

let arm_capacities t ~bps ~queue_pkts =
  for id = 0 to Net.num_links t.net - 1 do
    Net.set_capacity t.net id ~bps ~queue_pkts
  done

let path_headroom_bps t ~src fp =
  List.fold_left
    (fun acc (h : Traffic.Flow.hop) ->
      match Net.capacity t.net h.link with
      | None -> acc
      | Some (cap, _) -> Float.min acc (cap -. Net.fluid_load t.net h.link ~from:h.from))
    infinity (path_hops t ~src fp)

let path_load_signal t ~src fp =
  List.fold_left
    (fun (u, q) (h : Traffic.Flow.hop) ->
      ( Float.max u (Net.utilisation t.net h.link ~from:h.from),
        Float.max q (Net.queueing_delay_ms t.net h.link ~from:h.from) ))
    (0.0, 0.0) (path_hops t ~src fp)

let scion_rtt_sample t fp = Net.path_rtt t.net (path_links t fp)
let scion_rtt_base t fp = 2.0 *. Net.path_base_latency t.net (path_links t fp)

(* One SCMP echo over [fp]: request walked hop by hop through the border
   routers (deterministic dataplane ground truth — down interfaces, expired
   hop fields), reply walked back over the reversed path, and the RTT/loss
   sampled from the link model with the *caller's* RNG. The workload stream
   ([t.net]'s own rng) is never touched, so attaching probers leaves every
   existing figure byte-identical. *)
let scmp_probe t ~rng (fp : Combinator.fullpath) =
  let module Packet = Scion_dataplane.Packet in
  let module Scmp = Scion_dataplane.Scmp in
  t.probe_seq <- (t.probe_seq + 1) land 0xFFFF;
  let request = Scmp.encode (Scmp.Echo_request { id = 0x9A11; seq = t.probe_seq; data = "pathmon" }) in
  let now = now_unix t in
  match Mesh.walk t.mesh ~now ~payload:request ~proto:Packet.Scmp fp with
  | Mesh.Walk_dropped _ -> `Lost
  | Mesh.Walk_delivered { dst; packet; _ } when Ia.equal dst fp.Combinator.dst -> (
      match Scmp.echo_reply_for packet.Packet.payload with
      | None -> `Lost
      | Some reply_payload -> (
          let reply = Packet.reply_skeleton packet ~payload:reply_payload in
          match Mesh.walk_packet t.mesh ~now ~from:fp.Combinator.dst reply with
          | Mesh.Walk_delivered { dst; _ } when Ia.equal dst fp.Combinator.src ->
              Net.path_rtt_with t.net ~rng (path_links t fp)
          | Mesh.Walk_delivered _ | Mesh.Walk_dropped _ -> `Lost))
  | Mesh.Walk_delivered _ -> `Lost

let ip_route t ~src ~dst =
  let a = lookup "AS" Ia.to_string t.ipnode src
  and b = lookup "AS" Ia.to_string t.ipnode dst in
  Net.min_hop_route t.ip ~src:a ~dst:b

(* BGP path quality is heterogeneous: most pairs get a reasonable route,
   but a sizeable minority detour through distant exchange points or
   congested transit (the well-documented BGP path-inflation long tail).
   The factor is a deterministic function of the unordered AS pair, so the
   same pairs are "unlucky" for the whole campaign — which is what lets
   SCION win big exactly where the paper's Figure 5 tail shows it. *)
let bgp_detour_factor src dst =
  let key =
    let a = Ia.to_string src and b = Ia.to_string dst in
    if a < b then a ^ "|" ^ b else b ^ "|" ^ a
  in
  let h = Hashtbl.hash ("bgp-detour" ^ key) in
  let u = float_of_int (h land 0xFFFF) /. 65536.0 in
  if u < 0.22 then 1.38 +. (0.8 *. u /. 0.22)
  else if u < 0.40 then 1.16
  else 0.94

let ip_rtt_sample t ~src ~dst =
  match ip_route t ~src ~dst with
  | None -> `Lost
  | Some route -> (
      match Net.path_rtt t.ip route with
      | `Lost -> `Lost
      | `Rtt ms -> `Rtt (ms *. bgp_detour_factor src dst))

let ip_rtt_base t ~src ~dst =
  match ip_route t ~src ~dst with
  | None -> None
  | Some route ->
      Some (2.0 *. Net.path_base_latency t.ip route *. bgp_detour_factor src dst)
