(** The live SCIERA network: the Figure-1 topology instantiated as a full
    SCION control plane ({!Scion_controlplane.Mesh}) plus two link-level
    models — the SCION Layer-2 fabric and the commodity-Internet overlay
    used as the BGP baseline. The incident calendar drives link state over
    the measurement window; every state change re-converges the control
    plane, exactly as re-beaconing would. *)

module Mesh = Scion_controlplane.Mesh
module Combinator = Scion_controlplane.Combinator
module Ia = Scion_addr.Ia

type t

val create :
  ?seed:int64 ->
  ?per_origin:int ->
  ?verify_pcbs:bool ->
  ?topology:Topology.spec ->
  ?rounds:int ->
  ?propagate_k:int ->
  ?fanout_cap:int ->
  ?scale_obs:bool ->
  ?quarantine:Mesh.quarantine_policy ->
  ?telemetry:Obs.t ->
  unit ->
  t
(** Build a network at day 0 of the window and run initial beaconing.
    [per_origin] sizes the beacon stores (default 12). [?topology]
    selects the AS/link description (default {!Topology.sciera}, the
    Figure-1 deployment); pass [Topology.of_topogen] output to
    instantiate a generated mesh — the incident calendar then matches no
    links and day changes only trigger periodic re-beaconing. [?rounds]
    and [?propagate_k] tune beaconing (defaults 10 and [per_origin]);
    [?fanout_cap] and [?scale_obs] forward to
    {!Scion_controlplane.Mesh.config} for large generated meshes.
    [?quarantine] arms per-neighbor beacon-origin containment
    ({!Scion_controlplane.Mesh.quarantine_policy}); omitted means no
    quarantine, the historic behaviour.
    [?telemetry] threads a metrics registry through the mesh (beacon
    stores, border routers) and installs link monitors on both fabrics
    (names ["scion"] and ["ip"]). *)

val mesh : t -> Mesh.t

val topology : t -> Topology.spec
(** The description this network was instantiated from. *)

val now_unix : t -> float
val current_day : t -> float

val set_day : t -> float -> unit
(** Advance (or rewind) the calendar: apply the incident set of that day to
    both link models, and re-run beaconing when the set of *up* links
    changed or the last convergence is older than the hop-field expiry. *)

val apply_fault : t -> Fault.Scenario.op -> unit
(** Apply one fault-injector op to both the link fabric and the control
    plane. Bringing a down link (or node) back triggers an immediate
    beacon re-origination ({!Scion_controlplane.Mesh.restore_link}) and
    drops the memoised path cache; [Control_*] ops are bookkept by the
    injector, not the fabric. *)

(* scion-lint: rng-stream fault -- elaboration of the scenario draws from the injector's fault stream *)
val inject :
  t ->
  engine:Netsim.Engine.t ->
  rng:Scion_util.Rng.t ->
  Fault.Scenario.t ->
  Fault.Injector.t
(** Attach a fault scenario to this network on the given engine.
    Determinism contract: [rng] must be a stream of its own (e.g.
    [Rng.of_label seed "fault"]), never the network's workload stream —
    then attaching any scenario leaves every workload draw, and therefore
    every pre-existing figure golden, byte-identical. *)

(** {1 Adversary interpretation}

    The byzantine twin of {!inject}: a declarative {!Fault.Adversary}
    campaign compiled onto the engine, each op interpreted against this
    network's mesh, routers and filters. *)

type adversary_stats = {
  mutable adv_injected : int;  (** Bogus PCBs pushed at honest stores. *)
  mutable adv_accepted : int;  (** ... of which a store accepted. *)
  mutable adv_last_accept_s : float;
      (** Engine time of the last acceptance ([neg_infinity] if none) —
          the containment probe: once defences bite, this stops moving
          while the campaign keeps firing. *)
  mutable adv_rogue : int;  (** Rogue down-segments registered. *)
  mutable adv_forged_sent : int;  (** Forged-MAC packets launched. *)
  mutable adv_forged_delivered : int;  (** ... delivered (0 is the claim). *)
  mutable adv_reflect_requests : int;  (** Spoofed echo requests. *)
  mutable adv_reflect_answered : int;  (** Replies actually emitted. *)
  mutable adv_amp_bytes : int;  (** Amplification bytes at the victim. *)
  mutable adv_flood_frames : int;  (** Flood frames launched. *)
  mutable adv_flood_passed : int;  (** ... that reached the host. *)
  mutable adv_wormholes : (Ia.t * Ia.t) list;  (** Active colluding pairs. *)
  mutable adv_seized : Ia.t list;  (** Identities taken via CA compromise. *)
}

val wormhole_active : adversary_stats -> a:Ia.t -> b:Ia.t -> bool

(* scion-lint: rng-stream fault.adv -- campaign elaboration and attack payload draws use only the adversary stream *)
val attach_adversary :
  t ->
  engine:Netsim.Engine.t ->
  rng:Scion_util.Rng.t ->
  ?defended:bool ->
  Fault.Adversary.t ->
  Fault.Injector.adv * adversary_stats
(** Attach an adversary campaign. Same determinism contract as {!inject}:
    [rng] must be the dedicated adversary stream
    ([Rng.of_label seed "fault.adv"]) and then attaching perturbs no
    workload draw. [~defended:true] (default false) arms the data-plane
    defences — a LightningFilter in front of each flood target (allowing
    the target's real neighbors, so the flood must spoof one and fails
    MAC verification) and a 2 KiB/s SCMP emission throttle on reflectors.
    The control-plane defences are create-time choices: [~verify_pcbs],
    [?quarantine], and operator drills ([Trc_rotate]) in the campaign
    itself. Beacon injections land through the mesh acceptance pipeline;
    rogue registrations drop both the mesh path memo and this network's
    cache. *)

val paths : t -> src:Ia.t -> dst:Ia.t -> Combinator.fullpath list
(** Control-plane paths under the current epoch (memoised per epoch). *)

val live_paths : t -> src:Ia.t -> dst:Ia.t -> Combinator.fullpath list
(** Paths that currently deliver on the data plane (walked through the
    border routers) — "active" in the sense of Figure 8. *)

val path_links : t -> Combinator.fullpath -> Netsim.Net.link_id list
(** The SCION-fabric links under a path's interface trace. *)

val path_hops : t -> src:Scion_addr.Ia.t -> Combinator.fullpath -> Traffic.Flow.hop list
(** {!path_links} with direction: the hop sequence walked from [src]'s
    fabric node, as the traffic engine's {!Traffic.Flow.offer} needs it.
    Raises [Invalid_argument] when [src] is not an endpoint of the path's
    first link. *)

val arm_capacities : t -> bps:float -> queue_pkts:int -> unit
(** Arm {!Netsim.Net.set_capacity} on every SCION-fabric link — the
    congestion-experiment switch. Never called by {!create}: fabrics stay
    in the legacy latency/loss model (and goldens stay byte-identical)
    unless an experiment opts in. *)

val path_headroom_bps : t -> src:Scion_addr.Ia.t -> Combinator.fullpath -> float
(** Spare bottleneck capacity along the directed path: min over hops of
    (capacity − fluid load), ignoring unarmed hops ([infinity] if none is
    armed). The signal {!Scion_endhost.Pan.pick_flow_path} ranks by. *)

val path_load_signal : t -> src:Scion_addr.Ia.t -> Combinator.fullpath -> float * float
(** (max hop utilisation, max hop queueing delay ms) along the directed
    path — the bandwidth signal fed to
    {!Pathmon.Estimator.observe_bandwidth}. (0., 0.) on unarmed paths. *)

val scion_rtt_sample : t -> Combinator.fullpath -> [ `Rtt of float | `Lost ]
(** One SCMP ping over the path (analytic mode: per-link jitter and loss). *)

val scion_rtt_base : t -> Combinator.fullpath -> float
(** Deterministic RTT (2x one-way base+extra latency), for path ranking. *)

(* scion-lint: rng-stream caller -- all jitter/loss draws come from the probe's own stream, never the fabric's *)
val scmp_probe :
  t -> rng:Scion_util.Rng.t -> Combinator.fullpath -> [ `Rtt of float | `Lost ]
(** One full SCMP echo over the path: the request is walked hop by hop
    through the border routers, the echoed reply is walked back over the
    reversed path, and the RTT (or stochastic loss) is sampled from the
    link model using the {b caller's} [rng]. Same determinism contract as
    {!inject}: pass a private stream ([Rng.of_label seed "pathmon.probe"])
    and probing never perturbs workload draws. This is the probe source
    behind [Pathmon.Prober]. *)

val ip_rtt_sample : t -> src:Ia.t -> dst:Ia.t -> [ `Rtt of float | `Lost ]
(** One ICMP ping over the BGP route of the Internet overlay. *)

val ip_rtt_base : t -> src:Ia.t -> dst:Ia.t -> float option
(** Deterministic IP RTT; [None] if the overlay is partitioned. *)

val scion_fabric : t -> Netsim.Net.t
(** The underlying SCION link model (for failure experiments). *)

(* scion-lint: rng-stream fabric -- accessor for the fabric's own stream (workload side) *)
val rng : t -> Scion_util.Rng.t
val rebeacon_count : t -> int
(** How many control-plane convergences have run (observability). *)

val telemetry : t -> Obs.t option
(** The observability bundle the network was created with, if any. *)
