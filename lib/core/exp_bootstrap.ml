module Log = Telemetry.Log
(* Section 5.1, Figure 4: end-host bootstrapping performance — hint
   retrieval, configuration retrieval and total latency per OS, 30 runs per
   hinting mechanism; plus Table 2 (Appendix A), the availability matrix of
   hinting mechanisms per network environment. *)

module Boot = Scion_endhost.Bootstrap
module Hints = Scion_endhost.Hints
module Stats = Scion_util.Stats
module Rng = Scion_util.Rng
module Schnorr = Scion_crypto.Schnorr

type os_summary = {
  os : Boot.os;
  hint : Stats.boxplot;
  config : Stats.boxplot;
  total : Stats.boxplot;
}

type result = {
  per_os : os_summary list;
  runs_per_mechanism : int;
  all_medians_under_ms : float;  (** Max total median across OSes. *)
}

(* A full-featured campus network: every mechanism exercisable. *)
let rich_env =
  {
    Hints.static_ips_only = false;
    dhcp = true;
    dhcpv6 = true;
    ipv6_ras = true;
    dns_search_domain = true;
  }

let make_server () =
  let signer, pub = Schnorr.derive ~seed:"bootstrap-demo-as" in
  let topology =
    Boot.sign_topology ~ia:(Scion_addr.Ia.of_string "71-2:0:42")
      ~border_routers:[ Scion_addr.Ipv4.endpoint_of_string "10.7.0.2:30042" ]
      ~control_service:(Scion_addr.Ipv4.endpoint_of_string "10.7.0.3:30252")
      ~signer
  in
  let root_priv, root_pub = Schnorr.derive ~seed:"bootstrap-demo-root" in
  let trc =
    Scion_cppki.Trc.sign_base ~isd:71 ~validity:(0.0, 4e9)
      ~core_ases:[ Scion_addr.Ia.of_string "71-20965" ]
      ~ca_ases:[ Scion_addr.Ia.of_string "71-20965" ]
      ~quorum:1
      ~roots:[ ("root-71", root_priv, root_pub) ]
  in
  ( { Boot.endpoint = Scion_addr.Ipv4.endpoint_of_string "192.168.1.1:8041"; topology; trcs = [ trc ] },
    pub )

let run ?(runs = 30) ?(seed = 0xB007L) ?telemetry () =
  let server, as_key = make_server () in
  (* No Network underneath this experiment: the metrics evidence is the
     timing distribution itself, one summary per OS and stage. *)
  let record_stage =
    match telemetry with
    | None -> fun ~os:_ ~stage:_ _ -> ()
    | Some obs ->
        let module M = Telemetry.Metrics in
        let reg = Obs.registry obs in
        fun ~os ~stage ms ->
          M.record (M.summary reg ~labels:[ ("os", os); ("stage", stage) ] "exp.fig4.latency_ms") ms
  in
  let per_os =
    List.map
      (fun os ->
        let rng = Rng.of_label seed (Boot.os_name os) in
        let hints = ref [] and configs = ref [] and totals = ref [] in
        List.iter
          (fun mech ->
            if Hints.available mech rich_env <> Hints.Not_applicable then
              for _ = 1 to runs do
                match
                  Boot.run ~rng ~os ~env:rich_env ~server:(Some server) ~as_cert_key:as_key
                    ~force_mechanism:mech ()
                with
                | Ok (_, _, timing) ->
                    hints := timing.Boot.hint_ms :: !hints;
                    configs := timing.Boot.config_ms :: !configs;
                    totals := timing.Boot.total_ms :: !totals;
                    let os = Boot.os_name os in
                    record_stage ~os ~stage:"hint" timing.Boot.hint_ms;
                    record_stage ~os ~stage:"config" timing.Boot.config_ms;
                    record_stage ~os ~stage:"total" timing.Boot.total_ms
                | Error e -> failwith (Boot.error_to_string e)
              done)
          Hints.all;
        {
          os;
          hint = Stats.boxplot (Array.of_list !hints);
          config = Stats.boxplot (Array.of_list !configs);
          total = Stats.boxplot (Array.of_list !totals);
        })
      Boot.all_oses
  in
  let worst_median =
    List.fold_left (fun acc s -> Float.max acc s.total.Stats.med) 0.0 per_os
  in
  { per_os; runs_per_mechanism = runs; all_medians_under_ms = worst_median }

let box_row label (b : Stats.boxplot) =
  [
    label;
    Scion_util.Table.fmt_ms b.Stats.low_whisker;
    Scion_util.Table.fmt_ms b.Stats.q1;
    Scion_util.Table.fmt_ms b.Stats.med;
    Scion_util.Table.fmt_ms b.Stats.q3;
    Scion_util.Table.fmt_ms b.Stats.high_whisker;
  ]

let print_fig4 r =
  Log.out "== Figure 4: bootstrapping latency per platform (%d runs/mechanism, ms) ==\n"
    r.runs_per_mechanism;
  Scion_util.Table.print ~header:[ "stage/os"; "p5"; "q1"; "median"; "q3"; "p95" ]
    ~rows:
      (List.concat_map
         (fun s ->
           let n = Boot.os_name s.os in
           [
             box_row (n ^ " hint") s.hint;
             box_row (n ^ " config") s.config;
             box_row (n ^ " total") s.total;
           ])
         r.per_os);
  Log.out "worst total median: %.1f ms — %s 150 ms, imperceptible to users (paper: median < 150 ms)\n\n"
    r.all_medians_under_ms
    (if r.all_medians_under_ms < 150.0 then "under" else "OVER")

let print_table2 () =
  Log.out "== Table 2: hinting mechanisms vs network environment ==\n";
  let envs =
    [
      ("static", { Hints.static_ips_only = true; dhcp = false; dhcpv6 = false; ipv6_ras = false; dns_search_domain = false });
      ("dhcp", { Hints.static_ips_only = false; dhcp = true; dhcpv6 = false; ipv6_ras = false; dns_search_domain = false });
      ("dhcpv6", { Hints.static_ips_only = false; dhcp = false; dhcpv6 = true; ipv6_ras = false; dns_search_domain = false });
      ("ipv6 RA", { Hints.static_ips_only = false; dhcp = false; dhcpv6 = false; ipv6_ras = true; dns_search_domain = false });
      ("dns", { Hints.static_ips_only = false; dhcp = false; dhcpv6 = false; ipv6_ras = false; dns_search_domain = true });
    ]
  in
  let cell m env =
    match Hints.available m env with
    | Hints.Available -> "Y"
    | Hints.Combined -> "M"
    | Hints.Not_applicable -> "N"
  in
  Scion_util.Table.print
    ~header:("mechanism" :: List.map fst envs)
    ~rows:(List.map (fun m -> Hints.name m :: List.map (fun (_, e) -> cell m e) envs) Hints.all);
  Log.out "\n"
