(** The scaling sweep behind the [scaling] golden figure: synthetic
    [Topogen] meshes of growing AS count instantiated through
    {!Network.create}, measured against the 29-AS Figure-1 baseline.

    Per topology the sweep samples (src, dst) pairs from one private RNG
    stream and reports control-plane reachability, packet-level delivery
    over the best path (run on a real {!Netsim.Engine}), mean path count,
    latency stretch versus the fabric's shortest path, engine events,
    modelled peak control-plane state per AS, and the beaconing cost
    knobs (extensions signed, fan-out drops, path-memo hits/misses).
    Everything is deterministic in the seed: wall-clock is measured and
    bounded by the bench driver, never recorded here. *)

type row = {
  label : string;
  n_target : int;  (** Requested AS count (29 for the baseline). *)
  ases : int;
  links : int;
  cores : int;
  depth : int;  (** Deepest leaf (0 for the hand-built baseline's shape). *)
  pairs : int;  (** Sampled (src, dst) pairs. *)
  reachable_pct : float;  (** Pairs with at least one control-plane path. *)
  delivered_pct : float;  (** Packet-level echoes delivered over the best path. *)
  mean_paths : float;  (** Mean path count over reachable pairs. *)
  mean_stretch : float;  (** Best-path latency over fabric shortest path. *)
  events : int;  (** Engine events processed by the packet sweep. *)
  peak_state_bytes : int;  (** Largest modelled per-AS control-plane state. *)
  beacon_sends : int;  (** Beacon extensions propagated (signatures paid). *)
  fanout_capped : int;  (** Propagation sends dropped by the fan-out cap. *)
  memo_hits : int;
  memo_misses : int;
}

type result = {
  rows : row list;  (** Baseline first, then one row per requested size. *)
  sizes : int list;
  pairs_per_size : int;
}

val run : ?seed:int64 -> ?sizes:int list -> ?pairs:int -> unit -> result
(** Defaults: seed [0x5CA1_AB1E], sizes [100; 300; 1000], 120 pairs. *)

val print_scaling : result -> unit
