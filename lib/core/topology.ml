module Ia = Scion_addr.Ia
module Mesh = Scion_controlplane.Mesh
module Cert = Scion_cppki.Cert

type region = Europe | North_america | Asia | South_america | Africa | Middle_east

let region_to_string = function
  | Europe -> "Europe"
  | North_america -> "North America"
  | Asia -> "Asia"
  | South_america -> "South America"
  | Africa -> "Africa"
  | Middle_east -> "Middle East"

type tier = Tier1 | Tier2 | Tier3

type as_info = {
  ia : Ia.t;
  name : string;
  region : region;
  tier : tier;
  core : bool;
  ca : bool;
  profile : Cert.profile;
  measurement_point : bool;
  pop : string;
}

type link_info = {
  a : Ia.t;
  b : Ia.t;
  cls : Mesh.link_class;
  latency_ms : float;
  jitter_ms : float;
  label : string;
}

let ia = Ia.of_string

(* Figure 1 of the paper. The AS behind 71-2:0:4a is not identified in the
   text; it is one of the five European vantage points, so we model it as a
   GEANT-attached European PoP (see DESIGN.md). *)
let ases =
  [
    (* --- ISD 71 core ASes (Tier 1) --- *)
    {
      ia = ia "71-20965"; name = "GEANT"; region = Europe; tier = Tier1; core = true; ca = true;
      profile = Cert.Proprietary; measurement_point = true; pop = "Geneva";
    };
    {
      ia = ia "71-2:0:35"; name = "BRIDGES"; region = North_america; tier = Tier1; core = true;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "McLean";
    };
    {
      ia = ia "71-2:0:3b"; name = "KISTI DJ"; region = Asia; tier = Tier1; core = true; ca = false;
      profile = Cert.Proprietary; measurement_point = true; pop = "Daejeon";
    };
    {
      ia = ia "71-2:0:3c"; name = "KISTI HK"; region = Asia; tier = Tier1; core = true; ca = false;
      profile = Cert.Proprietary; measurement_point = false; pop = "Hong Kong";
    };
    {
      ia = ia "71-2:0:3d"; name = "KISTI SG"; region = Asia; tier = Tier1; core = true; ca = false;
      profile = Cert.Proprietary; measurement_point = true; pop = "Singapore";
    };
    {
      ia = ia "71-2:0:3e"; name = "KISTI AMS"; region = Europe; tier = Tier1; core = true;
      ca = false; profile = Cert.Proprietary; measurement_point = true; pop = "Amsterdam";
    };
    {
      ia = ia "71-2:0:3f"; name = "KISTI CHG"; region = North_america; tier = Tier1; core = true;
      ca = false; profile = Cert.Proprietary; measurement_point = true; pop = "Chicago";
    };
    {
      ia = ia "71-2:0:40"; name = "KISTI STL"; region = North_america; tier = Tier1; core = true;
      ca = false; profile = Cert.Proprietary; measurement_point = false; pop = "Seattle";
    };
    (* --- European institutions (GEANT children) --- *)
    {
      ia = ia "71-559"; name = "SWITCH"; region = Europe; tier = Tier2; core = false; ca = false;
      profile = Cert.Proprietary; measurement_point = false; pop = "Geneva";
    };
    {
      ia = ia "71-1140"; name = "SIDN Labs"; region = Europe; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = true; pop = "Arnhem";
    };
    {
      ia = ia "71-2546"; name = "Demokritos"; region = Europe; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "Athens";
    };
    {
      ia = ia "71-2:0:42"; name = "OVGU"; region = Europe; tier = Tier3; core = false; ca = false;
      profile = Cert.Open_source; measurement_point = true; pop = "Magdeburg";
    };
    {
      ia = ia "71-2:0:49"; name = "Cybexer"; region = Europe; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "Tallinn";
    };
    {
      ia = ia "71-203311"; name = "CCDCoE"; region = Europe; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "Tallinn";
    };
    {
      ia = ia "71-2:0:4a"; name = "EU-PoP"; region = Europe; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = true; pop = "Paris";
    };
    (* --- Africa --- *)
    {
      ia = ia "71-37288"; name = "WACREN"; region = Africa; tier = Tier2; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "London";
    };
    (* --- North American institutions (BRIDGES children) --- *)
    {
      ia = ia "71-225"; name = "UVa"; region = North_america; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = true; pop = "Charlottesville";
    };
    {
      ia = ia "71-88"; name = "Princeton"; region = North_america; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "Princeton";
    };
    {
      ia = ia "71-2:0:48"; name = "Equinix"; region = North_america; tier = Tier3; core = false;
      ca = false; profile = Cert.Proprietary; measurement_point = true; pop = "Ashburn";
    };
    {
      ia = ia "71-398900"; name = "FABRIC"; region = North_america; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "RTP";
    };
    (* --- Asian institutions --- *)
    {
      ia = ia "71-2:0:61"; name = "NUS"; region = Asia; tier = Tier3; core = false; ca = false;
      profile = Cert.Open_source; measurement_point = false; pop = "Singapore";
    };
    {
      ia = ia "71-2:0:18"; name = "SEC"; region = Asia; tier = Tier3; core = false; ca = false;
      profile = Cert.Open_source; measurement_point = false; pop = "Singapore";
    };
    {
      ia = ia "71-50999"; name = "KAUST"; region = Middle_east; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "Jeddah";
    };
    {
      ia = ia "71-2:0:4d"; name = "Korea University"; region = Asia; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "Seoul";
    };
    {
      ia = ia "71-4158"; name = "CityU HK"; region = Asia; tier = Tier3; core = false; ca = false;
      profile = Cert.Open_source; measurement_point = false; pop = "Hong Kong";
    };
    (* --- South America --- *)
    {
      ia = ia "71-1916"; name = "RNP"; region = South_america; tier = Tier2; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "Rio de Janeiro";
    };
    {
      ia = ia "71-2:0:5c"; name = "UFMS"; region = South_america; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = true; pop = "Campo Grande";
    };
    (* --- ISD 64 (Swiss ISD, via SWITCH) --- *)
    {
      ia = ia "64-559"; name = "SWITCH (ISD 64)"; region = Europe; tier = Tier1; core = true;
      ca = true; profile = Cert.Proprietary; measurement_point = false; pop = "Zurich";
    };
    {
      ia = ia "64-2:0:9"; name = "ETH Zurich"; region = Europe; tier = Tier3; core = false;
      ca = false; profile = Cert.Open_source; measurement_point = false; pop = "Zurich";
    };
  ]

let core l = (Mesh.Core_link, l)
let pc l = (Mesh.Parent_child, l)

let mk (a, b, (cls, latency_ms), jitter_ms, label) =
  { a = ia a; b = ia b; cls; latency_ms; jitter_ms; label }

(* One-way propagation latencies in ms, set from PoP geography (Table 1).
   For Parent_child links [a] is the parent. The second GEANT-BRIDGES link
   and the KREONET Daejeon-Singapore direct link exist in the topology but
   are toggled by the incident calendar (new EU-US capacity on Jan 25; the
   submarine-cable cut). *)
let links =
  List.map mk
    [
      (* Core mesh *)
      ("71-20965", "71-2:0:35", core 40.0, 1.5, "GEANT transatlantic");
      ("71-20965", "71-2:0:35", core 42.0, 1.5, "GEANT transatlantic B");
      ("71-20965", "71-2:0:35", core 46.0, 1.5, "EU-US capacity (new Jan 25)");
      ("71-20965", "71-2:0:3e", core 2.0, 0.2, "GEANT-KREONET @AMS");
      ("71-20965", "71-2:0:3e", core 3.0, 0.2, "GEANT-KREONET @AMS B");
      ("71-20965", "71-2:0:3d", core 82.0, 2.0, "GEANT Singapore link");
      ("71-2:0:35", "71-2:0:3f", core 10.0, 0.5, "Internet2 McLean-Chicago");
      ("71-2:0:3b", "71-2:0:3c", core 18.0, 0.6, "KREONET ring DJ-HK");
      ("71-2:0:3c", "71-2:0:3d", core 17.0, 0.6, "KREONET ring HK-SG");
      ("71-2:0:3d", "71-2:0:3e", core 85.0, 2.0, "KREONET ring SG-AMS");
      ("71-2:0:3d", "71-2:0:3e", core 80.0, 2.0, "CAE-1 SG-AMS");
      ("71-2:0:3d", "71-2:0:3e", core 88.0, 2.2, "KAUST I SG-AMS");
      ("71-2:0:3d", "71-2:0:3e", core 90.0, 2.2, "KAUST II SG-AMS");
      ("71-2:0:3e", "71-2:0:3f", core 45.0, 1.5, "KREONET ring AMS-CHG");
      ("71-2:0:3e", "71-2:0:3f", core 50.0, 1.5, "AMS-CHG capacity (new Jan 25)");
      ("71-2:0:3f", "71-2:0:40", core 25.0, 0.8, "KREONET ring CHG-STL");
      ("71-2:0:40", "71-2:0:3b", core 62.0, 2.0, "KREONET ring STL-DJ");
      ("71-2:0:3b", "71-2:0:3d", core 38.0, 1.2, "KREONET DJ-SG direct");
      ("71-20965", "64-559", core 5.0, 0.3, "GEANT-SWITCH inter-ISD");
      (* Europe: GEANT children *)
      ("71-20965", "71-559", pc 5.0, 0.3, "GEANT Plus");
      ("71-20965", "71-1140", pc 3.0, 0.3, "GEANT Plus / Netherlight");
      ("71-20965", "71-2546", pc 20.0, 0.8, "GEANT Plus via GRNet");
      ("71-20965", "71-2:0:42", pc 8.0, 0.4, "GEANT Plus via DFN");
      ("71-20965", "71-2:0:49", pc 18.0, 0.7, "GEANT Plus via EENet");
      ("71-20965", "71-203311", pc 18.0, 0.7, "EENet VLANs (reused)");
      ("71-20965", "71-2:0:4a", pc 4.0, 0.3, "GEANT Plus");
      ("71-20965", "71-2:0:4a", pc 6.0, 0.3, "GEANT Plus B");
      ("71-20965", "71-37288", pc 8.0, 0.5, "WACREN@London VLAN A");
      ("71-20965", "71-37288", pc 8.5, 0.5, "WACREN@London VLAN B");
      ("71-20965", "71-1916", pc 95.0, 2.5, "GEANT-RNP VLAN A");
      ("71-20965", "71-1916", pc 97.0, 2.5, "GEANT-RNP VLAN B");
      (* North America: BRIDGES children *)
      ("71-2:0:35", "71-225", pc 8.0, 0.4, "Internet2/MARIA VLAN A");
      ("71-2:0:35", "71-225", pc 8.5, 0.4, "Internet2/MARIA VLAN B");
      ("71-2:0:35", "71-88", pc 6.0, 0.4, "Internet2/NJEdge VLAN A");
      ("71-2:0:35", "71-88", pc 6.5, 0.4, "Internet2/NJEdge VLAN B");
      ("71-2:0:35", "71-2:0:48", pc 1.0, 0.1, "Ashburn cross-connect A");
      ("71-2:0:35", "71-2:0:48", pc 1.5, 0.1, "Ashburn cross-connect B");
      ("71-2:0:35", "71-398900", pc 10.0, 0.5, "FABRIC via Internet2");
      ("71-2:0:35", "71-1916", pc 60.0, 2.0, "Internet2/AtlanticWave");
      (* Asia / Middle East leaves *)
      ("71-2:0:3d", "71-2:0:61", pc 2.0, 0.2, "SingAREN Open Exchange");
      ("71-2:0:3d", "71-2:0:18", pc 3.0, 0.3, "VXLAN over SingAREN");
      ("71-2:0:3d", "71-50999", pc 45.0, 1.5, "KAUST to SG PoP");
      ("71-2:0:3e", "71-50999", pc 50.0, 1.5, "KAUST to AMS PoP");
      ("71-2:0:3b", "71-2:0:4d", pc 2.0, 0.2, "KREONET Daejeon-Seoul");
      ("71-2:0:3c", "71-4158", pc 2.0, 0.2, "HARNET Hong Kong");
      (* South America *)
      ("71-1916", "71-2:0:5c", pc 12.0, 0.6, "RNP Ipe backbone A");
      ("71-1916", "71-2:0:5c", pc 13.0, 0.6, "RNP Ipe backbone B");
      (* ISD 64 *)
      ("64-559", "64-2:0:9", pc 2.0, 0.2, "SWITCH lan");
    ]

let find q = List.find (fun a -> Ia.equal a.ia q) ases

let find_by_name n =
  (* Forgiving match: "SIDN Labs", "sidnlabs" and "sidn-labs" all resolve. *)
  let canon s =
    String.lowercase_ascii s
    |> String.to_seq
    |> Seq.filter (fun c -> c <> ' ' && c <> '-' && c <> '_')
    |> String.of_seq
  in
  List.find_opt (fun a -> canon a.name = canon n) ases

let name_of q = match find q with a -> a.name | exception Not_found -> Ia.to_string q

let measurement_ases =
  List.filter_map (fun a -> if a.measurement_point then Some a.ia else None) ases

let fig8_ases =
  List.map ia
    [
      "71-2:0:5c"; "71-2:0:4a"; "71-2:0:48"; "71-2:0:3f"; "71-2:0:3e"; "71-2:0:3d"; "71-2:0:3b";
      "71-225"; "71-20965";
    ]

(* --- IP baseline overlay --- *)

type ip_hub = { hub_name : string; hub_region : region }

let ip_hubs =
  [
    { hub_name = "EU"; hub_region = Europe };
    { hub_name = "NA-E"; hub_region = North_america };
    { hub_name = "NA-W"; hub_region = North_america };
    { hub_name = "ASIA-E"; hub_region = Asia };
    { hub_name = "ASIA-SE"; hub_region = Asia };
    { hub_name = "SA"; hub_region = South_america };
    { hub_name = "ME"; hub_region = Middle_east };
  ]

(* Inter-hub transit carries the commodity Internet's routing inflation:
   BGP paths between continents are measurably longer than the dedicated
   R&E circuits SCIERA rides (the paper's Section 4.3 notes NSPs even
   reserve bandwidth for SCION), so hub-hub latencies sit ~20%% above the
   corresponding great-circle figures used for the SCION fabric. *)
let ip_hub_links =
  [
    ("EU", "NA-E", 46.0);
    ("NA-E", "NA-W", 34.0);
    ("NA-W", "ASIA-E", 65.0);
    ("ASIA-E", "ASIA-SE", 41.0);
    ("ASIA-SE", "ME", 47.0);
    ("ME", "EU", 52.0);
    ("EU", "ASIA-SE", 92.0);
    ("SA", "NA-E", 61.0);
    ("SA", "EU", 113.0);
  ]

(* Region hubs and tier-scaled access latencies for ASes outside the
   hand-built table (generated topologies): every region homes onto its
   nearest hub, Africa via London like WACREN does. *)
let regional_hub = function
  | Europe -> "EU"
  | North_america -> "NA-E"
  | Asia -> "ASIA-SE"
  | South_america -> "SA"
  | Africa -> "EU"
  | Middle_east -> "ME"

let tier_access_ms = function Tier1 -> 2.0 | Tier2 -> 6.0 | Tier3 -> 12.0

let ip_access_for (a : as_info) =
  match a.name with
  | "GEANT" -> ("EU", 4.0)
  | "BRIDGES" -> ("NA-E", 2.0)
  | "KISTI DJ" -> ("ASIA-E", 2.0)
  | "KISTI HK" -> ("ASIA-SE", 14.0)
  | "KISTI SG" -> ("ASIA-SE", 2.0)
  | "KISTI AMS" -> ("EU", 3.0)
  | "KISTI CHG" -> ("NA-E", 10.0)
  | "KISTI STL" -> ("NA-W", 2.0)
  | "SWITCH" -> ("EU", 3.0)
  | "SIDN Labs" -> ("EU", 2.0)
  | "Demokritos" -> ("EU", 13.0)
  | "OVGU" -> ("EU", 4.0)
  | "Cybexer" -> ("EU", 10.0)
  | "CCDCoE" -> ("EU", 10.0)
  | "EU-PoP" -> ("EU", 2.5)
  | "WACREN" -> ("EU", 10.0)
  | "UVa" -> ("NA-E", 5.0)
  | "Princeton" -> ("NA-E", 4.0)
  | "Equinix" -> ("NA-E", 1.0)
  | "FABRIC" -> ("NA-E", 7.0)
  | "NUS" -> ("ASIA-SE", 1.0)
  | "SEC" -> ("ASIA-SE", 1.5)
  | "KAUST" -> ("ME", 3.0)
  | "Korea University" -> ("ASIA-E", 1.5)
  | "CityU HK" -> ("ASIA-SE", 14.0)
  | "RNP" -> ("SA", 5.0)
  | "UFMS" -> ("SA", 16.0)
  | "SWITCH (ISD 64)" -> ("EU", 3.0)
  | "ETH Zurich" -> ("EU", 3.0)
  | _ -> (regional_hub a.region, tier_access_ms a.tier)

let ip_access q = ip_access_for (find q)

(* --- Instantiable topology descriptions --- *)

type spec = { spec_ases : as_info list; spec_links : link_info list }

let sciera = { spec_ases = ases; spec_links = links }

let region_of_topogen = function
  | Topogen.Europe -> Europe
  | Topogen.North_america -> North_america
  | Topogen.Asia -> Asia
  | Topogen.South_america -> South_america
  | Topogen.Africa -> Africa
  | Topogen.Middle_east -> Middle_east

let tier_of_topogen = function
  | Topogen.Tier1 -> Tier1
  | Topogen.Tier2 -> Tier2
  | Topogen.Tier3 -> Tier3

let of_topogen (g : Topogen.t) =
  {
    spec_ases =
      List.map
        (fun (a : Topogen.as_info) ->
          {
            ia = a.Topogen.ia;
            name = a.Topogen.name;
            region = region_of_topogen a.Topogen.region;
            tier = tier_of_topogen a.Topogen.tier;
            core = a.Topogen.core;
            ca = a.Topogen.ca;
            profile = a.Topogen.profile;
            measurement_point = a.Topogen.measurement_point;
            pop = a.Topogen.pop;
          })
        g.Topogen.ases;
    spec_links =
      List.map
        (fun (l : Topogen.link_info) ->
          {
            a = l.Topogen.a;
            b = l.Topogen.b;
            cls = l.Topogen.cls;
            latency_ms = l.Topogen.latency_ms;
            jitter_ms = l.Topogen.jitter_ms;
            label = l.Topogen.label;
          })
        g.Topogen.links;
  }

(* Table 1 of the paper. *)
let pops =
  [
    ("Amsterdam, NL", "GEANT/KREONET", "Netherlight");
    ("Ashburn, US", "BRIDGES", "Internet2/MARIA");
    ("Chicago, US", "KREONET", "Internet2/StarLight");
    ("Daejeon, KR", "KREONET", "KISTI");
    ("Frankfurt, DE", "GEANT", "");
    ("Geneva, CH", "GEANT", "CERN/SWITCH");
    ("Hong Kong, HK", "KREONET", "CSTNet/HARNET");
    ("Jacksonville, US", "RNP", "Internet2/AtlanticWave");
    ("Jeddah, SA", "GEANT/KREONET", "KAUST");
    ("Lisbon, PT", "GEANT/RNP", "RedCLARA");
    ("London, GB", "GEANT/WACREN", "AfricaConnect");
    ("Madrid, ES", "GEANT/RNP", "RedCLARA");
    ("McLean, US", "BRIDGES", "Internet2/WIX");
    ("Paris, FR", "GEANT", "SWITCH");
    ("Seattle, US", "KREONET", "Internet2/PacificWave");
    ("Singapore, SG", "GEANT/KREONET", "SingAREN");
  ]
