module Log = Telemetry.Log
(* Section 5.3, Figure 3 and Appendix C: the SCIERA deployment timeline and
   per-AS deployment effort. Dates and the qualitative effort narrative are
   data from the paper; the effort model turns the narrative into numbers:
   a base cost per deployment kind, multiplied by a learning-curve factor
   (each prior deployment of the same kind makes the next one cheaper) and
   reduced once the SCION Orchestrator (Section 4.4) is available. *)

type kind =
  | Core_backbone  (** New core AS incl. hardware procurement (GEANT, KISTI). *)
  | Nren_attach  (** NREN-facilitated site over existing NREN circuits. *)
  | Campus_vlan  (** Institution needing multi-party VLAN negotiation. *)
  | Reused_circuit  (** Rides VLANs that already exist. *)

let kind_to_string = function
  | Core_backbone -> "core backbone"
  | Nren_attach -> "NREN attach"
  | Campus_vlan -> "campus VLANs"
  | Reused_circuit -> "reused circuit"

type event = {
  who : string;
  as_str : string;
  date : string;  (** YYYY-MM as in Figure 3. *)
  kind : kind;
  note : string;
}

(* Figure 3 plus the Appendix C narrative. *)
let timeline =
  [
    { who = "GEANT"; as_str = "71-20965"; date = "2022-06"; kind = Core_backbone;
      note = "hardware procurement + MoU; first production BR in GVA" };
    { who = "SWITCH"; as_str = "71-559"; date = "2022-09"; kind = Reused_circuit;
      note = "already experienced from ISD 64" };
    { who = "SIDN Labs"; as_str = "71-1140"; date = "2023-03"; kind = Nren_attach;
      note = "was on SCIONLab; two new VLANs" };
    { who = "BRIDGES"; as_str = "71-2:0:35"; date = "2023-03"; kind = Core_backbone;
      note = "hardware + 1.5 months of VLAN troubleshooting to GEANT" };
    { who = "UVa"; as_str = "71-225"; date = "2023-03"; kind = Campus_vlan;
      note = "first customer AS; range of VLANs, time-sync and path-expiry issues" };
    { who = "Equinix"; as_str = "71-2:0:48"; date = "2023-05"; kind = Campus_vlan;
      note = "cross-connect in Ashburn; no-signal troubleshooting" };
    { who = "Cybexer"; as_str = "71-2:0:49"; date = "2023-07"; kind = Nren_attach;
      note = "two GEANT Plus links via EENet" };
    { who = "Princeton"; as_str = "71-88"; date = "2023-08"; kind = Campus_vlan;
      note = "four parties: BRIDGES, Internet2, NJEdge, Princeton" };
    { who = "OVGU"; as_str = "71-2:0:42"; date = "2023-08"; kind = Nren_attach;
      note = "GEANT Plus via DFN" };
    { who = "Demokritos"; as_str = "71-2546"; date = "2023-09"; kind = Nren_attach;
      note = "GEANT Plus via GRNet" };
    { who = "SEC"; as_str = "71-2:0:18"; date = "2023-10"; kind = Campus_vlan;
      note = "VXLAN over SingAREN (no native VLAN possible)" };
    { who = "KISTI CHG"; as_str = "71-2:0:3f"; date = "2023-10"; kind = Core_backbone;
      note = "reinstalling SCIONLab nodes with production stack" };
    { who = "KISTI DJ"; as_str = "71-2:0:3b"; date = "2024-05"; kind = Core_backbone;
      note = "limited management access; VLANs coordinated with SingAREN" };
    { who = "KISTI AMS"; as_str = "71-2:0:3e"; date = "2024-05"; kind = Core_backbone;
      note = "" };
    { who = "KISTI SG"; as_str = "71-2:0:3d"; date = "2024-08"; kind = Core_backbone;
      note = "" };
    { who = "UFMS"; as_str = "71-2:0:5c"; date = "2024-08"; kind = Nren_attach;
      note = "VLAN trigger from GEANT side already routine" };
    { who = "CCDCoE"; as_str = "71-203311"; date = "2024-09"; kind = Reused_circuit;
      note = "reused Cybexer's EENet VLANs" };
    { who = "KAUST"; as_str = "71-50999"; date = "2025-03"; kind = Campus_vlan;
      note = "long hardware delivery" };
    { who = "RNP"; as_str = "71-1916"; date = "2025-04"; kind = Nren_attach;
      note = "considerably less effort than earlier comparable setups" };
    { who = "KISTI HK"; as_str = "71-2:0:3c"; date = "2025-04"; kind = Core_backbone;
      note = "routine by now" };
    { who = "KISTI STL"; as_str = "71-2:0:40"; date = "2025-04"; kind = Core_backbone;
      note = "" };
    { who = "NUS"; as_str = "71-2:0:61"; date = "2025-06"; kind = Nren_attach;
      note = "straightforward over SingAREN Open Exchange" };
  ]

let base_effort = function
  | Core_backbone -> 100.0
  | Campus_vlan -> 70.0
  | Nren_attach -> 40.0
  | Reused_circuit -> 15.0

let orchestrator_available date = date >= "2024-01"

(* Learning curve: the n-th deployment of a kind costs base * n^(log2 r)
   with r the per-doubling retention — the classic Wright model; we use
   r = 0.75 (25% cheaper per doubling of experience), plus a flat 40%
   reduction once the orchestrator automates setup and management. *)
let learning_rate = 0.75

type scored = { event : event; effort : float }

let scored_timeline =
  let counts = Hashtbl.create 8 in
  List.map
    (fun e ->
      let n = 1 + Scion_util.Table.find_or ~default:0 counts e.kind in
      Hashtbl.replace counts e.kind n;
      let curve = Float.pow (float_of_int n) (Float.log learning_rate /. Float.log 2.0) in
      let automation = if orchestrator_available e.date then 0.6 else 1.0 in
      { event = e; effort = base_effort e.kind *. curve *. automation })
    timeline

let print_fig3 () =
  Log.out "== Figure 3: SCIERA deployment and estimated effort over time ==\n";
  Scion_util.Table.print
    ~header:[ "date"; "site"; "AS"; "kind"; "effort"; "note" ]
    ~rows:
      (List.map
         (fun s ->
           [
             s.event.date;
             s.event.who;
             s.event.as_str;
             kind_to_string s.event.kind;
             Printf.sprintf "%.0f" s.effort;
             s.event.note;
           ])
         scored_timeline);
  (* The paper's headline: first-of-kind deployments cost the most and
     subsequent ones get cheaper. *)
  let first_last kind =
    let of_kind = List.filter (fun s -> s.event.kind = kind) scored_timeline in
    match (of_kind, List.rev of_kind) with
    | first :: _, last :: _ -> Some (first.effort, last.effort)
    | _ -> None
  in
  List.iter
    (fun kind ->
      match first_last kind with
      | Some (first, last) ->
          Log.out "%-15s first %.0f -> latest %.0f (%.0f%% cheaper)\n" (kind_to_string kind)
            first last
            (100.0 *. (first -. last) /. first)
      | None -> ())
    [ Core_backbone; Campus_vlan; Nren_attach; Reused_circuit ];
  Log.out "\n"
