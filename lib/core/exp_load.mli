(** The load figure: the flow-level traffic engine ({!Traffic.Flow} /
    {!Traffic.Workload}) driven over capacity-armed fabrics, sweeping the
    offered-load multiplier and comparing two endpoint strategies on the
    byte-identical arrival sequence:

    - ["scion-mp"] — multipath-capable endpoints place each flow on the
      candidate path with the most bottleneck headroom
      ({!Scion_endhost.Pan.pick_flow_path} over
      {!Network.path_headroom_bps});
    - ["ip-sp"] — single-path-IP endpoints always use the statically best
      path, the way a BGP-routed host would.

    Hybrid fidelity: a foreground application is additionally simulated
    packet by packet ({!Netsim.Net.transmit}) over the loaded links and
    reports the queueing delay and tail drops the fluid background
    creates. Runs at two scales — the 29-AS Figure-1 mesh and a generated
    [topogen] mesh. *)

type arm = Multipath | Singlepath

val arm_name : arm -> string
(** ["scion-mp"] / ["ip-sp"]. *)

type cell = {
  c_scale : string;
  c_arm : arm;
  c_load : float;  (** Offered-load multiplier of the sweep. *)
  c_offered_mbps : float;  (** Routed offered traffic over the window. *)
  c_goodput_mbps : float;  (** Delivered bytes over the window. *)
  c_mean_fct_s : float;
  c_p99_fct_s : float;
  c_reject_pct : float;  (** Flows denied admission (fluid tail drop). *)
  c_fg_drop_pct : float;  (** Foreground echoes lost to full FIFOs. *)
  c_fg_delay_ms : float;  (** Mean foreground one-way delivery delay under the load. *)
  c_arrivals : int;  (** Workload arrivals (including unroutable pairs). *)
  c_completed : int;
}

type result = {
  loads : float list;
  duration_s : float;
  cells : cell list;
  mp_goodput_gain : float;
      (** Multipath/single-path goodput ratio at the top load, 29-AS mesh. *)
  mp_p99_fct_ratio : float;
      (** Single-path/multipath p99 FCT ratio at the top load, 29-AS mesh. *)
}

val run :
  ?seed:int64 ->
  ?loads:float list ->
  ?duration_s:float ->
  ?topogen_ases:int ->
  ?telemetry:Obs.t ->
  unit ->
  result
(** Run the sweep (defaults: loads [0.3;0.6;1.0;1.5], 20 s cells, a
    300-AS generated mesh beside the 29-AS one). One engine per scale
    carries its cells sequentially; the workload stream is re-derived from
    [seed] for every cell, so both arms see identical arrivals at each
    load point. [?telemetry] wires the 29-AS network stack, the
    [traffic.*] series (labelled [scale]/[arm]) and the [exp.load.*]
    aggregates. Raises [Invalid_argument] on an empty sweep or
    non-positive load/duration. *)

val print_load : result -> unit
