(** The SCION-based Science-DMZ (Section 4.7.1): LightningFilter-style
    line-rate traffic filtering and Hercules-style multipath bulk transfer.

    LightningFilter authenticates SCION traffic with per-source-AS
    symmetric keys (DRKey-style derivation) and enforces per-AS rate
    limits, replacing the stateful campus firewall that would otherwise
    bottleneck a data-transfer node. Hercules schedules a bulk transfer
    across several SCION paths at once, which is where the path
    disjointness of Figure 10b turns into aggregated bandwidth. *)

module Filter : sig
  type t

  type verdict = Accepted | Bad_mac | Rate_limited | Unknown_source | Duplicate

  val create :
    ?dedup_window_s:float ->
    local_secret:string ->
    allowed:(Scion_addr.Ia.t * float) list ->
    unit ->
    t
  (** [allowed] maps each authorised peer AS to its rate limit in
      packets/second (token bucket with a 1-second burst).
      [dedup_window_s] (default 1.0) is the length of the replay-suppression
      window: within one window, a tag is MAC-verified at most once per
      source AS; any later packet carrying the same tag is dropped as
      {!Duplicate} at hashtable-lookup cost, without touching the payload. *)

  val host_key : t -> peer:Scion_addr.Ia.t -> string
  (** The DRKey-style key a sender in [peer] uses to authenticate packets
      to this DMZ (derivable on both sides without per-flow state). *)

  val authenticate : key:string -> payload:string -> string
  (** Sender side: the 16-byte tag for a payload. *)

  val check :
    t -> now:float -> src:Scion_addr.Ia.t -> payload:string -> tag:string -> verdict
  (** Admission order: source lookup, window rotation, tag dedup
      ({!Duplicate}, no hash), MAC verification ({!Bad_mac}, not recorded
      in the window), then the token bucket. Only MAC-verified tags enter
      the dedup store, so a forged tag can never shadow a later genuine
      packet. *)

  val check_batch :
    t ->
    now:float ->
    (Scion_addr.Ia.t * string * string) list ->
    verdict list
  (** [check_batch t ~now [(src, payload, tag); ...]] runs {!check} over an
      arriving burst sharing one [now]. The whole burst lands in a single
      dedup window, so each distinct packet is hashed once and every replay
      in the burst — including replays {e within} the batch — is suppressed
      at lookup cost. *)

  val accepted : t -> int
  val rejected : t -> int
end

module Hercules : sig
  type path_capacity = { rtt_ms : float; bandwidth_mbps : float }

  type plan = {
    total_mbps : float;
    completion_s : float;
    per_path_share : float list;  (** Fraction of bytes per path. *)
  }

  val plan_transfer : size_gb : float -> paths:path_capacity list -> plan
  (** Bandwidth-proportional striping across paths; completion includes a
      slow-start ramp of a few RTTs on each path. Raises
      [Invalid_argument] on an empty path list. *)

  val single_path_completion : size_gb:float -> path_capacity -> float
end
