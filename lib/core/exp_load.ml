module Log = Telemetry.Log
(* The load figure: goodput, flow completion time and queue drops vs
   offered load, SCION multipath-capable endpoints vs a single-path-IP
   baseline, at two scales (the 29-AS Figure-1 mesh and a topogen mesh).

   Hybrid fidelity: the offered load itself is fluid ([Traffic.Flow] —
   max-min fair shares over capacity-armed fabric links), while a
   foreground application is simulated packet by packet over the same
   links ([Net.transmit]) and experiences the congestion the fluid
   background creates — queueing delay and bounded-FIFO tail drops.

   Both arms carry the byte-identical arrival sequence (the workload
   stream is re-derived from the seed for every cell): the only
   difference is flow placement. The multipath arm places each flow on
   the candidate path with the most bottleneck headroom
   ([Pan.pick_flow_path]); the single-path arm always uses the statically
   best path, the way a BGP-routed IP endpoint would. *)

module Ia = Scion_addr.Ia
module Rng = Scion_util.Rng
module Stats = Scion_util.Stats
module Table = Scion_util.Table
module Combinator = Scion_controlplane.Combinator
module Pan = Scion_endhost.Pan
module Engine = Netsim.Engine
module Net = Netsim.Net

type arm = Multipath | Singlepath

let arm_name = function Multipath -> "scion-mp" | Singlepath -> "ip-sp"

type cell = {
  c_scale : string;
  c_arm : arm;
  c_load : float;  (** Offered-load multiplier of the sweep. *)
  c_offered_mbps : float;
  c_goodput_mbps : float;
  c_mean_fct_s : float;
  c_p99_fct_s : float;
  c_reject_pct : float;  (** Flows denied admission (fluid tail drop). *)
  c_fg_drop_pct : float;  (** Foreground packet echoes lost to full FIFOs. *)
  c_fg_delay_ms : float;  (** Mean foreground one-way delivery delay under the load. *)
  c_arrivals : int;
  c_completed : int;
}

type result = {
  loads : float list;
  duration_s : float;
  cells : cell list;
  mp_goodput_gain : float;  (** mp/sp goodput at the top load, 29-AS mesh. *)
  mp_p99_fct_ratio : float;  (** sp/mp p99 FCT at the top load, 29-AS mesh. *)
}

(* --- Model constants --------------------------------------------------- *)

(* Capacity slice per fabric link direction. Deliberately far below the
   10 Gbps circuit rate: the experiment models the contended share left
   for bulk R&E transfers, so the sweep reaches saturation with evidence-
   sized workloads. *)
let cap_bps = 1.5e6
let queue_pkts = 32
let min_rate_bps = 500.0e3 (* admission floor: the fluid analogue of a tail drop *)
let base_rate_per_s = 6.0 (* aggregate arrivals/s at load multiplier 1 *)
let day_s = 120.0 (* compressed diurnal day: a cell sees hours of curve *)
let candidates_n = 4 (* paths a multipath endpoint balances over *)
let fg_period_s = 0.5 (* foreground echo cadence *)
let fg_bytes = 1500 (* full-size foreground packets *)
let fg_burst = 4 (* packets per echo: enough to exercise the FIFO *)

let latency_policy = { Pan.default_policy with Pan.preferences = [ Pan.Latency ] }

(* Diurnal phase offsets by region, in curve points ("hours"): the PoPs
   peak at different simulated times, like the paper's federated NRENs. *)
let phase_of_region = function
  | Topology.Europe -> 0.0
  | Topology.North_america -> -6.0
  | Topology.Asia -> 7.0
  | Topology.South_america -> -4.0
  | Topology.Africa -> 1.0
  | Topology.Middle_east -> 3.0

let weight_of_tier = function
  | Topology.Tier1 -> 3.0
  | Topology.Tier2 -> 2.0
  | Topology.Tier3 -> 1.0

let pop_of_as (a : Topology.as_info) =
  {
    Traffic.Workload.name = Ia.to_string a.Topology.ia;
    weight = weight_of_tier a.Topology.tier;
    phase_h = phase_of_region a.Topology.region;
  }

(* --- Per-scale context ------------------------------------------------- *)

type pair_paths = {
  ranked : Combinator.fullpath list;  (** Policy order, at most [candidates_n]. *)
  hops_of : (string, Traffic.Flow.hop list) Hashtbl.t;  (** by fingerprint *)
}

type scale_ctx = {
  s_name : string;
  s_net : Network.t;
  s_engine : Engine.t;
  s_pops : Traffic.Workload.pop list;
  s_ia_of : (string, Ia.t) Hashtbl.t;
  s_pairs : (string, pair_paths) Hashtbl.t;  (** "src>dst" -> candidates *)
  s_fg_src : Ia.t;
  s_fg_hops : Traffic.Flow.hop list;  (** static best path of the fg pair *)
  s_fg_base_ms : float;
  mutable s_fg_qdrops : int;  (** monitor-fed, reset per cell *)
}

let take n xs = List.filteri (fun i _ -> i < n) xs

(* Pick up to [n] workload endpoints from a generated mesh, evenly spaced
   through the AS list so cores and leaves both serve load. *)
let spaced_ases n (ases : Topology.as_info list) =
  let total = List.length ases in
  let step = Stdlib.max 1 (total / n) in
  take n (List.filteri (fun i _ -> i mod step = 0) ases)

let make_ctx ~seed ~telemetry ~name ~topogen_n =
  let net =
    match topogen_n with
    | None -> Network.create ~seed ~per_origin:4 ~verify_pcbs:false ?telemetry ()
    | Some n_ases ->
        (* Telemetry-less at topogen scale: per-AS labelled stack series
           would explode the snapshot (same reason as the scaling figure). *)
        let gen = Topogen.generate ~seed (Topogen.default ~n_ases) in
        Network.create ~seed ~topology:(Topology.of_topogen gen) ~per_origin:2 ~propagate_k:2
          ~fanout_cap:40
          ~rounds:(Topogen.max_depth gen + 2)
          ~verify_pcbs:false ()
  in
  Network.arm_capacities net ~bps:cap_bps ~queue_pkts;
  let as_infos =
    match topogen_n with
    | None ->
        List.filter
          (fun (a : Topology.as_info) -> a.Topology.measurement_point)
          (Network.topology net).Topology.spec_ases
    | Some _ -> spaced_ases 12 (Network.topology net).Topology.spec_ases
  in
  let ia_of = Hashtbl.create 16 in
  List.iter
    (fun (a : Topology.as_info) ->
      Hashtbl.replace ia_of (Ia.to_string a.Topology.ia) a.Topology.ia)
    as_infos;
  let latency_of = Network.scion_rtt_base net in
  (* Candidate set per ordered PoP pair: policy-ranked, with the directed
     hop sequence of each candidate precomputed. Pairs without a path are
     dropped from the workload's PoP matrix implicitly (no entry). *)
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun (a : Topology.as_info) ->
      List.iter
        (fun (b : Topology.as_info) ->
          let src = a.Topology.ia and dst = b.Topology.ia in
          if not (Ia.equal src dst) then begin
            match
              take candidates_n
                (Pan.sort_paths latency_policy ~latency_of (Network.paths net ~src ~dst))
            with
            | [] -> ()
            | ranked ->
                let hops_of = Hashtbl.create 4 in
                List.iter
                  (fun (p : Combinator.fullpath) ->
                    Hashtbl.replace hops_of p.Combinator.fingerprint
                      (Network.path_hops net ~src p))
                  ranked;
                Hashtbl.replace pairs
                  (Ia.to_string src ^ ">" ^ Ia.to_string dst)
                  { ranked; hops_of }
          end)
        as_infos)
    as_infos;
  (* Foreground pair: the first endpoint pair (in PoP order) with a real
     path choice, probed over its statically best path in both arms. *)
  let fg_src, fg_pp =
    let hit =
      List.find_map
        (fun (a : Topology.as_info) ->
          List.find_map
            (fun (b : Topology.as_info) ->
              match
                Hashtbl.find_opt pairs
                  (Ia.to_string a.Topology.ia ^ ">" ^ Ia.to_string b.Topology.ia)
              with
              | Some pp when List.length pp.ranked >= 2 -> Some (a.Topology.ia, pp)
              | Some _ | None -> None)
            as_infos)
        as_infos
    in
    match hit with
    | Some h -> h
    | None -> invalid_arg "Exp_load: no endpoint pair with >= 2 candidate paths"
  in
  let fg_best =
    match fg_pp.ranked with
    | p :: _ -> p
    | [] -> invalid_arg "Exp_load: empty foreground candidate set"
  in
  let fg_hops =
    match Hashtbl.find_opt fg_pp.hops_of fg_best.Combinator.fingerprint with
    | Some h -> h
    | None -> invalid_arg "Exp_load: foreground path has no hop record"
  in
  let ctx =
    {
      s_name = name;
      s_net = net;
      s_engine = Engine.create ();
      s_pops = List.map pop_of_as as_infos;
      s_ia_of = ia_of;
      s_pairs = pairs;
      s_fg_src = fg_src;
      s_fg_hops = fg_hops;
      s_fg_base_ms = latency_of fg_best;
      s_fg_qdrops = 0;
    }
  in
  (* All packet-level traffic during a cell is the foreground prober, so
     every Queue_full on the fabric is a foreground drop. *)
  Net.add_monitor (Network.scion_fabric net) (function
    | Net.Drop { cause = Net.Queue_full; _ } -> ctx.s_fg_qdrops <- ctx.s_fg_qdrops + 1
    | Net.Tx _ | Net.Rx _ | Net.Drop _ -> ());
  ctx

(* --- One cell: (scale, arm, load multiplier) --------------------------- *)

let run_cell ~seed ~metrics ~duration_s ctx arm load =
  let engine = ctx.s_engine and net = ctx.s_net in
  let fabric = Network.scion_fabric net in
  let latency_of = Network.scion_rtt_base net in
  ctx.s_fg_qdrops <- 0;
  let fcts = ref [] in
  let labels = [ ("scale", ctx.s_name); ("arm", arm_name arm) ] in
  let flows =
    Traffic.Flow.create ?metrics ~labels ~min_rate_bps
      ~on_complete:(fun ~fct_s ~size_bytes:_ -> fcts := fct_s :: !fcts)
      ~engine fabric
  in
  let place src_name dst_name =
    match Hashtbl.find_opt ctx.s_pairs (src_name ^ ">" ^ dst_name) with
    | None -> None
    | Some pp -> (
        let chosen =
          match arm with
          | Singlepath -> ( match pp.ranked with p :: _ -> Some p | [] -> None)
          | Multipath -> (
              match Hashtbl.find_opt ctx.s_ia_of src_name with
              | None -> None
              | Some src ->
                  Pan.pick_flow_path ~policy:latency_policy ~latency_of
                    ~headroom:(fun p -> Network.path_headroom_bps net ~src p)
                    pp.ranked)
        in
        match chosen with
        | None -> None
        | Some p -> Hashtbl.find_opt pp.hops_of p.Combinator.fingerprint)
  in
  (* The workload stream is re-derived per cell: both arms replay the
     byte-identical arrival sequence for a given load point. *)
  let rng = Rng.of_label seed "traffic" in
  let config =
    Traffic.Workload.make_config
      ~base_rate_per_s:(base_rate_per_s *. load)
      ~pareto_xm_bytes:200_000.0 ~day_s ()
  in
  let unroutable = ref 0 in
  let wl =
    Traffic.Workload.attach ~engine ~rng ~config ~pops:ctx.s_pops ~duration_s
      ~sink:(fun ~now:_ ~src ~dst ~size_bytes ->
        match place src.Traffic.Workload.name dst.Traffic.Workload.name with
        | None -> incr unroutable
        | Some hops -> (
            match Traffic.Flow.offer flows ~hops ~size_bytes with
            | `Started _ | `Rejected -> ()))
      ()
  in
  (* Foreground echoes: a packet-level walk over the static best path of
     the probe pair, chained hop by hop through the loaded fabric. *)
  let fg_attempts = ref 0 and fg_delivered = ref 0 and fg_delay_sum = ref 0.0 in
  let start0 = Engine.now engine in
  let n_echoes = int_of_float (duration_s /. fg_period_s) in
  for k = 1 to n_echoes do
    Engine.schedule_at engine
      ~time:(start0 +. (float_of_int k *. fg_period_s))
      (fun () ->
        let sent_at = Engine.now engine in
        let rec walk = function
          | [] ->
              incr fg_delivered;
              fg_delay_sum := !fg_delay_sum +. ((Engine.now engine -. sent_at) *. 1000.0)
          | (h : Traffic.Flow.hop) :: rest ->
              Net.transmit fabric engine h.Traffic.Flow.link ~from:h.Traffic.Flow.from
                ~size_bytes:fg_bytes ~on_arrival:(fun () -> walk rest)
        in
        (* A short back-to-back burst per echo: under saturation the
           serialisation of earlier packets backs the FIFO up, so the tail
           of the burst exercises Queue_full. *)
        for _ = 1 to fg_burst do
          incr fg_attempts;
          walk ctx.s_fg_hops
        done)
  done;
  (* Drain: arrivals stop at duration, flows run to completion. *)
  Engine.run engine;
  let s = Traffic.Flow.stats flows in
  let arrivals = Traffic.Workload.arrivals wl in
  let fct = Array.of_list !fcts in
  let offered_routed = s.Traffic.Flow.offered_bytes in
  let mbps bytes = bytes *. 8.0 /. 1e6 /. duration_s in
  {
    c_scale = ctx.s_name;
    c_arm = arm;
    c_load = load;
    c_offered_mbps = mbps offered_routed;
    c_goodput_mbps = mbps s.Traffic.Flow.delivered_bytes;
    c_mean_fct_s = (if Array.length fct = 0 then 0.0 else Stats.mean fct);
    c_p99_fct_s = (if Array.length fct = 0 then 0.0 else Stats.percentile fct 99.0);
    c_reject_pct =
      (if s.Traffic.Flow.started + s.Traffic.Flow.rejected = 0 then 0.0
       else
         100.0
         *. float_of_int s.Traffic.Flow.rejected
         /. float_of_int (s.Traffic.Flow.started + s.Traffic.Flow.rejected));
    c_fg_drop_pct =
      (if !fg_attempts = 0 then 0.0
       else 100.0 *. float_of_int (!fg_attempts - !fg_delivered) /. float_of_int !fg_attempts);
    c_fg_delay_ms = (if !fg_delivered = 0 then 0.0 else !fg_delay_sum /. float_of_int !fg_delivered);
    c_arrivals = arrivals;
    c_completed = s.Traffic.Flow.completed;
  }

(* --- The experiment ---------------------------------------------------- *)

let find_cell cells ~scale ~arm ~load =
  List.find_opt
    (fun c ->
      String.equal c.c_scale scale && c.c_arm = arm
      && Float.abs (c.c_load -. load) < 1e-9)
    cells

let run ?(seed = 0x10AD_CAFEL) ?(loads = [ 0.3; 0.6; 1.0; 1.5 ]) ?(duration_s = 20.0)
    ?(topogen_ases = 300) ?telemetry () =
  (match loads with [] -> invalid_arg "Exp_load.run: empty load sweep" | _ :: _ -> ());
  List.iter
    (fun l ->
      if not (Float.is_finite l) || l <= 0.0 then
        invalid_arg (Printf.sprintf "Exp_load.run: load multipliers must be > 0 (got %g)" l))
    loads;
  if not (Float.is_finite duration_s) || duration_s <= 0.0 then
    invalid_arg (Printf.sprintf "Exp_load.run: duration_s must be > 0 (got %g)" duration_s);
  let metrics = Option.map Obs.registry telemetry in
  let scales =
    [
      ("sciera-29", None);
      (Printf.sprintf "topogen-%d" topogen_ases, Some topogen_ases);
    ]
  in
  let cells =
    List.concat_map
      (fun (name, topogen_n) ->
        let ctx = make_ctx ~seed ~telemetry ~name ~topogen_n in
        List.concat_map
          (fun arm -> List.map (fun load -> run_cell ~seed ~metrics ~duration_s ctx arm load) loads)
          [ Multipath; Singlepath ])
      scales
  in
  let top_load = List.fold_left Float.max 0.0 loads in
  let mp, sp =
    match
      ( find_cell cells ~scale:"sciera-29" ~arm:Multipath ~load:top_load,
        find_cell cells ~scale:"sciera-29" ~arm:Singlepath ~load:top_load )
    with
    | Some mp, Some sp -> (mp, sp)
    | _ -> invalid_arg "Exp_load.run: missing top-load cells"
  in
  let result =
    {
      loads;
      duration_s;
      cells;
      mp_goodput_gain = mp.c_goodput_mbps /. Float.max 1e-9 sp.c_goodput_mbps;
      mp_p99_fct_ratio = sp.c_p99_fct_s /. Float.max 1e-9 mp.c_p99_fct_s;
    }
  in
  (match telemetry with
  | None -> ()
  | Some o ->
      let module M = Telemetry.Metrics in
      let reg = Obs.registry o in
      let sum f = List.fold_left (fun acc c -> acc + f c) 0 cells in
      M.add (M.counter reg "exp.load.arrivals") (sum (fun c -> c.c_arrivals));
      M.add (M.counter reg "exp.load.completed") (sum (fun c -> c.c_completed));
      List.iter
        (fun arm ->
          let labels = [ ("arm", arm_name arm) ] in
          let g = M.summary reg ~labels "exp.load.goodput_mbps" in
          let f = M.summary reg ~labels "exp.load.p99_fct_s" in
          List.iter
            (fun c ->
              if c.c_arm = arm then begin
                M.record g c.c_goodput_mbps;
                M.record f c.c_p99_fct_s
              end)
            cells)
        [ Multipath; Singlepath ]);
  result

(* --- Rendering --------------------------------------------------------- *)

let print_load r =
  Log.out
    "== Load: goodput and FCT vs offered load, multipath vs single-path (%g s cells) ==\n"
    r.duration_s;
  Table.print
    ~header:
      [
        "scale"; "arm"; "load"; "offered Mbps"; "goodput Mbps"; "mean FCT s"; "p99 FCT s";
        "reject %"; "fg drop %"; "fg delay ms";
      ]
    ~rows:
      (List.map
         (fun c ->
           [
             c.c_scale;
             arm_name c.c_arm;
             Table.fmt_float c.c_load;
             Table.fmt_float c.c_offered_mbps;
             Table.fmt_float c.c_goodput_mbps;
             Table.fmt_float c.c_mean_fct_s;
             Table.fmt_float c.c_p99_fct_s;
             Table.fmt_float c.c_reject_pct;
             Table.fmt_float c.c_fg_drop_pct;
             Table.fmt_float c.c_fg_delay_ms;
           ])
         r.cells);
  (* The p99 direction is load-dependent: multipath admits more flows, so
     its completed population can include slower transfers the single-path
     floor would have rejected — word the tail honestly either way. *)
  Log.out
    "at load %s on the 29-AS mesh, multipath placement carries %sx the single-path goodput %s\n\n"
    (Table.fmt_float (List.fold_left Float.max 0.0 r.loads))
    (Table.fmt_float r.mp_goodput_gain)
    (if r.mp_p99_fct_ratio >= 1.0 then
       Printf.sprintf "with %sx lower p99 FCT" (Table.fmt_float r.mp_p99_fct_ratio)
     else
       Printf.sprintf "at %sx the single-path p99 FCT (admission survivorship)"
         (Table.fmt_float (1.0 /. Float.max 1e-9 r.mp_p99_fct_ratio)))
