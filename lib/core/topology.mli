(** The SCIERA deployment topology (Figure 1, Table 1) as data.

    All ASes of the paper's Figure 1 with their ISD-AS numbers, regions,
    tiers and Layer-2 links. Link latencies are one-way propagation delays
    derived from the geography of the PoPs (Table 1); they are this
    reproduction's stand-in for the physical circuits, as recorded in
    DESIGN.md. The module also describes the parallel "commodity Internet"
    used as the BGP/IP baseline of Section 5.4. *)

type region = Europe | North_america | Asia | South_america | Africa | Middle_east

val region_to_string : region -> string

type tier = Tier1 | Tier2 | Tier3

type as_info = {
  ia : Scion_addr.Ia.t;
  name : string;
  region : region;
  tier : tier;
  core : bool;
  ca : bool;
  profile : Scion_cppki.Cert.profile;
      (** Anapaya-style vs open-source stack (Section 4.5 heterogeneity). *)
  measurement_point : bool;  (** Runs scion-go-multiping (Section 5.4). *)
  pop : string;  (** Principal PoP city. *)
}

type link_info = {
  a : Scion_addr.Ia.t;
  b : Scion_addr.Ia.t;
  cls : Scion_controlplane.Mesh.link_class;
  latency_ms : float;  (** One-way propagation delay. *)
  jitter_ms : float;
  label : string;  (** e.g. "KREONET ring", "CAE-1", "GEANT Plus". *)
}

val ases : as_info list
(** Every AS of Figure 1 (ISD 71 plus the two ISD-64 ASes). *)

val links : link_info list
val find : Scion_addr.Ia.t -> as_info
(** Raises [Not_found]. *)

val find_by_name : string -> as_info option
val measurement_ases : Scion_addr.Ia.t list
(** The 11 vantage ASes: 5 in Europe, 2 in Asia, 3 in North America, 1 in
    South America. *)

val fig8_ases : Scion_addr.Ia.t list
(** The 9 ASes on the axes of Figures 8 and 9, in the paper's row order. *)

val name_of : Scion_addr.Ia.t -> string

(** The IP-baseline overlay: every AS homes onto a regional Internet hub;
    hubs are interconnected by commodity transit. BGP gives exactly one
    (min-hop) route per pair. *)
type ip_hub = { hub_name : string; hub_region : region }

val ip_hubs : ip_hub list
val ip_hub_links : (string * string * float) list
(** (hub, hub, one-way ms). *)

val ip_access : Scion_addr.Ia.t -> string * float
(** The hub an AS homes onto and its access latency. Raises [Not_found]
    for an AS outside the Figure-1 table; generated topologies must go
    through {!ip_access_for}. *)

val ip_access_for : as_info -> string * float
(** {!ip_access} by record: the hand-built table for the Figure-1 names,
    otherwise a region hub (Africa homes via Europe, like WACREN) with a
    tier-scaled access latency — total over any [as_info], so generated
    meshes always get an IP-baseline homing. *)

(** {1 Instantiable topology descriptions}

    [Network.create] can instantiate any [spec]; {!sciera} is the paper's
    Figure-1 deployment and {!of_topogen} wraps a synthetic mesh from
    [Topogen.generate] into the same shape. *)

type spec = { spec_ases : as_info list; spec_links : link_info list }

val sciera : spec
val of_topogen : Topogen.t -> spec

(** Table 1: PoPs and collaborating networks. *)
val pops : (string * string * string) list
(** (location, peering NRENs, partner networks). *)
