module Ia = Scion_addr.Ia

type effect =
  | Link_down of { a : Ia.t; b : Ia.t; label : string option }
  | Link_degraded of { a : Ia.t; b : Ia.t; label : string option; extra_ms : float }

type incident = { title : string; from_day : float; to_day : float; effect : effect }

let window_days = 20.0
let window_start_unix = 1737158400.0 (* 2025-01-18T00:00:00Z *)
let ia = Ia.of_string

let geant = ia "71-20965"
let bridges = ia "71-2:0:35"
let kisti_dj = ia "71-2:0:3b"
let kisti_sg = ia "71-2:0:3d"
let kisti_ams = ia "71-2:0:3e"
let kisti_chg = ia "71-2:0:3f"
let rnp = ia "71-1916"
let uva = ia "71-225"
let princeton = ia "71-88"
let equinix = ia "71-2:0:48"

let down ?label a b = Link_down { a; b; label }
let degraded ?label a b extra_ms = Link_degraded { a; b; label; extra_ms }

(* BRIDGES instability episodes: six-hour flaps adding latency on the
   access links, recurring through the window. *)
let bridges_flaps =
  List.concat_map
    (fun day ->
      [
        {
          title = "BRIDGES routing instability";
          from_day = day;
          to_day = day +. 0.25;
          effect = degraded bridges uva 22.0;
        };
        {
          title = "BRIDGES routing instability";
          from_day = day;
          to_day = day +. 0.25;
          effect = degraded bridges princeton 22.0;
        };
        {
          title = "BRIDGES routing instability";
          from_day = day +. 0.1;
          to_day = day +. 0.35;
          effect = degraded bridges equinix 18.0;
        };
      ])
    [ 2.0; 5.5; 9.0; 12.5; 16.0 ]

let calendar =
  [
    (* The RNP-BRIDGES circuit carried no SCION during the campaign, so
       UFMS reached North America through GEANT. *)
    {
      title = "RNP-BRIDGES circuit not yet in service";
      from_day = 0.0;
      to_day = window_days;
      effect = down rnp bridges;
    };
    (* Submarine-cable trouble on the KREONET Daejeon-Singapore direct
       link for well over half the window. *)
    {
      title = "KREONET DJ-SG direct link cut";
      from_day = 2.0;
      to_day = 18.0;
      effect = down ~label:"KREONET DJ-SG direct" kisti_dj kisti_sg;
    };
    (* The same submarine cable system carries the HK-SG ring segment and
       two of the parallel Singapore-Amsterdam circuits. *)
    {
      title = "cable cut: KREONET ring HK-SG";
      from_day = 2.0;
      to_day = 18.0;
      effect = down ~label:"KREONET ring HK-SG" (ia "71-2:0:3c") kisti_sg;
    };
    (* BRIDGES instabilities kept one Equinix cross-connect flapping for
       most of the window (Fig. 9's UVa-Equinix deviation). *)
    {
      title = "BRIDGES instability: Ashburn cross-connect A";
      from_day = 2.0;
      to_day = 16.0;
      effect = down ~label:"Ashburn cross-connect A" bridges equinix;
    };
    (* New EU-US capacity only became available on Jan 25 (day 7). *)
    {
      title = "EU-US capacity not yet delivered";
      from_day = 0.0;
      to_day = 7.0;
      effect = down ~label:"EU-US capacity (new Jan 25)" geant bridges;
    };
    {
      title = "AMS-CHG capacity not yet delivered";
      from_day = 0.0;
      to_day = 7.0;
      effect = down ~label:"AMS-CHG capacity (new Jan 25)" kisti_ams kisti_chg;
    };
    (* Jan 21 (day 3): maintenance on several links; longer paths chosen. *)
    {
      title = "Jan 21 maintenance: transatlantic";
      from_day = 3.0;
      to_day = 3.7;
      effect = down ~label:"GEANT transatlantic" geant bridges;
    };
    {
      title = "Jan 21 maintenance: GEANT Singapore link";
      from_day = 3.0;
      to_day = 3.5;
      effect = down geant kisti_sg;
    };
    {
      title = "Jan 21 maintenance: KREONET SG-AMS";
      from_day = 3.1;
      to_day = 3.6;
      effect = down ~label:"KREONET ring SG-AMS" kisti_sg kisti_ams;
    };
    (* Post-maintenance fluctuation days (Jan 22-24). *)
    {
      title = "post-maintenance reconfiguration";
      from_day = 3.7;
      to_day = 5.2;
      effect = degraded geant kisti_ams 9.0;
    };
    {
      title = "post-maintenance reconfiguration";
      from_day = 4.2;
      to_day = 6.0;
      effect = degraded ~label:"GEANT transatlantic" geant bridges 14.0;
    };
    (* Feb 6 (day 19): node upgrades and link maintenance. *)
    {
      title = "Feb 6 node upgrades: KREONET ring";
      from_day = 19.0;
      to_day = 19.6;
      effect = down ~label:"KREONET ring AMS-CHG" kisti_ams kisti_chg;
    };
    {
      title = "Feb 6 node upgrades: transatlantic";
      from_day = 19.0;
      to_day = 20.0;
      effect = degraded geant bridges 30.0;
    };
    {
      title = "Feb 6 node upgrades: GEANT @AMS";
      from_day = 19.2;
      to_day = 20.0;
      effect = degraded geant kisti_ams 18.0;
    };
  ]
  @ bridges_flaps

let active_at day =
  List.filter (fun i -> day >= i.from_day && day < i.to_day) calendar

(* --- Canned fault-injection replays --- *)

let day_seconds = 86400.0

(* Topology link ids equal the link's index in [Topology.links] (the
   fabric and the mesh are both built in that order), so an (a, b, label)
   incident endpoint pair resolves to fabric link ids by position. *)
let links_between ?label a b =
  List.rev
    (snd
       (List.fold_left
          (fun (idx, acc) (l : Topology.link_info) ->
            let matches =
              ((Ia.equal a l.Topology.a && Ia.equal b l.Topology.b)
              || (Ia.equal a l.Topology.b && Ia.equal b l.Topology.a))
              && match label with None -> true | Some lb -> lb = l.Topology.label
            in
            (idx + 1, if matches then idx :: acc else acc))
          (0, []) Topology.links))

let scenario_of_incident ~origin_day (i : incident) =
  let span_s d = Float.max 0.0 ((d -. origin_day) *. day_seconds) in
  let from_s = span_s i.from_day and to_s = span_s i.to_day in
  let compile (a, b, label) f =
    Fault.Scenario.seq (List.map f (links_between ?label a b))
  in
  match i.effect with
  | Link_down { a; b; label } ->
      compile (a, b, label) (fun link -> Fault.Scenario.outage ~link ~from_s ~to_s)
  | Link_degraded { a; b; label; extra_ms } ->
      compile (a, b, label) (fun link -> Fault.Scenario.window ~link ~from_s ~to_s ~extra_ms)

let scenario_of_window ~from_day ~to_day =
  Fault.Scenario.seq
    (List.filter_map
       (fun i ->
         if i.from_day < to_day && i.to_day > from_day then
           Some (scenario_of_incident ~origin_day:from_day i)
         else None)
       calendar)

let titled prefix =
  List.filter
    (fun i -> String.length i.title >= String.length prefix
              && String.sub i.title 0 (String.length prefix) = prefix)
    calendar

let scenario_of_titled ~origin_day prefix =
  Fault.Scenario.seq (List.map (scenario_of_incident ~origin_day) (titled prefix))

let jan21 = scenario_of_titled ~origin_day:3.0 "Jan 21"
let feb6 = scenario_of_titled ~origin_day:19.0 "Feb 6"

let change_points =
  let points =
    List.concat_map (fun i -> [ i.from_day; i.to_day ]) calendar @ [ 0.0; window_days ]
  in
  List.sort_uniq compare (List.filter (fun d -> d >= 0.0 && d <= window_days) points)
