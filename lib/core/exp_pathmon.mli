(** The pathmon figure: adaptive (live-quality-driven) versus static path
    selection under {e soft} degradation — latency windows and loss bursts
    that still deliver packets, so hard-down failover never fires.

    Each trial picks an AS pair, injects a {!Fault.Scenario} latency
    window or loss burst on a link of the preferred path that the
    second-best path avoids, and drives a polling workload in two modes:
    {b adaptive} (an SCMP-echo {!Pathmon.Prober} over the candidate set
    feeds per-path estimators in the daemon's shared {!Pathmon.Cache}, and
    the connection's {!Pathmon.Selector} soft-fails over past hysteresis)
    and {b static} (the dial-time ranking, the pre-pathmon stack). The
    figure reports time-in-degraded-path and in-window latency inflation
    per mode; the golden pins that adaptive selection strictly reduces the
    median time-in-degraded-path.

    Determinism: fault, probe and sender streams are label-derived
    ([Rng.of_label seed "fault"] / ["pathmon.probe"] / ["sender"]) and
    probes sample link RTTs through {!Network.scmp_probe} with the probe
    stream — never the workload stream — so the checked-in goldens are
    byte-stable and attaching probers perturbs no other figure. *)

type mode = Adaptive | Static

val mode_name : mode -> string

type mode_result = {
  degraded_s : float array;  (** Per-trial time spent on a degraded path, s. *)
  median_degraded_s : float;
  p90_degraded_s : float;
  inflation : float array;  (** Per-trial mean in-window RTT / pre-fault RTT. *)
  median_inflation : float;
  returned_to_preferred : float;
      (** Fraction of trials back on the original best path at the end of
          the post-recovery settle window. *)
  soft_switches : int;  (** Selector-driven path changes (adaptive only). *)
  probes : int;  (** SCMP echoes issued by the probers (adaptive only). *)
}

type result = { trials : int; adaptive : mode_result; static_ : mode_result }

val run :
  ?trials:int ->
  ?seed:int64 ->
  ?per_origin:int ->
  ?verify_pcbs:bool ->
  ?telemetry:Obs.t ->
  unit ->
  result
(** Default 10 trials over a [per_origin = 8], unverified-PCB network.
    With [?telemetry], publishes [exp.pathmon.trials],
    [exp.pathmon.soft_switches], [exp.pathmon.probes], the
    [exp.pathmon.time_in_degraded_s{mode}] and
    [exp.pathmon.latency_inflation{mode}] summaries, plus the aggregate
    [pathmon.prober.*] / [pathmon.selector.*] series of the probers and
    selectors themselves. *)

val print_pathmon : result -> unit
