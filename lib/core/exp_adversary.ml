module Log = Telemetry.Log
(* The containment figure: per adversary class, blast radius (degraded
   pairs, bogus control-plane state accepted, amplification bytes, flood
   frames through) and time-to-containment, with the defence stack on
   versus off, at the 29-AS deployment and a 300-AS Topogen mesh.

   Defences on means: PCB verification + freshness, per-neighbor beacon
   quarantine, the daemon's poisoned-path feedback loop, the SCMP
   emission throttle, a LightningFilter in front of flood targets, and
   the TRC-rotation drill after a CA compromise. Defences off is the
   same network with none of those armed — verification skipped, no
   quarantine, no feedback, unlimited SCMP, no filter, no drill.

   Every adversary draw comes from the dedicated [fault.adv] stream and
   every measurement draw from a private workload stream, so this figure
   coexists with the RNG-isolation contract pinned by the goldens. *)

module Ia = Scion_addr.Ia
module Rng = Scion_util.Rng
module Table = Scion_util.Table
module Mesh = Scion_controlplane.Mesh
module Combinator = Scion_controlplane.Combinator
module Router = Scion_dataplane.Router
module Scmp = Scion_dataplane.Scmp
module Daemon = Scion_endhost.Daemon
module Engine = Netsim.Engine
module Adversary = Fault.Adversary

type attack = Corrupt | Replay | Forge | Rogue | Wormhole | Reflect | Flood | Compromise

(* Classes that leave persistent mesh state (stores, registry, seized
   identities) run last; the compromise drill is final because the
   undefended variant leaves an attacker holding an AS identity. *)
let attacks = [ Forge; Reflect; Flood; Wormhole; Corrupt; Replay; Rogue; Compromise ]

let attack_name = function
  | Corrupt -> "corrupt-beacons"
  | Replay -> "replay-beacons"
  | Forge -> "forge-hop-macs"
  | Rogue -> "rogue-segments"
  | Wormhole -> "wormhole"
  | Reflect -> "scmp-reflect"
  | Flood -> "volumetric-flood"
  | Compromise -> "trc-compromise"

(* --- Timeline (simulated seconds; one engine per class) ---------------- *)

let attack_start = 2.0
let attack_end = 12.0
let horizon = 16.0
let tick_s = 0.5
let burst_s = 1.0
let detect_delay_s = 1.5 (* pathmon flags a wormhole pair after this long *)
let rotate_at_s = 8.0 (* operators run the TRC drill this far in *)
let replay_age_s = 2.0 *. 86400.0 (* two-day-old captures: past hop expiry *)

type cell = {
  c_attack : attack;
  c_scale : string;
  c_defended : bool;
  c_degraded_pct : float;  (** Mean degraded-pair fraction over the window. *)
  c_bogus : int;  (** Bogus beacons accepted / segments served / forged delivered. *)
  c_amp_kb : float;  (** Amplification KiB emitted at reflectors. *)
  c_flood_passed : int;  (** Flood frames that reached the host. *)
  c_contain_s : float;  (** Onset to neutralisation; censored at the horizon. *)
}

type result = {
  cells : cell list;
  scales : string list;
  classes_contained : int;
  quarantine_events : int;
  quarantine_drops : int;
  scmp_suppressed : int;
  poisoned_revocations : int;
  rotations : int;
}

(* The scalar each class calls its blast radius. *)
let blast_scalar c =
  match c.c_attack with
  | Corrupt | Replay | Compromise | Forge -> float_of_int c.c_bogus
  | Rogue | Wormhole -> c.c_degraded_pct
  | Reflect -> c.c_amp_kb
  | Flood -> float_of_int c.c_flood_passed

(* --- Cast: who attacks whom, fixed per mesh ---------------------------- *)

type cast = {
  cores : Ia.t array;
  victim : Ia.t;  (** Rogue-segment victim (a leaf with real down segments). *)
  target : Ia.t;  (** Flood target. *)
  isd : int;  (** The compromised ISD (the drill seizes its first core). *)
}

(* Distinct attacker per class so quarantine windows never leak across
   classes sharing one network. Index 0 is reserved: the TRC drill's
   applier seizes the first core of [isd]. *)
let nth_core cast i = cast.cores.(i mod Array.length cast.cores)

let make_cast mesh =
  let ases = Mesh.ases mesh in
  let cores = Array.of_list (List.filter (fun ia -> Mesh.is_core mesh ia) ases) in
  let noncore = List.filter (fun ia -> not (Mesh.is_core mesh ia)) ases in
  let victim =
    match List.rev noncore with v :: _ -> v | [] -> cores.(Array.length cores - 1)
  in
  let target = match noncore with t :: _ -> t | [] -> cores.(0) in
  { cores; victim; target; isd = cores.(0).Ia.isd }

(* --- Measurement helpers ---------------------------------------------- *)

let schedule_ticks engine f =
  let n = int_of_float (horizon /. tick_s) in
  for i = 0 to n - 1 do
    let t = float_of_int i *. tick_s in
    Engine.schedule_at engine ~time:t (fun () -> f t)
  done

(* Containment from a sampled effect series: the attack counts as
   contained once its effect goes to zero for good; never-effective
   attacks are contained at onset (0 s), never-contained ones are
   censored at the horizon. *)
let contain_of_series series =
  let last =
    List.fold_left (fun acc (t, e) -> if e > 0.0 then Some t else acc) None series
  in
  match last with
  | None -> 0.0
  | Some t -> Float.min (horizon -. attack_start) (t +. tick_s -. attack_start)

let mean_effect series =
  let window = List.filter (fun (t, _) -> t >= attack_start) series in
  match window with
  | [] -> 0.0
  | l -> List.fold_left (fun a (_, e) -> a +. e) 0.0 l /. float_of_int (List.length l)

(* Containment for acceptance-based classes (beacon injection): when
   acceptance stops while the campaign is still firing, the defences won;
   acceptance through the last burst is censored. *)
let contain_of_acceptance (stats : Network.adversary_stats) ~last_burst =
  if stats.Network.adv_accepted = 0 then 0.0
  else if stats.Network.adv_last_accept_s >= last_burst -. 1e-9 then horizon -. attack_start
  else stats.Network.adv_last_accept_s +. burst_s -. attack_start

let sample_observers ~rng net ~victim ~k =
  let cands =
    List.filter
      (fun ia -> (not (Ia.equal ia victim)) && Network.paths net ~src:ia ~dst:victim <> [])
      (Mesh.ases (Network.mesh net))
  in
  let arr = Array.of_list cands in
  if Array.length arr = 0 then []
  else List.sort_uniq compare (List.init (min k (Array.length arr)) (fun _ -> Rng.pick rng arr))

let sample_pairs ~rng net ~k =
  let arr = Array.of_list (Mesh.ases (Network.mesh net)) in
  let rec build acc n guard =
    if n = 0 || guard = 0 then acc
    else
      let src = Rng.pick rng arr and dst = Rng.pick rng arr in
      if Ia.equal src dst || Network.paths net ~src ~dst = [] then build acc n (guard - 1)
      else build ((src, dst) :: acc) (n - 1) (guard - 1)
  in
  build [] k (k * 20)

let best_path net ~src ~dst =
  match Network.paths net ~src ~dst with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun b p ->
             if Network.scion_rtt_base net p < Network.scion_rtt_base net b then p else b)
           first rest)

(* The colluding pair for the wormhole: the adjacent AS pair most best
   paths transit — where a tunnel distorts the most measurements. *)
let pick_colluders bests =
  let key a b =
    let sa = Ia.to_string a and sb = Ia.to_string b in
    if sa < sb then sa ^ "|" ^ sb else sb ^ "|" ^ sa
  in
  let counts = ref [] in
  List.iter
    (fun (fp : Combinator.fullpath) ->
      let rec go = function
        | (h1 : Scion_addr.Hop_pred.hop) :: (h2 :: _ as rest) ->
            let k = key h1.Scion_addr.Hop_pred.ia h2.Scion_addr.Hop_pred.ia in
            (match List.assoc_opt k !counts with
            | Some (n, pair) -> counts := (k, (n + 1, pair)) :: List.remove_assoc k !counts
            | None ->
                counts :=
                  (k, (1, (h1.Scion_addr.Hop_pred.ia, h2.Scion_addr.Hop_pred.ia))) :: !counts);
            go rest
        | [ _ ] | [] -> ()
      in
      go fp.Combinator.interfaces)
    bests;
  let sorted =
    List.sort
      (fun (ka, (na, _)) (kb, (nb, _)) -> match compare nb na with 0 -> compare ka kb | c -> c)
      !counts
  in
  match sorted with [] -> None | (_, (_, pair)) :: _ -> Some pair

let transits (fp : Combinator.fullpath) ~a ~b =
  let has ia =
    List.exists (fun (h : Scion_addr.Hop_pred.hop) -> Ia.equal h.Scion_addr.Hop_pred.ia ia)
      fp.Combinator.interfaces
  in
  has a && has b

(* --- One class, one network, one engine -------------------------------- *)

(* Returns the cell plus (poisoned-path revocations, SCMP suppressions)
   this class produced. *)
let run_class ~net ~scale ~defended ~cast ~rng_adv ~rng_work attack =
  let engine = Engine.create () in
  let mesh = Network.mesh net in
  let now0 = Network.now_unix net in
  let attach c = Network.attach_adversary net ~engine ~rng:rng_adv ~defended c in
  let base =
    {
      c_attack = attack;
      c_scale = scale;
      c_defended = defended;
      c_degraded_pct = 0.0;
      c_bogus = 0;
      c_amp_kb = 0.0;
      c_flood_passed = 0;
      c_contain_s = 0.0;
    }
  in
  match attack with
  | Corrupt ->
      let _, stats =
        attach
          (Adversary.beacon_corruption ~compromised:(nth_core cast 1) ~from_s:attack_start
             ~until_s:attack_end ~period_s:burst_s ~count:12)
      in
      Engine.run engine;
      ( {
          base with
          c_bogus = stats.Network.adv_accepted;
          c_contain_s = contain_of_acceptance stats ~last_burst:(attack_end -. burst_s);
        },
        0, 0 )
  | Replay ->
      let _, stats =
        attach
          (Adversary.beacon_replay ~compromised:(nth_core cast 2) ~from_s:attack_start
             ~until_s:attack_end ~period_s:burst_s ~age_s:replay_age_s ~count:12)
      in
      Engine.run engine;
      ( {
          base with
          c_bogus = stats.Network.adv_accepted;
          c_contain_s = contain_of_acceptance stats ~last_burst:(attack_end -. burst_s);
        },
        0, 0 )
  | Forge ->
      let _, stats =
        attach
          (Adversary.mac_forgery ~compromised:(nth_core cast 3) ~from_s:attack_start
             ~until_s:attack_end ~period_s:2.0 ~count:6)
      in
      Engine.run engine;
      let delivered = stats.Network.adv_forged_delivered in
      ( {
          base with
          c_bogus = delivered;
          c_contain_s = (if delivered = 0 then 0.0 else horizon -. attack_start);
        },
        0, 0 )
  | Reflect ->
      let reflector = nth_core cast 5 in
      let _, stats =
        attach
          (Adversary.reflection ~reflector ~victim:cast.victim ~from_s:attack_start
             ~until_s:attack_end ~period_s:burst_s ~count:50)
      in
      Engine.run engine;
      let suppressed, _ = Router.scmp_rate_limited (Mesh.router mesh reflector) in
      ( {
          base with
          c_amp_kb = float_of_int stats.Network.adv_amp_bytes /. 1024.0;
          c_contain_s =
            (if stats.Network.adv_reflect_answered < stats.Network.adv_reflect_requests then 0.0
             else horizon -. attack_start);
        },
        0, suppressed )
  | Flood ->
      let _, stats =
        attach
          (Adversary.flood ~attacker:(nth_core cast 6) ~target:cast.target ~from_s:attack_start
             ~until_s:attack_end ~period_s:burst_s ~packets:400 ~duplicate_pct:30)
      in
      Engine.run engine;
      ( {
          base with
          c_flood_passed = stats.Network.adv_flood_passed;
          c_contain_s =
            (if stats.Network.adv_flood_passed < stats.Network.adv_flood_frames then 0.0
             else horizon -. attack_start);
        },
        0, 0 )
  | Rogue ->
      let _, stats =
        attach
          (Adversary.segment_poisoning ~compromised:(nth_core cast 4) ~victim:cast.victim
             ~from_s:attack_start ~until_s:(attack_start +. burst_s) ~period_s:burst_s ~count:6)
      in
      let observers = sample_observers ~rng:rng_work net ~victim:cast.victim ~k:5 in
      let daemons =
        List.map
          (fun src ->
            Daemon.create ~ia:src
              ~fetch:(fun ~dst -> Network.paths net ~src ~dst)
              ~cache_ttl:tick_s ~revocation_ttl:600.0 ())
          observers
      in
      let series = ref [] in
      schedule_ticks engine (fun t ->
          let nowu = now0 +. t in
          let n_degraded =
            List.fold_left
              (fun acc d ->
                let served, _ = Daemon.lookup d ~now:nowu ~dst:cast.victim in
                let poisoned =
                  List.filter
                    (fun p ->
                      match Mesh.walk mesh ~now:nowu p with
                      | Mesh.Walk_dropped { reason = Router.Invalid_mac; _ } -> true
                      | Mesh.Walk_dropped _ | Mesh.Walk_delivered _ -> false)
                    served
                in
                (* The defended end host feeds MAC failures back: the
                   daemon revokes the poisoned fingerprints. *)
                if defended then
                  List.iter
                    (fun p -> ignore (Daemon.handle_scmp d ~now:nowu ~path:p Scmp.Invalid_hop_field_mac))
                    poisoned;
                if poisoned <> [] then acc + 1 else acc)
              0 daemons
          in
          let frac =
            match daemons with
            | [] -> 0.0
            | _ -> float_of_int n_degraded /. float_of_int (List.length daemons)
          in
          series := (t, frac) :: !series);
      Engine.run engine;
      let series = List.rev !series in
      let poisoned_revs =
        List.fold_left (fun acc d -> acc + Daemon.poisoned_revocations d) 0 daemons
      in
      ( {
          base with
          c_bogus = stats.Network.adv_rogue;
          c_degraded_pct = 100.0 *. mean_effect series;
          c_contain_s = contain_of_series series;
        },
        poisoned_revs, 0 )
  | Wormhole -> (
      let pairs = sample_pairs ~rng:rng_work net ~k:20 in
      let bests = List.filter_map (fun (src, dst) -> best_path net ~src ~dst) pairs in
      match pick_colluders bests with
      | None -> (base, 0, 0)
      | Some (a, b) ->
          let transit_frac =
            match bests with
            | [] -> 0.0
            | l ->
                float_of_int (List.length (List.filter (fun fp -> transits fp ~a ~b) l))
                /. float_of_int (List.length l)
          in
          let _, stats = attach (Adversary.wormhole ~a ~b ~from_s:attack_start ~to_s:attack_end) in
          let series = ref [] in
          schedule_ticks engine (fun t ->
              let active = Network.wormhole_active stats ~a ~b in
              let eff =
                if active && not (defended && t >= attack_start +. detect_delay_s) then
                  transit_frac
                else 0.0
              in
              series := (t, eff) :: !series);
          Engine.run engine;
          let series = List.rev !series in
          ( {
              base with
              c_degraded_pct = 100.0 *. mean_effect series;
              c_contain_s = contain_of_series series;
            },
            0, 0 ))
  | Compromise ->
      let inject =
        Adversary.beacon_corruption ~compromised:(nth_core cast 0)
          ~from_s:(attack_start +. 0.5) ~until_s:attack_end ~period_s:burst_s ~count:12
      in
      let c =
        if defended then
          Adversary.(
            compromise_drill ~isd:cast.isd ~at_s:attack_start
              ~rotate_after_s:(rotate_at_s -. attack_start)
            ++ inject)
        else Adversary.(at attack_start [ Trc_compromise { isd = cast.isd } ] ++ inject)
      in
      let _, stats = attach c in
      Engine.run engine;
      ( {
          base with
          c_bogus = stats.Network.adv_accepted;
          c_contain_s = contain_of_acceptance stats ~last_burst:(attack_end -. burst_s +. 0.5);
        },
        0, 0 )

(* --- The experiment ---------------------------------------------------- *)

let make_net ~seed ~defended n =
  let quarantine = if defended then Some Mesh.default_quarantine else None in
  match n with
  | None -> Network.create ~seed ~per_origin:4 ~rounds:6 ~verify_pcbs:defended ?quarantine ()
  | Some n_ases ->
      let gen = Topogen.generate ~seed (Topogen.default ~n_ases) in
      Network.create ~seed ~topology:(Topology.of_topogen gen) ~per_origin:2 ~propagate_k:2
        ~fanout_cap:40
        ~rounds:(Topogen.max_depth gen + 2)
        ~verify_pcbs:defended ?quarantine ()

let strictly_contained cells scales attack =
  List.for_all
    (fun scale ->
      let find defended =
        List.find_opt
          (fun c -> c.c_attack = attack && String.equal c.c_scale scale && c.c_defended = defended)
          cells
      in
      match (find true, find false) with
      | Some on, Some off ->
          blast_scalar on < blast_scalar off && on.c_contain_s < off.c_contain_s
      | _ -> false)
    scales

let run ?(seed = 0xADD5_EC4EL) ?(topogen_ases = 300) ?telemetry () =
  (* Dedicated streams: attaching the adversary never touches a workload
     stream, and measurement sampling never touches the adversary's. *)
  let rng_adv = Rng.of_label seed "fault.adv" in
  (* scion-lint: rng-stream adversary.workload -- observer/pair sampling is private to this experiment *)
  let rng_work = Rng.of_label seed "adversary.workload" in
  let scales =
    [ ("sciera-29", None); (Printf.sprintf "topogen-%d" topogen_ases, Some topogen_ases) ]
  in
  let cells = ref [] in
  let q_events = ref 0
  and q_drops = ref 0
  and suppressed = ref 0
  and poisoned = ref 0
  and rotations = ref 0 in
  List.iter
    (fun (scale, n) ->
      List.iter
        (fun defended ->
          let net = make_net ~seed ~defended n in
          let mesh = Network.mesh net in
          let cast = make_cast mesh in
          List.iter
            (fun attack ->
              let cell, p, s = run_class ~net ~scale ~defended ~cast ~rng_adv ~rng_work attack in
              poisoned := !poisoned + p;
              suppressed := !suppressed + s;
              cells := cell :: !cells)
            attacks;
          q_events := !q_events + Mesh.quarantine_events mesh;
          q_drops := !q_drops + Mesh.quarantine_drops mesh;
          rotations := !rotations + Mesh.rotations mesh)
        [ true; false ])
    scales;
  let scale_names = List.map fst scales in
  (* Display order: class, then scale, defences on before off. *)
  let cells =
    List.concat_map
      (fun attack ->
        List.concat_map
          (fun scale ->
            List.filter_map
              (fun defended ->
                List.find_opt
                  (fun c ->
                    c.c_attack = attack && String.equal c.c_scale scale
                    && c.c_defended = defended)
                  !cells)
              [ true; false ])
          scale_names)
      attacks
  in
  let classes_contained =
    List.length (List.filter (strictly_contained cells scale_names) attacks)
  in
  let result =
    {
      cells;
      scales = scale_names;
      classes_contained;
      quarantine_events = !q_events;
      quarantine_drops = !q_drops;
      scmp_suppressed = !suppressed;
      poisoned_revocations = !poisoned;
      rotations = !rotations;
    }
  in
  (match telemetry with
  | None -> ()
  | Some o ->
      let module M = Telemetry.Metrics in
      let reg = Obs.registry o in
      M.add (M.counter reg "exp.adversary.classes_contained") result.classes_contained;
      M.add (M.counter reg "exp.adversary.quarantine_events") result.quarantine_events;
      M.add (M.counter reg "exp.adversary.quarantine_drops") result.quarantine_drops;
      M.add (M.counter reg "exp.adversary.scmp_suppressed") result.scmp_suppressed;
      M.add (M.counter reg "exp.adversary.poisoned_revocations") result.poisoned_revocations;
      M.add (M.counter reg "exp.adversary.rotations") result.rotations);
  result

(* --- Rendering --------------------------------------------------------- *)

let print_containment r =
  Log.out "== Containment: blast radius and time-to-containment per adversary class ==\n";
  Table.print
    ~header:
      [ "attack"; "scale"; "defences"; "degraded%"; "bogus"; "amp KiB"; "flood thru"; "contain s" ]
    ~rows:
      (List.map
         (fun c ->
           [
             attack_name c.c_attack;
             c.c_scale;
             (if c.c_defended then "on" else "off");
             Table.fmt_float c.c_degraded_pct;
             string_of_int c.c_bogus;
             Table.fmt_float c.c_amp_kb;
             string_of_int c.c_flood_passed;
             Table.fmt_float c.c_contain_s;
           ])
         r.cells);
  Log.out
    "%d/%d classes strictly contained (smaller blast radius AND faster containment with \
     defences on, at every scale); %d quarantine entries dropped %d beacons, %d SCMP \
     replies suppressed, %d poisoned paths revoked, %d TRC rotations\n\n"
    r.classes_contained (List.length attacks) r.quarantine_events r.quarantine_drops
    r.scmp_suppressed r.poisoned_revocations r.rotations
