module Log = Telemetry.Log
(* New recovery figure: time-to-recover CDFs after a link failure on the
   preferred path, with the self-healing stack (SCMP revocation at the
   daemon + capped-exponential re-probe in the connection) versus a
   baseline that only has silent ack timeouts. Each trial kills one link
   of the current best path via the fault injector, measures the time from
   fault onset to the first successful send, then watches whether the
   connection returns to the preferred path after repair. *)

module Ia = Scion_addr.Ia
module Rng = Scion_util.Rng
module Backoff = Scion_util.Backoff
module Stats = Scion_util.Stats
module Table = Scion_util.Table
module Mesh = Scion_controlplane.Mesh
module Combinator = Scion_controlplane.Combinator
module Router = Scion_dataplane.Router
module Daemon = Scion_endhost.Daemon
module Pan = Scion_endhost.Pan
module Engine = Netsim.Engine

type mode = Healed | Baseline

let mode_name = function Healed -> "healed" | Baseline -> "baseline"

type mode_result = {
  recovery_s : float array;  (** Per-trial time-to-recover, seconds. *)
  median_s : float;
  p90_s : float;
  returned_to_preferred : float;  (** Fraction back on the best path at end. *)
}

type result = {
  trials : int;
  healed : mode_result;
  baseline : mode_result;
  revocations : int;  (** Daemon revocations learnt across healed trials. *)
  evicted_paths : int;  (** Cached paths evicted by those revocations. *)
  reprobes : int;  (** Parked paths given another chance by the conns. *)
}

(* --- Cost model (simulated milliseconds; nothing sleeps) -------------- *)

let timeout_ms = 1000.0 (* silent-loss detection: ack timeout *)
let control_ms = 30.0 (* daemon round trip for a re-dial *)
let onset_s = 1.0
let settle_s = 45.0 (* post-repair window for the return-to-preferred check *)
let poll_s = 2.0 (* steady-state send cadence *)
let shortlist_n = 8 (* candidate paths a connection keeps *)

let sender_policy =
  Backoff.make ~base_ms:200.0 ~multiplier:2.0 ~cap_ms:3000.0 ~jitter:0.2 ()

let reprobe_policy =
  Backoff.make ~base_ms:500.0 ~multiplier:2.0 ~cap_ms:8000.0 ~jitter:0.1 ()

let fetch_policy = Backoff.make ~base_ms:100.0 ~multiplier:2.0 ~cap_ms:2000.0 ~jitter:0.2 ()

(* SCMP answer latency: the error travels back from the dropping router,
   so charge the round trip over the path prefix up to it — always below
   the full-path RTT and far below the silent-loss timeout. *)
let detect_ms net (fp : Combinator.fullpath) ~at =
  let rec prefix acc hops links =
    match (hops, links) with
    | (h : Scion_addr.Hop_pred.hop) :: _, _ when Ia.equal h.Scion_addr.Hop_pred.ia at -> acc
    | _ :: hs, l :: ls -> prefix (l :: acc) hs ls
    | _ :: _, [] | [], _ -> acc
  in
  let links = prefix [] fp.Combinator.interfaces (Network.path_links net fp) in
  Float.max 1.0 (2.0 *. Netsim.Net.path_base_latency (Network.scion_fabric net) links)

let rec take n = function [] -> [] | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let latency_policy = { Pan.default_policy with Pan.preferences = [ Pan.Latency ] }

(* --- One trial -------------------------------------------------------- *)

type trial = { t_src : Ia.t; t_dst : Ia.t; target : Netsim.Net.link_id; repair_after_s : float }

type trial_outcome = { time_to_recover_s : float; on_preferred : bool }

let measure net ~mode ~rng ~daemon_rng ~conn_rng (tr : trial) =
  let now0 = Network.now_unix net in
  let engine = Engine.create () in
  let scenario =
    Fault.Scenario.outage ~link:tr.target ~from_s:onset_s ~to_s:(onset_s +. tr.repair_after_s)
  in
  let injector = Network.inject net ~engine ~rng:(Rng.split rng) scenario in
  let daemon =
    match mode with
    | Healed ->
        Daemon.create ~ia:tr.t_src
          ~fetch:(fun ~dst -> Network.paths net ~src:tr.t_src ~dst)
          ~cache_ttl:600.0 ~revocation_ttl:10.0 ~retry:fetch_policy ~rng:daemon_rng ()
    | Baseline ->
        Daemon.create ~ia:tr.t_src
          ~fetch:(fun ~dst -> Network.paths net ~src:tr.t_src ~dst)
          ~cache_ttl:600.0 ()
  in
  let latency_of = Network.scion_rtt_base net in
  let clock = ref 0.0 in
  let cost = ref 0.0 in
  let transport path ~payload:_ =
    match Mesh.walk (Network.mesh net) ~now:(now0 +. !clock) path with
    | Mesh.Walk_delivered _ -> Pan.Conn.Sent { rtt_ms = latency_of path }
    | Mesh.Walk_dropped { at; reason } ->
        (match mode with
        | Baseline -> cost := !cost +. timeout_ms
        | Healed -> (
            match Router.scmp_answer (Mesh.router (Network.mesh net) at) reason with
            | Some scmp ->
                ignore (Daemon.handle_scmp daemon ~now:(now0 +. !clock) scmp);
                cost := !cost +. detect_ms net path ~at
            | None -> cost := !cost +. timeout_ms));
        Pan.Conn.Send_failed
  in
  let dial paths =
    let shortlist = take shortlist_n (Pan.sort_paths latency_policy ~latency_of paths) in
    match mode with
    | Healed ->
        Pan.Conn.dial ~reprobe:reprobe_policy ~rng:conn_rng ~policy:latency_policy ~latency_of
          ~transport ~paths:shortlist ()
    | Baseline ->
        Pan.Conn.dial ~policy:latency_policy ~latency_of ~transport ~paths:shortlist ()
  in
  let paths0, _ = Daemon.lookup daemon ~now:now0 ~dst:tr.t_dst in
  let conn = ref (Result.to_option (dial paths0)) in
  let preferred =
    match !conn with
    | Some c -> (Pan.Conn.current_path c).Combinator.fingerprint
    | None -> ""
  in
  let t_end = onset_s +. tr.repair_after_s +. settle_s in
  let recovery = ref None in
  let failures = ref 0 in
  let last_path = ref "" in
  clock := onset_s +. 0.05;
  while !clock < t_end do
    Engine.run engine ~until:!clock;
    cost := 0.0;
    (match !conn with
    | Some _ -> ()
    | None ->
        (* The connection ran out of candidates: re-dial from the daemon,
           which is where revocations (healed) pay off — dead siblings are
           already pruned from the answer. *)
        cost := !cost +. control_ms;
        let live, _ = Daemon.lookup daemon ~now:(now0 +. !clock) ~dst:tr.t_dst in
        conn := Result.to_option (dial live));
    let outcome =
      match !conn with
      | None -> Pan.Conn.Send_failed
      | Some c ->
          let o =
            match mode with
            | Healed -> Pan.Conn.send ~now:!clock c ~payload:"probe"
            | Baseline -> Pan.Conn.send c ~payload:"probe"
          in
          (match (o, mode) with
          | Pan.Conn.Send_failed, Baseline when Pan.Conn.candidates c = 0 -> conn := None
          | (Pan.Conn.Send_failed | Pan.Conn.Sent _), (Healed | Baseline) -> ());
          o
    in
    match outcome with
    | Pan.Conn.Sent { rtt_ms } ->
        let t_done = !clock +. ((!cost +. rtt_ms) /. 1000.0) in
        if Option.is_none !recovery then recovery := Some (t_done -. onset_s);
        (match !conn with
        | Some c -> last_path := (Pan.Conn.current_path c).Combinator.fingerprint
        | None -> ());
        failures := 0;
        clock := Float.max t_done (!clock +. poll_s)
    | Pan.Conn.Send_failed ->
        incr failures;
        let delay = Backoff.delay_ms sender_policy ~rng ~attempt:!failures in
        clock := !clock +. ((!cost +. delay) /. 1000.0)
  done;
  (* Drain the injector so the shared network leaves the trial repaired. *)
  Engine.run engine;
  ignore (Fault.Injector.fired injector);
  let stats =
    ( Daemon.revocations daemon,
      Daemon.evicted_paths daemon,
      match !conn with Some c -> Pan.Conn.reprobes c | None -> 0 )
  in
  ( {
      time_to_recover_s =
        (match !recovery with Some s -> s | None -> t_end -. onset_s (* censored *));
      on_preferred = (not (String.equal preferred "")) && String.equal !last_path preferred;
    },
    stats )

(* --- The experiment --------------------------------------------------- *)

let summarize outcomes =
  let recovery_s = Array.map (fun o -> o.time_to_recover_s) outcomes in
  let returned =
    Array.fold_left (fun acc o -> if o.on_preferred then acc + 1 else acc) 0 outcomes
  in
  {
    recovery_s;
    median_s = Stats.median recovery_s;
    p90_s = Stats.percentile recovery_s 90.0;
    returned_to_preferred = float_of_int returned /. float_of_int (Array.length outcomes);
  }

let run ?(trials = 30) ?(seed = 0x5EC0_4E4FL) ?(per_origin = 8) ?(verify_pcbs = false)
    ?telemetry () =
  (* The fault stream is derived by label, never split from a workload
     stream: attaching the injector cannot perturb any workload draw. *)
  let fault_rng = Rng.of_label seed "fault" in
  let sender_rng = Rng.of_label seed "sender" in
  let obs = match telemetry with Some o -> Some o | None -> None in
  let net =
    match obs with
    | Some o -> Network.create ~seed ~per_origin ~verify_pcbs ~telemetry:o ()
    | None -> Network.create ~seed ~per_origin ~verify_pcbs ()
  in
  let ias = List.map (fun (a : Topology.as_info) -> a.Topology.ia) Topology.ases in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if (not (Ia.equal a b)) && Network.paths net ~src:a ~dst:b <> [] then Some (a, b)
            else None)
          ias)
      ias
    |> Array.of_list
  in
  let make_trial () =
    let t_src, t_dst = Rng.pick fault_rng pairs in
    let paths = Network.paths net ~src:t_src ~dst:t_dst in
    let best =
      match Pan.sort_paths latency_policy ~latency_of:(Network.scion_rtt_base net) paths with
      | p :: _ -> p
      | [] -> invalid_arg "Exp_recovery: pair without paths"
    in
    let links = Array.of_list (Network.path_links net best) in
    { t_src; t_dst; target = Rng.pick fault_rng links; repair_after_s = 12.0 +. Rng.float fault_rng 28.0 }
  in
  let plan = Array.init trials (fun _ -> make_trial ()) in
  let run_mode mode =
    let revocations = ref 0 and evicted = ref 0 and reprobes = ref 0 in
    let outcomes =
      Array.map
        (fun tr ->
          let outcome, (r, e, p) =
            measure net ~mode ~rng:(Rng.split sender_rng) ~daemon_rng:(Rng.split sender_rng)
              ~conn_rng:(Rng.split sender_rng) tr
          in
          revocations := !revocations + r;
          evicted := !evicted + e;
          reprobes := !reprobes + p;
          outcome)
        plan
    in
    (summarize outcomes, !revocations, !evicted, !reprobes)
  in
  let healed, revocations, evicted_paths, reprobes = run_mode Healed in
  let baseline, _, _, _ = run_mode Baseline in
  let result = { trials; healed; baseline; revocations; evicted_paths; reprobes } in
  (match obs with
  | None -> ()
  | Some o ->
      let module M = Telemetry.Metrics in
      let reg = Obs.registry o in
      M.add (M.counter reg "exp.recovery.trials") trials;
      M.add (M.counter reg "exp.recovery.revocations") revocations;
      M.add (M.counter reg "exp.recovery.evicted_paths") evicted_paths;
      M.add (M.counter reg "exp.recovery.reprobes") reprobes;
      List.iter
        (fun (mode, mr) ->
          let s =
            M.summary reg ~labels:[ ("mode", mode_name mode) ] "exp.recovery.time_to_recover_s"
          in
          Array.iter (M.record s) mr.recovery_s)
        [ (Healed, healed); (Baseline, baseline) ]);
  result

(* --- Rendering -------------------------------------------------------- *)

let print_recovery r =
  Log.out "== Recovery: time to first successful send after link failure (%d trials) ==\n"
    r.trials;
  let row mode mr =
    [
      mode_name mode;
      Table.fmt_float (Stats.percentile mr.recovery_s 25.0);
      Table.fmt_float mr.median_s;
      Table.fmt_float (Stats.percentile mr.recovery_s 75.0);
      Table.fmt_float mr.p90_s;
      Table.fmt_pct mr.returned_to_preferred;
    ]
  in
  Table.print
    ~header:[ "mode"; "p25 s"; "median s"; "p75 s"; "p90 s"; "back on preferred" ]
    ~rows:[ row Healed r.healed; row Baseline r.baseline ];
  Log.out
    "healed median %s s vs baseline %s s: SCMP revocation + backoff re-probe cut \
     time-to-recover %sx; %d revocations evicted %d cached paths, %d re-probes\n\n"
    (Table.fmt_float r.healed.median_s)
    (Table.fmt_float r.baseline.median_s)
    (Table.fmt_float (r.baseline.median_s /. Float.max 1e-9 r.healed.median_s))
    r.revocations r.evicted_paths r.reprobes
