(** Section 5.4 — the connectivity analysis: Figures 5, 6 and 7.

    Runs the multiping campaign over the simulated 20-day window, applies
    the paper's exclusion rule, and computes:
    - Figure 5: the CDFs of SCION and IP ping RTTs (with median and p90);
    - Figure 6: the CDF of per-AS-pair mean RTT ratio SCION/IP, plus the
      identified outlier groups;
    - Figure 7: the SCION/IP RTT ratio over time (per half-day bucket). *)

type pair_ratio = {
  pr_src : Scion_addr.Ia.t;
  pr_dst : Scion_addr.Ia.t;
  ratio : float;  (** mean SCION RTT / mean IP RTT over the window. *)
}

type result = {
  dataset : Multiping.dataset;  (** After exclusion. *)
  raw_scion_pings : int;
  raw_ip_pings : int;
  scion_rtts : float array;
  ip_rtts : float array;
  scion_median : float;
  ip_median : float;
  scion_p90 : float;
  ip_p90 : float;
  pair_ratios : pair_ratio list;
  frac_pairs_faster_on_scion : float;  (** Paper: ~38%. *)
  frac_pairs_inflation_le_25pct : float;  (** Paper: ~80%. *)
  timeseries : (float * float) list;  (** (day, median pair ratio). *)
}

val run :
  ?days:float ->
  ?config:Multiping.config ->
  ?seed:int64 ->
  ?verify_pcbs:bool ->
  ?telemetry:Obs.t ->
  unit ->
  result
(** [?telemetry] threads an observability bundle through the underlying
    {!Network.create}, so the campaign's router/beacon/link counters land in
    the bundle's registry — the per-figure metrics evidence the golden
    harness checks in. Attaching telemetry never changes RNG draw order. *)

val print_fig5 : result -> unit
val print_fig6 : result -> unit
val print_fig7 : result -> unit
