(** Observability bundle for a SCIERA simulation: a deterministic metrics
    registry plus a simulated-clock tracer, with wiring helpers that attach
    them to the generic [netsim] hooks ({!Netsim.Engine.on_event},
    {!Netsim.Net.set_monitor}). The same bundle is what
    {!Network.create}'s [?telemetry] threads through the whole stack. *)

type t

val create : unit -> t
val registry : t -> Telemetry.Metrics.registry
val trace : t -> Telemetry.Trace.t

val wire_engine : t -> Netsim.Engine.t -> unit
(** Maintain [engine.events_processed], [engine.queue_depth] and
    [engine.sim_time_s] from the engine's event hook. *)

val wire_fabric : t -> name:string -> Netsim.Net.t -> unit
(** Install a link monitor counting [net.tx_packets]/[net.tx_bytes],
    [net.rx_packets]/[net.rx_bytes], [net.dropped{cause}] and the
    [net.serialisation_wait_s] histogram, all labelled [net=<name>].
    Replaces any previously installed monitor on the fabric. *)

val samples : t -> Telemetry.Metrics.sample list
(** Point-in-time sample list of the bundle's registry, in the canonical
    sorted order of {!Telemetry.Metrics.snapshot} — what the evidence
    harness merges with its per-figure headline series. *)

val snapshot_json : t -> string
(** Canonical JSONL snapshot ({!Telemetry.Export.to_json}) — byte-identical
    across reruns of the same seeded simulation. *)

val render : t -> string
(** Human-readable table of every series. *)
