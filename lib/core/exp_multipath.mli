(** Section 5.5 — multipath quality: Figures 8, 9, 10a and 10b.

    Over the measurement window's control-plane epochs, for the nine ASes
    of Figure 8:
    - Figure 8: the highest number of {e active} paths (known to the
      control plane and delivering on the data plane) per AS pair;
    - Figure 9: the median deviation from that maximum over time
      (epoch-duration-weighted);
    - Figure 10a: the CDF of latency inflation d2/d1 between the best and
      second-best RTT paths;
    - Figure 10b: the CDF of pairwise path disjointness. *)

type result = {
  ases : Scion_addr.Ia.t list;  (** Figure 8 row/column order. *)
  max_paths : int array array;  (** [src][dst]. *)
  median_deviation : int array array;
  inflation_cdf : Scion_util.Stats.cdf;
  frac_inflation_close_to_1 : float;  (** d2/d1 <= 1.05; paper: ~40%. *)
  frac_inflation_le_1_2 : float;  (** Paper: ~80%. *)
  disjointness_cdf : Scion_util.Stats.cdf;
  frac_fully_disjoint : float;  (** Paper: ~30%. *)
  frac_disjointness_ge_0_7 : float;  (** Paper: ~80%. *)
  min_paths : int;  (** Smallest max-path count across pairs; paper: >= 2. *)
  best_pair : Scion_addr.Ia.t * Scion_addr.Ia.t * int;  (** Paper: > 100. *)
}

val run :
  ?seed:int64 -> ?per_origin:int -> ?verify_pcbs:bool -> ?telemetry:Obs.t -> unit -> result
(** [?telemetry] instruments the underlying network (see
    {!Exp_connectivity.run}); the epoch sweep's control-plane and data-plane
    counters become the figure's checked-in metrics evidence. *)

val print_fig8 : result -> unit
val print_fig9 : result -> unit
val print_fig10a : result -> unit
val print_fig10b : result -> unit
