module Log = Telemetry.Log
(* The pathmon figure: adaptive (prober + selector driven) vs static path
   selection under soft degradation. Each trial injects a latency window or
   a loss burst on a link of the connection's preferred path — degradation
   that still *delivers*, so hard-down failover never triggers — and
   measures how long the workload keeps riding the degraded path and how
   much its latency inflates. The adaptive connection runs an SCMP-echo
   prober over its candidate set, feeds per-path EWMA/loss estimators in
   the daemon's shared quality cache, and lets the selector soft-fail over
   once the active path's score degrades past hysteresis (and return after
   recovery); the static connection keeps the dial-time ranking. *)

module Ia = Scion_addr.Ia
module Rng = Scion_util.Rng
module Stats = Scion_util.Stats
module Table = Scion_util.Table
module Combinator = Scion_controlplane.Combinator
module Daemon = Scion_endhost.Daemon
module Pan = Scion_endhost.Pan
module Engine = Netsim.Engine
module Net = Netsim.Net

type mode = Adaptive | Static

let mode_name = function Adaptive -> "adaptive" | Static -> "static"

type mode_result = {
  degraded_s : float array;  (** Per-trial time spent on a degraded path, s. *)
  median_degraded_s : float;
  p90_degraded_s : float;
  inflation : float array;  (** Per-trial mean in-window RTT / pre-fault RTT. *)
  median_inflation : float;
  returned_to_preferred : float;  (** Fraction back on the best path at end. *)
  soft_switches : int;
  probes : int;
}

type result = { trials : int; adaptive : mode_result; static_ : mode_result }

(* --- Cost model and cadences (simulated; nothing sleeps) --------------- *)

let onset_s = 2.0 (* degradation begins *)
let settle_s = 12.0 (* post-recovery window: estimators decay, conns return *)
let poll_s = 0.25 (* workload send cadence *)
let probe_interval_ms = 150.0
let timeout_ms = 1000.0 (* ack timeout charged per lost workload transmission *)
let retransmits = 3 (* workload transmission attempts before giving up *)
let shortlist_n = 6 (* candidate paths a connection keeps *)

let latency_policy = { Pan.default_policy with Pan.preferences = [ Pan.Latency ] }

(* Deviation weight 1 (not the default 2): the experiment's return-time
   budget is settle_s, and the slow beta = 1/8 deviation decay after a
   recovery transition dominates how fast the preferred path's score drops
   back under the alternative's. *)
let selector_config = Pathmon.Selector.make_config ~dev_weight:1.0 ()

let rec take n = function [] -> [] | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

(* --- Trials ------------------------------------------------------------ *)

type kind = Latency_window | Loss_burst

type trial = {
  t_src : Ia.t;
  t_dst : Ia.t;
  target : Net.link_id;  (** Degraded link: on the preferred path only. *)
  kind : kind;
  magnitude : float;  (** extra one-way ms, or extra loss probability. *)
  duration_s : float;
}

(* A path is degraded when any of its links carries an active fault effect
   — the ground truth the time-in-degraded metric integrates. *)
let path_degraded net (fp : Combinator.fullpath) =
  let fabric = Network.scion_fabric net in
  List.exists
    (fun l ->
      (not (Net.link_up fabric l))
      || Net.extra_latency fabric l > 0.0
      || Net.extra_loss fabric l > 0.0)
    (Network.path_links net fp)

let measure net ~mode ~metrics ~rng ~probe_rng (tr : trial) =
  let engine = Engine.create () in
  let scenario =
    let to_s = onset_s +. tr.duration_s in
    match tr.kind with
    | Latency_window ->
        Fault.Scenario.window ~link:tr.target ~from_s:onset_s ~to_s ~extra_ms:tr.magnitude
    | Loss_burst -> Fault.Scenario.burst ~link:tr.target ~from_s:onset_s ~to_s ~loss:tr.magnitude
  in
  let injector = Network.inject net ~engine ~rng:(Rng.split rng) scenario in
  let quality = Pathmon.Cache.create () in
  let daemon =
    Daemon.create ~ia:tr.t_src
      ~fetch:(fun ~dst -> Network.paths net ~src:tr.t_src ~dst)
      ~cache_ttl:600.0 ~quality ()
  in
  let latency_of = Network.scion_rtt_base net in
  let transport path ~payload:_ =
    (* Soft degradation still delivers: a lost transmission costs an ack
       timeout and is retransmitted over the same path, so escaping the
       degradation is entirely the selector's job, not hard failover's. *)
    let rec go attempt penalty =
      if attempt > retransmits then Pan.Conn.Sent { rtt_ms = penalty +. latency_of path }
      else
        match Network.scion_rtt_sample net path with
        | `Rtt ms -> Pan.Conn.Sent { rtt_ms = penalty +. ms }
        | `Lost -> go (attempt + 1) (penalty +. timeout_ms)
    in
    go 1 0.0
  in
  let paths0, _ = Daemon.lookup daemon ~now:(Network.now_unix net) ~dst:tr.t_dst in
  let shortlist = take shortlist_n (Pan.sort_paths latency_policy ~latency_of paths0) in
  let dst_key = Ia.to_string tr.t_dst in
  let t_end = onset_s +. tr.duration_s +. settle_s in
  let prober =
    match mode with
    | Static -> None
    | Adaptive ->
        let by_fp = Hashtbl.create 8 in
        List.iter
          (fun (p : Combinator.fullpath) -> Hashtbl.replace by_fp p.Combinator.fingerprint p)
          shortlist;
        let sample_rng = Rng.split probe_rng in
        let pr =
          Pathmon.Prober.create ?metrics ~interval_ms:probe_interval_ms
            ~rng:(Rng.split probe_rng)
            ~probe:(fun ~fingerprint ->
              match Hashtbl.find_opt by_fp fingerprint with
              | Some fp -> Network.scmp_probe net ~rng:sample_rng fp
              | None -> `Lost)
            ()
        in
        List.iter
          (fun (p : Combinator.fullpath) ->
            Pathmon.Prober.watch pr ~fingerprint:p.Combinator.fingerprint
              ~estimator:(Pathmon.Cache.find quality ~dst:dst_key ~fingerprint:p.Combinator.fingerprint))
          shortlist;
        Pathmon.Prober.attach pr ~engine ~until_s:t_end;
        Some pr
  in
  let conn =
    let dial_result =
      match mode with
      | Adaptive ->
          let adaptive =
            {
              Pan.Conn.selector = Pathmon.Selector.create ?metrics ~config:selector_config ();
              quality = (fun fp -> Pathmon.Cache.peek quality ~dst:dst_key ~fingerprint:fp);
            }
          in
          Pan.Conn.dial ~adaptive ~policy:latency_policy ~latency_of ~transport ~paths:shortlist ()
      | Static -> Pan.Conn.dial ~policy:latency_policy ~latency_of ~transport ~paths:shortlist ()
    in
    match dial_result with
    | Ok c -> c
    | Error e -> invalid_arg (Printf.sprintf "Exp_pathmon: dial failed: %s" e)
  in
  let preferred = (Pan.Conn.current_path conn).Combinator.fingerprint in
  let base_rtt = latency_of (Pan.Conn.current_path conn) in
  let degraded = ref 0.0 in
  let window_rtts = ref [] in
  let clock = ref 0.1 in
  while !clock < t_end do
    Engine.run engine ~until:!clock;
    (match Pan.Conn.send ~now:!clock conn ~payload:"workload" with
    | Pan.Conn.Send_failed -> ()
    | Pan.Conn.Sent { rtt_ms } ->
        if !clock >= onset_s && !clock < onset_s +. tr.duration_s then begin
          if path_degraded net (Pan.Conn.current_path conn) then degraded := !degraded +. poll_s;
          window_rtts := rtt_ms :: !window_rtts
        end);
    clock := !clock +. poll_s
  done;
  (* Drain: the self-closing scenario leaves the shared network repaired. *)
  Engine.run engine;
  ignore (Fault.Injector.fired injector);
  let inflation =
    match !window_rtts with
    | [] -> 1.0
    | rtts -> Stats.mean (Array.of_list rtts) /. Float.max 1e-9 base_rtt
  in
  let on_preferred =
    String.equal (Pan.Conn.current_path conn).Combinator.fingerprint preferred
  in
  ( !degraded,
    inflation,
    on_preferred,
    Pan.Conn.soft_switches conn,
    match prober with Some pr -> Pathmon.Prober.probes_sent pr | None -> 0 )

(* --- The experiment ---------------------------------------------------- *)

let summarize rows =
  let degraded_s = Array.map (fun (d, _, _, _, _) -> d) rows in
  let inflation = Array.map (fun (_, i, _, _, _) -> i) rows in
  let returned =
    Array.fold_left (fun acc (_, _, r, _, _) -> if r then acc + 1 else acc) 0 rows
  in
  let soft_switches = Array.fold_left (fun acc (_, _, _, s, _) -> acc + s) 0 rows in
  let probes = Array.fold_left (fun acc (_, _, _, _, p) -> acc + p) 0 rows in
  {
    degraded_s;
    median_degraded_s = Stats.median degraded_s;
    p90_degraded_s = Stats.percentile degraded_s 90.0;
    inflation;
    median_inflation = Stats.median inflation;
    returned_to_preferred = float_of_int returned /. float_of_int (Array.length rows);
    soft_switches;
    probes;
  }

let run ?(trials = 10) ?(seed = 0x9A7A_40BFL) ?(per_origin = 8) ?(verify_pcbs = false)
    ?telemetry () =
  (* Label-derived streams: fault, probe and sender draws are independent
     of each other and of every workload stream. *)
  let fault_rng = Rng.of_label seed "fault" in
  let probe_rng = Rng.of_label seed "pathmon.probe" in
  let sender_rng = Rng.of_label seed "sender" in
  let net =
    match telemetry with
    | Some o -> Network.create ~seed ~per_origin ~verify_pcbs ~telemetry:o ()
    | None -> Network.create ~seed ~per_origin ~verify_pcbs ()
  in
  let metrics = Option.map Obs.registry telemetry in
  let latency_of = Network.scion_rtt_base net in
  let ias = List.map (fun (a : Topology.as_info) -> a.Topology.ia) Topology.ases in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if (not (Ia.equal a b)) && List.length (Network.paths net ~src:a ~dst:b) >= 2 then
              Some (a, b)
            else None)
          ias)
      ias
    |> Array.of_list
  in
  (* A usable trial needs a target link that the second-best path avoids —
     otherwise there is no clean escape and neither mode can win. Pairs are
     redrawn (deterministically) until one qualifies. *)
  let rec make_trial attempts =
    if attempts > 100 then invalid_arg "Exp_pathmon: no trial with an escapable degradation";
    let t_src, t_dst = Rng.pick fault_rng pairs in
    let ranked =
      take shortlist_n
        (Pan.sort_paths latency_policy ~latency_of (Network.paths net ~src:t_src ~dst:t_dst))
    in
    match ranked with
    | best :: second :: _ ->
        let second_links = Network.path_links net second in
        let escapable =
          List.filter (fun l -> not (List.mem l second_links)) (Network.path_links net best)
        in
        if escapable = [] then make_trial (attempts + 1)
        else begin
          let target = Rng.pick fault_rng (Array.of_list escapable) in
          let kind = if Rng.bool fault_rng then Latency_window else Loss_burst in
          let magnitude =
            match kind with
            | Latency_window -> 80.0 +. Rng.float fault_rng 120.0
            | Loss_burst -> 0.25 +. Rng.float fault_rng 0.2
          in
          { t_src; t_dst; target; kind; magnitude; duration_s = 10.0 +. Rng.float fault_rng 10.0 }
        end
    | [ _ ] | [] -> make_trial (attempts + 1)
  in
  let plan = Array.init trials (fun _ -> make_trial 0) in
  let run_mode mode =
    summarize
      (Array.map
         (fun tr ->
           measure net ~mode ~metrics ~rng:(Rng.split sender_rng) ~probe_rng:(Rng.split probe_rng)
             tr)
         plan)
  in
  let adaptive = run_mode Adaptive in
  let static_ = run_mode Static in
  let result = { trials; adaptive; static_ } in
  (match telemetry with
  | None -> ()
  | Some o ->
      let module M = Telemetry.Metrics in
      let reg = Obs.registry o in
      M.add (M.counter reg "exp.pathmon.trials") trials;
      M.add (M.counter reg "exp.pathmon.soft_switches") adaptive.soft_switches;
      M.add (M.counter reg "exp.pathmon.probes") adaptive.probes;
      List.iter
        (fun (mode, mr) ->
          let labels = [ ("mode", mode_name mode) ] in
          let d = M.summary reg ~labels "exp.pathmon.time_in_degraded_s" in
          Array.iter (M.record d) mr.degraded_s;
          let i = M.summary reg ~labels "exp.pathmon.latency_inflation" in
          Array.iter (M.record i) mr.inflation)
        [ (Adaptive, adaptive); (Static, static_) ]);
  result

(* --- Rendering --------------------------------------------------------- *)

let print_pathmon r =
  Log.out
    "== Pathmon: adaptive vs static selection under soft degradation (%d trials) ==\n"
    r.trials;
  let row mode mr =
    [
      mode_name mode;
      Table.fmt_float (Stats.percentile mr.degraded_s 25.0);
      Table.fmt_float mr.median_degraded_s;
      Table.fmt_float mr.p90_degraded_s;
      Table.fmt_float mr.median_inflation;
      Table.fmt_pct mr.returned_to_preferred;
    ]
  in
  Table.print
    ~header:
      [ "mode"; "degraded p25 s"; "degraded median s"; "degraded p90 s"; "median inflation"; "back on preferred" ]
    ~rows:[ row Adaptive r.adaptive; row Static r.static_ ];
  Log.out
    "adaptive rode a degraded path %s s median vs %s s static (%sx less); %d soft switches \
     driven by %d probes\n\n"
    (Table.fmt_float r.adaptive.median_degraded_s)
    (Table.fmt_float r.static_.median_degraded_s)
    (Table.fmt_float (r.static_.median_degraded_s /. Float.max 1e-9 r.adaptive.median_degraded_s))
    r.adaptive.soft_switches r.adaptive.probes
