(** The recovery figure: time-to-recover CDFs after a link failure on the
    connection's preferred path — self-healing stack (SCMP
    external-interface-down answers revoking cached paths at the daemon,
    plus capped-exponential re-probe of failed-over paths in the
    connection) versus a silent-timeout baseline.

    Each trial picks an AS pair and one fabric link of its best path,
    schedules a link outage through the {!Fault.Injector} (down at onset,
    repaired [12..40] s later, the repair re-originating beacons via
    {!Network.apply_fault}), and drives a prober whose per-attempt costs
    are simulated milliseconds: a dead path costs the SCMP answer's
    partial-path RTT when healed, a full ack timeout when not. Recovery is
    the time from fault onset to the first successful send; afterwards the
    prober keeps polling to see whether it is back on the preferred path
    once the link is repaired.

    Determinism: the fault and sender streams are [Rng.of_label seed
    "fault"] / ["sender"] — independent of every workload stream, so the
    checked-in goldens are byte-stable and attaching the faults perturbs
    no other figure. *)

type mode = Healed | Baseline

val mode_name : mode -> string

type mode_result = {
  recovery_s : float array;  (** Per-trial time-to-recover, seconds. *)
  median_s : float;
  p90_s : float;
  returned_to_preferred : float;
      (** Fraction of trials back on the original best path at the end of
          the post-repair settle window. *)
}

type result = {
  trials : int;
  healed : mode_result;
  baseline : mode_result;
  revocations : int;  (** Daemon revocations learnt across healed trials. *)
  evicted_paths : int;  (** Cached paths evicted by those revocations. *)
  reprobes : int;  (** Parked paths re-probed by the healed connections. *)
}

val run :
  ?trials:int ->
  ?seed:int64 ->
  ?per_origin:int ->
  ?verify_pcbs:bool ->
  ?telemetry:Obs.t ->
  unit ->
  result
(** Default 30 trials over a [per_origin = 8], unverified-PCB network
    (the same speed/fidelity trade the other figure experiments make —
    every repair re-runs beaconing, so beaconing cost dominates).
    With [?telemetry], publishes
    [exp.recovery.trials], [exp.recovery.revocations],
    [exp.recovery.evicted_paths], [exp.recovery.reprobes] and the
    [exp.recovery.time_to_recover_s{mode}] summaries. *)

val print_recovery : result -> unit
