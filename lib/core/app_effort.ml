module Log = Telemetry.Log
(* Section 5.2: application enablement effort. The paper SCIONabled three
   existing applications (bat, a Caddy reverse proxy, a Java netcat) with
   minimal diffs (Appendices E-G). This repository carries the same case
   study against its own PAN-style library: each example application in
   examples/ exists as a plain-UDP variant and a SCION variant sharing all
   application logic; the rows below record the integration surface. The
   LoC deltas are checked against the example sources by the test suite so
   they cannot rot. *)

type case = {
  app : string;
  upstream_equivalent : string;  (** The app the paper modified. *)
  loc_delta : int;  (** Lines added/changed to enable SCION. *)
  integration_points : string list;
}

let cases =
  [
    {
      app = "examples/fetch.ml (HTTP-like client)";
      upstream_equivalent = "bat (Appendix E, <20 LoC)";
      loc_delta = 14;
      integration_points =
        [
          "CLI flags for --sequence/--preference/--interactive";
          "swap the default transport for the PAN dial";
        ];
    };
    {
      app = "examples/reverse_proxy.ml (Caddy-style)";
      upstream_equivalent = "scion-caddy plugin (Appendix F)";
      loc_delta = 22;
      integration_points =
        [
          "register a scion network listener";
          "tag requests with X-SCION headers from the remote address";
        ];
    };
    {
      app = "examples/netcat.ml";
      upstream_equivalent = "Java netcat via JPAN (Appendix G, 4 lines)";
      loc_delta = 4;
      integration_points = [ "drop-in socket replacement" ];
    };
  ]

let print_app_effort () =
  Log.out "== Section 5.2: application enablement effort ==\n";
  Scion_util.Table.print ~header:[ "application"; "paper equivalent"; "LoC delta" ]
    ~rows:
      (List.map
         (fun c -> [ c.app; c.upstream_equivalent; string_of_int c.loc_delta ])
         cases);
  List.iter
    (fun c ->
      Log.out "%s:\n" c.app;
      List.iter (fun p -> Log.out "  - %s\n" p) c.integration_points)
    cases;
  Log.out
    "all three integrations stay within tens of lines, matching the paper's frictionless-enablement finding\n\n"
