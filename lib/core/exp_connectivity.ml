module Log = Telemetry.Log
module Ia = Scion_addr.Ia
module Stats = Scion_util.Stats
module Table = Scion_util.Table

type pair_ratio = { pr_src : Ia.t; pr_dst : Ia.t; ratio : float }

type result = {
  dataset : Multiping.dataset;
  raw_scion_pings : int;
  raw_ip_pings : int;
  scion_rtts : float array;
  ip_rtts : float array;
  scion_median : float;
  ip_median : float;
  scion_p90 : float;
  ip_p90 : float;
  pair_ratios : pair_ratio list;
  frac_pairs_faster_on_scion : float;
  frac_pairs_inflation_le_25pct : float;
  timeseries : (float * float) list;
}

let run ?(days = Incidents.window_days) ?(config = Multiping.default_config) ?seed
    ?(verify_pcbs = false) ?telemetry () =
  let net = Network.create ?seed ~per_origin:8 ~verify_pcbs ?telemetry () in
  let raw = Multiping.run net ~config ~days () in
  let ds = Multiping.excluded_ip_majority raw in
  let scion_rtts =
    Array.of_list (List.filter_map (fun s -> s.Multiping.scion_rtt) ds.Multiping.samples)
  in
  let ip_rtts =
    Array.of_list (List.filter_map (fun s -> s.Multiping.ip_rtt) ds.Multiping.samples)
  in
  (* Per-pair mean ratios over the whole window (Figure 6's statistic). *)
  let by_pair = Hashtbl.create 512 in
  List.iter
    (fun (s : Multiping.sample) ->
      let key = Ia.to_string s.Multiping.src ^ ">" ^ Ia.to_string s.Multiping.dst in
      let sc, ip, n =
        match Hashtbl.find_opt by_pair key with
        | Some acc -> acc
        | None -> (0.0, 0.0, 0)
      in
      match (s.Multiping.scion_rtt, s.Multiping.ip_rtt) with
      | Some a, Some b ->
          Hashtbl.replace by_pair key (sc +. a, ip +. b, n + 1);
          ignore (s.Multiping.src, s.Multiping.dst)
      | _ -> ())
    ds.Multiping.samples;
  let pair_ratios =
    Scion_util.Table.fold_sorted
      (fun key (sc, ip, n) acc ->
        if n = 0 || ip <= 0.0 then acc
        else begin
          match String.split_on_char '>' key with
          | [ a; b ] ->
              { pr_src = Ia.of_string a; pr_dst = Ia.of_string b; ratio = sc /. ip } :: acc
          | _ -> acc
        end)
      by_pair []
  in
  let nratios = float_of_int (List.length pair_ratios) in
  let frac p = float_of_int (List.length (List.filter p pair_ratios)) /. Float.max 1.0 nratios in
  (* Figure 7: per half-day bucket, the median over pairs of the bucket's
     per-pair ratio of mean RTTs. *)
  let bucket_of s = Float.round (s.Multiping.day /. 0.5) *. 0.5 in
  let buckets = Hashtbl.create 64 in
  List.iter
    (fun (s : Multiping.sample) ->
      match (s.Multiping.scion_rtt, s.Multiping.ip_rtt) with
      | Some a, Some b ->
          let key =
            ( bucket_of s,
              Ia.to_string s.Multiping.src ^ ">" ^ Ia.to_string s.Multiping.dst )
          in
          let sc, ip, n =
            match Hashtbl.find_opt buckets key with Some acc -> acc | None -> (0.0, 0.0, 0)
          in
          Hashtbl.replace buckets key (sc +. a, ip +. b, n + 1)
      | _ -> ())
    ds.Multiping.samples;
  let per_bucket = Hashtbl.create 64 in
  Scion_util.Table.iter_sorted
    (fun (bucket, _) (sc, ip, n) ->
      if n > 0 && ip > 0.0 then begin
        let existing = match Hashtbl.find_opt per_bucket bucket with Some l -> l | None -> [] in
        Hashtbl.replace per_bucket bucket ((sc /. ip) :: existing)
      end)
    buckets;
  let timeseries =
    Scion_util.Table.fold_sorted
      (fun bucket ratios acc -> (bucket, Stats.median (Array.of_list ratios)) :: acc)
      per_bucket []
    |> List.sort compare
  in
  {
    dataset = ds;
    raw_scion_pings = raw.Multiping.scion_pings;
    raw_ip_pings = raw.Multiping.ip_pings;
    scion_rtts;
    ip_rtts;
    scion_median = Stats.median scion_rtts;
    ip_median = Stats.median ip_rtts;
    scion_p90 = Stats.percentile scion_rtts 90.0;
    ip_p90 = Stats.percentile ip_rtts 90.0;
    pair_ratios;
    frac_pairs_faster_on_scion = frac (fun r -> r.ratio < 1.0);
    frac_pairs_inflation_le_25pct = frac (fun r -> r.ratio <= 1.25);
    timeseries;
  }

let print_cdf name values =
  let cdf = Stats.resample_cdf (Stats.cdf values) 15 in
  Log.out "%s\n" name;
  Table.print ~header:[ "RTT (ms)"; "P(X<=x)" ]
    ~rows:(List.map (fun (v, f) -> [ Table.fmt_ms v; Table.fmt_pct f ]) cdf)

let print_fig5 r =
  Log.out "== Figure 5: CDF of ping latency for SCION and IP ==\n";
  Log.out "pings kept: %d SCION, %d IP (raw: %d / %d)\n" r.dataset.Multiping.scion_pings
    r.dataset.Multiping.ip_pings r.raw_scion_pings r.raw_ip_pings;
  print_cdf "SCION RTT CDF:" r.scion_rtts;
  print_cdf "IP RTT CDF:" r.ip_rtts;
  Log.out "median: SCION %.1f ms vs IP %.1f ms (%.1f%% reduction; paper: 149.8 vs 160.9, 6.9%%)\n"
    r.scion_median r.ip_median
    (100.0 *. (r.ip_median -. r.scion_median) /. r.ip_median);
  Log.out "p90:    SCION %.1f ms vs IP %.1f ms (%.1f%% reduction; paper: 287 vs 376, 23.7%%)\n\n"
    r.scion_p90 r.ip_p90
    (100.0 *. (r.ip_p90 -. r.scion_p90) /. r.ip_p90)

let print_fig6 r =
  Log.out "== Figure 6: CDF of RTT ratio (SCION / IP) per AS pair ==\n";
  let ratios = Array.of_list (List.map (fun p -> p.ratio) r.pair_ratios) in
  let cdf = Stats.resample_cdf (Stats.cdf ratios) 15 in
  Table.print ~header:[ "ratio"; "P(X<=x)" ]
    ~rows:(List.map (fun (v, f) -> [ Table.fmt_ratio v; Table.fmt_pct f ]) cdf);
  Log.out "pairs with lower latency over SCION: %s (paper: ~38%%)\n"
    (Table.fmt_pct r.frac_pairs_faster_on_scion);
  Log.out "pairs with <= 25%% inflation:         %s (paper: ~80%%)\n"
    (Table.fmt_pct r.frac_pairs_inflation_le_25pct);
  let outliers =
    List.filter (fun p -> p.ratio > 2.0) r.pair_ratios
    |> List.sort (fun a b -> compare b.ratio a.ratio)
  in
  Log.out "outliers (ratio > 2.0), as annotated in the paper's figure:\n";
  List.iter
    (fun p ->
      Log.out "  %-14s -> %-14s ratio %.2f\n" (Topology.name_of p.pr_src)
        (Topology.name_of p.pr_dst) p.ratio)
    (List.filteri (fun i _ -> i < 8) outliers);
  Log.out "\n"

let print_fig7 r =
  Log.out "== Figure 7: SCION/IP RTT ratio over time ==\n";
  Table.print ~header:[ "day"; "median ratio" ]
    ~rows:(List.map (fun (d, v) -> [ Printf.sprintf "%.1f" d; Table.fmt_ratio v ]) r.timeseries);
  let values = Array.of_list (List.map snd r.timeseries) in
  if Array.length values > 0 then begin
    let lo, hi = Stats.min_max values in
    Log.out
      "range %.3f..%.3f — maintenance spike near day 3 (Jan 21), stabilisation after day 7 (Jan 25), upgrade spike near day 19 (Feb 6)\n\n"
      lo hi
  end
