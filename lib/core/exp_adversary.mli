(** The containment golden figure: adversarial chaos against the SCIERA
    deployment. Eight attack classes — corrupted and replayed beacons,
    forged hop-field MACs, rogue down-segment registrations, a wormhole
    pair, SCMP reflection, a volumetric flood, and a CA compromise with
    rotation drill — each run with the defence stack on and off, at the
    29-AS deployment and a 300-AS Topogen mesh. Per cell the figure
    reports the class's blast radius (degraded pairs, bogus control-plane
    state accepted, amplification bytes, flood frames through) and the
    time from attack onset to neutralisation.

    Determinism contract: the campaigns draw only from the dedicated
    adversary stream ([Rng.of_label seed "fault.adv"]) and the
    measurement sampling only from a private workload stream, so running
    this figure perturbs no other figure's draws. *)

type attack = Corrupt | Replay | Forge | Rogue | Wormhole | Reflect | Flood | Compromise

val attacks : attack list
(** Execution order (state-polluting classes last). *)

val attack_name : attack -> string

type cell = {
  c_attack : attack;
  c_scale : string;
  c_defended : bool;
  c_degraded_pct : float;  (** Mean degraded-pair percentage over the window. *)
  c_bogus : int;  (** Bogus beacons accepted / rogue segments / forged delivered. *)
  c_amp_kb : float;  (** Amplification KiB emitted at the reflector. *)
  c_flood_passed : int;  (** Flood frames that reached the host. *)
  c_contain_s : float;
      (** Seconds from attack onset to neutralisation; 0 when the attack
          never had effect, censored at the measurement horizon when it
          was never contained. *)
}

type result = {
  cells : cell list;  (** One row per (class, scale, defences). *)
  scales : string list;
  classes_contained : int;
      (** Classes with strictly smaller blast radius AND strictly faster
          containment with defences on, at every scale. *)
  quarantine_events : int;
  quarantine_drops : int;
  scmp_suppressed : int;
  poisoned_revocations : int;
  rotations : int;
}

val blast_scalar : cell -> float
(** The class-specific blast-radius scalar of a cell. *)

(* scion-lint: rng-stream fault.adv -- the experiment builds the adversary stream itself; workload sampling uses a private stream *)
val run : ?seed:int64 -> ?topogen_ases:int -> ?telemetry:Obs.t -> unit -> result
(** Run the full grid (8 classes x 2 scales x defences on/off). With
    [?telemetry], aggregate counters land under [exp.adversary.*]. *)

val print_containment : result -> unit
(** Render the containment table plus the defence-ledger summary line. *)
