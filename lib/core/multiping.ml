module Ia = Scion_addr.Ia
module Combinator = Scion_controlplane.Combinator
module Rng = Scion_util.Rng

type sample = {
  day : float;
  src : Ia.t;
  dst : Ia.t;
  scion_rtt : float option;
  scion_sent : int;
  scion_ok : int;
  ip_rtt : float option;
  ip_sent : int;
  ip_ok : int;
  path_fingerprint : string option;
}

type dataset = {
  samples : sample list;
  scion_pings : int;
  ip_pings : int;
  intervals : int;
}

type config = {
  interval_s : float;
  pings_per_interval : int;
  stall_fraction : float;
  stall_sources : Ia.t list;
}

let default_config =
  {
    interval_s = 600.0;
    pings_per_interval = 3;
    stall_fraction = 0.6;
    stall_sources =
      List.map Ia.of_string [ "71-2:0:5c"; "71-225"; "71-2:0:4a"; "71-2:0:3b" ];
  }

(* Path selection of the tool: shortest, fastest, most disjoint. *)
let probe_paths net ~src ~dst =
  match Network.paths net ~src ~dst with
  | [] -> []
  | (first :: _) as ps ->
      (* Paths come sorted by (hops, fingerprint): head is the shortest with
         the lowest identifier. *)
      let shortest = first in
      let fastest =
        List.fold_left
          (fun best p ->
            if Network.scion_rtt_base net p < Network.scion_rtt_base net best then p else best)
          shortest ps
      in
      let module S = Set.Make (struct
        type t = Ia.t * int

        let compare (i1, f1) (i2, f2) =
          let c = Ia.compare i1 i2 in
          if c <> 0 then c else Stdlib.compare f1 f2
      end) in
      let reference =
        S.union
          (S.of_list (Combinator.interface_ids shortest))
          (S.of_list (Combinator.interface_ids fastest))
      in
      let shared p =
        List.length (List.filter (fun i -> S.mem i reference) (Combinator.interface_ids p))
      in
      let disjoint =
        List.fold_left (fun best p -> if shared p < shared best then p else best) shortest ps
      in
      let dedup =
        List.fold_left
          (fun acc p ->
            if List.exists (fun q -> q.Combinator.fingerprint = p.Combinator.fingerprint) acc then acc
            else acc @ [ p ])
          [] [ shortest; fastest; disjoint ]
      in
      dedup

let run net ?(config = default_config) ?(days = Incidents.window_days) ?sources ?destinations () =
  let sources = match sources with Some s -> s | None -> Topology.measurement_ases in
  let destinations =
    match destinations with
    | Some d -> d
    | None -> List.map (fun (a : Topology.as_info) -> a.Topology.ia) Topology.ases
  in
  let rng = Rng.split (Network.rng net) in
  let intervals = int_of_float (days *. 86400.0 /. config.interval_s) in
  let samples = ref [] in
  let scion_total = ref 0 and ip_total = ref 0 in
  (* Path probes are refreshed whenever the control plane re-converged. *)
  let probe_cache : (string, Combinator.fullpath list) Hashtbl.t = Hashtbl.create 512 in
  let probe_epoch = ref (-1) in
  for i = 0 to intervals - 1 do
    let t = float_of_int i *. config.interval_s in
    let day = t /. 86400.0 in
    Network.set_day net day;
    if Network.rebeacon_count net <> !probe_epoch then begin
      Hashtbl.reset probe_cache;
      probe_epoch := Network.rebeacon_count net
    end;
    let hour_frac = Float.rem t 3600.0 /. 3600.0 in
    List.iter
      (fun src ->
        let stalled =
          hour_frac > 1.0 -. config.stall_fraction
          && List.exists (Ia.equal src) config.stall_sources
        in
        List.iter
          (fun dst ->
            if not (Ia.equal src dst) then begin
              let key = Ia.to_string src ^ ">" ^ Ia.to_string dst in
              let paths =
                match Hashtbl.find_opt probe_cache key with
                | Some p -> p
                | None ->
                    let p = probe_paths net ~src ~dst in
                    Hashtbl.replace probe_cache key p;
                    p
              in
              (* SCION: one SCMP ping per selected path per slot; keep the
                 interval minimum and the path that produced it. *)
              let scion_sent = ref 0 and scion_ok = ref 0 in
              let best = ref None in
              for _slot = 1 to config.pings_per_interval do
                List.iter
                  (fun p ->
                    incr scion_sent;
                    match Network.scion_rtt_sample net p with
                    | `Lost -> ()
                    | `Rtt ms ->
                        incr scion_ok;
                        let better =
                          match !best with None -> true | Some (b, _) -> ms < b
                        in
                        if better then best := Some (ms, p.Combinator.fingerprint))
                  paths
              done;
              (* IP: one ICMP ping per slot unless the tool is stalled. *)
              let ip_sent = ref 0 and ip_ok = ref 0 in
              let ip_best = ref None in
              if not stalled then
                for _slot = 1 to config.pings_per_interval do
                  incr ip_sent;
                  match Network.ip_rtt_sample net ~src ~dst with
                  | `Lost -> ()
                  | `Rtt ms ->
                      incr ip_ok;
                      (match !ip_best with
                      | Some b when b <= ms -> ()
                      | Some _ | None -> ip_best := Some ms)
                done;
              (* A handful of kept intervals still lose an ICMP ping. *)
              if (not stalled) && !ip_ok > 0 && Rng.float rng 1.0 < 0.01 then begin
                ip_sent := !ip_sent + 1 (* one extra attempt that got lost *)
              end;
              scion_total := !scion_total + !scion_sent;
              ip_total := !ip_total + !ip_sent;
              samples :=
                {
                  day;
                  src;
                  dst;
                  scion_rtt = Option.map fst !best;
                  scion_sent = !scion_sent;
                  scion_ok = !scion_ok;
                  ip_rtt = !ip_best;
                  ip_sent = !ip_sent;
                  ip_ok = !ip_ok;
                  path_fingerprint = Option.map snd !best;
                }
                :: !samples
            end)
          destinations)
      sources
  done;
  {
    samples = List.rev !samples;
    scion_pings = !scion_total;
    ip_pings = !ip_total;
    intervals;
  }

let excluded_ip_majority ds =
  let keep s = s.ip_sent > 0 && 2 * s.ip_ok >= s.ip_sent in
  let kept = List.filter keep ds.samples in
  {
    samples = kept;
    scion_pings = List.fold_left (fun a s -> a + s.scion_sent) 0 kept;
    ip_pings = List.fold_left (fun a s -> a + s.ip_sent) 0 kept;
    intervals = ds.intervals;
  }
