(* Glue between the generic netsim hooks and the telemetry subsystem: one
   bundle holding a metrics registry and a tracer, plus wiring helpers for
   the engine and the link fabrics. netsim itself has no telemetry
   dependency; everything flows through Engine.on_event / Net.set_monitor. *)

module M = Telemetry.Metrics
module Trace = Telemetry.Trace
module Engine = Netsim.Engine
module Net = Netsim.Net

type t = { registry : M.registry; trace : Trace.t }

let create () = { registry = M.create (); trace = Trace.create () }
let registry t = t.registry
let trace t = t.trace

let wire_engine t engine =
  let events = M.counter t.registry "engine.events_processed" in
  let depth = M.gauge t.registry "engine.queue_depth" in
  let clock = M.gauge t.registry "engine.sim_time_s" in
  Engine.on_event engine (fun ~time ~pending ->
      M.inc events;
      M.set depth (float_of_int pending);
      M.set clock time)

(* Serialisation-wait buckets in seconds: microseconds to one second. *)
let wait_buckets = [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 ]

let wire_fabric t ~name net =
  let base = [ ("net", name) ] in
  let counter ?(extra = []) metric = M.counter t.registry ~labels:(base @ extra) metric in
  let tx_packets = counter "net.tx_packets" in
  let tx_bytes = counter "net.tx_bytes" in
  let rx_packets = counter "net.rx_packets" in
  let rx_bytes = counter "net.rx_bytes" in
  let drop_down = counter ~extra:[ ("cause", "link_down") ] "net.dropped" in
  let drop_loss = counter ~extra:[ ("cause", "random_loss") ] "net.dropped" in
  (* Queue drops only exist on capacity-armed links; the counter is
     created lazily on the first such drop so fabrics that never arm
     capacity keep their historic snapshot byte-identical. *)
  let drop_queue = lazy (counter ~extra:[ ("cause", "queue_full") ] "net.dropped") in
  let wait = M.histogram t.registry ~labels:base ~buckets:wait_buckets "net.serialisation_wait_s" in
  Net.set_monitor net (function
    | Net.Tx { size_bytes; wait_s; _ } ->
        M.inc tx_packets;
        M.add tx_bytes size_bytes;
        M.observe wait wait_s
    | Net.Rx { size_bytes; _ } ->
        M.inc rx_packets;
        M.add rx_bytes size_bytes
    | Net.Drop { cause = Net.Link_down; _ } -> M.inc drop_down
    | Net.Drop { cause = Net.Random_loss; _ } -> M.inc drop_loss
    | Net.Drop { cause = Net.Queue_full; _ } -> M.inc (Lazy.force drop_queue))

let samples t = M.snapshot t.registry
let snapshot_json t = Telemetry.Export.to_json t.registry
let render t = Telemetry.Export.render t.registry
