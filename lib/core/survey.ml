module Log = Telemetry.Log
(* Section 5.6: the operator survey — 8 anonymous respondents, 20 questions
   over deployment experience, CAPEX and OPEX. The per-respondent answers
   are a dataset constructed to be consistent with every aggregate the
   paper reports; the aggregation pipeline below computes those aggregates
   from the raw answers, so the analysis code is exercised end to end. *)

type role = Network_engineer | Researcher

type setup_duration = Within_one_month | Up_to_six_months | Longer

type opex_assessment = Lower | Comparable | Slightly_higher

type respondent = {
  id : int;
  role : role;
  decade_plus_experience : bool;
  setup : setup_duration;
  delay_cause : string;
  vendor_support_needed : bool;  (** During deployment. *)
  hardware_usd : int;
  licensing_usd : int;  (** 0 for pure open-source + L2 setups. *)
  extra_hiring : bool;
  personnel_usd : int;
  opex : opex_assessment;
  cost_drivers : string list;
  workload_fraction : float;  (** Share of overall operational workload. *)
  vendor_contacts_per_year : int;
}

let respondents =
  [
    { id = 1; role = Network_engineer; decade_plus_experience = true; setup = Within_one_month;
      delay_cause = "none"; vendor_support_needed = false; hardware_usd = 6500; licensing_usd = 0;
      extra_hiring = false; personnel_usd = 0; opex = Comparable;
      cost_drivers = [ "hardware maintenance"; "staff workload" ]; workload_fraction = 0.05;
      vendor_contacts_per_year = 1 };
    { id = 2; role = Researcher; decade_plus_experience = false; setup = Within_one_month;
      delay_cause = "none"; vendor_support_needed = false; hardware_usd = 4000; licensing_usd = 0;
      extra_hiring = false; personnel_usd = 0; opex = Lower;
      cost_drivers = [ "staff workload" ]; workload_fraction = 0.04; vendor_contacts_per_year = 0 };
    { id = 3; role = Network_engineer; decade_plus_experience = true; setup = Within_one_month;
      delay_cause = "none"; vendor_support_needed = true; hardware_usd = 18000;
      licensing_usd = 12000; extra_hiring = false; personnel_usd = 0; opex = Comparable;
      cost_drivers = [ "hardware maintenance"; "monitoring and troubleshooting" ];
      workload_fraction = 0.08; vendor_contacts_per_year = 3 };
    { id = 4; role = Researcher; decade_plus_experience = true; setup = Up_to_six_months;
      delay_cause = "L2 circuit provisioning across multiple networks"; vendor_support_needed = false;
      hardware_usd = 7000; licensing_usd = 0; extra_hiring = false; personnel_usd = 0;
      opex = Comparable; cost_drivers = [ "hardware maintenance" ]; workload_fraction = 0.06;
      vendor_contacts_per_year = 1 };
    { id = 5; role = Network_engineer; decade_plus_experience = false; setup = Up_to_six_months;
      delay_cause = "L2 circuit provisioning across multiple networks"; vendor_support_needed = true;
      hardware_usd = 25000; licensing_usd = 20000; extra_hiring = true; personnel_usd = 20000;
      opex = Slightly_higher; cost_drivers = [ "staff workload"; "hardware maintenance" ];
      workload_fraction = 0.09; vendor_contacts_per_year = 5 };
    { id = 6; role = Researcher; decade_plus_experience = false; setup = Up_to_six_months;
      delay_cause = "L2 circuit provisioning across multiple networks"; vendor_support_needed = false;
      hardware_usd = 9000; licensing_usd = 0; extra_hiring = false; personnel_usd = 0; opex = Lower;
      cost_drivers = [ "power consumption" ]; workload_fraction = 0.03; vendor_contacts_per_year = 0 };
    { id = 7; role = Network_engineer; decade_plus_experience = true; setup = Up_to_six_months;
      delay_cause = "hardware delivery"; vendor_support_needed = true; hardware_usd = 21000;
      licensing_usd = 8000; extra_hiring = true; personnel_usd = 20000; opex = Slightly_higher;
      cost_drivers = [ "staff workload"; "monitoring and troubleshooting" ];
      workload_fraction = 0.15; vendor_contacts_per_year = 4 };
    { id = 8; role = Researcher; decade_plus_experience = false; setup = Longer;
      delay_cause = "L2 circuit provisioning across multiple networks"; vendor_support_needed = false;
      hardware_usd = 5500; licensing_usd = 0; extra_hiring = false; personnel_usd = 0; opex = Lower;
      cost_drivers = [ "hardware maintenance" ]; workload_fraction = 0.04;
      vendor_contacts_per_year = 1 };
  ]

let pct p =
  let n = List.length respondents in
  let k = List.length (List.filter p respondents) in
  100.0 *. float_of_int k /. float_of_int n

type aggregates = {
  n : int;
  decade_plus : float;
  engineers : float;
  setup_within_month : float;
  setup_within_six_months : float;
  deployed_without_vendor : float;
  hardware_under_20k : float;
  no_licensing : float;
  no_hiring : float;
  opex_comparable_or_lower : float;
  maintenance_driver : float;
  staff_driver : float;
  monitoring_driver : float;
  power_driver : float;
  workload_under_10 : float;
  vendor_under_3_per_year : float;
}

let aggregates =
  {
    n = List.length respondents;
    decade_plus = pct (fun r -> r.decade_plus_experience);
    engineers = pct (fun r -> r.role = Network_engineer);
    setup_within_month = pct (fun r -> r.setup = Within_one_month);
    setup_within_six_months = pct (fun r -> r.setup = Up_to_six_months);
    deployed_without_vendor = pct (fun r -> not r.vendor_support_needed);
    hardware_under_20k = pct (fun r -> r.hardware_usd < 20000);
    no_licensing = pct (fun r -> r.licensing_usd = 0);
    no_hiring = pct (fun r -> not r.extra_hiring);
    opex_comparable_or_lower = pct (fun r -> r.opex <> Slightly_higher);
    maintenance_driver = pct (fun r -> List.mem "hardware maintenance" r.cost_drivers);
    staff_driver = pct (fun r -> List.mem "staff workload" r.cost_drivers);
    monitoring_driver = pct (fun r -> List.mem "monitoring and troubleshooting" r.cost_drivers);
    power_driver = pct (fun r -> List.mem "power consumption" r.cost_drivers);
    workload_under_10 = pct (fun r -> r.workload_fraction < 0.10);
    vendor_under_3_per_year = pct (fun r -> r.vendor_contacts_per_year < 3);
  }

let print_survey () =
  let a = aggregates in
  Log.out "== Section 5.6: operator survey (n=%d) ==\n" a.n;
  let row label v paper = [ label; Printf.sprintf "%.1f%%" v; paper ] in
  Scion_util.Table.print ~header:[ "question"; "measured"; "paper" ]
    ~rows:
      [
        row "over a decade of experience" a.decade_plus "50%";
        row "hands-on network engineers" a.engineers "50%";
        row "native setup within one month" a.setup_within_month "37.5%";
        row "setup within six months" a.setup_within_six_months "50%";
        row "deployed software without vendor support" a.deployed_without_vendor "62.5%";
        row "hardware spend < 20k USD" a.hardware_under_20k "75%";
        row "no licensing costs (open source + L2)" a.no_licensing "62.5%";
        row "no additional hiring or training" a.no_hiring "75%";
        row "OPEX comparable or lower" a.opex_comparable_or_lower "75%";
        row "cost driver: hardware maintenance" a.maintenance_driver "62.5%";
        row "cost driver: staff workload" a.staff_driver "50%";
        row "cost driver: monitoring/troubleshooting" a.monitoring_driver "25%";
        row "cost driver: power" a.power_driver "12.5%";
        row "SCIERA tasks < 10% of workload" a.workload_under_10 "87.5%";
        row "vendor support < 3x per year" a.vendor_under_3_per_year "62.5%";
      ];
  Log.out "primary delay cause: %s\n\n"
    (let causes = List.map (fun r -> r.delay_cause) respondents in
     let l2 = List.length (List.filter (fun c -> c = "L2 circuit provisioning across multiple networks") causes) in
     Printf.sprintf "L2 circuit provisioning (%d of %d delayed deployments)" l2
       (List.length (List.filter (fun r -> r.setup <> Within_one_month) respondents)))
