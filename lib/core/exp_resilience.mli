(** Section 5.5, Figure 10c — the link-failure simulation: connectivity
    among AS pairs as links are removed, multipath (any surviving route)
    versus a single-path alternative that pins the BGP-like best route of
    the intact topology. *)

type result = {
  fractions_removed : float array;
  multipath_connectivity : float array;
  singlepath_connectivity : float array;
  runs : int;
}

val run : ?runs:int -> ?seed:int64 -> ?telemetry:Obs.t -> unit -> result
(** [?telemetry] records the sweep into the bundle's registry
    ([exp.fig10c.runs], [exp.fig10c.links] and per-mode
    [exp.fig10c.connectivity{mode}] summaries); this experiment drives a
    bare fabric, so the stack-level router/link instrumentation does not
    apply. *)

val connectivity_at : result -> float -> float * float
(** [(multipath, singlepath)] connectivity at a removed-links fraction. *)

val print_fig10c : result -> unit
