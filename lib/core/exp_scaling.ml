module Log = Telemetry.Log
module Ia = Scion_addr.Ia
module Mesh = Scion_controlplane.Mesh
module Rng = Scion_util.Rng
module Net = Netsim.Net
module Engine = Netsim.Engine
module Table = Scion_util.Table

(* The scaling sweep: instantiate synthetic [Topogen] meshes of growing AS
   count next to the 29-AS Figure-1 baseline, and measure how the control
   plane and data plane hold up — delivery, path diversity, stretch,
   simulation work and per-AS control-plane state. Everything here is
   deterministic in the seed; wall-clock is measured (and bounded) by the
   bench driver, never inside the figure. *)

type row = {
  label : string;
  n_target : int;  (** Requested AS count (29 for the baseline). *)
  ases : int;
  links : int;
  cores : int;
  depth : int;  (** Deepest leaf (0 for the hand-built baseline's shape). *)
  pairs : int;  (** Sampled (src, dst) pairs. *)
  reachable_pct : float;  (** Pairs with at least one control-plane path. *)
  delivered_pct : float;  (** Packet-level echoes delivered over the best path. *)
  mean_paths : float;  (** Mean path count over reachable pairs. *)
  mean_stretch : float;  (** Best-path latency over fabric shortest path. *)
  events : int;  (** Engine events processed by the packet sweep. *)
  peak_state_bytes : int;  (** Largest modelled per-AS control-plane state. *)
  beacon_sends : int;  (** Beacon extensions propagated (signatures paid). *)
  fanout_capped : int;  (** Propagation sends dropped by the fan-out cap. *)
  memo_hits : int;
  memo_misses : int;
}

type result = { rows : row list; sizes : int list; pairs_per_size : int }

(* Beaconing profile shared by every row so the sizes are comparable:
   small stores and a per-round fan-out budget keep the signature count —
   the dominant cost at N=1000 — linear in N. *)
let per_origin = 2
let propagate_k = 2
let fanout_cap = 40

let measure ~label ~n_target ~depth ~pairs ~rng net =
  let mesh = Network.mesh net in
  let order = Array.of_list (Mesh.ases mesh) in
  let n = Array.length order in
  let fabric = Network.scion_fabric net in
  let node_of ia =
    match Net.node_of_name fabric (Ia.to_string ia) with
    | Some node -> node
    | None -> invalid_arg (Printf.sprintf "Exp_scaling: %s not in fabric" (Ia.to_string ia))
  in
  let engine = Engine.create () in
  let reachable = ref 0 in
  let delivered = ref 0 in
  let path_counts = ref 0 in
  let stretches = ref [] in
  for _ = 1 to pairs do
    let i = Rng.int rng n in
    let j = (i + 1 + Rng.int rng (n - 1)) mod n in
    let src = order.(i) and dst = order.(j) in
    let ps = Network.paths net ~src ~dst in
    match ps with
    | [] -> ()
    | first :: rest ->
        incr reachable;
        path_counts := !path_counts + List.length ps;
        let best =
          List.fold_left
            (fun b p ->
              if Network.scion_rtt_base net p < Network.scion_rtt_base net b then p else b)
            first rest
        in
        let links = Network.path_links net best in
        (match Net.dijkstra fabric ~src:(node_of src) ~dst:(node_of dst) with
        | Some (shortest, _) when shortest > 0.0 ->
            let one_way = Net.path_base_latency fabric links in
            stretches := Float.max 1.0 (one_way /. shortest) :: !stretches
        | Some _ | None -> ());
        (* One packet-level echo over the best path: serialisation,
           propagation, jitter and loss all on the engine. *)
        let rec hop at = function
          | [] -> incr delivered
          | l :: tail ->
              let a, b = Net.endpoints fabric l in
              let next = if a = at then b else a in
              Net.transmit fabric engine l ~from:at ~size_bytes:1200 ~on_arrival:(fun () ->
                  hop next tail)
        in
        hop (node_of src) links
  done;
  Engine.run engine;
  let peak_state =
    Array.fold_left (fun acc ia -> max acc (Mesh.state_bytes mesh ia)) 0 order
  in
  let cores = Array.fold_left (fun acc ia -> if Mesh.is_core mesh ia then acc + 1 else acc) 0 order in
  let memo_hits, memo_misses = Mesh.memo_stats mesh in
  let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den in
  {
    label;
    n_target;
    ases = n;
    links = List.length (Mesh.links mesh);
    cores;
    depth;
    pairs;
    reachable_pct = pct !reachable pairs;
    delivered_pct = pct !delivered pairs;
    mean_paths =
      (if !reachable = 0 then 0.0 else float_of_int !path_counts /. float_of_int !reachable);
    mean_stretch =
      (match !stretches with
      | [] -> 0.0
      | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    events = Engine.events_processed engine;
    peak_state_bytes = peak_state;
    beacon_sends = Mesh.beacon_fanout mesh;
    fanout_capped = Mesh.fanout_capped mesh;
    memo_hits;
    memo_misses;
  }

let run ?(seed = 0x5CA1_AB1EL) ?(sizes = [ 100; 300; 1000 ]) ?(pairs = 120) () =
  (* scion-lint: rng-stream scaling.pairs -- pair sampling is private to this experiment *)
  let rng = Rng.of_label seed "scaling.pairs" in
  let baseline =
    let net =
      Network.create ~seed ~per_origin ~propagate_k ~fanout_cap ~verify_pcbs:false ()
    in
    measure ~label:"sciera-29" ~n_target:29 ~depth:1 ~pairs ~rng net
  in
  let scaled =
    List.map
      (fun n_ases ->
        let gen = Topogen.generate ~seed (Topogen.default ~n_ases) in
        let topology = Topology.of_topogen gen in
        let net =
          Network.create ~seed ~topology ~per_origin ~propagate_k ~fanout_cap
            ~rounds:(Topogen.max_depth gen + 2)
            ~verify_pcbs:false ()
        in
        measure
          ~label:(Printf.sprintf "topogen-%d" n_ases)
          ~n_target:n_ases ~depth:(Topogen.max_depth gen) ~pairs ~rng net)
      sizes
  in
  { rows = baseline :: scaled; sizes; pairs_per_size = pairs }

let print_scaling r =
  Table.print
    ~header:
      [
        "topology"; "ASes"; "links"; "cores"; "depth"; "reach%"; "deliv%"; "paths"; "stretch";
        "events"; "peakB/AS"; "sends"; "capped"; "memo h/m";
      ]
    ~rows:
      (List.map
         (fun w ->
           [
             w.label;
             string_of_int w.ases;
             string_of_int w.links;
             string_of_int w.cores;
             string_of_int w.depth;
             Table.fmt_float w.reachable_pct;
             Table.fmt_float w.delivered_pct;
             Table.fmt_float w.mean_paths;
             Table.fmt_float w.mean_stretch;
             string_of_int w.events;
             string_of_int w.peak_state_bytes;
             string_of_int w.beacon_sends;
             string_of_int w.fanout_capped;
             Printf.sprintf "%d/%d" w.memo_hits w.memo_misses;
           ])
         r.rows);
  Log.out "%d sampled pairs per topology; beaconing profile per_origin=%d k=%d fanout_cap=%d\n"
    r.pairs_per_size per_origin propagate_k fanout_cap
