module Log = Telemetry.Log
(* Figure 10c: impact of link failures on AS connectivity — multipath vs a
   single-path (BGP-like) alternative. 100 runs; each removes links one by
   one in random order and tracks the fraction of AS pairs still connected. *)

module Ia = Scion_addr.Ia
module Net = Netsim.Net
module Rng = Scion_util.Rng

type result = {
  fractions_removed : float array;  (** X axis: fraction of links removed. *)
  multipath_connectivity : float array;  (** Mean over runs. *)
  singlepath_connectivity : float array;
  runs : int;
}

(* Total lookup of an AS's graph node: every IA comes from Topology.ases,
   which also populated the table, so a miss is a topology bug. *)
let node_of nodes ia =
  match Hashtbl.find_opt nodes ia with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Exp_resilience: unknown AS %s" (Ia.to_string ia))

(* A fresh fabric graph from the topology (all links up, no incidents). *)
let build_fabric rng =
  let net = Net.create ~rng in
  let nodes = Hashtbl.create 64 in
  List.iter
    (fun (a : Topology.as_info) ->
      Hashtbl.replace nodes a.Topology.ia (Net.add_node net (Ia.to_string a.Topology.ia)))
    Topology.ases;
  List.iter
    (fun (l : Topology.link_info) ->
      ignore
        (Net.add_link net
           (node_of nodes l.Topology.a)
           (node_of nodes l.Topology.b)
           { Net.default_params with Net.latency_ms = l.Topology.latency_ms }))
    Topology.links;
  (net, nodes)

let run ?(runs = 100) ?(seed = 0xF1C5EEDL) ?telemetry () =
  let rng = Rng.create seed in
  let probe = build_fabric (Rng.split rng) in
  let net0, nodes0 = probe in
  let ias = List.map (fun (a : Topology.as_info) -> a.Topology.ia) Topology.ases in
  let pairs =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if Ia.compare a b < 0 then Some (a, b) else None) ias)
      ias
  in
  let nlinks = Net.num_links net0 in
  let steps = nlinks + 1 in
  let multi = Array.make steps 0.0 and single = Array.make steps 0.0 in
  (* The single-path baseline pins, per pair, the one route BGP would have
     chosen on the intact topology; the pair stays connected only while
     every link of that fixed route survives. *)
  let baseline_routes =
    List.map
      (fun (a, b) ->
        match
          Net.min_hop_route net0 ~src:(node_of nodes0 a) ~dst:(node_of nodes0 b)
        with
        | Some r -> r
        | None -> [])
      pairs
  in
  let npairs = float_of_int (List.length pairs) in
  for _run = 1 to runs do
    let order = Array.init nlinks Fun.id in
    Rng.shuffle rng order;
    (* Restore all links. *)
    for l = 0 to nlinks - 1 do
      Net.set_link_up net0 l true
    done;
    let removed = Hashtbl.create 64 in
    for step = 0 to nlinks do
      if step > 0 then begin
        let victim = order.(step - 1) in
        Net.set_link_up net0 victim false;
        Hashtbl.replace removed victim ()
      end;
      let connected_multi =
        List.fold_left
          (fun acc (a, b) ->
            if
              Net.connected net0 ~src:(node_of nodes0 a) ~dst:(node_of nodes0 b)
            then acc + 1
            else acc)
          0 pairs
      in
      let connected_single =
        List.fold_left
          (fun acc route ->
            if route <> [] && List.for_all (fun l -> not (Hashtbl.mem removed l)) route then acc + 1
            else acc)
          0 baseline_routes
      in
      multi.(step) <- multi.(step) +. (float_of_int connected_multi /. npairs);
      single.(step) <- single.(step) +. (float_of_int connected_single /. npairs)
    done
  done;
  let runs_f = float_of_int runs in
  let result =
    {
      fractions_removed = Array.init steps (fun i -> float_of_int i /. float_of_int nlinks);
      multipath_connectivity = Array.map (fun v -> v /. runs_f) multi;
      singlepath_connectivity = Array.map (fun v -> v /. runs_f) single;
      runs;
    }
  in
  (* This experiment owns its fabric rather than a full Network, so the
     stack-level instrumentation never sees it; publish the sweep itself. *)
  (match telemetry with
  | None -> ()
  | Some obs ->
      let module M = Telemetry.Metrics in
      let reg = Obs.registry obs in
      M.add (M.counter reg "exp.fig10c.runs") runs;
      M.add (M.counter reg "exp.fig10c.links") nlinks;
      let m_conn = M.summary reg ~labels:[ ("mode", "multipath") ] "exp.fig10c.connectivity" in
      let s_conn = M.summary reg ~labels:[ ("mode", "singlepath") ] "exp.fig10c.connectivity" in
      Array.iter (M.record m_conn) result.multipath_connectivity;
      Array.iter (M.record s_conn) result.singlepath_connectivity);
  result


let connectivity_at r fraction =
  (* Interpolate at a given removed-links fraction. *)
  let n = Array.length r.fractions_removed in
  let rec find i = if i >= n - 1 || r.fractions_removed.(i) >= fraction then i else find (i + 1) in
  let i = find 0 in
  (r.multipath_connectivity.(i), r.singlepath_connectivity.(i))

let print_fig10c r =
  Log.out "== Figure 10c: impact of link failures on AS connectivity (%d runs) ==\n" r.runs;
  let n = Array.length r.fractions_removed in
  let rows =
    List.filter_map
      (fun i ->
        if i mod (max 1 (n / 12)) = 0 || i = n - 1 then
          Some
            [
              Scion_util.Table.fmt_pct r.fractions_removed.(i);
              Scion_util.Table.fmt_pct r.multipath_connectivity.(i);
              Scion_util.Table.fmt_pct r.singlepath_connectivity.(i);
            ]
        else None)
      (List.init n Fun.id)
  in
  Scion_util.Table.print ~header:[ "links removed"; "multipath"; "single path" ] ~rows;
  let m20, s20 = connectivity_at r 0.2 in
  Log.out
    "at 20%% links removed: multipath %s vs single path %s connected (paper: ~90%% vs ~50%%)\n\n"
    (Scion_util.Table.fmt_pct m20) (Scion_util.Table.fmt_pct s20)
