module Ia = Scion_addr.Ia

module Filter = struct
  type bucket = {
    rate : float;
    key : Scion_crypto.Cmac.key;  (** Expanded once; checks run at line rate. *)
    mutable tokens : float;
    mutable last : float;
    mutable window : int;  (** Dedup window index currently covered by [seen]. *)
    seen : (string, unit) Hashtbl.t;  (** Tags MAC-verified in the current window. *)
  }

  type t = {
    local_secret : string;
    window_s : float;
    allowed : (Ia.t, bucket) Hashtbl.t;
    mutable accepted_count : int;
    mutable rejected_count : int;
  }

  type verdict = Accepted | Bad_mac | Rate_limited | Unknown_source | Duplicate

  (* DRKey-style: both ends derive the key from the DMZ's secret and the
     peer AS identity; no per-flow state at the filter. *)
  let derive_key secret peer =
    Scion_crypto.Hmac.kdf ~secret ~info:("drkey|" ^ Ia.to_string peer) 16

  let create ?(dedup_window_s = 1.0) ~local_secret ~allowed () =
    let table = Hashtbl.create 16 in
    List.iter
      (fun (ia, rate) ->
        let key = Scion_crypto.Cmac.of_string (derive_key local_secret ia) in
        Hashtbl.replace table ia
          { rate; key; tokens = rate; last = 0.0; window = min_int; seen = Hashtbl.create 64 })
      allowed;
    {
      local_secret;
      window_s = dedup_window_s;
      allowed = table;
      accepted_count = 0;
      rejected_count = 0;
    }

  let host_key t ~peer = derive_key t.local_secret peer

  let authenticate ~key ~payload =
    Scion_crypto.Cmac.mac_truncated (Scion_crypto.Cmac.of_string key) payload 16

  (* scion-lint: hotpath -- per-packet LightningFilter admission check *)
  let check t ~now ~src ~payload ~tag =
    match Hashtbl.find_opt t.allowed src with
    | None ->
        t.rejected_count <- t.rejected_count + 1;
        Unknown_source
    | Some bucket ->
        (* scion-lint: allow hotpath-allocation -- dedup window index is float math by design *)
        let window = int_of_float (now /. t.window_s) in
        if window <> bucket.window then begin
          bucket.window <- window;
          Hashtbl.reset bucket.seen
        end;
        if Hashtbl.mem bucket.seen tag then begin
          (* Replayed tag within the dedup window: drop at hashtable-lookup
             cost, without re-hashing the payload. A forged payload riding
             a replayed tag would fail the MAC anyway, so suppressing
             before the hash never admits traffic the per-packet check
             would have admitted. *)
          t.rejected_count <- t.rejected_count + 1;
          Duplicate
        end
        else if not (Scion_crypto.Cmac.verify bucket.key ~msg:payload ~tag) then begin
          t.rejected_count <- t.rejected_count + 1;
          Bad_mac
        end
        else begin
          Hashtbl.replace bucket.seen tag ();
          (* Token bucket with a one-second burst. *)
          (* scion-lint: allow hotpath-allocation -- token bucket is float math by design *)
          let elapsed = Float.max 0.0 (now -. bucket.last) in
          bucket.last <- now;
          (* scion-lint: allow hotpath-allocation -- token bucket is float math by design *)
          bucket.tokens <- Float.min bucket.rate (bucket.tokens +. (elapsed *. bucket.rate));
          if bucket.tokens >= 1.0 then begin
            (* scion-lint: allow hotpath-allocation -- token bucket is float math by design *)
            bucket.tokens <- bucket.tokens -. 1.0;
            t.accepted_count <- t.accepted_count + 1;
            Accepted
          end
          else begin
            t.rejected_count <- t.rejected_count + 1;
            Rate_limited
          end
        end

  let check_batch t ~now items =
    List.map (fun (src, payload, tag) -> check t ~now ~src ~payload ~tag) items

  let accepted t = t.accepted_count
  let rejected t = t.rejected_count
end

module Hercules = struct
  type path_capacity = { rtt_ms : float; bandwidth_mbps : float }

  type plan = {
    total_mbps : float;
    completion_s : float;
    per_path_share : float list;
  }

  (* Ramp: ~8 RTTs of slow start before a path reaches its bottleneck
     bandwidth; negligible for bulk transfers but it keeps short transfers
     honest about multipath overhead. *)
  let ramp_s p = 8.0 *. p.rtt_ms /. 1000.0

  let single_path_completion ~size_gb p =
    let bits = size_gb *. 8e9 in
    ramp_s p +. (bits /. (p.bandwidth_mbps *. 1e6))

  let plan_transfer ~size_gb ~paths =
    if paths = [] then invalid_arg "Hercules.plan_transfer: no paths";
    let total = List.fold_left (fun a p -> a +. p.bandwidth_mbps) 0.0 paths in
    let shares = List.map (fun p -> p.bandwidth_mbps /. total) paths in
    let bits = size_gb *. 8e9 in
    (* Each path carries its share; completion is the slowest stripe. *)
    let completion =
      List.fold_left2
        (fun worst p share ->
          let t = ramp_s p +. (bits *. share /. (p.bandwidth_mbps *. 1e6)) in
          Float.max worst t)
        0.0 paths shares
    in
    { total_mbps = total; completion_s = completion; per_path_share = shares }
end
