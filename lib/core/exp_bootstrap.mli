(** Section 5.1, Figure 4 — end-host bootstrapping performance across
    Windows/Linux/macOS and all hinting mechanisms, plus Table 2
    (Appendix A), the mechanism-availability matrix. *)

type os_summary = {
  os : Scion_endhost.Bootstrap.os;
  hint : Scion_util.Stats.boxplot;
  config : Scion_util.Stats.boxplot;
  total : Scion_util.Stats.boxplot;
}

type result = {
  per_os : os_summary list;
  runs_per_mechanism : int;
  all_medians_under_ms : float;
}

val run : ?runs:int -> ?seed:int64 -> ?telemetry:Obs.t -> unit -> result
(** [?telemetry] records every timing sample into
    [exp.fig4.latency_ms{os,stage}] summaries — this experiment runs no
    network, so the distribution is the figure's metrics evidence. *)

val print_fig4 : result -> unit
val print_table2 : unit -> unit
