(** Section 3.3 — SCIERA ISD evolution: what regionally scoped ISDs
    (SCIERA-EU, SCIERA-NA, ...) would buy.

    The paper argues that splitting the single ISD 71 into regional ISDs
    would "enhance fault isolation by containing failures within specific
    geographic regions" and distribute governance (each region runs its own
    TRC and CA). This experiment quantifies the claim on the modelled
    deployment: certificate issuance is the ISD-wide single point of
    failure (AS certificates live only a few days, Section 4.5), so a CA /
    TRC incident eventually takes down every AS of its ISD. We compare the
    blast radius of such an incident under the current single-ISD
    governance against the proposed regional split. *)

type governance = Current_single_isd | Regional_isds

val governance_to_string : governance -> string

val domain_of : governance -> Scion_addr.Ia.t -> string
(** The governance (CA) domain an AS belongs to. *)

type scenario = {
  failed_domain : string;
  dead_ases : int;  (** ASes whose certificates cannot renew. *)
  pairs_lost : float;  (** Fraction of AS pairs losing all connectivity. *)
}

type result = {
  single : scenario list;
  regional : scenario list;
  single_avg_blast : float;  (** Mean pairs_lost over CA scenarios. *)
  regional_avg_blast : float;
  regional_domains : (string * int) list;  (** (domain, ASes governed). *)
}

val run : ?seed:int64 -> ?telemetry:Obs.t -> unit -> result
(** [?telemetry] instruments the underlying network and additionally
    publishes one [exp.isd.pairs_lost{domain,governance}] gauge per
    scenario. *)

val print_report : result -> unit
