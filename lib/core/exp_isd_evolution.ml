module Log = Telemetry.Log
module Ia = Scion_addr.Ia
module Combinator = Scion_controlplane.Combinator

type governance = Current_single_isd | Regional_isds

let governance_to_string = function
  | Current_single_isd -> "single ISD 71"
  | Regional_isds -> "regional ISDs"

(* The regional split of Section 3.3: each continent's academic networks
   govern their own TRC and CA. ISD 64 (the Swiss ISD) already exists and
   stays as is in both models. *)
let domain_of gov ia =
  match Topology.find ia with
  | exception Not_found -> "unknown"
  | info -> (
      if ia.Ia.isd = 64 then "ISD 64 (Swiss)"
      else begin
        match gov with
        | Current_single_isd -> "ISD 71 (SCIERA)"
        | Regional_isds -> (
            match info.Topology.region with
            | Topology.Europe -> "SCIERA-EU"
            | Topology.North_america -> "SCIERA-NA"
            | Topology.Asia -> "SCIERA-ASIA"
            | Topology.South_america -> "SCIERA-SA"
            (* WACREN peers in London, KAUST at the SG/AMS PoPs; until their
               regions grow their own cores they would join the nearest
               regional ISD, as the paper's onboarding story suggests. *)
            | Topology.Africa -> "SCIERA-EU"
            | Topology.Middle_east -> "SCIERA-ASIA")
      end)

type scenario = { failed_domain : string; dead_ases : int; pairs_lost : float }

type result = {
  single : scenario list;
  regional : scenario list;
  single_avg_blast : float;
  regional_avg_blast : float;
  regional_domains : (string * int) list;
}

let run ?seed ?telemetry () =
  let net = Network.create ?seed ~per_origin:6 ~verify_pcbs:false ?telemetry () in
  let all = List.map (fun (a : Topology.as_info) -> a.Topology.ia) Topology.ases in
  let pairs =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if Ia.compare a b < 0 then Some (a, b) else None) all)
      all
  in
  (* A pair survives a dead-AS set if some path avoids every dead AS. *)
  let pair_survives dead (a, b) =
    (not (List.exists (Ia.equal a) dead))
    && (not (List.exists (Ia.equal b) dead))
    && List.exists
         (fun p -> not (List.exists (fun d -> Combinator.contains_ia p d) dead))
         (Network.paths net ~src:a ~dst:b)
  in
  let scenarios gov =
    let domains = List.sort_uniq compare (List.map (domain_of gov) all) in
    List.map
      (fun dom ->
        (* The domain's CA stops issuing: every AS it governs loses its
           short-lived certificate and falls out of the control plane. *)
        let dead = List.filter (fun ia -> domain_of gov ia = dom) all in
        let lost =
          List.length (List.filter (fun pr -> not (pair_survives dead pr)) pairs)
        in
        {
          failed_domain = dom;
          dead_ases = List.length dead;
          pairs_lost = float_of_int lost /. float_of_int (List.length pairs);
        })
      domains
  in
  let single = scenarios Current_single_isd in
  let regional = scenarios Regional_isds in
  let avg l = List.fold_left (fun a s -> a +. s.pairs_lost) 0.0 l /. float_of_int (List.length l) in
  let regional_domains =
    List.map (fun s -> (s.failed_domain, s.dead_ases)) regional
  in
  (match telemetry with
  | None -> ()
  | Some obs ->
      let module M = Telemetry.Metrics in
      let reg = Obs.registry obs in
      let publish governance scenarios =
        List.iter
          (fun s ->
            M.set
              (M.gauge reg
                 ~labels:[ ("domain", s.failed_domain); ("governance", governance) ]
                 "exp.isd.pairs_lost")
              s.pairs_lost)
          scenarios
      in
      publish "single" single;
      publish "regional" regional);
  { single; regional; single_avg_blast = avg single; regional_avg_blast = avg regional; regional_domains }

let print_report r =
  Log.out "== Section 3.3: ISD evolution — fault isolation of regional ISDs ==\n";
  let rows l =
    List.map
      (fun s ->
        [ s.failed_domain; string_of_int s.dead_ases; Scion_util.Table.fmt_pct s.pairs_lost ])
      l
  in
  Log.out "CA/TRC incident blast radius, current governance:\n";
  Scion_util.Table.print ~header:[ "failed domain"; "ASes down"; "pairs lost" ] ~rows:(rows r.single);
  Log.out "\nCA/TRC incident blast radius, regional ISDs (SCIERA-EU/NA/ASIA/SA):\n";
  Scion_util.Table.print ~header:[ "failed domain"; "ASes down"; "pairs lost" ]
    ~rows:(rows r.regional);
  Log.out
    "\nmean blast radius: %s (single ISD) -> %s (regional) — the containment the paper expects from regionally scoped ISDs\n\n"
    (Scion_util.Table.fmt_pct r.single_avg_blast)
    (Scion_util.Table.fmt_pct r.regional_avg_blast)
