module Rw = Scion_util.Rw
module Schnorr = Scion_crypto.Schnorr

type root = { name : string; key : Schnorr.public_key }

type t = {
  isd : int;
  base_number : int;
  serial : int;
  not_before : float;
  not_after : float;
  core_ases : Scion_addr.Ia.t list;
  ca_ases : Scion_addr.Ia.t list;
  roots : root list;
  quorum : int;
  signatures : (string * string) list;
}

let signed_bytes t =
  let w = Rw.Writer.create () in
  Rw.Writer.raw w "TRC1";
  Rw.Writer.u16 w t.isd;
  Rw.Writer.u16 w t.base_number;
  Rw.Writer.u16 w t.serial;
  Rw.Writer.u64 w (Int64.of_float t.not_before);
  Rw.Writer.u64 w (Int64.of_float t.not_after);
  let ias l =
    Rw.Writer.u16 w (List.length l);
    List.iter (Scion_addr.Ia.encode w) l
  in
  ias t.core_ases;
  ias t.ca_ases;
  Rw.Writer.u16 w (List.length t.roots);
  List.iter
    (fun r ->
      Rw.Writer.u16 w (String.length r.name);
      Rw.Writer.raw w r.name;
      Rw.Writer.raw w (Schnorr.public_to_string r.key))
    t.roots;
  Rw.Writer.u16 w t.quorum;
  Rw.Writer.contents w

let sign_base ~isd ~validity:(not_before, not_after) ~core_ases ~ca_ases ~quorum ~roots =
  let root_entries = List.map (fun (name, _, key) -> { name; key }) roots in
  let unsigned =
    {
      isd;
      base_number = 1;
      serial = 1;
      not_before;
      not_after;
      core_ases;
      ca_ases;
      roots = root_entries;
      quorum;
      signatures = [];
    }
  in
  let bytes = signed_bytes unsigned in
  { unsigned with signatures = List.map (fun (name, priv, _) -> (name, Schnorr.sign priv bytes)) roots }

let find_root t name = List.find_opt (fun r -> r.name = name) t.roots

let update ~prev ?rotate_roots ?core_ases ?ca_ases ~validity:(not_before, not_after) ~votes () =
  let next =
    {
      prev with
      serial = prev.serial + 1;
      not_before;
      not_after;
      roots = (match rotate_roots with Some r -> r | None -> prev.roots);
      core_ases = (match core_ases with Some c -> c | None -> prev.core_ases);
      ca_ases = (match ca_ases with Some c -> c | None -> prev.ca_ases);
      signatures = [];
    }
  in
  match List.filter (fun (name, _) -> find_root prev name = None) votes with
  | (name, _) :: _ -> Error (Printf.sprintf "voter %S is not a root of the previous TRC" name)
  | [] ->
  if List.length votes < prev.quorum then
    Error (Printf.sprintf "insufficient votes: %d < quorum %d" (List.length votes) prev.quorum)
  else begin
    let bytes = signed_bytes next in
    Ok { next with signatures = List.map (fun (name, priv) -> (name, Schnorr.sign priv bytes)) votes }
  end

let verify_base t =
  t.serial = 1
  && t.signatures <> []
  && List.for_all
       (fun r ->
         match List.assoc_opt r.name t.signatures with
         | None -> false
         | Some signature -> Schnorr.verify r.key ~msg:(signed_bytes { t with signatures = [] }) ~signature)
       t.roots

let verify_update ~prev next =
  if next.isd <> prev.isd then Error "ISD mismatch"
  else if next.serial <> prev.serial + 1 then
    Error (Printf.sprintf "serial discontinuity: %d after %d" next.serial prev.serial)
  else if next.base_number <> prev.base_number then Error "base number changed without re-establishment"
  else begin
    let bytes = signed_bytes { next with signatures = [] } in
    let valid_votes =
      List.filter
        (fun (name, signature) ->
          match find_root prev name with
          | None -> false
          | Some r -> Schnorr.verify r.key ~msg:bytes ~signature)
        next.signatures
    in
    if List.length valid_votes >= prev.quorum then Ok ()
    else Error (Printf.sprintf "only %d valid votes, quorum is %d" (List.length valid_votes) prev.quorum)
  end

let verify_chain ~base updates =
  if not (verify_base base) then Error "invalid base TRC"
  else begin
    let rec go prev = function
      | [] -> Ok prev
      | next :: rest -> (
          match verify_update ~prev next with Ok () -> go next rest | Error e -> Error e)
    in
    go base updates
  end

let in_validity t now = now >= t.not_before && now <= t.not_after
