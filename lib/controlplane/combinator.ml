module Path = Scion_dataplane.Path
module Ia = Scion_addr.Ia
module Hop_pred = Scion_addr.Hop_pred
module M = Telemetry.Metrics

type fullpath = {
  src : Ia.t;
  dst : Ia.t;
  segments : (Path.info * Path.hop list) list;
  interfaces : Hop_pred.hop list;
  expiry : float;
  mtu : int;
  fingerprint : string;
}

let fresh_raw t =
  Path.create (List.map (fun (info, hops) -> (info, hops)) t.segments)

let num_hops t = List.length t.interfaces
let contains_ia t ia = List.exists (fun h -> Ia.equal h.Hop_pred.ia ia) t.interfaces

let interface_ids t =
  List.concat_map
    (fun h ->
      let ing = if h.Hop_pred.ingress <> 0 then [ (h.Hop_pred.ia, h.Hop_pred.ingress) ] else [] in
      let egr = if h.Hop_pred.egress <> 0 then [ (h.Hop_pred.ia, h.Hop_pred.egress) ] else [] in
      ing @ egr)
    t.interfaces

let disjointness a b =
  let module S = Set.Make (struct
    type t = Ia.t * int

    let compare (ia1, if1) (ia2, if2) =
      let c = Ia.compare ia1 ia2 in
      if c <> 0 then c else Stdlib.compare if1 if2
  end) in
  let sa = S.of_list (interface_ids a) and sb = S.of_list (interface_ids b) in
  let total = S.cardinal sa + S.cardinal sb in
  if total = 0 then 1.0
  else begin
    let shared = S.cardinal (S.inter sa sb) in
    float_of_int (total - (2 * shared)) /. float_of_int total
  end

(* --- Pieces: slices of a segment prepared for one traversal direction --- *)

type piece = {
  info : Path.info;
  hops : Path.hop list;  (** Traversal order. *)
  trace : Hop_pred.hop list;  (** Traversal order, one per hop. *)
  piece_expiry : float;
  piece_mtu : int;
  peer_join : bool;  (** Ends (up) / starts (down) on a peering link. *)
}

let entry_array (pcb : Pcb.t) = Array.of_list pcb.Pcb.entries

(* Up piece: constructed core->leaf, traversed leaf->core(or cut), C=0.
   [from_idx] is the construction index where traversal stops. When [peer]
   is given, the final hop uses the peer entry's hop field (exit over the
   peering link) and the info field carries the P flag. *)
let up_piece (pcb : Pcb.t) ~from_idx ?peer () =
  let entries = entry_array pcb in
  let n = Array.length entries in
  assert (from_idx >= 0 && from_idx < n);
  let is_peer = peer <> None in
  let hop_of i =
    if i = from_idx then
      match peer with Some (pe : Pcb.peer_entry) -> pe.Pcb.peer_hop | None -> entries.(i).Pcb.hop
    else entries.(i).Pcb.hop
  in
  let info =
    {
      Path.cons_dir = false;
      peer = is_peer;
      seg_id = Pcb.beta_at pcb n;
      timestamp = pcb.Pcb.timestamp;
    }
  in
  let idxs = List.init (n - from_idx) (fun k -> n - 1 - k) in
  let hops = List.map hop_of idxs in
  let trace =
    List.map
      (fun i ->
        let e = entries.(i) in
        let h = hop_of i in
        (* Traversal direction flips roles: ingress = cons_egress. *)
        { Hop_pred.ia = e.Pcb.ia; ingress = h.Path.cons_egress; egress = h.Path.cons_ingress })
      idxs
  in
  let mtu = List.fold_left (fun acc i -> min acc entries.(i).Pcb.mtu) max_int idxs in
  let expiry =
    List.fold_left (fun acc h -> Float.min acc (Path.hop_expiry info h)) Float.max_float hops
  in
  { info; hops; trace; piece_expiry = expiry; piece_mtu = mtu; peer_join = is_peer }

(* Down piece: traversed in construction direction from [from_idx], C=1. *)
let down_piece (pcb : Pcb.t) ~from_idx ?peer () =
  let entries = entry_array pcb in
  let n = Array.length entries in
  assert (from_idx >= 0 && from_idx < n);
  let is_peer = peer <> None in
  let hop_of i =
    if i = from_idx then
      match peer with Some (pe : Pcb.peer_entry) -> pe.Pcb.peer_hop | None -> entries.(i).Pcb.hop
    else entries.(i).Pcb.hop
  in
  let seg_id = if is_peer then Pcb.beta_at pcb (from_idx + 1) else Pcb.beta_at pcb from_idx in
  let info = { Path.cons_dir = true; peer = is_peer; seg_id; timestamp = pcb.Pcb.timestamp } in
  let idxs = List.init (n - from_idx) (fun k -> from_idx + k) in
  let hops = List.map hop_of idxs in
  let trace =
    List.map
      (fun i ->
        let e = entries.(i) in
        let h = hop_of i in
        { Hop_pred.ia = e.Pcb.ia; ingress = h.Path.cons_ingress; egress = h.Path.cons_egress })
      idxs
  in
  let mtu = List.fold_left (fun acc i -> min acc entries.(i).Pcb.mtu) max_int idxs in
  let expiry =
    List.fold_left (fun acc h -> Float.min acc (Path.hop_expiry info h)) Float.max_float hops
  in
  { info; hops; trace; piece_expiry = expiry; piece_mtu = mtu; peer_join = is_peer }

(* Core segments are received like up segments and traversed in reverse. *)
let core_piece pcb = up_piece pcb ~from_idx:0 ()

(* --- Assembly --- *)

let trace_fingerprint trace =
  let w = Scion_util.Rw.Writer.create () in
  List.iter
    (fun h ->
      Ia.encode w h.Hop_pred.ia;
      Scion_util.Rw.Writer.u16 w h.Hop_pred.ingress;
      Scion_util.Rw.Writer.u16 w h.Hop_pred.egress)
    trace;
  Scion_crypto.Sha256.digest (Scion_util.Rw.Writer.contents w)

(* Merge traces across pieces: at a non-peering segment change the joint AS
   appears as the last hop of one piece and the first of the next — collapse
   into one trace hop. Peering joins keep both hops (two distinct ASes). *)
let merge_traces pieces =
  let rec go acc = function
    | [] -> List.rev acc
    | [ p ] -> List.rev_append acc p.trace
    | p :: q :: tail ->
        if p.peer_join || q.peer_join then go (List.rev_append p.trace acc) (q :: tail)
        else begin
          match (List.rev p.trace, q.trace) with
          | last :: prefix_rev, first :: q_tail ->
              assert (Ia.equal last.Hop_pred.ia first.Hop_pred.ia);
              let merged = { last with Hop_pred.egress = first.Hop_pred.egress } in
              (* The joint AS keeps p's ingress and q's egress; drop the
                 duplicate first hop of q. *)
              let q' = { q with trace = merged :: q_tail } in
              go (List.rev_append (List.rev prefix_rev) acc) (q' :: tail)
          | _ -> go (List.rev_append p.trace acc) (q :: tail)
        end
  in
  go [] pieces

let assemble ~src ~dst pieces =
  let trace = merge_traces pieces in
  (* Loop check: each AS at most once in the merged trace. *)
  let rec loop_free seen = function
    | [] -> true
    | h :: rest ->
        (not (Ia.Set.mem h.Hop_pred.ia seen)) && loop_free (Ia.Set.add h.Hop_pred.ia seen) rest
  in
  if not (loop_free Ia.Set.empty trace) then None
  else begin
    let segments = List.map (fun p -> (p.info, p.hops)) pieces in
    match Path.create segments with
    | exception Path.Malformed _ -> None
    | _probe ->
        Some
          {
            src;
            dst;
            segments;
            interfaces = trace;
            expiry = List.fold_left (fun a p -> Float.min a p.piece_expiry) Float.max_float pieces;
            mtu = List.fold_left (fun a p -> min a p.piece_mtu) max_int pieces;
            fingerprint = trace_fingerprint trace;
          }
  end

let build ~ups ~cores ~downs ~src ~dst ~src_core ~dst_core =
  let candidates = ref [] in
  let add pieces = candidates := pieces :: !candidates in
  let up_full u = up_piece u ~from_idx:0 () in
  let down_full d = down_piece d ~from_idx:0 () in
  (* Core-to-core: a core segment originated at dst, received at src. *)
  if src_core && dst_core then
    List.iter
      (fun c -> if Ia.equal (Pcb.leaf c) src && Ia.equal (Pcb.origin c) dst then add [ core_piece c ])
      cores;
  (* Core source reaching a leaf. *)
  if src_core && not dst_core then begin
    List.iter (fun d -> if Ia.equal (Pcb.origin d) src then add [ down_full d ]) downs;
    List.iter
      (fun c ->
        if Ia.equal (Pcb.leaf c) src then
          List.iter
            (fun d -> if Ia.equal (Pcb.origin d) (Pcb.origin c) then add [ core_piece c; down_full d ])
            downs)
      cores
  end;
  (* Leaf source reaching a core. *)
  if (not src_core) && dst_core then begin
    List.iter (fun u -> if Ia.equal (Pcb.origin u) dst then add [ up_full u ]) ups;
    List.iter
      (fun u ->
        List.iter
          (fun c ->
            if Ia.equal (Pcb.leaf c) (Pcb.origin u) && Ia.equal (Pcb.origin c) dst then
              add [ up_full u; core_piece c ])
          cores)
      ups
  end;
  if (not src_core) && not dst_core then begin
    List.iter
      (fun u ->
        let u_entries = entry_array u in
        (* On-path: dst sits on the up segment. *)
        Array.iteri
          (fun i (e : Pcb.as_entry) ->
            if i > 0 && Ia.equal e.Pcb.ia dst then add [ up_piece u ~from_idx:i () ])
          u_entries;
        List.iter
          (fun d ->
            let d_entries = entry_array d in
            (* Same core AS: plain up + down. *)
            if Ia.equal (Pcb.origin u) (Pcb.origin d) then add [ up_full u; down_full d ];
            (* On-path: src sits on the down segment. *)
            Array.iteri
              (fun j (e : Pcb.as_entry) ->
                if j > 0 && Ia.equal e.Pcb.ia src then add [ down_piece d ~from_idx:j () ])
              d_entries;
            (* Shortcut: common non-core AS below both cores. *)
            Array.iteri
              (fun i (eu : Pcb.as_entry) ->
                if i > 0 then
                  Array.iteri
                    (fun j (ed : Pcb.as_entry) ->
                      if j > 0 && Ia.equal eu.Pcb.ia ed.Pcb.ia then
                        add [ up_piece u ~from_idx:i (); down_piece d ~from_idx:j () ])
                    d_entries)
              u_entries;
            (* Peering: a peer entry on the up segment pointing at an AS of
               the down segment, with the reciprocal entry present. *)
            Array.iteri
              (fun i (eu : Pcb.as_entry) ->
                List.iter
                  (fun (pe : Pcb.peer_entry) ->
                    Array.iteri
                      (fun j (ed : Pcb.as_entry) ->
                        if Ia.equal pe.Pcb.peer_ia ed.Pcb.ia then
                          List.iter
                            (fun (pe' : Pcb.peer_entry) ->
                              if
                                Ia.equal pe'.Pcb.peer_ia eu.Pcb.ia
                                && pe.Pcb.peer_interface = pe'.Pcb.peer_remote_if
                                && pe.Pcb.peer_remote_if = pe'.Pcb.peer_interface
                              then
                                add
                                  [
                                    up_piece u ~from_idx:i ~peer:pe ();
                                    down_piece d ~from_idx:j ~peer:pe' ();
                                  ])
                            ed.Pcb.peers)
                      d_entries)
                  eu.Pcb.peers)
              u_entries)
          downs;
        (* Up + core + down. *)
        List.iter
          (fun c ->
            if Ia.equal (Pcb.leaf c) (Pcb.origin u) then
              List.iter
                (fun d ->
                  if Ia.equal (Pcb.origin d) (Pcb.origin c) then
                    add [ up_full u; core_piece c; down_full d ])
                downs)
          cores)
      ups
  end;
  let assembled = List.filter_map (assemble ~src ~dst) !candidates in
  (* Dedup by fingerprint, keeping the later (identical) instance. *)
  let seen = Hashtbl.create 64 in
  let unique =
    List.filter
      (fun fp ->
        if Hashtbl.mem seen fp.fingerprint then false
        else begin
          Hashtbl.add seen fp.fingerprint ();
          true
        end)
      assembled
  in
  List.sort
    (fun a b ->
      let c = Stdlib.compare (num_hops a) (num_hops b) in
      if c <> 0 then c else Stdlib.compare a.fingerprint b.fingerprint)
    unique

(* --- Memoised lookup --- *)

module Memo = struct
  type entry = { e_gen : int; e_paths : fullpath list }

  type t = {
    tbl : (Ia.t * Ia.t, entry) Hashtbl.t;
    mutable cur_gen : int;
    mutable hits : int;
    mutable misses : int;
    m_hit : M.counter option;
    m_miss : M.counter option;
  }

  let create ?metrics () =
    {
      tbl = Hashtbl.create 256;
      cur_gen = 0;
      hits = 0;
      misses = 0;
      m_hit = Option.map (fun r -> M.counter r "combinator.memo_hit") metrics;
      m_miss = Option.map (fun r -> M.counter r "combinator.memo_miss") metrics;
    }

  (* Generation moves forward only; a change drops every cached entry at
     once (the registry they were built from no longer exists). *)
  let sync t ~generation =
    if generation <> t.cur_gen then begin
      Hashtbl.reset t.tbl;
      t.cur_gen <- generation
    end

  let find t ~generation ~src ~dst =
    sync t ~generation;
    match Hashtbl.find_opt t.tbl (src, dst) with
    | Some e when e.e_gen = generation ->
        t.hits <- t.hits + 1;
        (match t.m_hit with None -> () | Some c -> M.inc c);
        Some e.e_paths
    | _ ->
        t.misses <- t.misses + 1;
        (match t.m_miss with None -> () | Some c -> M.inc c);
        None

  let store t ~generation ~src ~dst paths =
    sync t ~generation;
    Hashtbl.replace t.tbl (src, dst) { e_gen = generation; e_paths = paths }

  let hits t = t.hits
  let misses t = t.misses
  let size t = Hashtbl.length t.tbl
end
