type t = {
  table : (string, bool) Hashtbl.t;
  mutable epoch : string;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create () = { table = Hashtbl.create 1024; epoch = ""; hit_count = 0; miss_count = 0 }
let global = create ()

(* The key epoch is mixed into every cache key, so entries verified under
   a rotated-out trust root can never answer lookups made after the
   rotation — even if a stale reference to the old table survived. *)
let cache_key t pub ~msg ~signature =
  Scion_crypto.Sha256.digest
    (t.epoch ^ "\x00" ^ Scion_crypto.Schnorr.public_to_string pub ^ signature
   ^ Scion_crypto.Sha256.digest msg)

let set_epoch t epoch =
  if not (String.equal t.epoch epoch) then begin
    t.epoch <- epoch;
    (* The old epoch's entries are unreachable; drop them eagerly. *)
    Hashtbl.reset t.table
  end

let epoch t = t.epoch

let verify t pub ~msg ~signature =
  let key = cache_key t pub ~msg ~signature in
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hit_count <- t.hit_count + 1;
      v
  | None ->
      t.miss_count <- t.miss_count + 1;
      let v = Scion_crypto.Schnorr.verify pub ~msg ~signature in
      Hashtbl.replace t.table key v;
      v

(* Cache lookups first, then one batched Schnorr pass over the misses.
   Schnorr.verify_batch is all-or-nothing, so a rejected batch falls back
   to per-signature verification to attribute the failure; either way each
   result lands in the cache, so re-receiving the same PCB is pure hits. *)
let verify_batch t items =
  let keyed =
    List.map
      (fun (pub, msg, signature) -> (cache_key t pub ~msg ~signature, pub, msg, signature))
      items
  in
  let pending = Hashtbl.create 16 in
  List.iter
    (fun (key, pub, msg, signature) ->
      if Hashtbl.mem t.table key || Hashtbl.mem pending key then
        t.hit_count <- t.hit_count + 1
      else begin
        t.miss_count <- t.miss_count + 1;
        Hashtbl.replace pending key (pub, msg, signature)
      end)
    keyed;
  if Hashtbl.length pending > 0 then begin
    let batch =
      Scion_util.Table.fold_sorted (fun _ (p, m, s) acc -> (p, m, s) :: acc) pending []
    in
    if Scion_crypto.Schnorr.verify_batch batch then
      Scion_util.Table.iter_sorted (fun key _ -> Hashtbl.replace t.table key true) pending
    else
      Scion_util.Table.iter_sorted
        (fun key (p, m, s) ->
          Hashtbl.replace t.table key (Scion_crypto.Schnorr.verify p ~msg:m ~signature:s))
        pending
  end;
  List.map
    (fun (key, _, _, _) ->
      match Hashtbl.find_opt t.table key with Some v -> v | None -> false)
    keyed

let hits t = t.hit_count
let misses t = t.miss_count

let clear t =
  Hashtbl.reset t.table;
  t.hit_count <- 0;
  t.miss_count <- 0
