(** Path-segment construction beacons (PCBs) and path segments.

    A PCB is originated by a core AS and extended hop by hop; each AS
    appends a signed entry containing its hop field (MAC-chained as in
    {!Scion_dataplane.Path}) and optional peer entries for its peering
    links. A *terminated* PCB (final entry with egress 0) is a path
    segment: the same object serves as an up segment for the leaf AS and,
    once registered, as a down segment for everyone else. *)

module Path = Scion_dataplane.Path

type peer_entry = {
  peer_ia : Scion_addr.Ia.t;
  peer_interface : int;  (** Local interface of the peering link. *)
  peer_remote_if : int;  (** Interface id at the peer AS. *)
  peer_hop : Path.hop;
      (** Hop field with [cons_ingress] = peering interface; its MAC is
          chained with the beta value *after* this AS's regular hop. *)
}

type as_entry = {
  ia : Scion_addr.Ia.t;
  hop : Path.hop;
  peers : peer_entry list;
  mtu : int;
  note : string;  (** Implementation note, e.g. software stack name. *)
  signature : string;
}

type t = {
  seg_id : int;  (** beta_0 of the MAC chain. *)
  timestamp : int32;
  entries : as_entry list;  (** Construction order: origin core AS first. *)
}

(* scion-lint: rng-stream beacon -- origination draws only the seg_id; the mesh threads its beacon stream *)
val originate :
  rng:Scion_util.Rng.t -> now:float -> t
(** Fresh PCB with a random [seg_id] and no entries. *)

val origin : t -> Scion_addr.Ia.t
(** Raises [Invalid_argument] on an empty PCB. *)

val leaf : t -> Scion_addr.Ia.t
val num_entries : t -> int
val contains : t -> Scion_addr.Ia.t -> bool
val beta_at : t -> int -> int
(** [beta_at t i] folds hop MACs of entries [0..i-1] into [seg_id]. *)

val signed_bytes_upto : t -> int -> string
(** Canonical bytes covered by entry [i]'s signature: header, entries
    [0..i-1] including their signatures, and entry [i] without its
    signature. *)

val extend :
  t ->
  ia:Scion_addr.Ia.t ->
  fwkey:Scion_dataplane.Fwkey.t ->
  signer:Scion_crypto.Schnorr.private_key ->
  ingress:int ->
  egress:int ->
  ?peers:(Scion_addr.Ia.t * int * int) list ->
  ?mtu:int ->
  ?note:string ->
  ?exp_time:int ->
  unit ->
  t
(** Append this AS's signed entry. [ingress] is the interface the PCB
    arrived on (0 at the origin), [egress] the interface it will leave on
    (0 terminates the PCB into a segment). [peers] lists
    [(peer_ia, local_if, remote_if)] for each up peering link. *)

type check_error =
  | Empty
  | Loop of Scion_addr.Ia.t
  | Bad_signature of Scion_addr.Ia.t * string
  | Unknown_as of Scion_addr.Ia.t

val check_error_to_string : check_error -> string

val structural_check : t -> receiver:Scion_addr.Ia.t -> (unit, check_error) result
(** Non-cryptographic acceptance checks: non-empty and no loop through the
    receiver. *)

val verify :
  t ->
  cache:Sigcache.t ->
  lookup:(Scion_addr.Ia.t -> (Scion_cppki.Cert.t * Scion_cppki.Cert.t * Scion_cppki.Trc.t) option) ->
  now:float ->
  (unit, check_error) result
(** Cryptographic verification of every entry signature through the
    CP-PKI: [lookup ia] returns the AS certificate, its CA certificate and
    the relevant TRC. *)

val interface_fingerprint : t -> string
(** Identity of the segment as a sequence of (IA, ingress, egress)
    triples — stable across re-originations, used for store dedup and for
    tracking "the same path" over time (Figure 9). *)

val expiry : t -> float
(** Earliest hop-field expiry. *)

val mtu : t -> int
val pp : Format.formatter -> t -> unit
