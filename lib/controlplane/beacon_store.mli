(** Beacon store with a per-origin selection policy.

    Each AS keeps the best [k] candidate beacons per origin core AS,
    preferring shorter AS-level paths and, among equals, stable interface
    fingerprints. The store deduplicates by interface fingerprint, so
    re-propagation rounds converge instead of growing. The [k] knob trades
    control-plane state for path diversity — an ablation the benchmarks
    exercise. *)

type t

val create :
  ?per_origin:int -> ?metrics:Telemetry.Metrics.registry -> ?name:string -> unit -> t
(** Default [per_origin] is 8. With [?metrics], the store counts
    [beacon_store.inserted{store,outcome}] (outcome [added]/[replaced]),
    [beacon_store.rejected{store,reason}] (reason [full]/[duplicate]) and
    [beacon_store.expired{store}]; [?name] is the [store] label value
    (e.g. ["1-13/intra"]). *)

val per_origin : t -> int

type outcome = Added | Replaced | Rejected_full | Rejected_duplicate

val insert : t -> Pcb.t -> outcome
(** Insert a candidate (must be non-empty). Duplicates (same interface
    fingerprint) refresh in place when newer. When the origin's bucket is
    full, the worst candidate is evicted if the new one is better. *)

val best : t -> k:int -> Pcb.t list
(** Up to [k] best beacons per origin, for propagation. *)

val all : t -> Pcb.t list
val count : t -> int
val origins : t -> Scion_addr.Ia.t list
val remove_expired : t -> now:float -> int
(** Drop beacons whose segment expiry has passed; returns how many. *)

val clear : t -> unit
