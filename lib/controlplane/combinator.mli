(** The path combinator: joins up, core and down segments into end-to-end
    forwarding paths, including the two families of segment surgery that
    give SCION its path diversity (Section 2):

    - {b shortcuts}: when the up and down segments share a non-core AS, the
      path is cut there instead of climbing to the core;
    - {b peering}: when an AS on the up segment has a peering link to an AS
      on the down segment, the path crosses the peering link directly.

    The output is a list of distinct, loop-free candidate paths with their
    AS-level interface traces (for policy matching and disjointness
    computations), expiry and MTU. *)

module Path = Scion_dataplane.Path

type fullpath = {
  src : Scion_addr.Ia.t;
  dst : Scion_addr.Ia.t;
  segments : (Path.info * Path.hop list) list;
      (** Traversal-ordered segment data; {!fresh_raw} instantiates it. *)
  interfaces : Scion_addr.Hop_pred.hop list;
      (** AS-level trace with traversal ingress/egress interface ids;
          segment-crossover ASes appear once. *)
  expiry : float;
  mtu : int;
  fingerprint : string;  (** Stable identity derived from the trace. *)
}

val fresh_raw : fullpath -> Path.t
(** A new mutable data-plane path positioned at the first hop. Each packet
    send must use a fresh instance because forwarding mutates path state. *)

val num_hops : fullpath -> int
val contains_ia : fullpath -> Scion_addr.Ia.t -> bool

val interface_ids : fullpath -> (Scion_addr.Ia.t * int) list
(** All non-zero (IA, interface) pairs of the trace — the globally unique
    interface identifiers used for the disjointness metric of Section 5.4. *)

val disjointness : fullpath -> fullpath -> float
(** Fraction of distinct interfaces across the two paths: 1.0 means fully
    disjoint, 0.0 identical (Figure 10b's metric). *)

val build :
  ups:Pcb.t list ->
  cores:Pcb.t list ->
  downs:Pcb.t list ->
  src:Scion_addr.Ia.t ->
  dst:Scion_addr.Ia.t ->
  src_core:bool ->
  dst_core:bool ->
  fullpath list
(** Enumerate all valid combinations. [ups] are terminated segments with
    leaf [src]; [downs] terminated segments with leaf [dst]; [cores]
    terminated core segments available at the relevant core ASes (leaf =
    the AS that received them). Results are deduplicated and loop-free,
    sorted by hop count. *)

(** Memoised path lookup keyed by (src, dst, registry generation).

    [build] is pure in the segment registries, so its result can be reused
    until the registries change; the owner bumps [generation] on every
    beaconing run and the memo drops all stale entries in one sweep. With
    [?metrics], hits and misses publish as [combinator.memo_hit] /
    [combinator.memo_miss]. *)
module Memo : sig
  type t

  val create : ?metrics:Telemetry.Metrics.registry -> unit -> t

  val find :
    t ->
    generation:int ->
    src:Scion_addr.Ia.t ->
    dst:Scion_addr.Ia.t ->
    fullpath list option
  (** Counts a hit or a miss. *)

  val store :
    t ->
    generation:int ->
    src:Scion_addr.Ia.t ->
    dst:Scion_addr.Ia.t ->
    fullpath list ->
    unit

  val hits : t -> int
  val misses : t -> int
  val size : t -> int
  (** Entries cached for the current generation. *)
end
