(** Memoisation of signature verification.

    Beacon propagation re-verifies the same (message, signature, key)
    triples many times: every PCB received by an AS contains the signatures
    of all upstream ASes, and the same PCB prefix flows down every branch of
    the ISD. Verification results are immutable facts, so a global cache is
    sound and turns the beaconing cost from quadratic to linear in practice. *)

type t

val create : unit -> t
val global : t
(** A process-wide cache used by default. *)

val set_epoch : t -> string -> unit
(** Bind the cache to a key epoch — canonically the concatenation of every
    trusted TRC's [isd:serial] pair. The epoch is mixed into every cache
    key and changing it drops all entries, so verdicts produced under a
    rotated-out (possibly compromised) trust root cannot keep validating
    signatures after a TRC update. Setting the current epoch is a no-op. *)

val epoch : t -> string
(** The current key epoch ([""] until {!set_epoch} is called). *)

val verify :
  t -> Scion_crypto.Schnorr.public_key -> msg:string -> signature:string -> bool

val verify_batch :
  t -> (Scion_crypto.Schnorr.public_key * string * string) list -> bool list
(** [verify_batch t [(pub, msg, signature); ...]] returns one verdict per
    item, in order. Cached triples are answered from the table; the misses
    are checked in a single {!Scion_crypto.Schnorr.verify_batch}
    random-linear-combination pass (duplicates within the batch are
    collapsed first). If the batched check rejects, each miss is re-verified
    individually so verdicts stay exact per item. All results are cached. *)

val hits : t -> int
val misses : t -> int
val clear : t -> unit
