(** A mesh of SCION ASes with a full control plane: per-ISD PKI (TRC + CA +
    AS certificates), link management, hierarchical beaconing (core beacons
    across core links, intra-ISD beacons down parent-child links), segment
    registration into the path-server infrastructure, and path lookup
    through the {!Combinator}.

    The mesh is the control-plane substrate over which the SCIERA topology
    is instantiated; the packet-level data plane (latency, loss, failure)
    lives in [netsim] and is wired up by the [sciera] library. *)

module Ia = Scion_addr.Ia

type link_class = Core_link | Parent_child | Peering

type as_spec = {
  spec_ia : Ia.t;
  core : bool;
  ca : bool;  (** Operates the ISD CA (at most one per ISD is used). *)
  profile : Scion_cppki.Cert.profile;
  note : string;  (** Software-stack label, e.g. "open-source", "anapaya". *)
}

type link_spec = {
  l_a : Ia.t;  (** For [Parent_child], the parent. *)
  l_b : Ia.t;
  cls : link_class;
}

type config = {
  seed : int64;
  per_origin : int;  (** Beacon-store bucket size. *)
  propagate_k : int;  (** Beacons forwarded per origin per round. *)
  rounds : int;  (** Propagation rounds per beaconing run. *)
  exp_time : int;  (** Hop-field expiry encoding (255 = ~24 h). *)
  verify_pcbs : bool;  (** Cryptographically verify PCBs on receipt. *)
  cert_validity : float;  (** AS certificate lifetime in seconds. *)
  fanout_cap : int option;
      (** Upper bound on beacon extensions a node sends per propagation
          round ([None] = unlimited, the historic behaviour). Each send
          costs a signature, so this is the throttle that keeps dense
          generated meshes tractable; drops beyond the budget are counted
          by {!fanout_capped}. *)
  scale_obs : bool;
      (** Publish the scale-sweep series ([mesh.beacon_fanout],
          [combinator.memo_hit]/[combinator.memo_miss]) into [?metrics].
          Off by default so existing figures' telemetry stays
          byte-identical. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?metrics:Telemetry.Metrics.registry ->
  now:float ->
  ases:as_spec list ->
  links:link_spec list ->
  unit ->
  t
(** Build the mesh and its PKI. Raises [Invalid_argument] on inconsistent
    specs (unknown link endpoints, missing core/CA in an ISD, duplicate
    ASes).

    With [?metrics], the registry is threaded into every per-AS
    {!Beacon_store} (stores named ["<ia>/intra"] / ["<ia>/core"]) and
    border {!Scion_dataplane.Router}, and the mesh itself maintains
    [mesh.verification_failures], [mesh.beaconing_runs],
    [mesh.cert_renewals] and the [mesh.sigcache{result}] hit/miss gauges
    (published after each beaconing run, since the signature-verification
    memo is process-wide). *)

val config : t -> config
val ases : t -> Ia.t list
val is_core : t -> Ia.t -> bool
val trc : t -> int -> Scion_cppki.Trc.t
(** Raises [Not_found] for an unknown ISD. *)

val cert_of : t -> Ia.t -> Scion_cppki.Cert.t

(** [cert_material t ia] is the (AS certificate, CA certificate, TRC)
    triple for PCB verification — the lookup a control service performs
    before trusting a beacon entry. *)
val cert_material :
  t -> Ia.t -> (Scion_cppki.Cert.t * Scion_cppki.Cert.t * Scion_cppki.Trc.t) option
val fwkey_of : t -> Ia.t -> Scion_dataplane.Fwkey.t
val router_ifaces : t -> Ia.t -> Scion_dataplane.Router.iface list
(** Interface table for building this AS's border router. *)

val neighbors : t -> Ia.t -> (int * Ia.t * link_class) list
(** (local interface id, neighbor, class) triples. *)

type link_id = int

val links : t -> (link_id * link_spec) list

val link_interfaces : t -> link_id -> int * int
(** The interface ids assigned to the two endpoints ([l_a]'s, [l_b]'s). *)

val find_links : t -> Ia.t -> Ia.t -> link_id list
(** All links between two ASes (either orientation). *)

val set_link_state : t -> link_id -> up:bool -> unit
val link_up : t -> link_id -> bool

val restore_link : t -> link_id -> now:float -> bool
(** Bring a link back up and, when it was actually down, immediately
    re-run beaconing so segments over the repaired link reappear without
    waiting for the next scheduled run (self-healing on restoration).
    Returns whether a re-origination happened ([false] when the link was
    already up — restoring an up link is a no-op). *)

val restorations : t -> int
(** Number of repair-triggered re-originations performed. *)

val run_beaconing : t -> now:float -> unit
(** Clear all beacon state, originate at core ASes, propagate for
    [config.rounds] rounds over the currently-up links, then terminate and
    register segments (up segments locally, down segments in the global
    registry, core segments at core ASes). *)

val up_segments : t -> Ia.t -> Pcb.t list
val down_segments : t -> Ia.t -> Pcb.t list
val core_segments_at : t -> Ia.t -> Pcb.t list

val paths : t -> src:Ia.t -> dst:Ia.t -> Combinator.fullpath list
(** All known end-to-end paths (control-plane view; liveness is the data
    plane's problem). Returns [[]] when [src = dst]. Results are memoised
    per (src, dst) until the next beaconing run invalidates them (see
    {!generation}), so repeated lookups — the access pattern of the
    scaling sweeps — pay the combinator cost once. *)

val generation : t -> int
(** Beaconing-run count; bumped by every {!run_beaconing} (and so by
    repair-triggered re-originations). The memo key for {!paths}. *)

val memo_stats : t -> int * int
(** (hits, misses) of the {!paths} memo since mesh creation. *)

val beacon_fanout : t -> int
(** Total beacon extensions propagated across all beaconing runs. *)

val fanout_capped : t -> int
(** Propagation sends dropped because a node exhausted
    [config.fanout_cap] in a round (always 0 with [fanout_cap = None]). *)

val state_bytes : t -> Ia.t -> int
(** Modelled live control-plane bytes held by one AS: stored plus
    terminated PCBs at 64 bytes fixed + 96 per AS entry. Deterministic, so
    the scaling figure can tabulate it. *)

val router : t -> Ia.t -> Scion_dataplane.Router.t
(** The AS's border router (one logical router per AS; multi-PoP ASes are
    modelled as distinct ASes, as KREONET does in the paper's Multi-AS
    model). Interface up/down state tracks {!set_link_state}. *)

type walk_result =
  | Walk_delivered of { dst : Ia.t; hops : int; packet : Scion_dataplane.Packet.t }
  | Walk_dropped of { at : Ia.t; reason : Scion_dataplane.Router.drop_reason }

val walk :
  t ->
  now:float ->
  ?payload:string ->
  ?proto:Scion_dataplane.Packet.proto ->
  Combinator.fullpath ->
  walk_result
(** Push a packet hop by hop through the border routers along [fullpath] —
    the data-plane ground truth used for liveness probing ("active" paths
    in Figure 8) and for the integration tests. *)

val path_alive : t -> now:float -> Combinator.fullpath -> bool
(** [walk] delivered to the path's destination AS. *)

val walk_packet :
  t ->
  now:float ->
  from:Ia.t ->
  ?max_steps:int ->
  Scion_dataplane.Packet.t ->
  walk_result
(** Lower-level walk for an already-built packet (e.g. a reply skeleton
    travelling the reversed path). *)

val renew_certificates : t -> now:float -> int
(** Run the automated-renewal sweep (Section 4.5): every AS whose
    certificate is past the renewal threshold asks its ISD CA for a new
    one. Returns the number of renewals performed. *)

val verification_failures : t -> int
(** PCBs rejected because signature verification failed (tamper or expired
    certificate), for observability. *)
