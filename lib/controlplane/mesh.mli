(** A mesh of SCION ASes with a full control plane: per-ISD PKI (TRC + CA +
    AS certificates), link management, hierarchical beaconing (core beacons
    across core links, intra-ISD beacons down parent-child links), segment
    registration into the path-server infrastructure, and path lookup
    through the {!Combinator}.

    The mesh is the control-plane substrate over which the SCIERA topology
    is instantiated; the packet-level data plane (latency, loss, failure)
    lives in [netsim] and is wired up by the [sciera] library. *)

module Ia = Scion_addr.Ia

type link_class = Core_link | Parent_child | Peering

type as_spec = {
  spec_ia : Ia.t;
  core : bool;
  ca : bool;  (** Operates the ISD CA (at most one per ISD is used). *)
  profile : Scion_cppki.Cert.profile;
  note : string;  (** Software-stack label, e.g. "open-source", "anapaya". *)
}

type link_spec = {
  l_a : Ia.t;  (** For [Parent_child], the parent. *)
  l_b : Ia.t;
  cls : link_class;
}

type config = {
  seed : int64;
  per_origin : int;  (** Beacon-store bucket size. *)
  propagate_k : int;  (** Beacons forwarded per origin per round. *)
  rounds : int;  (** Propagation rounds per beaconing run. *)
  exp_time : int;  (** Hop-field expiry encoding (255 = ~24 h). *)
  verify_pcbs : bool;  (** Cryptographically verify PCBs on receipt. *)
  cert_validity : float;  (** AS certificate lifetime in seconds. *)
  fanout_cap : int option;
      (** Upper bound on beacon extensions a node sends per propagation
          round ([None] = unlimited, the historic behaviour). Each send
          costs a signature, so this is the throttle that keeps dense
          generated meshes tractable; drops beyond the budget are counted
          by {!fanout_capped}. *)
  scale_obs : bool;
      (** Publish the scale-sweep series ([mesh.beacon_fanout],
          [combinator.memo_hit]/[combinator.memo_miss]) into [?metrics].
          Off by default so existing figures' telemetry stays
          byte-identical. *)
  quarantine : quarantine_policy option;
      (** Beacon-origin containment: with [Some p], a neighbor interface
          whose beacons keep failing verification is quarantined for an
          exponentially growing window (see {!quarantine_policy}). [None]
          (the default) processes every arrival, the historic behaviour.
          When set together with [?metrics], the mesh also publishes
          [mesh.quarantine_events] / [mesh.quarantine_drops]. *)
}

and quarantine_policy = {
  q_threshold : int;
      (** Verification failures from one neighbor interface before it is
          quarantined (strikes reset when the window opens). *)
  q_backoff : Scion_util.Backoff.policy;
      (** Window growth per repeat offence ([delay_ms ~attempt:offences]).
          Must use zero jitter if attaching an adversary is to leave every
          workload RNG stream untouched — {!default_quarantine} does. *)
}

val default_config : config

val default_quarantine : quarantine_policy
(** 3 strikes; windows 5 s doubling to 120 s, zero jitter. *)

type t

val create :
  ?config:config ->
  ?metrics:Telemetry.Metrics.registry ->
  now:float ->
  ases:as_spec list ->
  links:link_spec list ->
  unit ->
  t
(** Build the mesh and its PKI. Raises [Invalid_argument] on inconsistent
    specs (unknown link endpoints, missing core/CA in an ISD, duplicate
    ASes).

    With [?metrics], the registry is threaded into every per-AS
    {!Beacon_store} (stores named ["<ia>/intra"] / ["<ia>/core"]) and
    border {!Scion_dataplane.Router}, and the mesh itself maintains
    [mesh.verification_failures], [mesh.beaconing_runs],
    [mesh.cert_renewals] and the [mesh.sigcache{result}] hit/miss gauges
    (published after each beaconing run, since the signature-verification
    memo is process-wide). *)

val config : t -> config
val ases : t -> Ia.t list
val is_core : t -> Ia.t -> bool
val trc : t -> int -> Scion_cppki.Trc.t
(** Raises [Not_found] for an unknown ISD. *)

val cert_of : t -> Ia.t -> Scion_cppki.Cert.t

(** [cert_material t ia] is the (AS certificate, CA certificate, TRC)
    triple for PCB verification — the lookup a control service performs
    before trusting a beacon entry. *)
val cert_material :
  t -> Ia.t -> (Scion_cppki.Cert.t * Scion_cppki.Cert.t * Scion_cppki.Trc.t) option
val fwkey_of : t -> Ia.t -> Scion_dataplane.Fwkey.t
val router_ifaces : t -> Ia.t -> Scion_dataplane.Router.iface list
(** Interface table for building this AS's border router. *)

val neighbors : t -> Ia.t -> (int * Ia.t * link_class) list
(** (local interface id, neighbor, class) triples. *)

type link_id = int

val links : t -> (link_id * link_spec) list

val link_interfaces : t -> link_id -> int * int
(** The interface ids assigned to the two endpoints ([l_a]'s, [l_b]'s). *)

val find_links : t -> Ia.t -> Ia.t -> link_id list
(** All links between two ASes (either orientation). *)

val set_link_state : t -> link_id -> up:bool -> unit
val link_up : t -> link_id -> bool

val restore_link : t -> link_id -> now:float -> bool
(** Bring a link back up and, when it was actually down, immediately
    re-run beaconing so segments over the repaired link reappear without
    waiting for the next scheduled run (self-healing on restoration).
    Returns whether a re-origination happened ([false] when the link was
    already up — restoring an up link is a no-op). *)

val restorations : t -> int
(** Number of repair-triggered re-originations performed. *)

val run_beaconing : t -> now:float -> unit
(** Clear all beacon state, originate at core ASes, propagate for
    [config.rounds] rounds over the currently-up links, then terminate and
    register segments (up segments locally, down segments in the global
    registry, core segments at core ASes). *)

val up_segments : t -> Ia.t -> Pcb.t list
val down_segments : t -> Ia.t -> Pcb.t list
val core_segments_at : t -> Ia.t -> Pcb.t list

val paths : t -> src:Ia.t -> dst:Ia.t -> Combinator.fullpath list
(** All known end-to-end paths (control-plane view; liveness is the data
    plane's problem). Returns [[]] when [src = dst]. Results are memoised
    per (src, dst) until the next beaconing run invalidates them (see
    {!generation}), so repeated lookups — the access pattern of the
    scaling sweeps — pay the combinator cost once. *)

val generation : t -> int
(** Beaconing-run count; bumped by every {!run_beaconing} (and so by
    repair-triggered re-originations). The memo key for {!paths}. *)

val memo_stats : t -> int * int
(** (hits, misses) of the {!paths} memo since mesh creation. *)

val beacon_fanout : t -> int
(** Total beacon extensions propagated across all beaconing runs. *)

val fanout_capped : t -> int
(** Propagation sends dropped because a node exhausted
    [config.fanout_cap] in a round (always 0 with [fanout_cap = None]). *)

val state_bytes : t -> Ia.t -> int
(** Modelled live control-plane bytes held by one AS: stored plus
    terminated PCBs at 64 bytes fixed + 96 per AS entry. Deterministic, so
    the scaling figure can tabulate it. *)

val router : t -> Ia.t -> Scion_dataplane.Router.t
(** The AS's border router (one logical router per AS; multi-PoP ASes are
    modelled as distinct ASes, as KREONET does in the paper's Multi-AS
    model). Interface up/down state tracks {!set_link_state}. *)

type walk_result =
  | Walk_delivered of { dst : Ia.t; hops : int; packet : Scion_dataplane.Packet.t }
  | Walk_dropped of { at : Ia.t; reason : Scion_dataplane.Router.drop_reason }

val walk :
  t ->
  now:float ->
  ?payload:string ->
  ?proto:Scion_dataplane.Packet.proto ->
  Combinator.fullpath ->
  walk_result
(** Push a packet hop by hop through the border routers along [fullpath] —
    the data-plane ground truth used for liveness probing ("active" paths
    in Figure 8) and for the integration tests. *)

val path_alive : t -> now:float -> Combinator.fullpath -> bool
(** [walk] delivered to the path's destination AS. *)

val walk_packet :
  t ->
  now:float ->
  from:Ia.t ->
  ?max_steps:int ->
  Scion_dataplane.Packet.t ->
  walk_result
(** Lower-level walk for an already-built packet (e.g. a reply skeleton
    travelling the reversed path). *)

val renew_certificates : t -> now:float -> int
(** Run the automated-renewal sweep (Section 4.5): every AS whose
    certificate is past the renewal threshold asks its ISD CA for a new
    one. Returns the number of renewals performed. *)

val verification_failures : t -> int
(** PCBs rejected because signature verification failed (tamper, expired
    certificate, or a stale replay past its hop expiry), for
    observability. *)

(** {1 Containment}

    The defence half of the adversarial tier: per-neighbor quarantine
    state and the TRC-rotation drill. *)

val quarantine_events : t -> int
(** Times any neighbor interface entered quarantine (0 without
    [config.quarantine]). *)

val quarantine_drops : t -> int
(** Beacons skipped because their arrival interface was quarantined. *)

val quarantined_neighbors : t -> Ia.t -> now:float -> (int * Ia.t) list
(** The (local interface, neighbor) pairs of [ia] currently inside a
    quarantine window. *)

val rotate_trc : t -> isd:int -> now:float -> unit
(** Emergency key-rotation drill for one ISD: vote in a successor TRC with
    a fresh root (signed by the previous root, per TRC chaining), stand up
    a fresh CA chained to it, re-issue every AS certificate in the ISD
    from the node's true key (evicting any attacker-held identity
    installed by {!seize_as}), and re-bind the signature cache to the new
    key epoch so cached verdicts from the old root are dropped. *)

val rotations : t -> int
(** TRC rotations performed so far (across all ISDs). *)

val key_epoch : t -> string
(** The current key epoch: every ISD's [isd:serial] pair, sorted. *)

(** {1 Byzantine surface}

    What a compromised AS can do to the mesh. These model the attacker's
    reach — nothing in the honest control plane calls them — and each
    draws only from the [rng] handed in, conventionally the dedicated
    [fault.adv] stream. *)

val seize_as : t -> ia:Ia.t -> now:float -> unit
(** CA-compromise model: the attacker uses the ISD's (compromised) CA to
    issue itself a certificate for [ia] and takes over the AS identity —
    beacons it signs from [ia] now verify. Undone by {!rotate_trc}. *)

val seized : t -> Ia.t -> bool

(* scion-lint: rng-stream fault.adv -- attack payload draws come from the adversary stream *)
val inject_corrupt_beacons :
  t -> compromised:Ia.t -> rng:Scion_util.Rng.t -> now:float -> count:int -> int
(** Inject [count] malformed PCBs (one flipped signature byte) from
    [compromised] at its downstream neighbors, round-robin. Returns how
    many were accepted into a beacon store — 0 whenever verification is
    on, unless the identity was seized. *)

(* scion-lint: rng-stream fault.adv -- attack payload draws come from the adversary stream *)
val inject_replayed_beacons :
  t -> compromised:Ia.t -> rng:Scion_util.Rng.t -> now:float -> age_s:float -> count:int -> int
(** Inject [count] stale PCBs originated [age_s] seconds ago with valid
    signatures. Accepted unless verification's freshness check rejects
    them (it does once [age_s] exceeds the hop expiry). *)

(* scion-lint: rng-stream fault.adv -- attack payload draws come from the adversary stream *)
val register_rogue_segments :
  t -> compromised:Ia.t -> victim:Ia.t -> rng:Scion_util.Rng.t -> now:float -> count:int -> int
(** Byzantine down-segment registration: write [count] bogus segments for
    [victim] into the registry (registration is unauthenticated, the
    modeled path-server gap). Their AS-level route joins real up/core
    segments, but every hop field is MACed with the attacker's key, so
    honest routers drop the traffic — poisoned paths are served until the
    daemon's feedback loop revokes them. Invalidates the {!paths} memo. *)

val inject_pcb : t -> receiver:Ia.t -> Pcb.t -> now:float -> bool
(** Deliver one PCB at [receiver] through the normal acceptance pipeline
    (arrival-link match, quarantine, verification, store insert); the
    arrival link and expected role are inferred from the PCB's last entry.
    Returns whether it was accepted. *)
