module Ia = Scion_addr.Ia
module Cert = Scion_cppki.Cert
module Trc = Scion_cppki.Trc
module Ca = Scion_cppki.Ca
module Schnorr = Scion_crypto.Schnorr
module Fwkey = Scion_dataplane.Fwkey
module Router = Scion_dataplane.Router
module M = Telemetry.Metrics

type link_class = Core_link | Parent_child | Peering

type as_spec = {
  spec_ia : Ia.t;
  core : bool;
  ca : bool;
  profile : Cert.profile;
  note : string;
}

type link_spec = { l_a : Ia.t; l_b : Ia.t; cls : link_class }

(* Total lookup of the per-ISD CA; every AS spec is checked against its ISD
   at mesh-construction time, so a miss is a construction bug. *)
let ca_for cas isd =
  match Hashtbl.find_opt cas isd with
  | Some ca -> ca
  | None -> invalid_arg (Printf.sprintf "Mesh: no CA for ISD %d" isd)

type quarantine_policy = { q_threshold : int; q_backoff : Scion_util.Backoff.policy }

let default_quarantine =
  {
    q_threshold = 3;
    (* Zero jitter: quarantine pacing must not draw from the mesh stream,
       so attaching an adversary leaves workload draws untouched. *)
    q_backoff =
      Scion_util.Backoff.make ~base_ms:5_000.0 ~multiplier:2.0 ~cap_ms:120_000.0 ~jitter:0.0
        ~max_attempts:1_000 ();
  }

type config = {
  seed : int64;
  per_origin : int;
  propagate_k : int;
  rounds : int;
  exp_time : int;
  verify_pcbs : bool;
  cert_validity : float;
  fanout_cap : int option;
  scale_obs : bool;
  quarantine : quarantine_policy option;
}

let default_config =
  {
    seed = 0xC1EA_5EEDL;
    per_origin = 8;
    propagate_k = 4;
    rounds = 8;
    exp_time = 255;
    verify_pcbs = true;
    cert_validity = 3.0 *. 24.0 *. 3600.0;
    fanout_cap = None;
    scale_obs = false;
    quarantine = None;
  }

type role = Parent | Child | Core_nbr | Peer

type neighbor = {
  n_ifid : int;
  n_ia : Ia.t;
  n_remote_ifid : int;
  n_cls : link_class;
  n_role : role;
  n_link : int;
}

(* Per-neighbor containment state: repeated verification failures from one
   interface earn exponentially longer quarantine windows. *)
type qstate = { mutable strikes : int; mutable offences : int; mutable q_until : float }

type node = {
  nd_ia : Ia.t;
  nd_core : bool;
  nd_profile : Cert.profile;
  nd_note : string;
  fwkey : Fwkey.t;
  signer : Schnorr.private_key;
  pubkey : Schnorr.public_key;
  mutable cert : Cert.t;
  mutable nbrs : neighbor list;
  mutable nbr_tbl : neighbor option array;
      (** Dense by local ifid (ids are allocated 1..degree), for O(1)
          egress lookup on the per-hop forwarding path. *)
  mutable q_tbl : qstate option array;  (** Dense by local ifid, like [nbr_tbl]. *)
  store_intra : Beacon_store.t;
  store_core : Beacon_store.t;
  mutable ups : Pcb.t list;
  mutable cores_terminated : Pcb.t list;
}

type link_id = int

type link = { spec : link_spec; a_if : int; b_if : int; mutable l_up : bool }

(* Control-plane telemetry handles; created eagerly when a registry is
   supplied so idle-mesh snapshots already have their full shape. *)
type obs = {
  o_verif_failures : M.counter;
  o_beaconing_runs : M.counter;
  o_cert_renewals : M.counter;
  o_sigcache_hits : M.gauge;
  o_sigcache_misses : M.gauge;
  o_beacon_fanout : M.counter option;
      (** Only under [scale_obs]: existing figures pin their snapshot
          bytes, so the scale-sweep series must stay out of their
          registries. *)
  o_quarantine_events : M.counter option;
      (** Only when [config.quarantine] is set, for the same reason. *)
  o_quarantine_drops : M.counter option;
}

let make_obs ~scale_obs ~quarantine registry =
  {
    o_verif_failures = M.counter registry "mesh.verification_failures";
    o_beaconing_runs = M.counter registry "mesh.beaconing_runs";
    o_cert_renewals = M.counter registry "mesh.cert_renewals";
    o_sigcache_hits = M.gauge registry ~labels:[ ("result", "hit") ] "mesh.sigcache";
    o_sigcache_misses = M.gauge registry ~labels:[ ("result", "miss") ] "mesh.sigcache";
    o_beacon_fanout =
      (if scale_obs then Some (M.counter registry "mesh.beacon_fanout") else None);
    o_quarantine_events =
      (if quarantine then Some (M.counter registry "mesh.quarantine_events") else None);
    o_quarantine_drops =
      (if quarantine then Some (M.counter registry "mesh.quarantine_drops") else None);
  }

type t = {
  cfg : config;
  rng : Scion_util.Rng.t;
  nodes : (Ia.t, node) Hashtbl.t;
  order : Ia.t list;  (** Sorted IA list for deterministic iteration. *)
  link_arr : link array;
  trcs : (int, Trc.t) Hashtbl.t;
  cas : (int, Ca.t) Hashtbl.t;
  down_registry : (Ia.t, Pcb.t list) Hashtbl.t;
  sent_log : (string, unit) Hashtbl.t;
  cache : Sigcache.t;
  routers : (Ia.t, Router.t) Hashtbl.t;
  roots : (int, string * Schnorr.private_key * Schnorr.public_key) Hashtbl.t;
      (** Per-ISD root key material — retained so a rotation drill can vote
          the successor TRC in with the previous root. *)
  seized : (Ia.t, Schnorr.private_key) Hashtbl.t;
      (** ASes whose identity an attacker holds (CA-compromise model):
          the attacker's signing key, matching the node's swapped cert. *)
  mutable rotations : int;
  mutable quarantine_events : int;
  mutable quarantine_drops : int;
  mutable verif_failures : int;
  mutable restorations : int;
  mutable generation : int;  (** Bumped per beaconing run; keys the memo. *)
  memo : Combinator.Memo.t;
  mutable fanout_sends : int;
  mutable fanout_capped : int;
  obs : obs option;
}

let config t = t.cfg
let ases t = t.order

let node t ia =
  match Hashtbl.find_opt t.nodes ia with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Mesh: unknown AS %s" (Ia.to_string ia))

let is_core t ia = (node t ia).nd_core
let trc t isd = match Hashtbl.find_opt t.trcs isd with Some x -> x | None -> raise Not_found
let cert_of t ia = (node t ia).cert
let fwkey_of t ia = (node t ia).fwkey

let router_ifaces t ia =
  List.map
    (fun n -> { Router.ifid = n.n_ifid; remote_ia = n.n_ia; remote_ifid = n.n_remote_ifid })
    (node t ia).nbrs

let neighbors t ia = List.map (fun n -> (n.n_ifid, n.n_ia, n.n_cls)) (node t ia).nbrs

let links t = Array.to_list (Array.mapi (fun i l -> (i, l.spec)) t.link_arr)

let link_interfaces t id =
  let l = t.link_arr.(id) in
  (l.a_if, l.b_if)

let find_links t a b =
  let matches l =
    (Ia.equal l.spec.l_a a && Ia.equal l.spec.l_b b)
    || (Ia.equal l.spec.l_a b && Ia.equal l.spec.l_b a)
  in
  Array.to_list t.link_arr
  |> List.mapi (fun i l -> (i, l))
  |> List.filter_map (fun (i, l) -> if matches l then Some i else None)

let router t ia =
  match Hashtbl.find_opt t.routers ia with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Mesh.router: unknown AS %s" (Ia.to_string ia))

let set_link_state t id ~up =
  let l = t.link_arr.(id) in
  l.l_up <- up;
  Router.set_interface_state (router t l.spec.l_a) l.a_if ~up;
  Router.set_interface_state (router t l.spec.l_b) l.b_if ~up

let link_up t id = t.link_arr.(id).l_up
let verification_failures t = t.verif_failures

(* --- Construction --- *)

let create ?(config = default_config) ?metrics ~now ~ases ~links () =
  let rng = Scion_util.Rng.create config.seed in
  let nodes = Hashtbl.create 64 in
  let seed_str = Int64.to_string config.seed in
  (* Per-ISD PKI. *)
  let isds =
    List.sort_uniq Stdlib.compare (List.map (fun s -> s.spec_ia.Ia.isd) ases)
  in
  let trcs = Hashtbl.create 4 in
  let cas = Hashtbl.create 4 in
  let roots = Hashtbl.create 4 in
  let ten_years = 10.0 *. 365.0 *. 24.0 *. 3600.0 in
  List.iter
    (fun isd ->
      let in_isd = List.filter (fun s -> s.spec_ia.Ia.isd = isd) ases in
      let cores = List.filter (fun s -> s.core) in_isd in
      let first_core =
        match cores with
        | c :: _ -> c
        | [] -> invalid_arg (Printf.sprintf "Mesh.create: ISD %d has no core AS" isd)
      in
      let ca_spec =
        match List.find_opt (fun s -> s.ca) in_isd with Some s -> s | None -> first_core
      in
      let root_name = Printf.sprintf "root-%d" isd in
      let root_priv, root_pub =
        Schnorr.derive ~seed:(Printf.sprintf "%s/root/%d" seed_str isd)
      in
      let trc =
        Trc.sign_base ~isd
          ~validity:(now -. 1.0, now +. ten_years)
          ~core_ases:(List.map (fun s -> s.spec_ia) cores)
          ~ca_ases:[ ca_spec.spec_ia ] ~quorum:1
          ~roots:[ (root_name, root_priv, root_pub) ]
      in
      Hashtbl.replace trcs isd trc;
      Hashtbl.replace roots isd (root_name, root_priv, root_pub);
      let ca_priv, ca_pub =
        Schnorr.derive ~seed:(Printf.sprintf "%s/ca/%d" seed_str isd)
      in
      let ca_cert =
        Cert.sign ~kind:Cert.Ca ~profile:ca_spec.profile ~serial:1 ~subject:ca_spec.spec_ia
          ~pubkey:ca_pub
          ~validity:(now -. 1.0, now +. (ten_years /. 2.0))
          ~issuer:ca_spec.spec_ia ~issuer_key_name:root_name ~issuer_priv:root_priv
      in
      Hashtbl.replace cas isd
        (Ca.create ~ia:ca_spec.spec_ia ~priv:ca_priv ~cert:ca_cert
           ~default_validity:config.cert_validity ()))
    isds;
  (* AS nodes with certificates. *)
  List.iter
    (fun spec ->
      if Hashtbl.mem nodes spec.spec_ia then
        invalid_arg (Printf.sprintf "Mesh.create: duplicate AS %s" (Ia.to_string spec.spec_ia));
      let signer, pubkey =
        Schnorr.derive ~seed:(Printf.sprintf "%s/as/%s" seed_str (Ia.to_string spec.spec_ia))
      in
      let ca = ca_for cas spec.spec_ia.Ia.isd in
      let cert = Ca.issue ca ~subject:spec.spec_ia ~pubkey ~profile:spec.profile ~now in
      Hashtbl.replace nodes spec.spec_ia
        {
          nd_ia = spec.spec_ia;
          nd_core = spec.core;
          nd_profile = spec.profile;
          nd_note = spec.note;
          fwkey = Fwkey.of_seed ~ia:spec.spec_ia ~seed:seed_str;
          signer;
          pubkey;
          cert;
          nbrs = [];
          nbr_tbl = [||];
          q_tbl = [||];
          store_intra =
            Beacon_store.create ~per_origin:config.per_origin ?metrics
              ~name:(Ia.to_string spec.spec_ia ^ "/intra") ();
          store_core =
            Beacon_store.create ~per_origin:config.per_origin ?metrics
              ~name:(Ia.to_string spec.spec_ia ^ "/core") ();
          ups = [];
          cores_terminated = [];
        })
    ases;
  (* Links with automatic interface-id assignment. *)
  let next_ifid = Hashtbl.create 64 in
  let alloc ia =
    let v = match Hashtbl.find_opt next_ifid ia with Some v -> v | None -> 1 in
    Hashtbl.replace next_ifid ia (v + 1);
    v
  in
  let get ia =
    match Hashtbl.find_opt nodes ia with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Mesh.create: link endpoint %s unknown" (Ia.to_string ia))
  in
  let link_arr =
    Array.of_list
      (List.mapi
         (fun idx spec ->
           let na = get spec.l_a and nb = get spec.l_b in
           let a_if = alloc spec.l_a and b_if = alloc spec.l_b in
           let role_a, role_b =
             match spec.cls with
             | Core_link -> (Core_nbr, Core_nbr)
             | Parent_child -> (Child, Parent)
             | Peering -> (Peer, Peer)
           in
           (* Prepend (O(1) per link); declaration order is restored by one
              List.rev per node below — appending with [@] here is O(deg^2)
              for the high-degree cores of generated meshes. *)
           na.nbrs <-
             {
               n_ifid = a_if;
               n_ia = spec.l_b;
               n_remote_ifid = b_if;
               n_cls = spec.cls;
               n_role = role_a;
               n_link = idx;
             }
             :: na.nbrs;
           nb.nbrs <-
             {
               n_ifid = b_if;
               n_ia = spec.l_a;
               n_remote_ifid = a_if;
               n_cls = spec.cls;
               n_role = role_b;
               n_link = idx;
             }
             :: nb.nbrs;
           { spec; a_if; b_if; l_up = true })
         links)
  in
  (* Finalise per-node neighbor state: restore declaration order and build
     the dense ifid table (ifids are allocated 1..degree per AS). *)
  Scion_util.Table.iter_sorted ~cmp:Ia.compare
    (fun _ia (n : node) ->
      n.nbrs <- List.rev n.nbrs;
      let tbl = Array.make (List.length n.nbrs + 1) None in
      List.iter (fun nb -> tbl.(nb.n_ifid) <- Some nb) n.nbrs;
      n.nbr_tbl <- tbl;
      n.q_tbl <- Array.make (Array.length tbl) None)
    nodes;
  let order = List.sort Ia.compare (List.map (fun s -> s.spec_ia) ases) in
  let routers = Hashtbl.create 64 in
  Scion_util.Table.iter_sorted ~cmp:Ia.compare
    (fun ia (n : node) ->
      let ifaces =
        List.map
          (fun nb -> { Router.ifid = nb.n_ifid; remote_ia = nb.n_ia; remote_ifid = nb.n_remote_ifid })
          n.nbrs
      in
      Hashtbl.replace routers ia (Router.create ?metrics ~ia ~key:n.fwkey ~ifaces ()))
    nodes;
  {
    cfg = config;
    rng;
    nodes;
    order;
    link_arr;
    trcs;
    cas;
    down_registry = Hashtbl.create 64;
    sent_log = Hashtbl.create 4096;
    cache = Sigcache.global;
    routers;
    roots;
    seized = Hashtbl.create 4;
    rotations = 0;
    quarantine_events = 0;
    quarantine_drops = 0;
    verif_failures = 0;
    restorations = 0;
    generation = 0;
    memo =
      Combinator.Memo.create
        ?metrics:(if config.scale_obs then metrics else None)
        ();
    fanout_sends = 0;
    fanout_capped = 0;
    obs =
      Option.map
        (make_obs ~scale_obs:config.scale_obs ~quarantine:(config.quarantine <> None))
        metrics;
  }

(* --- Certificates --- *)

let renew_certificates t ~now =
  let renewed = ref 0 in
  List.iter
    (fun ia ->
      let n = node t ia in
      if Ca.needs_renewal n.cert ~now || not (Cert.in_validity n.cert now) then begin
        let ca = ca_for t.cas ia.Ia.isd in
        let fresh =
          match Ca.renew ca ~current:n.cert ~pubkey:n.pubkey ~now with
          | Ok c -> c
          | Error _ -> Ca.issue ca ~subject:ia ~pubkey:n.pubkey ~profile:n.nd_profile ~now
        in
        n.cert <- fresh;
        incr renewed
      end)
    t.order;
  (match t.obs with None -> () | Some o -> M.add o.o_cert_renewals !renewed);
  !renewed

(* --- Beaconing --- *)

let cert_lookup t ia =
  match Hashtbl.find_opt t.nodes ia with
  | None -> None
  | Some n -> (
      match Hashtbl.find_opt t.cas ia.Ia.isd with
      | None -> None
      | Some ca -> (
          match Hashtbl.find_opt t.trcs ia.Ia.isd with
          | None -> None
          | Some trc -> Some (n.cert, Ca.ca_cert ca, trc)))

let cert_material = cert_lookup

(* The interface over which a stored PCB arrived: the sender's entry names
   its egress interface; map it back through the declared links. *)
let arrival_ifid _t (n : node) (pcb : Pcb.t) =
  match List.rev pcb.Pcb.entries with
  | [] -> None
  | last :: _ ->
      List.find_opt
        (fun nb ->
          Ia.equal nb.n_ia last.Pcb.ia
          && nb.n_remote_ifid = last.Pcb.hop.Scion_dataplane.Path.cons_egress)
        n.nbrs
      |> Option.map (fun nb -> nb.n_ifid)

let peer_links_of (n : node) t =
  List.filter_map
    (fun nb ->
      if nb.n_cls = Peering && t.link_arr.(nb.n_link).l_up then
        Some (nb.n_ia, nb.n_ifid, nb.n_remote_ifid)
      else None)
    n.nbrs

(* Beacon-origin containment: a neighbor interface that keeps failing
   verification stops being processed for a while. Windows are paced by
   [Scion_util.Backoff] with zero jitter, so quarantine never draws from
   any RNG stream. *)
let quarantined (n : node) ifid ~now =
  if ifid >= 0 && ifid < Array.length n.q_tbl then
    match n.q_tbl.(ifid) with Some st -> now < st.q_until | None -> false
  else false

let strike t (n : node) (nb : neighbor) ~now =
  match t.cfg.quarantine with
  | None -> ()
  | Some q ->
      let st =
        match n.q_tbl.(nb.n_ifid) with
        | Some st -> st
        | None ->
            let st = { strikes = 0; offences = 0; q_until = neg_infinity } in
            n.q_tbl.(nb.n_ifid) <- Some st;
            st
      in
      st.strikes <- st.strikes + 1;
      if st.strikes >= q.q_threshold then begin
        st.strikes <- 0;
        st.offences <- st.offences + 1;
        let delay_ms =
          Scion_util.Backoff.delay_ms q.q_backoff ~rng:t.rng ~attempt:st.offences
        in
        st.q_until <- now +. (delay_ms /. 1000.0);
        t.quarantine_events <- t.quarantine_events + 1;
        match t.obs with
        | Some { o_quarantine_events = Some c; _ } -> M.inc c
        | Some _ | None -> ()
      end

let receive_pcb t (receiver : node) ~(expected_role : role) pcb ~now store =
  match Pcb.structural_check pcb ~receiver:receiver.nd_ia with
  | Error _ -> false
  | Ok () -> (
      (* The PCB must arrive over a declared, up link from the sender, and
         the sender must have the expected topological role. *)
      match List.rev pcb.Pcb.entries with
      | [] -> false
      | last :: _ -> (
          let nbr =
            List.find_opt
              (fun nb ->
                Ia.equal nb.n_ia last.Pcb.ia
                && nb.n_remote_ifid = last.Pcb.hop.Scion_dataplane.Path.cons_egress
                && nb.n_role = expected_role
                && t.link_arr.(nb.n_link).l_up)
              receiver.nbrs
          in
          match nbr with
          | None -> false
          | Some nb when quarantined receiver nb.n_ifid ~now ->
              t.quarantine_drops <- t.quarantine_drops + 1;
              (match t.obs with
              | Some { o_quarantine_drops = Some c; _ } -> M.inc c
              | Some _ | None -> ());
              false
          | Some nb ->
              let ok =
                if t.cfg.verify_pcbs then begin
                  (* Freshness first: a replayed beacon past its hop expiry
                     is rejected even when its signatures still verify. *)
                  let fresh = Pcb.expiry pcb > now in
                  let valid =
                    fresh
                    &&
                    match Pcb.verify pcb ~cache:t.cache ~lookup:(cert_lookup t) ~now with
                    | Ok () -> true
                    | Error _ -> false
                  in
                  if not valid then begin
                    t.verif_failures <- t.verif_failures + 1;
                    (match t.obs with None -> () | Some o -> M.inc o.o_verif_failures);
                    strike t receiver nb ~now
                  end;
                  valid
                end
                else true
              in
              if ok then
                match Beacon_store.insert store pcb with
                | Beacon_store.Added | Beacon_store.Replaced -> true
                | Beacon_store.Rejected_full | Beacon_store.Rejected_duplicate -> false
              else false))

let receive t receiver ~expected_role pcb ~now store =
  ignore (receive_pcb t receiver ~expected_role pcb ~now store)

let send_once t ~sender ~egress ~kind pcb =
  (* Dedup log so each (pcb, link) pair is extended and delivered once; the
     egress interface id distinguishes parallel links to the same AS. *)
  let key =
    kind ^ Ia.to_string sender ^ "#" ^ string_of_int egress ^ Pcb.interface_fingerprint pcb
  in
  if Hashtbl.mem t.sent_log key then None
  else begin
    Hashtbl.replace t.sent_log key ();
    Some ()
  end

let run_beaconing t ~now =
  ignore (renew_certificates t ~now);
  t.generation <- t.generation + 1;
  Hashtbl.reset t.down_registry;
  Hashtbl.reset t.sent_log;
  List.iter
    (fun ia ->
      let n = node t ia in
      Beacon_store.clear n.store_intra;
      Beacon_store.clear n.store_core;
      n.ups <- [];
      n.cores_terminated <- [])
    t.order;
  let extend_from (n : node) pcb ~ingress ~egress =
    Pcb.extend pcb ~ia:n.nd_ia ~fwkey:n.fwkey ~signer:n.signer ~ingress ~egress
      ~peers:(peer_links_of n t) ~note:n.nd_note ~exp_time:t.cfg.exp_time ()
  in
  (* Origination. *)
  List.iter
    (fun ia ->
      let n = node t ia in
      if n.nd_core then
        List.iter
          (fun nb ->
            if t.link_arr.(nb.n_link).l_up then begin
              match nb.n_role with
              | Core_nbr ->
                  let pcb = Pcb.originate ~rng:t.rng ~now in
                  let pcb = extend_from n pcb ~ingress:0 ~egress:nb.n_ifid in
                  receive t (node t nb.n_ia) ~expected_role:Core_nbr pcb ~now
                    (node t nb.n_ia).store_core
              | Child ->
                  let pcb = Pcb.originate ~rng:t.rng ~now in
                  let pcb = extend_from n pcb ~ingress:0 ~egress:nb.n_ifid in
                  receive t (node t nb.n_ia) ~expected_role:Parent pcb ~now
                    (node t nb.n_ia).store_intra
              | Parent | Peer -> ()
            end)
          n.nbrs)
    t.order;
  (* Propagation rounds. Each extension signs, so per-node sends are the
     cost driver at scale; [fanout_cap] bounds them per node per round
     (sends beyond the budget are dropped and counted, never an error). *)
  let per_round_budget =
    match t.cfg.fanout_cap with Some c -> c | None -> max_int
  in
  let count_send () =
    t.fanout_sends <- t.fanout_sends + 1;
    match t.obs with
    | Some { o_beacon_fanout = Some c; _ } -> M.inc c
    | Some _ | None -> ()
  in
  for _round = 1 to t.cfg.rounds do
    List.iter
      (fun ia ->
        let n = node t ia in
        let budget = ref per_round_budget in
        let propagate ~kind ~expected_role store_of nb pcb =
          if not (Pcb.contains pcb nb.n_ia) then begin
            if !budget <= 0 then t.fanout_capped <- t.fanout_capped + 1
            else begin
              match send_once t ~sender:n.nd_ia ~egress:nb.n_ifid ~kind pcb with
              | None -> ()
              | Some () -> (
                  match arrival_ifid t n pcb with
                  | None -> ()
                  | Some ingress ->
                      decr budget;
                      count_send ();
                      let ext = extend_from n pcb ~ingress ~egress:nb.n_ifid in
                      receive t (node t nb.n_ia) ~expected_role ext ~now
                        (store_of (node t nb.n_ia)))
            end
          end
        in
        (* Intra-ISD beacons flow to children. *)
        let intra = Beacon_store.best n.store_intra ~k:t.cfg.propagate_k in
        List.iter
          (fun nb ->
            if nb.n_role = Child && t.link_arr.(nb.n_link).l_up then
              List.iter
                (propagate ~kind:"i" ~expected_role:Parent (fun nd -> nd.store_intra) nb)
                intra)
          n.nbrs;
        (* Core beacons flow across core links. *)
        if n.nd_core then begin
          let core = Beacon_store.best n.store_core ~k:t.cfg.propagate_k in
          List.iter
            (fun nb ->
              if nb.n_role = Core_nbr && t.link_arr.(nb.n_link).l_up then
                List.iter
                  (propagate ~kind:"c" ~expected_role:Core_nbr (fun nd -> nd.store_core) nb)
                  core)
            n.nbrs
        end)
      t.order
  done;
  (* Termination and registration. *)
  List.iter
    (fun ia ->
      let n = node t ia in
      if not n.nd_core then
        List.iter
          (fun pcb ->
            match arrival_ifid t n pcb with
            | None -> ()
            | Some ingress ->
                let term = extend_from n pcb ~ingress ~egress:0 in
                n.ups <- term :: n.ups;
                let existing =
                  match Hashtbl.find_opt t.down_registry n.nd_ia with Some l -> l | None -> []
                in
                Hashtbl.replace t.down_registry n.nd_ia (term :: existing))
          (Beacon_store.all n.store_intra);
      if n.nd_core then
        List.iter
          (fun pcb ->
            match arrival_ifid t n pcb with
            | None -> ()
            | Some ingress ->
                let term = extend_from n pcb ~ingress ~egress:0 in
                n.cores_terminated <- term :: n.cores_terminated)
          (Beacon_store.all n.store_core))
    t.order;
  match t.obs with
  | None -> ()
  | Some o ->
      M.inc o.o_beaconing_runs;
      M.set o.o_sigcache_hits (float_of_int (Sigcache.hits t.cache));
      M.set o.o_sigcache_misses (float_of_int (Sigcache.misses t.cache))

(* Repair-triggered re-origination: restoring a down link rebuilds beacon
   state immediately instead of waiting for the next scheduled beaconing
   run, so paths over the repaired link reappear within the same tick. *)
let restore_link t id ~now =
  let l = t.link_arr.(id) in
  let was_down = not l.l_up in
  set_link_state t id ~up:true;
  if was_down then begin
    t.restorations <- t.restorations + 1;
    run_beaconing t ~now
  end;
  was_down

let restorations t = t.restorations

let up_segments t ia = (node t ia).ups
let core_segments_at t ia = (node t ia).cores_terminated

let down_segments t ia =
  match Hashtbl.find_opt t.down_registry ia with Some l -> l | None -> []

type walk_result =
  | Walk_delivered of { dst : Ia.t; hops : int; packet : Scion_dataplane.Packet.t }
  | Walk_dropped of { at : Ia.t; reason : Router.drop_reason }

(* The walk encodes the packet once and pushes the zero-copy view through
   [Router.process_view] hop by hop — the border routers patch the wire
   buffer in place — then decodes only at the delivery point. *)
let walk_packet t ~now ~from ?(max_steps = 64) pkt =
  let module Packet = Scion_dataplane.Packet in
  let v = Packet.View.of_packet pkt in
  let rec step at ingress hops =
    if hops > max_steps then
      Walk_dropped { at; reason = Router.Path_malformed "forwarding loop suspected" }
    else begin
      let r = router t at in
      let verdict = Router.process_view r ~now ~ingress v in
      if verdict = 0 then Walk_delivered { dst = at; hops; packet = Packet.View.to_packet v }
      else if verdict < 0 then Walk_dropped { at; reason = Router.last_drop r }
      else begin
        let egress = verdict in
        let n = node t at in
        let nbr =
          if egress >= 0 && egress < Array.length n.nbr_tbl then n.nbr_tbl.(egress) else None
        in
        match nbr with
        | None -> Walk_dropped { at; reason = Router.Unknown_interface egress }
        | Some nb ->
            if not t.link_arr.(nb.n_link).l_up then
              Walk_dropped { at; reason = Router.Interface_down egress }
            else step nb.n_ia nb.n_remote_ifid (hops + 1)
      end
    end
  in
  step from 0 0

let walk t ~now ?(payload = "") ?(proto = Scion_dataplane.Packet.Udp) (fp : Combinator.fullpath) =
  let module Packet = Scion_dataplane.Packet in
  let pkt =
    Packet.make ~proto
      ~src:(fp.Combinator.src, Packet.Ipv4 (Scion_addr.Ipv4.of_string "10.0.0.1"))
      ~dst:(fp.Combinator.dst, Packet.Ipv4 (Scion_addr.Ipv4.of_string "10.0.0.2"))
      ~path:(Packet.Standard (Combinator.fresh_raw fp))
      payload
  in
  walk_packet t ~now ~from:fp.Combinator.src ~max_steps:(3 * Combinator.num_hops fp) pkt

let path_alive t ~now fp =
  match walk t ~now fp with
  | Walk_delivered { dst; _ } -> Ia.equal dst fp.Combinator.dst
  | Walk_dropped _ -> false

let paths t ~src ~dst =
  if Ia.equal src dst then []
  else begin
    match Combinator.Memo.find t.memo ~generation:t.generation ~src ~dst with
    | Some cached -> cached
    | None ->
        let src_core = is_core t src and dst_core = is_core t dst in
        let ups = if src_core then [] else up_segments t src in
        let downs = if dst_core then [] else down_segments t dst in
        let core_sources =
          if src_core then [ src ]
          else List.sort_uniq Ia.compare (List.map Pcb.origin ups)
        in
        let cores = List.concat_map (fun c -> core_segments_at t c) core_sources in
        let built = Combinator.build ~ups ~cores ~downs ~src ~dst ~src_core ~dst_core in
        Combinator.Memo.store t.memo ~generation:t.generation ~src ~dst built;
        built
  end

let generation t = t.generation
let memo_stats t = (Combinator.Memo.hits t.memo, Combinator.Memo.misses t.memo)
let beacon_fanout t = t.fanout_sends
let fanout_capped t = t.fanout_capped

(* Rough live control-plane footprint of one AS: every stored or terminated
   PCB costs a fixed overhead plus a per-entry share (hop field, signature,
   metadata). A model, not a measurement — but a deterministic one, which
   is what the scaling figure needs. *)
let state_bytes t ia =
  let n = node t ia in
  let pcb_bytes acc pcb = acc + 64 + (96 * Pcb.num_entries pcb) in
  let acc = List.fold_left pcb_bytes 0 (Beacon_store.all n.store_intra) in
  let acc = List.fold_left pcb_bytes acc (Beacon_store.all n.store_core) in
  let acc = List.fold_left pcb_bytes acc n.ups in
  List.fold_left pcb_bytes acc n.cores_terminated

(* --- Containment state --- *)

let quarantine_events t = t.quarantine_events
let quarantine_drops t = t.quarantine_drops

let quarantined_neighbors t ia ~now =
  let n = node t ia in
  List.filter_map
    (fun nb -> if quarantined n nb.n_ifid ~now then Some (nb.n_ifid, nb.n_ia) else None)
    n.nbrs

(* --- TRC rotation drill --- *)

let seed_str t = Int64.to_string t.cfg.seed

let key_epoch t =
  Scion_util.Table.fold_sorted
    (fun isd (trc : Trc.t) acc ->
      Printf.sprintf "%s%d:%d;" acc isd trc.Trc.serial)
    t.trcs ""

let rotations t = t.rotations
let seized t ia = Hashtbl.mem t.seized ia

let rotate_trc t ~isd ~now =
  let prev = trc t isd in
  let old_name, old_priv, _ =
    match Hashtbl.find_opt t.roots isd with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Mesh.rotate_trc: unknown ISD %d" isd)
  in
  t.rotations <- t.rotations + 1;
  let gen = t.rotations in
  let ten_years = 10.0 *. 365.0 *. 24.0 *. 3600.0 in
  let root_name = Printf.sprintf "root-%d-r%d" isd gen in
  let root_priv, root_pub =
    Schnorr.derive ~seed:(Printf.sprintf "%s/root/%d/r%d" (seed_str t) isd gen)
  in
  let next =
    match
      Trc.update ~prev
        ~rotate_roots:[ { Trc.name = root_name; key = root_pub } ]
        ~validity:(now -. 1.0, now +. ten_years)
        ~votes:[ (old_name, old_priv) ]
        ()
    with
    | Ok next -> next
    | Error e -> invalid_arg ("Mesh.rotate_trc: " ^ e)
  in
  Hashtbl.replace t.trcs isd next;
  Hashtbl.replace t.roots isd (root_name, root_priv, root_pub);
  (* Fresh CA keypair chained to the new root. *)
  let old_ca = ca_for t.cas isd in
  let ca_ia = Ca.ia old_ca in
  let ca_profile = (Ca.ca_cert old_ca).Cert.profile in
  let ca_priv, ca_pub =
    Schnorr.derive ~seed:(Printf.sprintf "%s/ca/%d/r%d" (seed_str t) isd gen)
  in
  let ca_cert =
    Cert.sign ~kind:Cert.Ca ~profile:ca_profile ~serial:(1 + gen) ~subject:ca_ia ~pubkey:ca_pub
      ~validity:(now -. 1.0, now +. (ten_years /. 2.0))
      ~issuer:ca_ia ~issuer_key_name:root_name ~issuer_priv:root_priv
  in
  Hashtbl.replace t.cas isd
    (Ca.create ~ia:ca_ia ~priv:ca_priv ~cert:ca_cert ~default_validity:t.cfg.cert_validity ());
  (* Re-issue every AS certificate in the ISD from the node's true key:
     attacker-held identities are rotated out here. *)
  let ca = ca_for t.cas isd in
  List.iter
    (fun ia ->
      if ia.Ia.isd = isd then begin
        Hashtbl.remove t.seized ia;
        let n = node t ia in
        n.cert <- Ca.issue ca ~subject:ia ~pubkey:n.pubkey ~profile:n.nd_profile ~now
      end)
    t.order;
  (* Bind the signature cache to the new key epoch: verdicts produced
     under the rotated-out (possibly compromised) root are dropped. *)
  Sigcache.set_epoch t.cache (key_epoch t)

(* --- Byzantine surface --- *)

let seize_as t ~ia ~now =
  let n = node t ia in
  let atk_priv, atk_pub =
    Schnorr.derive
      ~seed:(Printf.sprintf "%s/attacker/%s/r%d" (seed_str t) (Ia.to_string ia) t.rotations)
  in
  let ca = ca_for t.cas ia.Ia.isd in
  n.cert <- Ca.issue ca ~subject:ia ~pubkey:atk_pub ~profile:n.nd_profile ~now;
  Hashtbl.replace t.seized ia atk_priv

let signer_of t (n : node) =
  match Hashtbl.find_opt t.seized n.nd_ia with Some atk -> atk | None -> n.signer

let inject_pcb t ~receiver pcb ~now =
  let n = node t receiver in
  match List.rev pcb.Pcb.entries with
  | [] -> false
  | last :: _ -> (
      let nbr =
        List.find_opt
          (fun nb ->
            Ia.equal nb.n_ia last.Pcb.ia
            && nb.n_remote_ifid = last.Pcb.hop.Scion_dataplane.Path.cons_egress
            && t.link_arr.(nb.n_link).l_up)
          n.nbrs
      in
      match nbr with
      | None -> false
      | Some nb -> (
          match nb.n_role with
          | Parent -> receive_pcb t n ~expected_role:Parent pcb ~now n.store_intra
          | Core_nbr -> receive_pcb t n ~expected_role:Core_nbr pcb ~now n.store_core
          | Child | Peer -> false))

(* Flip one signature byte: structurally intact, cryptographically dead. *)
let tamper_signature s =
  if String.length s = 0 then "\x01"
  else begin
    let b = Bytes.of_string s in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
    Bytes.to_string b
  end

let tamper_last_entry pcb =
  match List.rev pcb.Pcb.entries with
  | [] -> pcb
  | last :: rest ->
      let entries =
        List.rev ({ last with Pcb.signature = tamper_signature last.Pcb.signature } :: rest)
      in
      { pcb with Pcb.entries }

(* One single-entry beacon leaving [n] over [egress], signed by whoever
   currently holds the AS identity (the attacker, after [seize_as]). *)
let craft_beacon t (n : node) ~rng ~now ~egress =
  let pcb = Pcb.originate ~rng ~now in
  Pcb.extend pcb ~ia:n.nd_ia ~fwkey:n.fwkey ~signer:(signer_of t n) ~ingress:0 ~egress
    ~peers:(peer_links_of n t) ~note:"byzantine" ~exp_time:t.cfg.exp_time ()

let downstream_nbrs (n : node) t =
  List.filter
    (fun nb ->
      (nb.n_role = Child || nb.n_role = Core_nbr) && t.link_arr.(nb.n_link).l_up)
    n.nbrs

let inject_corrupt_beacons t ~compromised ~rng ~now ~count =
  let n = node t compromised in
  let targets = downstream_nbrs n t in
  if targets = [] then 0
  else begin
    let accepted = ref 0 in
    for i = 0 to count - 1 do
      let nb = List.nth targets (i mod List.length targets) in
      (* A seized identity signs with the attacker's (certified) key, so
         its corruption is the content, not the signature bytes; an
         unseized attacker can only forge, which tampering models. *)
      let pcb = craft_beacon t n ~rng ~now ~egress:nb.n_ifid in
      let pcb = if Hashtbl.mem t.seized compromised then pcb else tamper_last_entry pcb in
      if inject_pcb t ~receiver:nb.n_ia pcb ~now then incr accepted
    done;
    !accepted
  end

let inject_replayed_beacons t ~compromised ~rng ~now ~age_s ~count =
  let n = node t compromised in
  let targets = downstream_nbrs n t in
  if targets = [] then 0
  else begin
    let accepted = ref 0 in
    for i = 0 to count - 1 do
      let nb = List.nth targets (i mod List.length targets) in
      (* Validly signed at origination time, but [age_s] stale. *)
      let pcb = craft_beacon t n ~rng ~now:(now -. age_s) ~egress:nb.n_ifid in
      if inject_pcb t ~receiver:nb.n_ia pcb ~now then incr accepted
    done;
    !accepted
  end

(* A down-segment the byzantine AS writes straight into the registry: the
   AS-level route reads as core -> victim, but every hop field is MACed
   with the attacker's forwarding key, so the data plane rejects it at the
   first honest router. Registration is unauthenticated (the modeled
   path-server gap); containment is the daemon's poisoned-path feedback. *)
let register_rogue_segments t ~compromised ~victim ~rng ~now ~count =
  let atk = node t compromised in
  let origin =
    match down_segments t victim with
    | pcb :: _ -> Pcb.origin pcb
    | [] -> (
        match List.find_opt (fun ia -> (node t ia).nd_core) t.order with
        | Some ia -> ia
        | None -> invalid_arg "Mesh.register_rogue_segments: no core AS")
  in
  let registered = ref 0 in
  for _i = 1 to count do
    let pcb = Pcb.originate ~rng ~now in
    let pcb =
      Pcb.extend pcb ~ia:origin ~fwkey:atk.fwkey ~signer:(signer_of t atk) ~ingress:0 ~egress:1
        ~note:"rogue" ~exp_time:t.cfg.exp_time ()
    in
    let pcb =
      Pcb.extend pcb ~ia:victim ~fwkey:atk.fwkey ~signer:(signer_of t atk) ~ingress:1 ~egress:0
        ~note:"rogue" ~exp_time:t.cfg.exp_time ()
    in
    let existing =
      match Hashtbl.find_opt t.down_registry victim with Some l -> l | None -> []
    in
    Hashtbl.replace t.down_registry victim (pcb :: existing);
    incr registered
  done;
  (* The path memo predates the poisoning; invalidate it so lookups see
     the registry as it now stands. *)
  if !registered > 0 then t.generation <- t.generation + 1;
  !registered
