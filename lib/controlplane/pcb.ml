module Rw = Scion_util.Rw
module Path = Scion_dataplane.Path

type peer_entry = {
  peer_ia : Scion_addr.Ia.t;
  peer_interface : int;
  peer_remote_if : int;
  peer_hop : Path.hop;
}

type as_entry = {
  ia : Scion_addr.Ia.t;
  hop : Path.hop;
  peers : peer_entry list;
  mtu : int;
  note : string;
  signature : string;
}

type t = { seg_id : int; timestamp : int32; entries : as_entry list }

let originate ~rng ~now =
  { seg_id = Scion_util.Rng.int rng 0x10000; timestamp = Int32.of_float now; entries = [] }

let origin t =
  match t.entries with
  | e :: _ -> e.ia
  | [] -> invalid_arg "Pcb.origin: empty PCB"

let leaf t =
  match List.rev t.entries with
  | e :: _ -> e.ia
  | [] -> invalid_arg "Pcb.leaf: empty PCB"

let num_entries t = List.length t.entries
let contains t ia = List.exists (fun e -> Scion_addr.Ia.equal e.ia ia) t.entries

let beta_at t i =
  let rec go beta idx = function
    | [] -> beta
    | e :: rest ->
        if idx >= i then beta
        else go (Path.chain_seg_id ~seg_id:beta ~mac:e.hop.Path.mac) (idx + 1) rest
  in
  go t.seg_id 0 t.entries

let encode_hop w (h : Path.hop) =
  Rw.Writer.u8 w h.Path.exp_time;
  Rw.Writer.u16 w h.Path.cons_ingress;
  Rw.Writer.u16 w h.Path.cons_egress;
  Rw.Writer.raw w h.Path.mac

let encode_entry w ~with_signature e =
  Scion_addr.Ia.encode w e.ia;
  encode_hop w e.hop;
  Rw.Writer.u16 w (List.length e.peers);
  List.iter
    (fun p ->
      Scion_addr.Ia.encode w p.peer_ia;
      Rw.Writer.u16 w p.peer_interface;
      Rw.Writer.u16 w p.peer_remote_if;
      encode_hop w p.peer_hop)
    e.peers;
  Rw.Writer.u16 w e.mtu;
  Rw.Writer.u16 w (String.length e.note);
  Rw.Writer.raw w e.note;
  if with_signature then begin
    Rw.Writer.u16 w (String.length e.signature);
    Rw.Writer.raw w e.signature
  end

let signed_bytes_upto t i =
  let w = Rw.Writer.create () in
  Rw.Writer.raw w "PCB1";
  Rw.Writer.u16 w t.seg_id;
  Rw.Writer.u32 w t.timestamp;
  List.iteri
    (fun idx e -> if idx < i then encode_entry w ~with_signature:true e
      else if idx = i then encode_entry w ~with_signature:false e)
    t.entries;
  Rw.Writer.contents w

let extend t ~ia ~fwkey ~signer ~ingress ~egress ?(peers = []) ?(mtu = 1472) ?(note = "")
    ?(exp_time = Path.max_exp_time) () =
  let key = Scion_dataplane.Fwkey.cmac_key fwkey in
  let n = num_entries t in
  let beta = beta_at t n in
  let hop_proto = { Path.exp_time; cons_ingress = ingress; cons_egress = egress; mac = String.make 6 '\x00' } in
  let mac = Path.compute_mac key ~seg_id:beta ~timestamp:t.timestamp hop_proto in
  let hop = { hop_proto with Path.mac } in
  let beta_next = Path.chain_seg_id ~seg_id:beta ~mac in
  let peer_entries =
    List.map
      (fun (peer_ia, local_if, remote_if) ->
        let ph_proto =
          { Path.exp_time; cons_ingress = local_if; cons_egress = egress; mac = String.make 6 '\x00' }
        in
        let pmac = Path.compute_mac key ~seg_id:beta_next ~timestamp:t.timestamp ph_proto in
        {
          peer_ia;
          peer_interface = local_if;
          peer_remote_if = remote_if;
          peer_hop = { ph_proto with Path.mac = pmac };
        })
      peers
  in
  let entry = { ia; hop; peers = peer_entries; mtu; note; signature = "" } in
  let draft = { t with entries = t.entries @ [ entry ] } in
  let msg = signed_bytes_upto draft n in
  let signature = Scion_crypto.Schnorr.sign signer msg in
  { t with entries = t.entries @ [ { entry with signature } ] }

type check_error =
  | Empty
  | Loop of Scion_addr.Ia.t
  | Bad_signature of Scion_addr.Ia.t * string
  | Unknown_as of Scion_addr.Ia.t

let check_error_to_string = function
  | Empty -> "empty PCB"
  | Loop ia -> Printf.sprintf "loop through %s" (Scion_addr.Ia.to_string ia)
  | Bad_signature (ia, m) ->
      Printf.sprintf "bad signature by %s: %s" (Scion_addr.Ia.to_string ia) m
  | Unknown_as ia -> Printf.sprintf "no certificate material for %s" (Scion_addr.Ia.to_string ia)

let structural_check t ~receiver =
  if t.entries = [] then Error Empty
  else if contains t receiver then Error (Loop receiver)
  else begin
    (* No AS may appear twice within the PCB itself. *)
    let rec dup_check seen = function
      | [] -> Ok ()
      | e :: rest ->
          if Scion_addr.Ia.Set.mem e.ia seen then Error (Loop e.ia)
          else dup_check (Scion_addr.Ia.Set.add e.ia seen) rest
    in
    dup_check Scion_addr.Ia.Set.empty t.entries
  end

let verify t ~cache ~lookup ~now =
  if t.entries = [] then Error Empty
  else begin
    (* Pass 1: certificate-chain checks and signed-message reconstruction
       for every entry. Pass 2: one batched signature verification over the
       whole PCB — the common case (all signatures valid, most already
       cached) costs a single random-linear-combination check instead of
       one full Schnorr verification per entry. *)
    let rec collect i acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
          match lookup e.ia with
          | None -> Error (Unknown_as e.ia)
          | Some (as_cert, ca_cert, trc) -> (
              match Scion_cppki.Verify.chain ~trc ~ca_cert ~as_cert ~now with
              | Error err -> Error (Bad_signature (e.ia, Scion_cppki.Verify.error_to_string err))
              | Ok () ->
                  let msg = signed_bytes_upto t i in
                  collect (i + 1)
                    ((e.ia, (as_cert.Scion_cppki.Cert.pubkey, msg, e.signature)) :: acc)
                    rest))
    in
    match collect 0 [] t.entries with
    | Error _ as err -> err
    | Ok items ->
        let verdicts = Sigcache.verify_batch cache (List.map snd items) in
        let rec first_bad items verdicts =
          match (items, verdicts) with
          | (ia, _) :: _, false :: _ ->
              Error (Bad_signature (ia, "PCB entry signature does not verify"))
          | _ :: irest, _ :: vrest -> first_bad irest vrest
          | _, _ -> Ok ()
        in
        first_bad items verdicts
  end

let interface_fingerprint t =
  let w = Rw.Writer.create () in
  List.iter
    (fun e ->
      Scion_addr.Ia.encode w e.ia;
      Rw.Writer.u16 w e.hop.Path.cons_ingress;
      Rw.Writer.u16 w e.hop.Path.cons_egress)
    t.entries;
  Scion_crypto.Sha256.digest (Rw.Writer.contents w)

let expiry t =
  let info = { Path.cons_dir = true; peer = false; seg_id = t.seg_id; timestamp = t.timestamp } in
  List.fold_left
    (fun acc e -> Float.min acc (Path.hop_expiry info e.hop))
    Float.max_float t.entries

let mtu t = List.fold_left (fun acc e -> min acc e.mtu) max_int t.entries

let pp fmt t =
  Format.fprintf fmt "pcb[%s]"
    (String.concat "->" (List.map (fun e -> Scion_addr.Ia.to_string e.ia) t.entries))
