module IaMap = Scion_addr.Ia.Map
module M = Telemetry.Metrics

type entry = { pcb : Pcb.t; fingerprint : string }

type obs = {
  o_added : M.counter;
  o_replaced : M.counter;
  o_rej_full : M.counter;
  o_rej_dup : M.counter;
  o_expired : M.counter;
}

type t = { mutable buckets : entry list IaMap.t; per_origin : int; obs : obs option }

let make_obs registry ~name =
  let base = [ ("store", name) ] in
  let counter ?(extra = []) metric = M.counter registry ~labels:(base @ extra) metric in
  {
    o_added = counter ~extra:[ ("outcome", "added") ] "beacon_store.inserted";
    o_replaced = counter ~extra:[ ("outcome", "replaced") ] "beacon_store.inserted";
    o_rej_full = counter ~extra:[ ("reason", "full") ] "beacon_store.rejected";
    o_rej_dup = counter ~extra:[ ("reason", "duplicate") ] "beacon_store.rejected";
    o_expired = counter "beacon_store.expired";
  }

let create ?(per_origin = 8) ?metrics ?(name = "") () =
  {
    buckets = IaMap.empty;
    per_origin;
    obs = Option.map (fun registry -> make_obs registry ~name) metrics;
  }

let per_origin t = t.per_origin

type outcome = Added | Replaced | Rejected_full | Rejected_duplicate

let observe_outcome t outcome =
  (match t.obs with
  | None -> ()
  | Some o -> (
      match outcome with
      | Added -> M.inc o.o_added
      | Replaced -> M.inc o.o_replaced
      | Rejected_full -> M.inc o.o_rej_full
      | Rejected_duplicate -> M.inc o.o_rej_dup));
  outcome

(* Shorter beacons first; ties broken by fingerprint for determinism. *)
let better a b =
  let la = Pcb.num_entries a.pcb and lb = Pcb.num_entries b.pcb in
  if la <> lb then la < lb else a.fingerprint < b.fingerprint

let sort_bucket = List.sort (fun a b -> if better a b then -1 else 1)

let insert_unobserved t pcb =
  let fingerprint = Pcb.interface_fingerprint pcb in
  let origin = Pcb.origin pcb in
  let bucket = match IaMap.find_opt origin t.buckets with Some b -> b | None -> [] in
  match List.find_opt (fun e -> e.fingerprint = fingerprint) bucket with
  | Some existing ->
      if pcb.Pcb.timestamp > existing.pcb.Pcb.timestamp then begin
        let bucket =
          { pcb; fingerprint } :: List.filter (fun e -> e.fingerprint <> fingerprint) bucket
        in
        t.buckets <- IaMap.add origin (sort_bucket bucket) t.buckets;
        Replaced
      end
      else Rejected_duplicate
  | None ->
      let candidate = { pcb; fingerprint } in
      if List.length bucket < t.per_origin then begin
        t.buckets <- IaMap.add origin (sort_bucket (candidate :: bucket)) t.buckets;
        Added
      end
      else begin
        (* Bucket full: evict the worst if the candidate beats it. *)
        match List.rev (sort_bucket bucket) with
        | worst :: _ when better candidate worst ->
            let bucket =
              candidate :: List.filter (fun e -> e.fingerprint <> worst.fingerprint) bucket
            in
            t.buckets <- IaMap.add origin (sort_bucket bucket) t.buckets;
            Replaced
        | _ -> Rejected_full
      end

let insert t pcb = observe_outcome t (insert_unobserved t pcb)

let best t ~k =
  IaMap.fold (fun _ bucket acc ->
      let rec take n = function
        | [] -> []
        | e :: rest -> if n = 0 then [] else e.pcb :: take (n - 1) rest
      in
      take k (sort_bucket bucket) @ acc)
    t.buckets []

let all t = IaMap.fold (fun _ bucket acc -> List.map (fun e -> e.pcb) bucket @ acc) t.buckets []
let count t = IaMap.fold (fun _ bucket acc -> acc + List.length bucket) t.buckets 0
let origins t = IaMap.fold (fun origin _ acc -> origin :: acc) t.buckets []

let remove_expired t ~now =
  let removed = ref 0 in
  t.buckets <-
    IaMap.filter_map
      (fun _ bucket ->
        let keep, drop = List.partition (fun e -> Pcb.expiry e.pcb > now) bucket in
        removed := !removed + List.length drop;
        if keep = [] then None else Some keep)
      t.buckets;
  (match t.obs with None -> () | Some o -> M.add o.o_expired !removed);
  !removed

let clear t = t.buckets <- IaMap.empty
