module Ia = Scion_addr.Ia
module Combinator = Scion_controlplane.Combinator
module M = Telemetry.Metrics

type fetch = dst:Ia.t -> Combinator.fullpath list

type cache_entry = { paths : Combinator.fullpath list; fetched_at : float }

type obs = { o_hits : M.counter; o_misses : M.counter }

type t = {
  ia : Ia.t;
  fetch : fetch;
  cache_ttl : float;
  expiry_margin : float;
  cache : (Ia.t, cache_entry) Hashtbl.t;
  trcs : (int, Scion_cppki.Trc.t) Hashtbl.t;
  mutable hit_count : int;
  mutable miss_count : int;
  obs : obs option;
}

let make_obs registry ~ia =
  let base = [ ("ia", Ia.to_string ia) ] in
  {
    o_hits = M.counter registry ~labels:(("source", "cache") :: base) "daemon.lookups";
    o_misses = M.counter registry ~labels:(("source", "fetch") :: base) "daemon.lookups";
  }

let create ~ia ~fetch ?(cache_ttl = 300.0) ?(expiry_margin = 60.0) ?metrics () =
  {
    ia;
    fetch;
    cache_ttl;
    expiry_margin;
    cache = Hashtbl.create 32;
    trcs = Hashtbl.create 4;
    hit_count = 0;
    miss_count = 0;
    obs = Option.map (fun registry -> make_obs registry ~ia) metrics;
  }

let ia t = t.ia

type source = From_cache | Fetched

let usable t ~now paths =
  List.filter (fun p -> p.Combinator.expiry > now +. t.expiry_margin) paths

let lookup t ~now ~dst =
  let refresh () =
    t.miss_count <- t.miss_count + 1;
    (match t.obs with None -> () | Some o -> M.inc o.o_misses);
    let paths = t.fetch ~dst in
    Hashtbl.replace t.cache dst { paths; fetched_at = now };
    (usable t ~now paths, Fetched)
  in
  match Hashtbl.find_opt t.cache dst with
  | Some entry when now -. entry.fetched_at <= t.cache_ttl -> (
      match usable t ~now entry.paths with
      | [] -> refresh ()
      | live ->
          t.hit_count <- t.hit_count + 1;
          (match t.obs with None -> () | Some o -> M.inc o.o_hits);
          (live, From_cache))
  | Some _ | None -> refresh ()

let flush t = Hashtbl.reset t.cache
let cache_entries t = Hashtbl.length t.cache
let hits t = t.hit_count
let misses t = t.miss_count

let store_trc t trc =
  let isd = trc.Scion_cppki.Trc.isd in
  match Hashtbl.find_opt t.trcs isd with
  | Some existing when existing.Scion_cppki.Trc.serial >= trc.Scion_cppki.Trc.serial -> ()
  | Some _ | None -> Hashtbl.replace t.trcs isd trc

let trc_for t ~isd = Hashtbl.find_opt t.trcs isd
