module Ia = Scion_addr.Ia
module Combinator = Scion_controlplane.Combinator
module M = Telemetry.Metrics

type fetch = dst:Ia.t -> Combinator.fullpath list

type cache_entry = { paths : Combinator.fullpath list; fetched_at : float }

type obs = { o_hits : M.counter; o_misses : M.counter }

type t = {
  ia : Ia.t;
  fetch : fetch;
  cache_ttl : float;
  expiry_margin : float;
  revocation_ttl : float;
  retry : (Scion_util.Backoff.policy * Scion_util.Rng.t) option;
  cache : (Ia.t, cache_entry) Hashtbl.t;
  revoked : (string, float) Hashtbl.t;  (** "ia#ifid" -> active until *)
  poisoned : (string, float) Hashtbl.t;  (** path fingerprint -> active until *)
  trcs : (int, Scion_cppki.Trc.t) Hashtbl.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable revocation_count : int;
  mutable poisoned_count : int;
  mutable evicted_count : int;
  mutable fetch_attempts : int;
  mutable fetch_wait_ms : float;
  quality : Pathmon.Cache.t;
  obs : obs option;
}

let make_obs registry ~ia =
  let base = [ ("ia", Ia.to_string ia) ] in
  {
    o_hits = M.counter registry ~labels:(("source", "cache") :: base) "daemon.lookups";
    o_misses = M.counter registry ~labels:(("source", "fetch") :: base) "daemon.lookups";
  }

let create ~ia ~fetch ?(cache_ttl = 300.0) ?(expiry_margin = 60.0) ?(revocation_ttl = 10.0)
    ?retry ?rng ?quality ?metrics () =
  let retry : (Scion_util.Backoff.policy * Scion_util.Rng.t) option =
    match (retry, rng) with
    | Some policy, Some rng -> Some (policy, rng)
    | Some _, None -> invalid_arg "Daemon.create: ?retry requires ?rng for jitter draws"
    | None, _ -> None
  in
  {
    ia;
    fetch;
    cache_ttl;
    expiry_margin;
    revocation_ttl;
    retry;
    cache = Hashtbl.create 32;
    revoked = Hashtbl.create 8;
    poisoned = Hashtbl.create 8;
    trcs = Hashtbl.create 4;
    hit_count = 0;
    miss_count = 0;
    revocation_count = 0;
    poisoned_count = 0;
    evicted_count = 0;
    fetch_attempts = 0;
    fetch_wait_ms = 0.0;
    quality = (match quality with Some c -> c | None -> Pathmon.Cache.create ());
    obs = Option.map (fun registry -> make_obs registry ~ia) metrics;
  }

let ia t = t.ia
let quality t = t.quality

type source = From_cache | Fetched

(* --- Revocations (SCMP external-interface-down) --- *)

let revoked_key ia ifid = Ia.to_string ia ^ "#" ^ string_of_int ifid

let interface_revoked t ~now ~ia ~ifid =
  match Hashtbl.find_opt t.revoked (revoked_key ia ifid) with
  | Some until -> until > now
  | None -> false

let crosses_revoked t ~now (p : Combinator.fullpath) =
  Hashtbl.length t.revoked > 0
  && List.exists
       (fun (h : Scion_addr.Hop_pred.hop) ->
         (h.ingress <> 0 && interface_revoked t ~now ~ia:h.ia ~ifid:h.ingress)
         || (h.egress <> 0 && interface_revoked t ~now ~ia:h.ia ~ifid:h.egress))
       p.Combinator.interfaces

(* Retry transient fetch failures (an empty answer from the control
   service) through the shared capped-exponential backoff; waits are
   simulated time, accounted in [fetch_wait_ms], never slept. *)
let fetch_paths t ~dst =
  match t.retry with
  | None -> t.fetch ~dst
  | Some (policy, rng) -> (
      let on_wait ~attempt:_ ~delay_ms = t.fetch_wait_ms <- t.fetch_wait_ms +. delay_ms in
      match
        Scion_util.Backoff.retry policy ~rng ~on_wait (fun ~attempt:_ ->
            match t.fetch ~dst with [] -> Error `Empty | paths -> Ok paths)
      with
      | Ok (paths, attempts) ->
          t.fetch_attempts <- t.fetch_attempts + attempts;
          paths
      | Error give_up ->
          t.fetch_attempts <- t.fetch_attempts + give_up.Scion_util.Backoff.attempts;
          [])

let path_poisoned t ~now (p : Combinator.fullpath) =
  Hashtbl.length t.poisoned > 0
  &&
  match Hashtbl.find_opt t.poisoned p.Combinator.fingerprint with
  | Some until -> until > now
  | None -> false

let usable t ~now paths =
  List.filter
    (fun p ->
      p.Combinator.expiry > now +. t.expiry_margin
      && (not (crosses_revoked t ~now p))
      && not (path_poisoned t ~now p))
    paths

let lookup t ~now ~dst =
  let refresh () =
    t.miss_count <- t.miss_count + 1;
    (match t.obs with None -> () | Some o -> M.inc o.o_misses);
    let paths = fetch_paths t ~dst in
    Hashtbl.replace t.cache dst { paths; fetched_at = now };
    (usable t ~now paths, Fetched)
  in
  match Hashtbl.find_opt t.cache dst with
  | Some entry when now -. entry.fetched_at <= t.cache_ttl -> (
      match usable t ~now entry.paths with
      | [] -> refresh ()
      | live ->
          t.hit_count <- t.hit_count + 1;
          (match t.obs with None -> () | Some o -> M.inc o.o_hits);
          (live, From_cache))
  | Some _ | None -> refresh ()

let flush t = Hashtbl.reset t.cache
let cache_entries t = Hashtbl.length t.cache
let hits t = t.hit_count
let misses t = t.miss_count

(* Learn that (ia, ifid) is dead: remember the revocation, evict every
   cached path crossing the interface, and eagerly re-fetch destinations
   whose cached set was wiped out so the next lookup has fresh material. *)
let revoke t ~now ~ia:rev_ia ~ifid =
  t.revocation_count <- t.revocation_count + 1;
  Hashtbl.replace t.revoked (revoked_key rev_ia ifid) (now +. t.revocation_ttl);
  let crosses (p : Combinator.fullpath) =
    List.exists
      (fun (h : Scion_addr.Hop_pred.hop) ->
        Ia.equal h.ia rev_ia && ((h.ingress <> 0 && h.ingress = ifid) || (h.egress <> 0 && h.egress = ifid)))
      p.Combinator.interfaces
  in
  let evictions =
    Scion_util.Table.fold_sorted
      (fun dst entry acc ->
        let keep, evicted = List.partition (fun p -> not (crosses p)) entry.paths in
        if evicted = [] then acc else (dst, keep, List.length evicted) :: acc)
      t.cache []
  in
  let evicted_total =
    List.fold_left
      (fun acc (dst, keep, n) ->
        (match keep with
        | [] ->
            let paths = fetch_paths t ~dst in
            Hashtbl.replace t.cache dst { paths; fetched_at = now }
        | _ :: _ -> Hashtbl.replace t.cache dst { paths = keep; fetched_at = now });
        acc + n)
      0 evictions
  in
  t.evicted_count <- t.evicted_count + evicted_total;
  evicted_total

(* MAC-verification feedback: a path whose traffic dies with
   Invalid_hop_field_mac was served from poisoned control-plane state
   (e.g. a rogue down-segment). Revoke it by fingerprint — the interface
   set may be entirely fictional, so interface revocation cannot help. *)
let report_poisoned t ~now (p : Combinator.fullpath) =
  t.poisoned_count <- t.poisoned_count + 1;
  Hashtbl.replace t.poisoned p.Combinator.fingerprint (now +. t.revocation_ttl);
  match Hashtbl.find_opt t.cache p.Combinator.dst with
  | None -> 0
  | Some entry ->
      let keep, evicted =
        List.partition
          (fun (q : Combinator.fullpath) ->
            not (String.equal q.Combinator.fingerprint p.Combinator.fingerprint))
          entry.paths
      in
      (match keep with
      | [] ->
          let paths = fetch_paths t ~dst:p.Combinator.dst in
          Hashtbl.replace t.cache p.Combinator.dst { paths; fetched_at = now }
      | _ :: _ -> Hashtbl.replace t.cache p.Combinator.dst { paths = keep; fetched_at = now });
      let n = List.length evicted in
      t.evicted_count <- t.evicted_count + n;
      n

let handle_scmp t ~now ?path msg =
  match msg with
  | Scion_dataplane.Scmp.External_interface_down { ia = rev_ia; ifid } ->
      Some (revoke t ~now ~ia:rev_ia ~ifid)
  | Scion_dataplane.Scmp.Invalid_hop_field_mac -> (
      match path with Some p -> Some (report_poisoned t ~now p) | None -> None)
  | Scion_dataplane.Scmp.Echo_request _ | Scion_dataplane.Scmp.Echo_reply _
  | Scion_dataplane.Scmp.Destination_unreachable | Scion_dataplane.Scmp.Expired_hop_field ->
      None

let revocations t = t.revocation_count
let poisoned_revocations t = t.poisoned_count
let evicted_paths t = t.evicted_count
let fetch_attempts t = t.fetch_attempts
let fetch_wait_ms t = t.fetch_wait_ms

let store_trc t trc =
  let isd = trc.Scion_cppki.Trc.isd in
  match Hashtbl.find_opt t.trcs isd with
  | Some existing when existing.Scion_cppki.Trc.serial >= trc.Scion_cppki.Trc.serial -> ()
  | Some _ | None -> Hashtbl.replace t.trcs isd trc

let trc_for t ~isd = Hashtbl.find_opt t.trcs isd
