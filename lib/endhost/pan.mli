(** The PAN-style application library (Section 4.2): path policies,
    preference sorting, operating-mode fallback and a path-aware
    connection abstraction with instant failover.

    This is the surface the paper's SCIONabled applications program
    against — the [--sequence], [--preference] and [--interactive] flags
    added to [bat] (Appendix E) map 1:1 onto {!policy}. *)

module Combinator = Scion_controlplane.Combinator

type preference = Latency | Hops | Mtu | Expiry
(** Sorting criteria; [Latency] uses the estimator given to {!sort_paths}. *)

val preference_of_string : string -> (preference, string) result
val preference_to_string : preference -> string
val available_preference_policies : string list

type policy = {
  sequence : Scion_addr.Hop_pred.sequence option;
  deny_transit : Scion_addr.Ia.Set.t;
      (** ASes that may appear only as endpoints (Section 4.9 ethics rule). *)
  preferences : preference list;
}

val default_policy : policy
val policy_of_options :
  ?sequence:string -> ?preference:string -> unit -> (policy, string) result
(** Parse the CLI surface: a hop-predicate sequence and a comma-separated
    preference list. *)

val filter_paths : policy -> Combinator.fullpath list -> Combinator.fullpath list
val sort_paths :
  policy -> latency_of:(Combinator.fullpath -> float) -> Combinator.fullpath list ->
  Combinator.fullpath list

val pick_flow_path :
  ?policy:policy ->
  latency_of:(Combinator.fullpath -> float) ->
  headroom:(Combinator.fullpath -> float) ->
  Combinator.fullpath list ->
  Combinator.fullpath option
(** Multipath-capable flow placement: the policy-admissible path with the
    most [headroom] (spare bottleneck capacity, e.g.
    {!Sciera.Network.path_headroom_bps}), ties resolved by the policy's
    preference order. [None] when no path passes the policy — the
    single-path-IP baseline instead always takes the head of
    {!sort_paths}. *)

(** Operating modes of the library (Section 4.2.1). *)
type mode = Daemon_dependent | Bootstrapper_dependent | Standalone

val mode_to_string : mode -> string

val choose_mode : daemon_available:bool -> bootstrapper_available:bool -> mode
(** The automatic fallback: daemon if present, else in-process with the
    shared bootstrapper, else fully standalone. *)

(** A path-aware "socket": selected path plus live failover. *)
module Conn : sig
  type send_outcome = Sent of { rtt_ms : float } | Send_failed

  type transport = Combinator.fullpath -> payload:string -> send_outcome
  (** Supplied by the host environment (simulator). *)

  type adaptive = {
    selector : Pathmon.Selector.t;
        (** Per-connection hysteresis state (do not share across conns). *)
    quality : string -> Pathmon.Estimator.t option;
        (** Live estimator lookup by path fingerprint — typically
            [Pathmon.Cache.peek] on the daemon's shared quality cache, so
            every connection to the destination pools its knowledge. *)
  }
  (** What a soft-failover connection consults before each send. *)

  type t

  (* scion-lint: rng-stream sender -- reprobe jitter draws from the connection's sender stream *)
  val dial :
    ?metrics:Telemetry.Metrics.registry ->
    ?peer:string ->
    ?reprobe:Scion_util.Backoff.policy ->
    ?rng:Scion_util.Rng.t ->
    ?adaptive:adaptive ->
    policy:policy ->
    latency_of:(Combinator.fullpath -> float) ->
    transport:transport ->
    paths:Combinator.fullpath list ->
    unit ->
    (t, string) result
  (** Picks the best path under the policy. Errors when no path passes.
      With [?metrics], the connection counts [pan.send{peer,outcome}]
      (outcome [sent]/[failed], after any failovers) and
      [pan.failovers{peer}]; [?peer] labels the series.

      With [?reprobe] (and its mandatory [?rng] for jitter draws — raises
      [Invalid_argument] otherwise), a failed path is parked rather than
      dropped forever and re-probed under the capped-exponential
      {!Scion_util.Backoff} policy: pass [~now] (seconds) to {!send} and
      every parked path whose probe timer is due is re-inserted at its
      original preference rank, so the connection returns to the preferred
      path after repair instead of sticking to the detour. Re-probing
      connections additionally count [pan.reprobes{peer}].

      With [?adaptive], every {!send} first asks the
      {!Pathmon.Selector} whether live quality (fed by a prober into the
      shared cache) says the active path has degraded past hysteresis, and
      soft-fails over to the best-scoring candidate if so — returning the
      same way once the preferred path recovers. Soft failover only
      reorders candidates; it composes with hard failover and re-probe
      parking. Adaptive connections additionally count
      [pan.soft_switches{peer}]. *)

  val current_path : t -> Combinator.fullpath
  val candidates : t -> int

  val dead_candidates : t -> int
  (** Paths currently parked awaiting their re-probe timer. *)

  val send : ?now:float -> t -> payload:string -> send_outcome
  (** On failure, fails over to the next candidate path (if any) and
      retries, so a single link failure does not surface to the caller —
      the rapid-failover behaviour marketed for gaming in Section 4.7.
      Without [?now] (or without a [?reprobe] policy) failed paths are
      dropped permanently — the pre-self-healing semantics. *)

  val failovers : t -> int

  val reprobes : t -> int
  (** Parked paths that have been given another chance by {!send}. *)

  val soft_switches : t -> int
  (** Selector-driven path changes (degradations and recoveries both). *)
end
