module Rng = Scion_util.Rng
module Rw = Scion_util.Rw

type topology_file = {
  ia : Scion_addr.Ia.t;
  border_routers : Scion_addr.Ipv4.endpoint list;
  control_service : Scion_addr.Ipv4.endpoint;
  signature : string;
}

let topology_signed_bytes t =
  let w = Rw.Writer.create () in
  Rw.Writer.raw w "TOPO1";
  Scion_addr.Ia.encode w t.ia;
  Rw.Writer.u16 w (List.length t.border_routers);
  List.iter
    (fun (e : Scion_addr.Ipv4.endpoint) ->
      Rw.Writer.u32 w (Scion_addr.Ipv4.to_int32 e.Scion_addr.Ipv4.host);
      Rw.Writer.u16 w e.Scion_addr.Ipv4.port)
    t.border_routers;
  Rw.Writer.u32 w (Scion_addr.Ipv4.to_int32 t.control_service.Scion_addr.Ipv4.host);
  Rw.Writer.u16 w t.control_service.Scion_addr.Ipv4.port;
  Rw.Writer.contents w

let sign_topology ~ia ~border_routers ~control_service ~signer =
  let unsigned = { ia; border_routers; control_service; signature = "" } in
  { unsigned with signature = Scion_crypto.Schnorr.sign signer (topology_signed_bytes unsigned) }

let verify_topology t ~key =
  Scion_crypto.Schnorr.verify key
    ~msg:(topology_signed_bytes { t with signature = "" })
    ~signature:t.signature

type server = {
  endpoint : Scion_addr.Ipv4.endpoint;
  topology : topology_file;
  trcs : Scion_cppki.Trc.t list;
}

type os = Windows | Linux | Macos

let os_name = function Windows -> "Windows" | Linux -> "Linux" | Macos -> "macOS"
let all_oses = [ Windows; Linux; Macos ]

type timing = {
  mechanism : Hints.mechanism;
  hint_ms : float;
  config_ms : float;
  total_ms : float;
}

type error =
  | No_hint_available
  | Server_unreachable
  | Topology_signature_invalid
  | Trc_chain_invalid of string

let error_to_string = function
  | No_hint_available -> "no bootstrapping hint mechanism available on this network"
  | Server_unreachable -> "bootstrapping server unreachable"
  | Topology_signature_invalid -> "topology file signature invalid"
  | Trc_chain_invalid m -> "TRC chain invalid: " ^ m

(* Latency model. Base costs reflect the protocol mechanics: DHCP needs a
   request/response exchange with a (slowish) lease server; NDP RAs are
   cached by the OS and near-instant to read; unicast DNS is one resolver
   round trip; mDNS must multicast and wait for responders. The per-OS
   factors reflect socket-stack and service-layer differences: the figure's
   Windows runs show higher medians and heavier tails, macOS sits between
   Windows and Linux. *)
let os_factor = function Windows -> 1.9 | Linux -> 1.0 | Macos -> 1.3
let os_floor_ms = function Windows -> 6.0 | Linux -> 1.0 | Macos -> 2.5
let os_tail = function Windows -> 0.35 | Linux -> 0.12 | Macos -> 0.2

let mech_base_ms = function
  | Hints.Dhcp_vivo | Hints.Dhcp_option72 -> 22.0
  | Hints.Dhcpv6_vsio -> 18.0
  | Hints.Ipv6_ndp_ra -> 3.0
  | Hints.Dns_srv | Hints.Dns_naptr -> 9.0
  | Hints.Dns_sd -> 14.0 (* PTR then SRV: two lookups *)
  | Hints.Mdns -> 42.0

let sample ~rng ~os base =
  let jitter = Rng.lognormal rng ~mu:(log (base *. 0.25)) ~sigma:0.8 in
  let spike = if Rng.float rng 1.0 < os_tail os then Rng.float rng (3.0 *. base) else 0.0 in
  os_floor_ms os +. (os_factor os *. base) +. jitter +. spike

let hint_latency_ms ~rng ~os mech = sample ~rng ~os (mech_base_ms mech)

(* Config retrieval: TCP handshake + HTTP GET /topology + GET /trcs against
   a LAN server, ~3 round trips plus server work. *)
let config_latency_ms ~rng ~os = sample ~rng ~os 16.0

type retry_info = { attempts : int; backoff_ms : float }

let transient_error = function
  | No_hint_available | Server_unreachable -> true
  | Topology_signature_invalid | Trc_chain_invalid _ -> false

let run ~rng ~os ~env ~server ~as_cert_key ?force_mechanism () =
  let mechanisms =
    match force_mechanism with
    | Some m -> if Hints.available m env <> Hints.Not_applicable then [ m ] else []
    | None -> Hints.preferred_order env
  in
  match mechanisms with
  | [] -> Error No_hint_available
  | mech :: _ -> (
      let hint_ms = hint_latency_ms ~rng ~os mech in
      match server with
      | None -> Error Server_unreachable
      | Some srv -> (
          let config_ms = config_latency_ms ~rng ~os in
          if not (verify_topology srv.topology ~key:as_cert_key) then
            Error Topology_signature_invalid
          else begin
            match srv.trcs with
            | [] -> Error (Trc_chain_invalid "server provided no TRCs")
            | base :: updates -> (
                match Scion_cppki.Trc.verify_chain ~base updates with
                | Error m -> Error (Trc_chain_invalid m)
                | Ok latest ->
                    Ok
                      ( srv.topology,
                        latest,
                        { mechanism = mech; hint_ms; config_ms; total_ms = hint_ms +. config_ms } ))
          end))

(* Bootstrapping with self-healing: transient failures (no hint yet, server
   unreachable — e.g. a control-service blackout in a fault scenario) are
   retried under the shared capped-exponential backoff, while verification
   failures (bad signature, broken TRC chain) abort immediately: retrying
   cannot make forged material verify. The backoff waits are simulated
   milliseconds folded into [total_ms]; nothing sleeps. *)
let run_with_retry ~rng ~os ~env ~server ~as_cert_key ?force_mechanism
    ?(policy = Scion_util.Backoff.default) () =
  let backoff_ms = ref 0.0 in
  let on_wait ~attempt:_ ~delay_ms = backoff_ms := !backoff_ms +. delay_ms in
  let info attempts = { attempts; backoff_ms = !backoff_ms } in
  match
    Scion_util.Backoff.retry policy ~rng ~on_wait (fun ~attempt ->
        match run ~rng ~os ~env ~server:(server ~attempt) ~as_cert_key ?force_mechanism () with
        | Ok v -> Ok (Ok v)
        | Error e when transient_error e -> Error e
        | Error e -> Ok (Error e))
  with
  | Ok (Ok (topo, trc, timing), attempts) ->
      Ok (topo, trc, { timing with total_ms = timing.total_ms +. !backoff_ms }, info attempts)
  | Ok (Error e, attempts) -> Error (e, info attempts)
  | Error g ->
      Error
        ( g.Scion_util.Backoff.last_error,
          { attempts = g.Scion_util.Backoff.attempts; backoff_ms = g.Scion_util.Backoff.waited_ms }
        )
