(** End-host bootstrapping (Sections 4.1, 5.1): hint retrieval, then
    fetching the signed local-AS topology and TRCs from the bootstrapping
    server discovered via the hint.

    Timing is modelled per mechanism and per OS; Figure 4's evaluation
    (30 runs per mechanism on Windows/Linux/macOS, median total < 150 ms)
    is regenerated from this module by the benchmark harness. *)

(** The payload served at the bootstrapping server's /topology endpoint. *)
type topology_file = {
  ia : Scion_addr.Ia.t;
  border_routers : Scion_addr.Ipv4.endpoint list;
  control_service : Scion_addr.Ipv4.endpoint;
  signature : string;  (** By the AS certificate key. *)
}

val topology_signed_bytes : topology_file -> string

val sign_topology :
  ia:Scion_addr.Ia.t ->
  border_routers:Scion_addr.Ipv4.endpoint list ->
  control_service:Scion_addr.Ipv4.endpoint ->
  signer:Scion_crypto.Schnorr.private_key ->
  topology_file

val verify_topology : topology_file -> key:Scion_crypto.Schnorr.public_key -> bool

(** A bootstrapping server: topology plus the TRCs of the local ISD. *)
type server = {
  endpoint : Scion_addr.Ipv4.endpoint;
  topology : topology_file;
  trcs : Scion_cppki.Trc.t list;  (** Base first, then updates in order. *)
}

type os = Windows | Linux | Macos

val os_name : os -> string
val all_oses : os list

type timing = {
  mechanism : Hints.mechanism;
  hint_ms : float;
  config_ms : float;
  total_ms : float;
}

type error =
  | No_hint_available
  | Server_unreachable
  | Topology_signature_invalid
  | Trc_chain_invalid of string

val error_to_string : error -> string

(* scion-lint: rng-stream bootstrap -- every discovery-latency draw comes from the bootstrap stream *)
val run :
  rng:Scion_util.Rng.t ->
  os:os ->
  env:Hints.network_env ->
  server:server option ->
  as_cert_key:Scion_crypto.Schnorr.public_key ->
  ?force_mechanism:Hints.mechanism ->
  unit ->
  (topology_file * Scion_cppki.Trc.t * timing, error) result
(** One bootstrap attempt: probe hint mechanisms in {!Hints.preferred_order}
    (or only [force_mechanism]), contact the server, verify the topology
    signature against the AS certificate key and walk the TRC chain.
    [server = None] models an AS without a bootstrapping service. *)

type retry_info = { attempts : int; backoff_ms : float }
(** How hard {!run_with_retry} had to work: attempts made and simulated
    milliseconds spent waiting between them. *)

val transient_error : error -> bool
(** Whether retrying can help: [No_hint_available] and
    [Server_unreachable] are transient; signature and TRC-chain failures
    are permanent (retrying cannot make forged material verify). *)

(* scion-lint: rng-stream bootstrap -- retries reuse the same bootstrap stream as [run] *)
val run_with_retry :
  rng:Scion_util.Rng.t ->
  os:os ->
  env:Hints.network_env ->
  server:(attempt:int -> server option) ->
  as_cert_key:Scion_crypto.Schnorr.public_key ->
  ?force_mechanism:Hints.mechanism ->
  ?policy:Scion_util.Backoff.policy ->
  unit ->
  ( topology_file * Scion_cppki.Trc.t * timing * retry_info,
    error * retry_info )
  result
(** {!run} under the shared capped-exponential backoff (default
    {!Scion_util.Backoff.default}). Transient errors are retried with the
    [server] thunk re-queried per attempt (so a server that comes back
    mid-blackout is found); permanent errors abort at once. On success the
    accumulated backoff wait is folded into [timing.total_ms] — recovery
    time is visible in the bootstrap timing, nothing sleeps. *)

(* scion-lint: rng-stream bootstrap -- the latency model draws from the bootstrap stream *)
val hint_latency_ms : rng:Scion_util.Rng.t -> os:os -> Hints.mechanism -> float
(** The latency model itself, exposed for the Figure 4 experiment. *)

(* scion-lint: rng-stream bootstrap -- the latency model draws from the bootstrap stream *)
val config_latency_ms : rng:Scion_util.Rng.t -> os:os -> float
