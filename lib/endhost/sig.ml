module Ia = Scion_addr.Ia
module Ipv4 = Scion_addr.Ipv4
module Rw = Scion_util.Rw
module Combinator = Scion_controlplane.Combinator

type route_entry = { prefix : Ipv4.t; bits : int; remote : Ia.t }

type session = {
  session_id : int;
  mutable paths : Combinator.fullpath list;  (** Current path first. *)
  mutable next_seq : int;
  mutable highest_seen : int;  (** Receiver-side replay floor. *)
  mutable sent : int;
  mutable failover_count : int;
}

type t = {
  local_ia : Ia.t;
  mutable table : route_entry list;  (** Kept sorted by descending bits. *)
  session_by_remote : (Ia.t, session) Hashtbl.t;
  mutable next_session_id : int;
}

let create ~local_ia =
  { local_ia; table = []; session_by_remote = Hashtbl.create 16; next_session_id = 1 }

let add_route t ~prefix ~bits ~remote =
  if bits < 0 || bits > 32 then invalid_arg "Sig.add_route: bad prefix length";
  if Ia.equal remote t.local_ia then invalid_arg "Sig.add_route: route to self";
  t.table <-
    List.sort
      (fun a b -> compare b.bits a.bits)
      ({ prefix; bits; remote } :: t.table)

let route t ip =
  List.find_opt (fun e -> Ipv4.in_subnet ip ~prefix:e.prefix ~bits:e.bits) t.table
  |> Option.map (fun e -> e.remote)

let routes t = List.map (fun e -> (e.prefix, e.bits, e.remote)) t.table

let session_for t remote =
  match Hashtbl.find_opt t.session_by_remote remote with
  | Some s -> s
  | None ->
      let s =
        {
          session_id = t.next_session_id;
          paths = [];
          next_seq = 0;
          highest_seen = -1;
          sent = 0;
          failover_count = 0;
        }
      in
      t.next_session_id <- t.next_session_id + 1;
      Hashtbl.replace t.session_by_remote remote s;
      s

let set_paths t ~remote paths = (session_for t remote).paths <- paths

type encapsulated = { session : int; seq : int; inner : string }

let encode_frame f =
  let w = Rw.Writer.create () in
  Rw.Writer.raw w "SIG1";
  Rw.Writer.u16 w f.session;
  Rw.Writer.u32_of_int w f.seq;
  Rw.Writer.u16 w (String.length f.inner);
  Rw.Writer.raw w f.inner;
  Rw.Writer.contents w

let decode_frame s =
  let r = Rw.Reader.of_string s in
  try
    let magic = Rw.Reader.raw r 4 in
    if magic <> "SIG1" then Error "bad SIG frame magic"
    else begin
      let session = Rw.Reader.u16 r in
      let seq = Rw.Reader.u32_to_int r in
      let len = Rw.Reader.u16 r in
      let inner = Rw.Reader.raw r len in
      Rw.Reader.expect_end r;
      Ok { session; seq; inner }
    end
  with Rw.Truncated -> Error "truncated SIG frame"

type send_result =
  | Tunnelled of {
      remote : Ia.t;
      path : Combinator.fullpath;
      frame : string;
      failovers : int;
    }
  | No_route
  | No_path

let send_ip t ~dst_ip ~packet ~try_path =
  match route t dst_ip with
  | None -> No_route
  | Some remote -> (
      let s = session_for t remote in
      let rec attempt failovers =
        match s.paths with
        | [] -> No_path
        | path :: rest ->
            if try_path path then begin
              let frame = encode_frame { session = s.session_id; seq = s.next_seq; inner = packet } in
              s.next_seq <- s.next_seq + 1;
              s.sent <- s.sent + 1;
              Tunnelled { remote; path; frame; failovers }
            end
            else begin
              (* Rotate the dead path out for this session. *)
              s.paths <- rest;
              s.failover_count <- s.failover_count + 1;
              attempt (failovers + 1)
            end
      in
      attempt 0)

let receive_frame t frame =
  match decode_frame frame with
  | Error e -> Error e
  | Ok f -> (
      (* Locate the session by id across remotes. *)
      let session =
        Scion_util.Table.fold_sorted
          (fun _ s acc -> if s.session_id = f.session then Some s else acc)
          t.session_by_remote None
      in
      match session with
      | None ->
          (* Inbound sessions from remotes we have not sent to yet get
             tracked on first contact. *)
          Ok f.inner
      | Some s ->
          if f.seq <= s.highest_seen then Error "stale or replayed frame"
          else begin
            s.highest_seen <- f.seq;
            Ok f.inner
          end)

let sessions t =
  List.rev
    (Scion_util.Table.fold_sorted
       (fun remote s acc -> (remote, s.session_id, s.sent) :: acc)
       t.session_by_remote [])
