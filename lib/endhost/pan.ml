module Combinator = Scion_controlplane.Combinator
module Hop_pred = Scion_addr.Hop_pred
module Ia = Scion_addr.Ia

type preference = Latency | Hops | Mtu | Expiry

let preference_of_string = function
  | "latency" -> Ok Latency
  | "hops" | "length" -> Ok Hops
  | "mtu" -> Ok Mtu
  | "expiry" -> Ok Expiry
  | s -> Error (Printf.sprintf "unknown preference %S" s)

let preference_to_string = function
  | Latency -> "latency"
  | Hops -> "hops"
  | Mtu -> "mtu"
  | Expiry -> "expiry"

let available_preference_policies = [ "latency"; "hops"; "mtu"; "expiry" ]

type policy = {
  sequence : Hop_pred.sequence option;
  deny_transit : Ia.Set.t;
  preferences : preference list;
}

let default_policy = { sequence = None; deny_transit = Ia.Set.empty; preferences = [ Hops ] }

let policy_of_options ?sequence ?preference () =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let* seq =
    match sequence with
    | None | Some "" -> Ok None
    | Some s -> ( match Hop_pred.parse_sequence s with Ok q -> Ok (Some q) | Error e -> Error e)
  in
  let* prefs =
    match preference with
    | None | Some "" -> Ok [ Hops ]
    | Some s ->
        List.fold_left
          (fun acc name ->
            let* acc = acc in
            let* p = preference_of_string (String.trim name) in
            Ok (p :: acc))
          (Ok [])
          (String.split_on_char ',' s)
        |> Result.map List.rev
  in
  Ok { sequence = seq; deny_transit = Ia.Set.empty; preferences = prefs }

let filter_paths policy paths =
  List.filter
    (fun p ->
      let hops = p.Combinator.interfaces in
      (match policy.sequence with
      | None -> true
      | Some seq -> Hop_pred.sequence_matches seq hops)
      && Hop_pred.deny_transit ~through:policy.deny_transit ~endpoints_ok:true hops)
    paths

let sort_paths policy ~latency_of paths =
  let criterion pref a b =
    match pref with
    | Latency -> Stdlib.compare (latency_of a) (latency_of b)
    | Hops -> Stdlib.compare (Combinator.num_hops a) (Combinator.num_hops b)
    | Mtu -> Stdlib.compare b.Combinator.mtu a.Combinator.mtu (* larger first *)
    | Expiry -> Stdlib.compare b.Combinator.expiry a.Combinator.expiry (* later first *)
  in
  let rec compare_by prefs a b =
    match prefs with
    | [] -> Stdlib.compare a.Combinator.fingerprint b.Combinator.fingerprint
    | p :: rest ->
        let c = criterion p a b in
        if c <> 0 then c else compare_by rest a b
  in
  List.sort (compare_by policy.preferences) paths

type mode = Daemon_dependent | Bootstrapper_dependent | Standalone

let mode_to_string = function
  | Daemon_dependent -> "daemon-dependent"
  | Bootstrapper_dependent -> "bootstrapper-dependent"
  | Standalone -> "standalone"

let choose_mode ~daemon_available ~bootstrapper_available =
  if daemon_available then Daemon_dependent
  else if bootstrapper_available then Bootstrapper_dependent
  else Standalone

module Conn = struct
  module M = Telemetry.Metrics

  type send_outcome = Sent of { rtt_ms : float } | Send_failed

  type transport = Combinator.fullpath -> payload:string -> send_outcome

  type obs = { o_sent : M.counter; o_failed : M.counter; o_failovers : M.counter }

  type t = {
    transport : transport;
    mutable ranked : Combinator.fullpath list;  (** Current path first. *)
    mutable failover_count : int;
    obs : obs option;
  }

  let make_obs registry ~peer =
    let base = [ ("peer", peer) ] in
    {
      o_sent = M.counter registry ~labels:(("outcome", "sent") :: base) "pan.send";
      o_failed = M.counter registry ~labels:(("outcome", "failed") :: base) "pan.send";
      o_failovers = M.counter registry ~labels:base "pan.failovers";
    }

  let dial ?metrics ?(peer = "") ~policy ~latency_of ~transport ~paths () =
    match sort_paths policy ~latency_of (filter_paths policy paths) with
    | [] -> Error "no path satisfies the policy"
    | ranked ->
        Ok
          {
            transport;
            ranked;
            failover_count = 0;
            obs = Option.map (fun registry -> make_obs registry ~peer) metrics;
          }

  let current_path t =
    match t.ranked with p :: _ -> p | [] -> invalid_arg "Conn: no paths left"

  let candidates t = List.length t.ranked

  let send t ~payload =
    let rec attempt () =
      match t.ranked with
      | [] -> Send_failed
      | path :: rest -> (
          match t.transport path ~payload with
          | Sent r -> Sent r
          | Send_failed ->
              (* Drop the dead path and retry over the next candidate. *)
              t.ranked <- rest;
              t.failover_count <- t.failover_count + 1;
              (match t.obs with None -> () | Some o -> M.inc o.o_failovers);
              attempt ())
    in
    let outcome = attempt () in
    (match t.obs with
    | None -> ()
    | Some o -> (
        match outcome with Sent _ -> M.inc o.o_sent | Send_failed -> M.inc o.o_failed));
    outcome

  let failovers t = t.failover_count
end
