module Combinator = Scion_controlplane.Combinator
module Hop_pred = Scion_addr.Hop_pred
module Ia = Scion_addr.Ia

type preference = Latency | Hops | Mtu | Expiry

let preference_of_string = function
  | "latency" -> Ok Latency
  | "hops" | "length" -> Ok Hops
  | "mtu" -> Ok Mtu
  | "expiry" -> Ok Expiry
  | s -> Error (Printf.sprintf "unknown preference %S" s)

let preference_to_string = function
  | Latency -> "latency"
  | Hops -> "hops"
  | Mtu -> "mtu"
  | Expiry -> "expiry"

let available_preference_policies = [ "latency"; "hops"; "mtu"; "expiry" ]

type policy = {
  sequence : Hop_pred.sequence option;
  deny_transit : Ia.Set.t;
  preferences : preference list;
}

let default_policy = { sequence = None; deny_transit = Ia.Set.empty; preferences = [ Hops ] }

let policy_of_options ?sequence ?preference () =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let* seq =
    match sequence with
    | None | Some "" -> Ok None
    | Some s -> ( match Hop_pred.parse_sequence s with Ok q -> Ok (Some q) | Error e -> Error e)
  in
  let* prefs =
    match preference with
    | None | Some "" -> Ok [ Hops ]
    | Some s ->
        List.fold_left
          (fun acc name ->
            let* acc = acc in
            let* p = preference_of_string (String.trim name) in
            Ok (p :: acc))
          (Ok [])
          (String.split_on_char ',' s)
        |> Result.map List.rev
  in
  Ok { sequence = seq; deny_transit = Ia.Set.empty; preferences = prefs }

let filter_paths policy paths =
  List.filter
    (fun p ->
      let hops = p.Combinator.interfaces in
      (match policy.sequence with
      | None -> true
      | Some seq -> Hop_pred.sequence_matches seq hops)
      && Hop_pred.deny_transit ~through:policy.deny_transit ~endpoints_ok:true hops)
    paths

let sort_paths policy ~latency_of paths =
  let criterion pref a b =
    match pref with
    | Latency -> Stdlib.compare (latency_of a) (latency_of b)
    | Hops -> Stdlib.compare (Combinator.num_hops a) (Combinator.num_hops b)
    | Mtu -> Stdlib.compare b.Combinator.mtu a.Combinator.mtu (* larger first *)
    | Expiry -> Stdlib.compare b.Combinator.expiry a.Combinator.expiry (* later first *)
  in
  let rec compare_by prefs a b =
    match prefs with
    | [] -> Stdlib.compare a.Combinator.fingerprint b.Combinator.fingerprint
    | p :: rest ->
        let c = criterion p a b in
        if c <> 0 then c else compare_by rest a b
  in
  List.sort (compare_by policy.preferences) paths

(* Flow placement for the traffic engine: among the policy's admissible
   paths, take the one with the most bottleneck headroom, falling back to
   the policy order on ties (strict > keeps the first, i.e. the
   policy-preferred, candidate — deterministic for equal headroom). *)
let pick_flow_path ?(policy = default_policy) ~latency_of ~headroom paths =
  match sort_paths policy ~latency_of (filter_paths policy paths) with
  | [] -> None
  | first :: rest ->
      let best, _ =
        List.fold_left
          (fun ((_, best_h) as kept) p ->
            let h = headroom p in
            if h > best_h then (p, h) else kept)
          (first, headroom first) rest
      in
      Some best

type mode = Daemon_dependent | Bootstrapper_dependent | Standalone

let mode_to_string = function
  | Daemon_dependent -> "daemon-dependent"
  | Bootstrapper_dependent -> "bootstrapper-dependent"
  | Standalone -> "standalone"

let choose_mode ~daemon_available ~bootstrapper_available =
  if daemon_available then Daemon_dependent
  else if bootstrapper_available then Bootstrapper_dependent
  else Standalone

module Conn = struct
  module M = Telemetry.Metrics

  type send_outcome = Sent of { rtt_ms : float } | Send_failed

  type transport = Combinator.fullpath -> payload:string -> send_outcome

  type adaptive = {
    selector : Pathmon.Selector.t;
    quality : string -> Pathmon.Estimator.t option;
  }

  type obs = {
    o_sent : M.counter;
    o_failed : M.counter;
    o_failovers : M.counter;
    o_reprobes : M.counter option;
        (** Registered only on re-probing connections, so legacy
            connections keep their exact snapshot shape. *)
    o_soft : M.counter option;
        (** Same discipline for adaptive connections. *)
  }

  type t = {
    transport : transport;
    mutable ranked : Combinator.fullpath list;  (** Current path first. *)
    mutable dead : (float * Combinator.fullpath) list;
        (** Failed-over paths awaiting re-probe: (due time s, path). *)
    rank : (string, int) Hashtbl.t;  (** fingerprint -> preference rank *)
    statics : (string, float) Hashtbl.t;  (** fingerprint -> dial-time latency_of *)
    fails : (string, int) Hashtbl.t;  (** fingerprint -> consecutive failures *)
    reprobe : (Scion_util.Backoff.policy * Scion_util.Rng.t) option;
    adaptive : adaptive option;
    mutable failover_count : int;
    mutable reprobe_count : int;
    mutable soft_switch_count : int;
    obs : obs option;
  }

  let make_obs registry ~peer ~reprobing ~adapting =
    let base = [ ("peer", peer) ] in
    {
      o_sent = M.counter registry ~labels:(("outcome", "sent") :: base) "pan.send";
      o_failed = M.counter registry ~labels:(("outcome", "failed") :: base) "pan.send";
      o_failovers = M.counter registry ~labels:base "pan.failovers";
      o_reprobes =
        (if reprobing then Some (M.counter registry ~labels:base "pan.reprobes") else None);
      o_soft =
        (if adapting then Some (M.counter registry ~labels:base "pan.soft_switches") else None);
    }

  let dial ?metrics ?(peer = "") ?reprobe ?rng ?adaptive ~policy ~latency_of ~transport ~paths () =
    let reprobe =
      match (reprobe, rng) with
      | Some policy, Some rng -> Some (policy, rng)
      | Some _, None -> invalid_arg "Conn.dial: ?reprobe requires ?rng for jitter draws"
      | None, _ -> None
    in
    match sort_paths policy ~latency_of (filter_paths policy paths) with
    | [] -> Error "no path satisfies the policy"
    | ranked ->
        let rank = Hashtbl.create 16 in
        let statics = Hashtbl.create 16 in
        List.iteri
          (fun i p ->
            Hashtbl.replace rank p.Combinator.fingerprint i;
            Hashtbl.replace statics p.Combinator.fingerprint (latency_of p))
          ranked;
        Ok
          {
            transport;
            ranked;
            dead = [];
            rank;
            statics;
            fails = Hashtbl.create 16;
            reprobe;
            adaptive;
            failover_count = 0;
            reprobe_count = 0;
            soft_switch_count = 0;
            obs =
              Option.map
                (fun registry ->
                  make_obs registry ~peer ~reprobing:(reprobe <> None)
                    ~adapting:(adaptive <> None))
                metrics;
          }

  let current_path t =
    match t.ranked with p :: _ -> p | [] -> invalid_arg "Conn: no paths left"

  let candidates t = List.length t.ranked
  let dead_candidates t = List.length t.dead

  let rank_of t (p : Combinator.fullpath) =
    Scion_util.Table.find_or ~default:max_int t.rank p.Combinator.fingerprint

  (* Move every due dead path back into the candidate list at its original
     preference rank, so a repaired preferred path is tried *before* the
     lower-ranked path we failed over to — this is what makes connections
     return to the preferred path after repair rather than sticking to the
     detour forever. *)
  let resurrect t ~now =
    let due, pending = List.partition (fun (at, _) -> at <= now) t.dead in
    match due with
    | [] -> ()
    | _ :: _ ->
        t.dead <- pending;
        let n = List.length due in
        t.reprobe_count <- t.reprobe_count + n;
        (match t.obs with
        | Some { o_reprobes = Some c; _ } -> M.add c n
        | Some { o_reprobes = None; _ } | None -> ());
        let merged = List.map snd due @ t.ranked in
        t.ranked <- List.stable_sort (fun a b -> Int.compare (rank_of t a) (rank_of t b)) merged

  (* Soft failover: ask the selector whether live quality says the head of
     the ranked list should no longer carry traffic, and rotate the chosen
     path to the front if so. Purely a reordering — no path is dropped or
     parked, so hard failover and re-probing compose underneath. *)
  let adapt t =
    match (t.adaptive, t.ranked) with
    | None, _ | _, [] -> ()
    | Some a, (active :: _ as ranked) ->
        let candidates =
          List.map
            (fun (p : Combinator.fullpath) ->
              {
                Pathmon.Selector.fingerprint = p.Combinator.fingerprint;
                static_ms =
                  Scion_util.Table.find_or ~default:infinity t.statics p.Combinator.fingerprint;
                estimator = a.quality p.Combinator.fingerprint;
              })
            ranked
        in
        let chosen =
          Pathmon.Selector.choose a.selector ~candidates ~active:active.Combinator.fingerprint
        in
        if not (String.equal chosen active.Combinator.fingerprint) then begin
          let front, back =
            List.partition (fun p -> String.equal p.Combinator.fingerprint chosen) ranked
          in
          t.ranked <- front @ back;
          t.soft_switch_count <- t.soft_switch_count + 1;
          match t.obs with
          | Some { o_soft = Some c; _ } -> M.inc c
          | Some { o_soft = None; _ } | None -> ()
        end

  let send ?now t ~payload =
    (match (t.reprobe, now) with
    | Some _, Some now -> resurrect t ~now
    | (Some _ | None), _ -> ());
    adapt t;
    let rec attempt () =
      match t.ranked with
      | [] -> Send_failed
      | path :: rest -> (
          match t.transport path ~payload with
          | Sent r ->
              (match t.reprobe with
              | Some _ -> Hashtbl.replace t.fails path.Combinator.fingerprint 0
              | None -> ());
              Sent r
          | Send_failed ->
              (* Drop the dead path and retry over the next candidate; with
                 a re-probe policy the path is parked until its
                 capped-exponential probe timer, not dropped forever. *)
              t.ranked <- rest;
              t.failover_count <- t.failover_count + 1;
              (match t.obs with None -> () | Some o -> M.inc o.o_failovers);
              (match (t.reprobe, now) with
              | Some (policy, rng), Some now ->
                  let failures =
                    Scion_util.Table.find_or ~default:0 t.fails path.Combinator.fingerprint + 1
                  in
                  Hashtbl.replace t.fails path.Combinator.fingerprint failures;
                  let delay_ms = Scion_util.Backoff.delay_ms policy ~rng ~attempt:failures in
                  t.dead <- (now +. (delay_ms /. 1000.0), path) :: t.dead
              | (Some _ | None), _ -> ());
              attempt ())
    in
    let outcome = attempt () in
    (match t.obs with
    | None -> ()
    | Some o -> (
        match outcome with Sent _ -> M.inc o.o_sent | Send_failed -> M.inc o.o_failed));
    outcome

  let failovers t = t.failover_count
  let reprobes t = t.reprobe_count
  let soft_switches t = t.soft_switch_count
end
