(** The SCION daemon (sciond): the end-host's control-plane broker.
    It fetches paths on demand, caches them until close to expiry, and
    keeps the TRC store. Applications in daemon-dependent mode share one
    daemon per host (shared cache); bootstrapper-dependent and standalone
    libraries embed the same logic in-process (Section 4.2.1). *)

type t

type fetch = dst:Scion_addr.Ia.t -> Scion_controlplane.Combinator.fullpath list
(** Backend query to the AS control service / path servers. *)

(* scion-lint: rng-stream daemon -- cache-expiry jitter draws from the daemon's own stream *)
val create :
  ia:Scion_addr.Ia.t ->
  fetch:fetch ->
  ?cache_ttl:float ->
  ?expiry_margin:float ->
  ?revocation_ttl:float ->
  ?retry:Scion_util.Backoff.policy ->
  ?rng:Scion_util.Rng.t ->
  ?quality:Pathmon.Cache.t ->
  ?metrics:Telemetry.Metrics.registry ->
  unit ->
  t
(** [cache_ttl] caps how long a cached path set is served (default 300 s);
    [expiry_margin] discards paths that expire within the margin (default
    60 s), mirroring the paper's path-expiration lessons.
    [revocation_ttl] (default 10 s) bounds how long an SCMP-learnt
    interface revocation suppresses paths — after it lapses the interface
    is trusted again (the data plane re-answers if it is still dead).
    With [?retry] (and its mandatory [?rng] for jitter draws), a fetch
    that returns no paths is retried under the given
    {!Scion_util.Backoff} policy; the backoff waits are simulated
    milliseconds accumulated in {!fetch_wait_ms}, never slept. Raises
    [Invalid_argument] when [?retry] is given without [?rng]. With
    [?metrics], every lookup counts into [daemon.lookups{ia,source}] with
    source [cache] or [fetch]. *)

val ia : t -> Scion_addr.Ia.t

val quality : t -> Pathmon.Cache.t
(** The host's shared per-destination path-quality cache: probers feed it,
    adaptive connections ({!Pan.Conn.adaptive}) and [showpaths] read it.
    Defaults to a fresh (metrics-less) cache when [?quality] was not
    given, so every daemon can answer quality queries. *)

type source = From_cache | Fetched

val lookup : t -> now:float -> dst:Scion_addr.Ia.t -> Scion_controlplane.Combinator.fullpath list * source
(** Valid paths to [dst]: non-near-expiry and not crossing an actively
    revoked interface. *)

val revoke : t -> now:float -> ia:Scion_addr.Ia.t -> ifid:int -> int
(** Learn that interface [ifid] of AS [ia] is down (an SCMP
    external-interface-down answer): records the revocation for
    [revocation_ttl] seconds, evicts every cached path whose hop sequence
    crosses the interface, and eagerly re-fetches destinations whose
    cached set was emptied. Returns the number of evicted paths. *)

val report_poisoned : t -> now:float -> Scion_controlplane.Combinator.fullpath -> int
(** MAC-verification feedback: traffic sent over [path] died with an
    invalid-hop-field-MAC error, so the path was served from poisoned
    control-plane state (e.g. a rogue down-segment registration). Revokes
    the path by fingerprint for [revocation_ttl] seconds — its interfaces
    may be entirely fictional, so interface revocation cannot express
    this — evicts it from the cache, and re-fetches the destination if
    that emptied its entry. Returns the number of evicted paths. *)

val handle_scmp :
  t -> now:float -> ?path:Scion_controlplane.Combinator.fullpath -> Scion_dataplane.Scmp.t -> int option
(** Dispatch an SCMP message: [External_interface_down] triggers
    {!revoke} (returning [Some evicted]); [Invalid_hop_field_mac] with
    [?path] (the path the failed probe travelled) triggers
    {!report_poisoned}; every other message is ignored ([None]). *)

val flush : t -> unit
val cache_entries : t -> int
val hits : t -> int
val misses : t -> int

val revocations : t -> int
(** Revocations learnt via {!revoke} (including re-announcements). *)

val poisoned_revocations : t -> int
(** Paths revoked by fingerprint via {!report_poisoned}. *)

val evicted_paths : t -> int
(** Total cached paths evicted by revocations. *)

val fetch_attempts : t -> int
(** Backend fetch attempts made under the retry policy (successful
    attempts included; 0 when no [?retry] was configured). *)

val fetch_wait_ms : t -> float
(** Simulated milliseconds spent in backoff waits between fetch
    attempts. *)

val store_trc : t -> Scion_cppki.Trc.t -> unit
val trc_for : t -> isd:int -> Scion_cppki.Trc.t option
(** Latest stored TRC for the ISD. *)
