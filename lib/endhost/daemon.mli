(** The SCION daemon (sciond): the end-host's control-plane broker.
    It fetches paths on demand, caches them until close to expiry, and
    keeps the TRC store. Applications in daemon-dependent mode share one
    daemon per host (shared cache); bootstrapper-dependent and standalone
    libraries embed the same logic in-process (Section 4.2.1). *)

type t

type fetch = dst:Scion_addr.Ia.t -> Scion_controlplane.Combinator.fullpath list
(** Backend query to the AS control service / path servers. *)

val create :
  ia:Scion_addr.Ia.t ->
  fetch:fetch ->
  ?cache_ttl:float ->
  ?expiry_margin:float ->
  ?metrics:Telemetry.Metrics.registry ->
  unit ->
  t
(** [cache_ttl] caps how long a cached path set is served (default 300 s);
    [expiry_margin] discards paths that expire within the margin (default
    60 s), mirroring the paper's path-expiration lessons. With [?metrics],
    every lookup counts into [daemon.lookups{ia,source}] with source
    [cache] or [fetch]. *)

val ia : t -> Scion_addr.Ia.t

type source = From_cache | Fetched

val lookup : t -> now:float -> dst:Scion_addr.Ia.t -> Scion_controlplane.Combinator.fullpath list * source
(** Valid (non-near-expiry) paths to [dst]. *)

val flush : t -> unit
val cache_entries : t -> int
val hits : t -> int
val misses : t -> int

val store_trc : t -> Scion_cppki.Trc.t -> unit
val trc_for : t -> isd:int -> Scion_cppki.Trc.t option
(** Latest stored TRC for the ISD. *)
