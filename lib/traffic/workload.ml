(* Open-loop workload: non-homogeneous Poisson arrivals (thinning against
   the diurnal peak rate), heavy-tailed Pareto flow sizes, and per-PoP
   diurnal load curves with phase offsets. Every draw comes from the
   stream handed to [attach] — conventionally [Rng.of_label seed
   "traffic"] — so attaching (or detaching) load leaves the fabric
   workload stream and every fault/pathmon stream byte-identical. *)

module Engine = Netsim.Engine
module Rng = Scion_util.Rng

type pop = { name : string; weight : float; phase_h : float }

type config = {
  base_rate_per_s : float;
  pareto_alpha : float;
  pareto_xm_bytes : float;
  max_flow_bytes : float;
  diurnal : float array;
  day_s : float;
}

let check_config c =
  let pos name v =
    if not (Float.is_finite v) || v <= 0.0 then
      invalid_arg (Printf.sprintf "Workload: %s must be finite and > 0 (got %g)" name v)
  in
  pos "base_rate_per_s" c.base_rate_per_s;
  pos "pareto_alpha" c.pareto_alpha;
  pos "pareto_xm_bytes" c.pareto_xm_bytes;
  pos "max_flow_bytes" c.max_flow_bytes;
  if c.max_flow_bytes < c.pareto_xm_bytes then
    invalid_arg "Workload: max_flow_bytes must be >= pareto_xm_bytes";
  pos "day_s" c.day_s;
  if Array.length c.diurnal = 0 then invalid_arg "Workload: diurnal curve must be non-empty";
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0.0 then
        invalid_arg (Printf.sprintf "Workload: diurnal multipliers must be finite and >= 0 (got %g)" v))
    c.diurnal;
  if not (Array.exists (fun v -> v > 0.0) c.diurnal) then
    invalid_arg "Workload: diurnal curve must have a positive point"

(* A mild day shape (UTC-ish): overnight trough, business-hours plateau,
   evening peak — mean close to 1 so base_rate_per_s reads as the daily
   average arrival rate. *)
let default_diurnal =
  [|
    0.55; 0.45; 0.40; 0.40; 0.45; 0.55; 0.70; 0.90; 1.10; 1.25; 1.30; 1.30;
    1.25; 1.25; 1.30; 1.35; 1.40; 1.45; 1.40; 1.25; 1.05; 0.90; 0.75; 0.65;
  |]

let default_config =
  {
    base_rate_per_s = 4.0;
    pareto_alpha = 1.4;
    pareto_xm_bytes = 30_000.0;
    max_flow_bytes = 30_000_000.0;
    diurnal = default_diurnal;
    day_s = 86_400.0;
  }

let make_config ?(base_rate_per_s = default_config.base_rate_per_s)
    ?(pareto_alpha = default_config.pareto_alpha)
    ?(pareto_xm_bytes = default_config.pareto_xm_bytes)
    ?(max_flow_bytes = default_config.max_flow_bytes) ?(diurnal = default_config.diurnal)
    ?(day_s = default_config.day_s) () =
  let c = { base_rate_per_s; pareto_alpha; pareto_xm_bytes; max_flow_bytes; diurnal; day_s } in
  check_config c;
  c

(* Piecewise-linear interpolation over the day curve, wrapping at both
   ends; [h] is a (possibly phase-shifted) hour-equivalent position. *)
let diurnal_at c h =
  let n = Array.length c.diurnal in
  let fn = float_of_int n in
  let h = Float.rem (Float.rem h fn +. fn) fn in
  let i = int_of_float h in
  let i = if i >= n then n - 1 else i in
  let frac = h -. float_of_int i in
  let a = c.diurnal.(i) and b = c.diurnal.((i + 1) mod n) in
  a +. ((b -. a) *. frac)

let diurnal_peak c = Array.fold_left Float.max 0.0 c.diurnal

(* Hour-equivalent position within the day of [now] seconds since the
   generator attached: the diurnal day starts at attach, so the arrival
   sequence is a pure function of (stream, config, pops, duration) no
   matter where on the engine clock the generator is attached. *)
let hours_at c now =
  let n = float_of_int (Array.length c.diurnal) in
  Float.rem now c.day_s /. c.day_s *. n

let mean_flow_bytes c =
  (* Untruncated Pareto mean (alpha > 1); with alpha <= 1 the mean is
     capped by the truncation, so report the cap as the scale. *)
  if c.pareto_alpha > 1.0 then
    Float.min c.max_flow_bytes (c.pareto_alpha *. c.pareto_xm_bytes /. (c.pareto_alpha -. 1.0))
  else c.max_flow_bytes

let pareto_size c rng =
  let u = Rng.float rng 1.0 in
  let raw = c.pareto_xm_bytes *. ((1.0 -. u) ** (-1.0 /. c.pareto_alpha)) in
  Float.min c.max_flow_bytes raw

type t = {
  config : config;
  pops : pop array;
  total_weight : float;
  until : float;
  mutable arrivals : int;
  mutable candidates : int;
}

(* Instantaneous contribution of each PoP at time [now]:
   weight * diurnal(now + phase). The aggregate arrival rate is
   base_rate * sum(contributions) / sum(weights), which never exceeds the
   thinning envelope base_rate * peak. *)
let pop_weights_at t now scratch =
  let c = t.config in
  let sum = ref 0.0 in
  Array.iteri
    (fun i p ->
      let w = p.weight *. diurnal_at c (hours_at c now +. p.phase_h) in
      scratch.(i) <- w;
      sum := !sum +. w)
    t.pops;
  !sum

let pick_weighted rng scratch sum ~skip =
  (* Draw proportional to scratch weights, optionally excluding [skip]
     (redistributing its mass). Walk order is array order: deterministic. *)
  let sum = match skip with None -> sum | Some i -> sum -. scratch.(i) in
  let u = Rng.float rng sum in
  let acc = ref 0.0 in
  let chosen = ref (-1) in
  Array.iteri
    (fun i w ->
      if !chosen < 0 && (match skip with Some s -> i <> s | None -> true) then begin
        acc := !acc +. w;
        if u < !acc then chosen := i
      end)
    scratch;
  if !chosen >= 0 then !chosen
  else
    (* Float summation slack on the last candidate: take the final
       eligible index. *)
    let last = ref 0 in
    Array.iteri
      (fun i _ -> match skip with Some s when i = s -> () | _ -> last := i)
      scratch;
    !last

let attach ~engine ~rng ?(config = default_config) ~pops ~duration_s ~sink () =
  check_config config;
  if List.length pops < 2 then invalid_arg "Workload.attach: need at least two PoPs";
  List.iter
    (fun p ->
      if not (Float.is_finite p.weight) || p.weight <= 0.0 then
        invalid_arg (Printf.sprintf "Workload.attach: PoP %s weight must be finite and > 0" p.name);
      if not (Float.is_finite p.phase_h) then
        invalid_arg (Printf.sprintf "Workload.attach: PoP %s phase must be finite" p.name))
    pops;
  if not (Float.is_finite duration_s) || duration_s <= 0.0 then
    invalid_arg (Printf.sprintf "Workload.attach: duration_s must be finite and > 0 (got %g)" duration_s);
  let pops = Array.of_list pops in
  let total_weight = Array.fold_left (fun acc p -> acc +. p.weight) 0.0 pops in
  let start = Engine.now engine in
  let t =
    { config; pops; total_weight; until = start +. duration_s; arrivals = 0; candidates = 0 }
  in
  let peak_rate = config.base_rate_per_s *. diurnal_peak config in
  let scratch = Array.make (Array.length pops) 0.0 in
  (* Thinning: candidate points at the peak rate, each accepted with
     probability rate(t)/peak. Draw order per candidate is fixed — gap,
     accept, then (src, dst, size) only when accepted — so the stream is
     a pure function of (seed, config, pops, duration). *)
  let rec arm time =
    let gap = Rng.exponential rng ~rate:peak_rate in
    let time = time +. gap in
    if time <= t.until then
      Engine.schedule_at engine ~time (fun () ->
          t.candidates <- t.candidates + 1;
          let sum = pop_weights_at t (time -. start) scratch in
          let rate = config.base_rate_per_s *. sum /. t.total_weight in
          let accept = Rng.float rng 1.0 < rate /. peak_rate in
          if accept then begin
            let src = pick_weighted rng scratch sum ~skip:None in
            let dst = pick_weighted rng scratch sum ~skip:(Some src) in
            let size = pareto_size config rng in
            t.arrivals <- t.arrivals + 1;
            sink ~now:time ~src:t.pops.(src) ~dst:t.pops.(dst) ~size_bytes:size
          end;
          arm time)
  in
  arm start;
  t

let arrivals t = t.arrivals
let candidates t = t.candidates
