(** Open-loop workload generation for the traffic engine: Poisson
    arrivals modulated by per-PoP diurnal load curves (non-homogeneous via
    thinning), heavy-tailed truncated-Pareto flow sizes, and weighted
    source/destination PoP selection.

    Determinism contract: every draw comes from the stream passed to
    {!attach} — conventionally [Rng.of_label seed "traffic"] — and the
    generator schedules only its own timer chain, so attaching load never
    perturbs the fabric workload stream or any fault/pathmon stream
    (pinned by [test/test_traffic.ml]). *)

type pop = {
  name : string;  (** PoP identifier, matched to topology by the caller. *)
  weight : float;  (** Relative share of offered load ([> 0]). *)
  phase_h : float;  (** Diurnal phase offset in curve points ("hours"). *)
}

type config = {
  base_rate_per_s : float;  (** Aggregate arrival rate at multiplier 1. *)
  pareto_alpha : float;  (** Pareto shape; heavier tail as it approaches 1. *)
  pareto_xm_bytes : float;  (** Pareto scale = minimum flow size. *)
  max_flow_bytes : float;  (** Truncation cap on drawn sizes. *)
  diurnal : float array;  (** Day curve multipliers, wrapped + interpolated. *)
  day_s : float;  (** Simulated seconds per diurnal day. *)
}

val default_config : config
(** ~4 flows/s, Pareto(1.4, 30 KB) capped at 30 MB, a mild 24-point day
    curve with mean ≈ 1, 86 400 s day. *)

val make_config :
  ?base_rate_per_s:float ->
  ?pareto_alpha:float ->
  ?pareto_xm_bytes:float ->
  ?max_flow_bytes:float ->
  ?diurnal:float array ->
  ?day_s:float ->
  unit ->
  config
(** Raises [Invalid_argument] on non-positive/non-finite rates, shapes,
    sizes or day length, a cap below the scale, or an empty/negative/
    all-zero diurnal curve. *)

val mean_flow_bytes : config -> float
(** Mean of the (untruncated) size distribution when [pareto_alpha > 1],
    clamped to the cap — the scale used to convert arrival rates into
    offered bps. *)

val diurnal_at : config -> float -> float
(** Interpolated curve multiplier at an hour-equivalent position
    (wraps). *)

type t

(* scion-lint: rng-stream traffic -- every workload draw comes from the dedicated traffic stream *)
val attach :
  engine:Netsim.Engine.t ->
  rng:Scion_util.Rng.t ->
  ?config:config ->
  pops:pop list ->
  duration_s:float ->
  sink:(now:float -> src:pop -> dst:pop -> size_bytes:float -> unit) ->
  unit ->
  t
(** Schedule arrivals on [engine] from now until now + [duration_s],
    calling [sink] for each accepted arrival as the engine reaches it.
    Source PoPs are drawn proportional to [weight × diurnal(t + phase)],
    destinations by weight among the remaining PoPs. The diurnal day
    starts at attach time, so the arrival sequence is a pure function of
    (stream, config, pops, duration) — re-deriving the stream replays
    byte-identical arrivals wherever the engine clock stands. Raises
    [Invalid_argument] on fewer than two PoPs, non-positive weights, or a
    non-positive duration. *)

val arrivals : t -> int
(** Accepted arrivals delivered to the sink so far. *)

val candidates : t -> int
(** Thinning candidates examined so far (accepted + rejected) — exposed
    for the arrival-rate statistics test. *)
