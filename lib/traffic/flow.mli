(** The fluid (flow-level) half of the hybrid-fidelity traffic model.

    Active flows split every capacity-armed link they cross by max-min
    fair share (progressive filling), recomputed on each arrival,
    departure and reroute; between recomputes every rate is constant, so
    per-flow byte integration is exact, not sampled. The allocation is
    pushed into {!Netsim.Net.set_fluid_load}, which is how the
    packet-level foreground sees background load as consumed capacity.

    Determinism contract: the flow engine draws {b no} randomness — every
    stochastic choice lives in {!Workload} on its private ["traffic"]
    stream — and it schedules engine events only for flows it carries, so
    attaching traffic to a simulation perturbs neither the fabric's
    workload draws nor any fault/pathmon stream (pinned by
    [test/test_traffic.ml]). *)

type hop = { link : Netsim.Net.link_id; from : Netsim.Net.node }
(** One directed traversal: [link] entered from endpoint [from]. *)

type t

val create :
  ?metrics:Telemetry.Metrics.registry ->
  ?labels:Telemetry.Metrics.labels ->
  ?min_rate_bps:float ->
  ?on_complete:(fct_s:float -> size_bytes:float -> unit) ->
  engine:Netsim.Engine.t ->
  Netsim.Net.t ->
  t
(** A flow engine over [net] driven by [engine] timers. [min_rate_bps]
    (default [0.], i.e. admit everything) rejects arrivals whose
    bottleneck share would fall below the floor — the fluid analogue of an
    access-queue drop. [on_complete] observes each completion with its
    flow completion time. With [metrics], maintains the [traffic.*]
    series. Raises [Invalid_argument] on a NaN/negative/infinite
    [min_rate_bps]. *)

val offer : t -> hops:hop list -> size_bytes:float -> [ `Started of int | `Rejected ]
(** Offer a flow of [size_bytes] over the directed hop sequence. Every hop
    link must be capacity-armed ([Invalid_argument] otherwise, as is an
    empty hop list or a non-positive/non-finite size). Returns
    [`Rejected] (counted, with its bytes) when the admission floor would
    be violated; otherwise starts the flow and reallocates. *)

val reroute : t -> int -> hops:hop list -> unit
(** Move an active flow onto a new hop sequence and reallocate. Raises
    [Invalid_argument] if the flow is not active or a hop is unarmed. *)

val recompute_now : t -> unit
(** Force an elapse + completion sweep + reallocation at the engine's
    current time (exposed for the fair-share micro benchmark; the engine
    calls it internally on every membership change). *)

val active_count : t -> int

val rate : t -> int -> float option
(** Current allocated rate of an active flow, bps; [None] once it
    completed or was never admitted. *)

type stats = {
  started : int;
  completed : int;
  rejected : int;
  offered_bytes : float;
  delivered_bytes : float;
  rejected_bytes : float;
}

val stats : t -> stats
(** Conservation invariant once every flow has drained:
    [offered_bytes = delivered_bytes + rejected_bytes] (pinned by qcheck
    in [test/test_traffic.ml]). *)
