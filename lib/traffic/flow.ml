(* The fluid flow layer: active flows hold a max-min fair share of every
   capacity-armed link they cross, recomputed on each arrival, departure
   and reroute, and pushed into [Net.set_fluid_load] so the packet-level
   foreground sees the background load as consumed capacity (hybrid
   fidelity). The engine drives completions with a single pending timer
   for the earliest-finishing flow; a generation counter invalidates
   timers made stale by a recompute. Nothing here draws randomness — all
   stochasticity lives in [Workload] — so attaching a flow engine never
   perturbs any other RNG stream. *)

module Engine = Netsim.Engine
module Net = Netsim.Net
module M = Telemetry.Metrics

type hop = { link : Net.link_id; from : Net.node }

type flow = {
  id : int;
  mutable hops : hop array;
  size : float;  (* bytes, as offered *)
  t_start : float;
  (* Bits left to deliver: rates are bps, so integration stays in bits and
     the byte/bit factor appears exactly once, at offer. *)
  mutable remaining : float;
  mutable rate : float;
  (* Water-filling scratch: true once the flow's rate is frozen at its
     bottleneck share during the current recompute. *)
  mutable frozen : bool;
}

type stats = {
  started : int;
  completed : int;
  rejected : int;
  offered_bytes : float;
  delivered_bytes : float;
  rejected_bytes : float;
}

type metrics = {
  m_started : M.counter;
  m_completed : M.counter;
  m_rejected : M.counter;
  m_offered : M.counter;
  m_delivered : M.counter;
  m_active : M.gauge;
  m_fct : M.summary;
  m_recomputes : M.counter;
}

type t = {
  engine : Engine.t;
  net : Net.t;
  min_rate_bps : float;
  mutable next_id : int;
  (* Active flows in ascending id order (append at tail): the recompute
     and tie-breaks iterate this order, never a hash order. *)
  mutable active : flow list;
  mutable n_active : int;
  mutable last_update : float;
  mutable generation : int;
  (* Directed links that carried fluid load after the last push, zeroed
     before each new push so departures release their capacity. *)
  mutable loaded : (Net.link_id * Net.node) list;
  mutable started : int;
  mutable completed : int;
  mutable rejected : int;
  mutable offered_bytes : float;
  mutable delivered_bytes : float;
  mutable rejected_bytes : float;
  on_complete : (fct_s:float -> size_bytes:float -> unit) option;
  metrics : metrics option;
}

(* Flows within half a bit of done are complete: simulated times are
   compared with <=, never with float equality. *)
let eps_bits = 0.5

let create ?metrics ?labels ?(min_rate_bps = 0.0) ?on_complete ~engine net =
  if not (Float.is_finite min_rate_bps) || min_rate_bps < 0.0 then
    invalid_arg
      (Printf.sprintf "Flow.create: min_rate_bps must be finite and >= 0 (got %g)" min_rate_bps);
  let metrics =
    Option.map
      (fun reg ->
        {
          m_started = M.counter reg ?labels "traffic.flows_started";
          m_completed = M.counter reg ?labels "traffic.flows_completed";
          m_rejected = M.counter reg ?labels "traffic.flows_rejected";
          m_offered = M.counter reg ?labels "traffic.offered_bytes";
          m_delivered = M.counter reg ?labels "traffic.delivered_bytes";
          m_active = M.gauge reg ?labels "traffic.active_flows";
          m_fct = M.summary reg ?labels "traffic.fct_s";
          m_recomputes = M.counter reg ?labels "traffic.recomputes";
        })
      metrics
  in
  {
    engine;
    net;
    min_rate_bps;
    next_id = 0;
    active = [];
    n_active = 0;
    last_update = Engine.now engine;
    generation = 0;
    loaded = [];
    started = 0;
    completed = 0;
    rejected = 0;
    offered_bytes = 0.0;
    delivered_bytes = 0.0;
    rejected_bytes = 0.0;
    on_complete;
    metrics;
  }

let with_metrics t f = match t.metrics with None -> () | Some m -> f m

(* Advance every active flow by the time since the last allocation change
   at its current rate. Rates are constant between recomputes, so this is
   exact fluid integration, not an approximation. *)
let elapse t =
  let now = Engine.now t.engine in
  let dt = now -. t.last_update in
  if dt > 0.0 then
    List.iter
      (fun f -> f.remaining <- Float.max 0.0 (f.remaining -. (f.rate *. dt)))
      t.active;
  t.last_update <- now

(* Max-min fair share by progressive filling. Directed links are keyed
   (link, from) and processed in ascending key order; each round freezes
   the flows of the link with the smallest fair share. O(L^2 + L*F) per
   recompute — flows are bulk background load, deliberately off the
   per-packet hot path. *)
module LMap = Map.Make (struct
  type t = Net.link_id * Net.node

  let compare = compare
end)

let allocate t =
  List.iter (fun f -> f.frozen <- false) t.active;
  (* Directed links in use → the flows crossing them, keyed and iterated
     in ascending (link, from) order. Flow lists keep arrival (id) order. *)
  let usage =
    List.fold_left
      (fun acc f ->
        Array.fold_left
          (fun acc h ->
            LMap.update (h.link, h.from)
              (fun prev -> Some (f :: Option.value prev ~default:[]))
              acc)
          acc f.hops)
      LMap.empty t.active
  in
  let links =
    List.map
      (fun ((link, from), flows) ->
        let cap =
          match Net.capacity t.net link with
          | Some (bps, _) -> bps
          | None ->
              invalid_arg
                (Printf.sprintf "Flow: link %d crossed by a flow has no capacity armed" link)
        in
        ((link, from), cap, List.rev flows))
      (LMap.bindings usage)
  in
  (* Progressive filling: each round the link with the smallest fair share
     over its unfrozen flows (ties to the smallest key, by iteration
     order) freezes those flows at that share. *)
  let remaining = ref links in
  let continue = ref true in
  while !continue do
    remaining :=
      List.filter
        (fun (_, _, flows) -> List.exists (fun f -> not f.frozen) flows)
        !remaining;
    match !remaining with
    | [] -> continue := false
    | live ->
        let best = ref None in
        List.iter
          (fun (_key, cap, flows) ->
            let frozen_load, unfrozen =
              List.fold_left
                (fun (load, n) f -> if f.frozen then (load +. f.rate, n) else (load, n + 1))
                (0.0, 0) flows
            in
            if unfrozen > 0 then begin
              let share = Float.max 0.0 (cap -. frozen_load) /. float_of_int unfrozen in
              match !best with
              | Some (s, _) when s <= share -> ()
              | _ -> best := Some (share, flows)
            end)
          live;
        (match !best with
        | None -> continue := false
        | Some (share, flows) ->
            List.iter
              (fun f ->
                if not f.frozen then begin
                  f.frozen <- true;
                  f.rate <- share
                end)
              flows)
  done;
  (* Any flow crossing no armed link at all (impossible today: hops are
     validated at offer) would stay unfrozen; pin it to zero rate. *)
  List.iter (fun f -> if not f.frozen then f.rate <- 0.0) t.active;
  (* Push the per-directed-link sums into the fabric, releasing links that
     no longer carry load. *)
  List.iter (fun (link, from) -> Net.set_fluid_load t.net link ~from ~bps:0.0) t.loaded;
  let sums =
    List.fold_left
      (fun acc f ->
        Array.fold_left
          (fun acc h ->
            LMap.update (h.link, h.from)
              (fun prev -> Some (f.rate +. Option.value prev ~default:0.0))
              acc)
          acc f.hops)
      LMap.empty t.active
  in
  LMap.iter (fun (link, from) bps -> Net.set_fluid_load t.net link ~from ~bps) sums;
  t.loaded <- List.map fst (LMap.bindings sums);
  with_metrics t (fun m -> M.inc m.m_recomputes)

let rec finish_due t =
  let now = Engine.now t.engine in
  let due, still = List.partition (fun f -> f.remaining <= eps_bits) t.active in
  t.active <- still;
  t.n_active <- List.length still;
  List.iter
    (fun f ->
      t.completed <- t.completed + 1;
      t.delivered_bytes <- t.delivered_bytes +. f.size;
      let fct = now -. f.t_start in
      with_metrics t (fun m ->
          M.inc m.m_completed;
          M.add m.m_delivered (int_of_float f.size);
          M.record m.m_fct fct;
          M.set m.m_active (float_of_int t.n_active));
      match t.on_complete with None -> () | Some cb -> cb ~fct_s:fct ~size_bytes:f.size)
    due

and schedule_next t =
  match t.active with
  | [] -> ()
  | flows ->
      let soonest =
        List.fold_left
          (fun acc f ->
            if f.rate <= 0.0 then acc
            else
              let eta = f.remaining /. f.rate in
              match acc with Some best when best <= eta -> acc | _ -> Some eta)
          None flows
      in
      (match soonest with
      | None -> ()
      | Some eta ->
          let gen = t.generation in
          let now = Engine.now t.engine in
          Engine.schedule_at t.engine ~time:(now +. eta) (fun () ->
              if gen = t.generation then recompute t))

and recompute t =
  t.generation <- t.generation + 1;
  elapse t;
  finish_due t;
  allocate t;
  schedule_next t

(* Cheap deterministic admission bound: the new flow's share on each hop
   can be no better than capacity over the flows already there plus
   itself. Rejecting below [min_rate_bps] models access-queue overflow for
   background load — the fluid analogue of a tail drop. *)
let admissible t hops =
  t.min_rate_bps <= 0.0
  || Array.for_all
       (fun h ->
         match Net.capacity t.net h.link with
         | None -> false
         | Some (bps, _) ->
             let crossing =
               List.fold_left
                 (fun acc f ->
                   if Array.exists (fun h' -> h'.link = h.link && h'.from = h.from) f.hops then
                     acc + 1
                   else acc)
                 0 t.active
             in
             bps /. float_of_int (crossing + 1) >= t.min_rate_bps)
       hops

let offer t ~hops ~size_bytes =
  if not (Float.is_finite size_bytes) || size_bytes <= 0.0 then
    invalid_arg (Printf.sprintf "Flow.offer: size_bytes must be finite and > 0 (got %g)" size_bytes);
  if hops = [] then invalid_arg "Flow.offer: empty hop list";
  let hops = Array.of_list hops in
  Array.iter
    (fun h ->
      match Net.capacity t.net h.link with
      | Some _ -> ()
      | None ->
          invalid_arg
            (Printf.sprintf "Flow.offer: link %d has no capacity armed (call Net.set_capacity)"
               h.link))
    hops;
  t.offered_bytes <- t.offered_bytes +. size_bytes;
  with_metrics t (fun m -> M.add m.m_offered (int_of_float size_bytes));
  if not (admissible t hops) then begin
    t.rejected <- t.rejected + 1;
    t.rejected_bytes <- t.rejected_bytes +. size_bytes;
    with_metrics t (fun m -> M.inc m.m_rejected);
    `Rejected
  end
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let f =
      {
        id;
        hops;
        size = size_bytes;
        t_start = Engine.now t.engine;
        remaining = size_bytes *. 8.0;
        rate = 0.0;
        frozen = false;
      }
    in
    (* Elapse the others before the population changes, then append in id
       order and reallocate. *)
    elapse t;
    t.active <- t.active @ [ f ];
    t.n_active <- t.n_active + 1;
    t.started <- t.started + 1;
    with_metrics t (fun m ->
        M.inc m.m_started;
        M.set m.m_active (float_of_int t.n_active));
    t.generation <- t.generation + 1;
    allocate t;
    schedule_next t;
    `Started id
  end

let reroute t id ~hops =
  if hops = [] then invalid_arg "Flow.reroute: empty hop list";
  let hops = Array.of_list hops in
  Array.iter
    (fun h ->
      match Net.capacity t.net h.link with
      | Some _ -> ()
      | None -> invalid_arg (Printf.sprintf "Flow.reroute: link %d has no capacity armed" h.link))
    hops;
  match List.find_opt (fun f -> f.id = id) t.active with
  | None -> invalid_arg (Printf.sprintf "Flow.reroute: no active flow %d" id)
  | Some f ->
      elapse t;
      f.hops <- hops;
      t.generation <- t.generation + 1;
      allocate t;
      schedule_next t

let recompute_now t = recompute t
let active_count t = t.n_active
let rate t id = Option.map (fun f -> f.rate) (List.find_opt (fun f -> f.id = id) t.active)

let stats t =
  {
    started = t.started;
    completed = t.completed;
    rejected = t.rejected;
    offered_bytes = t.offered_bytes;
    delivered_bytes = t.delivered_bytes;
    rejected_bytes = t.rejected_bytes;
  }
