(** Discrete-event simulation engine: a time-ordered event queue with
    stable FIFO ordering for simultaneous events. All latencies in the
    SCIERA experiments come out of this engine (packet-level mode) or out
    of the analytic fast path built on the same link model. *)

type t

val create : ?start:float -> unit -> t
val now : t -> float
val schedule : t -> after:float -> (unit -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t +. after]. [after] must be
    non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past. *)

val run : ?until:float -> t -> unit
(** Process events in order until the queue drains or simulated time would
    exceed [until]. The clock ends at the last processed event (or [until]
    if given and reached). *)

val step : t -> bool
(** Process a single event; [false] when the queue is empty. *)

val pending : t -> int

val events_processed : t -> int
(** Total events executed since [create]. *)

val on_event : t -> (time:float -> pending:int -> unit) -> unit
(** Register an observer called after every processed event with the event's
    simulated time and the remaining queue depth. Observers run in
    registration order and must not raise; telemetry hooks attach here so
    the engine itself stays free of any telemetry dependency. *)
