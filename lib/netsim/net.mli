(** The link-level network model: named nodes joined by links with
    propagation latency, jitter, loss, bandwidth and administrative state.

    Two consumers share this model:
    - the {b packet-level} mode ({!transmit}) schedules real deliveries on
      an {!Engine.t}, with FIFO serialisation per link direction — used by
      the end-host stack simulations and the examples;
    - the {b analytic} mode ({!path_rtt}) samples end-to-end RTTs directly
      — used for the 20-day measurement study where simulating ~90 M pings
      packet by packet would be pointless.

    Latency jitter is exponential on top of the base propagation delay;
    losses are independent Bernoulli per traversal. Links can be marked
    down (failures, Figure 10c) or degraded by extra latency (maintenance
    windows, Figure 7). *)

type t
type node = int
type link_id = int

(* scion-lint: rng-stream fabric -- the fabric owns this stream; observers must use the _with variants *)
val create : rng:Scion_util.Rng.t -> t

val add_node : t -> string -> node
(** Raises [Invalid_argument] on duplicate names. *)

val node_of_name : t -> string -> node option
val name_of_node : t -> node -> string
val num_nodes : t -> int

type link_params = {
  latency_ms : float;  (** One-way propagation delay. *)
  jitter_ms : float;  (** Mean of the exponential jitter component. *)
  loss : float;  (** Per-traversal loss probability. *)
  bandwidth_mbps : float;
}

val default_params : link_params

val add_link : t -> node -> node -> link_params -> link_id
(** Raises [Invalid_argument] on a self loop, an unknown endpoint, or bad
    parameters: NaN/negative/infinite [latency_ms] or [jitter_ms], [loss]
    outside [\[0, 1\]], or non-positive [bandwidth_mbps]. *)

val endpoints : t -> link_id -> node * node
val params : t -> link_id -> link_params
val num_links : t -> int
val links_of : t -> node -> link_id list

val set_link_up : t -> link_id -> bool -> unit
val link_up : t -> link_id -> bool
val set_extra_latency : t -> link_id -> float -> unit
(** Additive one-way latency in ms, for maintenance/degradation windows.
    Raises [Invalid_argument] when the value is NaN, negative or infinite
    (a negative maintenance window would silently corrupt RTT sampling). *)

val extra_latency : t -> link_id -> float

val set_extra_loss : t -> link_id -> float -> unit
(** Additive per-traversal loss probability, for loss bursts (fault
    injection). Effective loss is [min 1 (params.loss + extra)]. Raises
    [Invalid_argument] outside [\[0, 1\]]. With extra loss at [0.] the RNG
    draw sequence is identical to a fabric without bursts. *)

val extra_loss : t -> link_id -> float

(** {1 Capacity and queueing (opt-in congestion model)}

    Arming a link with {!set_capacity} switches its packet-level
    serialisation from the nominal [bandwidth_mbps] to an explicit
    capacity budget shared with a fluid (flow-level) background load, and
    bounds the per-direction FIFO with tail drop ([Queue_full]). Links
    never armed behave byte-identically to the pre-capacity model — same
    delivery times, same RNG draw sequence, same engine event count —
    which is what keeps every pre-existing golden snapshot stable. *)

val set_capacity : t -> link_id -> bps:float -> queue_pkts:int -> unit
(** Arm (or re-arm, resetting queue/fluid state) the congestion model on a
    link: [bps] is the serialisation capacity per direction, [queue_pkts]
    the bounded FIFO depth per direction. Raises [Invalid_argument] when
    [bps] is NaN, infinite or [<= 0], or when [queue_pkts < 1]. *)

val capacity : t -> link_id -> (float * int) option
(** [(bps, queue_pkts)] when armed. *)

val clear_capacity : t -> link_id -> unit
(** Return the link to the legacy latency/loss-only model. *)

val set_fluid_load : t -> link_id -> from:node -> bps:float -> unit
(** Declare the aggregate fluid (flow-level) load crossing the link in the
    direction leaving [from]. The packet path serialises over what the
    fluid load leaves free (with a 1% residual floor). Raises
    [Invalid_argument] on an unarmed link, a non-endpoint [from], or a
    NaN/negative/infinite [bps]. Owned by [Traffic.Flow]; callers other
    than a flow engine should treat it as read-only via {!fluid_load}. *)

val fluid_load : t -> link_id -> from:node -> float
(** Current fluid load in bps leaving [from]; [0.] when unarmed. *)

val queue_depth : t -> link_id -> from:node -> int
(** Packets currently queued/serialising in the direction leaving [from];
    [0] when unarmed. *)

val utilisation : t -> link_id -> from:node -> float
(** Fluid load as a fraction of capacity, clamped to [\[0, 1\]]; [0.] when
    unarmed. The bandwidth signal pathmon's estimator consumes. *)

val queueing_delay_ms : t -> link_id -> from:node -> float
(** Time for the currently queued bytes to drain at the residual (after
    fluid load) capacity, in ms; [0.] when unarmed. The queueing-delay
    component a latency sample over the link would incur right now. *)

val sample_one_way : t -> link_id -> [ `Delivered of float | `Lost ]
(** One traversal: [`Delivered ms] or [`Lost]. Down links always lose. *)

(* scion-lint: rng-stream caller -- draws come from the observer's private stream, never the fabric's *)
val sample_one_way_with :
  t -> rng:Scion_util.Rng.t -> link_id -> [ `Delivered of float | `Lost ]
(** {!sample_one_way}, but the loss and jitter draws come from the caller's
    [rng] instead of the fabric's own stream. Observers with private
    streams (the [pathmon] prober) use this so their sampling never
    perturbs workload draws. *)

val path_rtt : t -> link_id list -> [ `Rtt of float | `Lost ]
(** Round trip over the link sequence (forward then back, independent
    samples). Any lost traversal loses the ping. *)

(* scion-lint: rng-stream caller -- draws come from the observer's private stream, never the fabric's *)
val path_rtt_with :
  t -> rng:Scion_util.Rng.t -> link_id list -> [ `Rtt of float | `Lost ]
(** {!path_rtt} drawing every sample from the caller's [rng] — the
    RNG-isolated variant probers must use. *)

val path_base_latency : t -> link_id list -> float
(** Sum of base + extra latencies, one way, no jitter — the deterministic
    component used for path ranking. *)

(** {1 Link monitoring}

    A monitor observes every packet-level send attempt: [Tx] when a packet
    starts serialising (with the FIFO wait it incurred), [Rx] when it is
    delivered (emitted just before the arrival callback runs), and [Drop]
    when the link was down or the loss draw failed. Attaching or detaching
    a monitor never changes simulation behaviour — in particular, the RNG
    draw sequence is identical with and without one. *)

type drop_cause =
  | Link_down
  | Random_loss
  | Queue_full  (** Bounded FIFO tail drop on a capacity-armed link. *)

type link_event =
  | Tx of { link : link_id; src : node; size_bytes : int; wait_s : float }
      (** [wait_s] is the serialisation-queue wait in seconds. *)
  | Rx of { link : link_id; dst : node; size_bytes : int }
  | Drop of { link : link_id; src : node; size_bytes : int; cause : drop_cause }

val set_monitor : t -> (link_event -> unit) -> unit
(** Install the monitor (replacing any previous ones). *)

val add_monitor : t -> (link_event -> unit) -> unit
(** Register an additional monitor without displacing existing ones.
    Monitors run in registration order. Registration is O(1); the
    fan-out array is rebuilt lazily at the next event. *)

val clear_monitor : t -> unit

val transmit :
  t ->
  Engine.t ->
  link_id ->
  from:node ->
  size_bytes:int ->
  on_arrival:(unit -> unit) ->
  unit
(** Packet-level send: serialisation (FIFO per direction) + propagation +
    jitter, or silent drop on loss/down link. On a capacity-armed link the
    serialisation rate is the capacity left free by the fluid load, and a
    full FIFO tail-drops the packet ([Queue_full]) — the loss draw still
    happens first, exactly once per attempt, so arming capacity never
    shifts the fabric RNG stream. *)

val dijkstra : t -> src:node -> dst:node -> (float * link_id list) option
(** Lowest base-latency route over up links. *)

val min_hop_route : t -> src:node -> dst:node -> link_id list option
(** Fewest-links route over up links (BGP-like shortest AS path, with
    deterministic tie-breaking). *)

val connected : t -> src:node -> dst:node -> bool
(** Reachability over up links. *)
