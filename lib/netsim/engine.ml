(* Binary min-heap keyed by (time, seq); seq gives FIFO order for events
   scheduled at the same instant. *)

type event = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  (* Observers are prepended here in O(1) and normalised into
     [observers] (registration order) once, at the first step after a
     registration — appending with [@] per registration is O(n^2) across
     a fleet of monitors. *)
  mutable observers_rev : (time:float -> pending:int -> unit) list;
  mutable observers : (time:float -> pending:int -> unit) array;
  mutable observers_stale : bool;
}

let create ?(start = 0.0) () =
  {
    heap = Array.make 64 { time = 0.0; seq = 0; action = ignore };
    size = 0;
    clock = start;
    next_seq = 0;
    processed = 0;
    observers_rev = [];
    observers = [||];
    observers_stale = false;
  }

let now t = t.clock

(* scion-lint: allow float-eq -- exact equality intended: same-timestamp events tie-break on seq *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * Array.length t.heap) t.heap.(0) in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let push t ev =
  grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  assert (t.size > 0);
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  top

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Engine.schedule_at: %.6f is in the past (now %.6f)" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time; seq; action }

let schedule t ~after action =
  if after < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. after) action

let on_event t f =
  t.observers_rev <- f :: t.observers_rev;
  t.observers_stale <- true

let events_processed t = t.processed

let observer_array t =
  if t.observers_stale then begin
    t.observers <- Array.of_list (List.rev t.observers_rev);
    t.observers_stale <- false
  end;
  t.observers

let step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    t.clock <- ev.time;
    ev.action ();
    t.processed <- t.processed + 1;
    Array.iter (fun f -> f ~time:ev.time ~pending:t.size) (observer_array t);
    true
  end

let run ?until t =
  let continue = ref true in
  while !continue do
    if t.size = 0 then continue := false
    else begin
      match until with
      | Some limit when t.heap.(0).time > limit ->
          t.clock <- limit;
          continue := false
      | _ -> ignore (step t)
    end
  done

let pending t = t.size
