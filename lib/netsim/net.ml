module Rng = Scion_util.Rng

type node = int
type link_id = int

type link_params = {
  latency_ms : float;
  jitter_ms : float;
  loss : float;
  bandwidth_mbps : float;
}

let default_params = { latency_ms = 10.0; jitter_ms = 0.5; loss = 0.0; bandwidth_mbps = 1000.0 }

(* Opt-in congestion state, armed per link by [set_capacity]. [cap_bps]
   replaces the nominal [bandwidth_mbps] for serialisation; the bounded
   FIFO tail-drops at [q_limit] outstanding packets per direction; the
   fluid fields carry the background flow-level load (Traffic.Flow) that
   the packet path's serialisation sees as consumed capacity. A link with
   [cap = None] behaves exactly as before this field existed. *)
type cap = {
  cap_bps : float;
  q_limit : int;
  mutable fluid_ab : float;
  mutable fluid_ba : float;
  mutable q_ab : int;
  mutable q_ba : int;
  mutable qbytes_ab : int;
  mutable qbytes_ba : int;
}

type link = {
  a : node;
  b : node;
  p : link_params;
  mutable up : bool;
  mutable extra_ms : float;
  mutable extra_loss : float;
  (* FIFO serialisation state for packet-level mode, per direction. *)
  mutable busy_until_ab : float;
  mutable busy_until_ba : float;
  mutable cap : cap option;
}

type drop_cause = Link_down | Random_loss | Queue_full

type link_event =
  | Tx of { link : link_id; src : node; size_bytes : int; wait_s : float }
  | Rx of { link : link_id; dst : node; size_bytes : int }
  | Drop of { link : link_id; src : node; size_bytes : int; cause : drop_cause }

type t = {
  rng : Rng.t;
  mutable names : string array;
  name_index : (string, node) Hashtbl.t;
  mutable nodes : int;
  mutable links : link array;
  mutable nlinks : int;
  (* Flat per-node adjacency: link ids in insertion order with an explicit
     length, iterated newest-first to preserve the historic prepend-order
     tie-breaking of [route] and [links_of]. Dense int arrays keep the
     thousand-AS Dijkstra walks free of per-packet list chasing. *)
  mutable adj : link_id array array;
  mutable adj_len : int array;
  (* Monitors are prepended in O(1) and normalised into registration order
     once at the first notification after a change. *)
  mutable monitors_rev : (link_event -> unit) list;
  mutable monitors : (link_event -> unit) array;
  mutable monitors_stale : bool;
}

let create ~rng =
  {
    rng;
    names = Array.make 16 "";
    name_index = Hashtbl.create 64;
    nodes = 0;
    links = [||];
    nlinks = 0;
    adj = Array.make 16 [||];
    adj_len = Array.make 16 0;
    monitors_rev = [];
    monitors = [||];
    monitors_stale = false;
  }

let set_monitor t f =
  t.monitors_rev <- [ f ];
  t.monitors_stale <- true

let add_monitor t f =
  t.monitors_rev <- f :: t.monitors_rev;
  t.monitors_stale <- true

let clear_monitor t =
  t.monitors_rev <- [];
  t.monitors_stale <- true

let monitor_array t =
  if t.monitors_stale then begin
    t.monitors <- Array.of_list (List.rev t.monitors_rev);
    t.monitors_stale <- false
  end;
  t.monitors

let notify t ev = Array.iter (fun f -> f ev) (monitor_array t)

let add_node t name =
  if Hashtbl.mem t.name_index name then
    invalid_arg (Printf.sprintf "Net.add_node: duplicate node %S" name);
  if t.nodes = Array.length t.names then begin
    let names = Array.make (2 * t.nodes) "" in
    Array.blit t.names 0 names 0 t.nodes;
    t.names <- names;
    let adj = Array.make (2 * t.nodes) [||] in
    Array.blit t.adj 0 adj 0 t.nodes;
    t.adj <- adj;
    let adj_len = Array.make (2 * t.nodes) 0 in
    Array.blit t.adj_len 0 adj_len 0 t.nodes;
    t.adj_len <- adj_len
  end;
  let id = t.nodes in
  t.names.(id) <- name;
  t.nodes <- id + 1;
  Hashtbl.replace t.name_index name id;
  id

let node_of_name t name = Hashtbl.find_opt t.name_index name

let name_of_node t n =
  if n < 0 || n >= t.nodes then invalid_arg "Net.name_of_node: bad node id";
  t.names.(n)

let num_nodes t = t.nodes

(* Parameter validation: a NaN or negative latency silently corrupts every
   RTT sample drawn over the link, and an out-of-range loss either never or
   always drops — all four fields fail fast instead. *)
let check_params (p : link_params) =
  let finite_nonneg name v =
    if not (Float.is_finite v) || v < 0.0 then
      invalid_arg (Printf.sprintf "Net.add_link: %s must be finite and >= 0 (got %g)" name v)
  in
  finite_nonneg "latency_ms" p.latency_ms;
  finite_nonneg "jitter_ms" p.jitter_ms;
  if Float.is_nan p.loss || p.loss < 0.0 || p.loss > 1.0 then
    invalid_arg (Printf.sprintf "Net.add_link: loss must be in [0, 1] (got %g)" p.loss);
  if Float.is_nan p.bandwidth_mbps || p.bandwidth_mbps <= 0.0 then
    invalid_arg
      (Printf.sprintf "Net.add_link: bandwidth_mbps must be > 0 (got %g)" p.bandwidth_mbps)

let add_link t a b p =
  if a = b then invalid_arg "Net.add_link: self loop";
  if a < 0 || a >= t.nodes || b < 0 || b >= t.nodes then invalid_arg "Net.add_link: bad endpoint";
  check_params p;
  let link =
    {
      a;
      b;
      p;
      up = true;
      extra_ms = 0.0;
      extra_loss = 0.0;
      busy_until_ab = 0.0;
      busy_until_ba = 0.0;
      cap = None;
    }
  in
  if t.nlinks = Array.length t.links then begin
    let links = Array.make (max 16 (2 * t.nlinks)) link in
    Array.blit t.links 0 links 0 t.nlinks;
    t.links <- links
  end;
  let id = t.nlinks in
  t.links.(id) <- link;
  t.nlinks <- id + 1;
  let push n =
    let arr = t.adj.(n) and len = t.adj_len.(n) in
    if len = Array.length arr then begin
      let bigger = Array.make (max 4 (2 * len)) 0 in
      Array.blit arr 0 bigger 0 len;
      t.adj.(n) <- bigger
    end;
    t.adj.(n).(len) <- id;
    t.adj_len.(n) <- len + 1
  in
  push a;
  push b;
  id

let get t id =
  if id < 0 || id >= t.nlinks then invalid_arg "Net: bad link id";
  t.links.(id)

let endpoints t id =
  let l = get t id in
  (l.a, l.b)

let params t id = (get t id).p
let num_links t = t.nlinks

let links_of t n =
  let len = t.adj_len.(n) in
  List.init len (fun i -> t.adj.(n).(len - 1 - i))
let set_link_up t id up = (get t id).up <- up
let link_up t id = (get t id).up

let set_extra_latency t id ms =
  if not (Float.is_finite ms) || ms < 0.0 then
    invalid_arg (Printf.sprintf "Net.set_extra_latency: must be finite and >= 0 (got %g)" ms);
  (get t id).extra_ms <- ms

let extra_latency t id = (get t id).extra_ms

let set_extra_loss t id loss =
  if Float.is_nan loss || loss < 0.0 || loss > 1.0 then
    invalid_arg (Printf.sprintf "Net.set_extra_loss: must be in [0, 1] (got %g)" loss);
  (get t id).extra_loss <- loss

let extra_loss t id = (get t id).extra_loss

(* Capacity validation mirrors [check_params]: a NaN or non-positive
   capacity makes every serialisation time nonsensical, and a queue bound
   below one packet can never transmit — both fail fast at arming time. *)
let set_capacity t id ~bps ~queue_pkts =
  if not (Float.is_finite bps) || bps <= 0.0 then
    invalid_arg (Printf.sprintf "Net.set_capacity: bps must be finite and > 0 (got %g)" bps);
  if queue_pkts < 1 then
    invalid_arg (Printf.sprintf "Net.set_capacity: queue_pkts must be >= 1 (got %d)" queue_pkts);
  (get t id).cap <-
    Some
      {
        cap_bps = bps;
        q_limit = queue_pkts;
        fluid_ab = 0.0;
        fluid_ba = 0.0;
        q_ab = 0;
        q_ba = 0;
        qbytes_ab = 0;
        qbytes_ba = 0;
      }

let capacity t id =
  match (get t id).cap with None -> None | Some c -> Some (c.cap_bps, c.q_limit)

let clear_capacity t id = (get t id).cap <- None

(* Direction resolution shared by the fluid/queue accessors: [from] names
   the sending endpoint, so state is per transmit direction. *)
let dir_ab name l from =
  if from = l.a then true
  else if from = l.b then false
  else invalid_arg (name ^ ": sender is not an endpoint")

let armed name l =
  match l.cap with
  | Some c -> c
  | None -> invalid_arg (name ^ ": link has no capacity armed (call set_capacity first)")

let set_fluid_load t id ~from ~bps =
  if not (Float.is_finite bps) || bps < 0.0 then
    invalid_arg (Printf.sprintf "Net.set_fluid_load: bps must be finite and >= 0 (got %g)" bps);
  let l = get t id in
  let c = armed "Net.set_fluid_load" l in
  if dir_ab "Net.set_fluid_load" l from then c.fluid_ab <- bps else c.fluid_ba <- bps

let fluid_load t id ~from =
  let l = get t id in
  match l.cap with
  | None -> 0.0
  | Some c -> if dir_ab "Net.fluid_load" l from then c.fluid_ab else c.fluid_ba

let queue_depth t id ~from =
  let l = get t id in
  match l.cap with
  | None -> 0
  | Some c -> if dir_ab "Net.queue_depth" l from then c.q_ab else c.q_ba

let utilisation t id ~from =
  let l = get t id in
  match l.cap with
  | None -> 0.0
  | Some c ->
      let fluid = if dir_ab "Net.utilisation" l from then c.fluid_ab else c.fluid_ba in
      Float.min 1.0 (fluid /. c.cap_bps)

(* The packet path keeps a residual floor of 1% of capacity even under
   full fluid load, so foreground probes always drain (slowly) instead of
   dividing by zero — congestion then shows up as queueing delay and
   tail drops, which is what the experiment measures. *)
let avail_bps c fluid = Float.max (0.01 *. c.cap_bps) (c.cap_bps -. fluid)

let queueing_delay_ms t id ~from =
  let l = get t id in
  match l.cap with
  | None -> 0.0
  | Some c ->
      let ab = dir_ab "Net.queueing_delay_ms" l from in
      let fluid = if ab then c.fluid_ab else c.fluid_ba in
      let qbytes = if ab then c.qbytes_ab else c.qbytes_ba in
      float_of_int qbytes *. 8.0 /. avail_bps c fluid *. 1000.0

(* Effective per-traversal loss. The base + burst sum keeps the RNG draw
   discipline of [transmit]/[sample_one_way] intact: with no burst active
   the guard and the draw are exactly the pre-burst ones. *)
let loss_of l = Float.min 1.0 (l.p.loss +. l.extra_loss)

let one_way_ms_with ~rng l =
  l.p.latency_ms +. l.extra_ms +. Rng.exponential rng ~rate:(1.0 /. Float.max 1e-6 l.p.jitter_ms)

let one_way_ms t l = one_way_ms_with ~rng:t.rng l

let sample_one_way_with t ~rng id =
  let l = get t id in
  if not l.up then `Lost
  else if loss_of l > 0.0 && Rng.float rng 1.0 < loss_of l then `Lost
  else `Delivered (one_way_ms_with ~rng l)

let sample_one_way t id = sample_one_way_with t ~rng:t.rng id

let path_rtt_with t ~rng ids =
  let rec go acc = function
    | [] -> `Rtt acc
    | id :: rest -> (
        match sample_one_way_with t ~rng id with
        | `Lost -> `Lost
        | `Delivered ms -> go (acc +. ms) rest)
  in
  (* Forward, then return traversal with independent samples. *)
  match go 0.0 ids with `Lost -> `Lost | `Rtt fwd -> ( match go fwd ids with r -> r)

let path_rtt t ids = path_rtt_with t ~rng:t.rng ids

let path_base_latency t ids =
  List.fold_left
    (fun acc id ->
      let l = get t id in
      acc +. l.p.latency_ms +. l.extra_ms)
    0.0 ids

let transmit t engine id ~from ~size_bytes ~on_arrival =
  let l = get t id in
  let dst =
    if from = l.a then l.b
    else if from = l.b then l.a
    else invalid_arg "Net.transmit: sender is not an endpoint"
  in
  (* Ordering matters for determinism: a down link must not consume an RNG
     draw, and the loss draw happens exactly once per send attempt. *)
  if not l.up then notify t (Drop { link = id; src = from; size_bytes; cause = Link_down })
  else if loss_of l > 0.0 && Rng.float t.rng 1.0 < loss_of l then
    notify t (Drop { link = id; src = from; size_bytes; cause = Random_loss })
  else begin
    let now = Engine.now engine in
    let busy_until, set_busy =
      if from = l.a then (l.busy_until_ab, fun v -> l.busy_until_ab <- v)
      else (l.busy_until_ba, fun v -> l.busy_until_ba <- v)
    in
    let deliver ~start ~done_sending =
      notify t (Tx { link = id; src = from; size_bytes; wait_s = start -. now });
      let arrival = done_sending +. (one_way_ms t l /. 1000.0) in
      Engine.schedule_at engine ~time:arrival (fun () ->
        notify t (Rx { link = id; dst; size_bytes });
        on_arrival ())
    in
    match l.cap with
    | None ->
        (* Legacy path: nominal bandwidth, no queue bound. Byte-identical
           behaviour (and engine event count) for every unarmed fabric. *)
        let serialization = float_of_int size_bytes *. 8.0 /. (l.p.bandwidth_mbps *. 1e6) in
        let start = Float.max now busy_until in
        let done_sending = start +. serialization in
        set_busy done_sending;
        deliver ~start ~done_sending
    | Some c ->
        let ab = from = l.a in
        let q = if ab then c.q_ab else c.q_ba in
        if q >= c.q_limit then
          notify t (Drop { link = id; src = from; size_bytes; cause = Queue_full })
        else begin
          (* Serialisation over what the fluid background leaves free;
             the bounded FIFO admits the packet and releases its slot
             when it finishes serialising. *)
          let fluid = if ab then c.fluid_ab else c.fluid_ba in
          let serialization = float_of_int size_bytes *. 8.0 /. avail_bps c fluid in
          let start = Float.max now busy_until in
          let done_sending = start +. serialization in
          set_busy done_sending;
          if ab then begin
            c.q_ab <- q + 1;
            c.qbytes_ab <- c.qbytes_ab + size_bytes
          end
          else begin
            c.q_ba <- q + 1;
            c.qbytes_ba <- c.qbytes_ba + size_bytes
          end;
          Engine.schedule_at engine ~time:done_sending (fun () ->
            if ab then begin
              c.q_ab <- max 0 (c.q_ab - 1);
              c.qbytes_ab <- max 0 (c.qbytes_ab - size_bytes)
            end
            else begin
              c.q_ba <- max 0 (c.q_ba - 1);
              c.qbytes_ba <- max 0 (c.qbytes_ba - size_bytes)
            end);
          deliver ~start ~done_sending
        end
  end

(* Uniform-cost search over up links; [weight] chooses the metric.
   Binary-heap Dijkstra with lazy deletion, keyed (distance, node id) so
   equal-distance ties settle on the lowest node id — the same settlement
   order as the historic O(n^2) extract-min scan, which is what keeps
   every route (and therefore every golden) identical at any scale. *)
let route t ~src ~dst ~weight =
  if src = dst then Some (0.0, [])
  else begin
    let dist = Array.make t.nodes infinity in
    let via = Array.make t.nodes None in
    let settled = Array.make t.nodes false in
    dist.(src) <- 0.0;
    (* Parallel-array heap: distances and node ids, no per-entry tuple. *)
    let hd = ref (Array.make 64 0.0) in
    let hn = ref (Array.make 64 0) in
    let hsize = ref 0 in
    let before i j =
      let c = Float.compare !hd.(i) !hd.(j) in
      c < 0 || (c = 0 && !hn.(i) < !hn.(j))
    in
    let swap i j =
      let d = !hd.(i) and n = !hn.(i) in
      !hd.(i) <- !hd.(j);
      !hn.(i) <- !hn.(j);
      !hd.(j) <- d;
      !hn.(j) <- n
    in
    let push d n =
      if !hsize = Array.length !hd then begin
        let bd = Array.make (2 * !hsize) 0.0 and bn = Array.make (2 * !hsize) 0 in
        Array.blit !hd 0 bd 0 !hsize;
        Array.blit !hn 0 bn 0 !hsize;
        hd := bd;
        hn := bn
      end;
      let i = ref !hsize in
      !hd.(!i) <- d;
      !hn.(!i) <- n;
      incr hsize;
      let continue = ref true in
      while !continue && !i > 0 do
        let parent = (!i - 1) / 2 in
        if before !i parent then begin
          swap !i parent;
          i := parent
        end
        else continue := false
      done
    in
    let pop () =
      let n = !hn.(0) in
      decr hsize;
      if !hsize > 0 then begin
        !hd.(0) <- !hd.(!hsize);
        !hn.(0) <- !hn.(!hsize);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < !hsize && before l !smallest then smallest := l;
          if r < !hsize && before r !smallest then smallest := r;
          if !smallest <> !i then begin
            swap !smallest !i;
            i := !smallest
          end
          else continue := false
        done
      end;
      n
    in
    push 0.0 src;
    let exception Done in
    (try
       while !hsize > 0 do
         let u = pop () in
         if u = dst then raise Done;
         if not settled.(u) then begin
           settled.(u) <- true;
           (* Newest-first over the adjacency slice: the historic prepend
              order that breaks equal-cost ties. *)
           for k = t.adj_len.(u) - 1 downto 0 do
             let id = t.adj.(u).(k) in
             let l = t.links.(id) in
             if l.up then begin
               let v = if l.a = u then l.b else l.a in
               let d = dist.(u) +. weight l in
               if d < dist.(v) -. 1e-12 then begin
                 dist.(v) <- d;
                 via.(v) <- Some (id, u);
                 push d v
               end
             end
           done
         end
       done
     with Done -> ());
    if dist.(dst) = infinity then None
    else begin
      let rec backtrack v acc =
        match via.(v) with
        | None -> acc
        | Some (id, prev) -> backtrack prev (id :: acc)
      in
      Some (dist.(dst), backtrack dst [])
    end
  end

let dijkstra t ~src ~dst = route t ~src ~dst ~weight:(fun l -> l.p.latency_ms +. l.extra_ms)

let min_hop_route t ~src ~dst =
  Option.map snd (route t ~src ~dst ~weight:(fun _ -> 1.0))

let connected t ~src ~dst = route t ~src ~dst ~weight:(fun _ -> 1.0) <> None
