module Ia = Scion_addr.Ia
module Rng = Scion_util.Rng
module Cert = Scion_cppki.Cert
module Mesh = Scion_controlplane.Mesh

type region = Europe | North_america | Asia | South_america | Africa | Middle_east

let region_to_string = function
  | Europe -> "Europe"
  | North_america -> "North America"
  | Asia -> "Asia"
  | South_america -> "South America"
  | Africa -> "Africa"
  | Middle_east -> "Middle East"

type tier = Tier1 | Tier2 | Tier3

let tier_to_string = function Tier1 -> "Tier1" | Tier2 -> "Tier2" | Tier3 -> "Tier3"

type as_info = {
  ia : Ia.t;
  name : string;
  region : region;
  tier : tier;
  core : bool;
  ca : bool;
  profile : Cert.profile;
  measurement_point : bool;
  pop : string;
}

type link_info = {
  a : Ia.t;
  b : Ia.t;
  cls : Mesh.link_class;
  latency_ms : float;
  jitter_ms : float;
  label : string;
}

type params = {
  n_ases : int;
  n_isds : int;
  cores_per_isd : int;
  core_chord_prob : float;
  attach_degree : int;
  tier2_fraction : float;
}

type t = { gen_params : params; ases : as_info list; links : link_info list }

let regions_all = [| Europe; North_america; Asia; South_america; Africa; Middle_east |]

(* Parent candidates deeper than this never acquire children, bounding the
   parent-link depth of every leaf (and with it the beaconing rounds a
   sweep needs) regardless of N. *)
let max_parent_depth = 5

let validate p =
  let pos name v =
    if v <= 0 then invalid_arg (Printf.sprintf "Topogen: %s must be > 0 (got %d)" name v)
  in
  pos "n_ases" p.n_ases;
  pos "n_isds" p.n_isds;
  pos "cores_per_isd" p.cores_per_isd;
  pos "attach_degree" p.attach_degree;
  let prob name v =
    if Float.is_nan v || v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Topogen: %s must be in [0, 1] (got %g)" name v)
  in
  prob "core_chord_prob" p.core_chord_prob;
  prob "tier2_fraction" p.tier2_fraction;
  let cores = p.n_isds * p.cores_per_isd in
  if p.n_ases < cores then
    invalid_arg
      (Printf.sprintf "Topogen: n_ases = %d is below the %d cores (%d ISDs x %d)" p.n_ases cores
         p.n_isds p.cores_per_isd)

let default ~n_ases =
  let p =
    {
      n_ases;
      n_isds = max 2 (min 6 (1 + (n_ases / 150)));
      cores_per_isd = 3;
      core_chord_prob = 0.35;
      attach_degree = 2;
      tier2_fraction = 0.15;
    }
  in
  validate p;
  p

(* Mutable per-AS state during growth; [g_children] is the BA weight. *)
type gnode = {
  g_ia : Ia.t;
  g_isd : int;
  g_tier : tier;
  g_core : bool;
  g_depth : int;
  mutable g_children : int;
}

(* Weighted pick over candidate indices: weight = children + 1, the classic
   BA "rich get richer" kernel with additive smoothing so fresh Tier2 ASes
   are reachable too. *)
let pick_parent rng ~(node : int -> gnode) candidates ~exclude =
  let eligible = List.filter (fun i -> not (List.mem i exclude)) candidates in
  match eligible with
  | [] -> None
  | _ ->
      let total = List.fold_left (fun acc i -> acc + (node i).g_children + 1) 0 eligible in
      let r = Rng.int rng total in
      let rec walk acc = function
        | [] -> None
        | [ i ] -> Some i
        | i :: rest ->
            let acc = acc + (node i).g_children + 1 in
            if r < acc then Some i else walk acc rest
      in
      walk 0 eligible

let generate ~seed p =
  validate p;
  let rng = Rng.of_label seed "topogen" in
  let pick_region ~base =
    if Rng.float rng 1.0 < 0.85 then base else regions_all.(Rng.int rng (Array.length regions_all))
  in
  let pick_profile () = if Rng.float rng 1.0 < 0.3 then Cert.Proprietary else Cert.Open_source in
  let n_cores = p.n_isds * p.cores_per_isd in
  let nodes = Array.make p.n_ases None in
  let n_nodes = ref 0 in
  let ases = ref [] in
  let core_links = ref [] in
  let pc_links = ref [] in
  let next_asn = Array.make (p.n_isds + 1) 1 in
  let add_node ~isd ~tier ~core ~ca ~depth =
    let asn = next_asn.(isd) in
    next_asn.(isd) <- asn + 1;
    let ia = Ia.make isd asn in
    let idx = !n_nodes in
    nodes.(idx) <- Some { g_ia = ia; g_isd = isd; g_tier = tier; g_core = core; g_depth = depth; g_children = 0 };
    incr n_nodes;
    let base = regions_all.((isd - 1) mod Array.length regions_all) in
    let region = pick_region ~base in
    ases :=
      {
        ia;
        name = Printf.sprintf "S%d-%d" isd asn;
        region;
        tier;
        core;
        ca;
        profile = pick_profile ();
        measurement_point = (not core) && (idx - n_cores) mod 16 = 0;
        pop = Printf.sprintf "PoP %d-%d" isd asn;
      }
      :: !ases;
    idx
  in
  let node idx =
    match nodes.(idx) with
    | Some n -> n
    | None -> invalid_arg "Topogen.generate: internal node index out of range"
  in
  (* --- Core backbone: per-ISD rings + chords, inter-ISD ring + chords --- *)
  let cores_of = Array.make (p.n_isds + 1) [] in
  for isd = 1 to p.n_isds do
    let ids = List.init p.cores_per_isd (fun i -> add_node ~isd ~tier:Tier1 ~core:true ~ca:(i = 0) ~depth:0) in
    cores_of.(isd) <- ids
  done;
  let core_edge ~label i j ~intra =
    let lat = if intra then 4.0 +. Rng.float rng 16.0 else 40.0 +. Rng.float rng 50.0 in
    core_links :=
      {
        a = (node i).g_ia;
        b = (node j).g_ia;
        cls = Mesh.Core_link;
        latency_ms = lat;
        jitter_ms = Float.max 0.1 (lat *. 0.03);
        label;
      }
      :: !core_links
  in
  for isd = 1 to p.n_isds do
    let ids = Array.of_list cores_of.(isd) in
    let k = Array.length ids in
    (* Ring. *)
    if k = 2 then core_edge ~label:(Printf.sprintf "core ring %d" isd) ids.(0) ids.(1) ~intra:true
    else if k > 2 then
      for i = 0 to k - 1 do
        core_edge ~label:(Printf.sprintf "core ring %d" isd) ids.(i) ids.((i + 1) mod k) ~intra:true
      done;
    (* Density chords between non-adjacent pairs. *)
    for i = 0 to k - 1 do
      for j = i + 2 to k - 1 do
        if not (i = 0 && j = k - 1) && Rng.float rng 1.0 < p.core_chord_prob then
          core_edge ~label:(Printf.sprintf "core chord %d" isd) ids.(i) ids.(j) ~intra:true
      done
    done
  done;
  let first_core isd =
    match cores_of.(isd) with
    | i :: _ -> i
    | [] -> invalid_arg (Printf.sprintf "Topogen.generate: ISD %d has no core" isd)
  in
  if p.n_isds = 2 then core_edge ~label:"inter-ISD core" (first_core 1) (first_core 2) ~intra:false
  else if p.n_isds > 2 then
    for isd = 1 to p.n_isds do
      core_edge ~label:"inter-ISD core" (first_core isd)
        (first_core ((isd mod p.n_isds) + 1))
        ~intra:false
    done;
  for i = 1 to p.n_isds do
    for j = i + 2 to p.n_isds do
      if not (i = 1 && j = p.n_isds) && Rng.float rng 1.0 < p.core_chord_prob /. 2.0 then begin
        (* A chord lands on a random core of each side. *)
        let ci = Rng.pick rng (Array.of_list cores_of.(i)) in
        let cj = Rng.pick rng (Array.of_list cores_of.(j)) in
        core_edge ~label:"inter-ISD chord" ci cj ~intra:false
      end
    done
  done;
  (* --- Preferential attachment of the non-core ASes --- *)
  let candidates = Array.make (p.n_isds + 1) [] in
  for isd = 1 to p.n_isds do
    candidates.(isd) <- List.rev cores_of.(isd)
  done;
  for _leaf = 1 to p.n_ases - n_cores do
    let isd = 1 + Rng.int rng p.n_isds in
    let tier = if Rng.float rng 1.0 < p.tier2_fraction then Tier2 else Tier3 in
    let degree = min p.attach_degree (List.length candidates.(isd)) in
    let parents = ref [] in
    for _ = 1 to degree do
      match pick_parent rng ~node candidates.(isd) ~exclude:!parents with
      | Some i -> parents := i :: !parents
      | None -> ()
    done;
    let parents = List.rev !parents in
    let depth =
      1 + List.fold_left (fun acc i -> min acc (node i).g_depth) max_int parents
    in
    let idx = add_node ~isd ~tier ~core:false ~ca:false ~depth in
    List.iter
      (fun pi ->
        let parent = node pi in
        parent.g_children <- parent.g_children + 1;
        let lat =
          if parent.g_core then 2.0 +. Rng.float rng 12.0 else 1.0 +. Rng.float rng 8.0
        in
        pc_links :=
          {
            a = parent.g_ia;
            b = (node idx).g_ia;
            cls = Mesh.Parent_child;
            latency_ms = lat;
            jitter_ms = Float.max 0.1 (lat *. 0.04);
            label = Printf.sprintf "attach %s" (tier_to_string tier);
          }
          :: !pc_links)
      parents;
    if tier = Tier2 && depth <= max_parent_depth then
      candidates.(isd) <- candidates.(isd) @ [ idx ]
  done;
  { gen_params = p; ases = List.rev !ases; links = List.rev !core_links @ List.rev !pc_links }

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "topogen n=%d isds=%d cores/isd=%d chord=%.3f m=%d t2=%.3f\n" t.gen_params.n_ases
       t.gen_params.n_isds t.gen_params.cores_per_isd t.gen_params.core_chord_prob
       t.gen_params.attach_degree t.gen_params.tier2_fraction);
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "A %s %s %s %s core=%b ca=%b %s mp=%b\n" (Ia.to_string a.ia) a.name
           (region_to_string a.region) (tier_to_string a.tier) a.core a.ca
           (match a.profile with Cert.Proprietary -> "prop" | Cert.Open_source -> "oss")
           a.measurement_point))
    t.ases;
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "L %s %s %s %.3f %.3f %s\n" (Ia.to_string l.a) (Ia.to_string l.b)
           (match l.cls with
           | Mesh.Core_link -> "core"
           | Mesh.Parent_child -> "pc"
           | Mesh.Peering -> "peer")
           l.latency_ms l.jitter_ms l.label))
    t.links;
  Buffer.contents buf

let core_count t = List.length (List.filter (fun a -> a.core) t.ases)

(* Depth over parent-child links: links are emitted parents-first, so one
   forward pass suffices. *)
let depth_table t =
  let tbl = Hashtbl.create (List.length t.ases) in
  List.iter (fun a -> if a.core then Hashtbl.replace tbl a.ia 0) t.ases;
  List.iter
    (fun l ->
      match l.cls with
      | Mesh.Core_link | Mesh.Peering -> ()
      | Mesh.Parent_child -> (
          match Hashtbl.find_opt tbl l.a with
          | None -> ()
          | Some d -> (
              let cand = d + 1 in
              match Hashtbl.find_opt tbl l.b with
              | Some existing when existing <= cand -> ()
              | Some _ | None -> Hashtbl.replace tbl l.b cand)))
    t.links;
  tbl

let leaf_depth t ia =
  match Hashtbl.find_opt (depth_table t) ia with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Topogen.leaf_depth: unknown AS %s" (Ia.to_string ia))

let max_depth t =
  let tbl = depth_table t in
  List.fold_left
    (fun acc a -> match Hashtbl.find_opt tbl a.ia with Some d -> max acc d | None -> acc)
    0 t.ases
