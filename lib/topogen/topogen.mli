(** Deterministic synthetic SCION topology generator.

    Grows a hierarchical ISD/core backbone — per-ISD core rings with
    density-controlled chords, an inter-ISD core ring — and attaches
    Tier2/Tier3 ASes with Barabási–Albert-style preferential attachment
    (new ASes prefer parents that already have many children, producing
    the heavy-tailed provider degree distribution of deployed networks).
    Every draw comes from one private [Rng.of_label seed "topogen"]
    stream, so equal (seed, params) give byte-identical topologies.

    The output mirrors the [as_info]/[link_info] shape of the hand-built
    Figure-1 topology in [lib/core/topology.ml]; [Sciera.Topology.of_topogen]
    converts it, after which [Network.create], [Mesh] and the fault /
    pathmon layers run on generated meshes unchanged. *)

type region = Europe | North_america | Asia | South_america | Africa | Middle_east

val region_to_string : region -> string

type tier = Tier1 | Tier2 | Tier3

type as_info = {
  ia : Scion_addr.Ia.t;
  name : string;
  region : region;
  tier : tier;
  core : bool;
  ca : bool;  (** First core of each ISD operates the ISD CA. *)
  profile : Scion_cppki.Cert.profile;
  measurement_point : bool;  (** Deterministic vantage subset (1 in 16). *)
  pop : string;
}

type link_info = {
  a : Scion_addr.Ia.t;  (** For [Parent_child], the parent. *)
  b : Scion_addr.Ia.t;
  cls : Scion_controlplane.Mesh.link_class;
  latency_ms : float;  (** One-way propagation delay. *)
  jitter_ms : float;
  label : string;
}

type params = {
  n_ases : int;  (** Total AS count, cores included. *)
  n_isds : int;  (** Isolation domains (ISDs number 1..n). *)
  cores_per_isd : int;
  core_chord_prob : float;
      (** Core density: probability of a chord between each non-adjacent
          core pair (within an ISD; halved across ISDs). *)
  attach_degree : int;  (** Parent links per non-core AS (BA's m). *)
  tier2_fraction : float;
      (** Share of non-core ASes that are Tier2 transit (and can
          themselves acquire children); the rest are Tier3 leaves. *)
}

val default : n_ases:int -> params
(** Sensible defaults scaled to [n_ases]: 2-6 ISDs, 3 cores each,
    [attach_degree = 2], 15% Tier2, chord probability 0.35. Raises
    [Invalid_argument] when [n_ases] cannot fit the derived core count. *)

type t = {
  gen_params : params;
  ases : as_info list;  (** Cores of every ISD first, then attachment order. *)
  links : link_info list;  (** Core links first, then parent-child links. *)
}

val generate : seed:int64 -> params -> t
(** Deterministic generation from the ["topogen"] stream of [seed].
    Connectivity holds by construction: cores form rings (intra- and
    inter-ISD) and every non-core AS attaches to an already-connected
    parent of its own ISD, so every leaf is core-reachable over
    parent-child links alone. Raises [Invalid_argument] on inconsistent
    parameters (non-positive counts, probabilities outside [0, 1],
    [n_ases] below the core count). *)

val to_string : t -> string
(** Canonical one-line-per-AS/link dump — the byte-identity witness the
    property tests compare across equal seeds. *)

val core_count : t -> int
val leaf_depth : t -> Scion_addr.Ia.t -> int
(** Parent-link hops from the AS to its nearest core (0 for cores).
    Raises [Invalid_argument] for an AS outside the topology. *)

val max_depth : t -> int
(** Deepest leaf — a lower bound on the beaconing rounds needed to reach
    every AS. *)
