module Rng = Scion_util.Rng
module Ia = Scion_addr.Ia

type op =
  | Corrupt_beacons of { compromised : Ia.t; count : int }
  | Replay_beacons of { compromised : Ia.t; age_s : float; count : int }
  | Forge_hop_macs of { compromised : Ia.t; count : int }
  | Rogue_segments of { compromised : Ia.t; victim : Ia.t; count : int }
  | Wormhole_up of { a : Ia.t; b : Ia.t }
  | Wormhole_down of { a : Ia.t; b : Ia.t }
  | Scmp_reflect of { reflector : Ia.t; victim : Ia.t; count : int }
  | Volumetric_flood of { attacker : Ia.t; target : Ia.t; packets : int; duplicate_pct : int }
  | Trc_compromise of { isd : int }
  | Trc_rotate of { isd : int }

let op_to_string = function
  | Corrupt_beacons { compromised; count } ->
      Printf.sprintf "corrupt %d beacons at %s" count (Ia.to_string compromised)
  | Replay_beacons { compromised; age_s; count } ->
      Printf.sprintf "replay %d beacons (%gs stale) at %s" count age_s (Ia.to_string compromised)
  | Forge_hop_macs { compromised; count } ->
      Printf.sprintf "forge %d hop MACs at %s" count (Ia.to_string compromised)
  | Rogue_segments { compromised; victim; count } ->
      Printf.sprintf "register %d rogue segments for %s at %s" count (Ia.to_string victim)
        (Ia.to_string compromised)
  | Wormhole_up { a; b } -> Printf.sprintf "wormhole up %s<->%s" (Ia.to_string a) (Ia.to_string b)
  | Wormhole_down { a; b } ->
      Printf.sprintf "wormhole down %s<->%s" (Ia.to_string a) (Ia.to_string b)
  | Scmp_reflect { reflector; victim; count } ->
      Printf.sprintf "reflect %d SCMP echoes off %s at %s" count (Ia.to_string reflector)
        (Ia.to_string victim)
  | Volumetric_flood { attacker; target; packets; duplicate_pct } ->
      Printf.sprintf "flood %s with %d frames (%d%% duplicates) from %s" (Ia.to_string target)
        packets duplicate_pct (Ia.to_string attacker)
  | Trc_compromise { isd } -> Printf.sprintf "compromise ISD %d root key" isd
  | Trc_rotate { isd } -> Printf.sprintf "rotate ISD %d TRC" isd

type event = { at_s : float; op : op }

(* Same contract as Scenario.t: elaboration is the only place draws
   happen, and combinator order is fixed, so (adversary, seed) always
   yields the same attack schedule. *)
type t = Rng.t -> event list

let check_time name v =
  if not (Float.is_finite v) || v < 0.0 then
    invalid_arg (Printf.sprintf "Adversary.%s: time must be finite and >= 0 (got %g)" name v)

let check_count name v =
  if v < 0 then invalid_arg (Printf.sprintf "Adversary.%s: count must be >= 0 (got %d)" name v)

let nothing : t = fun _rng -> []

let at t ops =
  check_time "at" t;
  fun _rng -> List.map (fun op -> { at_s = t; op }) ops

let every ~period_s ~until_s start ops =
  check_time "every" start;
  check_time "every" until_s;
  if not (Float.is_finite period_s) || period_s <= 0.0 then
    invalid_arg (Printf.sprintf "Adversary.every: period must be > 0 (got %g)" period_s);
  fun _rng ->
    let rec go t acc =
      if t >= until_s then List.rev acc
      else go (t +. period_s) (List.rev_append (List.map (fun op -> { at_s = t; op }) ops) acc)
    in
    go start []

let salvo ?(jitter_s = 0.0) ~start_s ~rounds ~period_s ops =
  check_time "salvo" start_s;
  check_count "salvo" rounds;
  if not (Float.is_finite period_s) || period_s <= 0.0 then
    invalid_arg (Printf.sprintf "Adversary.salvo: period must be > 0 (got %g)" period_s);
  if not (Float.is_finite jitter_s) || jitter_s < 0.0 then
    invalid_arg (Printf.sprintf "Adversary.salvo: jitter must be finite and >= 0 (got %g)" jitter_s);
  fun rng ->
    let stretch () = if jitter_s > 0.0 then Rng.float rng jitter_s else 0.0 in
    let rec go i t acc =
      if i >= rounds then List.rev acc
      else
        let acc = List.rev_append (List.map (fun op -> { at_s = t; op }) ops) acc in
        go (i + 1) (t +. period_s +. stretch ()) acc
    in
    go 0 start_s []

let span name ~from_s ~to_s ~up ~down =
  check_time name from_s;
  check_time name to_s;
  if to_s < from_s then
    invalid_arg
      (Printf.sprintf "Adversary.%s: window ends (%g) before it starts (%g)" name to_s from_s);
  fun _rng -> [ { at_s = from_s; op = up }; { at_s = to_s; op = down } ]

let wormhole ~a ~b ~from_s ~to_s =
  span "wormhole" ~from_s ~to_s ~up:(Wormhole_up { a; b }) ~down:(Wormhole_down { a; b })

let beacon_corruption ~compromised ~from_s ~until_s ~period_s ~count =
  check_count "beacon_corruption" count;
  every ~period_s ~until_s from_s [ Corrupt_beacons { compromised; count } ]

let beacon_replay ~compromised ~from_s ~until_s ~period_s ~age_s ~count =
  check_count "beacon_replay" count;
  check_time "beacon_replay" age_s;
  every ~period_s ~until_s from_s [ Replay_beacons { compromised; age_s; count } ]

let mac_forgery ~compromised ~from_s ~until_s ~period_s ~count =
  check_count "mac_forgery" count;
  every ~period_s ~until_s from_s [ Forge_hop_macs { compromised; count } ]

let segment_poisoning ~compromised ~victim ~from_s ~until_s ~period_s ~count =
  check_count "segment_poisoning" count;
  every ~period_s ~until_s from_s [ Rogue_segments { compromised; victim; count } ]

let reflection ~reflector ~victim ~from_s ~until_s ~period_s ~count =
  check_count "reflection" count;
  every ~period_s ~until_s from_s [ Scmp_reflect { reflector; victim; count } ]

let flood ~attacker ~target ~from_s ~until_s ~period_s ~packets ~duplicate_pct =
  check_count "flood" packets;
  if duplicate_pct < 0 || duplicate_pct > 100 then
    invalid_arg
      (Printf.sprintf "Adversary.flood: duplicate_pct must be in [0, 100] (got %d)" duplicate_pct);
  every ~period_s ~until_s from_s [ Volumetric_flood { attacker; target; packets; duplicate_pct } ]

let compromise_drill ~isd ~at_s ~rotate_after_s =
  check_time "compromise_drill" at_s;
  check_time "compromise_drill" rotate_after_s;
  fun _rng ->
    [
      { at_s; op = Trc_compromise { isd } };
      { at_s = at_s +. rotate_after_s; op = Trc_rotate { isd } };
    ]

let seq adversaries rng =
  let events = List.concat_map (fun a -> a rng) adversaries in
  List.stable_sort (fun a b -> Float.compare a.at_s b.at_s) events

let ( ++ ) a b = seq [ a; b ]

let elaborate t ~rng = seq [ t ] rng
