(** Declarative adversary campaigns for the deterministic injector.

    The byzantine twin of {!Scenario}: where a scenario describes
    infrastructure failing, an adversary describes a participant
    misbehaving — a compromised AS corrupting or replaying beacons,
    forging hop-field MACs, registering bogus down-segments, a colluding
    pair tunneling traffic, reflection and volumetric floods, and a CA
    key compromise with its TRC-rotation drill.

    The determinism contract matches {!Scenario}: an adversary elaborates
    into a finite list of timed {!op}s, drawing only from its own RNG
    stream — conventionally [Rng.of_label seed "fault.adv"] — so
    attaching an adversary never perturbs workload draws. The op payloads
    are pure data (AS identifiers and counts); interpretation against a
    concrete mesh lives in the applier passed to
    {!Injector.attach_adversary}. *)

(** One primitive adversary action. *)
type op =
  | Corrupt_beacons of { compromised : Scion_addr.Ia.t; count : int }
      (** Inject [count] malformed PCBs (broken signatures) at the
          compromised AS's neighbors. *)
  | Replay_beacons of { compromised : Scion_addr.Ia.t; age_s : float; count : int }
      (** Re-inject [count] stale PCBs captured [age_s] seconds ago. *)
  | Forge_hop_macs of { compromised : Scion_addr.Ia.t; count : int }
      (** Send [count] data-plane packets with attacker-chosen hop fields. *)
  | Rogue_segments of { compromised : Scion_addr.Ia.t; victim : Scion_addr.Ia.t; count : int }
      (** Register [count] bogus down-segments claiming to reach [victim]. *)
  | Wormhole_up of { a : Scion_addr.Ia.t; b : Scion_addr.Ia.t }
      (** Colluding pair [a], [b] starts tunneling traffic out of band. *)
  | Wormhole_down of { a : Scion_addr.Ia.t; b : Scion_addr.Ia.t }
  | Scmp_reflect of { reflector : Scion_addr.Ia.t; victim : Scion_addr.Ia.t; count : int }
      (** Spoofed-source echo flood: [count] requests with [victim] as the
          forged source bounce off [reflector]. *)
  | Volumetric_flood of
      { attacker : Scion_addr.Ia.t; target : Scion_addr.Ia.t; packets : int; duplicate_pct : int }
      (** High-rate duplicate/garbage frames against [target]'s filter. *)
  | Trc_compromise of { isd : int }  (** The ISD's CA signing key leaks. *)
  | Trc_rotate of { isd : int }  (** Emergency TRC rotation drill. *)

val op_to_string : op -> string

type event = { at_s : float; op : op }
(** A concrete timer event after elaboration. *)

type t
(** An adversary campaign (composable, not yet elaborated). *)

(* scion-lint: rng-stream fault.adv -- all adversary draws come from the dedicated adversary stream *)
val elaborate : t -> rng:Scion_util.Rng.t -> event list
(** Expand into concrete events, sorted by time (ties keep combinator
    order). All random draws come from [rng]. *)

(** {1 Combinators} *)

val nothing : t

val at : float -> op list -> t
(** [at t ops] fires every op at time [t] (seconds, [>= 0.]). *)

val every : period_s:float -> until_s:float -> float -> op list -> t
(** [every ~period_s ~until_s start ops] repeats [ops] at [start],
    [start + period_s], ... strictly before [until_s]. Requires
    [period_s > 0.]. *)

val salvo : ?jitter_s:float -> start_s:float -> rounds:int -> period_s:float -> op list -> t
(** [rounds] repetitions of [ops] starting at [start_s], [period_s]
    apart; with [jitter_s] each gap is stretched by a uniform draw in
    [\[0, jitter_s)] from the adversary stream. *)

val wormhole :
  a:Scion_addr.Ia.t -> b:Scion_addr.Ia.t -> from_s:float -> to_s:float -> t
(** Collusion window: tunnel up at [from_s], torn down at [to_s]. *)

val beacon_corruption :
  compromised:Scion_addr.Ia.t ->
  from_s:float ->
  until_s:float ->
  period_s:float ->
  count:int ->
  t
(** Periodic {!Corrupt_beacons} bursts during [\[from_s, until_s)]. *)

val beacon_replay :
  compromised:Scion_addr.Ia.t ->
  from_s:float ->
  until_s:float ->
  period_s:float ->
  age_s:float ->
  count:int ->
  t
(** Periodic {!Replay_beacons} bursts during [\[from_s, until_s)]. *)

val mac_forgery :
  compromised:Scion_addr.Ia.t ->
  from_s:float ->
  until_s:float ->
  period_s:float ->
  count:int ->
  t
(** Periodic {!Forge_hop_macs} bursts during [\[from_s, until_s)]. *)

val segment_poisoning :
  compromised:Scion_addr.Ia.t ->
  victim:Scion_addr.Ia.t ->
  from_s:float ->
  until_s:float ->
  period_s:float ->
  count:int ->
  t
(** Periodic {!Rogue_segments} registrations during [\[from_s, until_s)]. *)

val reflection :
  reflector:Scion_addr.Ia.t ->
  victim:Scion_addr.Ia.t ->
  from_s:float ->
  until_s:float ->
  period_s:float ->
  count:int ->
  t
(** Periodic {!Scmp_reflect} bursts during [\[from_s, until_s)]. *)

val flood :
  attacker:Scion_addr.Ia.t ->
  target:Scion_addr.Ia.t ->
  from_s:float ->
  until_s:float ->
  period_s:float ->
  packets:int ->
  duplicate_pct:int ->
  t
(** Periodic {!Volumetric_flood} bursts during [\[from_s, until_s)].
    [duplicate_pct] must be in [\[0, 100\]]. *)

val compromise_drill : isd:int -> at_s:float -> rotate_after_s:float -> t
(** {!Trc_compromise} at [at_s] followed by {!Trc_rotate} once the
    operators notice, [rotate_after_s] later. *)

val seq : t list -> t
(** Superpose campaigns (events interleave by time). *)

val ( ++ ) : t -> t -> t
(** [a ++ b] is [seq [a; b]]. *)
