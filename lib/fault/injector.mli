(** The deterministic fault injector: compiles a {!Scenario.t} into
    {!Netsim.Engine.t} timer events.

    Determinism contract: the scenario elaborates against the RNG stream
    passed to {!attach} — conventionally [Rng.of_label seed "fault"] —
    and the injector itself draws nothing afterwards. Attaching (or not
    attaching) an injector therefore leaves every workload RNG stream
    byte-identical; only the link/control state transitions it applies can
    change what the workload observes. [test/test_golden.ml] pins this
    property against the checked-in evidence. *)

type t

(* scion-lint: rng-stream fault -- scenario elaboration draws only from the dedicated fault stream *)
val attach :
  engine:Netsim.Engine.t ->
  rng:Scion_util.Rng.t ->
  apply:(Scenario.op -> unit) ->
  Scenario.t ->
  t
(** Elaborate the scenario with [rng] and schedule one engine event per
    fault op; each event calls [apply]. Ops scheduled before the engine's
    current time are rejected with [Invalid_argument] (a scenario is
    attached at or before its first op, never mid-flight). *)

(* scion-lint: rng-stream fault -- scenario elaboration draws only from the dedicated fault stream *)
val attach_net :
  engine:Netsim.Engine.t ->
  rng:Scion_util.Rng.t ->
  net:Netsim.Net.t ->
  ?on_op:(Scenario.op -> unit) ->
  Scenario.t ->
  t
(** {!attach} with the standard fabric applier: link ops drive
    {!Netsim.Net.set_link_up} / [set_extra_latency] / [set_extra_loss];
    node ops toggle every incident link; control ops flip {!control_up}.
    [on_op] observes each op after it is applied (telemetry, logging). *)

val events : t -> Scenario.event list
(** The full elaborated schedule, sorted by time. *)

val fired : t -> int
(** Ops applied so far (grows as the engine runs). *)

val control_up : t -> bool
(** False between [Control_down] and [Control_up] ops — hosts model
    path-fetch failures against this flag. Starts true. *)

(** {1 Adversaries}

    The same timer machinery compiles {!Adversary.t} campaigns. The
    determinism contract is identical: elaboration draws only from the
    stream passed here — conventionally [Rng.of_label seed "fault.adv"]
    — and attaching an adversary leaves every workload stream
    byte-identical. *)

type adv
(** An attached adversary campaign. *)

(* scion-lint: rng-stream fault.adv -- campaign elaboration draws only from the dedicated adversary stream *)
val attach_adversary :
  engine:Netsim.Engine.t ->
  rng:Scion_util.Rng.t ->
  apply:(Adversary.op -> unit) ->
  Adversary.t ->
  adv
(** Elaborate the campaign with [rng] and schedule one engine event per
    adversary op; each event calls [apply]. Ops scheduled before the
    engine's current time are rejected with [Invalid_argument]. *)

val adv_events : adv -> Adversary.event list
(** The full elaborated attack schedule, sorted by time. *)

val adv_fired : adv -> int
(** Adversary ops applied so far (grows as the engine runs). *)
