module Rng = Scion_util.Rng

type op =
  | Link_down of Netsim.Net.link_id
  | Link_up of Netsim.Net.link_id
  | Extra_latency of { link : Netsim.Net.link_id; ms : float }
  | Loss_burst of { link : Netsim.Net.link_id; loss : float }
  | Node_down of Netsim.Net.node
  | Node_up of Netsim.Net.node
  | Control_down
  | Control_up

let op_to_string = function
  | Link_down l -> Printf.sprintf "link %d down" l
  | Link_up l -> Printf.sprintf "link %d up" l
  | Extra_latency { link; ms } -> Printf.sprintf "link %d extra latency %g ms" link ms
  | Loss_burst { link; loss } -> Printf.sprintf "link %d loss burst %g" link loss
  | Node_down n -> Printf.sprintf "node %d down" n
  | Node_up n -> Printf.sprintf "node %d up" n
  | Control_down -> "control service down"
  | Control_up -> "control service up"

type event = { at_s : float; op : op }

(* A scenario elaborates to events given the fault stream. Elaboration is
   the only place random draws happen, and combinator order is fixed, so
   the same (scenario, seed) pair always yields the same schedule. *)
type t = Rng.t -> event list

let check_time name v =
  if not (Float.is_finite v) || v < 0.0 then
    invalid_arg (Printf.sprintf "Scenario.%s: time must be finite and >= 0 (got %g)" name v)

let nothing : t = fun _rng -> []

let at t ops =
  check_time "at" t;
  fun _rng -> List.map (fun op -> { at_s = t; op }) ops

let every ~period_s ~until_s start ops =
  check_time "every" start;
  check_time "every" until_s;
  if not (Float.is_finite period_s) || period_s <= 0.0 then
    invalid_arg (Printf.sprintf "Scenario.every: period must be > 0 (got %g)" period_s);
  fun _rng ->
    let rec go t acc =
      if t >= until_s then List.rev acc
      else go (t +. period_s) (List.rev_append (List.map (fun op -> { at_s = t; op }) ops) acc)
    in
    go start []

let flap ?(jitter_s = 0.0) ~link ~start_s ~count ~down_s ~up_s () =
  check_time "flap" start_s;
  check_time "flap" down_s;
  check_time "flap" up_s;
  if count < 0 then invalid_arg "Scenario.flap: count must be >= 0";
  if not (Float.is_finite jitter_s) || jitter_s < 0.0 then
    invalid_arg (Printf.sprintf "Scenario.flap: jitter must be finite and >= 0 (got %g)" jitter_s);
  fun rng ->
    let stretch () = if jitter_s > 0.0 then Rng.float rng jitter_s else 0.0 in
    let rec go i t acc =
      if i >= count then List.rev acc
      else begin
        let down_at = t in
        let up_at = down_at +. down_s +. stretch () in
        let next = up_at +. up_s +. stretch () in
        go (i + 1) next
          ({ at_s = up_at; op = Link_up link } :: { at_s = down_at; op = Link_down link } :: acc)
      end
    in
    go 0 start_s []

let span name ~from_s ~to_s ~down ~up =
  check_time name from_s;
  check_time name to_s;
  if to_s < from_s then
    invalid_arg (Printf.sprintf "Scenario.%s: window ends (%g) before it starts (%g)" name to_s from_s);
  fun _rng -> [ { at_s = from_s; op = down }; { at_s = to_s; op = up } ]

let window ~link ~from_s ~to_s ~extra_ms =
  span "window" ~from_s ~to_s
    ~down:(Extra_latency { link; ms = extra_ms })
    ~up:(Extra_latency { link; ms = 0.0 })

let outage ~link ~from_s ~to_s = span "outage" ~from_s ~to_s ~down:(Link_down link) ~up:(Link_up link)

let burst ~link ~from_s ~to_s ~loss =
  span "burst" ~from_s ~to_s ~down:(Loss_burst { link; loss }) ~up:(Loss_burst { link; loss = 0.0 })

let partition ~node ~from_s ~to_s =
  span "partition" ~from_s ~to_s ~down:(Node_down node) ~up:(Node_up node)

let blackout ~from_s ~to_s = span "blackout" ~from_s ~to_s ~down:Control_down ~up:Control_up

let seq scenarios rng =
  let events = List.concat_map (fun s -> s rng) scenarios in
  (* Stable sort keeps combinator order for simultaneous events. *)
  List.stable_sort (fun a b -> Float.compare a.at_s b.at_s) events

let ( ++ ) a b = seq [ a; b ]

let elaborate t ~rng = seq [ t ] rng
