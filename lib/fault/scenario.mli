(** Declarative fault scenarios for the deterministic injector.

    A scenario is a recipe: given the scenario's own {!Scion_util.Rng.t}
    stream it elaborates into a finite list of timed {!op}s. All
    randomness a scenario uses (flap-duration jitter, burst placement)
    comes from that stream and nothing else, so attaching a scenario to a
    running simulation never perturbs the workload's draws — the
    determinism rule the golden evidence depends on.

    Times are seconds on the simulation clock of the {!Netsim.Engine.t}
    the scenario is eventually attached to. Link and node ids are the
    target fabric's ({!Netsim.Net.link_id} / {!Netsim.Net.node}). *)

(** One primitive fault transition. [Node_*] and [Control_*] ops are
    resolved by the applier ({!Injector.attach}'s [apply], or the built-in
    fabric applier of {!Injector.attach_net}). *)
type op =
  | Link_down of Netsim.Net.link_id
  | Link_up of Netsim.Net.link_id
  | Extra_latency of { link : Netsim.Net.link_id; ms : float }
      (** Maintenance degradation: additive one-way latency ([0.] clears). *)
  | Loss_burst of { link : Netsim.Net.link_id; loss : float }
      (** Additive loss probability on top of the link's base loss
          ([0.] ends the burst). *)
  | Node_down of Netsim.Net.node
      (** Outage of a node: every incident link goes down. *)
  | Node_up of Netsim.Net.node
  | Control_down  (** Control-service blackout begins (path fetches fail). *)
  | Control_up

val op_to_string : op -> string

type event = { at_s : float; op : op }
(** A concrete timer event after elaboration. *)

type t
(** A scenario (composable, not yet elaborated). *)

(* scion-lint: rng-stream fault -- all scenario draws come from the injector's fault stream *)
val elaborate : t -> rng:Scion_util.Rng.t -> event list
(** Expand into concrete events, sorted by time (ties keep combinator
    order). All random draws come from [rng]. *)

(** {1 Combinators} *)

val nothing : t

val at : float -> op list -> t
(** [at t ops] fires every op at time [t] (seconds, [>= 0.]). *)

val every : period_s:float -> until_s:float -> float -> op list -> t
(** [every ~period_s ~until_s start ops] repeats [ops] at [start],
    [start + period_s], ... strictly before [until_s]. Requires
    [period_s > 0.]. *)

val flap :
  ?jitter_s:float ->
  link:Netsim.Net.link_id ->
  start_s:float ->
  count:int ->
  down_s:float ->
  up_s:float ->
  unit ->
  t
(** [count] down/up cycles: down at [start_s], up [down_s] later, next
    flap [up_s] after that. With [jitter_s], each phase duration is
    stretched by a uniform draw in [\[0, jitter_s)] from the scenario
    stream. *)

val window : link:Netsim.Net.link_id -> from_s:float -> to_s:float -> extra_ms:float -> t
(** Maintenance latency window: add [extra_ms] one-way at [from_s], clear
    it at [to_s]. *)

val outage : link:Netsim.Net.link_id -> from_s:float -> to_s:float -> t
(** Hard link outage window: down at [from_s], back up at [to_s]. *)

val burst : link:Netsim.Net.link_id -> from_s:float -> to_s:float -> loss:float -> t
(** Loss burst window: add [loss] per-traversal probability during
    [\[from_s, to_s)]. *)

val partition : node:Netsim.Net.node -> from_s:float -> to_s:float -> t
(** Node outage window: all links incident to [node] go down at [from_s]
    and come back at [to_s]. *)

val blackout : from_s:float -> to_s:float -> t
(** Control-service blackout window. *)

val seq : t list -> t
(** Superpose scenarios (events interleave by time). *)

val ( ++ ) : t -> t -> t
(** [a ++ b] is [seq [a; b]]. *)
