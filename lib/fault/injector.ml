module Engine = Netsim.Engine
module Net = Netsim.Net

type t = {
  events : Scenario.event list;
  mutable fired : int;
  mutable control : bool;
}

let attach ~engine ~rng ~apply scenario =
  let events = Scenario.elaborate scenario ~rng in
  let t = { events; fired = 0; control = true } in
  List.iter
    (fun (ev : Scenario.event) ->
      Engine.schedule_at engine ~time:ev.Scenario.at_s (fun () ->
          (match ev.Scenario.op with
          | Scenario.Control_down -> t.control <- false
          | Scenario.Control_up -> t.control <- true
          | Scenario.Link_down _ | Scenario.Link_up _ | Scenario.Extra_latency _
          | Scenario.Loss_burst _ | Scenario.Node_down _ | Scenario.Node_up _ ->
              ());
          apply ev.Scenario.op;
          t.fired <- t.fired + 1))
    events;
  t

let net_apply net op =
  match op with
  | Scenario.Link_down l -> Net.set_link_up net l false
  | Scenario.Link_up l -> Net.set_link_up net l true
  | Scenario.Extra_latency { link; ms } -> Net.set_extra_latency net link ms
  | Scenario.Loss_burst { link; loss } -> Net.set_extra_loss net link loss
  | Scenario.Node_down n -> List.iter (fun l -> Net.set_link_up net l false) (Net.links_of net n)
  | Scenario.Node_up n -> List.iter (fun l -> Net.set_link_up net l true) (Net.links_of net n)
  | Scenario.Control_down | Scenario.Control_up -> ()

let attach_net ~engine ~rng ~net ?(on_op = fun _ -> ()) scenario =
  attach ~engine ~rng scenario ~apply:(fun op ->
      net_apply net op;
      on_op op)

let events t = t.events
let fired t = t.fired
let control_up t = t.control

type adv = {
  adv_events : Adversary.event list;
  mutable adv_fired : int;
}

let attach_adversary ~engine ~rng ~apply adversary =
  let adv_events = Adversary.elaborate adversary ~rng in
  let t = { adv_events; adv_fired = 0 } in
  List.iter
    (fun (ev : Adversary.event) ->
      Engine.schedule_at engine ~time:ev.Adversary.at_s (fun () ->
          apply ev.Adversary.op;
          t.adv_fired <- t.adv_fired + 1))
    adv_events;
  t

let adv_events t = t.adv_events
let adv_fired t = t.adv_fired
