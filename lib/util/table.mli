(** Table helpers: deterministic hash-table iteration for the simulator, and
    plain-text table rendering for the experiment harness output.

    {1 Deterministic iteration}

    [Hashtbl.iter]/[Hashtbl.fold] visit bindings in an order that depends on
    the hash seed and insertion history, so any simulation-visible use of
    them can leak nondeterminism into event scheduling and experiment
    output. The helpers below visit the current bindings in ascending key
    order instead; [scion-lint]'s [determinism] rule points offenders here. *)

val sorted_keys : ?cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** [sorted_keys t] is the list of distinct keys of [t] in ascending order
    (by [cmp], default {!Stdlib.compare}). *)

val iter_sorted : ?cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted f t] applies [f] to the current binding of every key of
    [t], in ascending key order. Unlike [Hashtbl.iter] it visits each key
    once, even when older shadowed bindings exist. *)

val fold_sorted : ?cmp:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** [fold_sorted f t init] folds [f] over the current bindings of [t] in
    ascending key order. Argument order matches [Hashtbl.fold] so it is a
    drop-in replacement. *)

val find_or : default:'v -> ('k, 'v) Hashtbl.t -> 'k -> 'v
(** [find_or ~default t k] is the binding of [k], or [default] when [k] is
    unbound — a total alternative to [Hashtbl.find]. *)

(** {1 Text rendering} *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] returns an aligned ASCII table. Every row must
    have the same arity as the header. *)

val print : header:string list -> rows:string list list -> unit
(** Render and emit through the installed {!set_printer} sink
    ([print_string] by default; [Telemetry.Log] reroutes it through the
    report channel so captured experiment output includes tables). *)

val set_printer : (string -> unit) -> unit
(** Redirect {!print} output. The default prints to stdout. *)

val fmt_ms : float -> string
(** Milliseconds with one decimal, e.g. ["149.8"]. *)

val fmt_pct : float -> string
(** Fraction rendered as a percentage with one decimal, e.g. ["23.7%"]. *)

val fmt_ratio : float -> string
(** Ratio with three decimals, e.g. ["0.931"]. *)

val fmt_float : float -> string
(** The canonical free-form float format of the evidence harness: [%.6g].
    Everything that renders a raw statistic ({!Stats.percentile} outputs,
    headline gauges) must use this one format so checked-in goldens never
    churn from printf drift. *)
