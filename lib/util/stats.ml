let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  assert (Array.length xs > 0);
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (acc /. float_of_int (Array.length xs))

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let sorted_copy xs =
  let ys = Array.copy xs in
  (* Float.compare, not polymorphic compare: the polymorphic version orders
     nan via its bit pattern and boxes every element on the way through. *)
  Array.sort Float.compare ys;
  ys

let percentile xs p =
  assert (Array.length xs > 0);
  assert (p >= 0.0 && p <= 100.0);
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then ys.(lo)
    else
      let frac = rank -. float_of_int lo in
      ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))

let median xs = percentile xs 50.0

type boxplot = {
  low_whisker : float;
  q1 : float;
  med : float;
  q3 : float;
  high_whisker : float;
}

let boxplot xs =
  {
    low_whisker = percentile xs 5.0;
    q1 = percentile xs 25.0;
    med = percentile xs 50.0;
    q3 = percentile xs 75.0;
    high_whisker = percentile xs 95.0;
  }

type cdf = (float * float) list

let cdf xs =
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let points = ref [] in
  for i = n - 1 downto 0 do
    points := (ys.(i), float_of_int (i + 1) /. float_of_int n) :: !points
  done;
  (* Collapse duplicate values, keeping the highest fraction for each. *)
  let rec dedup = function
    | (v1, _) :: ((v2, _) :: _ as rest) when Float.equal v1 v2 -> dedup rest
    | p :: rest -> p :: dedup rest
    | [] -> []
  in
  dedup !points

let cdf_at c v =
  let rec go acc = function
    | (x, f) :: rest -> if x <= v then go f rest else acc
    | [] -> acc
  in
  go 0.0 c

let cdf_inverse c f =
  assert (f > 0.0 && f <= 1.0);
  let rec go = function
    | [ (x, _) ] -> x
    | (x, frac) :: rest -> if frac >= f then x else go rest
    | [] -> invalid_arg "cdf_inverse: empty cdf"
  in
  go c

let resample_cdf c n =
  let arr = Array.of_list c in
  let len = Array.length arr in
  if len <= n || n < 2 then c
  else
    let out = ref [] in
    for i = n - 1 downto 0 do
      let idx = i * (len - 1) / (n - 1) in
      out := arr.(idx) :: !out
    done;
    !out

let histogram xs ~bins =
  assert (Array.length xs > 0);
  assert (bins > 0);
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
