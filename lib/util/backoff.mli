(** Capped exponential backoff with deterministic jitter.

    Every retry loop in [lib/] must pace itself through this module
    (scion-lint's [unbounded-retry] rule): a policy bounds the attempt
    count, the per-attempt delay grows geometrically up to a cap, and the
    jitter that de-synchronises concurrent retriers is drawn from the
    {b caller's} {!Rng.t} — never from ambient randomness — so a seeded
    simulation replays its retry schedule exactly.

    Delays are simulated milliseconds: nothing here sleeps or reads a
    clock. Callers account the returned delay against their own simulated
    timeline (an [Engine.t] schedule, an accumulated latency figure). *)

type policy = {
  base_ms : float;  (** First-retry delay before jitter. *)
  multiplier : float;  (** Geometric growth per attempt ([>= 1.0]). *)
  cap_ms : float;  (** Upper bound on the un-jittered delay. *)
  jitter : float;
      (** Relative jitter amplitude in [\[0, 1\]]: the delay is scaled by a
          factor uniform in [\[1 - jitter, 1 + jitter\]]. [0.] draws
          nothing from the RNG. *)
  max_attempts : int;  (** Total tries (first attempt included, [>= 1]). *)
}

val default : policy
(** 100 ms base, doubling, capped at 30 s, 20% jitter, 6 attempts. *)

val make :
  ?base_ms:float ->
  ?multiplier:float ->
  ?cap_ms:float ->
  ?jitter:float ->
  ?max_attempts:int ->
  unit ->
  policy
(** {!default} with overrides. Raises [Invalid_argument] on non-finite or
    out-of-range fields (negative [base_ms], [multiplier < 1.0],
    [cap_ms < base_ms], [jitter] outside [\[0, 1\]], [max_attempts < 1]). *)

val delay_ms : policy -> rng:Rng.t -> attempt:int -> float
(** [delay_ms p ~rng ~attempt] is the pause after failed attempt [attempt]
    (1-based): [min cap_ms (base_ms *. multiplier ^ (attempt - 1))],
    jittered. Draws from [rng] exactly once when [p.jitter > 0.], never
    otherwise — so a zero-jitter policy leaves the stream untouched.
    Requires [attempt >= 1]. *)

val exhausted : policy -> attempt:int -> bool
(** [exhausted p ~attempt] is true when attempt number [attempt] (1-based)
    exceeds the policy's budget — time to give up, not retry. *)

type 'e give_up = { attempts : int; waited_ms : float; last_error : 'e }
(** How a retried operation failed for good: total tries made, total
    simulated backoff delay accumulated between them, and the error the
    final attempt returned. *)

val retry :
  policy ->
  rng:Rng.t ->
  ?on_wait:(attempt:int -> delay_ms:float -> unit) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a * int, 'e give_up) result
(** [retry p ~rng f] runs [f ~attempt:1], [f ~attempt:2], ... until [f]
    returns [Ok] or the policy is exhausted. [Ok (v, attempts)] carries how
    many tries the success took. Between attempts, [on_wait] observes the
    jittered delay so the caller can advance its simulated clock or
    schedule the wakeup. *)
