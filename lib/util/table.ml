let sorted_keys ?(cmp = Stdlib.compare) t =
  (* scion-lint: allow determinism -- keys are sorted before being exposed *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t [] in
  List.sort_uniq cmp keys

let iter_sorted ?cmp f t =
  List.iter
    (fun k -> match Hashtbl.find_opt t k with Some v -> f k v | None -> ())
    (sorted_keys ?cmp t)

let fold_sorted ?cmp f t init =
  List.fold_left
    (fun acc k -> match Hashtbl.find_opt t k with Some v -> f k v acc | None -> acc)
    init (sorted_keys ?cmp t)

let find_or ~default t k = match Hashtbl.find_opt t k with Some v -> v | None -> default

let render ~header ~rows =
  let cols = List.length header in
  List.iter (fun r -> assert (List.length r = cols)) rows;
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let pad i cell =
    Buffer.add_string buf cell;
    Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' ')
  in
  let line row =
    List.iteri pad row;
    Buffer.add_char buf '\n'
  in
  line header;
  let rule = List.mapi (fun i _ -> String.make widths.(i) '-') header in
  line rule;
  List.iter line rows;
  Buffer.contents buf

(* scion-lint: allow naked-printf -- Table.print IS the sanctioned table renderer; telemetry depends on this module, not vice versa *)
let printer = ref print_string
let set_printer f = printer := f
let print ~header ~rows = !printer (render ~header ~rows)
let fmt_ms v = Printf.sprintf "%.1f" v
let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let fmt_ratio v = Printf.sprintf "%.3f" v
let fmt_float v = Printf.sprintf "%.6g" v
