type policy = {
  base_ms : float;
  multiplier : float;
  cap_ms : float;
  jitter : float;
  max_attempts : int;
}

let validate p =
  let finite_nonneg name v =
    if not (Float.is_finite v) || v < 0.0 then
      invalid_arg (Printf.sprintf "Backoff.make: %s must be finite and >= 0 (got %g)" name v)
  in
  finite_nonneg "base_ms" p.base_ms;
  finite_nonneg "cap_ms" p.cap_ms;
  if Float.is_nan p.multiplier || p.multiplier < 1.0 then
    invalid_arg (Printf.sprintf "Backoff.make: multiplier must be >= 1 (got %g)" p.multiplier);
  if p.cap_ms < p.base_ms then
    invalid_arg
      (Printf.sprintf "Backoff.make: cap_ms (%g) must be >= base_ms (%g)" p.cap_ms p.base_ms);
  if Float.is_nan p.jitter || p.jitter < 0.0 || p.jitter > 1.0 then
    invalid_arg (Printf.sprintf "Backoff.make: jitter must be in [0, 1] (got %g)" p.jitter);
  if p.max_attempts < 1 then
    invalid_arg (Printf.sprintf "Backoff.make: max_attempts must be >= 1 (got %d)" p.max_attempts);
  p

let default =
  { base_ms = 100.0; multiplier = 2.0; cap_ms = 30_000.0; jitter = 0.2; max_attempts = 6 }

let make ?(base_ms = default.base_ms) ?(multiplier = default.multiplier)
    ?(cap_ms = default.cap_ms) ?(jitter = default.jitter) ?(max_attempts = default.max_attempts)
    () =
  validate { base_ms; multiplier; cap_ms; jitter; max_attempts }

let delay_ms p ~rng ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay_ms: attempt must be >= 1";
  let raw = p.base_ms *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min p.cap_ms raw in
  if p.jitter > 0.0 then
    (* One draw per delay, from the caller's stream: factor uniform in
       [1 - jitter, 1 + jitter]. *)
    capped *. (1.0 -. p.jitter +. Rng.float rng (2.0 *. p.jitter))
  else capped

let exhausted p ~attempt = attempt > p.max_attempts

type 'e give_up = { attempts : int; waited_ms : float; last_error : 'e }

let retry p ~rng ?(on_wait = fun ~attempt:_ ~delay_ms:_ -> ()) f =
  let rec go attempt waited =
    match f ~attempt with
    | Ok v -> Ok (v, attempt)
    | Error e ->
        if exhausted p ~attempt:(attempt + 1) then
          Error { attempts = attempt; waited_ms = waited; last_error = e }
        else begin
          let d = delay_ms p ~rng ~attempt in
          on_wait ~attempt ~delay_ms:d;
          go (attempt + 1) (waited +. d)
        end
  in
  go 1 0.0
