open Scion_controlplane
module Ia = Scion_addr.Ia
let now = 1_700_000_000.0
let spec ?(core=false) ?(ca=false) spec_ia = { Mesh.spec_ia; core; ca; profile = Scion_cppki.Cert.Open_source; note = "t" }
let link ?(cls=Mesh.Parent_child) l_a l_b = { Mesh.l_a; l_b; cls }
let trace p = String.concat " " (List.map (fun h -> Printf.sprintf "%s[%d,%d]" (Ia.to_string h.Scion_addr.Hop_pred.ia) h.Scion_addr.Hop_pred.ingress h.Scion_addr.Hop_pred.egress) p.Combinator.interfaces)

let run_case (n_cores1, n_cores2, n_leaves1, n_leaves2, seed) verbose =
  let rng = Scion_util.Rng.create (Int64.of_int (seed + 77)) in
  let mk_ias isd n_cores n_leaves =
    ( List.init n_cores (fun i -> Ia.make isd (100 + i)),
      List.init n_leaves (fun i -> Ia.make isd (200 + i)) ) in
  let cores1, leaves1 = mk_ias 1 n_cores1 n_leaves1 in
  let cores2, leaves2 = mk_ias 2 n_cores2 n_leaves2 in
  let all_cores = cores1 @ cores2 in
  let ca1, ca2 =
    match (cores1, cores2) with
    | c1 :: _, c2 :: _ -> (c1, c2)
    | _ -> invalid_arg "debug_prop: each ISD needs at least one core AS"
  in
  let specs =
    List.map (fun i -> spec ~core:true ~ca:true i) [ ca1; ca2 ]
    @ List.map (fun i -> spec ~core:true i) (List.filter (fun c -> not (Ia.equal c ca1) && not (Ia.equal c ca2)) all_cores)
    @ List.map (fun i -> spec i) (leaves1 @ leaves2) in
  let core_links =
    let rec pairs = function a :: (b :: _ as rest) -> link ~cls:Mesh.Core_link a b :: pairs rest | _ -> [] in
    let chain = pairs all_cores in
    let extras = List.filter_map (fun _ ->
      let a = Scion_util.Rng.pick rng (Array.of_list all_cores) in
      let b = Scion_util.Rng.pick rng (Array.of_list all_cores) in
      if Ia.equal a b then None else Some (link ~cls:Mesh.Core_link a b)) (List.init 3 Fun.id) in
    chain @ extras in
  let leaf_links isd_cores leaves =
    let rec go acc parents = function
      | [] -> acc
      | leaf :: rest ->
          let candidates = Array.of_list parents in
          let p1 = Scion_util.Rng.pick rng candidates in
          let acc = link p1 leaf :: acc in
          let acc = if Scion_util.Rng.bool rng then begin
              let p2 = Scion_util.Rng.pick rng candidates in
              if Ia.equal p1 p2 then acc else link p2 leaf :: acc end else acc in
          go acc (leaf :: parents) rest in
    go [] isd_cores leaves in
  let links = core_links @ leaf_links cores1 leaves1 @ leaf_links cores2 leaves2
    @ (match leaves1 with l1 :: l2 :: _ when Scion_util.Rng.bool rng -> [ link ~cls:Mesh.Peering l1 l2 ] | _ -> []) in
  let config = { Mesh.default_config with Mesh.verify_pcbs = false; per_origin = 6 } in
  let m = Mesh.create ~config ~now ~ases:specs ~links () in
  Mesh.run_beaconing m ~now;
  let everyone = Array.of_list (all_cores @ leaves1 @ leaves2) in
  let ok = ref true in
  for _ = 1 to 8 do
    let src = Scion_util.Rng.pick rng everyone in
    let dst = Scion_util.Rng.pick rng everyone in
    if not (Ia.equal src dst) then
      List.iter (fun fp ->
        (match Mesh.walk m ~now fp with
         | Mesh.Walk_delivered { dst = at; _ } when Ia.equal at dst -> ()
         | Mesh.Walk_delivered { dst = at; _ } ->
             ok := false;
             if verbose then Printf.printf "MISDELIVERED %s->%s at %s: %s\n" (Ia.to_string src) (Ia.to_string dst) (Ia.to_string at) (trace fp)
         | Mesh.Walk_dropped { at; reason } ->
             ok := false;
             if verbose then Printf.printf "DROP %s->%s at %s (%s): %s\n" (Ia.to_string src) (Ia.to_string dst) (Ia.to_string at) (Scion_dataplane.Router.drop_reason_to_string reason) (trace fp));
        (match Mesh.walk m ~now ~payload:"ping" fp with
         | Mesh.Walk_delivered { packet; _ } -> (
             let reply = Scion_dataplane.Packet.reply_skeleton packet ~payload:"pong" in
             match Mesh.walk_packet m ~now ~from:dst reply with
             | Mesh.Walk_delivered { dst = back; _ } when Ia.equal back src -> ()
             | Mesh.Walk_delivered { dst = back; _ } ->
                 ok := false; if verbose then Printf.printf "REPLY MISDELIVERED %s->%s back at %s: %s\n" (Ia.to_string src) (Ia.to_string dst) (Ia.to_string back) (trace fp)
             | Mesh.Walk_dropped { at; reason } ->
                 ok := false;
                 if verbose then Printf.printf "REPLY DROP %s->%s at %s (%s): %s\n" (Ia.to_string src) (Ia.to_string dst) (Ia.to_string at) (Scion_dataplane.Router.drop_reason_to_string reason) (trace fp))
         | Mesh.Walk_dropped _ -> ()))
        (Mesh.paths m ~src ~dst)
  done;
  !ok

let () =
  for c1 = 1 to 3 do
    for c2 = 1 to 2 do
      for l1 = 1 to 5 do
        for l2 = 0 to 3 do
          for seed = 0 to 30 do
            if not (run_case (c1, c2, l1, l2, seed) false) then begin
              Printf.printf "FAILING CASE: cores1=%d cores2=%d leaves1=%d leaves2=%d seed=%d\n" c1 c2 l1 l2 seed;
              ignore (run_case (c1, c2, l1, l2, seed) true);
              exit 1
            end
          done
        done
      done
    done
  done;
  print_endline "all cases pass"
