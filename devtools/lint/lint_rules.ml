(* The scion-lint rules. Each is a [Lint.rule]; the engine runs every
   rule whose [scope] accepts the (repo-relative) file being linted.

   The invariants enforced here are the ones the SCIERA reproduction's
   evaluation depends on: the discrete-event simulation must be bit-for-bit
   reproducible from its seed, so no wall-clock reads, no ambient
   randomness, no hash-order-dependent iteration in simulation-visible
   code, and no partial functions that can crash an experiment half-way
   through the measurement window. *)

open Lint

let in_dir prefix file =
  let n = String.length prefix in
  String.length file > n && String.sub file 0 n = prefix

(* ------------------------------------------------------------------ *)
(* R1: determinism. *)

let nondet_clock = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let hash_order_idents =
  [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys"; "Hashtbl.to_seq_values" ]

let determinism =
  {
    no_hooks with
    id = "determinism";
    severity = Error;
    doc =
      "Bans wall-clock reads (Unix.gettimeofday, Unix.time, Sys.time) and ambient randomness \
       (Random.*) everywhere, and hash-order-dependent iteration (Hashtbl.iter/fold/to_seq*) \
       inside lib/ where iteration order can leak into event scheduling or experiment output. \
       Use simulated time, Scion_util.Rng, and Scion_util.Table.iter_sorted/fold_sorted.";
    (* Scion_util.Rng is the one sanctioned randomness source. *)
    scope = (fun file -> file <> "lib/util/rng.ml");
    on_expr =
      Some
        (fun ctx emit e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              let name = dotted txt in
              if List.mem name nondet_clock then
                emit loc
                  (Printf.sprintf
                     "%s reads the wall clock and breaks simulation reproducibility; thread the \
                      simulated time (Netsim.Engine.now) instead"
                     name)
              else
                match flatten_longident txt with
                | "Random" :: _ :: _ ->
                    emit loc
                      (name
                       ^ " is ambient, unseeded randomness; draw from an explicitly seeded \
                          Scion_util.Rng.t so runs are reproducible")
                | _ ->
                    if List.mem name hash_order_idents && in_dir "lib/" ctx.file then
                      emit loc
                        (name
                         ^ " visits bindings in nondeterministic hash order; use \
                            Scion_util.Table.iter_sorted / fold_sorted (or sort the keys first)"))
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R2: totality. *)

let partial_fns =
  [
    ("List.hd", "pattern-match on the list (or use a guarded match with a clear error)");
    ("List.tl", "pattern-match on the list (or use a guarded match with a clear error)");
    ("Option.get", "pattern-match, or use Option.value ~default");
    ("Hashtbl.find", "use Hashtbl.find_opt, Scion_util.Table.find_or ~default, or match with a clear error");
  ]

let totality =
  {
    no_hooks with
    id = "totality";
    severity = Error;
    doc =
      "Flags partial functions (List.hd, List.tl, Option.get, Hashtbl.find) that raise on \
       empty/missing input; prefer the _opt variants or an explicit pattern match so failures \
       carry a useful error instead of crashing an experiment mid-run.";
    on_expr =
      Some
        (fun _ctx emit e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              match List.assoc_opt (dotted txt) partial_fns with
              | Some hint -> emit loc (Printf.sprintf "%s is partial; %s" (dotted txt) hint)
              | None -> ())
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R3: exception hygiene. *)

let exception_hygiene =
  {
    no_hooks with
    id = "catch-all-exn";
    severity = Error;
    doc =
      "Flags catch-all exception handlers ('with _ ->', 'exception _ ->') that silently \
       swallow every failure, including programming errors; match the specific exceptions you \
       expect, or bind and re-raise.";
    on_expr =
      Some
        (fun _ctx emit e ->
          let flag_case (c : Parsetree.case) =
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_any, None ->
                emit c.pc_lhs.ppat_loc
                  "catch-all 'with _ ->' swallows every exception (including bugs); match the \
                   specific exceptions you expect, or bind the exception and re-raise"
            | _ -> ()
          in
          match e.pexp_desc with
          | Pexp_try (_, cases) -> List.iter flag_case cases
          | Pexp_match (_, cases) ->
              List.iter
                (fun (c : Parsetree.case) ->
                  match (c.pc_lhs.ppat_desc, c.pc_guard) with
                  | Ppat_exception { ppat_desc = Ppat_any; ppat_loc; _ }, None ->
                      emit ppat_loc
                        "catch-all 'exception _ ->' swallows every exception (including bugs); \
                         match the specific exceptions you expect"
                  | _ -> ())
                cases
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R4: float discipline. *)

let float_arith = [ "+."; "-."; "*."; "/."; "**" ]

let floatish_name last =
  let has_suffix s suf =
    let n = String.length s and m = String.length suf in
    n >= m && String.sub s (n - m) m = suf
  in
  List.mem last [ "time"; "now"; "rtt"; "day"; "expiry"; "timestamp"; "deadline"; "latency"; "jitter" ]
  || List.exists (has_suffix last) [ "_s"; "_ms"; "_time"; "_rtt"; "_day"; "_expiry" ]

let floatish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flatten_longident txt with
      | [ op ] -> List.mem op float_arith
      | "Float" :: _ -> true
      | _ -> false)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (flatten_longident txt) with last :: _ -> floatish_name last | [] -> false)
  | Pexp_ident { txt = Longident.Lident name; _ } -> floatish_name name
  | _ -> false

let float_discipline =
  {
    no_hooks with
    id = "float-eq";
    severity = Warn;
    doc =
      "Flags polymorphic =/<> where an operand is syntactically a float (float literal, float \
       arithmetic, Float.* call, or a field/variable named like a simulated time: time, now, \
       day, rtt, *_s, *_ms, ...). Exact float equality on simulated time is usually a bug; \
       compare with an epsilon, or use Float.equal to make exact intent explicit.";
    on_expr =
      Some
        (fun _ctx emit e ->
          match e.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
                [ (Nolabel, a); (Nolabel, b) ] )
            when floatish a || floatish b ->
              emit e.pexp_loc
                (Printf.sprintf
                   "polymorphic %s on a float-typed operand; exact float equality on simulated \
                    time is fragile — compare with an epsilon, or use Float.equal to make exact \
                    intent explicit"
                   op)
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R5: interface coverage. *)

let interface_coverage =
  {
    no_hooks with
    id = "missing-mli";
    severity = Error;
    doc =
      "Every module under lib/ must have a corresponding .mli: interfaces are where invariants \
       get documented, and they keep the simulator's internal mutation out of reach of the \
       experiment code.";
    on_tree =
      Some
        (fun ~files emit ->
          List.iter
            (fun f ->
              if in_dir "lib/" f && Filename.check_suffix f ".ml" then
                let mli = f ^ "i" in
                if not (List.mem mli files) then
                  emit ~file:f ~line:1
                    (Printf.sprintf "module %s has no interface; add %s"
                       (String.capitalize_ascii (Filename.remove_extension (Filename.basename f)))
                       mli))
            files);
  }

(* ------------------------------------------------------------------ *)
(* R6: ignored results. *)

let result_call ctx (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) when registry_mem ctx.registry txt ->
      Some (dotted txt)
  | Pexp_construct ({ txt = Longident.Lident (("Ok" | "Error") as c); _ }, Some _) -> Some c
  | _ -> None

let ignored_result =
  {
    no_hooks with
    id = "ignored-result";
    severity = Error;
    doc =
      "Flags 'ignore (...)' and 'let _ = ...' applied to an expression whose declared type is a \
       result (per the tree's .mli files): discarding a result discards the error path. Match \
       on Ok/Error, or log the Error explicitly.";
    on_expr =
      Some
        (fun ctx emit e ->
          match e.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident "ignore"; _ }; _ },
                [ (Nolabel, arg) ] ) -> (
              match result_call ctx arg with
              | Some name ->
                  emit e.pexp_loc
                    (Printf.sprintf
                       "ignore discards the result (and its error path) of %s; match on \
                        Ok/Error instead"
                       name)
              | None -> ())
          | _ -> ());
    on_value_binding =
      Some
        (fun ctx emit (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_any -> (
              match result_call ctx vb.pvb_expr with
              | Some name ->
                  emit vb.pvb_pat.ppat_loc
                    (Printf.sprintf
                       "'let _ =' discards the result (and its error path) of %s; match on \
                        Ok/Error instead"
                       name)
              | None -> ())
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R7: print discipline. *)

let print_idents =
  [
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "print_endline";
    "print_string";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "prerr_endline";
    "prerr_string";
    "prerr_newline";
    "Stdlib.print_endline";
    "Stdlib.print_string";
    "Stdlib.print_newline";
  ]

let naked_printf =
  {
    no_hooks with
    id = "naked-printf";
    severity = Error;
    doc =
      "Bans direct stdout/stderr printing (Printf.printf, print_endline, ...) in lib/ outside \
       lib/telemetry/: report output goes through Telemetry.Log.out (redirectable, capturable \
       in tests) and diagnostics through Telemetry.Log.debug/info/warn/error (leveled), so \
       experiment output stays clean and machine-checkable. Executables in bin/, bench/ and \
       examples/ may print freely.";
    scope = (fun file -> in_dir "lib/" file && not (in_dir "lib/telemetry/" file));
    on_expr =
      Some
        (fun _ctx emit e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } ->
              let name = dotted txt in
              if List.mem name print_idents then
                emit loc
                  (Printf.sprintf
                     "%s prints directly from library code; route report output through \
                      Telemetry.Log.out and diagnostics through Telemetry.Log.debug/info/warn/error"
                     name)
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* R8: retry discipline. *)

let contains_substring hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m > 0 && go 0

(* A binding "goes through Backoff" when its subtree mentions the module —
   as a value (Backoff.retry, Backoff.delay_ms, ...) or in a type
   annotation (plumbing a Backoff.policy through a record or argument). *)
let mentions_backoff () =
  let found = ref false in
  let default = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        if List.mem "Backoff" (flatten_longident txt) then found := true
    | _ -> ());
    default.expr it e
  in
  let typ it (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) ->
        if List.mem "Backoff" (flatten_longident txt) then found := true
    | _ -> ());
    default.typ it t
  in
  let it = { default with expr; typ } in
  (it, found)

let binding_mentions_backoff (vb : Parsetree.value_binding) =
  let it, found = mentions_backoff () in
  it.expr it vb.pvb_expr;
  (match vb.pvb_constraint with
  | Some (Pvc_constraint { typ; _ }) -> it.typ it typ
  | Some (Pvc_coercion { ground; coercion }) ->
      Option.iter (it.typ it) ground;
      it.typ it coercion
  | None -> ());
  !found

let retryish name =
  let n = String.lowercase_ascii name in
  contains_substring n "retry" || contains_substring n "retries"

let retry_discipline =
  {
    no_hooks with
    id = "unbounded-retry";
    severity = Error;
    doc =
      "Flags retry logic in lib/ (any value binding whose name mentions 'retry'/'retries') that never \
       references Scion_util.Backoff: hand-rolled retry loops tend to be unbounded or to sleep \
       fixed intervals, which breaks both the capped-exponential policy and the determinism \
       contract (jitter must come from the caller's Rng). Drive retries through \
       Scion_util.Backoff.retry / delay_ms.";
    (* Backoff itself is where the retry machinery lives. *)
    scope = (fun file -> in_dir "lib/" file && file <> "lib/util/backoff.ml");
    on_value_binding =
      Some
        (fun _ctx emit (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ } when retryish name && not (binding_mentions_backoff vb) ->
              emit vb.pvb_pat.ppat_loc
                (Printf.sprintf
                   "%s looks like retry logic but never references Scion_util.Backoff; use \
                    Backoff.retry (or Backoff.delay_ms) so retries are capped, exponential and \
                    deterministically jittered"
                   name)
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)

let rules : rule list =
  [
    determinism;
    totality;
    exception_hygiene;
    float_discipline;
    interface_coverage;
    ignored_result;
    naked_printf;
    retry_discipline;
  ]
