(* Engine core for scion-lint: repo-specific static analysis over the OCaml
   parsetree. Single-file rules live in Lint_rules and run over one AST at a
   time; the whole-program passes live in Ipa and run over linked Summary
   data. This module owns the pieces both share: parsing (counted, so tests
   can assert each file is parsed exactly once), the directive-comment
   scanner (suppressions plus the hotpath / rng-stream annotations), the
   result-type registry, file collection, the finding type and the
   text/JSON reporters. Driver glues everything into one two-phase run. *)

type severity = Error | Warn

let severity_to_string = function Error -> "error" | Warn -> "warn"

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
  pass : string;  (* "file" for per-file rules, "link" for interprocedural passes *)
  symbol : string;  (* enclosing definition, for link findings; "" otherwise *)
  chain : string list;  (* call chain from a hotpath seed to the site, outermost first *)
  detail : string;  (* stable sub-kind (e.g. the allocation kind); part of the baseline key *)
}

let finding ~file ~line ~col ~rule ~severity message =
  { file; line; col; rule; severity; message; pass = "file"; symbol = ""; chain = []; detail = "" }

(* ------------------------------------------------------------------ *)
(* Registry of values whose declared return type is [result], built from
   the .mli files of the tree. Keys are dotted paths ("Trc.update",
   "Rw.Reader.raw") with at least two components; lookups try the flattened
   longident of a call and every suffix of it, so both [Rw.Reader.raw] and
   a locally opened [Reader.raw] resolve. *)

type registry = (string, unit) Hashtbl.t

let empty_registry : registry = Hashtbl.create 1

let rec flatten_longident = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_longident l @ [ s ]
  | Longident.Lapply (a, _) -> flatten_longident a

let dotted lid = String.concat "." (flatten_longident lid)

let rec return_type (ty : Parsetree.core_type) =
  match ty.ptyp_desc with
  | Ptyp_arrow (_, _, t) -> return_type t
  | Ptyp_poly (_, t) -> return_type t
  | _ -> ty

let returns_result (vd : Parsetree.value_description) =
  match (return_type vd.pval_type).ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> (
      match List.rev (flatten_longident txt) with
      | "result" :: _ -> true
      | _ -> false)
  | _ -> false

let add_registry_entry reg path =
  (* Register the full path and every suffix with >= 2 components, so both
     [Rw.Reader.raw] and a locally opened [Reader.raw] resolve. *)
  let rec loop = function
    | [] | [ _ ] -> ()
    | l ->
        Hashtbl.replace reg (String.concat "." l) ();
        (match l with [] -> () | _ :: rest -> loop rest)
  in
  loop path

let rec scan_signature reg prefix (items : Parsetree.signature) =
  List.iter
    (fun (item : Parsetree.signature_item) ->
      match item.psig_desc with
      | Psig_value vd when returns_result vd ->
          add_registry_entry reg (prefix @ [ vd.pval_name.txt ])
      | Psig_module { pmd_name = { txt = Some name; _ }; pmd_type; _ } ->
          scan_module_type reg (prefix @ [ name ]) pmd_type
      | _ -> ())
    items

and scan_module_type reg prefix (mty : Parsetree.module_type) =
  match mty.pmty_desc with
  | Pmty_signature items -> scan_signature reg prefix items
  | _ -> ()

let registry_mem (reg : registry) lid =
  let rec try_suffix = function
    | [] | [ _ ] -> false
    | l -> Hashtbl.mem reg (String.concat "." l) || (match l with [] -> false | _ :: rest -> try_suffix rest)
  in
  try_suffix (flatten_longident lid)

(* ------------------------------------------------------------------ *)
(* Directive comments.

   Syntax (each written inside its own comment opening with the marker;
   spelled without the comment opener here so the scanner does not read
   this documentation as directives):

     scion-lint: allow <rule>[, <rule>...] [-- justification]
     scion-lint: hotpath [-- why]
     scion-lint: rng-stream <name> [-- why]

   A directive on line N applies to lines N and N+1, so it can sit either
   at the end of the line it describes or alone on the line above it.
   [allow] silences matching findings ([allow all] silences every rule);
   [hotpath] seeds the hotpath-allocation pass at the next definition;
   [rng-stream <name>] documents which labelled stream an interface value
   carries, satisfying the rng-stream-provenance escape check. Malformed
   directives and unknown rule ids are themselves reported (rule
   [lint-directive]) so a typo cannot silently disable checking. *)

(* Built by concatenation so the linter does not flag this very string
   literal as a directive when linting its own source. *)
let directive_marker = "scion-lint" ^ ":"

type directives = {
  by_line : (int, string list) Hashtbl.t;  (* allow directives *)
  hotpath_lines : (int, unit) Hashtbl.t;
  stream_lines : (int, string) Hashtbl.t;  (* rng-stream annotations *)
  mutable directive_errors : (int * string) list;
}

let no_directives () =
  { by_line = Hashtbl.create 1; hotpath_lines = Hashtbl.create 1;
    stream_lines = Hashtbl.create 1; directive_errors = [] }

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else at (i + 1) in
  at 0

let cut_before s sep = match find_substring s sep with None -> s | Some i -> String.sub s 0 i

(* The whole-program passes run by Driver; their ids are valid in [allow]
   lists everywhere, and Ipa emits findings under them. *)
let pass_rule_ids = [ "rng-stream-provenance"; "hotpath-allocation"; "telemetry-registry" ]

(* Findings the engine itself can produce, also valid in [allow] lists. *)
let builtin_rule_ids = [ "lint-directive"; "parse" ] @ pass_rule_ids

(* A directive must open its comment: only whitespace may sit between the
   "(*" and the marker. This keeps prose comments and string literals that
   merely mention the marker from being parsed as directives. *)
let opens_comment line at =
  let rec back j =
    if j < 1 then false
    else
      match line.[j] with
      | ' ' | '\t' -> back (j - 1)
      | '*' -> j >= 1 && line.[j - 1] = '('
      | _ -> false
  in
  back (at - 1)

let scan_directives ~known_rules src =
  let known_rules = known_rules @ builtin_rule_ids in
  let supp = no_directives () in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_substring line directive_marker with
      | Some at when opens_comment line at ->
          let rest = String.sub line (at + String.length directive_marker) (String.length line - at - String.length directive_marker) in
          let rest = cut_before (cut_before rest "*)") "--" in
          let toks =
            String.split_on_char ' ' (String.map (function ',' | '\t' -> ' ' | c -> c) rest)
            |> List.filter (fun t -> t <> "")
          in
          (match toks with
          | "allow" :: (_ :: _ as rules) ->
              let bad = List.filter (fun r -> r <> "all" && not (List.mem r known_rules)) rules in
              if bad <> [] then
                supp.directive_errors <-
                  (lineno, Printf.sprintf "unknown rule id%s %s in suppression (known: %s)"
                     (if List.length bad > 1 then "s" else "")
                     (String.concat ", " bad) (String.concat ", " known_rules))
                  :: supp.directive_errors
              else Hashtbl.replace supp.by_line lineno rules
          | [ "hotpath" ] -> Hashtbl.replace supp.hotpath_lines lineno ()
          | [ "rng-stream"; name ] -> Hashtbl.replace supp.stream_lines lineno name
          | "rng-stream" :: _ ->
              supp.directive_errors <-
                (lineno, "malformed rng-stream annotation; expected (* " ^ directive_marker
                         ^ " rng-stream <name> [-- why] *)")
                :: supp.directive_errors
          | _ ->
              supp.directive_errors <-
                (lineno, "malformed directive; expected (* " ^ directive_marker
                         ^ " allow <rule>[, <rule>] [-- justification] *), (* " ^ directive_marker
                         ^ " hotpath *) or (* " ^ directive_marker ^ " rng-stream <name> *)")
                :: supp.directive_errors)
      | _ -> ())
    lines;
  supp

let suppressed supp ~line ~rule =
  let covers l =
    match Hashtbl.find_opt supp.by_line l with
    | None -> false
    | Some rules -> List.mem "all" rules || List.mem rule rules
  in
  covers line || covers (line - 1)

(* Annotations cover the line they sit on and the next, mirroring [allow]:
   the directive goes at the end of the definition's first line or alone on
   the line above it. *)
let hotpath_annotated supp ~line =
  Hashtbl.mem supp.hotpath_lines line || Hashtbl.mem supp.hotpath_lines (line - 1)

let stream_annotation supp ~line =
  match Hashtbl.find_opt supp.stream_lines line with
  | Some n -> Some n
  | None -> Hashtbl.find_opt supp.stream_lines (line - 1)

(* ------------------------------------------------------------------ *)
(* Rules. *)

type ctx = { file : string; registry : registry }

type emitter = Location.t -> string -> unit

type rule = {
  id : string;
  doc : string;
  severity : severity;
  scope : string -> bool;  (* repo-relative '/'-separated path *)
  on_expr : (ctx -> emitter -> Parsetree.expression -> unit) option;
  on_value_binding : (ctx -> emitter -> Parsetree.value_binding -> unit) option;
  on_tree : (files:string list -> (file:string -> line:int -> string -> unit) -> unit) option;
}

let no_hooks = { id = ""; doc = ""; severity = Error; scope = (fun _ -> true);
                 on_expr = None; on_value_binding = None; on_tree = None }

(* ------------------------------------------------------------------ *)
(* Parsing. Every parse is counted per file so the test suite can assert
   the two-phase driver parses each file exactly once, shared across every
   rule and pass. *)

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

let parse_counts : (string, int) Hashtbl.t = Hashtbl.create 64

let reset_parse_counts () = Hashtbl.reset parse_counts

let parse_count file = match Hashtbl.find_opt parse_counts file with Some n -> n | None -> 0

let parse_ast ~file src =
  Hashtbl.replace parse_counts file (parse_count file + 1);
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Location.input_name := file;
  try
    if Filename.check_suffix file ".mli" then Ok (Intf (Parse.interface lexbuf))
    else Ok (Impl (Parse.implementation lexbuf))
  with exn -> (
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
        let loc = report.Location.main.loc in
        Error (loc.loc_start.pos_lnum, Format.asprintf "%t" report.Location.main.txt)
    | _ -> Error (1, Printexc.to_string exn))

(* ------------------------------------------------------------------ *)
(* Per-file engine. [lint_source] parses internally when no pre-parsed
   [ast] is supplied (unit tests); Driver always supplies one so the tree
   run parses each file exactly once. *)

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum
let loc_col (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let lint_source ?(registry = empty_registry) ?ast ~rules ~file src =
  let findings = ref [] in
  let supp = scan_directives ~known_rules:(List.map (fun r -> r.id) rules) src in
  let add ~line ~col ~rule:id ~severity message =
    if not (suppressed supp ~line ~rule:id) then
      findings := finding ~file ~line ~col ~rule:id ~severity message :: !findings
  in
  List.iter
    (fun (line, msg) -> add ~line ~col:0 ~rule:"lint-directive" ~severity:Error msg)
    supp.directive_errors;
  let active = List.filter (fun r -> r.scope file) rules in
  let parsed = match ast with Some a -> a | None -> parse_ast ~file src in
  (match parsed with
  | Error (line, msg) -> add ~line ~col:0 ~rule:"parse" ~severity:Error ("syntax error: " ^ msg)
  | Ok ast ->
      let ctx = { file; registry } in
      let emitter_of r loc msg = add ~line:(loc_line loc) ~col:(loc_col loc) ~rule:r.id ~severity:r.severity msg in
      let expr_rules = List.filter_map (fun r -> Option.map (fun h -> (r, h)) r.on_expr) active in
      let vb_rules = List.filter_map (fun r -> Option.map (fun h -> (r, h)) r.on_value_binding) active in
      let default = Ast_iterator.default_iterator in
      let iter =
        {
          default with
          expr =
            (fun it e ->
              List.iter (fun (r, h) -> h ctx (emitter_of r) e) expr_rules;
              default.expr it e);
          value_binding =
            (fun it vb ->
              List.iter (fun (r, h) -> h ctx (emitter_of r) vb) vb_rules;
              default.value_binding it vb);
        }
      in
      (match ast with
      | Impl str -> iter.structure iter str
      | Intf sg -> iter.signature iter sg));
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Tree walking. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic)

let is_source f = Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let collect_files ~root dirs =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs then
      if Sys.is_directory abs then begin
        let entries = Sys.readdir abs in
        Array.sort String.compare entries;
        Array.iter
          (fun e ->
            if e <> "_build" && e <> ".git" && not (String.length e > 0 && e.[0] = '.') then
              walk (rel ^ "/" ^ e))
          entries
      end
      else if is_source rel then acc := rel :: !acc
  in
  List.iter
    (fun d ->
      let abs = Filename.concat root d in
      if Sys.file_exists abs && Sys.is_directory abs then begin
        let entries = Sys.readdir abs in
        Array.sort String.compare entries;
        Array.iter (fun e -> if e <> "_build" then walk (d ^ "/" ^ e)) entries
      end)
    dirs;
  List.sort String.compare !acc

let build_registry parsed =
  let reg : registry = Hashtbl.create 64 in
  List.iter
    (fun (file, ast) ->
      match ast with
      | Ok (Intf sg) ->
          let modname = String.capitalize_ascii (Filename.remove_extension (Filename.basename file)) in
          scan_signature reg [ modname ] sg
      | _ -> ())
    parsed;
  reg

let compare_findings (a : finding) (b : finding) =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

(* ------------------------------------------------------------------ *)
(* Reporters. *)

let to_text (f : finding) =
  let chain =
    match f.chain with
    | [] -> ""
    | c -> Printf.sprintf " [via %s]" (String.concat " -> " c)
  in
  Printf.sprintf "%s:%d:%d: [%s] %s: %s%s" f.file f.line f.col (severity_to_string f.severity)
    f.rule f.message chain

let report_text findings = String.concat "" (List.map (fun f -> to_text f ^ "\n") findings)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json (f : finding) =
  let base =
    Printf.sprintf {|"file":"%s","line":%d,"col":%d,"rule":"%s","pass":"%s","severity":"%s","message":"%s"|}
      (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.pass)
      (severity_to_string f.severity) (json_escape f.message)
  in
  let opt key v = if v = "" then "" else Printf.sprintf {|,"%s":"%s"|} key (json_escape v) in
  let chain =
    match f.chain with
    | [] -> ""
    | c ->
        Printf.sprintf {|,"chain":[%s]|}
          (String.concat "," (List.map (fun s -> "\"" ^ json_escape s ^ "\"") c))
  in
  "{" ^ base ^ opt "symbol" f.symbol ^ opt "kind" f.detail ^ chain ^ "}"

let report_json findings =
  "[" ^ String.concat ",\n " (List.map finding_to_json findings) ^ "]\n"

let count sev (findings : finding list) = List.length (List.filter (fun (f : finding) -> f.severity = sev) findings)
let has_errors (findings : finding list) = List.exists (fun (f : finding) -> f.severity = Error) findings
