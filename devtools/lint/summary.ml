(* Phase 1 of the whole-program analyzer: one pass over a parsed module
   extracting a compact summary of everything the interprocedural passes in
   Ipa need — defined values, outgoing calls, Rng.of_label stream labels
   created and the callees each stream is handed to, Telemetry metric-name
   string literals (including the local `let counter ?extra name = M.counter
   ...` wrapper idiom), allocating constructs, and hotpath annotations.
   Summaries are pure data: linking them into a call graph and judging them
   is Ipa's job, so each source file is parsed (and summarised) exactly
   once no matter how many passes consume it. *)

type alloc_kind =
  | Closure
  | Tuple
  | Record
  | Variant
  | Array_lit
  | Bytes_alloc
  | String_concat
  | List_append
  | Boxed_float
  | Partial_apply

let kind_slug = function
  | Closure -> "closure"
  | Tuple -> "tuple"
  | Record -> "record"
  | Variant -> "variant"
  | Array_lit -> "array"
  | Bytes_alloc -> "bytes"
  | String_concat -> "string"
  | List_append -> "list-append"
  | Boxed_float -> "boxed-float"
  | Partial_apply -> "partial-apply"

type alloc = { al_kind : alloc_kind; al_line : int; al_what : string }

type call = { c_path : string list; c_args : int; c_line : int }
(* [c_args] is the number of arguments at an application site, or -1 for a
   bare reference (a function passed as a value). *)

type stream_site = { st_label : string option; st_line : int }
(* [st_label] is [None] when the label is not a string literal. *)

type metric_site = { m_name : string option; m_kind : string; m_line : int }

type fn = {
  fn_path : string list;  (* enclosing module path, file module first *)
  fn_name : string;
  fn_key : string;  (* String.concat "." (fn_path @ [fn_name]) *)
  fn_line : int;
  fn_is_fun : bool;
  fn_arity : int;  (* non-optional parameters; meaningful when fn_is_fun *)
  fn_hotpath : bool;
  fn_calls : call list;
  fn_allocs : alloc list;
  fn_streams : stream_site list;
  fn_stream_roots : (string * string list) list;  (* label -> callee path handed the stream *)
  fn_metrics : metric_site list;
  fn_captured_draws : (string * int) list;  (* Rng draw on a stream that names none of the fn's bindings *)
}

type file_summary = {
  sm_file : string;
  sm_subsystem : string;  (* "lib/<dir>" for library code, else the top directory *)
  sm_module : string;
  sm_fns : fn list;
}

type intf_val = { iv_name : string; iv_line : int; iv_stream : string option }

type intf_summary = { im_file : string; im_vals : intf_val list }

(* ------------------------------------------------------------------ *)

let subsystem_of file =
  match String.split_on_char '/' file with
  | "lib" :: dir :: _ -> "lib/" ^ dir
  | top :: _ :: _ -> top
  | _ -> file

let module_of file = String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let metric_kinds = [ "counter"; "gauge"; "histogram"; "summary" ]

let rng_draws =
  [ "next"; "int"; "float"; "bool"; "gaussian"; "exponential"; "lognormal"; "pick"; "shuffle";
    "bytes"; "split" ]

let bytes_allocators =
  [ "create"; "make"; "sub"; "copy"; "cat"; "concat"; "of_string"; "to_string"; "extend"; "init" ]

let string_allocators =
  [ "concat"; "sub"; "make"; "init"; "map"; "cat"; "uppercase_ascii"; "lowercase_ascii";
    "capitalize_ascii"; "escaped" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**" ]

(* ------------------------------------------------------------------ *)

let pattern_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(* Unwrap the leading parameter chain of a binding body: parameter names,
   the count of non-optional parameters, and the first non-fun body. *)
let rec unwrap_params params nonopt (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
      let name = match pattern_name pat with Some n -> n | None -> "_" in
      let nonopt = nonopt + (match lbl with Optional _ -> 0 | Nolabel | Labelled _ -> 1) in
      unwrap_params (name :: params) nonopt body
  | Pexp_newtype (_, body) -> unwrap_params params nonopt body
  | _ -> (List.rev params, nonopt, e)

(* Every name bound by any pattern inside [vb] (parameters, lets, match
   arms): used to decide whether an Rng draw reads a stream the function
   received or created, or one captured from the outside. *)
let bound_names (vb : Parsetree.value_binding) =
  let names = Hashtbl.create 16 in
  let default = Ast_iterator.default_iterator in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } -> Hashtbl.replace names txt ()
    | _ -> ());
    default.pat it p
  in
  let it = { default with pat } in
  it.value_binding it vb;
  names

(* Idents an expression mentions, as base names: [x] for x, [t] for t.rng,
   module-qualified paths contribute their head. *)
let mentioned_names (e : Parsetree.expression) =
  let acc = ref [] in
  let default = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match Lint.flatten_longident txt with h :: _ -> acc := h :: !acc | [] -> ())
    | _ -> ());
    default.expr it e
  in
  let it = { default with expr } in
  it.expr it e;
  !acc

let string_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

let apply_head_args (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> Some (txt, args)
  | _ -> None

let last_nolabel args =
  List.fold_left
    (fun acc (lbl, a) -> match lbl with Asttypes.Nolabel -> Some a | _ -> acc)
    None args

let ends_with ~suffix l =
  let n = List.length l and m = List.length suffix in
  n >= m
  &&
  let rec drop k = function xs when k = 0 -> xs | _ :: xs -> drop (k - 1) xs | [] -> [] in
  drop (n - m) l = suffix

(* ------------------------------------------------------------------ *)

type ctx = {
  file : string;
  directives : Lint.directives;
  aliases : (string, string list) Hashtbl.t;  (* module alias -> expansion *)
  wrappers : (string, string) Hashtbl.t;  (* local metric wrapper -> metric kind *)
  wrapper_params : (string, unit) Hashtbl.t;  (* name-parameters of known wrappers *)
  mutable fns : fn list;
}

let resolve ctx = function
  | [] -> []
  | hd :: rest -> (
      match Hashtbl.find_opt ctx.aliases hd with
      | Some expansion -> expansion @ rest
      | None -> hd :: rest)

let is_metrics_call ctx lid =
  match List.rev (resolve ctx (Lint.flatten_longident lid)) with
  | fn :: "Metrics" :: _ when List.mem fn metric_kinds -> Some fn
  | _ -> None

let is_rng_call ctx lid ~fns =
  match List.rev (resolve ctx (Lint.flatten_longident lid)) with
  | fn :: "Rng" :: _ when List.mem fn fns -> Some fn
  | _ -> None

(* Does [body] (a candidate wrapper with parameters [params]) forward one of
   its own parameters as the metric name of a Metrics call? *)
let wrapper_kind ctx ~params body =
  let found = ref None in
  let default = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match apply_head_args e with
    | Some (lid, args) -> (
        match is_metrics_call ctx lid with
        | Some kind -> (
            match last_nolabel args with
            | Some { pexp_desc = Pexp_ident { txt = Longident.Lident p; _ }; _ }
              when List.mem p params ->
                found := Some (kind, p)
            | _ -> ())
        | None -> ())
    | None -> ());
    default.expr it e
  in
  let it = { default with expr } in
  it.expr it body;
  !found

(* Labels of Rng.of_label applications anywhere inside [e] (used to treat a
   callee handed an inline [Rng.of_label seed "x"] as a root of stream x). *)
let inline_stream_labels ctx (e : Parsetree.expression) =
  let acc = ref [] in
  let default = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match apply_head_args e with
    | Some (lid, args) when is_rng_call ctx lid ~fns:[ "of_label" ] <> None -> (
        match args with
        | _ :: (Asttypes.Nolabel, arg) :: _ -> (
            match string_literal arg with Some l -> acc := l :: !acc | None -> ())
        | _ -> ())
    | _ -> ());
    default.expr it e
  in
  let it = { default with expr } in
  it.expr it e;
  !acc

(* ------------------------------------------------------------------ *)
(* The per-binding fact walk. *)

let walk_binding ctx ~path ~name ~hotpath (vb : Parsetree.value_binding) =
  let params, arity, body = unwrap_params [] 0 vb.pvb_expr in
  let is_fun =
    params <> [] || (match body.pexp_desc with Pexp_function _ -> true | _ -> false)
  in
  let bound = bound_names vb in
  let calls = ref [] and allocs = ref [] and streams = ref [] in
  let roots = ref [] and metrics = ref [] and captured = ref [] in
  let stream_vars : (string, string) Hashtbl.t = Hashtbl.create 4 in
  let alloc kind line what = allocs := { al_kind = kind; al_line = line; al_what = what } :: !allocs in
  (* The binding itself may be a metric wrapper (the idiom is a local
     [let counter ?extra name = M.counter registry ~labels:(...) name]). *)
  (match wrapper_kind ctx ~params body with
  | Some (kind, name_param) when is_fun ->
      Hashtbl.replace ctx.wrappers name kind;
      Hashtbl.replace ctx.wrapper_params name_param ()
  | _ -> ());
  let is_wrapper_param = function
    | { Parsetree.pexp_desc = Pexp_ident { txt = Longident.Lident p; _ }; _ } ->
        Hashtbl.mem ctx.wrapper_params p
    | _ -> false
  in
  let record_metric ~kind ~line name_arg =
    match string_literal name_arg with
    | Some n -> metrics := { m_name = Some n; m_kind = kind; m_line = line } :: !metrics
    | None ->
        if not (is_wrapper_param name_arg) then
          metrics := { m_name = None; m_kind = kind; m_line = line } :: !metrics
  in
  let default = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    let line = line_of e.pexp_loc in
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun (b : Parsetree.value_binding) ->
            match pattern_name b.pvb_pat with
            | None -> ()
            | Some v -> (
                (* Stream bindings: let fault_rng = Rng.of_label seed "fault". *)
                (match apply_head_args b.pvb_expr with
                | Some (lid, args) when is_rng_call ctx lid ~fns:[ "of_label" ] <> None -> (
                    match args with
                    | _ :: (Asttypes.Nolabel, arg) :: _ -> (
                        match string_literal arg with
                        | Some l -> Hashtbl.replace stream_vars v l
                        | None -> ())
                    | _ -> ())
                | _ -> ());
                (* Nested metric wrappers: let counter ?extra name = ... *)
                let ps, _, inner = unwrap_params [] 0 b.pvb_expr in
                match wrapper_kind ctx ~params:ps inner with
                | Some (kind, name_param) when ps <> [] ->
                    Hashtbl.replace ctx.wrappers v kind;
                    Hashtbl.replace ctx.wrapper_params name_param ()
                | _ -> ()))
          vbs
    | Pexp_letmodule ({ txt = Some m; _ }, { pmod_desc = Pmod_ident { txt; _ }; _ }, _) ->
        Hashtbl.replace ctx.aliases m (Lint.flatten_longident txt)
    | Pexp_ident { txt; _ } ->
        calls := { c_path = resolve ctx (Lint.flatten_longident txt); c_args = -1; c_line = line } :: !calls
    | Pexp_fun _ | Pexp_function _ -> alloc Closure line "closure"
    | Pexp_lazy _ -> alloc Closure line "lazy block"
    | Pexp_tuple _ -> alloc Tuple line "tuple"
    | Pexp_record _ -> alloc Record line "record"
    | Pexp_array _ -> alloc Array_lit line "array literal"
    | Pexp_variant (_, Some _) -> alloc Variant line "polymorphic variant"
    | Pexp_construct ({ txt; _ }, Some _) -> (
        match Lint.flatten_longident txt with
        | [ "::" ] -> alloc Variant line "list cons"
        | p -> alloc Variant line (String.concat "." p))
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        let comps = resolve ctx (Lint.flatten_longident txt) in
        calls := { c_path = comps; c_args = List.length args; c_line = line } :: !calls;
        (* Allocation by known constructs. *)
        (match comps with
        | [ "^" ] -> alloc String_concat line "string concatenation (^)"
        | [ "@" ] -> alloc List_append line "list append (@)"
        | [ op ] when List.mem op float_ops -> alloc Boxed_float line ("float arithmetic (" ^ op ^ ")")
        | _ -> (
            match List.rev comps with
            | f :: "Bytes" :: _ when List.mem f bytes_allocators ->
                alloc Bytes_alloc line ("Bytes." ^ f)
            | f :: "String" :: _ when List.mem f string_allocators ->
                alloc String_concat line ("String." ^ f)
            | f :: "List" :: _ when List.mem f [ "append"; "concat" ] ->
                alloc List_append line ("List." ^ f)
            | "sprintf" :: "Printf" :: _ -> alloc String_concat line "Printf.sprintf"
            | "asprintf" :: "Format" :: _ -> alloc String_concat line "Format.asprintf"
            | _ -> ()));
        (* Stream creation sites. *)
        (match is_rng_call ctx txt ~fns:[ "of_label" ] with
        | Some _ ->
            let label =
              match args with
              | _ :: (Asttypes.Nolabel, arg) :: _ -> string_literal arg
              | _ -> None
            in
            streams := { st_label = label; st_line = line } :: !streams
        | None -> ());
        (* Captured-stream draws. *)
        (match is_rng_call ctx txt ~fns:rng_draws with
        | Some d -> (
            match List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args with
            | Some (_, stream_expr) ->
                let names = mentioned_names stream_expr in
                if names <> [] && not (List.exists (Hashtbl.mem bound) names) then
                  captured := (d, line) :: !captured
            | None -> ())
        | None -> ());
        (* Metric registration sites. *)
        (match is_metrics_call ctx txt with
        | Some kind -> (
            (* Require the receiver argument too, so a partial application
               like [M.counter registry] is not mistaken for a name. *)
            match List.filter (fun (lbl, _) -> lbl = Asttypes.Nolabel) args with
            | _ :: _ :: _ -> (
                match last_nolabel args with
                | Some name_arg -> record_metric ~kind ~line name_arg
                | None -> ())
            | _ -> ())
        | None -> (
            match Lint.flatten_longident txt with
            | [ w ] -> (
                match (Hashtbl.find_opt ctx.wrappers w, last_nolabel args) with
                | Some kind, Some name_arg -> record_metric ~kind ~line name_arg
                | _ -> ())
            | _ -> ()));
        (* Stream hand-off: a callee receiving a stream variable or an
           inline of_label becomes a root of that stream's call path. *)
        List.iter
          (fun ((_ : Asttypes.arg_label), (arg : Parsetree.expression)) ->
            (match arg.pexp_desc with
            | Pexp_ident { txt = Longident.Lident v; _ } -> (
                match Hashtbl.find_opt stream_vars v with
                | Some label -> roots := (label, comps) :: !roots
                | None -> ())
            | _ -> ());
            match inline_stream_labels ctx arg with
            | [] -> ()
            | labels -> List.iter (fun l -> roots := (l, comps) :: !roots) labels)
          args)
    | _ -> ());
    default.expr it e
  in
  let it = { default with expr } in
  it.expr it body;
  let key = String.concat "." (path @ [ name ]) in
  ctx.fns <-
    {
      fn_path = path;
      fn_name = name;
      fn_key = key;
      fn_line = line_of vb.pvb_loc;
      fn_is_fun = is_fun;
      fn_arity = arity;
      fn_hotpath = hotpath;
      fn_calls = List.rev !calls;
      fn_allocs = List.rev !allocs;
      fn_streams = List.rev !streams;
      fn_stream_roots = List.rev_map (fun (l, c) -> (l, c)) !roots;
      fn_metrics = List.rev !metrics;
      fn_captured_draws = List.rev !captured;
    }
    :: ctx.fns

(* ------------------------------------------------------------------ *)

let of_structure ~file ~directives (str : Parsetree.structure) =
  let ctx =
    { file; directives; aliases = Hashtbl.create 8; wrappers = Hashtbl.create 4;
      wrapper_params = Hashtbl.create 4; fns = [] }
  in
  let rec items path (l : Parsetree.structure) = List.iter (item path) l
  and item path (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> Hashtbl.replace ctx.aliases m (Lint.flatten_longident txt)
        | Pmod_structure s -> items (path @ [ m ]) s
        | _ -> ())
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let name = match pattern_name vb.pvb_pat with Some n -> n | None -> "_" in
            let hotpath = Lint.hotpath_annotated directives ~line:(line_of vb.pvb_loc) in
            walk_binding ctx ~path ~name ~hotpath vb)
          vbs
    | _ -> ()
  in
  items [ module_of file ] str;
  {
    sm_file = file;
    sm_subsystem = subsystem_of file;
    sm_module = module_of file;
    sm_fns = List.rev ctx.fns;
  }

(* ------------------------------------------------------------------ *)
(* Interface summaries: which vals expose an Rng.t, and whether each one
   carries an rng-stream annotation. *)

let type_mentions_rng (ty : Parsetree.core_type) =
  let found = ref false in
  let default = Ast_iterator.default_iterator in
  let typ it (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) ->
        if ends_with ~suffix:[ "Rng"; "t" ] (Lint.flatten_longident txt) then found := true
    | _ -> ());
    default.typ it t
  in
  let it = { default with typ } in
  it.typ it ty;
  !found

let of_signature ~file ~directives (sg : Parsetree.signature) =
  let vals = ref [] in
  let rec items (l : Parsetree.signature) = List.iter item l
  and item (si : Parsetree.signature_item) =
    match si.psig_desc with
    | Psig_value vd ->
        if type_mentions_rng vd.pval_type then begin
          let line = line_of vd.pval_loc in
          vals :=
            { iv_name = vd.pval_name.txt; iv_line = line;
              iv_stream = Lint.stream_annotation directives ~line }
            :: !vals
        end
    | Psig_module { pmd_type = { pmty_desc = Pmty_signature s; _ }; _ } -> items s
    | _ -> ()
  in
  items sg;
  { im_file = file; im_vals = List.rev !vals }
