(* Phase 2 of the whole-program analyzer: link the per-file summaries from
   Summary into a module-level call graph and run the three interprocedural
   passes over it:

   - rng-stream-provenance: stream labels must be unique per subsystem,
     Rng.t values crossing a library interface must carry an rng-stream
     annotation, and no lib/ function may draw from a captured (non-local)
     stream while being reachable from both a workload stream path and a
     fault/pathmon/prober stream path — the static form of the "attaching
     X never perturbs workload draws" invariant the RNG-isolation tests
     check dynamically.

   - hotpath-allocation: every allocating construct transitively reachable
     from a function annotated (* scion-lint: hotpath *) is reported with
     its call chain, so the allocation-free fast path is a ratchet (via the
     baseline) instead of a hope.

   - telemetry-registry: metric-name literals must be unique across
     modules, literal (never computed) in lib/, and in bijection with the
     checked-in devtools/lint/telemetry.registry.

   Everything here iterates lists in source order, never hash order, so
   lint output is deterministic. *)

let pass_ids = Lint.pass_rule_ids

let pass_docs =
  [
    ( "rng-stream-provenance",
      "Whole-program: duplicate Rng.of_label labels across subsystems, Rng.t values escaping \
       a lib/ interface without an rng-stream annotation, and captured-stream draws reachable \
       from both workload and fault/pathmon/prober stream paths (determinism race)." );
    ( "hotpath-allocation",
      "Whole-program: reports every allocating construct (closures, tuples/records/variants, \
       Bytes/string building, list append, boxed floats, partial applications) transitively \
       reachable from a (* scion-lint: hotpath *) seed, with the call chain. Adopt via the \
       --baseline ratchet; shrink the baseline, never grow it." );
    ( "telemetry-registry",
      "Whole-program: metric/series names must be string literals in lib/, unique across \
       modules, and exactly the set declared in devtools/lint/telemetry.registry — renaming a \
       series without updating the registry breaks the build, not the goldens." );
  ]

type entry = { e_fn : Summary.fn; e_file : string; e_subsystem : string }

type program = {
  entries : (string, entry) Hashtbl.t;  (* fn_key -> entry *)
  order : string list;  (* fn_keys in deterministic source order *)
  last2 : (string, string list) Hashtbl.t;  (* "Module.fn" -> fn_keys *)
  summaries : Summary.file_summary list;
  intfs : Summary.intf_summary list;
}

let finding ~file ~line ~rule ?(symbol = "") ?(chain = []) ?(detail = "") message =
  { Lint.file; line; col = 0; rule; severity = Lint.Error; message; pass = "link"; symbol;
    chain; detail }

(* ------------------------------------------------------------------ *)
(* Linking. *)

let last2_key comps =
  match List.rev comps with
  | a :: b :: _ -> b ^ "." ^ a
  | [ a ] -> a
  | [] -> ""

let link summaries intfs =
  let entries = Hashtbl.create 256 in
  let last2 = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (sm : Summary.file_summary) ->
      List.iter
        (fun (fn : Summary.fn) ->
          let e = { e_fn = fn; e_file = sm.Summary.sm_file; e_subsystem = sm.Summary.sm_subsystem } in
          if not (Hashtbl.mem entries fn.Summary.fn_key) then order := fn.Summary.fn_key :: !order;
          Hashtbl.replace entries fn.Summary.fn_key e;
          let k2 = last2_key (fn.Summary.fn_path @ [ fn.Summary.fn_name ]) in
          let existing = match Hashtbl.find_opt last2 k2 with Some l -> l | None -> [] in
          if not (List.mem fn.Summary.fn_key existing) then
            Hashtbl.replace last2 k2 (fn.Summary.fn_key :: existing))
        sm.Summary.sm_fns)
    summaries;
  { entries; order = List.rev !order; last2; summaries; intfs }

let is_suffix ~of_:l suffix =
  let n = List.length l and m = List.length suffix in
  n >= m
  &&
  let rec drop k = function xs when k = 0 -> xs | _ :: xs -> drop (k - 1) xs | [] -> [] in
  drop (n - m) l = suffix

(* Resolve a call-site path to defined functions. Unqualified names resolve
   only inside the caller's own module nesting; qualified names resolve
   tree-wide by suffix match on the last two components, accepting both
   directions of nesting ([Filter.check] matching [Science_dmz.Filter.check]
   and [Scion_dataplane.Router.process] matching [Router.process]). *)
let resolve p (caller : entry) comps =
  if comps = [] then []
  else begin
    let join l = String.concat "." l in
    let rec local prefix =
      let key = join (prefix @ comps) in
      if Hashtbl.mem p.entries key then Some key
      else
        match List.rev prefix with
        | [] -> None
        | _ :: shorter -> local (List.rev shorter)
    in
    match local caller.e_fn.Summary.fn_path with
    | Some k -> [ k ]
    | None ->
        if List.length comps < 2 then []
        else
          let cands =
            match Hashtbl.find_opt p.last2 (last2_key comps) with Some l -> l | None -> []
          in
          List.filter
            (fun k ->
              let kc = String.split_on_char '.' k in
              is_suffix ~of_:kc comps || is_suffix ~of_:comps kc)
            (List.sort String.compare cands)
  end

(* Breadth-first reachability from [seeds], recording one parent per node so
   diagnostics can show a call chain. Returns the parent map (seeds map to
   None). *)
let reach p seeds =
  let parent : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if Hashtbl.mem p.entries s && not (Hashtbl.mem parent s) then begin
        Hashtbl.replace parent s None;
        Queue.add s q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let k = Queue.pop q in
    match Hashtbl.find_opt p.entries k with
    | None -> ()
    | Some e ->
        List.iter
          (fun (c : Summary.call) ->
            List.iter
              (fun t ->
                if not (Hashtbl.mem parent t) then begin
                  Hashtbl.replace parent t (Some k);
                  Queue.add t q
                end)
              (resolve p e c.Summary.c_path))
          e.e_fn.Summary.fn_calls
  done;
  parent

let chain_of parent key =
  let rec up acc k =
    match Hashtbl.find_opt parent k with
    | Some (Some par) -> up (k :: acc) par
    | Some None -> k :: acc
    | None -> k :: acc
  in
  up [] key

let in_lib file = String.length file >= 4 && String.sub file 0 4 = "lib/"

(* ------------------------------------------------------------------ *)
(* Pass: hotpath-allocation. *)

let hotpath_pass p =
  let seeds =
    List.filter (fun k ->
        match Hashtbl.find_opt p.entries k with
        | Some e -> e.e_fn.Summary.fn_hotpath
        | None -> false)
      p.order
  in
  if seeds = [] then []
  else begin
    let parent = reach p seeds in
    let out = ref [] in
    List.iter
      (fun (sm : Summary.file_summary) ->
        if in_lib sm.Summary.sm_file then
          List.iter
            (fun (fn : Summary.fn) ->
              if fn.Summary.fn_is_fun && Hashtbl.mem parent fn.Summary.fn_key then begin
                let chain = chain_of parent fn.Summary.fn_key in
                List.iter
                  (fun (al : Summary.alloc) ->
                    out :=
                      finding ~file:sm.Summary.sm_file ~line:al.Summary.al_line
                        ~rule:"hotpath-allocation" ~symbol:fn.Summary.fn_key ~chain
                        ~detail:(Summary.kind_slug al.Summary.al_kind)
                        (Printf.sprintf "%s allocates (%s) on a hot path" al.Summary.al_what
                           (Summary.kind_slug al.Summary.al_kind))
                      :: !out)
                  fn.Summary.fn_allocs;
                (* Partial applications allocate a closure at the call site;
                   they are detectable only here, where arities are known. *)
                let self = Hashtbl.find_opt p.entries fn.Summary.fn_key in
                List.iter
                  (fun (c : Summary.call) ->
                    if c.Summary.c_args >= 0 then
                      match self with
                      | None -> ()
                      | Some caller -> (
                          match resolve p caller c.Summary.c_path with
                          | target :: _ -> (
                              match Hashtbl.find_opt p.entries target with
                              | Some te
                                when te.e_fn.Summary.fn_is_fun
                                     && te.e_fn.Summary.fn_arity > 0
                                     && c.Summary.c_args < te.e_fn.Summary.fn_arity ->
                                  out :=
                                    finding ~file:sm.Summary.sm_file ~line:c.Summary.c_line
                                      ~rule:"hotpath-allocation" ~symbol:fn.Summary.fn_key ~chain
                                      ~detail:(Summary.kind_slug Summary.Partial_apply)
                                      (Printf.sprintf
                                         "partial application of %s (%d of %d args) allocates a \
                                          closure on a hot path"
                                         target c.Summary.c_args te.e_fn.Summary.fn_arity)
                                    :: !out
                              | _ -> ())
                          | [] -> ()))
                  fn.Summary.fn_calls
              end)
            sm.Summary.sm_fns)
      p.summaries;
    List.rev !out
  end

(* ------------------------------------------------------------------ *)
(* Pass: rng-stream-provenance. *)

let infra_prefixes = [ "fault"; "pathmon"; "probe"; "prober"; "chaos" ]

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.sub s 0 n = prefix

let stream_class label =
  if List.exists (fun pfx -> starts_with ~prefix:pfx label) infra_prefixes then `Infra
  else `Workload

let rng_pass p =
  let out = ref [] in
  (* 1. The same stream label constructed by two distinct subsystems means
     two components believe they own the stream: their draw interleaving
     becomes load-dependent. *)
  let sites =
    List.concat_map
      (fun (sm : Summary.file_summary) ->
        List.concat_map
          (fun (fn : Summary.fn) ->
            List.filter_map
              (fun (st : Summary.stream_site) ->
                match st.Summary.st_label with
                | Some l -> Some (l, sm.Summary.sm_subsystem, sm.Summary.sm_file, st.Summary.st_line, fn.Summary.fn_key)
                | None -> None)
              fn.Summary.fn_streams)
          sm.Summary.sm_fns)
      p.summaries
  in
  let labels = List.sort_uniq String.compare (List.map (fun (l, _, _, _, _) -> l) sites) in
  List.iter
    (fun label ->
      let here = List.filter (fun (l, _, _, _, _) -> l = label) sites in
      let subsystems = List.sort_uniq String.compare (List.map (fun (_, s, _, _, _) -> s) here) in
      if List.length subsystems > 1 then
        List.iter
          (fun (_, subsystem, file, line, key) ->
            let other =
              List.find_opt (fun (_, s, _, _, _) -> s <> subsystem) here
            in
            match other with
            | Some (_, osub, ofile, oline, _) ->
                !out |> ignore;
                out :=
                  finding ~file ~line ~rule:"rng-stream-provenance" ~symbol:key ~detail:"dup-label"
                    (Printf.sprintf
                       "RNG stream label %S is also created by %s:%d (subsystem %s); distinct \
                        subsystems must use distinct labels so their draw streams stay independent"
                       label ofile oline osub)
                  :: !out
            | None -> ())
          here)
    labels;
  (* 2. A stream crossing a library interface must say which stream it is. *)
  List.iter
    (fun (im : Summary.intf_summary) ->
      if in_lib im.Summary.im_file && not (starts_with ~prefix:"lib/util/" im.Summary.im_file) then
        List.iter
          (fun (iv : Summary.intf_val) ->
            if iv.Summary.iv_stream = None then
              out :=
                finding ~file:im.Summary.im_file ~line:iv.Summary.iv_line
                  ~rule:"rng-stream-provenance" ~symbol:iv.Summary.iv_name ~detail:"unannotated-escape"
                  (Printf.sprintf
                     "val %s exposes a Scion_util.Rng.t across the library boundary without an \
                      annotation; add (* scion-lint%s rng-stream <name> *) naming the stream it \
                      draws from (e.g. caller, fault, pathmon.probe)"
                     iv.Summary.iv_name ":")
                :: !out)
          im.Summary.im_vals)
    p.intfs;
  (* 3. The determinism race: a function that draws from a stream it
     neither received nor created, reachable from both a workload stream
     hand-off and a fault/pathmon/prober stream hand-off, interleaves two
     supposedly independent streams. *)
  let roots cls =
    List.concat_map
      (fun (sm : Summary.file_summary) ->
        List.concat_map
          (fun (fn : Summary.fn) ->
            match Hashtbl.find_opt p.entries fn.Summary.fn_key with
            | None -> []
            | Some caller ->
                List.concat_map
                  (fun (label, callee) ->
                    if stream_class label = cls then resolve p caller callee else [])
                  fn.Summary.fn_stream_roots)
          sm.Summary.sm_fns)
      p.summaries
  in
  let workload = reach p (roots `Workload) in
  let infra = reach p (roots `Infra) in
  List.iter
    (fun (sm : Summary.file_summary) ->
      if in_lib sm.Summary.sm_file then
        List.iter
          (fun (fn : Summary.fn) ->
            if
              fn.Summary.fn_captured_draws <> []
              && Hashtbl.mem workload fn.Summary.fn_key
              && Hashtbl.mem infra fn.Summary.fn_key
            then
              List.iter
                (fun (draw, line) ->
                  out :=
                    finding ~file:sm.Summary.sm_file ~line ~rule:"rng-stream-provenance"
                      ~symbol:fn.Summary.fn_key
                      ~chain:(chain_of workload fn.Summary.fn_key)
                      ~detail:"stream-race"
                      (Printf.sprintf
                         "Rng.%s draws from a captured stream while %s is reachable from both a \
                          workload stream (%s) and a fault/pathmon/prober stream (%s); a shared \
                          sink makes draw order load-dependent — thread the stream as a parameter"
                         draw fn.Summary.fn_key
                         (String.concat " -> " (chain_of workload fn.Summary.fn_key))
                         (String.concat " -> " (chain_of infra fn.Summary.fn_key)))
                    :: !out)
                fn.Summary.fn_captured_draws)
          sm.Summary.sm_fns)
    p.summaries;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Pass: telemetry-registry. *)

let telemetry_pass p ~registry_file =
  let out = ref [] in
  let sites =
    List.concat_map
      (fun (sm : Summary.file_summary) ->
        List.concat_map
          (fun (fn : Summary.fn) ->
            List.map
              (fun (m : Summary.metric_site) -> (sm.Summary.sm_file, fn.Summary.fn_key, m))
              fn.Summary.fn_metrics)
          sm.Summary.sm_fns)
      p.summaries
  in
  (* Dynamic names in lib/ defeat the registry check. *)
  List.iter
    (fun (file, key, (m : Summary.metric_site)) ->
      if m.Summary.m_name = None && in_lib file then
        out :=
          finding ~file ~line:m.Summary.m_line ~rule:"telemetry-registry" ~symbol:key
            ~detail:"dynamic-name"
            (Printf.sprintf
               "metric name passed to Metrics.%s is not a string literal; series names must be \
                literals so the telemetry registry stays statically checkable"
               m.Summary.m_kind)
          :: !out)
    sites;
  let literal =
    List.filter_map
      (fun (file, key, (m : Summary.metric_site)) ->
        match m.Summary.m_name with
        | Some n -> Some (n, file, key, m.Summary.m_line)
        | None -> None)
      sites
  in
  (* Same series name from two modules silently merges their series. *)
  let names = List.sort_uniq String.compare (List.map (fun (n, _, _, _) -> n) literal) in
  List.iter
    (fun name ->
      let here = List.filter (fun (n, _, _, _) -> n = name) literal in
      let files = List.sort_uniq String.compare (List.map (fun (_, f, _, _) -> f) here) in
      if List.length files > 1 then
        List.iter
          (fun (_, file, key, line) ->
            match List.find_opt (fun f -> f <> file) files with
            | Some other ->
                out :=
                  finding ~file ~line ~rule:"telemetry-registry" ~symbol:key ~detail:"dup-name"
                    (Printf.sprintf
                       "telemetry series %S is also registered by %s; series names must be \
                        unique per module so snapshots attribute samples unambiguously"
                       name other)
                  :: !out
            | None -> ())
          here)
    names;
  (* The checked-in registry must list exactly the live names. *)
  (match registry_file with
  | None -> ()
  | Some (reg_path, declared) ->
      let declared_names = List.map fst declared in
      List.iter
        (fun name ->
          if not (List.mem name declared_names) then
            match List.find_opt (fun (n, _, _, _) -> n = name) literal with
            | Some (_, file, key, line) ->
                out :=
                  finding ~file ~line ~rule:"telemetry-registry" ~symbol:key ~detail:"unregistered"
                    (Printf.sprintf "telemetry series %S is not declared in %s; add it" name reg_path)
                  :: !out
            | None -> ())
        names;
      List.iter
        (fun (name, line) ->
          if not (List.mem name names) then
            out :=
              finding ~file:reg_path ~line ~rule:"telemetry-registry" ~detail:"stale-entry"
                (Printf.sprintf
                   "%s declares series %S but no module registers it; remove the entry (or \
                    restore the series — a rename must update both sides)"
                   reg_path name)
              :: !out)
        declared);
  List.rev !out

(* ------------------------------------------------------------------ *)

let run ~summaries ~intfs ~telemetry_registry =
  let p = link summaries intfs in
  rng_pass p @ hotpath_pass p @ telemetry_pass p ~registry_file:telemetry_registry

(* Series-name collection for --write-telemetry-registry. *)
let live_series summaries =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (sm : Summary.file_summary) ->
         List.concat_map
           (fun (fn : Summary.fn) ->
             List.filter_map (fun (m : Summary.metric_site) -> m.Summary.m_name) fn.Summary.fn_metrics)
           sm.Summary.sm_fns)
       summaries)
