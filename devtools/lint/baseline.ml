(* Baseline ratchet for scion-lint.

   A baseline records the findings that existed when a pass was adopted, as
   counts keyed by [rule|file|symbol|detail]. A linted tree is compared
   against it occurrence-by-occurrence: for each key, the first [baseline
   count] findings (in report order) are forgiven and anything beyond that
   fails. Fixing a finding can therefore never introduce a failure, while
   any *new* finding — a new site, a new allocation kind, one more
   occurrence of an old kind — breaks the build. Regenerate with
   [scion_lint --write-baseline] after deliberate changes; review the diff
   like code, and only ever let counts shrink. *)

module Json = Telemetry.Json

let key (f : Lint.finding) =
  String.concat "|" [ f.Lint.rule; f.Lint.file; f.Lint.symbol; f.Lint.detail ]

type t = (string, int) Hashtbl.t

let empty () : t = Hashtbl.create 1

(* The baseline file is JSON: {"version":1,"findings":{"<key>":<count>,...}}
   with keys sorted, so regeneration diffs are stable. *)
let of_string src : (t, string) result =
  match Json.parse src with
  | Error e -> Error e
  | Ok doc -> (
      match Json.member "findings" doc with
      | Some (Json.Obj entries) ->
          let tbl = Hashtbl.create (List.length entries) in
          let bad = ref None in
          List.iter
            (fun (k, v) ->
              match Json.to_num_opt v with
              | Some n when Float.is_integer n && n >= 0. ->
                  Hashtbl.replace tbl k (int_of_float n)
              | _ -> if !bad = None then bad := Some k)
            entries;
          (match !bad with
          | Some k -> Error (Printf.sprintf "finding %S has a non-integer count" k)
          | None -> Ok tbl)
      | Some _ -> Error "\"findings\" is not an object"
      | None -> Error "missing \"findings\" object")

let to_string findings =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (f : Lint.finding) ->
      let k = key f in
      Hashtbl.replace counts k
        (1 + match Hashtbl.find_opt counts k with Some n -> n | None -> 0))
    findings;
  let keys = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) counts []) in
  let entries =
    List.map
      (fun k ->
        Printf.sprintf "    \"%s\": %d" (Json.escape k)
          (match Hashtbl.find_opt counts k with Some n -> n | None -> 0))
      keys
  in
  "{\n  \"version\": 1,\n  \"findings\": {\n" ^ String.concat ",\n" entries ^ "\n  }\n}\n"

(* Keep each finding only past its baselined allowance; occurrences are
   counted in report order, so when a count grows it is the later (newest)
   sites that surface. *)
let apply (base : t) findings =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (f : Lint.finding) ->
      let k = key f in
      let n = 1 + match Hashtbl.find_opt seen k with Some n -> n | None -> 0 in
      Hashtbl.replace seen k n;
      let allowed = match Hashtbl.find_opt base k with Some a -> a | None -> 0 in
      n > allowed)
    findings
