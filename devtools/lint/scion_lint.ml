(* scion-lint CLI.

   Usage: scion_lint [--root DIR] [--json] [--list-rules] [DIR ...]

   Lints every .ml/.mli under the given directories (default: lib bin bench
   examples devtools, relative to --root) and prints findings to stdout.
   Exit status: 0 when no error-severity findings remain after suppression,
   1 when errors were found, 2 on usage errors. *)

module Lint = Scion_lint_lib.Lint
module Lint_rules = Scion_lint_lib.Lint_rules

let default_dirs = [ "lib"; "bin"; "bench"; "examples"; "devtools" ]

let usage () =
  prerr_endline "usage: scion_lint [--root DIR] [--json] [--list-rules] [DIR ...]";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Lint.rule) ->
      Printf.printf "%-16s %-5s %s\n" r.Lint.id
        (Lint.severity_to_string r.Lint.severity)
        r.Lint.doc)
    Lint_rules.rules

let () =
  let root = ref "." in
  let json = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--root" :: dir :: rest ->
        root := dir;
        parse rest
    | "--list-rules" :: _ ->
        list_rules ();
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse rest
  in
  (match Array.to_list Sys.argv with [] -> () | _ :: args -> parse args);
  let dirs =
    match List.rev !dirs with
    | [] -> List.filter (fun d -> Sys.file_exists (Filename.concat !root d)) default_dirs
    | ds -> ds
  in
  let findings = Lint.lint_tree ~rules:Lint_rules.rules ~root:!root ~dirs in
  if !json then print_string (Lint.report_json findings)
  else begin
    print_string (Lint.report_text findings);
    Printf.eprintf "scion-lint: %d error(s), %d warning(s) across %s\n"
      (Lint.count Lint.Error findings) (Lint.count Lint.Warn findings)
      (String.concat " " dirs)
  end;
  exit (if Lint.has_errors findings then 1 else 0)
