(* scion-lint CLI.

   Usage: scion_lint [--root DIR] [--json] [--baseline FILE]
                     [--write-baseline FILE] [--write-telemetry-registry]
                     [--list-rules] [DIR ...]

   Runs the two-phase analyzer over every .ml/.mli under the given
   directories (default: lib bin bench examples devtools, relative to
   --root): the per-file rules, then the interprocedural passes
   (rng-stream-provenance, hotpath-allocation, telemetry-registry) over the
   linked lib/ + bin/ call graph. With --baseline, findings already
   recorded in FILE are forgiven and only new ones fail (the ratchet);
   --write-baseline regenerates FILE from the current findings and
   --write-telemetry-registry regenerates devtools/lint/telemetry.registry
   from the live series names. Exit status: 0 when no error-severity
   findings remain, 1 when errors were found, 2 on usage errors. *)

module Lint = Scion_lint_lib.Lint
module Lint_rules = Scion_lint_lib.Lint_rules
module Driver = Scion_lint_lib.Driver
module Baseline = Scion_lint_lib.Baseline
module Ipa = Scion_lint_lib.Ipa

let usage () =
  prerr_endline
    "usage: scion_lint [--root DIR] [--json] [--baseline FILE] [--write-baseline FILE]\n\
    \                  [--write-telemetry-registry] [--list-rules] [DIR ...]";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Lint.rule) ->
      Printf.printf "%-22s %-5s %s\n" r.Lint.id
        (Lint.severity_to_string r.Lint.severity)
        r.Lint.doc)
    Lint_rules.rules;
  List.iter (fun (id, doc) -> Printf.printf "%-22s %-5s %s\n" id "error" doc) Ipa.pass_docs

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let () =
  let root = ref "." in
  let json = ref false in
  let baseline = ref None in
  let write_baseline = ref None in
  let write_registry = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--root" :: dir :: rest ->
        root := dir;
        parse rest
    | "--baseline" :: file :: rest ->
        baseline := Some file;
        parse rest
    | "--write-baseline" :: file :: rest ->
        write_baseline := Some file;
        parse rest
    | "--write-telemetry-registry" :: rest ->
        write_registry := true;
        parse rest
    | "--list-rules" :: _ ->
        list_rules ();
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse rest
  in
  (match Array.to_list Sys.argv with [] -> () | _ :: args -> parse args);
  let dirs =
    match List.rev !dirs with
    | [] -> List.filter (fun d -> Sys.file_exists (Filename.concat !root d)) Driver.default_dirs
    | ds -> ds
  in
  (* --write-baseline records the pre-ratchet findings, so it never reads
     the existing baseline. *)
  let baseline_file =
    match !write_baseline with Some _ -> None | None -> !baseline
  in
  let { Driver.an_findings = findings; an_summaries = summaries; _ } =
    Driver.analyze ?baseline_file ~rules:Lint_rules.rules ~root:!root ~dirs ()
  in
  (match !write_baseline with
  | Some file ->
      write_file file (Baseline.to_string findings);
      Printf.eprintf "scion-lint: wrote baseline (%d finding(s)) to %s\n" (List.length findings)
        file
  | None -> ());
  if !write_registry then begin
    let path = Filename.concat !root Driver.registry_rel in
    write_file path (Driver.registry_text summaries);
    Printf.eprintf "scion-lint: wrote %d series name(s) to %s\n"
      (List.length (Ipa.live_series summaries))
      path
  end;
  if !write_baseline <> None || !write_registry then exit 0;
  if !json then print_string (Lint.report_json findings)
  else begin
    print_string (Lint.report_text findings);
    Printf.eprintf "scion-lint: %d error(s), %d warning(s) across %s\n"
      (Lint.count Lint.Error findings) (Lint.count Lint.Warn findings)
      (String.concat " " dirs)
  end;
  exit (if Lint.has_errors findings then 1 else 0)
