(* Two-phase driver: reads and parses every source file exactly once, runs
   the per-file rules over the shared ASTs, builds Summary data for lib/ and
   bin/ modules, links the summaries and runs the interprocedural passes
   (Ipa), then applies per-file suppressions and the optional baseline
   ratchet. The CLI and the test suite both call [analyze]. *)

let default_dirs = [ "lib"; "bin"; "bench"; "examples"; "devtools" ]

let registry_rel = "devtools/lint/telemetry.registry"

type analysis = {
  an_findings : Lint.finding list;  (* suppressions and baseline applied, sorted *)
  an_summaries : Summary.file_summary list;  (* lib/ and bin/ implementation summaries *)
  an_files : string list;  (* every source file visited, repo-relative *)
}

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.sub s 0 n = prefix

(* The registry file is one series name per line; blank lines and lines
   starting with '#' are comments. Returns (name, line) pairs. *)
let parse_registry src =
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then entries := (line, i + 1) :: !entries)
    (String.split_on_char '\n' src);
  List.rev !entries

let analyze ?baseline_file ~rules ~root ~dirs () =
  let files = Lint.collect_files ~root dirs in
  let known_rules = List.map (fun (r : Lint.rule) -> r.Lint.id) rules in
  (* Phase 1: one read + one parse per file, shared by everything below. *)
  let parsed =
    List.map
      (fun file ->
        let src = Lint.read_file (Filename.concat root file) in
        let ast = Lint.parse_ast ~file src in
        let directives = Lint.scan_directives ~known_rules src in
        (file, src, ast, directives))
      files
  in
  let registry = Lint.build_registry (List.map (fun (f, _, a, _) -> (f, a)) parsed) in
  let file_findings =
    List.concat_map
      (fun (file, src, ast, _) -> Lint.lint_source ~registry ~ast ~rules ~file src)
      parsed
  in
  (* Whole-tree rule hooks (interface coverage) see the file list, not ASTs. *)
  let tree_findings = ref [] in
  List.iter
    (fun (r : Lint.rule) ->
      match r.Lint.on_tree with
      | None -> ()
      | Some hook ->
          hook ~files
            (fun ~file ~line msg ->
              tree_findings :=
                Lint.finding ~file ~line ~col:0 ~rule:r.Lint.id ~severity:r.Lint.severity msg
                :: !tree_findings))
    rules;
  let summaries =
    List.filter_map
      (fun (file, _, ast, directives) ->
        match ast with
        | Ok (Lint.Impl str)
          when starts_with ~prefix:"lib/" file || starts_with ~prefix:"bin/" file ->
            Some (Summary.of_structure ~file ~directives str)
        | _ -> None)
      parsed
  in
  let intfs =
    List.filter_map
      (fun (file, _, ast, directives) ->
        match ast with
        | Ok (Lint.Intf sg) when starts_with ~prefix:"lib/" file ->
            Some (Summary.of_signature ~file ~directives sg)
        | _ -> None)
      parsed
  in
  let telemetry_registry =
    let path = Filename.concat root registry_rel in
    if Sys.file_exists path then Some (registry_rel, parse_registry (Lint.read_file path))
    else None
  in
  let pass_findings = List.rev !tree_findings @ Ipa.run ~summaries ~intfs ~telemetry_registry in
  (* Per-file [allow] suppressions apply to tree and link findings too;
     findings anchored in non-source files (the registry itself) have no
     directives. *)
  let directives_of =
    let tbl = Hashtbl.create (List.length parsed) in
    List.iter (fun (file, _, _, d) -> Hashtbl.replace tbl file d) parsed;
    fun file -> Hashtbl.find_opt tbl file
  in
  let pass_findings =
    List.filter
      (fun (f : Lint.finding) ->
        match directives_of f.Lint.file with
        | Some d -> not (Lint.suppressed d ~line:f.Lint.line ~rule:f.Lint.rule)
        | None -> true)
      pass_findings
  in
  let all = List.sort Lint.compare_findings (file_findings @ pass_findings) in
  let all =
    match baseline_file with
    | None -> all
    | Some path ->
        if not (Sys.file_exists path) then all
        else (
          match Baseline.of_string (Lint.read_file path) with
          | Ok base -> Baseline.apply base all
          | Error e ->
              Lint.finding ~file:path ~line:1 ~col:0 ~rule:"parse" ~severity:Lint.Error
                ("baseline is unreadable: " ^ e)
              :: all)
  in
  { an_findings = all; an_summaries = summaries; an_files = files }

(* Findings only — what most tests want. *)
let lint_tree ?baseline_file ~rules ~root ~dirs () =
  (analyze ?baseline_file ~rules ~root ~dirs ()).an_findings

let registry_text summaries =
  let names = Ipa.live_series summaries in
  "# Telemetry series registry: every live metric name in lib/ and bin/,\n\
   # one per line, checked by the telemetry-registry lint pass. Regenerate\n\
   # with `scion_lint --write-telemetry-registry` after renaming a series,\n\
   # and update goldens/dashboards in the same change.\n"
  ^ String.concat "" (List.map (fun n -> n ^ "\n") names)
