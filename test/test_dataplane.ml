open Scion_dataplane
module Ia = Scion_addr.Ia
module Ipv4 = Scion_addr.Ipv4

let key = Fwkey.of_master_secret "test-as-secret"
let cmac = Fwkey.cmac_key key
let ts = 1_700_000_000l

let mk_hop ?(exp_time = 255) ~ingress ~egress ~seg_id () =
  let proto = { Path.exp_time; cons_ingress = ingress; cons_egress = egress; mac = String.make 6 '\x00' } in
  let mac = Path.compute_mac cmac ~seg_id ~timestamp:ts proto in
  { proto with Path.mac }

(* A chained construction-direction segment: each hop MAC'd with the folded
   beta, like beaconing does. *)
let mk_segment ?(cons_dir = true) ?(peer = false) ~seg_id specs =
  let hops, _ =
    List.fold_left
      (fun (acc, beta) (ingress, egress) ->
        let hop = mk_hop ~ingress ~egress ~seg_id:beta () in
        (hop :: acc, Path.chain_seg_id ~seg_id:beta ~mac:hop.Path.mac))
      ([], seg_id) specs
  in
  let hops = List.rev hops in
  let info = { Path.cons_dir; peer; seg_id; timestamp = ts } in
  (info, hops)

let test_path_roundtrip () =
  let info, hops = mk_segment ~seg_id:0x1234 [ (0, 5); (7, 9); (2, 0) ] in
  let p = Path.create [ (info, hops) ] in
  let p' = Path.decode (Path.encode p) in
  Alcotest.(check int) "curr_inf" p.Path.curr_inf p'.Path.curr_inf;
  Alcotest.(check int) "hops" (Path.num_hops p) (Path.num_hops p');
  Alcotest.(check string) "re-encode equal" (Path.encode p) (Path.encode p');
  Alcotest.(check int) "encoded length" (4 + 8 + (3 * 12)) (String.length (Path.encode p));
  Alcotest.(check int) "encoded_length fn" (String.length (Path.encode p)) (Path.encoded_length p)

let test_path_multi_segment_roundtrip () =
  let s1 = mk_segment ~cons_dir:false ~seg_id:1 [ (0, 1); (2, 0) ] in
  let s2 = mk_segment ~seg_id:2 [ (0, 3); (4, 5); (6, 0) ] in
  let s3 = mk_segment ~seg_id:3 [ (0, 7); (8, 0) ] in
  let p = Path.create [ s1; s2; s3 ] in
  Path.advance p;
  Path.advance p;
  let p' = Path.decode (Path.encode p) in
  Alcotest.(check int) "curr_hf preserved" 2 p'.Path.curr_hf;
  Alcotest.(check int) "curr_inf preserved" 1 p'.Path.curr_inf;
  Alcotest.(check (array int)) "seg lens" [| 2; 3; 2 |] (Path.seg_lens p')

let test_path_create_invalid () =
  let seg = mk_segment ~seg_id:1 [ (0, 1) ] in
  let raises f = try ignore (f ()); false with Path.Malformed _ -> true in
  Alcotest.(check bool) "no segments" true (raises (fun () -> Path.create []));
  Alcotest.(check bool) "four segments" true (raises (fun () -> Path.create [ seg; seg; seg; seg ]));
  let info, _ = seg in
  Alcotest.(check bool) "empty segment" true (raises (fun () -> Path.create [ (info, []) ]))

let test_path_decode_garbage () =
  let raises s = try ignore (Path.decode s); false with Path.Malformed _ -> true in
  Alcotest.(check bool) "empty" true (raises "");
  Alcotest.(check bool) "short" true (raises "\x00\x01");
  Alcotest.(check bool) "zero seg0" true (raises (String.make 40 '\x00'))

let test_advance_and_bounds () =
  let s1 = mk_segment ~seg_id:1 [ (0, 1); (2, 0) ] in
  let s2 = mk_segment ~seg_id:2 [ (0, 3); (4, 0) ] in
  let p = Path.create [ s1; s2 ] in
  Alcotest.(check bool) "seg first" true (Path.curr_is_seg_first p);
  Alcotest.(check bool) "not seg last" false (Path.curr_is_seg_last p);
  Path.advance p;
  Alcotest.(check bool) "seg last" true (Path.curr_is_seg_last p);
  Path.advance p;
  Alcotest.(check int) "crossed into segment 1" 1 p.Path.curr_inf;
  Alcotest.(check bool) "first of second" true (Path.curr_is_seg_first p);
  Path.advance p;
  Alcotest.(check bool) "at last hop" true (Path.at_last_hop p);
  Alcotest.check_raises "advance past end" (Path.Malformed "advance past last hop") (fun () ->
      Path.advance p)

let test_hop_expiry () =
  let info = { Path.cons_dir = true; peer = false; seg_id = 0; timestamp = ts } in
  let hop = mk_hop ~ingress:0 ~egress:1 ~seg_id:0 () in
  let expiry = Path.hop_expiry info hop in
  Alcotest.(check (float 1.0)) "max exp_time = 24h" (Int32.to_float ts +. 86400.0) expiry;
  let short_hop = { hop with Path.exp_time = 0 } in
  Alcotest.(check (float 1.0)) "min exp_time = 337.5s"
    (Int32.to_float ts +. 337.5)
    (Path.hop_expiry info short_hop)

let test_mac_chain () =
  let beta0 = 0xBEEF in
  let h0 = mk_hop ~ingress:0 ~egress:1 ~seg_id:beta0 () in
  let beta1 = Path.chain_seg_id ~seg_id:beta0 ~mac:h0.Path.mac in
  Alcotest.(check bool) "beta changes" true (beta0 <> beta1);
  Alcotest.(check int) "chain is xor involution" beta0 (Path.chain_seg_id ~seg_id:beta1 ~mac:h0.Path.mac);
  let recomputed = Path.compute_mac cmac ~seg_id:beta0 ~timestamp:ts h0 in
  Alcotest.(check string) "deterministic" h0.Path.mac recomputed;
  let other = Path.compute_mac cmac ~seg_id:beta1 ~timestamp:ts h0 in
  Alcotest.(check bool) "beta affects mac" true (other <> h0.Path.mac)

let test_reverse () =
  let s1 = mk_segment ~cons_dir:false ~seg_id:1 [ (0, 1); (2, 3) ] in
  let s2 = mk_segment ~cons_dir:true ~seg_id:2 [ (0, 4); (5, 0) ] in
  let p = Path.create [ s1; s2 ] in
  let r = Path.reverse p in
  Alcotest.(check int) "same hops" (Path.num_hops p) (Path.num_hops r);
  Alcotest.(check (array int)) "lens reversed" [| 2; 2 |] (Path.seg_lens r);
  (* The reversed path starts with the old last segment (C=1), flipped. *)
  Alcotest.(check bool) "first info flipped" false (Path.current_info r).Path.cons_dir;
  Alcotest.(check int) "positioned at start" 0 r.Path.curr_hf;
  let rr = Path.reverse r in
  Alcotest.(check string) "double reverse" (Path.encode p) (Path.encode rr)

(* --- Packet --- *)

let ia = Ia.of_string

let sample_packet () =
  let info, hops = mk_segment ~seg_id:9 [ (0, 1); (2, 0) ] in
  Packet.make ~proto:Packet.Udp ~flow_id:0xABCDE ~traffic_class:3
    ~src:(ia "71-559", Packet.Ipv4 (Ipv4.of_string "192.168.1.7"))
    ~dst:(ia "71-2:0:3b", Packet.Service Packet.svc_cs)
    ~path:(Packet.Standard (Path.create [ (info, hops) ]))
    "hello scion"

let test_packet_roundtrip () =
  let pkt = sample_packet () in
  let pkt' = Packet.decode (Packet.encode pkt) in
  Alcotest.(check string) "payload" pkt.Packet.payload pkt'.Packet.payload;
  Alcotest.(check int) "flow id" pkt.Packet.flow_id pkt'.Packet.flow_id;
  Alcotest.(check int) "traffic class" pkt.Packet.traffic_class pkt'.Packet.traffic_class;
  Alcotest.(check bool) "dst ia" true (Ia.equal pkt.Packet.dst_ia pkt'.Packet.dst_ia);
  Alcotest.(check bool) "src host" true (Packet.host_equal pkt.Packet.src_host pkt'.Packet.src_host);
  Alcotest.(check bool) "dst host svc" true
    (Packet.host_equal pkt'.Packet.dst_host (Packet.Service Packet.svc_cs));
  Alcotest.(check string) "stable encoding" (Packet.encode pkt) (Packet.encode pkt')

let test_packet_empty_path () =
  let pkt =
    Packet.make ~proto:Packet.Scmp
      ~src:(ia "71-88", Packet.Ipv4 (Ipv4.of_string "10.0.0.1"))
      ~dst:(ia "71-88", Packet.Ipv4 (Ipv4.of_string "10.0.0.2"))
      ~path:Packet.Empty "x"
  in
  let pkt' = Packet.decode (Packet.encode pkt) in
  Alcotest.(check bool) "empty path" true (pkt'.Packet.path = Packet.Empty)

let test_packet_garbage () =
  let raises s = try ignore (Packet.decode s); false with Packet.Malformed _ -> true in
  Alcotest.(check bool) "empty" true (raises "");
  Alcotest.(check bool) "random" true (raises "this is not a scion packet at all")

let test_udp_roundtrip () =
  let d = { Packet.Udp.src_port = 30041; dst_port = 443; data = "payload" } in
  let d' = Packet.Udp.decode (Packet.Udp.encode d) in
  Alcotest.(check int) "src" 30041 d'.Packet.Udp.src_port;
  Alcotest.(check int) "dst" 443 d'.Packet.Udp.dst_port;
  Alcotest.(check string) "data" "payload" d'.Packet.Udp.data

let test_scmp_roundtrip () =
  let check m =
    match Scmp.decode (Scmp.encode m) with
    | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
    | Error e -> Alcotest.fail e
  in
  check (Scmp.Echo_request { id = 7; seq = 42; data = "probe" });
  check (Scmp.Echo_reply { id = 7; seq = 42; data = "probe" });
  check Scmp.Destination_unreachable;
  check (Scmp.External_interface_down { ia = ia "71-2:0:3b"; ifid = 5 });
  check Scmp.Expired_hop_field;
  check Scmp.Invalid_hop_field_mac

let test_scmp_garbage () =
  (match Scmp.decode "" with Ok _ -> Alcotest.fail "accepted empty" | Error _ -> ());
  match Scmp.decode "\xFF\xFF\x00\x00" with
  | Ok _ -> Alcotest.fail "accepted unknown type"
  | Error _ -> ()

(* --- Router: single-AS behaviours (multi-AS flows are in the mesh tests) --- *)

let local_ia = ia "1-10"
let neighbor_ia = ia "1-2:0:1"

let mk_router () =
  Router.create ~ia:local_ia ~key
    ~ifaces:[ { Router.ifid = 1; remote_ia = neighbor_ia; remote_ifid = 7 } ]
    ()

let test_router_empty_path_delivery () =
  let r = mk_router () in
  let pkt =
    Packet.make ~proto:Packet.Udp
      ~src:(local_ia, Packet.Ipv4 (Ipv4.of_string "10.0.0.1"))
      ~dst:(local_ia, Packet.Ipv4 (Ipv4.of_string "10.0.0.2"))
      ~path:Packet.Empty "intra"
  in
  (match Router.process r ~now:0.0 ~ingress:0 pkt with
  | Router.Deliver _ -> ()
  | _ -> Alcotest.fail "expected delivery");
  let foreign = { pkt with Packet.dst_ia = neighbor_ia } in
  match Router.process r ~now:0.0 ~ingress:0 foreign with
  | Router.Drop Router.Not_for_us -> ()
  | _ -> Alcotest.fail "expected Not_for_us"

let test_router_duplicate_iface () =
  let iface = { Router.ifid = 1; remote_ia = neighbor_ia; remote_ifid = 7 } in
  (try
     ignore (Router.create ~ia:local_ia ~key ~ifaces:[ iface; iface ] ());
     Alcotest.fail "accepted duplicate"
   with Invalid_argument _ -> ());
  try
    ignore
      (Router.create ~ia:local_ia ~key
         ~ifaces:[ { Router.ifid = 0; remote_ia = neighbor_ia; remote_ifid = 7 } ]
         ());
    Alcotest.fail "accepted ifid 0"
  with Invalid_argument _ -> ()

let test_router_iface_state () =
  let r = mk_router () in
  Alcotest.(check bool) "default up" true (Router.interface_up r 1);
  Router.set_interface_state r 1 ~up:false;
  Alcotest.(check bool) "down" false (Router.interface_up r 1);
  Router.set_interface_state r 1 ~up:true;
  Alcotest.(check bool) "up again" true (Router.interface_up r 1)

let qcheck_path_roundtrip =
  let gen =
    QCheck.Gen.(
      let* nsegs = 1 -- 3 in
      let* lens = list_repeat nsegs (1 -- 6) in
      let* seg_ids = list_repeat nsegs (0 -- 0xFFFF) in
      let* dirs = list_repeat nsegs bool in
      return (List.combine (List.combine lens seg_ids) dirs))
  in
  QCheck.Test.make ~name:"path encode/decode roundtrip" ~count:200 (QCheck.make gen) (fun spec ->
      let segments =
        List.map
          (fun ((len, seg_id), dir) ->
            mk_segment ~cons_dir:dir ~seg_id (List.init len (fun i -> (i, i + 1))))
          spec
      in
      let p = Path.create segments in
      Path.encode (Path.decode (Path.encode p)) = Path.encode p)

(* Property tests draw from a fixed-seed state (instead of qcheck's
   self-initialising global one) so a failure reproduces on every run. *)
let det_rand () = Random.State.make [| 0x5C1E7A5E |]
let to_alcotest_seeded t = QCheck_alcotest.to_alcotest ~rand:(det_rand ()) t

let gen_packet_spec =
  QCheck.Gen.(
    let* proto = oneofl [ Packet.Udp; Packet.Scmp; Packet.Bfd ] in
    let* flow_id = 0 -- 0xFFFFF in
    let* traffic_class = 0 -- 0xFF in
    let* src = pair (1 -- 0xFFF) (1 -- 0xFFFFFF) in
    let* dst = pair (1 -- 0xFFF) (1 -- 0xFFFFFF) in
    let* src_octet = 1 -- 254 in
    let* dst_service = oneofl [ None; Some Packet.svc_cs; Some Packet.svc_ds ] in
    let* payload = string_size ~gen:printable (0 -- 64) in
    let* nhops = 2 -- 6 in
    let* seg_id = 0 -- 0xFFFF in
    return (proto, flow_id, traffic_class, src, dst, src_octet, dst_service, payload, nhops, seg_id))

let qcheck_packet_roundtrip =
  QCheck.Test.make ~name:"packet encode/decode roundtrip" ~count:300 (QCheck.make gen_packet_spec)
    (fun (proto, flow_id, traffic_class, (si, sa), (di, da), src_octet, dst_service, payload, nhops, seg_id)
    ->
      let info, hops = mk_segment ~seg_id (List.init nhops (fun i -> (i, i + 1))) in
      let src_host = Packet.Ipv4 (Ipv4.of_string (Printf.sprintf "10.0.0.%d" src_octet)) in
      let dst_host =
        match dst_service with
        | Some svc -> Packet.Service svc
        | None -> Packet.Ipv4 (Ipv4.of_string "192.168.7.9")
      in
      let pkt =
        Packet.make ~proto ~flow_id ~traffic_class
          ~src:(Ia.make si sa, src_host)
          ~dst:(Ia.make di da, dst_host)
          ~path:(Packet.Standard (Path.create [ (info, hops) ]))
          payload
      in
      let pkt' = Packet.decode (Packet.encode pkt) in
      String.equal (Packet.encode pkt) (Packet.encode pkt')
      && String.equal pkt'.Packet.payload payload
      && pkt'.Packet.flow_id = flow_id
      && pkt'.Packet.traffic_class = traffic_class
      && Ia.equal pkt'.Packet.src_ia (Ia.make si sa)
      && Ia.equal pkt'.Packet.dst_ia (Ia.make di da)
      && Packet.host_equal pkt'.Packet.src_host src_host
      && Packet.host_equal pkt'.Packet.dst_host dst_host)

let gen_hop_spec =
  QCheck.Gen.(
    let* exp_time = 0 -- 255 in
    let* ingress = 0 -- 0xFFFF in
    let* egress = 0 -- 0xFFFF in
    let* seg_id = 0 -- 0xFFFF in
    return (exp_time, ingress, egress, seg_id))

(* Every field the hop MAC covers must survive the wire format: after an
   encode/decode trip, recomputing the MAC from the decoded hop and info
   fields must reproduce the decoded MAC bytes exactly. *)
let qcheck_hop_mac_after_encode =
  QCheck.Test.make ~name:"hop-field MAC verifies after encode/decode" ~count:300
    (QCheck.make gen_hop_spec) (fun (exp_time, ingress, egress, seg_id) ->
      let hop = mk_hop ~exp_time ~ingress ~egress ~seg_id () in
      let next =
        mk_hop ~ingress:1 ~egress:0 ~seg_id:(Path.chain_seg_id ~seg_id ~mac:hop.Path.mac) ()
      in
      let info = { Path.cons_dir = true; peer = false; seg_id; timestamp = ts } in
      let p' = Path.decode (Path.encode (Path.create [ (info, [ hop; next ]) ])) in
      let info' = Path.current_info p' in
      let hop' = Path.current_hop p' in
      String.equal hop'.Path.mac
        (Path.compute_mac cmac ~seg_id:info'.Path.seg_id ~timestamp:info'.Path.timestamp hop'))

let () =
  Alcotest.run "scion_dataplane"
    [
      ( "path",
        [
          Alcotest.test_case "roundtrip" `Quick test_path_roundtrip;
          Alcotest.test_case "multi-segment roundtrip" `Quick test_path_multi_segment_roundtrip;
          Alcotest.test_case "create invalid" `Quick test_path_create_invalid;
          Alcotest.test_case "decode garbage" `Quick test_path_decode_garbage;
          Alcotest.test_case "advance and bounds" `Quick test_advance_and_bounds;
          Alcotest.test_case "hop expiry" `Quick test_hop_expiry;
          Alcotest.test_case "mac chain" `Quick test_mac_chain;
          Alcotest.test_case "reverse" `Quick test_reverse;
          to_alcotest_seeded qcheck_path_roundtrip;
          to_alcotest_seeded qcheck_hop_mac_after_encode;
        ] );
      ( "packet",
        [
          Alcotest.test_case "roundtrip" `Quick test_packet_roundtrip;
          Alcotest.test_case "empty path" `Quick test_packet_empty_path;
          Alcotest.test_case "garbage" `Quick test_packet_garbage;
          Alcotest.test_case "udp" `Quick test_udp_roundtrip;
          to_alcotest_seeded qcheck_packet_roundtrip;
        ] );
      ( "scmp",
        [
          Alcotest.test_case "roundtrip" `Quick test_scmp_roundtrip;
          Alcotest.test_case "garbage" `Quick test_scmp_garbage;
        ] );
      ( "router",
        [
          Alcotest.test_case "empty path delivery" `Quick test_router_empty_path_delivery;
          Alcotest.test_case "duplicate iface" `Quick test_router_duplicate_iface;
          Alcotest.test_case "iface state" `Quick test_router_iface_state;
        ] );
    ]
